// Command casscenario runs the production scenario harness: named
// scenario families composing workload dimensions (trace replay,
// diurnal arrivals, heavy-tailed service times) with chaos dimensions
// (member flap, summary partition, slow member, leader kill) against
// the library's deployment shapes, printing each family's study table
// to stdout — the committed benchmarks/scenario-*.txt files are
// regenerated with e.g.:
//
//	go run ./cmd/casscenario trace > benchmarks/scenario-trace.txt
//
// With no arguments every family runs in canonical order; -list
// prints the presets.
package main

import (
	"flag"
	"fmt"
	"os"

	"casched/internal/scenario"
)

func main() {
	list := flag.Bool("list", false, "list the scenario families and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: casscenario [-list] [family ...]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the named scenario families (default: all) and prints their study tables.\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, f := range scenario.Families() {
			fmt.Printf("%-10s %s\n", f.Name, f.Description)
			fmt.Printf("%-10s committed: %s\n", "", f.File)
		}
		return
	}

	families := scenario.Families()
	if args := flag.Args(); len(args) > 0 {
		families = families[:0]
		for _, name := range args {
			f, err := scenario.FamilyByName(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			families = append(families, f)
		}
	}
	for i, f := range families {
		if i > 0 {
			fmt.Println()
		}
		out, err := f.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "casscenario: %s: %v\n", f.Name, err)
			os.Exit(1)
		}
		fmt.Print(out)
	}
}
