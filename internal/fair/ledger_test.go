package fair

import (
	"math"
	"math/rand"
	"testing"
)

// drain simulates a saturated system: every tenant always backlogged,
// each pick charging the picked tenant its per-task work. Returns the
// service each tenant accumulated over n picks.
func drain(l *Ledger, tenants []string, work map[string]float64, n int) map[string]float64 {
	got := make(map[string]float64, len(tenants))
	for i := 0; i < n; i++ {
		t := l.Pick(tenants)
		w := work[t]
		l.Charge(t, w)
		got[t] += w
	}
	return got
}

// TestLedgerSharesConvergeToWeights pins the core fairness contract:
// under saturation, observed service shares converge to the configured
// weights within 5%.
func TestLedgerSharesConvergeToWeights(t *testing.T) {
	weights := map[string]float64{"gold": 4, "silver": 2, "bronze": 1}
	l := NewLedger(weights)
	tenants := []string{"bronze", "gold", "silver"}
	work := map[string]float64{"gold": 3.7, "silver": 2.1, "bronze": 5.3}
	got := drain(l, tenants, work, 20000)

	total, wsum := 0.0, 0.0
	for _, v := range got {
		total += v
	}
	for _, tn := range tenants {
		wsum += weights[tn]
	}
	for _, tn := range tenants {
		share := got[tn] / total
		want := weights[tn] / wsum
		if rel := math.Abs(share-want) / want; rel > 0.05 {
			t.Errorf("tenant %s: observed share %.4f, configured %.4f (off %.1f%%)",
				tn, share, want, rel*100)
		}
	}
}

// TestLedgerEqualSharesByDefault: absent weights, tenants split
// service evenly even with very different per-task costs.
func TestLedgerEqualSharesByDefault(t *testing.T) {
	l := NewLedger(nil)
	tenants := []string{"a", "b"}
	work := map[string]float64{"a": 10, "b": 1}
	got := drain(l, tenants, work, 10000)
	ratio := got["a"] / got["b"]
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("equal-weight tenants got service ratio %.3f, want ~1", ratio)
	}
}

// TestLedgerNeverStarves is the property-style starvation test: under
// randomized weights, work sizes and adversarial candidate sets, a
// continuously backlogged tenant is always picked again within a
// bounded number of picks — its fair clock stands still while every
// pick advances someone else's, so it must become the minimum.
func TestLedgerNeverStarves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nTenants := 2 + rng.Intn(6)
		tenants := make([]string, nTenants)
		weights := make(map[string]float64, nTenants)
		work := make(map[string]float64, nTenants)
		for i := range tenants {
			tenants[i] = string(rune('a' + i))
			weights[tenants[i]] = 1 + float64(rng.Intn(16))
			work[tenants[i]] = 0.5 + 10*rng.Float64()
		}
		l := NewLedger(weights)

		// Bound: while the victim waits, each other tenant can consume
		// at most (victim gap) × its weight of service before its clock
		// passes the victim's; with per-pick work ≥ minWork the number
		// of picks between two victim picks is bounded. Use a generous
		// analytic bound rather than a tight one.
		victim := tenants[rng.Intn(nTenants)]
		sinceVictim := 0
		maxGap := 0
		for i := 0; i < 5000; i++ {
			p := l.Pick(tenants)
			l.Charge(p, work[p])
			if p == victim {
				if sinceVictim > maxGap {
					maxGap = sinceVictim
				}
				sinceVictim = 0
			} else {
				sinceVictim++
			}
		}
		// Generous bound: total weight / victim weight × max/min work
		// ratio, plus slack for the startup transient.
		wsum, minW := 0.0, math.Inf(1)
		maxWork, minWork := 0.0, math.Inf(1)
		for _, tn := range tenants {
			wsum += weights[tn]
			if weights[tn] < minW {
				minW = weights[tn]
			}
			if work[tn] > maxWork {
				maxWork = work[tn]
			}
			if work[tn] < minWork {
				minWork = work[tn]
			}
		}
		bound := int(wsum/minW*maxWork/minWork) + nTenants + 10
		if maxGap > bound {
			t.Fatalf("trial %d: victim %s starved for %d consecutive picks (bound %d; weights %v work %v)",
				trial, victim, maxGap, bound, weights, work)
		}
	}
}

// TestLedgerGroupNesting: shares nest tenant → client. The tenant
// split follows tenant weights; within one tenant, client weights
// split that tenant's service.
func TestLedgerGroupNesting(t *testing.T) {
	l := NewLedger(map[string]float64{
		"gold": 3, "silver": 1,
		"gold/alice": 3, "gold/bob": 1,
	})
	paths := []string{"gold/alice", "gold/bob", "silver/carol"}
	got := drain(l, paths, map[string]float64{
		"gold/alice": 1, "gold/bob": 1, "silver/carol": 1,
	}, 16000)

	total := got["gold/alice"] + got["gold/bob"] + got["silver/carol"]
	goldShare := (got["gold/alice"] + got["gold/bob"]) / total
	if math.Abs(goldShare-0.75) > 0.05*0.75 {
		t.Errorf("gold tenant share %.4f, want 0.75", goldShare)
	}
	aliceWithinGold := got["gold/alice"] / (got["gold/alice"] + got["gold/bob"])
	if math.Abs(aliceWithinGold-0.75) > 0.05*0.75 {
		t.Errorf("alice's share within gold %.4f, want 0.75", aliceWithinGold)
	}
}

// TestLedgerNewcomerJoinsAtFrontier: a tenant first seen late gets no
// credit for the past — it competes from the current frontier instead
// of monopolizing until it catches up.
func TestLedgerNewcomerJoinsAtFrontier(t *testing.T) {
	l := NewLedger(nil)
	for i := 0; i < 100; i++ {
		l.Charge("old", 1)
	}
	// Newcomer joins: over the next picks it must not win every time.
	tenants := []string{"old", "new"}
	newWins := 0
	for i := 0; i < 100; i++ {
		p := l.Pick(tenants)
		l.Charge(p, 1)
		if p == "new" {
			newWins++
		}
	}
	if newWins > 60 {
		t.Fatalf("newcomer won %d/100 picks; should join at frontier, not claim history", newWins)
	}
}

// TestLedgerPickDeterministic: equal clocks break ties
// lexicographically, so arbitration is reproducible.
func TestLedgerPickDeterministic(t *testing.T) {
	l := NewLedger(nil)
	if p := l.Pick([]string{"b", "a", "c"}); p != "a" {
		t.Fatalf("fresh ledger picked %q, want lexicographic tie-break to a", p)
	}
	if p := l.Pick(nil); p != "" {
		t.Fatalf("empty candidate set picked %q", p)
	}
}

// TestLedgerSingleTenantTrivial: with one candidate the pick is that
// candidate, always — the arbiter degenerates to FIFO pass-through
// (the parity guarantee's fairness half).
func TestLedgerSingleTenantTrivial(t *testing.T) {
	l := NewLedger(map[string]float64{"only": 2})
	for i := 0; i < 10; i++ {
		if p := l.Pick([]string{"only"}); p != "only" {
			t.Fatalf("pick %d returned %q", i, p)
		}
		l.Charge("only", 5)
	}
}
