package experiments

import (
	"strings"
	"testing"
)

func TestMeasureAccuracy(t *testing.T) {
	c := smallCampaign()
	c.N = 100
	a, err := c.MeasureAccuracy("MSF", 25)
	if err != nil {
		t.Fatal(err)
	}
	if a.N == 0 {
		t.Fatal("no tasks scored")
	}
	// With 3% execution noise the final simulated date must track
	// reality within a few percent on average.
	if a.FinalMeanPct > 6 {
		t.Errorf("final mean error %.1f%% too large", a.FinalMeanPct)
	}
	if a.FinalMaxPct < a.FinalP90Pct || a.FinalP90Pct < 0 {
		t.Errorf("error percentiles inconsistent: %+v", a)
	}
	// Placement-time predictions undershoot under load (later arrivals
	// delay tasks), so the signed mean is non-negative.
	if a.PlacementMeanPct < -1 {
		t.Errorf("placement error unexpectedly negative: %+v", a)
	}
	out := FormatAccuracy(a)
	if !strings.Contains(out, "HTM accuracy") || !strings.Contains(out, "p90") {
		t.Errorf("accuracy format incomplete:\n%s", out)
	}
}

func TestMeasureAccuracyZeroNoise(t *testing.T) {
	c := smallCampaign()
	c.N = 60
	c.NoiseSigma = 0
	a, err := c.MeasureAccuracy("HMCT", 25)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalMeanPct > 1e-6 {
		t.Errorf("noiseless final error = %v, want 0", a.FinalMeanPct)
	}
}

func TestMeasureAccuracyValidation(t *testing.T) {
	c := smallCampaign()
	if _, err := c.MeasureAccuracy("MCT", 25); err == nil {
		t.Error("non-HTM heuristic accepted")
	}
	if _, err := c.MeasureAccuracy("nosuch", 25); err == nil {
		t.Error("unknown heuristic accepted")
	}
	c.Seeds = nil
	if _, err := c.MeasureAccuracy("MSF", 25); err == nil {
		t.Error("empty seeds accepted")
	}
}

func TestScoreRunAccuracyErrors(t *testing.T) {
	c := smallCampaign()
	c.N = 30
	// An MCT run carries no predictions: scoring it must fail cleanly.
	res, err := c.runOne(2, "MCT", 25, c.Seeds[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ScoreRunAccuracy("MCT", res); err == nil {
		t.Error("prediction-less run accepted")
	}
	// An MSF run scores fine through the exported helper.
	res, err = c.runOne(2, "MSF", 25, c.Seeds[0])
	if err != nil {
		t.Fatal(err)
	}
	a, err := ScoreRunAccuracy("MSF", res)
	if err != nil || a.N == 0 {
		t.Errorf("ScoreRunAccuracy = %+v, %v", a, err)
	}
}

func TestValidationNoiseSweep(t *testing.T) {
	out, err := ValidationNoiseSweep([]float64{0, 0.05}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("sweep points = %d", len(out))
	}
	// More injected noise means more prediction error.
	if out[0.05] <= out[0] {
		t.Errorf("error at sigma .05 (%v) not above sigma 0 (%v)", out[0.05], out[0])
	}
}

func TestLoadBalanceComparison(t *testing.T) {
	c := smallCampaign()
	c.N = 120
	lb, err := c.LoadBalanceComparison(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(lb) != 4 {
		t.Fatalf("heuristics = %d", len(lb))
	}
	// The paper's conclusion: MP's peak residency on the fastest
	// server is below HMCT's (better balance, less memory).
	peakOf := func(h string) int {
		max := 0
		for _, st := range lb[h] {
			if st.PeakMemoryTasks > max {
				max = st.PeakMemoryTasks
			}
		}
		return max
	}
	if peakOf("MP") > peakOf("HMCT") {
		t.Errorf("MP peak residency %d exceeds HMCT's %d", peakOf("MP"), peakOf("HMCT"))
	}
	out := FormatServerStats("MP", lb["MP"])
	for _, want := range []string{"per-server load balance", "pulney", "utilization"} {
		if !strings.Contains(out, want) {
			t.Errorf("server stats format missing %q:\n%s", want, out)
		}
	}
}
