package live

import (
	"net/rpc"
	"sync"
	"testing"
	"time"

	"casched/internal/metrics"
	"casched/internal/sched"
	"casched/internal/task"
)

// TestTwoConcurrentClients submits two task streams from two clients
// against one deployment — the paper's multi-user motivation ("the
// agent can be requested by more than one user"). Client A uses the
// metatask driver; client B drives the RPC protocol directly with its
// own key range.
func TestTwoConcurrentClients(t *testing.T) {
	agent, clock, cleanup := startDeployment(t, sched.NewMSF(),
		[]string{"spinnaker", "artimon"}, 2000)
	defer cleanup()

	mtA := &task.Metatask{Name: "client-a"}
	for i := 0; i < 6; i++ {
		mtA.Tasks = append(mtA.Tasks, &task.Task{
			ID:      i,
			Spec:    task.WasteCPU(task.WasteCPUParams[i%3]),
			Arrival: float64(i) * 8,
		})
	}

	var wg sync.WaitGroup
	var resA []metrics.TaskResult
	var errA error
	wg.Add(1)
	go func() {
		defer wg.Done()
		resA, errA = RunMetatask(agent.Addr(), mtA, clock)
	}()

	var completedB int
	var errB error
	wg.Add(1)
	go func() {
		defer wg.Done()
		agentConn, err := rpc.Dial("tcp", agent.Addr())
		if err != nil {
			errB = err
			return
		}
		defer agentConn.Close()
		serverConns := make(map[string]*rpc.Client)
		defer func() {
			for _, c := range serverConns {
				c.Close()
			}
		}()
		for i := 0; i < 6; i++ {
			key := 1000 + i // disjoint from client A's keys
			clock.SleepUntil(float64(i)*8 + 3)
			var rep ScheduleReply
			if errB = agentConn.Call("Agent.Schedule", ScheduleArgs{
				TaskKey: key, Problem: "wastecpu",
				Variant: task.WasteCPUParams[i%3], Arrival: clock.Now(),
			}, &rep); errB != nil {
				return
			}
			srv, ok := serverConns[rep.Addr]
			if !ok {
				srv, errB = rpc.Dial("tcp", rep.Addr)
				if errB != nil {
					return
				}
				serverConns[rep.Addr] = srv
			}
			var sub SubmitReply
			if errB = srv.Call("Server.Submit", SubmitArgs{
				TaskKey: key, Problem: "wastecpu",
				Variant: task.WasteCPUParams[i%3],
			}, &sub); errB != nil {
				return
			}
			if sub.Completion > 0 {
				completedB++
			}
		}
	}()
	wg.Wait()

	if errA != nil || errB != nil {
		t.Fatalf("client errors: %v / %v", errA, errB)
	}
	for _, r := range resA {
		if !r.Completed {
			t.Errorf("client A task %d incomplete", r.ID)
		}
	}
	if completedB != 6 {
		t.Errorf("client B completed %d/6", completedB)
	}
}

// TestSubmitToClosedServer: a submit against a closed server fails
// with an RPC error rather than hanging.
func TestSubmitToClosedServer(t *testing.T) {
	clock := NewClock(2000)
	agent, err := StartAgent(AgentConfig{Scheduler: sched.NewMCT(), Clock: clock, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	srv, err := StartServer(ServerConfig{
		Name: "artimon", AgentAddr: agent.Addr(), Clock: clock,
		Quantum: time.Millisecond, ReportPeriod: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	srv.Close()

	if _, err := rpc.Dial("tcp", addr); err == nil {
		t.Skip("listener port was immediately reused; cannot test")
	}
}

// TestServerRejectsUnknownProblem: the server validates submissions
// against its own cost tables.
func TestServerRejectsUnknownProblem(t *testing.T) {
	clock := NewClock(2000)
	agent, err := StartAgent(AgentConfig{Scheduler: sched.NewMCT(), Clock: clock, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	srv, err := StartServer(ServerConfig{
		Name: "valette", AgentAddr: agent.Addr(), Clock: clock,
		Quantum: time.Millisecond, ReportPeriod: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := rpc.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var rep SubmitReply
	if err := conn.Call("Server.Submit", SubmitArgs{
		TaskKey: 0, Problem: "nosuch", Variant: 1,
	}, &rep); err == nil {
		t.Error("unknown problem accepted by server")
	}
	// valette has no matmul costs in Table 3: submitting one must fail.
	if err := conn.Call("Server.Submit", SubmitArgs{
		TaskKey: 1, Problem: "matmul", Variant: 1200,
	}, &rep); err == nil {
		t.Error("unsolvable problem accepted by server")
	}
}

// TestManyTasksStress floods a two-server deployment with short tasks
// to exercise executor and RPC concurrency.
func TestManyTasksStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	agent, clock, cleanup := startDeployment(t, sched.NewHMCT(),
		[]string{"spinnaker", "artimon"}, 5000)
	defer cleanup()

	mt := &task.Metatask{Name: "stress"}
	for i := 0; i < 60; i++ {
		mt.Tasks = append(mt.Tasks, &task.Task{
			ID: i, Spec: task.WasteCPU(200), Arrival: float64(i),
		})
	}
	results, err := RunMetatask(agent.Addr(), mt, clock)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Completed {
			t.Fatalf("task %d incomplete under stress", r.ID)
		}
	}
	rep := metrics.Compute("stress", results)
	if rep.Completed != 60 {
		t.Errorf("completed %d/60", rep.Completed)
	}
}
