package experiments

import (
	"fmt"
	"math"
	"strings"

	"casched/internal/grid"
	"casched/internal/platform"
	"casched/internal/sched"
	"casched/internal/stats"
	"casched/internal/workload"
)

// AccuracyResult quantifies the HTM's predictive quality over a full
// metatask — the at-scale companion of the 12-row Table 1. Two
// predictions are scored for every task:
//
//   - the placement-time prediction ρ'ₙ₊₁ (what the heuristic acted
//     on), which cannot know about future arrivals and therefore
//     systematically undershoots under load, and
//   - the end-of-run simulated date (Table 1's "simulated completion
//     date"), which accounts for every subsequent placement and should
//     differ from reality only by the execution noise.
type AccuracyResult struct {
	Heuristic string
	N         int
	// Placement-time prediction error, as a percentage of task
	// duration (signed: positive = task finished later than predicted).
	PlacementMeanPct float64
	PlacementP90Pct  float64
	// Final (end-of-run) simulated-date error percentiles, absolute
	// percentage of task duration.
	FinalMeanPct float64
	FinalP90Pct  float64
	FinalMaxPct  float64
}

// MeasureAccuracy runs one set-2 metatask under the given HTM
// heuristic and scores both prediction kinds against actual
// completions.
func (c Campaign) MeasureAccuracy(heuristic string, d float64) (*AccuracyResult, error) {
	if len(c.Seeds) == 0 {
		return nil, fmt.Errorf("experiments: accuracy: no seeds")
	}
	s, err := sched.ByName(heuristic)
	if err != nil {
		return nil, err
	}
	if !sched.UsesHTM(s) {
		return nil, fmt.Errorf("experiments: accuracy: %s does not use the HTM", heuristic)
	}
	servers, err := grid.ServersFor(platform.Set2Servers)
	if err != nil {
		return nil, err
	}
	mt, err := workload.Generate(workload.Set2(c.N, d, c.Seeds[0]))
	if err != nil {
		return nil, err
	}
	res, err := grid.Run(grid.Config{
		Servers:    servers,
		Scheduler:  s,
		Seed:       c.Seeds[0],
		NoiseSigma: c.NoiseSigma,
		HTMSync:    c.HTMSync,
	}, mt)
	if err != nil {
		return nil, err
	}
	return scoreAccuracy(heuristic, res)
}

// scoreAccuracy computes the error statistics of a finished run.
func scoreAccuracy(heuristic string, res *grid.Result) (*AccuracyResult, error) {
	var placementPct, finalPct []float64
	for _, r := range res.Tasks {
		if !r.Completed {
			continue
		}
		duration := r.Completion - r.Arrival
		if duration <= 0 {
			continue
		}
		if p, ok := res.Predicted[r.ID]; ok {
			placementPct = append(placementPct, 100*(r.Completion-p)/duration)
		}
		if f, ok := res.FinalPredicted[r.ID]; ok {
			finalPct = append(finalPct, 100*math.Abs(r.Completion-f)/duration)
		}
	}
	if len(placementPct) == 0 || len(finalPct) == 0 {
		return nil, fmt.Errorf("experiments: accuracy: run produced no predictions")
	}
	out := &AccuracyResult{Heuristic: heuristic, N: len(finalPct)}
	out.PlacementMeanPct = stats.Mean(placementPct)
	out.PlacementP90Pct = stats.Quantile(placementPct, 0.90)
	out.FinalMeanPct = stats.Mean(finalPct)
	out.FinalP90Pct = stats.Quantile(finalPct, 0.90)
	out.FinalMaxPct = stats.MaxFloat(finalPct)
	return out, nil
}

// ScoreRunAccuracy exposes the scoring for externally produced runs
// (e.g. ablations on noise or sync).
func ScoreRunAccuracy(heuristic string, res *grid.Result) (*AccuracyResult, error) {
	return scoreAccuracy(heuristic, res)
}

// FormatAccuracy renders an AccuracyResult.
func FormatAccuracy(a *AccuracyResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "HTM accuracy under %s over %d tasks:\n", a.Heuristic, a.N)
	fmt.Fprintf(&sb, "  placement-time prediction: mean %+.1f%% of duration (p90 %+.1f%%)\n",
		a.PlacementMeanPct, a.PlacementP90Pct)
	fmt.Fprintf(&sb, "  final simulated date:      mean %.1f%%, p90 %.1f%%, worst %.1f%%\n",
		a.FinalMeanPct, a.FinalP90Pct, a.FinalMaxPct)
	return sb.String()
}

// FormatServerStats renders the per-server load-balance view of a run
// (the data behind the paper's §5.3 "balance the load in a better way"
// discussion).
func FormatServerStats(heuristic string, statsMap map[string]grid.ServerStats) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "per-server load balance under %s:\n", heuristic)
	fmt.Fprintf(&sb, "%-12s %10s %12s %12s %10s\n",
		"server", "completed", "busy-cpu(s)", "utilization", "peak-tasks")
	names := make([]string, 0, len(statsMap))
	for n := range statsMap {
		names = append(names, n)
	}
	// Sorted for determinism.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, n := range names {
		st := statsMap[n]
		fmt.Fprintf(&sb, "%-12s %10d %12.0f %12.2f %10d\n",
			n, st.Completed, st.BusyCPU, st.Utilization, st.PeakMemoryTasks)
	}
	return sb.String()
}

// LoadBalanceComparison runs every paper heuristic on one set-1
// metatask with the memory model and reports each server's peak
// residency — the evidence behind the paper's conclusion that "MSF and
// MP balance the load in a better way than MCT and HMCT, leading to
// less memory consumption on servers".
func (c Campaign) LoadBalanceComparison(d float64) (map[string]map[string]grid.ServerStats, error) {
	if len(c.Seeds) == 0 {
		return nil, fmt.Errorf("experiments: load balance: no seeds")
	}
	out := make(map[string]map[string]grid.ServerStats, len(Heuristics))
	for _, name := range Heuristics {
		res, err := c.runOne(1, name, d, c.Seeds[0])
		if err != nil {
			return nil, fmt.Errorf("experiments: load balance %s: %w", name, err)
		}
		out[name] = res.ServerStats
	}
	return out, nil
}
