package fed

import (
	"strings"
	"testing"
	"time"

	"casched/internal/agent"
	"casched/internal/live"
	"casched/internal/sched"
	"casched/internal/task"
)

// newTestFed builds an in-process federation with evenly spread
// servers.
func newTestFed(t *testing.T, members int, heuristic string, nServers int) (*Dispatcher, []string) {
	t.Helper()
	d, err := New(WithMembers(members), WithHeuristic(heuristic), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]string, nServers)
	for i := range servers {
		servers[i] = "sv" + string(rune('a'+i))
		if err := d.AddServer(servers[i]); err != nil {
			t.Fatal(err)
		}
	}
	return d, servers
}

// TestMergedEventStream pins that member decisions and completions
// surface on the dispatcher's merged stream.
func TestMergedEventStream(t *testing.T) {
	d, servers := newTestFed(t, 3, "HMCT", 6)
	spec := evenSpec(servers)

	var decisions, completions int
	cancel := d.Subscribe(func(ev agent.Event) {
		switch ev.Kind {
		case agent.EventDecision:
			decisions++
		case agent.EventCompletion:
			completions++
		}
	})
	defer cancel()

	for i := 1; i <= 10; i++ {
		dec, err := d.Submit(req(i, spec, float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := d.Complete(i, dec.Server, float64(i)+40); err != nil {
				t.Fatal(err)
			}
		}
	}
	if decisions != 10 || completions != 5 {
		t.Errorf("merged stream saw %d decisions / %d completions, want 10/5", decisions, completions)
	}
	if got := d.InFlight(); got != 5 {
		t.Errorf("in-flight = %d, want 5", got)
	}
}

// TestUnscoredRotation pins that heuristics without a comparable
// objective rotate over eligible members instead of fanning out.
func TestUnscoredRotation(t *testing.T) {
	d, servers := newTestFed(t, 3, "RoundRobin", 6)
	spec := evenSpec(servers)
	perMember := map[int]int{}
	for i := 1; i <= 12; i++ {
		dec, err := d.Submit(req(i, spec, float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		m, ok := d.MemberOf(dec.Server)
		if !ok {
			t.Fatalf("job %d placed on unknown server %s", i, dec.Server)
		}
		perMember[m]++
	}
	for m := 0; m < 3; m++ {
		if perMember[m] != 4 {
			t.Fatalf("rotation spread = %v, want 4 per member", perMember)
		}
	}
}

// TestRemoveServer pins partition shrinkage through the dispatcher.
func TestRemoveServer(t *testing.T) {
	d, servers := newTestFed(t, 2, "HMCT", 4)
	spec := evenSpec(servers[:1]) // only solvable on servers[0]
	if err := d.RemoveServer(servers[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(req(1, spec, 1)); err == nil {
		t.Fatal("submit to a removed server's only candidate succeeded")
	}
	if got := len(d.Servers()); got != 3 {
		t.Errorf("servers = %d, want 3", got)
	}
}

// TestJoinRejectsHeuristicMismatch pins the federation-wide objective
// invariant on the wire: a member running a different heuristic is
// turned away at Join.
func TestJoinRejectsHeuristicMismatch(t *testing.T) {
	clock := live.NewClock(1000)
	fs, err := StartServer(ServerConfig{Heuristic: "HMCT", Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	s, err := sched.ByName("MSF")
	if err != nil {
		t.Fatal(err)
	}
	_, err = live.StartAgent(live.AgentConfig{
		Scheduler: s, Clock: clock, Join: fs.Addr(), Name: "odd",
	})
	if err == nil || !strings.Contains(err.Error(), "runs") {
		t.Fatalf("mismatched join error = %v, want heuristic rejection", err)
	}
	if got := fs.Dispatcher().NumMembers(); got != 0 {
		t.Errorf("mismatched member admitted: %d members", got)
	}
}

// TestJoinRejectsShardedAgent pins that a sharded agent cannot serve
// as a federation member.
func TestJoinRejectsShardedAgent(t *testing.T) {
	clock := live.NewClock(1000)
	fs, err := StartServer(ServerConfig{Heuristic: "HMCT", Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	s, err := sched.ByName("HMCT")
	if err != nil {
		t.Fatal(err)
	}
	_, err = live.StartAgent(live.AgentConfig{
		Scheduler: s, Clock: clock, Shards: 2, Join: fs.Addr(),
	})
	if err == nil || !strings.Contains(err.Error(), "sharded") {
		t.Fatalf("sharded join error = %v, want rejection", err)
	}
}

// TestRemoteRejectsNonRegistrySpec pins the TCP transport's
// wire-transportability restriction: specs outside the task registry
// cannot be federated and fail eligibility cleanly.
func TestRemoteRejectsNonRegistrySpec(t *testing.T) {
	r := NewRemote("m", "127.0.0.1:1", 50*time.Millisecond)
	custom := &task.Spec{Problem: "synthetic", Variant: 99,
		CostOn: map[string]task.Cost{"x": {Compute: 1}}}
	ok, err := r.CanSolve(custom)
	if err != nil || ok {
		t.Fatalf("CanSolve(custom) = %v, %v; want false, nil without dialing", ok, err)
	}
	if _, err := r.Evaluate(agent.Request{JobID: 1, Spec: custom}); err == nil {
		t.Fatal("Evaluate(custom spec) succeeded, want wire-transportability error")
	}
	// A spec that reuses a registry (Problem, Variant) key but carries
	// rewritten costs must be rejected too: only the key crosses the
	// wire, and the member would silently schedule against the
	// registry's cost table instead of the rewritten one.
	shadow := &task.Spec{Problem: "wastecpu", Variant: 400,
		CostOn: map[string]task.Cost{"artimon": {Compute: 1}}}
	ok, err = r.CanSolve(shadow)
	if err != nil || ok {
		t.Fatalf("CanSolve(shadowed registry key) = %v, %v; want false, nil", ok, err)
	}
	if _, err := r.Evaluate(agent.Request{JobID: 2, Spec: shadow}); err == nil {
		t.Fatal("Evaluate(shadowed registry key) succeeded, want wire-transportability error")
	}
	// The genuine registry spec stays transportable.
	if _, err := wireTask(agent.Request{JobID: 3, Spec: task.WasteCPU(400)}); err != nil {
		t.Fatalf("wireTask(registry spec): %v", err)
	}
}

// TestConfigDefaults pins the zero-value resolution the committed
// study and runtime rely on.
func TestConfigDefaults(t *testing.T) {
	var cfg Config
	cfg.defaults()
	if cfg.Members != 1 || cfg.Policy == nil || cfg.StaleAfter != 2*time.Second ||
		cfg.MaxFailures != 3 || cfg.ProbeInterval != cfg.StaleAfter || cfg.Now == nil {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
}
