// Package stats provides the deterministic random number generation and
// summary statistics used throughout the reproduction. All stochastic
// behaviour in the repository (arrival processes, task mixes, execution
// noise, network jitter) flows through stats.RNG so that every experiment
// is exactly reproducible from a single uint64 seed.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo random number generator
// based on the SplitMix64 sequence. It is not safe for concurrent use;
// give each goroutine its own RNG (use Split).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators built from
// the same seed produce identical sequences on every platform.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent generator from r. The derived stream is
// decorrelated from the parent's subsequent output, so subsystems can be
// given their own streams without consuming each other's numbers.
func (r *RNG) Split() *RNG {
	// Mix the next output into a new state with a distinct odd constant.
	return &RNG{state: r.Uint64()*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean.
// It is the inter-arrival draw for the paper's Poisson arrival process.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("stats: Exp called with non-positive mean")
	}
	u := r.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(1-u)
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// NoiseFactor returns a multiplicative execution-noise factor
// 1 + N(0, sigma) truncated to [1-3*sigma, 1+3*sigma]. With sigma = 0.03
// this reproduces the <3% mean deviation between real and simulated
// completion dates reported in the paper's Table 1.
func (r *RNG) NoiseFactor(sigma float64) float64 {
	if sigma == 0 {
		return 1
	}
	f := 1 + r.Normal(0, sigma)
	lo, hi := 1-3*sigma, 1+3*sigma
	if f < lo {
		f = lo
	}
	if f > hi {
		f = hi
	}
	return f
}

// Pick returns a uniformly chosen index weighted by the weights slice.
// Zero or negative total weight panics.
func (r *RNG) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("stats: Pick called with non-positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes xs in place (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
