// Command casim runs one simulated client-agent-server experiment: a
// metatask of matmul (set 1) or waste-cpu (set 2) tasks scheduled by a
// chosen heuristic onto the paper's testbed, printing the §3 metrics
// and optionally a CSV event trace.
//
// Usage:
//
//	casim -heuristic MSF -set 2 -n 500 -d 25 -seed 101
//	casim -heuristic HMCT -set 1 -d 20 -trace trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"casched"
)

func main() {
	var (
		heuristic = flag.String("heuristic", "MSF", "scheduling heuristic: MCT, HMCT, MP, MSF, MNI, Random, RoundRobin")
		set       = flag.Int("set", 2, "experiment set: 1 (matmul, memory model) or 2 (waste-cpu)")
		n         = flag.Int("n", 500, "metatask size")
		d         = flag.Float64("d", 25, "mean inter-arrival time in seconds")
		seed      = flag.Uint64("seed", 101, "metatask and noise seed")
		noise     = flag.Float64("noise", 0.03, "execution noise sigma")
		ft        = flag.Bool("ft", false, "enable NetSolve-style fault tolerance (resubmission)")
		htmSync   = flag.Bool("htm-sync", false, "enable HTM/execution synchronization")
		traceOut  = flag.String("trace", "", "write a CSV event trace to this file")
		ganttOut  = flag.Bool("gantt", false, "render the per-server Gantt charts of the run")
	)
	flag.Parse()

	if err := run(*heuristic, *set, *n, *d, *seed, *noise, *ft, *htmSync, *traceOut, *ganttOut); err != nil {
		fmt.Fprintln(os.Stderr, "casim:", err)
		os.Exit(1)
	}
}

func run(heuristic string, set, n int, d float64, seed uint64, noise float64,
	ft, htmSync bool, traceOut string, ganttOut bool) error {

	s, err := casched.NewScheduler(heuristic)
	if err != nil {
		return err
	}

	var mt *casched.Metatask
	var names []string
	switch set {
	case 1:
		mt = casched.GenerateSet1(n, d, seed)
		names = casched.Set1Servers
	case 2:
		mt = casched.GenerateSet2(n, d, seed)
		names = casched.Set2Servers
	default:
		return fmt.Errorf("unknown set %d", set)
	}
	servers, err := casched.TestbedServers(names)
	if err != nil {
		return err
	}

	cfg := casched.RunConfig{
		Servers:        servers,
		Scheduler:      s,
		Seed:           seed,
		NoiseSigma:     noise,
		MemoryModel:    set == 1,
		FaultTolerance: ft,
		HTMSync:        htmSync,
	}
	var log casched.TraceLog
	if traceOut != "" {
		cfg.Log = &log
	}

	res, err := casched.Run(cfg, mt)
	if err != nil {
		return err
	}
	rep := res.Report()
	fmt.Printf("heuristic        %s\n", rep.Heuristic)
	fmt.Printf("submitted        %d\n", rep.Submitted)
	fmt.Printf("completed        %d\n", rep.Completed)
	fmt.Printf("makespan         %.1f s\n", rep.Makespan)
	fmt.Printf("sum-flow         %.1f s\n", rep.SumFlow)
	fmt.Printf("max-flow         %.1f s\n", rep.MaxFlow)
	fmt.Printf("max-stretch      %.2f\n", rep.MaxStretch)
	fmt.Printf("mean-stretch     %.2f\n", rep.MeanStretch)
	fmt.Printf("resubmissions    %d\n", rep.Resubmissions)
	for _, c := range res.Collapses {
		fmt.Printf("collapse         %s at %.1f s (%d tasks lost)\n", c.Server, c.Time, c.Lost)
	}

	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := log.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("trace            %s (%d events)\n", traceOut, log.Len())
	}
	if ganttOut {
		fmt.Println()
		for _, name := range names {
			sim, ok := res.ExecSims[name]
			if !ok {
				continue
			}
			fmt.Print(casched.ExtractGantt(sim).Render(100))
			fmt.Println()
		}
	}
	return nil
}
