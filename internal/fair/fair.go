// Package fair implements the multi-tenant arbitration primitives of
// the agent's intake path: a weighted-share virtual-time ledger (the
// CFS fair-clock/group-scheduling design applied to task intake) and a
// token-bucket intake limiter driven by experiment time.
//
// The paper schedules one anonymous task stream; a production agent
// serves contending tenants. The ledger arbitrates which tenant's
// queued task is offered to the heuristic next: each tenant carries a
// fair clock (virtual runtime) advanced by the service it consumes,
// normalized by its configured weight — picking the backlogged tenant
// with the minimum fair clock yields long-run service shares
// proportional to the weights, and a backlogged tenant can never
// starve (its clock stands still while every other tenant's advances).
// Shares nest: a tenant path "gold/alice" is arbitrated first among
// tenants ("gold" vs "silver"), then among that tenant's clients —
// CFS group scheduling, one level per path segment.
//
// The token bucket gates raw intake ahead of arbitration. It is
// denominated in experiment seconds (the dates tasks arrive with), not
// wall time, so simulated and live drivers share one limiter and
// replays are deterministic.
package fair
