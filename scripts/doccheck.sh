#!/usr/bin/env bash
# doccheck.sh — documentation drift gate over docs/operations.md.
#
# Two cross-checks, each enforced in both directions:
#
#   1. Flags. Every flag a binary's live -h output advertises must
#      appear in that binary's table in docs/operations.md, and every
#      flag the table documents must exist in the live output — so a
#      flag added, renamed or removed in cmd/ fails CI until the
#      operator doc is updated, and the doc cannot describe flags the
#      binaries no longer accept.
#
#   2. Metrics. Every casched_* series the telemetry exporter emits
#      must appear in the metrics reference, and every casched_* name
#      the document mentions must be emitted by the exporter.
#
# No arguments. Exits non-zero listing every discrepancy found.
set -euo pipefail
cd "$(dirname "$0")/.."

DOC=docs/operations.md
TELEMETRY=internal/telemetry/telemetry.go
fail=0

complain() {
	echo "doccheck: $*" >&2
	fail=1
}

# The flag package prints each defined flag as "  -name value" (and
# exits 0 on -h); continuation lines carry no leading dash.
live_flags() {
	go run "./cmd/$1" -h 2>&1 | sed -n 's/^[[:space:]]\{1,\}-\([a-z-]*\).*/\1/p' | sort -u
}

# casagent and casfed have their own "### <binary>" table whose first
# column is the backticked flag; casserver and casclient share one
# table whose first column is the binary name.
doc_flags() {
	case "$1" in
	casagent | casfed)
		awk -v want="### $1" '
			/^### / { insec = ($0 == want) }
			insec && /^\| `-/ { print }
		' "$DOC" | sed -n 's/^| `-\([a-z-]*\)`.*/\1/p' | sort -u
		;;
	casserver | casclient)
		sed -n "s/^| $1 | \`-\([a-z-]*\)\`.*/\1/p" "$DOC" | sort -u
		;;
	esac
}

for bin in casagent casfed casserver casclient; do
	live="$(live_flags "$bin")"
	doc="$(doc_flags "$bin")"
	if [ -z "$doc" ]; then
		complain "$DOC documents no flags for $bin"
		continue
	fi
	missing="$(comm -23 <(printf '%s\n' "$live") <(printf '%s\n' "$doc"))"
	if [ -n "$missing" ]; then
		complain "$bin flags missing from $DOC:" $missing
	fi
	stale="$(comm -13 <(printf '%s\n' "$live") <(printf '%s\n' "$doc"))"
	if [ -n "$stale" ]; then
		complain "$DOC documents $bin flags the binary does not define:" $stale
	fi
done

code_metrics="$(grep -oE 'casched_[a-z_]*[a-z]' "$TELEMETRY" | sort -u || true)"
doc_metrics="$(grep -oE 'casched_[a-z_]*[a-z]' "$DOC" | sort -u || true)"
if [ -z "$code_metrics" ]; then
	complain "no casched_* series found in $TELEMETRY (exporter moved?)"
fi
missing="$(comm -23 <(printf '%s\n' "$code_metrics") <(printf '%s\n' "$doc_metrics"))"
if [ -n "$missing" ]; then
	complain "exported metrics missing from $DOC:" $missing
fi
stale="$(comm -13 <(printf '%s\n' "$code_metrics") <(printf '%s\n' "$doc_metrics"))"
if [ -n "$stale" ]; then
	complain "$DOC mentions metrics the exporter does not emit:" $stale
fi

if [ "$fail" -ne 0 ]; then
	exit 1
fi
echo "doccheck: OK ($DOC matches the binaries' -h output and $TELEMETRY)"
