package fair

import (
	"math"
	"sort"
	"strings"
)

// DefaultWeight is the share weight of a tenant (or nested group) the
// configuration does not mention.
const DefaultWeight = 1.0

// Ledger is the weighted-share virtual-time ledger. Each node of the
// tenant tree (tenants, and nested groups below them — "gold",
// "gold/alice") carries a virtual runtime advanced on every Charge by
// work/weight; Pick returns, among the currently backlogged paths, the
// one whose node chain is furthest behind. A node first seen joins at
// its siblings' serving frontier, so a newcomer competes fairly from
// now on instead of claiming credit for a past in which it did not
// exist.
//
// The ledger is deliberately clock-free: it never decays state, so a
// tenant that was backlogged but underserved keeps its full claim
// across arbitrary call patterns (strict long-run weighted fairness).
// The zero Ledger is not usable; construct with NewLedger. Not safe
// for concurrent use — callers (the agent core) serialize under their
// own lock.
type Ledger struct {
	weights map[string]float64
	root    *node
}

// node is one level of the group-scheduling tree.
type node struct {
	vrun     float64
	children map[string]*node
	// frontier is the largest virtual runtime any child reached — the
	// level's serving frontier, where newly seen children join.
	frontier float64
}

// NewLedger constructs a ledger with the given weights, keyed by node
// path ("gold" weights the tenant, "gold/alice" the client within it).
// Paths absent from the map weigh DefaultWeight. A nil or empty map is
// valid: every tenant then shares equally.
func NewLedger(weights map[string]float64) *Ledger {
	w := make(map[string]float64, len(weights))
	for k, v := range weights {
		if v > 0 {
			w[k] = v
		}
	}
	return &Ledger{weights: w, root: &node{children: make(map[string]*node)}}
}

// Weight returns the configured weight of a node path.
func (l *Ledger) Weight(path string) float64 {
	if w, ok := l.weights[path]; ok {
		return w
	}
	return DefaultWeight
}

// child returns (creating if needed) the named child, joining
// newcomers at the level's serving frontier.
func (n *node) child(name string) *node {
	c, ok := n.children[name]
	if !ok {
		c = &node{vrun: n.frontier, children: make(map[string]*node)}
		n.children[name] = c
	}
	return c
}

// Pick returns, among the given backlogged paths, the one to serve
// next: at each tree level the child with the minimum virtual runtime
// wins (ties break lexicographically, so arbitration is
// deterministic), then the walk descends into that child's candidates.
// An empty candidate set returns "".
func (l *Ledger) Pick(paths []string) string {
	if len(paths) == 0 {
		return ""
	}
	n := l.root
	var picked strings.Builder
	remaining := paths
	for depth := 0; len(remaining) > 0; depth++ {
		// Distinct segment names at this depth among the remaining
		// candidates.
		best := ""
		bestV := math.Inf(1)
		for _, p := range remaining {
			seg, _ := segmentAt(p, depth)
			c := n.child(seg)
			if c.vrun < bestV || (c.vrun == bestV && seg < best) {
				best, bestV = seg, c.vrun
			}
		}
		if picked.Len() > 0 {
			picked.WriteByte('/')
		}
		picked.WriteString(best)
		n = n.children[best]
		// Keep only candidates passing through the picked segment; stop
		// when one of them terminates exactly here.
		next := remaining[:0:0]
		done := false
		for _, p := range remaining {
			seg, last := segmentAt(p, depth)
			if seg != best {
				continue
			}
			if last {
				done = true
				continue
			}
			next = append(next, p)
		}
		if done || len(next) == 0 {
			return picked.String()
		}
		remaining = next
	}
	return picked.String()
}

// Charge advances the fair clocks along a path by work service-seconds
// normalized by each level's weight, and pushes the serving frontiers
// forward. Call it once per unit of service committed to the path.
func (l *Ledger) Charge(path string, work float64) {
	if work <= 0 || path == "" {
		return
	}
	n := l.root
	for depth := 0; ; depth++ {
		seg, last := segmentAt(path, depth)
		prefix := prefixThrough(path, depth)
		c := n.child(seg)
		c.vrun += work / l.Weight(prefix)
		if c.vrun > n.frontier {
			n.frontier = c.vrun
		}
		if last {
			return
		}
		n = c
	}
}

// VTime returns the current virtual runtime of a node path (0 for a
// path never seen), for tests and diagnostics.
func (l *Ledger) VTime(path string) float64 {
	n := l.root
	for depth := 0; ; depth++ {
		seg, last := segmentAt(path, depth)
		c, ok := n.children[seg]
		if !ok {
			return 0
		}
		if last {
			return c.vrun
		}
		n = c
	}
}

// Tenants returns every top-level tenant the ledger has seen, sorted.
func (l *Ledger) Tenants() []string {
	out := make([]string, 0, len(l.root.children))
	for name := range l.root.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// segmentAt returns the depth-th "/"-separated segment of path and
// whether it is the last one. Depths past the end repeat the final
// segment (callers never go there on well-formed input).
func segmentAt(path string, depth int) (seg string, last bool) {
	rest := path
	for i := 0; i < depth; i++ {
		j := strings.IndexByte(rest, '/')
		if j < 0 {
			return rest, true
		}
		rest = rest[j+1:]
	}
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		return rest[:j], false
	}
	return rest, true
}

// prefixThrough returns the path prefix covering segments 0..depth.
func prefixThrough(path string, depth int) string {
	idx := 0
	for i := 0; i <= depth; i++ {
		j := strings.IndexByte(path[idx:], '/')
		if j < 0 {
			return path
		}
		idx += j + 1
	}
	return path[:idx-1]
}
