package htm

import (
	"math"
	"testing"

	"casched/internal/task"
)

// retentionSpec is solvable on both test servers.
func retentionSpec() *task.Spec {
	return &task.Spec{Problem: "p", Variant: 1, CostOn: map[string]task.Cost{
		"s1": {Input: 1, Compute: 20, Output: 1},
		"s2": {Input: 1, Compute: 30, Output: 1},
	}}
}

// TestRetentionPredictionsUnchanged pins WithRetention's core contract:
// pruning completed records must not move a single prediction. Two
// managers replay the same placement stream — one unbounded, one with a
// tight retention window — and every candidate evaluation along the way
// must agree exactly.
func TestRetentionPredictionsUnchanged(t *testing.T) {
	servers := []string{"s1", "s2"}
	full := New(servers)
	pruned := New(servers, WithRetention(100))
	spec := retentionSpec()

	probe := func(id int, at float64) {
		t.Helper()
		a, err := full.EvaluateAll(id, spec, at, servers)
		if err != nil {
			t.Fatal(err)
		}
		b, err := pruned.EvaluateAll(id, spec, at, servers)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("at %.0f: %d vs %d predictions", at, len(a), len(b))
		}
		for i := range a {
			if a[i].Server != b[i].Server ||
				math.Abs(a[i].Completion-b[i].Completion) > 1e-9 ||
				math.Abs(a[i].Perturbation-b[i].Perturbation) > 1e-9 ||
				a[i].Interfered != b[i].Interfered {
				t.Fatalf("at %.0f: prediction %d diverged: %+v vs %+v", at, i, a[i], b[i])
			}
		}
	}

	// A long stream: placements every 40s alternate servers; each task
	// runs ~22-32s, so by the time the window (100s) slides past a task
	// it has long completed.
	for i := 0; i < 40; i++ {
		at := float64(i) * 40
		server := servers[i%2]
		if err := full.Place(i, spec, at, server); err != nil {
			t.Fatal(err)
		}
		if err := pruned.Place(i, spec, at, server); err != nil {
			t.Fatal(err)
		}
		probe(10_000+i, at)
	}

	// Live jobs keep identical projections through both managers.
	for _, id := range pruned.Placements() {
		pa, oka := full.PredictedCompletion(id)
		pb, okb := pruned.PredictedCompletion(id)
		if oka != okb || math.Abs(pa-pb) > 1e-9 {
			t.Errorf("job %d: projection %v,%v vs %v,%v", id, pa, oka, pb, okb)
		}
	}
}

// TestRetentionBoundsHistory verifies the compaction actually happens:
// the pruned manager forgets old completed records (placements and
// per-server job lists stay bounded) while the unbounded one keeps
// everything.
func TestRetentionBoundsHistory(t *testing.T) {
	servers := []string{"s1", "s2"}
	full := New(servers)
	pruned := New(servers, WithRetention(100))
	spec := retentionSpec()
	const n = 60
	for i := 0; i < n; i++ {
		at := float64(i) * 40
		server := servers[i%2]
		if err := full.Place(i, spec, at, server); err != nil {
			t.Fatal(err)
		}
		if err := pruned.Place(i, spec, at, server); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(full.Placements()); got != n {
		t.Fatalf("unbounded manager lost records: %d of %d", got, n)
	}
	got := len(pruned.Placements())
	if got >= n/2 {
		t.Errorf("retention kept %d of %d records, want far fewer", got, n)
	}
	if got == 0 {
		t.Error("retention pruned live jobs")
	}
	for _, name := range servers {
		sim, ok := pruned.Sim(name)
		if !ok {
			t.Fatalf("missing sim %s", name)
		}
		if jobs := len(sim.Jobs()); jobs >= n/2 {
			t.Errorf("%s trace holds %d records, want bounded by the window", name, jobs)
		}
	}
	// A pruned job has no projection anymore; a live one still does.
	if _, ok := pruned.PredictedCompletion(0); ok {
		t.Error("pruned job still has a projection")
	}
	if _, ok := pruned.PredictedCompletion(n - 1); !ok {
		t.Error("live job lost its projection")
	}
}
