package live

import (
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"

	"casched/internal/htm"
	"casched/internal/sched"
	"casched/internal/stats"
	"casched/internal/task"
	"casched/internal/trace"
)

// AgentConfig parameterizes a live agent.
type AgentConfig struct {
	// Scheduler is the heuristic the agent applies.
	Scheduler sched.Scheduler
	// Clock is the experiment clock shared by all components.
	Clock *Clock
	// Seed drives randomized tie-breaking.
	Seed uint64
	// Log, when non-nil, receives events.
	Log *trace.Log
	// HTMSync enables trace re-anchoring on completion messages.
	HTMSync bool
	// HTMWorkers bounds the HTM's candidate-evaluation worker pool
	// (default 0 = GOMAXPROCS).
	HTMWorkers int
	// Addr is the TCP listen address (default "127.0.0.1:0", an
	// ephemeral loopback port).
	Addr string
}

// serverEntry is the agent's view of one registered server.
type serverEntry struct {
	name string
	addr string
	// belief is the monitor-based load view: last report plus the two
	// NetSolve corrections.
	reported       float64
	assignedSince  int
	completedSince int
}

// Agent is the central scheduler of the live deployment. It exposes
// the RPC service "Agent" and owns the HTM.
type Agent struct {
	cfg AgentConfig

	mu      sync.Mutex
	servers map[string]*serverEntry
	order   []string
	htmMgr  *htm.Manager
	rng     *stats.RNG
	// predictions maps task keys to the HTM completion predicted at
	// placement.
	predictions map[int]float64
	placedJobs  map[int]bool

	lis net.Listener
	srv *rpc.Server
}

// StartAgent launches an agent listening on 127.0.0.1 (an ephemeral
// port) and returns it together with its address.
func StartAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("live: agent needs a scheduler")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("live: agent needs a clock")
	}
	a := &Agent{
		cfg:         cfg,
		servers:     make(map[string]*serverEntry),
		rng:         stats.NewRNG(cfg.Seed),
		predictions: make(map[int]float64),
		placedJobs:  make(map[int]bool),
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: agent listen: %w", err)
	}
	a.lis = lis
	a.srv = rpc.NewServer()
	if err := a.srv.RegisterName("Agent", &AgentService{a}); err != nil {
		lis.Close()
		return nil, fmt.Errorf("live: agent rpc register: %w", err)
	}
	go a.serve()
	return a, nil
}

// Addr returns the agent's RPC address.
func (a *Agent) Addr() string { return a.lis.Addr().String() }

// Close stops accepting connections.
func (a *Agent) Close() error { return a.lis.Close() }

// serve accepts RPC connections until the listener closes.
func (a *Agent) serve() {
	for {
		conn, err := a.lis.Accept()
		if err != nil {
			return
		}
		go a.srv.ServeConn(conn)
	}
}

// log appends an event if logging is configured.
func (a *Agent) log(r trace.Record) {
	if a.cfg.Log != nil {
		a.cfg.Log.Add(r)
	}
}

// register adds a server to the pool (idempotent by name).
func (a *Agent) register(args RegisterArgs) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.servers[args.Name]; !ok {
		a.order = append(a.order, args.Name)
		sort.Strings(a.order)
	}
	a.servers[args.Name] = &serverEntry{name: args.Name, addr: args.Addr}
	if sched.UsesHTM(a.cfg.Scheduler) {
		opts := []htm.Option{htm.WithWorkers(a.cfg.HTMWorkers)}
		if a.cfg.HTMSync {
			opts = append(opts, htm.WithSync())
		}
		// Rebuild the HTM with the current server set; registration
		// happens before any scheduling, as in NetSolve's deployment
		// order (agent first, then servers, then clients).
		a.htmMgr = htm.New(a.order, opts...)
		a.predictions = make(map[int]float64)
		a.placedJobs = make(map[int]bool)
	}
	a.log(trace.Record{Time: a.cfg.Clock.Now(), Kind: "register", Server: args.Name, TaskID: -1})
}

// loadInfo adapts the agent's beliefs to sched.LoadInfo.
type agentLoadInfo struct{ a *Agent }

func (li agentLoadInfo) LoadEstimate(server string) float64 {
	// Caller already holds a.mu.
	e, ok := li.a.servers[server]
	if !ok {
		return 0
	}
	v := e.reported + float64(e.assignedSince) - float64(e.completedSince)
	if v < 0 {
		return 0
	}
	return v
}

// schedule picks a server for a request and commits the decision.
func (a *Agent) schedule(args ScheduleArgs) (ScheduleReply, error) {
	spec, err := task.Resolve(args.Problem, args.Variant)
	if err != nil {
		return ScheduleReply{}, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()

	now := a.cfg.Clock.Now()
	var candidates []string
	for _, name := range a.order {
		if _, ok := spec.Cost(name); ok {
			candidates = append(candidates, name)
		}
	}
	if len(candidates) == 0 {
		return ScheduleReply{}, fmt.Errorf("live: no server solves %s", spec.Name())
	}

	ctx := &sched.Context{
		Now:        now,
		Task:       &task.Task{ID: args.TaskKey, Spec: spec, Arrival: args.Arrival},
		JobID:      args.TaskKey,
		Candidates: candidates,
		HTM:        a.htmMgr,
		Info:       agentLoadInfo{a},
		RNG:        a.rng,
	}
	server, err := a.cfg.Scheduler.Choose(ctx)
	if err != nil {
		return ScheduleReply{}, fmt.Errorf("live: scheduling task %d: %w", args.TaskKey, err)
	}
	entry := a.servers[server]
	entry.assignedSince++ // NetSolve assignment correction

	if a.htmMgr != nil {
		if err := a.htmMgr.Place(args.TaskKey, spec, now, server); err != nil {
			return ScheduleReply{}, fmt.Errorf("live: HTM placement: %w", err)
		}
		a.placedJobs[args.TaskKey] = true
		if c, ok := a.htmMgr.PredictedCompletion(args.TaskKey); ok {
			a.predictions[args.TaskKey] = c
		}
	}
	a.log(trace.Record{Time: now, Kind: "schedule", Server: server, TaskID: args.TaskKey})
	return ScheduleReply{Server: server, Addr: entry.addr}, nil
}

// taskDone processes a server's completion message.
func (a *Agent) taskDone(args TaskDoneArgs) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if e, ok := a.servers[args.Server]; ok {
		e.completedSince++ // NetSolve completion correction
	}
	if a.htmMgr != nil && a.placedJobs[args.TaskKey] {
		_ = a.htmMgr.NotifyCompletion(args.TaskKey, args.At)
	}
	a.log(trace.Record{Time: args.At, Kind: "done", Server: args.Server, TaskID: args.TaskKey})
}

// loadReport ingests a periodic monitor report.
func (a *Agent) loadReport(args LoadReportArgs) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if e, ok := a.servers[args.Name]; ok {
		e.reported = args.Load
		e.assignedSince = 0
		e.completedSince = 0
	}
}

// Prediction returns the HTM completion predicted when the task was
// placed (HTM heuristics only).
func (a *Agent) Prediction(taskKey int) (float64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.predictions[taskKey]
	return c, ok
}

// FinalPredictions returns the HTM's end-of-run simulated completion
// date for every placed task — the "simulated completion date" column
// of Table 1.
func (a *Agent) FinalPredictions() map[int]float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[int]float64)
	if a.htmMgr == nil {
		return out
	}
	for key := range a.placedJobs {
		if c, ok := a.htmMgr.PredictedCompletion(key); ok {
			out[key] = c
		}
	}
	return out
}

// AgentService is the RPC facade. Methods follow net/rpc conventions.
type AgentService struct{ a *Agent }

// Register handles server registration.
func (s *AgentService) Register(args RegisterArgs, _ *Ack) error {
	s.a.register(args)
	return nil
}

// Schedule handles a client scheduling request.
func (s *AgentService) Schedule(args ScheduleArgs, reply *ScheduleReply) error {
	r, err := s.a.schedule(args)
	if err != nil {
		return err
	}
	*reply = r
	return nil
}

// TaskDone handles a server completion message.
func (s *AgentService) TaskDone(args TaskDoneArgs, _ *Ack) error {
	s.a.taskDone(args)
	return nil
}

// LoadReport handles a periodic monitor report.
func (s *AgentService) LoadReport(args LoadReportArgs, _ *Ack) error {
	s.a.loadReport(args)
	return nil
}
