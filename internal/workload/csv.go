package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"casched/internal/task"
)

// WriteCSV serializes a metatask as CSV, so experiments can be archived
// and replayed exactly — the equivalent of the submission logs the
// paper's instrumented NetSolve produced. The columns are id, problem,
// variant, arrival; when any task carries a tenant or a deadline the
// optional tenant and deadline columns are appended, so traces without
// multi-tenant state keep the historical 4-column format byte-for-byte.
// Arrival and deadline are written in the shortest decimal form that
// parses back to the identical float64, so a round-tripped trace
// replays bit-identically, not merely to within truncation error.
func WriteCSV(w io.Writer, mt *task.Metatask) error {
	if err := mt.Validate(); err != nil {
		return fmt.Errorf("workload: write csv: %w", err)
	}
	withTenant, withDeadline := false, false
	for _, t := range mt.Tasks {
		withTenant = withTenant || t.Tenant != ""
		withDeadline = withDeadline || t.Deadline != 0
	}
	header := []string{"id", "problem", "variant", "arrival"}
	if withTenant {
		header = append(header, "tenant")
	}
	if withDeadline {
		header = append(header, "deadline")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("workload: write csv header: %w", err)
	}
	for _, t := range mt.Tasks {
		row := []string{
			strconv.Itoa(t.ID),
			t.Spec.Problem,
			strconv.Itoa(t.Spec.Variant),
			strconv.FormatFloat(t.Arrival, 'g', -1, 64),
		}
		if withTenant {
			row = append(row, t.Tenant)
		}
		if withDeadline {
			row = append(row, strconv.FormatFloat(t.Deadline, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("workload: write csv row %d: %w", t.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a metatask previously written by WriteCSV. Task specs
// are resolved through task.Resolve, so only the built-in problems
// (matmul, wastecpu) round-trip. The tenant and deadline columns are
// optional, in either order after the four required columns; traces
// without them load as the single anonymous stream with no deadlines,
// so every pre-existing trace stays valid.
func ReadCSV(r io.Reader, name string) (*task.Metatask, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("workload: read csv: empty file")
	}
	header := rows[0]
	if len(header) < 4 || header[0] != "id" || header[1] != "problem" ||
		header[2] != "variant" || header[3] != "arrival" {
		return nil, fmt.Errorf("workload: read csv: unexpected header %v", header)
	}
	tenantCol, deadlineCol := -1, -1
	for i, col := range header[4:] {
		switch {
		case col == "tenant" && tenantCol < 0:
			tenantCol = 4 + i
		case col == "deadline" && deadlineCol < 0:
			deadlineCol = 4 + i
		default:
			return nil, fmt.Errorf("workload: read csv: unexpected header column %q", col)
		}
	}
	mt := &task.Metatask{Name: name}
	for i, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("workload: read csv: row %d has %d fields, header has %d",
				i+1, len(row), len(header))
		}
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("workload: read csv: row %d id: %w", i+1, err)
		}
		variant, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, fmt.Errorf("workload: read csv: row %d variant: %w", i+1, err)
		}
		arrival, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: read csv: row %d arrival: %w", i+1, err)
		}
		spec, err := task.Resolve(row[1], variant)
		if err != nil {
			return nil, fmt.Errorf("workload: read csv: row %d: %w", i+1, err)
		}
		t := &task.Task{ID: id, Spec: spec, Arrival: arrival}
		if tenantCol >= 0 {
			t.Tenant = row[tenantCol]
		}
		if deadlineCol >= 0 && row[deadlineCol] != "" {
			t.Deadline, err = strconv.ParseFloat(row[deadlineCol], 64)
			if err != nil {
				return nil, fmt.Errorf("workload: read csv: row %d deadline: %w", i+1, err)
			}
		}
		mt.Tasks = append(mt.Tasks, t)
	}
	if err := mt.Validate(); err != nil {
		return nil, fmt.Errorf("workload: read csv: %w", err)
	}
	return mt, nil
}
