package gantt

import (
	"math"
	"strings"
	"testing"

	"casched/internal/fluid"
	"casched/internal/task"
)

// figure1Sim builds the Figure 1 scenario: tasks 1 and 2 computing,
// then task 3 arrives.
func figure1Sim(t *testing.T, withTask3 bool) *fluid.Sim {
	t.Helper()
	s := fluid.New(fluid.Config{Name: "srv"})
	if err := s.Add(1, 0, task.Cost{Input: 10, Compute: 100, Output: 5}, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(2, 20, task.Cost{Input: 10, Compute: 150, Output: 5}, 0); err != nil {
		t.Fatal(err)
	}
	s.AdvanceTo(80)
	if withTask3 {
		if err := s.Add(3, 80, task.Cost{Input: 10, Compute: 60, Output: 5}, 0); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestExtractSegments(t *testing.T) {
	chart := Extract(figure1Sim(t, false))
	if chart.Server != "srv" {
		t.Errorf("server = %q", chart.Server)
	}
	var phases []task.Phase
	for _, seg := range chart.Segments {
		if seg.JobID == 1 {
			phases = append(phases, seg.Phase)
		}
		if seg.End <= seg.Start {
			t.Errorf("degenerate segment %+v", seg)
		}
	}
	if len(phases) != 3 {
		t.Fatalf("task 1 has %d segments, want 3", len(phases))
	}
	if chart.Horizon <= 0 {
		t.Error("horizon not set")
	}
}

func TestExtractDoesNotMutate(t *testing.T) {
	s := figure1Sim(t, false)
	nowBefore := s.Now()
	active := s.ActiveCount()
	Extract(s)
	if s.Now() != nowBefore || s.ActiveCount() != active {
		t.Error("Extract mutated the simulation")
	}
}

// TestSharesReflectInsertion mirrors Figure 1: adding task 3 changes
// the CPU split from 50%/50% to 33.3% each during the overlap.
func TestSharesReflectInsertion(t *testing.T) {
	before := Extract(figure1Sim(t, false))
	after := Extract(figure1Sim(t, true))

	maxBefore, maxAfter := 0, 0
	for _, si := range before.Shares {
		if si.Computing > maxBefore {
			maxBefore = si.Computing
		}
	}
	for _, si := range after.Shares {
		if si.Computing > maxAfter {
			maxAfter = si.Computing
		}
	}
	if maxBefore != 2 {
		t.Errorf("max concurrency before = %d, want 2", maxBefore)
	}
	if maxAfter != 3 {
		t.Errorf("max concurrency after = %d, want 3", maxAfter)
	}
	// The three-way share interval must report 33.3%.
	found := false
	for _, si := range after.Shares {
		if si.Computing == 3 && math.Abs(si.Share()-1.0/3) < 1e-12 {
			found = true
		}
	}
	if !found {
		t.Error("no 33.3% share interval found after inserting task 3")
	}
	// Completion of old tasks must be later with task 3 present.
	if after.Horizon <= before.Horizon {
		t.Errorf("horizon before=%v after=%v: insertion must extend the chart",
			before.Horizon, after.Horizon)
	}
}

func TestShareIntervalShare(t *testing.T) {
	if (ShareInterval{Computing: 0}).Share() != 1 {
		t.Error("idle share must be 1")
	}
	if (ShareInterval{Computing: 4}).Share() != 0.25 {
		t.Error("4-way share must be 0.25")
	}
}

func TestRenderContainsRows(t *testing.T) {
	out := Extract(figure1Sim(t, true)).Render(60)
	for _, want := range []string{"server srv", "task 1", "task 2", "task 3", "#compute", "CPU shares:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "C") || !strings.Contains(out, "i") {
		t.Error("render missing phase glyphs")
	}
	if !strings.Contains(out, "33.3%") {
		t.Errorf("render missing 33.3%% annotation:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	s := fluid.New(fluid.Config{Name: "idle"})
	out := Extract(s).Render(40)
	if !strings.Contains(out, "empty schedule") {
		t.Errorf("empty render = %q", out)
	}
}

func TestRenderMinWidth(t *testing.T) {
	out := Extract(figure1Sim(t, false)).Render(1)
	if len(out) == 0 {
		t.Error("render with tiny width produced nothing")
	}
}

func TestExtractServersSorted(t *testing.T) {
	sims := map[string]*fluid.Sim{
		"zeta":  fluid.New(fluid.Config{Name: "zeta"}),
		"alpha": fluid.New(fluid.Config{Name: "alpha"}),
	}
	if err := sims["alpha"].Add(0, 0, task.Cost{Compute: 10}, 0); err != nil {
		t.Fatal(err)
	}
	charts := ExtractServers(sims)
	if len(charts) != 2 || charts[0].Server != "alpha" || charts[1].Server != "zeta" {
		t.Errorf("charts order wrong: %v, %v", charts[0].Server, charts[1].Server)
	}
	out := RenderAll(charts, 40)
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "zeta") {
		t.Errorf("RenderAll missing servers:\n%s", out)
	}
}
