package agent

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"casched/internal/htm"
	"casched/internal/sched"
	"casched/internal/task"
)

// flakyEvaluator wraps a real HTM evaluation surface and fails every
// candidate whose name is in failing — simulating a transient
// per-server evaluation error (collapsed trace, racing membership).
type flakyEvaluator struct {
	m       *htm.Manager
	failing map[string]bool
	calls   map[string]int
}

func (f *flakyEvaluator) EvaluateAll(id int, spec *task.Spec, arrival float64, candidates []string) ([]htm.Prediction, error) {
	var healthy []string
	var errs []error
	for _, s := range candidates {
		f.calls[s]++
		if f.failing[s] {
			errs = append(errs, fmt.Errorf("flaky: %s unavailable", s))
			continue
		}
		healthy = append(healthy, s)
	}
	var preds []htm.Prediction
	if len(healthy) > 0 {
		var err error
		preds, err = f.m.EvaluateAll(id, spec, arrival, healthy)
		if err != nil {
			errs = append(errs, err)
		}
	}
	return preds, errors.Join(errs...)
}

func (f *flakyEvaluator) ProjectedReady(server string) (float64, bool) {
	return f.m.ProjectedReady(server)
}

// TestBatchCacheTransientErrorNotPoisoned is the regression test for
// the error-poisoning bug: when EvaluateAll fails for some candidates,
// those candidates must NOT be cached as "known insolvable" — a later
// batch member has to re-probe them once they recover.
func TestBatchCacheTransientErrorNotPoisoned(t *testing.T) {
	m := htm.New([]string{"s1", "s2"})
	f := &flakyEvaluator{m: m, failing: map[string]bool{"s1": true}, calls: map[string]int{}}
	bc := newBatchCache(f)
	spec := twoServerSpec(10, 100)

	// First pass: s1 fails transiently, s2 evaluates. The partial
	// result suppresses the error (mirroring htm.Manager.EvaluateAll).
	preds, err := bc.EvaluateAll(1, spec, 0, []string{"s1", "s2"})
	if err != nil || len(preds) != 1 || preds[0].Server != "s2" {
		t.Fatalf("first pass: preds %v, err %v", preds, err)
	}

	// s1 recovers; the next batch member must see it again. Before the
	// fix the nil marker recorded on the failed pass hid s1 forever.
	f.failing["s1"] = false
	preds, err = bc.EvaluateAll(2, spec, 0, []string{"s1", "s2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 2 {
		t.Fatalf("after recovery preds = %v, want both servers (s1 poisoned as insolvable?)", preds)
	}
	// s2 was served from the cache: exactly one underlying probe.
	if f.calls["s2"] != 1 {
		t.Errorf("s2 probed %d times, want 1 (cache)", f.calls["s2"])
	}
	if f.calls["s1"] != 2 {
		t.Errorf("s1 probed %d times, want 2 (retry after transient failure)", f.calls["s1"])
	}
}

// TestBatchCacheInsolvableStillCached pins the flip side: on a fully
// successful pass, genuinely insolvable servers ARE remembered and not
// re-probed for later batch members.
func TestBatchCacheInsolvableStillCached(t *testing.T) {
	m := htm.New([]string{"s1", "s2", "s3"})
	f := &flakyEvaluator{m: m, failing: map[string]bool{}, calls: map[string]int{}}
	bc := newBatchCache(f)
	spec := twoServerSpec(10, 100) // s3 cannot solve it

	for pass := 0; pass < 3; pass++ {
		preds, err := bc.EvaluateAll(pass, spec, 0, []string{"s1", "s2", "s3"})
		if err != nil || len(preds) != 2 {
			t.Fatalf("pass %d: preds %v, err %v", pass, preds, err)
		}
	}
	if f.calls["s3"] != 1 {
		t.Errorf("insolvable s3 probed %d times, want 1", f.calls["s3"])
	}
}

// TestSubmitBatchMatchedSpreadsContendedBurst pins the tentpole
// end-to-end: under matched assignment a simultaneous burst spreads
// one task per server per wave, while the default greedy core piles
// onto the globally best server exactly like sequential Submit.
func TestSubmitBatchMatchedSpreadsContendedBurst(t *testing.T) {
	// Compute 10 on s1, 25 on s2: greedy HMCT places both tasks on s1
	// (10, then 20 shared < 25 idle); the matched wave uses both.
	spec := twoServerSpec(10, 25)
	reqs := []Request{
		{JobID: 0, TaskID: 0, Spec: spec, Arrival: 0},
		{JobID: 1, TaskID: 1, Spec: spec, Arrival: 0},
	}

	greedy := newCore(t, sched.NewHMCT(), "s1", "s2")
	gdecs, err := greedy.SubmitBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if gdecs[0].Server != "s1" || gdecs[1].Server != "s1" {
		t.Fatalf("greedy decisions = %v/%v, want both on s1", gdecs[0].Server, gdecs[1].Server)
	}

	matched, err := New(Config{Scheduler: sched.NewHMCT(), Seed: 1, BatchAssignment: true})
	if err != nil {
		t.Fatal(err)
	}
	matched.AddServer("s1")
	matched.AddServer("s2")
	mdecs, err := matched.SubmitBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	servers := map[string]bool{mdecs[0].Server: true, mdecs[1].Server: true}
	if !servers["s1"] || !servers["s2"] {
		t.Errorf("matched decisions = %v/%v, want one per server", mdecs[0].Server, mdecs[1].Server)
	}
	for i, d := range mdecs {
		if !d.HasPrediction {
			t.Errorf("matched decision %d has no prediction", i)
		}
		if p, ok := matched.Prediction(reqs[i].JobID); !ok || p != d.Predicted {
			t.Errorf("prediction bookkeeping for job %d: %v %v vs %v", reqs[i].JobID, p, ok, d.Predicted)
		}
	}
}

// TestSubmitBatchMatchedOverflowRounds drives k > servers: the batch
// must drain over several re-projected waves, every task placed.
func TestSubmitBatchMatchedOverflowRounds(t *testing.T) {
	matched, err := New(Config{Scheduler: sched.NewMSF(), Seed: 1, BatchAssignment: true})
	if err != nil {
		t.Fatal(err)
	}
	matched.AddServer("s1")
	matched.AddServer("s2")
	spec := twoServerSpec(10, 12)
	reqs := make([]Request, 7)
	for i := range reqs {
		reqs[i] = Request{JobID: i, TaskID: i, Spec: spec, Arrival: 0}
	}
	decs, err := matched.SubmitBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	perServer := map[string]int{}
	for i, d := range decs {
		if d.Server == "" {
			t.Fatalf("task %d not placed: %+v", i, d)
		}
		perServer[d.Server]++
	}
	if perServer["s1"]+perServer["s2"] != 7 || perServer["s1"] == 0 || perServer["s2"] == 0 {
		t.Errorf("placements = %v", perServer)
	}
	if matched.InFlight() != 7 {
		t.Errorf("in-flight = %d, want 7", matched.InFlight())
	}
}

// TestSubmitBatchMatchedMixedErrors: unschedulable and nil-spec batch
// members fail individually with joined errors while the rest commit,
// exactly like the greedy path's contract.
func TestSubmitBatchMatchedMixedErrors(t *testing.T) {
	matched, err := New(Config{Scheduler: sched.NewHMCT(), Seed: 1, BatchAssignment: true})
	if err != nil {
		t.Fatal(err)
	}
	matched.AddServer("s1")
	matched.AddServer("s2")
	bad := &task.Spec{Problem: "q", CostOn: map[string]task.Cost{"elsewhere": {Compute: 1}}}
	reqs := []Request{
		{JobID: 0, TaskID: 0, Spec: twoServerSpec(5, 9), Arrival: 0},
		{JobID: 1, TaskID: 1, Spec: bad, Arrival: 0},
		{JobID: 2, TaskID: 2, Spec: nil, Arrival: 0},
	}
	decs, err := matched.SubmitBatch(reqs)
	if !errors.Is(err, ErrUnschedulable) {
		t.Errorf("err = %v, want wrapped ErrUnschedulable", err)
	}
	if err == nil || !strings.Contains(err.Error(), "no spec") {
		t.Errorf("err = %v, want a no-spec failure too", err)
	}
	if decs[0].Server == "" || decs[1].Server != "" || decs[2].Server != "" {
		t.Errorf("decisions = %+v", decs)
	}
}

// TestBatchAssignmentNeedsScoredHeuristic: opting in with a heuristic
// that has no comparable objective is a construction-time error.
func TestBatchAssignmentNeedsScoredHeuristic(t *testing.T) {
	_, err := New(Config{Scheduler: sched.NewRoundRobin(), BatchAssignment: true})
	if err == nil {
		t.Fatal("RoundRobin with batch assignment accepted")
	}
	if _, err := New(Config{Scheduler: sched.NewMCT(), BatchAssignment: true}); err != nil {
		t.Errorf("MCT (scored, monitor-based) rejected: %v", err)
	}
}

// TestSubmitBatchDefaultStaysSequential re-pins the untouched default:
// without BatchAssignment, batch decisions are bit-identical to
// sequential Submit even for bursts that matched assignment would
// spread differently.
func TestSubmitBatchDefaultStaysSequential(t *testing.T) {
	spec := twoServerSpec(10, 25)
	mk := func() []Request {
		return []Request{
			{JobID: 0, TaskID: 0, Spec: spec, Arrival: 0},
			{JobID: 1, TaskID: 1, Spec: spec, Arrival: 0},
		}
	}
	seq := newCore(t, sched.NewHMCT(), "s1", "s2")
	var want []string
	for _, r := range mk() {
		d, err := seq.Submit(r)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, d.Server)
	}
	batch := newCore(t, sched.NewHMCT(), "s1", "s2")
	decs, err := batch.SubmitBatch(mk())
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range decs {
		if d.Server != want[i] {
			t.Errorf("batch decision %d = %q, sequential = %q", i, d.Server, want[i])
		}
	}
}
