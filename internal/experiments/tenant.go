// This file is the multi-tenant intake study: it measures the two
// claims the fair-share/admission tentpole makes. First, under a
// saturating multi-tenant batch the weighted fair-clock arbiter serves
// tenants work in proportion to their configured shares. Second, on a
// bursty deadline-stamped workload, deadline-aware admission converts
// late completions into upfront refusals — the deadline-miss rate with
// admission on is strictly below the rate with admission off.

package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"casched/internal/agent"
	"casched/internal/sched"
	"casched/internal/task"
	"casched/internal/workload"
)

// TenantStudyConfig parameterizes the study. Zero values select the
// committed defaults (benchmarks/tenant-study.txt).
type TenantStudyConfig struct {
	// N is the fairness-phase metatask size (default 420).
	N int
	// BurstN is the admission-phase metatask size (default 240).
	BurstN int
	// BurstD is the admission phase's long-run mean inter-arrival in
	// seconds (default 6, the fed-study overload).
	BurstD float64
	// Seed drives workload generation and tie-breaking.
	Seed uint64
	// Shares maps tenants to fair-share weights (default gold=4,
	// silver=2, bronze=1). The offered mix is uniform across tenants,
	// so only arbitration can skew service toward the weights.
	Shares map[string]float64
	// Replicas scales the Table 2 second-set testbed (default 2 ⇒ 8
	// servers).
	Replicas int
	// DeadlineSlack stamps the admission-phase deadlines at slack ×
	// the spec's best-case nominal duration past arrival (default 4).
	DeadlineSlack float64
}

func (c *TenantStudyConfig) defaults() {
	if c.N == 0 {
		c.N = 420
	}
	if c.BurstN == 0 {
		c.BurstN = 240
	}
	if c.BurstD == 0 {
		c.BurstD = 6
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	if c.Shares == nil {
		c.Shares = map[string]float64{"gold": 4, "silver": 2, "bronze": 1}
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.DeadlineSlack == 0 {
		c.DeadlineSlack = 4
	}
}

// TenantShareRow is one tenant's fairness-phase measurement.
type TenantShareRow struct {
	Tenant string
	// Weight is the configured share weight; WantShare its normalized
	// fraction of the total.
	Weight, WantShare float64
	// GotShare is the tenant's fraction of the served work (chosen
	// server's nominal cost — what the fair ledger charges) over the
	// saturated prefix of the decision sequence.
	GotShare float64
}

// TenantStudyResult holds both phases.
type TenantStudyResult struct {
	Config TenantStudyConfig

	// Shares are the fairness-phase rows, sorted by tenant name;
	// MaxShareError is the largest |GotShare − WantShare| among them,
	// and SaturatedPrefix the number of decisions measured (the prefix
	// during which every tenant still had backlog).
	Shares          []TenantShareRow
	MaxShareError   float64
	SaturatedPrefix int

	// Admission phase: the same bursty deadline-stamped metatask run
	// with admission off and on. Misses count tasks whose HTM-simulated
	// completion lands past their deadline; Sheds counts upfront
	// refusals (admission on only). Rates are over the full metatask.
	OffMisses, OnMisses, OnSheds int
	OffMissRate, OnMissRate      float64
	// OffSumFlow and OnSumFlow are the HTM-simulated total flows of
	// the tasks that ran (admitted tasks only, for the on side).
	OffSumFlow, OnSumFlow float64
}

// uniformMix gives every configured tenant the same offered load, so
// any share skew in the result is the arbiter's doing.
func uniformMix(shares map[string]float64) map[string]float64 {
	mix := make(map[string]float64, len(shares))
	for name := range shares {
		mix[name] = 1
	}
	return mix
}

// TenantStudy runs both phases.
func TenantStudy(cfg TenantStudyConfig) (*TenantStudyResult, error) {
	cfg.defaults()
	res := &TenantStudyResult{Config: cfg}
	if err := tenantFairnessPhase(cfg, res); err != nil {
		return nil, err
	}
	if err := tenantAdmissionPhase(cfg, res); err != nil {
		return nil, err
	}
	return res, nil
}

// tenantFairnessPhase saturates one agent core with a single
// multi-tenant batch and measures each tenant's share of the served
// work while every tenant still has backlog. MCT keeps each decision
// O(1): the phase isolates intake ordering, not HTM projection.
func tenantFairnessPhase(cfg TenantStudyConfig, res *TenantStudyResult) error {
	sc := workload.MultiTenant(workload.Set2(cfg.N, 1, cfg.Seed), uniformMix(cfg.Shares), 0)
	mt, err := workload.Generate(sc)
	if err != nil {
		return err
	}
	names, rewrite := replicatedSet2(cfg.Replicas)
	for _, t := range mt.Tasks {
		t.Spec = rewrite(t.Spec)
	}

	s, err := sched.ByName("MCT")
	if err != nil {
		return err
	}
	core, err := agent.New(agent.Config{
		Scheduler:    s,
		Seed:         cfg.Seed,
		TenantShares: cfg.Shares,
	})
	if err != nil {
		return err
	}
	type served struct {
		tenant string
		work   float64
	}
	var order []served
	byID := make(map[int]*task.Task, mt.Len())
	for _, t := range mt.Tasks {
		byID[t.ID] = t
	}
	core.Subscribe(func(ev agent.Event) {
		if ev.Kind != agent.EventDecision {
			return
		}
		t := byID[ev.JobID]
		cost, _ := t.Spec.Cost(ev.Server)
		order = append(order, served{tenant: t.Tenant, work: cost.Total()})
	})
	for _, n := range names {
		core.AddServer(n)
	}

	// One saturating batch: every tenant's whole queue is visible to
	// the arbiter at once, stamped at the last arrival like any
	// collecting frontend's burst.
	at := mt.Tasks[mt.Len()-1].Arrival
	reqs := make([]agent.Request, mt.Len())
	backlog := make(map[string]int)
	for i, t := range mt.Tasks {
		reqs[i] = agent.Request{JobID: t.ID, TaskID: t.ID, Spec: t.Spec,
			Arrival: at, Submitted: t.Arrival, Tenant: t.Tenant}
		backlog[t.Tenant]++
	}
	if _, err := core.SubmitBatch(reqs); err != nil {
		return fmt.Errorf("experiments: fairness batch: %w", err)
	}

	// Measure the prefix during which every tenant still had queued
	// work — the regime where the weighted fair clock governs who is
	// served next. Once the lightest queue drains, the remaining
	// tenants split the leftovers regardless of weights.
	workBy := make(map[string]float64)
	var total float64
	for _, sv := range order {
		backlog[sv.tenant]--
		workBy[sv.tenant] += sv.work
		total += sv.work
		res.SaturatedPrefix++
		if backlog[sv.tenant] == 0 {
			break // this tenant's queue just drained; the regime ends here
		}
	}
	if total <= 0 {
		return fmt.Errorf("experiments: fairness phase served no work")
	}
	var weightSum float64
	for _, w := range cfg.Shares {
		weightSum += w
	}
	for name, w := range cfg.Shares {
		row := TenantShareRow{
			Tenant:    name,
			Weight:    w,
			WantShare: w / weightSum,
			GotShare:  workBy[name] / total,
		}
		if dev := row.GotShare - row.WantShare; dev > res.MaxShareError {
			res.MaxShareError = dev
		} else if -dev > res.MaxShareError {
			res.MaxShareError = -dev
		}
		res.Shares = append(res.Shares, row)
	}
	sort.Slice(res.Shares, func(i, j int) bool { return res.Shares[i].Tenant < res.Shares[j].Tenant })
	return nil
}

// tenantAdmissionPhase runs one bursty deadline-stamped metatask twice
// through an HMCT core — admission off, then on — and compares
// deadline-miss rates on the HTM-simulated completions.
func tenantAdmissionPhase(cfg TenantStudyConfig, res *TenantStudyResult) error {
	sc := workload.MultiTenant(workload.PoissonBurst(cfg.BurstN, cfg.BurstD, cfg.Seed),
		uniformMix(cfg.Shares), cfg.DeadlineSlack)
	mt, err := workload.Generate(sc)
	if err != nil {
		return err
	}
	names, rewrite := replicatedSet2(cfg.Replicas)
	for _, t := range mt.Tasks {
		t.Spec = rewrite(t.Spec)
	}

	run := func(admission bool) (misses, sheds int, sumFlow float64, err error) {
		s, err := sched.ByName("HMCT")
		if err != nil {
			return 0, 0, 0, err
		}
		core, err := agent.New(agent.Config{
			Scheduler: s,
			Seed:      cfg.Seed,
			Admission: admission,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		for _, n := range names {
			core.AddServer(n)
		}
		for _, t := range mt.Tasks {
			_, serr := core.Submit(agent.Request{JobID: t.ID, TaskID: t.ID, Spec: t.Spec,
				Arrival: t.Arrival, Submitted: t.Arrival, Tenant: t.Tenant, Deadline: t.Deadline})
			switch {
			case serr == nil:
			case admission && errors.Is(serr, agent.ErrDeadlineUnmet):
				sheds++
			default:
				return 0, 0, 0, fmt.Errorf("experiments: admission submit %d: %w", t.ID, serr)
			}
		}
		preds := core.FinalPredictions()
		for _, t := range mt.Tasks {
			c, ok := preds[t.ID]
			if !ok {
				continue
			}
			sumFlow += c - t.Arrival
			if t.Deadline > 0 && c > t.Deadline {
				misses++
			}
		}
		return misses, sheds, sumFlow, nil
	}

	if res.OffMisses, _, res.OffSumFlow, err = run(false); err != nil {
		return err
	}
	if res.OnMisses, res.OnSheds, res.OnSumFlow, err = run(true); err != nil {
		return err
	}
	res.OffMissRate = float64(res.OffMisses) / float64(mt.Len())
	res.OnMissRate = float64(res.OnMisses) / float64(mt.Len())
	return nil
}

// FormatTenantStudy renders the study as a small report.
func FormatTenantStudy(r *TenantStudyResult) string {
	var b strings.Builder
	c := r.Config
	fmt.Fprintf(&b, "multi-tenant intake study — set 2, seed %d, %d servers\n", c.Seed, 4*c.Replicas)
	fmt.Fprintf(&b, "\nfair shares (MCT, one saturating batch of %d, uniform offered mix, %d decisions measured)\n",
		c.N, r.SaturatedPrefix)
	fmt.Fprintf(&b, "  %-10s %8s %10s %10s\n", "tenant", "weight", "want", "served")
	for _, s := range r.Shares {
		fmt.Fprintf(&b, "  %-10s %8g %9.1f%% %9.1f%%\n", s.Tenant, s.Weight, 100*s.WantShare, 100*s.GotShare)
	}
	fmt.Fprintf(&b, "  max share error %.1f pp\n", 100*r.MaxShareError)
	fmt.Fprintf(&b, "\ndeadline admission (HMCT, poisson-burst N=%d D=%gs, slack %g×best-case)\n",
		c.BurstN, c.BurstD, c.DeadlineSlack)
	fmt.Fprintf(&b, "  %-16s %8s %8s %10s %12s\n", "admission", "misses", "sheds", "miss rate", "sumflow(run)")
	fmt.Fprintf(&b, "  %-16s %8d %8d %9.1f%% %12.0f\n", "off", r.OffMisses, 0, 100*r.OffMissRate, r.OffSumFlow)
	fmt.Fprintf(&b, "  %-16s %8d %8d %9.1f%% %12.0f\n", "on", r.OnMisses, r.OnSheds, 100*r.OnMissRate, r.OnSumFlow)
	return b.String()
}
