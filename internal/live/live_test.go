package live

import (
	"math"
	"testing"
	"time"

	"casched/internal/sched"
	"casched/internal/stats"
	"casched/internal/task"
	"casched/internal/trace"
)

func TestClockScale(t *testing.T) {
	c := NewClock(1000)
	time.Sleep(20 * time.Millisecond)
	now := c.Now()
	if now < 10 || now > 200 {
		t.Errorf("virtual now = %v, want roughly 20", now)
	}
	c.Freeze()
	frozen := c.Now()
	time.Sleep(5 * time.Millisecond)
	if c.Now() != frozen {
		t.Error("frozen clock advanced")
	}
}

func TestClockSleepUntil(t *testing.T) {
	c := NewClock(2000)
	start := time.Now()
	c.SleepUntil(c.Now() + 40) // 40 virtual seconds = 20ms wall
	wall := time.Since(start)
	if wall < 10*time.Millisecond || wall > 500*time.Millisecond {
		t.Errorf("SleepUntil wall duration = %v", wall)
	}
	// Sleeping into the past returns immediately.
	start = time.Now()
	c.SleepUntil(0)
	if time.Since(start) > 10*time.Millisecond {
		t.Error("SleepUntil(past) blocked")
	}
}

func TestClockDefaultScale(t *testing.T) {
	if NewClock(0).Scale() != 1 {
		t.Error("non-positive scale must default to 1")
	}
}

func TestExecutorSingleJob(t *testing.T) {
	clock := NewClock(2000) // 2000 virtual s per wall s
	e := newExecutor(clock, time.Millisecond)
	defer e.close()
	start := clock.Now()
	done, err := e.submit(1, task.Cost{Input: 5, Compute: 50, Output: 5})
	if err != nil {
		t.Fatal(err)
	}
	completion := <-done
	elapsed := completion - start
	if math.Abs(elapsed-60) > 15 {
		t.Errorf("single job took %v virtual s, want ~60", elapsed)
	}
}

func TestExecutorSharing(t *testing.T) {
	clock := NewClock(2000)
	e := newExecutor(clock, time.Millisecond)
	defer e.close()
	start := clock.Now()
	d1, err1 := e.submit(1, task.Cost{Compute: 50})
	d2, err2 := e.submit(2, task.Cost{Compute: 50})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	c1 := <-d1
	c2 := <-d2
	// Two equal jobs sharing the CPU both need ~100 virtual seconds.
	for i, c := range []float64{c1, c2} {
		if math.Abs(c-start-100) > 25 {
			t.Errorf("job %d took %v virtual s, want ~100", i+1, c-start)
		}
	}
}

func TestExecutorZeroCostJob(t *testing.T) {
	clock := NewClock(2000)
	e := newExecutor(clock, time.Millisecond)
	defer e.close()
	done, err := e.submit(1, task.Cost{})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("zero-cost job never completed")
	}
	if e.resident() != 0 {
		t.Errorf("resident = %d after completion", e.resident())
	}
}

// startDeployment spins up an agent and servers for the given
// scheduler, returning the agent and a cleanup func.
func startDeployment(t *testing.T, s sched.Scheduler, names []string, scale float64) (*Agent, *Clock, func()) {
	t.Helper()
	clock := NewClock(scale)
	agent, err := StartAgent(AgentConfig{Scheduler: s, Clock: clock, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var servers []*Server
	for i, name := range names {
		srv, err := StartServer(ServerConfig{
			Name: name, AgentAddr: agent.Addr(), Clock: clock,
			Quantum: time.Millisecond, ReportPeriod: 10, Seed: uint64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
	}
	cleanup := func() {
		for _, srv := range servers {
			srv.Close()
		}
		agent.Close()
	}
	return agent, clock, cleanup
}

// smallMetatask builds a few waste-cpu tasks with tight arrivals.
func smallMetatask(n int) *task.Metatask {
	mt := &task.Metatask{Name: "live-test"}
	params := task.WasteCPUParams
	for i := 0; i < n; i++ {
		mt.Tasks = append(mt.Tasks, &task.Task{
			ID: i, Spec: task.WasteCPU(params[i%len(params)]), Arrival: float64(i) * 5,
		})
	}
	return mt
}

func TestLiveEndToEndHMCT(t *testing.T) {
	agent, clock, cleanup := startDeployment(t, sched.NewHMCT(),
		[]string{"spinnaker", "artimon"}, 2000)
	defer cleanup()

	mt := smallMetatask(8)
	results, err := RunMetatask(agent.Addr(), mt, clock)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Completed {
			t.Fatalf("task %d did not complete", r.ID)
		}
		if r.Completion <= r.Arrival {
			t.Errorf("task %d: completion %.2f <= arrival %.2f", r.ID, r.Completion, r.Arrival)
		}
		if r.Server != "spinnaker" && r.Server != "artimon" {
			t.Errorf("task %d ran on unexpected server %q", r.ID, r.Server)
		}
	}
	// HTM predictions exist and final projections roughly track actual
	// completions (quantum + RPC jitter allow a few % of error — the
	// Table 1 regime).
	finals := agent.FinalPredictions()
	if len(finals) != 8 {
		t.Fatalf("final predictions = %d, want 8", len(finals))
	}
	for _, r := range results {
		pred := finals[r.ID]
		relErr := math.Abs(pred-r.Completion) / r.Completion
		if relErr > 0.25 {
			t.Errorf("task %d: simulated %.2f vs real %.2f (%.0f%% error)",
				r.ID, pred, r.Completion, 100*relErr)
		}
	}
}

func TestLiveEndToEndMCT(t *testing.T) {
	agent, clock, cleanup := startDeployment(t, sched.NewMCT(),
		[]string{"spinnaker", "artimon"}, 2000)
	defer cleanup()
	results, err := RunMetatask(agent.Addr(), smallMetatask(6), clock)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Completed {
			t.Fatalf("task %d did not complete", r.ID)
		}
	}
	if _, ok := agent.Prediction(0); ok {
		t.Error("MCT agent should not produce HTM predictions")
	}
}

func TestLiveTraceLog(t *testing.T) {
	var log trace.Log
	clock := NewClock(2000)
	agent, err := StartAgent(AgentConfig{
		Scheduler: sched.NewMSF(), Clock: clock, Seed: 1, Log: &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	srv, err := StartServer(ServerConfig{
		Name: "artimon", AgentAddr: agent.Addr(), Clock: clock,
		Quantum: time.Millisecond, ReportPeriod: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if _, err := RunMetatask(agent.Addr(), smallMetatask(3), clock); err != nil {
		t.Fatal(err)
	}
	if n := len(log.Filter("schedule")); n != 3 {
		t.Errorf("schedule records = %d, want 3", n)
	}
	if n := len(log.Filter("done")); n != 3 {
		t.Errorf("done records = %d, want 3", n)
	}
	if n := len(log.Filter("register")); n != 1 {
		t.Errorf("register records = %d, want 1", n)
	}
}

func TestAgentValidation(t *testing.T) {
	if _, err := StartAgent(AgentConfig{Clock: NewClock(1)}); err == nil {
		t.Error("agent without scheduler accepted")
	}
	if _, err := StartAgent(AgentConfig{Scheduler: sched.NewMCT()}); err == nil {
		t.Error("agent without clock accepted")
	}
}

func TestServerValidation(t *testing.T) {
	clock := NewClock(1000)
	if _, err := StartServer(ServerConfig{AgentAddr: "x", Clock: clock}); err == nil {
		t.Error("server without name accepted")
	}
	if _, err := StartServer(ServerConfig{Name: "artimon", AgentAddr: "x"}); err == nil {
		t.Error("server without clock accepted")
	}
	if _, err := StartServer(ServerConfig{
		Name: "artimon", AgentAddr: "127.0.0.1:1", Clock: clock,
	}); err == nil {
		t.Error("server with unreachable agent accepted")
	}
}

func TestScheduleUnknownProblem(t *testing.T) {
	agent, clock, cleanup := startDeployment(t, sched.NewHMCT(), []string{"artimon"}, 2000)
	defer cleanup()
	_ = clock
	mt := &task.Metatask{Name: "bad", Tasks: []*task.Task{{
		ID: 0, Spec: &task.Spec{Problem: "nosuch", CostOn: map[string]task.Cost{}},
	}}}
	if _, err := RunMetatask(agent.Addr(), mt, clock); err == nil {
		t.Error("unknown problem accepted")
	}
}

// TestNoiseFactorApplied checks that a noisy server's execution times
// deviate from nominal.
func TestNoiseFactorApplied(t *testing.T) {
	clock := NewClock(2000)
	agent, err := StartAgent(AgentConfig{Scheduler: sched.NewHMCT(), Clock: clock, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	srv, err := StartServer(ServerConfig{
		Name: "artimon", AgentAddr: agent.Addr(), Clock: clock,
		Quantum: time.Millisecond, ReportPeriod: -1, NoiseSigma: 0.05, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	mt := &task.Metatask{Name: "noise", Tasks: []*task.Task{
		{ID: 0, Spec: task.WasteCPU(200), Arrival: 0},
	}}
	results, err := RunMetatask(agent.Addr(), mt, clock)
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Completed {
		t.Fatal("task did not complete")
	}
}

// TestRNGNoiseDeterminism pins the noise stream: the same seed yields
// the same factors (guards the Table 1 reproducibility).
func TestRNGNoiseDeterminism(t *testing.T) {
	a := stats.NewRNG(7)
	b := stats.NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.NoiseFactor(0.03) != b.NoiseFactor(0.03) {
			t.Fatal("noise stream not deterministic")
		}
	}
}
