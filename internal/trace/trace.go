// Package trace records execution events of a simulation or live run
// and exports them as CSV for post-mortem analysis (the reproduction's
// analogue of the instrumented NetSolve logs the authors used).
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Record is one timestamped event.
type Record struct {
	// Time is the event date in seconds of experiment time.
	Time float64
	// Kind is the event kind ("arrival", "schedule", "phase-end",
	// "done", "collapse", "resubmit", "failed", ...).
	Kind string
	// Server is the involved server (may be empty).
	Server string
	// TaskID is the involved task (-1 if none).
	TaskID int
	// Attempt is the fault-tolerance attempt number (0 = first).
	Attempt int
	// Note carries free-form detail.
	Note string
}

// Log is an append-only event log, safe for concurrent use (the live
// runtime appends from several goroutines).
type Log struct {
	mu      sync.Mutex
	records []Record
}

// Add appends a record.
func (l *Log) Add(r Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.records = append(l.records, r)
}

// Len returns the number of records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Records returns a copy of the log, sorted by time (stable on ties).
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := append([]Record(nil), l.records...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// Filter returns the records matching the kind (all kinds if empty).
func (l *Log) Filter(kind string) []Record {
	var out []Record
	for _, r := range l.Records() {
		if kind == "" || r.Kind == kind {
			out = append(out, r)
		}
	}
	return out
}

// WriteCSV writes the sorted log with a header row.
func (l *Log) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "kind", "server", "task", "attempt", "note"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, r := range l.Records() {
		row := []string{
			strconv.FormatFloat(r.Time, 'f', 3, 64),
			r.Kind,
			r.Server,
			strconv.Itoa(r.TaskID),
			strconv.Itoa(r.Attempt),
			r.Note,
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
