package ha

// The Follower is the standby's warm mirror of the leader's placed
// job map. It tails every member's relay ledger with its own cursors
// (independent of the dispatcher's relay.View, whose sequence jumps on
// summary rebases) and folds decisions/completions into a job → {
// member, server } map. On promotion the new leader adopts this map:
// a client retrying a job the dead leader already placed gets the
// recorded placement back instead of a second commit.

import (
	"sync"

	"casched/internal/relay"
)

// Placement records where one job landed: the member that committed
// it, the server it runs on, and the decision's experiment-time
// instant (used for windowed retention).
type Placement struct {
	Member string
	Server string
	At     float64
}

// Follower accumulates member relay streams into a placed-job mirror.
// All methods are safe for concurrent use.
type Follower struct {
	mu      sync.Mutex
	window  float64
	cursors map[string]uint64
	heads   map[string]uint64
	placed  map[int]Placement
	swept   float64
}

// NewFollower returns an empty mirror. window bounds retention of
// placed records in experiment time (0 keeps them until completion),
// matching the dispatcher's PlacedWindow rule.
func NewFollower(window float64) *Follower {
	return &Follower{
		window:  window,
		cursors: make(map[string]uint64),
		heads:   make(map[string]uint64),
		placed:  make(map[int]Placement),
	}
}

// Cursor returns the last ledger sequence folded for member (0 when
// the stream has not been pulled yet) — the `after` to pass to the
// member's next RelaySince.
func (f *Follower) Cursor(member string) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cursors[member]
}

// Observe folds one relay delta from member into the mirror. A Resync
// delta jumps the cursor past the dropped range: decisions lost in
// the gap cannot be deduplicated on takeover (the new leader will
// re-place them if a client retries), which is the bounded-ledger
// trade documented on relay.Ledger.
func (f *Follower) Observe(member string, d relay.Delta) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.cursors[member]
	if d.Resync {
		if d.To > cur {
			f.cursors[member] = d.To
		}
		return
	}
	for _, ev := range d.Events {
		if ev.Seq <= cur {
			continue
		}
		cur = ev.Seq
		switch ev.Kind {
		case relay.Decision:
			f.placed[ev.JobID] = Placement{Member: member, Server: ev.Server, At: ev.Time}
			f.sweepLocked(ev.Time)
		case relay.Completion:
			delete(f.placed, ev.JobID)
		}
	}
	if d.To > cur {
		cur = d.To
	}
	f.cursors[member] = cur
}

// NoteLedger records the member's last advertised ledger head (from
// its gossiped summary), the basis for the replication-lag gauge.
func (f *Follower) NoteLedger(member string, seq uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if seq > f.heads[member] {
		f.heads[member] = seq
	}
}

// Lags returns, per member, how many ledger events the mirror is
// behind the member's advertised head.
func (f *Follower) Lags() map[string]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	lags := make(map[string]uint64, len(f.heads))
	for m, head := range f.heads {
		if cur := f.cursors[m]; head > cur {
			lags[m] = head - cur
		} else {
			lags[m] = 0
		}
	}
	return lags
}

// Placements snapshots the mirror's placed map.
func (f *Follower) Placements() map[int]Placement {
	f.mu.Lock()
	defer f.mu.Unlock()
	cp := make(map[int]Placement, len(f.placed))
	for id, p := range f.placed {
		cp[id] = p
	}
	return cp
}

// Len reports the number of placed records currently mirrored.
func (f *Follower) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.placed)
}

// sweepLocked drops placements older than the retention window,
// amortized to at most one pass per half window like the dispatcher's
// placed-map sweep.
func (f *Follower) sweepLocked(now float64) {
	if f.window <= 0 || now-f.swept < f.window/2 {
		return
	}
	f.swept = now
	for id, p := range f.placed {
		if now-p.At > f.window {
			delete(f.placed, id)
		}
	}
}
