package sched

import (
	"math"

	"casched/internal/htm"
)

// MCT is the NetSolve baseline (§1, §5): Minimum Completion Time driven
// by monitor information. For each candidate server it estimates the
// new task's completion as
//
//	now + input + compute × (1 + load) + output
//
// where load is the agent's (possibly stale) belief of the number of
// tasks running on the server — NetSolve's "fraction of the currently
// available CPU speed" estimate. Its two known flaws, which the paper
// exploits, are reproduced faithfully: the load term assumes the
// server's load stays constant for the whole task duration, and it
// ignores the perturbation inflicted on already-running tasks.
type MCT struct{}

// NewMCT returns the NetSolve MCT baseline.
func NewMCT() *MCT { return &MCT{} }

// Name implements Scheduler.
func (*MCT) Name() string { return "MCT" }

// Choose implements Scheduler.
func (m *MCT) Choose(ctx *Context) (string, error) { return chooseVia(m, ctx) }

// ChooseScored implements ScoredScheduler; the score is the NetSolve
// completion estimate.
func (*MCT) ChooseScored(ctx *Context) (Choice, error) {
	best, bestServer := math.Inf(1), ""
	for _, s := range ctx.Candidates {
		cost, ok := ctx.Task.Spec.Cost(s)
		if !ok {
			continue
		}
		load := 0.0
		if ctx.Info != nil {
			load = ctx.Info.LoadEstimate(s)
		}
		completion := ctx.Now + cost.Input + cost.Compute*(1+load) + cost.Output
		if completion < best {
			best, bestServer = completion, s
		}
	}
	if bestServer == "" {
		return Choice{}, ErrNoServer
	}
	return Choice{Server: bestServer, Score: best, Tie: best}, nil
}

// HMCT is the Historical Minimum Completion Time heuristic (Figure 2):
// MCT relying on the HTM. The HTM simulates the mapping of the task on
// each server until its completion; the agent maps the task to the
// server minimizing that finishing date. Like MCT it expects to
// minimize the makespan; its drawback is overloading the fastest
// servers.
type HMCT struct{}

// NewHMCT returns the HMCT heuristic.
func NewHMCT() *HMCT { return &HMCT{} }

// Name implements Scheduler.
func (*HMCT) Name() string { return "HMCT" }

func (*HMCT) usesHTM() bool { return true }

// Choose implements Scheduler.
func (h *HMCT) Choose(ctx *Context) (string, error) { return chooseVia(h, ctx) }

// ChooseScored implements ScoredScheduler; the score is the HTM's
// predicted completion date.
func (*HMCT) ChooseScored(ctx *Context) (Choice, error) {
	preds, err := predictAll(ctx)
	if err != nil {
		return Choice{}, err
	}
	w, _, _ := argminScan(preds, func(p htm.Prediction) float64 { return p.Completion })
	return Choice{Server: w.Server, Score: w.Completion, Tie: w.Completion}, nil
}

// TieBreak selects how MP resolves equal-perturbation candidates.
type TieBreak int

const (
	// TieByCompletion picks the server minimizing the new task's
	// completion date (the paper's Figure 3 rule).
	TieByCompletion TieBreak = iota
	// TieRandom picks uniformly among the tied servers (ablation).
	TieRandom
)

// MP is the Minimum Perturbation heuristic (Figure 3): the task goes to
// the server minimizing the sum of perturbations Σ_j π_j; when all
// candidates tie (for instance at the beginning of a metatask), the
// server minimizing the new task's completion date is chosen. MP aims
// to give each already-placed task the best quality of service; its
// drawback is sub-optimal resource usage (a task can land on a slow
// idle server).
type MP struct {
	// Tie selects the tie-breaking policy (default: the paper's).
	Tie TieBreak
}

// NewMP returns the MP heuristic with the paper's tie-breaking rule.
func NewMP() *MP { return &MP{} }

// Name implements Scheduler.
func (*MP) Name() string { return "MP" }

func (*MP) usesHTM() bool { return true }

// Choose implements Scheduler.
func (m *MP) Choose(ctx *Context) (string, error) { return chooseVia(m, ctx) }

// ChooseScored implements ScoredScheduler; the score is the total
// perturbation, tie-broken by the new task's completion date.
func (m *MP) ChooseScored(ctx *Context) (Choice, error) {
	preds, err := predictAll(ctx)
	if err != nil {
		return Choice{}, err
	}
	perturbation := func(p htm.Prediction) float64 { return p.Perturbation }
	w, ties, best := argminScan(preds, perturbation)
	if ties > 1 {
		switch m.Tie {
		case TieRandom:
			if ctx.RNG != nil {
				// Same RNG draw and same winner as indexing the
				// historical tie slice: pick the k-th tie in preds order.
				k := ctx.RNG.Intn(ties)
				thr := best + tieEps
				for _, p := range preds {
					if p.Perturbation <= thr {
						if k == 0 {
							w = p
							break
						}
						k--
					}
				}
			}
		default:
			w = argminTieBreak(preds, perturbation,
				func(p htm.Prediction) float64 { return p.Completion })
		}
	}
	return Choice{Server: w.Server, Score: w.Perturbation, Tie: w.Completion}, nil
}

// MSF is the Minimum Sum Flow heuristic (Figure 4): it mixes HMCT's
// makespan objective with MP's quality-of-service objective by
// minimizing the increase of the system's total flow, i.e.
//
//	Σ_j π_j + (ρ'_{n+1} − a_{n+1})
//
// the total perturbation plus the new task's own flow. The paper notes
// this is equivalent to Weissman's MTI (minimize total interference).
type MSF struct{}

// NewMSF returns the MSF heuristic.
func NewMSF() *MSF { return &MSF{} }

// Name implements Scheduler.
func (*MSF) Name() string { return "MSF" }

func (*MSF) usesHTM() bool { return true }

// Choose implements Scheduler.
func (m *MSF) Choose(ctx *Context) (string, error) { return chooseVia(m, ctx) }

// ChooseScored implements ScoredScheduler; the score is the sum-flow
// increase Σπ + flow, tie-broken by the completion date.
func (*MSF) ChooseScored(ctx *Context) (Choice, error) {
	preds, err := predictAll(ctx)
	if err != nil {
		return Choice{}, err
	}
	// Secondary objective: completion date, for determinism.
	w := argminTieBreak(preds, htm.Prediction.SumFlowObjective,
		func(p htm.Prediction) float64 { return p.Completion })
	return Choice{Server: w.Server, Score: w.SumFlowObjective(), Tie: w.Completion}, nil
}

// MNI is Weissman's Minimize-Number-of-Interferences heuristic (§6
// related work): the task goes to the server where the fewest
// already-placed tasks see their completion delayed; ties are broken by
// the new task's completion date.
type MNI struct{}

// NewMNI returns the MNI heuristic.
func NewMNI() *MNI { return &MNI{} }

// Name implements Scheduler.
func (*MNI) Name() string { return "MNI" }

func (*MNI) usesHTM() bool { return true }

// Choose implements Scheduler.
func (m *MNI) Choose(ctx *Context) (string, error) { return chooseVia(m, ctx) }

// ChooseScored implements ScoredScheduler; the score is the number of
// interfered tasks, tie-broken by the completion date.
func (*MNI) ChooseScored(ctx *Context) (Choice, error) {
	preds, err := predictAll(ctx)
	if err != nil {
		return Choice{}, err
	}
	w := argminTieBreak(preds, func(p htm.Prediction) float64 { return float64(p.Interfered) },
		func(p htm.Prediction) float64 { return p.Completion })
	return Choice{Server: w.Server, Score: float64(w.Interfered), Tie: w.Completion}, nil
}

// Random maps each task to a uniformly random candidate: the weakest
// reference policy.
type Random struct{}

// NewRandom returns the Random scheduler.
func NewRandom() *Random { return &Random{} }

// Name implements Scheduler.
func (*Random) Name() string { return "Random" }

// Choose implements Scheduler.
func (*Random) Choose(ctx *Context) (string, error) {
	var feasible []string
	for _, s := range ctx.Candidates {
		if _, ok := ctx.Task.Spec.Cost(s); ok {
			feasible = append(feasible, s)
		}
	}
	if len(feasible) == 0 {
		return "", ErrNoServer
	}
	if ctx.RNG == nil {
		return feasible[0], nil
	}
	return feasible[ctx.RNG.Intn(len(feasible))], nil
}

// RoundRobin cycles through the candidate servers: the classic
// load-oblivious reference policy.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns the RoundRobin scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Scheduler.
func (*RoundRobin) Name() string { return "RoundRobin" }

// Choose implements Scheduler.
func (r *RoundRobin) Choose(ctx *Context) (string, error) {
	var feasible []string
	for _, s := range ctx.Candidates {
		if _, ok := ctx.Task.Spec.Cost(s); ok {
			feasible = append(feasible, s)
		}
	}
	if len(feasible) == 0 {
		return "", ErrNoServer
	}
	s := feasible[r.next%len(feasible)]
	r.next++
	return s, nil
}

// MemoryAware wraps a scheduler with the §7 future-work extension:
// candidates whose projected memory demand plus the task's footprint
// would exceed their RAM+swap capacity are filtered out before the
// inner heuristic decides. If every candidate is filtered, the decision
// falls through to the inner heuristic on the full candidate list (the
// task must go somewhere).
type MemoryAware struct {
	// Inner is the wrapped heuristic.
	Inner Scheduler
	// Demand returns the current memory demand and the capacity
	// (RAM+swap) of a server, in MB; ok=false when unknown.
	Demand func(server string) (demand, capacity float64, ok bool)
}

// Name implements Scheduler.
func (m *MemoryAware) Name() string { return m.Inner.Name() + "+mem" }

func (m *MemoryAware) usesHTM() bool { return UsesHTM(m.Inner) }

// Choose implements Scheduler.
func (m *MemoryAware) Choose(ctx *Context) (string, error) {
	if m.Demand == nil || ctx.Task.Spec.MemoryMB == 0 {
		return m.Inner.Choose(ctx)
	}
	var safe []string
	for _, s := range ctx.Candidates {
		d, cap, ok := m.Demand(s)
		if !ok || d+ctx.Task.Spec.MemoryMB <= cap {
			safe = append(safe, s)
		}
	}
	if len(safe) == 0 {
		return m.Inner.Choose(ctx)
	}
	inner := *ctx
	inner.Candidates = safe
	return m.Inner.Choose(&inner)
}
