package sched

import (
	"math"
	"strings"
	"testing"

	"casched/internal/htm"
	"casched/internal/stats"
	"casched/internal/task"
)

// fixedInfo is a canned LoadInfo.
type fixedInfo map[string]float64

func (f fixedInfo) LoadEstimate(server string) float64 { return f[server] }

// twoServerSpec builds a spec solvable on both servers with the given
// compute costs.
func twoServerSpec(c1, c2 float64) *task.Spec {
	return &task.Spec{Problem: "p", Variant: 1, CostOn: map[string]task.Cost{
		"s1": {Compute: c1},
		"s2": {Compute: c2},
	}}
}

func baseCtx(spec *task.Spec, m *htm.Manager, now float64) *Context {
	ctx := &Context{
		Now:        now,
		Task:       &task.Task{ID: 0, Spec: spec, Arrival: now},
		JobID:      100,
		Candidates: []string{"s1", "s2"},
		RNG:        stats.NewRNG(1),
	}
	// Context.HTM is an interface: assign only a non-nil manager so
	// the heuristics' nil checks keep working.
	if m != nil {
		ctx.HTM = m
	}
	return ctx
}

func TestMCTPicksLowestEstimatedCompletion(t *testing.T) {
	spec := twoServerSpec(100, 50)
	ctx := baseCtx(spec, nil, 0)
	ctx.Info = fixedInfo{"s1": 0, "s2": 0}
	s, err := NewMCT().Choose(ctx)
	if err != nil || s != "s2" {
		t.Errorf("Choose = %q,%v, want s2", s, err)
	}
	// A load of 3 on s2 makes it 50*4=200 > 100 on s1.
	ctx.Info = fixedInfo{"s1": 0, "s2": 3}
	s, err = NewMCT().Choose(ctx)
	if err != nil || s != "s1" {
		t.Errorf("Choose with load = %q,%v, want s1", s, err)
	}
}

func TestMCTIgnoresRemainingWork(t *testing.T) {
	// The §2.3 blind spot: both servers report one running task, so MCT
	// cannot distinguish them even though s1's task is nearly done.
	spec := twoServerSpec(100, 100)
	ctx := baseCtx(spec, nil, 80)
	ctx.Info = fixedInfo{"s1": 1, "s2": 1}
	s, err := NewMCT().Choose(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s != "s1" {
		t.Errorf("MCT should fall back to first candidate on equal info, got %q", s)
	}
}

func TestMCTNoCandidates(t *testing.T) {
	spec := &task.Spec{Problem: "p", CostOn: map[string]task.Cost{}}
	ctx := baseCtx(spec, nil, 0)
	if _, err := NewMCT().Choose(ctx); err == nil {
		t.Error("expected ErrNoServer")
	}
}

// htmWithUsefulnessState returns an HTM in the §2.3 state: T1 (100s) on
// s1 and T2 (200s) on s2, both placed at t=0.
func htmWithUsefulnessState(t *testing.T) *htm.Manager {
	t.Helper()
	m := htm.New([]string{"s1", "s2"})
	if err := m.Place(1, twoServerSpec(100, 100), 0, "s1"); err != nil {
		t.Fatal(err)
	}
	if err := m.Place(2, twoServerSpec(200, 200), 0, "s2"); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestHMCTUsesTrace(t *testing.T) {
	m := htmWithUsefulnessState(t)
	ctx := baseCtx(twoServerSpec(100, 100), m, 80)
	s, err := NewHMCT().Choose(ctx)
	if err != nil || s != "s1" {
		t.Errorf("HMCT = %q,%v, want s1 (completion 200 vs 280)", s, err)
	}
}

func TestHMCTRequiresHTM(t *testing.T) {
	ctx := baseCtx(twoServerSpec(1, 1), nil, 0)
	if _, err := NewHMCT().Choose(ctx); err == nil {
		t.Error("HMCT without HTM must fail")
	}
}

func TestMPMinimizesPerturbation(t *testing.T) {
	// s1 busy (T1, 100s at t=0), s2 idle: at t=10 MP must pick s2
	// (zero perturbation) even though s2 is slower for the task.
	m := htm.New([]string{"s1", "s2"})
	if err := m.Place(1, twoServerSpec(100, 100), 0, "s1"); err != nil {
		t.Fatal(err)
	}
	spec := twoServerSpec(50, 500)
	ctx := baseCtx(spec, m, 10)
	s, err := NewMP().Choose(ctx)
	if err != nil || s != "s2" {
		t.Errorf("MP = %q,%v, want s2", s, err)
	}
}

func TestMPTieBreakByCompletion(t *testing.T) {
	// Both servers idle: perturbations tie at 0; Figure 3 rule picks
	// the server minimizing the new task's completion.
	m := htm.New([]string{"s1", "s2"})
	spec := twoServerSpec(100, 50)
	ctx := baseCtx(spec, m, 0)
	s, err := NewMP().Choose(ctx)
	if err != nil || s != "s2" {
		t.Errorf("MP tie = %q,%v, want s2", s, err)
	}
}

func TestMPTieRandomUsesRNG(t *testing.T) {
	m := htm.New([]string{"s1", "s2"})
	spec := twoServerSpec(100, 100)
	mp := &MP{Tie: TieRandom}
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		ctx := baseCtx(spec, m, 0)
		ctx.RNG = stats.NewRNG(uint64(i))
		s, err := mp.Choose(ctx)
		if err != nil {
			t.Fatal(err)
		}
		seen[s] = true
	}
	if !seen["s1"] || !seen["s2"] {
		t.Errorf("random tie-break never varied: %v", seen)
	}
}

func TestMSFBalancesPerturbationAndDuration(t *testing.T) {
	// s1 busy with a long task; s2 idle but much slower for the new
	// task. MP would pick s2; MSF weighs the new task's own flow.
	m := htm.New([]string{"s1", "s2"})
	if err := m.Place(1, twoServerSpec(100, 100), 0, "s1"); err != nil {
		t.Fatal(err)
	}
	// New task: 50s on s1, 500s on s2.
	// s1: completion ~ shared -> new task flow 150 at t=0... compute:
	// placing at t=0 on s1: two tasks share; new(50) ends at 100,
	// T1 delayed 100->150: perturbation 50, flow 100, objective 150.
	// s2: flow 500, perturbation 0, objective 500. MSF picks s1.
	spec := twoServerSpec(50, 500)
	ctx := baseCtx(spec, m, 0)
	s, err := NewMSF().Choose(ctx)
	if err != nil || s != "s1" {
		t.Errorf("MSF = %q,%v, want s1", s, err)
	}
	// MP, by contrast, picks s2 here.
	s, err = NewMP().Choose(ctx)
	if err != nil || s != "s2" {
		t.Errorf("MP = %q,%v, want s2", s, err)
	}
}

func TestMNICountsInterferences(t *testing.T) {
	// s1 has two running tasks, s2 has one long one. A short new task
	// interferes with 2 tasks on s1 but 1 on s2.
	m := htm.New([]string{"s1", "s2"})
	if err := m.Place(1, twoServerSpec(100, 100), 0, "s1"); err != nil {
		t.Fatal(err)
	}
	if err := m.Place(2, twoServerSpec(100, 100), 0, "s1"); err != nil {
		t.Fatal(err)
	}
	if err := m.Place(3, twoServerSpec(300, 300), 0, "s2"); err != nil {
		t.Fatal(err)
	}
	spec := twoServerSpec(30, 30)
	ctx := baseCtx(spec, m, 10)
	s, err := NewMNI().Choose(ctx)
	if err != nil || s != "s2" {
		t.Errorf("MNI = %q,%v, want s2", s, err)
	}
}

func TestRandomRespectsFeasibility(t *testing.T) {
	spec := &task.Spec{Problem: "p", CostOn: map[string]task.Cost{"s2": {Compute: 1}}}
	ctx := baseCtx(spec, nil, 0)
	for i := 0; i < 20; i++ {
		ctx.RNG = stats.NewRNG(uint64(i))
		s, err := NewRandom().Choose(ctx)
		if err != nil || s != "s2" {
			t.Fatalf("Random = %q,%v, want s2", s, err)
		}
	}
	ctx.Task.Spec = &task.Spec{Problem: "p", CostOn: map[string]task.Cost{}}
	if _, err := NewRandom().Choose(ctx); err == nil {
		t.Error("Random with no feasible server must fail")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	rr := NewRoundRobin()
	spec := twoServerSpec(1, 1)
	got := []string{}
	for i := 0; i < 4; i++ {
		ctx := baseCtx(spec, nil, 0)
		s, err := rr.Choose(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, s)
	}
	want := []string{"s1", "s2", "s1", "s2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RoundRobin sequence = %v, want %v", got, want)
		}
	}
}

func TestMemoryAwareFiltersOverloaded(t *testing.T) {
	m := htm.New([]string{"s1", "s2"})
	spec := &task.Spec{Problem: "p", Variant: 1, MemoryMB: 100,
		CostOn: map[string]task.Cost{"s1": {Compute: 10}, "s2": {Compute: 1000}}}
	demand := func(server string) (float64, float64, bool) {
		if server == "s1" {
			return 450, 500, true // adding 100 MB would exceed capacity
		}
		return 0, 500, true
	}
	ma := &MemoryAware{Inner: NewHMCT(), Demand: demand}
	if ma.Name() != "HMCT+mem" {
		t.Errorf("Name = %q", ma.Name())
	}
	if !UsesHTM(ma) {
		t.Error("MemoryAware must inherit usesHTM")
	}
	ctx := baseCtx(spec, m, 0)
	s, err := ma.Choose(ctx)
	if err != nil || s != "s2" {
		t.Errorf("MemoryAware = %q,%v, want s2", s, err)
	}
	// When every server is overloaded it falls back to the inner rule.
	ma.Demand = func(string) (float64, float64, bool) { return 500, 500, true }
	s, err = ma.Choose(ctx)
	if err != nil || s != "s1" {
		t.Errorf("MemoryAware fallback = %q,%v, want s1", s, err)
	}
	// Zero-memory tasks bypass the filter.
	ctx.Task.Spec = twoServerSpec(10, 1000)
	s, err = ma.Choose(ctx)
	if err != nil || s != "s1" {
		t.Errorf("MemoryAware zero-mem = %q,%v, want s1", s, err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		s, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if s.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestUsesHTMClassification(t *testing.T) {
	expect := map[string]bool{
		"MCT": false, "HMCT": true, "MP": true, "MSF": true, "MNI": true,
		"MET": false, "OLB": true, "KPB": true, "SA": true,
		"Random": false, "RoundRobin": false,
	}
	for _, s := range All() {
		want, ok := expect[s.Name()]
		if !ok {
			t.Errorf("unexpected scheduler %q in All()", s.Name())
			continue
		}
		if UsesHTM(s) != want {
			t.Errorf("UsesHTM(%s) = %v, want %v", s.Name(), UsesHTM(s), want)
		}
	}
}

func TestArgminScan(t *testing.T) {
	preds := []htm.Prediction{
		{Server: "a", Completion: 10},
		{Server: "b", Completion: 10 + 1e-12},
		{Server: "c", Completion: 20},
	}
	w, ties, _ := argminScan(preds, func(p htm.Prediction) float64 { return p.Completion })
	if ties != 2 || w.Server != "a" {
		t.Errorf("argminScan = (%q, %d ties), want (a, 2)", w.Server, ties)
	}
	inf := []htm.Prediction{{Server: "x", Completion: math.Inf(1)}}
	w, ties, _ = argminScan(inf, func(p htm.Prediction) float64 { return p.Completion })
	if ties != 1 || w.Server != "x" {
		t.Errorf("infinite objective must still yield a candidate, got (%q, %d)", w.Server, ties)
	}
}

// TestArgminTieBreak: the scan-based nested argmin picks the same
// winner as minimizing the secondary objective within primary ties.
func TestArgminTieBreak(t *testing.T) {
	preds := []htm.Prediction{
		{Server: "a", Perturbation: 5, Completion: 30},
		{Server: "b", Perturbation: 5, Completion: 10},
		{Server: "c", Perturbation: 5, Completion: 10 + 1e-12},
		{Server: "d", Perturbation: 9, Completion: 1},
	}
	w := argminTieBreak(preds,
		func(p htm.Prediction) float64 { return p.Perturbation },
		func(p htm.Prediction) float64 { return p.Completion })
	if w.Server != "b" {
		t.Errorf("argminTieBreak = %q, want b (first minimal-completion tie)", w.Server)
	}
}

// TestByNameCaseInsensitive: lookup is table-driven off one registry
// and case-insensitive.
func TestByNameCaseInsensitive(t *testing.T) {
	for _, name := range []string{"msf", "MSF", "Msf", "roundrobin", "hmct"} {
		s, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if !strings.EqualFold(s.Name(), name) {
			t.Errorf("ByName(%q) = %s", name, s.Name())
		}
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("unknown heuristic accepted")
	}
}

// TestNamesMatchRegistry: every listed name constructs a scheduler
// whose Name round-trips, and All follows the same order.
func TestNamesMatchRegistry(t *testing.T) {
	names := Names()
	all := All()
	if len(names) != len(all) {
		t.Fatalf("Names()=%d entries, All()=%d", len(names), len(all))
	}
	for i, n := range names {
		s, err := ByName(n)
		if err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
		if s.Name() != n {
			t.Errorf("ByName(%q).Name() = %q", n, s.Name())
		}
		if all[i].Name() != n {
			t.Errorf("All()[%d] = %q, want %q", i, all[i].Name(), n)
		}
	}
}
