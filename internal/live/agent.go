package live

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"casched/internal/agent"
	"casched/internal/cluster"
	"casched/internal/sched"
	"casched/internal/task"
	"casched/internal/trace"
)

// AgentConfig parameterizes a live agent.
type AgentConfig struct {
	// Scheduler is the heuristic the agent applies.
	Scheduler sched.Scheduler
	// Clock is the experiment clock shared by all components.
	Clock *Clock
	// Seed drives randomized tie-breaking.
	Seed uint64
	// Log, when non-nil, receives events.
	Log *trace.Log
	// HTMSync enables trace re-anchoring on completion messages.
	HTMSync bool
	// HTMWorkers bounds the HTM's candidate-evaluation worker pool
	// (default 0 = GOMAXPROCS).
	HTMWorkers int
	// Shards partitions the server pool across that many agent cores
	// behind the cluster dispatch layer (0 or 1 = the single shared
	// core).
	Shards int
	// ShardPolicy assigns registering servers to shards (nil = hash).
	// Only consulted when Shards > 1.
	ShardPolicy cluster.ShardPolicy
	// Addr is the TCP listen address (default "127.0.0.1:0", an
	// ephemeral loopback port).
	Addr string
	// TenantShares, when non-nil, turns on weighted fair-share
	// arbitration of multi-tenant intake (see agent.Config).
	TenantShares map[string]float64
	// Admission turns on deadline-aware admission control.
	Admission bool
	// IntakeRate, when positive, bounds raw intake with a token bucket
	// (IntakeRate tasks per virtual second, burst IntakeBurst) — the
	// core's own bucket on a single core, the dispatch-level bucket on
	// a sharded cluster.
	IntakeRate  float64
	IntakeBurst float64
	// Join, when non-empty, is a comma-separated list of federation
	// dispatcher RPC addresses: after listening, the agent announces
	// itself with Fed.Join to each (a replicated-dispatcher deployment
	// lists the leader and every standby so all of them track the
	// member) and serves as a federation member (its "Member" RPC
	// service drives the core). Joining requires a single core
	// (Shards <= 1). Startup fails only when every address refuses.
	Join string
	// RelayOff disables the federation event relay ledger on a
	// single-core agent. By default a live single-core agent keeps the
	// ledger (cheap, bounded) so a relay-enabled dispatcher can stream
	// its decisions; with RelayOff the agent answers relay pulls
	// Disabled, emulating a pre-relay member.
	RelayOff bool
	// Name is the agent's federation member name (default: its listen
	// address).
	Name string
}

// Engine is the decision surface the live transport drives: the single
// agent core or a sharded cluster — the wire protocol cannot tell them
// apart.
type Engine interface {
	AddServer(name string)
	RemoveServer(name string)
	Submit(req agent.Request) (agent.Decision, error)
	Complete(jobID int, server string, at float64) agent.Completion
	Report(server string, load, at float64)
	Subscribe(fn func(agent.Event)) (cancel func())
	Prediction(jobID int) (float64, bool)
	FinalPredictions() map[int]float64
}

// Agent is the central scheduler of the live deployment: a TCP
// transport (RPC service "Agent") over the shared decision engine —
// one agent core, or a sharded cluster of them (AgentConfig.Shards).
// The agent itself only keeps the name→address book and the wire
// protocol.
type Agent struct {
	cfg    AgentConfig
	engine Engine
	core   *agent.Core // non-nil only for the single-core engine

	mu    sync.Mutex
	addrs map[string]string // server name -> RPC address
	conns map[net.Conn]struct{}
	done  bool
	// fence is the leader-election fencing watermark: the highest
	// dispatcher term seen on a mutating member call. Calls carrying a
	// lower (non-zero) term are refused — a deposed leader cannot
	// place work here after a standby took over.
	fence uint64

	// joined are the dispatcher addresses this member announced itself
	// to; name is the member name used (for Fed.Leave).
	joined []string
	name   string

	lis net.Listener
	srv *rpc.Server
}

// StartAgent launches an agent listening on 127.0.0.1 (an ephemeral
// port) and returns it together with its address.
func StartAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("live: agent needs a scheduler")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("live: agent needs a clock")
	}
	coreCfg := agent.Config{
		Scheduler:    cfg.Scheduler,
		Seed:         cfg.Seed,
		HTMSync:      cfg.HTMSync,
		HTMWorkers:   cfg.HTMWorkers,
		Log:          cfg.Log,
		TenantShares: cfg.TenantShares,
		Admission:    cfg.Admission,
	}
	var engine Engine
	var core *agent.Core
	if cfg.Shards > 1 {
		// The intake bucket sits in front of the dispatch layer, not in
		// the shard cores — one limiter per deployment.
		cl, err := cluster.NewFromConfig(cluster.Config{
			Shards:      cfg.Shards,
			Policy:      cfg.ShardPolicy,
			Core:        coreCfg,
			IntakeRate:  cfg.IntakeRate,
			IntakeBurst: cfg.IntakeBurst,
		})
		if err != nil {
			return nil, fmt.Errorf("live: %w", err)
		}
		engine = cl
	} else {
		coreCfg.IntakeRate, coreCfg.IntakeBurst = cfg.IntakeRate, cfg.IntakeBurst
		// Only a single core can serve as a federation member, so only
		// there does the relay ledger have a consumer.
		coreCfg.Relay = !cfg.RelayOff
		var err error
		core, err = agent.New(coreCfg)
		if err != nil {
			return nil, fmt.Errorf("live: %w", err)
		}
		engine = core
	}
	a := &Agent{
		cfg:    cfg,
		engine: engine,
		core:   core,
		addrs:  make(map[string]string),
		conns:  make(map[net.Conn]struct{}),
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: agent listen: %w", err)
	}
	a.lis = lis
	a.srv = rpc.NewServer()
	if err := a.srv.RegisterName("Agent", &AgentService{a}); err != nil {
		lis.Close()
		return nil, fmt.Errorf("live: agent rpc register: %w", err)
	}
	if core != nil {
		// Single-core agents double as federation members.
		if err := a.srv.RegisterName("Member", &MemberService{a}); err != nil {
			lis.Close()
			return nil, fmt.Errorf("live: member rpc register: %w", err)
		}
	}
	go a.serve()
	if cfg.Join != "" {
		if core == nil {
			lis.Close()
			return nil, fmt.Errorf("live: a sharded agent (Shards=%d) cannot join a federation", cfg.Shards)
		}
		name := cfg.Name
		if name == "" {
			name = a.Addr()
		}
		a.name = name
		var firstErr error
		for _, da := range splitAddrs(cfg.Join) {
			if err := join(da, JoinArgs{Name: name, Addr: a.Addr(), Heuristic: cfg.Scheduler.Name()}); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			a.joined = append(a.joined, da)
		}
		if len(a.joined) == 0 {
			lis.Close()
			return nil, firstErr
		}
	}
	return a, nil
}

// Addr returns the agent's RPC address.
func (a *Agent) Addr() string { return a.lis.Addr().String() }

// Close stops accepting connections and drops the active ones, so
// peers holding persistent RPC clients (federation dispatchers,
// long-lived clients) observe the shutdown instead of talking to a
// half-dead agent.
func (a *Agent) Close() error {
	err := a.lis.Close()
	a.mu.Lock()
	a.done = true
	for conn := range a.conns {
		conn.Close()
	}
	a.conns = make(map[net.Conn]struct{})
	a.mu.Unlock()
	return err
}

// admitTerm enforces the leader-election fence on a mutating member
// call: zero terms are always admitted (HA off, or a legacy
// dispatcher), a term at or above the watermark raises it, a lower
// term is refused. The refusal travels as an rpc.ServerError — a
// delivered answer, not a transport failure, so the caller neither
// evicts this member nor reroutes the task.
func (a *Agent) admitTerm(term uint64) error {
	if term == 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if term < a.fence {
		return fmt.Errorf("live: stale leader term %d (member fenced at %d)", term, a.fence)
	}
	a.fence = term
	return nil
}

// Leave gracefully departs the federation: each joined dispatcher is
// told Fed.Leave (so it re-homes this member's server partition to
// the survivors), then the member drains — waits, up to timeout, for
// its in-flight work to complete; completions still route here until
// it does. Errors from dispatchers that are unreachable or predate
// the Leave protocol are ignored: eviction cleans up after them.
func (a *Agent) Leave(timeout time.Duration) {
	a.mu.Lock()
	joined, name := a.joined, a.name
	a.mu.Unlock()
	for _, da := range joined {
		leave(da, LeaveArgs{Name: name})
	}
	if a.core == nil {
		return
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if a.core.LoadSummary().InFlight == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Core exposes the single shared core, or nil when the agent runs
// sharded (AgentConfig.Shards > 1); use Engine for the
// transport-agnostic surface.
func (a *Agent) Core() *agent.Core { return a.core }

// Engine exposes the agent's decision engine — the core or the
// cluster — e.g. to subscribe to its event stream.
func (a *Agent) Engine() Engine { return a.engine }

// serve accepts RPC connections until the listener closes.
func (a *Agent) serve() {
	for {
		conn, err := a.lis.Accept()
		if err != nil {
			return
		}
		a.mu.Lock()
		if a.done {
			a.mu.Unlock()
			conn.Close()
			return
		}
		a.conns[conn] = struct{}{}
		a.mu.Unlock()
		go func() {
			a.serveConn(conn)
			conn.Close()
			a.mu.Lock()
			delete(a.conns, conn)
			a.mu.Unlock()
		}()
	}
}

// log appends an event if logging is configured.
func (a *Agent) log(r trace.Record) {
	if a.cfg.Log != nil {
		a.cfg.Log.Add(r)
	}
}

// register adds a server to the pool (idempotent by name). Membership
// goes to the core (belief + HTM trace lifecycle); the address book is
// transport state and stays here.
func (a *Agent) register(args RegisterArgs) {
	a.mu.Lock()
	a.addrs[args.Name] = args.Addr
	a.mu.Unlock()
	a.engine.AddServer(args.Name)
	a.log(trace.Record{Time: a.cfg.Clock.Now(), Kind: "register", Server: args.Name, TaskID: -1})
}

// schedule picks a server for a request through the shared core and
// returns its address.
func (a *Agent) schedule(args ScheduleArgs) (ScheduleReply, error) {
	spec, err := task.Resolve(args.Problem, args.Variant)
	if err != nil {
		return ScheduleReply{}, err
	}
	dec, err := a.engine.Submit(agent.Request{
		JobID:     args.TaskKey,
		TaskID:    args.TaskKey,
		Spec:      spec,
		Arrival:   a.cfg.Clock.Now(),
		Submitted: args.Arrival,
		Tenant:    args.Tenant,
		Deadline:  args.Deadline,
	})
	if errors.Is(err, agent.ErrUnschedulable) {
		return ScheduleReply{}, fmt.Errorf("live: no server solves %s", spec.Name())
	}
	if err != nil {
		return ScheduleReply{}, fmt.Errorf("live: %w", err)
	}
	a.mu.Lock()
	addr := a.addrs[dec.Server]
	a.mu.Unlock()
	return ScheduleReply{Server: dec.Server, Addr: addr}, nil
}

// taskDone relays a server's completion message to the core.
func (a *Agent) taskDone(args TaskDoneArgs) {
	a.engine.Complete(args.TaskKey, args.Server, args.At)
}

// loadReport relays a periodic monitor report to the core.
func (a *Agent) loadReport(args LoadReportArgs) {
	a.engine.Report(args.Name, args.Load, args.At)
}

// Prediction returns the HTM completion predicted when the task was
// placed (HTM heuristics only). Predictions are evicted once the task
// completes; use FinalPredictions for post-run comparisons.
func (a *Agent) Prediction(taskKey int) (float64, bool) {
	return a.engine.Prediction(taskKey)
}

// FinalPredictions returns the HTM's end-of-run simulated completion
// date for every placed task — the "simulated completion date" column
// of Table 1.
func (a *Agent) FinalPredictions() map[int]float64 {
	return a.engine.FinalPredictions()
}

// AgentService is the RPC facade. Methods follow net/rpc conventions.
type AgentService struct{ a *Agent }

// Register handles server registration.
func (s *AgentService) Register(args RegisterArgs, _ *Ack) error {
	s.a.register(args)
	return nil
}

// Schedule handles a client scheduling request.
func (s *AgentService) Schedule(args ScheduleArgs, reply *ScheduleReply) error {
	r, err := s.a.schedule(args)
	if err != nil {
		return err
	}
	*reply = r
	return nil
}

// TaskDone handles a server completion message.
func (s *AgentService) TaskDone(args TaskDoneArgs, _ *Ack) error {
	s.a.taskDone(args)
	return nil
}

// LoadReport handles a periodic monitor report.
func (s *AgentService) LoadReport(args LoadReportArgs, _ *Ack) error {
	s.a.loadReport(args)
	return nil
}
