package relay

// Base is the full load snapshot a View rebases on — the member's
// gossiped summary projected into relay terms. Seq is the member
// ledger sequence the snapshot was captured at, so the view knows
// which relayed events the snapshot already includes.
type Base struct {
	InFlight int
	// Tenant is the per-tenant in-flight split; nil means the member
	// does not break in-flight down by tenant.
	Tenant map[string]int
	// Ready maps each of the member's servers to its projected-ready
	// instant; nil when the member's heuristic has no HTM projection.
	Ready map[string]float64
	Seq   uint64
}

// optEntry is one decision the dispatcher delegated to the member but
// has not yet seen echoed on the relay stream. marker orders the entry
// against summary fetches (see View.Rebase).
type optEntry struct {
	jobID  int
	server string
	tenant string
	at     float64
	cost   float64
	marker uint64
}

// View is the dispatcher's near-fresh picture of one member: the last
// rebased summary, folded relay events, and optimistic entries for
// delegations still in flight. A View carries no lock of its own —
// the dispatcher serializes access under its routing mutex.
type View struct {
	synced      bool
	seq         uint64
	inFlight    int
	tenant      map[string]int
	tenantBased bool
	ready       map[string]float64
	opt         []optEntry
	folded      uint64
}

// NewView returns an unsynced view; it becomes routable after the
// first Rebase.
func NewView() *View { return &View{} }

// Rebase replaces the folded state with a full snapshot. marker is the
// dispatcher's delegation sequence for this member captured when the
// snapshot fetch *started*: optimistic entries at or before it are
// covered by the snapshot and dropped, later ones survive the rebase.
func (v *View) Rebase(b Base, marker uint64) {
	v.inFlight = b.InFlight
	v.tenantBased = b.Tenant != nil
	v.tenant = nil
	if b.Tenant != nil {
		v.tenant = make(map[string]int, len(b.Tenant))
		for t, n := range b.Tenant {
			v.tenant[t] = n
		}
	}
	v.ready = nil
	if b.Ready != nil {
		v.ready = make(map[string]float64, len(b.Ready))
		for s, r := range b.Ready {
			v.ready[s] = r
		}
	}
	v.seq = b.Seq
	kept := v.opt[:0]
	for _, e := range v.opt {
		if e.marker > marker {
			kept = append(kept, e)
		}
	}
	v.opt = kept
	v.synced = true
}

// Unsync drops the view back to unroutable (e.g. after a member is
// replaced); the next Rebase restores it.
func (v *View) Unsync() { v.synced = false }

// Apply folds a relayed delta. Events at or before the view's sequence
// are skipped (the rebased summary already included them). A Resync
// delta — or one whose To runs backwards, a member restart — unsyncs
// the view. Returns the number of events actually folded.
func (v *View) Apply(d Delta) int {
	if d.Resync || d.To < d.From {
		v.synced = false
		return 0
	}
	if !v.synced {
		return 0
	}
	applied := 0
	for _, ev := range d.Events {
		if ev.Seq <= v.seq {
			continue
		}
		switch ev.Kind {
		case Decision:
			v.inFlight++
			if v.tenantBased && ev.Tenant != "" {
				if v.tenant == nil {
					v.tenant = make(map[string]int)
				}
				v.tenant[ev.Tenant]++
			}
			v.clearOptimistic(ev.JobID)
		case Completion:
			if v.inFlight > 0 {
				v.inFlight--
			}
			if v.tenantBased && ev.Tenant != "" && v.tenant[ev.Tenant] > 0 {
				v.tenant[ev.Tenant]--
			}
		}
		if ev.HasReady && ev.Server != "" {
			if v.ready == nil {
				v.ready = make(map[string]float64)
			}
			v.ready[ev.Server] = ev.Ready
		}
		v.seq = ev.Seq
		v.folded++
		applied++
	}
	if d.To > v.seq {
		v.seq = d.To
	}
	return applied
}

// Optimistic records a delegation the dispatcher just made: the
// member's in-flight is bumped locally before the relayed decision
// event confirms it. marker is the dispatcher's delegation sequence
// for the member (see Rebase).
func (v *View) Optimistic(jobID int, tenant, server string, at, cost float64, marker uint64) {
	v.opt = append(v.opt, optEntry{jobID: jobID, server: server, tenant: tenant, at: at, cost: cost, marker: marker})
}

// clearOptimistic reconciles one optimistic entry against its relayed
// decision event.
func (v *View) clearOptimistic(jobID int) {
	for i, e := range v.opt {
		if e.jobID == jobID {
			v.opt = append(v.opt[:i], v.opt[i+1:]...)
			return
		}
	}
}

// Synced reports whether the view has a usable base.
func (v *View) Synced() bool { return v.synced }

// Seq returns the member ledger sequence the view has folded up to.
func (v *View) Seq() uint64 { return v.seq }

// Folded returns the total relay events folded over the view's life.
func (v *View) Folded() uint64 { return v.folded }

// Pending returns the optimistic entries not yet confirmed by relay.
func (v *View) Pending() int { return len(v.opt) }

// InFlight returns the member's in-flight count including optimistic
// delegations.
func (v *View) InFlight() int { return v.inFlight + len(v.opt) }

// TenantBased reports whether the view tracks per-tenant in-flight.
func (v *View) TenantBased() bool { return v.tenantBased }

// TenantInFlight returns tenant's in-flight count including optimistic
// delegations; when the member does not split by tenant it falls back
// to the total.
func (v *View) TenantInFlight(tenant string) int {
	if !v.tenantBased {
		return v.InFlight()
	}
	n := v.tenant[tenant]
	for _, e := range v.opt {
		if e.tenant == tenant {
			n++
		}
	}
	return n
}

// HasReady reports whether the view carries per-server projected-ready
// instants at all.
func (v *View) HasReady() bool { return len(v.ready) > 0 }

// Ready returns server's projected-ready instant with the optimistic
// queue folded on top: each unconfirmed delegation to the server
// extends its backlog by the task's total cost from the later of the
// current backlog end and the task's arrival.
func (v *View) Ready(server string) (float64, bool) {
	r, ok := v.ready[server]
	if !ok {
		return 0, false
	}
	for _, e := range v.opt {
		if e.server != server {
			continue
		}
		if e.at > r {
			r = e.at
		}
		r += e.cost
	}
	return r, true
}

// MinReady returns the minimum projected-ready instant across the
// member's servers (optimistic entries folded), mirroring
// Summary.MinReady.
func (v *View) MinReady() (float64, bool) {
	found := false
	min := 0.0
	for s := range v.ready {
		r, _ := v.Ready(s)
		if !found || r < min {
			min, found = r, true
		}
	}
	return min, found
}
