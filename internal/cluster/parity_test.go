package cluster

// Decision-parity: with one shard the Cluster is the agent core — same
// requests, same seed, same heuristic must produce the identical
// placement sequence through Submit and through SubmitBatch. This is
// the cluster-side analogue of the grid-vs-live parity test in
// internal/agent: it pins that the dispatch layer adds routing, not
// decision drift.

import (
	"math"
	"sync"
	"testing"

	"casched/internal/agent"
	"casched/internal/sched"
	"casched/internal/workload"
)

// parityStream builds a deterministic request stream from the paper's
// second-set workload generator: n waste-cpu tasks under Poisson
// arrivals, restricted to the Table 2 testbed servers.
func parityStream(n int) []agent.Request {
	mt := workload.MustGenerate(workload.Set2(n, 12, 7))
	reqs := make([]agent.Request, mt.Len())
	for i, tk := range mt.Tasks {
		reqs[i] = agent.Request{JobID: tk.ID, TaskID: tk.ID, Spec: tk.Spec, Arrival: tk.Arrival}
	}
	return reqs
}

// parityServers is the second-set testbed (Table 2).
var parityServers = []string{"artimon", "spinnaker", "soyotte", "valette"}

// driveSequential plays the stream one request at a time through any
// submit surface, completing each job at its predicted date (or 15s
// after arrival for monitor heuristics) every fourth decision to
// exercise the belief corrections.
type submitter interface {
	Submit(agent.Request) (agent.Decision, error)
	Complete(jobID int, server string, at float64) agent.Completion
}

func driveSequential(t *testing.T, s submitter, reqs []agent.Request) []string {
	t.Helper()
	out := make([]string, len(reqs))
	for i, req := range reqs {
		dec, err := s.Submit(req)
		if err != nil {
			t.Fatalf("job %d: %v", req.JobID, err)
		}
		out[i] = dec.Server
		if i%4 == 3 {
			at := req.Arrival + 15
			if dec.HasPrediction {
				at = dec.Predicted
			}
			s.Complete(dec.JobID, dec.Server, at)
		}
	}
	return out
}

func TestOneShardClusterMatchesAgentCore(t *testing.T) {
	for _, name := range []string{"HMCT", "MCT", "MP", "MSF", "MNI", "Random", "RoundRobin"} {
		name := name
		t.Run(name, func(t *testing.T) {
			reqs := parityStream(60)

			s, err := sched.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			core, err := agent.New(agent.Config{Scheduler: s, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			for _, srv := range parityServers {
				core.AddServer(srv)
			}
			want := driveSequential(t, core, reqs)

			cl, err := New(WithShards(1), WithHeuristic(name), WithSeed(11))
			if err != nil {
				t.Fatal(err)
			}
			for _, srv := range parityServers {
				cl.AddServer(srv)
			}
			got := driveSequential(t, cl, reqs)

			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("job %d: cluster placed on %s, core on %s\ncore:    %v\ncluster: %v",
						i, got[i], want[i], want, got)
				}
			}
			// Guard against a degenerate one-server stream.
			distinct := map[string]bool{}
			for _, srv := range want {
				distinct[srv] = true
			}
			if len(distinct) < 2 {
				t.Errorf("stream degenerated to one server: %v", want)
			}
		})
	}
}

// TestOneShardBatchMatchesAgentCoreBatch extends parity to the batch
// path: a 1-shard Cluster's SubmitBatch must reproduce the core's
// SubmitBatch exactly (which itself provably equals sequential
// Submit).
func TestOneShardBatchMatchesAgentCoreBatch(t *testing.T) {
	reqs := parityStream(48)
	batch := func(reqs []agent.Request, k int) [][]agent.Request {
		var out [][]agent.Request
		for i := 0; i < len(reqs); i += k {
			end := min(i+k, len(reqs))
			b := make([]agent.Request, end-i)
			copy(b, reqs[i:end])
			at := b[0].Arrival
			for j := range b {
				b[j].Arrival = at // simultaneous-arrival burst
			}
			out = append(out, b)
		}
		return out
	}

	s, err := sched.ByName("MSF")
	if err != nil {
		t.Fatal(err)
	}
	core, err := agent.New(agent.Config{Scheduler: s, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(WithShards(1), WithHeuristic("MSF"), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	for _, srv := range parityServers {
		core.AddServer(srv)
		cl.AddServer(srv)
	}
	for _, b := range batch(reqs, 6) {
		want, err := core.SubmitBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cl.SubmitBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i].Server != want[i].Server ||
				math.Abs(got[i].Predicted-want[i].Predicted) > 1e-9 {
				t.Fatalf("job %d: cluster %+v vs core %+v", b[i].JobID, got[i], want[i])
			}
		}
	}
}

// TestConcurrentSubmitAcrossShards hammers a 4-shard cluster from
// concurrent submitters, completers and reporters; run under -race it
// pins the locking discipline of the dispatch layer, the shard cores
// and the merged event stream.
func TestConcurrentSubmitAcrossShards(t *testing.T) {
	const (
		workers   = 8
		perWorker = 25
		servers   = 16
	)
	cl := newTestCluster(t, 4, "HMCT", servers)
	spec := evenSpec(servers)

	var seen int64
	cancel := cl.Subscribe(func(ev agent.Event) {
		if ev.Kind == agent.EventDecision {
			seen++
		}
	})
	defer cancel()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := w*1000 + i
				at := float64(i)
				var dec agent.Decision
				var err error
				if i%5 == 0 {
					var decs []agent.Decision
					decs, err = cl.SubmitBatch([]agent.Request{
						{JobID: id, TaskID: id, Spec: spec, Arrival: at},
					})
					if err == nil {
						dec = decs[0]
					}
				} else {
					dec, err = cl.Submit(agent.Request{JobID: id, TaskID: id, Spec: spec, Arrival: at})
				}
				if err != nil {
					t.Errorf("worker %d job %d: %v", w, id, err)
					return
				}
				if i%2 == 0 {
					cl.Complete(id, dec.Server, at+20)
				}
				if i%7 == 0 {
					cl.Report(dec.Server, 1, at)
				}
			}
		}(w)
	}
	wg.Wait()

	if got := int(seen); got != workers*perWorker {
		t.Errorf("merged stream saw %d decisions, want %d", got, workers*perWorker)
	}
	want := workers * perWorker
	completed := workers * ((perWorker + 1) / 2)
	if got := cl.InFlight(); got != want-completed {
		t.Errorf("in-flight = %d, want %d", got, want-completed)
	}
}
