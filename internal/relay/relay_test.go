package relay

import "testing"

func TestLedgerAppendSince(t *testing.T) {
	l := NewLedger(8)
	if l.Seq() != 0 {
		t.Fatalf("fresh ledger seq = %d, want 0", l.Seq())
	}
	for i := 0; i < 5; i++ {
		seq := l.Append(Event{Kind: Decision, JobID: i})
		if seq != uint64(i+1) {
			t.Fatalf("append %d assigned seq %d", i, seq)
		}
	}
	d := l.Since(2)
	if d.Resync {
		t.Fatal("unexpected resync")
	}
	if d.From != 2 || d.To != 5 {
		t.Fatalf("delta range (%d,%d], want (2,5]", d.From, d.To)
	}
	if len(d.Events) != 3 || d.Events[0].Seq != 3 || d.Events[2].Seq != 5 {
		t.Fatalf("delta events %+v", d.Events)
	}
	if e := l.Since(5); len(e.Events) != 0 || e.Resync {
		t.Fatalf("caught-up delta %+v", e)
	}
	if e := l.Since(9); len(e.Events) != 0 || e.Resync || e.To != 5 {
		t.Fatalf("ahead-of-ledger delta %+v", e)
	}
}

func TestLedgerRingOverflowResync(t *testing.T) {
	l := NewLedger(4)
	for i := 0; i < 10; i++ {
		l.Append(Event{Kind: Decision, JobID: i})
	}
	// Events 1..6 have been overwritten; oldest retained is 7.
	if d := l.Since(5); !d.Resync || len(d.Events) != 0 {
		t.Fatalf("want resync for dropped range, got %+v", d)
	}
	d := l.Since(6)
	if d.Resync || len(d.Events) != 4 || d.Events[0].Seq != 7 {
		t.Fatalf("oldest-boundary delta %+v", d)
	}
}

func TestViewFoldsDecisionsAndCompletions(t *testing.T) {
	v := NewView()
	if v.Synced() {
		t.Fatal("fresh view claims synced")
	}
	v.Rebase(Base{InFlight: 2, Tenant: map[string]int{"gold": 2}, Ready: map[string]float64{"s1": 10, "s2": 4}, Seq: 6}, 0)
	if !v.Synced() || v.InFlight() != 2 || v.TenantInFlight("gold") != 2 {
		t.Fatalf("after rebase: inflight=%d gold=%d", v.InFlight(), v.TenantInFlight("gold"))
	}
	n := v.Apply(Delta{From: 6, To: 9, Events: []Event{
		{Seq: 7, Kind: Decision, JobID: 41, Tenant: "gold", Server: "s1", Ready: 14, HasReady: true},
		{Seq: 8, Kind: Decision, JobID: 42, Tenant: "silver", Server: "s2", Ready: 9, HasReady: true},
		{Seq: 9, Kind: Completion, JobID: 40, Tenant: "gold", Server: "s1", Ready: 12, HasReady: true},
	}})
	if n != 3 || v.Seq() != 9 || v.Folded() != 3 {
		t.Fatalf("applied %d, seq %d, folded %d", n, v.Seq(), v.Folded())
	}
	if v.InFlight() != 3 {
		t.Fatalf("inflight %d, want 3", v.InFlight())
	}
	if v.TenantInFlight("gold") != 2 || v.TenantInFlight("silver") != 1 {
		t.Fatalf("gold=%d silver=%d", v.TenantInFlight("gold"), v.TenantInFlight("silver"))
	}
	if r, ok := v.Ready("s1"); !ok || r != 12 {
		t.Fatalf("s1 ready %v %v, want 12", r, ok)
	}
	if min, ok := v.MinReady(); !ok || min != 9 {
		t.Fatalf("min ready %v %v, want 9", min, ok)
	}
}

func TestViewSkipsAlreadyFoldedEvents(t *testing.T) {
	v := NewView()
	v.Rebase(Base{InFlight: 1, Seq: 5}, 0)
	n := v.Apply(Delta{From: 3, To: 6, Events: []Event{
		{Seq: 4, Kind: Decision, JobID: 1},
		{Seq: 5, Kind: Decision, JobID: 2},
		{Seq: 6, Kind: Decision, JobID: 3},
	}})
	if n != 1 || v.InFlight() != 2 {
		t.Fatalf("applied %d inflight %d, want 1 and 2", n, v.InFlight())
	}
}

func TestViewOptimisticReconciliation(t *testing.T) {
	v := NewView()
	v.Rebase(Base{InFlight: 0, Ready: map[string]float64{"s1": 5}, Seq: 0}, 0)
	v.Optimistic(7, "gold", "s1", 6, 3, 1)
	if v.InFlight() != 1 || v.Pending() != 1 {
		t.Fatalf("inflight %d pending %d after optimistic", v.InFlight(), v.Pending())
	}
	// Optimistic bump extends the server backlog: max(5, 6) + 3 = 9.
	if r, ok := v.Ready("s1"); !ok || r != 9 {
		t.Fatalf("optimistic ready %v %v, want 9", r, ok)
	}
	// Relayed echo of the same decision replaces, not double-counts.
	v.Apply(Delta{From: 0, To: 1, Events: []Event{{Seq: 1, Kind: Decision, JobID: 7, Tenant: "gold", Server: "s1", Ready: 9, HasReady: true}}})
	if v.InFlight() != 1 || v.Pending() != 0 {
		t.Fatalf("inflight %d pending %d after echo", v.InFlight(), v.Pending())
	}
}

func TestViewRebaseDropsCoveredOptimistic(t *testing.T) {
	v := NewView()
	v.Rebase(Base{InFlight: 0, Seq: 0}, 0)
	v.Optimistic(1, "", "s1", 0, 1, 1)
	v.Optimistic(2, "", "s1", 0, 1, 2)
	// Snapshot fetched after delegation 1 but before 2: marker 1.
	v.Rebase(Base{InFlight: 1, Seq: 10}, 1)
	if v.InFlight() != 2 || v.Pending() != 1 {
		t.Fatalf("inflight %d pending %d, want 2 and 1", v.InFlight(), v.Pending())
	}
}

func TestViewUnsyncsOnResyncAndRestart(t *testing.T) {
	v := NewView()
	v.Rebase(Base{InFlight: 1, Seq: 100}, 0)
	v.Apply(Delta{From: 100, To: 120, Resync: true})
	if v.Synced() {
		t.Fatal("view stayed synced through resync delta")
	}
	v.Rebase(Base{InFlight: 1, Seq: 100}, 0)
	// Member restarted: its ledger seq ran backwards.
	v.Apply(Delta{From: 100, To: 3})
	if v.Synced() {
		t.Fatal("view stayed synced through member restart")
	}
}

func TestViewTenantFallback(t *testing.T) {
	v := NewView()
	v.Rebase(Base{InFlight: 4, Seq: 0}, 0) // no tenant split
	if v.TenantInFlight("gold") != 4 {
		t.Fatalf("tenant fallback %d, want total 4", v.TenantInFlight("gold"))
	}
}
