// Package task defines the task model of the client-agent-server
// reproduction: independent requests composed of three serial phases
// (input data transfer, computation, output data transfer), with
// per-server nominal costs and memory requirements.
//
// The cost data for the paper's two workloads — square matrix
// multiplications (Table 3) and the memoryless waste-cpu burner
// (Table 4) — are embedded in tables.go.
package task

import "fmt"

// Phase identifies one of the three serial execution phases of a task.
type Phase int

const (
	// PhaseInput is the transfer of input data from client to server.
	PhaseInput Phase = iota
	// PhaseCompute is the computation on the server CPU.
	PhaseCompute
	// PhaseOutput is the transfer of output data back to the client.
	PhaseOutput
	// NumPhases is the number of serial phases of a task.
	NumPhases
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case PhaseInput:
		return "input"
	case PhaseCompute:
		return "compute"
	case PhaseOutput:
		return "output"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Cost holds the nominal duration, in seconds on the unloaded server,
// of each phase of a task on one particular server. This mirrors the
// paper's Tables 3 and 4, which report input/computing/output costs per
// (task type, server) pair.
type Cost struct {
	Input   float64 // seconds to receive input data on the unloaded link
	Compute float64 // seconds of CPU work on the unloaded server
	Output  float64 // seconds to send output data on the unloaded link
}

// Total returns the end-to-end duration of the task on an unloaded
// server: the denominator of the paper's stretch metric.
func (c Cost) Total() float64 { return c.Input + c.Compute + c.Output }

// Of returns the cost of one phase.
func (c Cost) Of(p Phase) float64 {
	switch p {
	case PhaseInput:
		return c.Input
	case PhaseCompute:
		return c.Compute
	case PhaseOutput:
		return c.Output
	}
	return 0
}

// Spec describes a task type: the problem name, a variant parameter
// (matrix size or waste-cpu parameter), the per-server costs, and the
// memory footprint held while the task is resident on a server.
type Spec struct {
	// Problem is the problem name the client requests from the agent,
	// e.g. "matmul" or "wastecpu". Servers register the problems they
	// can solve; the agent only considers servers advertising Problem.
	Problem string
	// Variant distinguishes task sizes within a problem (1200/1500/1800
	// for matmul; 200/400/600 for waste-cpu).
	Variant int
	// CostOn maps a server name to the task's nominal phase costs on
	// that server.
	CostOn map[string]Cost
	// MemoryMB is the resident memory footprint in megabytes
	// (input + output matrices for matmul; 0 for waste-cpu).
	MemoryMB float64
}

// Cost returns the nominal cost of the task on the named server and
// whether that server can run this task type at all.
func (s *Spec) Cost(server string) (Cost, bool) {
	c, ok := s.CostOn[server]
	return c, ok
}

// Name returns a human-readable identifier such as "matmul-1500".
func (s *Spec) Name() string { return fmt.Sprintf("%s-%d", s.Problem, s.Variant) }

// MinTotal returns the smallest nominal end-to-end duration of the task
// across the servers that can run it — the best case a deadline can be
// measured against — and false if no server can run it.
func (s *Spec) MinTotal() (float64, bool) {
	best, ok := 0.0, false
	for _, c := range s.CostOn {
		if t := c.Total(); !ok || t < best {
			best, ok = t, true
		}
	}
	return best, ok
}

// Task is one client request: a spec, a global identifier and an
// arrival (submission) date. Tasks are immutable once created; all
// execution state lives in the simulator or runtime.
type Task struct {
	// ID is unique within a metatask, assigned in submission order
	// starting at 0.
	ID int
	// Spec describes the task type.
	Spec *Spec
	// Arrival is the date, in seconds of experiment time, at which the
	// client submits the task to the agent.
	Arrival float64
	// Tenant identifies the submitting tenant for fair-share
	// arbitration. Nested shares separate levels with "/" ("gold/alice").
	// Empty means the single anonymous stream of the paper.
	Tenant string
	// Deadline is the absolute experiment-time date by which the task
	// should complete, for deadline-aware admission. Zero means none.
	Deadline float64
}

// String implements fmt.Stringer.
func (t *Task) String() string {
	return fmt.Sprintf("task#%d(%s@%.2fs)", t.ID, t.Spec.Name(), t.Arrival)
}

// Metatask is the paper's unit of experiment: a set of independent
// tasks submitted to the agent over time.
type Metatask struct {
	// Name labels the metatask for reports.
	Name string
	// Tasks are ordered by non-decreasing arrival date.
	Tasks []*Task
}

// Len returns the number of tasks.
func (m *Metatask) Len() int { return len(m.Tasks) }

// Horizon returns the last arrival date.
func (m *Metatask) Horizon() float64 {
	if len(m.Tasks) == 0 {
		return 0
	}
	return m.Tasks[len(m.Tasks)-1].Arrival
}

// Validate checks the invariants a well-formed metatask must satisfy:
// ids dense from zero, arrivals sorted and non-negative, specs non-nil.
func (m *Metatask) Validate() error {
	prev := 0.0
	for i, t := range m.Tasks {
		if t == nil {
			return fmt.Errorf("task: metatask %q: nil task at index %d", m.Name, i)
		}
		if t.ID != i {
			return fmt.Errorf("task: metatask %q: task at index %d has id %d", m.Name, i, t.ID)
		}
		if t.Spec == nil {
			return fmt.Errorf("task: metatask %q: task %d has nil spec", m.Name, i)
		}
		if t.Arrival < prev {
			return fmt.Errorf("task: metatask %q: arrivals not sorted at index %d (%.3f < %.3f)",
				m.Name, i, t.Arrival, prev)
		}
		prev = t.Arrival
	}
	return nil
}
