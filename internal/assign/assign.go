// Package assign solves the min-cost assignment problem behind the
// k-task batch scheduler: given a cost matrix over tasks (rows) and
// servers (columns), pick at most one server per task and at most one
// task per server minimizing the total cost of the matched pairs.
//
// The solver is the Hungarian algorithm in its successive-shortest-
// augmenting-path form (Jonker–Volgenant style, with dual potentials):
// rows are introduced one at a time and each is matched along the
// cheapest alternating path. Infeasible pairs are marked with +Inf and
// never traversed; a row none of whose columns is reachable stays
// unmatched (it belongs to a later wave), and by the augmenting-path
// lemma the final matching has maximum cardinality regardless of row
// order. Whenever every row is matched — in particular for a fully
// feasible matrix with rows ≤ columns — the result is the exact
// minimum-cost assignment.
//
// Complexity is O(rows² · cols) time, O(rows + cols) extra space —
// batches are tens of tasks over at most a few hundred servers, well
// under a millisecond (see BenchmarkAssignSolve).
package assign

import "math"

// Unassigned marks a row the solver could not match (no feasible
// column reachable, or more rows than columns).
const Unassigned = -1

// Solve computes a min-cost assignment for the given cost matrix.
// cost[i][j] is the cost of giving row i column j; +Inf marks an
// infeasible pair. Every row of the matrix must have the same length.
//
// The returned slice maps each row to its column (Unassigned for rows
// left out), and total is the summed cost of the matched pairs. The
// result is deterministic in the matrix: equal-cost alternatives
// resolve to the lowest column index reached first.
func Solve(cost [][]float64) (rowToCol []int, total float64) {
	n := len(cost)
	if n == 0 {
		return nil, 0
	}
	m := len(cost[0])
	rowToCol = make([]int, n)
	for i := range rowToCol {
		rowToCol[i] = Unassigned
	}
	if m == 0 {
		return rowToCol, 0
	}

	inf := math.Inf(1)
	// Dual potentials (u over rows, v over columns 1..m; column 0 is
	// the virtual source column holding the row being introduced).
	u := make([]float64, n)
	v := make([]float64, m+1)
	colRow := make([]int, m+1) // column -> matched row, Unassigned if free
	for j := range colRow {
		colRow[j] = Unassigned
	}
	minv := make([]float64, m+1) // tentative shortest distance to column j
	used := make([]bool, m+1)    // column in the Dijkstra tree
	way := make([]int, m+1)      // column -> predecessor column on the path

	for i := 0; i < n; i++ {
		colRow[0] = i
		j0 := 0
		for j := range minv {
			minv[j] = inf
			used[j] = false
			way[j] = 0
		}
		augmented := false
		for {
			used[j0] = true
			i0 := colRow[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if j1 < 0 || math.IsInf(delta, 1) {
				// No reachable free column: the row stays unmatched.
				// Dual updates already applied remain feasible; the
				// matching is untouched.
				break
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[colRow[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if colRow[j0] == Unassigned {
				augmented = true
				break
			}
		}
		if !augmented {
			continue
		}
		// Augment: flip the alternating path back to the source column.
		for j0 != 0 {
			j1 := way[j0]
			colRow[j0] = colRow[j1]
			j0 = j1
		}
	}

	for j := 1; j <= m; j++ {
		if r := colRow[j]; r != Unassigned {
			rowToCol[r] = j - 1
			total += cost[r][j-1]
		}
	}
	return rowToCol, total
}
