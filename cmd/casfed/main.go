// Command casfed runs a federation dispatcher on a TCP address: the
// coordination point member agents join, and the address servers and
// clients use exactly as they would a plain agent — the wire protocol
// cannot tell a federation from a single casagent.
//
// Usage:
//
//	casfed -addr 127.0.0.1:7400 -heuristic HMCT
//	casagent -addr 127.0.0.1:7411 -heuristic HMCT -join 127.0.0.1:7400 -name m1
//	casagent -addr 127.0.0.1:7412 -heuristic HMCT -join 127.0.0.1:7400 -name m2
//	casserver -agent 127.0.0.1:7400 ...   # servers register with the federation
//	casclient -agent 127.0.0.1:7400 ...   # clients schedule through it
//
// Deployment order mirrors NetSolve's: dispatcher first, then members,
// then servers, then clients. Registering servers are partitioned
// across members by -policy; scheduling fans out over the members
// while their load summaries are fresh and degrades to
// power-of-two-choices routing over stale summaries when a member is
// slow or partitioned (members that keep failing are evicted and
// probed for readmission).
//
// With -study the command instead runs the federation staleness study
// (no sockets): centralized cluster vs fresh federation (decision
// parity) vs stale-summary routing at several refresh lags, measured
// by HTM-simulated sum-flow on the paper's bursty workload — the
// committed benchmarks/fed-study.txt.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"casched"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7400", "TCP listen address")
		heuristic = flag.String("heuristic", "HMCT", "federation-wide scheduling heuristic")
		policy    = flag.String("policy", "hash", "server-to-member policy: hash, least-loaded or affinity")
		scale     = flag.Float64("scale", 1, "virtual seconds per wall second")
		seed      = flag.Uint64("seed", 1, "routing randomness seed")
		stale     = flag.Duration("stale-after", 2*time.Second, "summary age that degrades routing")
		interval  = flag.Duration("summary-interval", 500*time.Millisecond, "gossip refresh period")
		timeout   = flag.Duration("timeout", 2*time.Second, "per-member RPC budget")
		study     = flag.Bool("study", false, "run the stale-summary routing study and exit")
		shares    = flag.String("tenant-shares", "", `fair-share weights for in-process members, e.g. "gold=4,silver=2"; remote members (casagent -join) set their own`)
		admission = flag.Bool("admission", false, "deadline admission for in-process members; remote members set their own")
		rate      = flag.Float64("intake-rate", 0, "dispatch-level intake token-bucket rate in tasks per virtual second (0 = unlimited)")
		burst     = flag.Float64("intake-burst", 0, "intake token-bucket burst capacity (0 = max(rate, 1))")
		relay     = flag.Bool("relay", false, "stream member decision ledgers for near-fresh degraded routing")
		relayIntv = flag.Duration("relay-interval", 100*time.Millisecond, "relay pull period (with -relay)")
		relayMax  = flag.Int("relay-max-consec", 0, "max consecutive delegations to one member between relay advances (0 = default 8)")
		metrics   = flag.String("metrics-addr", "", "serve Prometheus GET /metrics on this address (empty = off)")
	)
	flag.Parse()

	if *study {
		r, err := casched.RunFederationStudy(casched.FederationStudyConfig{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "casfed:", err)
			os.Exit(1)
		}
		fmt.Print(casched.FormatFederationStudy(r))
		return
	}

	shardPolicy, ok := casched.ShardPolicyByName(*policy)
	if !ok {
		fmt.Fprintf(os.Stderr, "casfed: unknown policy %q\n", *policy)
		os.Exit(1)
	}
	tenantShares, err := casched.ParseTenantShares(*shares)
	if err != nil {
		fmt.Fprintln(os.Stderr, "casfed:", err)
		os.Exit(1)
	}
	srv, err := casched.StartFedServer(casched.FedServerConfig{
		Addr:                *addr,
		Heuristic:           *heuristic,
		Policy:              shardPolicy,
		Seed:                *seed,
		Clock:               casched.NewLiveClock(*scale),
		StaleAfter:          *stale,
		SummaryInterval:     *interval,
		Timeout:             *timeout,
		TenantShares:        tenantShares,
		Admission:           *admission,
		IntakeRate:          *rate,
		IntakeBurst:         *burst,
		Relay:               *relay,
		RelayInterval:       *relayIntv,
		RelayMaxConsecutive: *relayMax,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "casfed:", err)
		os.Exit(1)
	}
	fmt.Printf("casfed: %s federation dispatcher listening on %s (clock scale %gx, %s policy, stale-after %s, relay %v)\n",
		*heuristic, srv.Addr(), *scale, *policy, *stale, *relay)

	if *metrics != "" {
		sc := casched.NewStatsCollector()
		srv.Dispatcher().Subscribe(sc.Collect)
		msrv, err := casched.StartMetricsServer(*metrics, casched.MetricsConfig{
			Stats:   sc.Snapshot,
			Members: srv.Dispatcher().Members,
			Relay:   srv.Dispatcher().RelayStats,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "casfed:", err)
			os.Exit(1)
		}
		defer msrv.Close()
		fmt.Printf("casfed: metrics on http://%s/metrics\n", msrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
	fmt.Println("casfed: stopped")
}
