package experiments

import (
	"fmt"
	"time"

	"casched/internal/live"
	"casched/internal/sched"
	"casched/internal/task"
)

// Table 1 of the paper validates the shared-resource model: two
// metatasks of matrix multiplications are executed for real and their
// completion dates compared with the HTM's simulated dates. The mean
// error is under 3% of the task duration.
//
// Our "real" environment is the live runtime (goroutines + TCP +
// quantum executor); the validation server is artimon, whose Table 3
// costs are closest to the durations implied by the paper's Table 1.

// validationArrival mirrors one Table 1 submission.
type validationArrival struct {
	arrival float64
	size    int
}

// validationMetatasks are the paper's two executions: arrival dates
// and matrix sizes taken verbatim from Table 1.
var validationMetatasks = [][]validationArrival{
	{
		{33.00, 1500},
		{59.92, 1200},
		{73.92, 1800},
	},
	{
		{29.41, 1500},
		{56.43, 1200},
		{70.42, 1800},
		{96.41, 1200},
		{121.43, 1500},
		{140.41, 1200},
		{166.42, 1800},
		{181.45, 1200},
		{206.41, 1200},
	},
}

// ValidationRow is one task of the Table 1 reproduction.
type ValidationRow struct {
	Execution int     // 1 or 2
	Task      int     // local task number within the execution
	Arrival   float64 // submission date (s)
	Size      int     // matrix size
	Real      float64 // measured completion date (live runtime)
	Simulated float64 // HTM simulated completion date
	Diff      float64 // Real - Simulated
	PctError  float64 // 100*|Diff|/duration, as defined by the paper
}

// ValidationResult is the reproduced Table 1.
type ValidationResult struct {
	Rows []ValidationRow
	// MeanPctError is the average percentage error over all rows; the
	// paper reports "a mean of less than 3% with regard to the
	// duration".
	MeanPctError float64
	// Server is the validation server.
	Server string
}

// ValidationConfig tunes the Table 1 reproduction.
type ValidationConfig struct {
	// Server executes the tasks (default "artimon").
	Server string
	// Scale is the clock compression (default 200 virtual s per wall
	// s; lower is more accurate but slower).
	Scale float64
	// Quantum is the executor tick (default 1ms).
	Quantum time.Duration
	// NoiseSigma perturbs execution (default 0.015; together with the
	// live runtime's quantum/RPC jitter this lands the total error in
	// the paper's "mean < 3%" budget).
	NoiseSigma float64
	// Seed drives the noise.
	Seed uint64
}

// Validate reproduces Table 1: it executes the two metatasks on the
// live runtime and confronts real completion dates with the HTM's
// simulation.
func Validate(cfg ValidationConfig) (*ValidationResult, error) {
	if cfg.Server == "" {
		cfg.Server = "artimon"
	}
	if cfg.Scale == 0 {
		cfg.Scale = 200
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = time.Millisecond
	}
	if cfg.NoiseSigma == 0 {
		cfg.NoiseSigma = 0.015
	}

	out := &ValidationResult{Server: cfg.Server}
	var pctSum float64
	var rows int

	for exec, arrivals := range validationMetatasks {
		res, finals, err := runValidationExecution(cfg, exec, arrivals)
		if err != nil {
			return nil, err
		}
		for i, a := range arrivals {
			real := res[i].Completion
			sim, ok := finals[i]
			if !ok {
				return nil, fmt.Errorf("experiments: validation: no simulated date for task %d", i)
			}
			duration := real - a.arrival
			pct := 0.0
			if duration > 0 {
				pct = 100 * abs(real-sim) / duration
			}
			out.Rows = append(out.Rows, ValidationRow{
				Execution: exec + 1,
				Task:      i + 1,
				Arrival:   a.arrival,
				Size:      a.size,
				Real:      real,
				Simulated: sim,
				Diff:      real - sim,
				PctError:  pct,
			})
			pctSum += pct
			rows++
		}
	}
	if rows > 0 {
		out.MeanPctError = pctSum / float64(rows)
	}
	return out, nil
}

// runValidationExecution plays one Table 1 metatask on a fresh live
// deployment and returns real completions plus HTM simulated dates.
func runValidationExecution(cfg ValidationConfig, exec int, arrivals []validationArrival) (
	map[int]struct{ Completion float64 }, map[int]float64, error) {

	clock := live.NewClock(cfg.Scale)
	agent, err := live.StartAgent(live.AgentConfig{
		Scheduler: sched.NewHMCT(),
		Clock:     clock,
		Seed:      cfg.Seed + uint64(exec),
	})
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: validation agent: %w", err)
	}
	defer agent.Close()

	srv, err := live.StartServer(live.ServerConfig{
		Name:         cfg.Server,
		AgentAddr:    agent.Addr(),
		Clock:        clock,
		Quantum:      cfg.Quantum,
		ReportPeriod: -1,
		NoiseSigma:   cfg.NoiseSigma,
		Seed:         cfg.Seed + 100 + uint64(exec),
	})
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: validation server: %w", err)
	}
	defer srv.Close()

	mt := &task.Metatask{Name: fmt.Sprintf("table1-exec%d", exec+1)}
	for i, a := range arrivals {
		mt.Tasks = append(mt.Tasks, &task.Task{ID: i, Spec: task.Matmul(a.size), Arrival: a.arrival})
	}
	results, err := live.RunMetatask(agent.Addr(), mt, clock)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: validation run: %w", err)
	}

	real := make(map[int]struct{ Completion float64 })
	for _, r := range results {
		if !r.Completed {
			return nil, nil, fmt.Errorf("experiments: validation task %d incomplete", r.ID)
		}
		real[r.ID] = struct{ Completion float64 }{r.Completion}
	}
	return real, agent.FinalPredictions(), nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ValidationNoiseSweep reruns the validation at several noise levels —
// the ablation quantifying how execution noise degrades HTM accuracy.
func ValidationNoiseSweep(sigmas []float64, seed uint64) (map[float64]float64, error) {
	out := make(map[float64]float64, len(sigmas))
	for _, sigma := range sigmas {
		cfg := ValidationConfig{NoiseSigma: sigma, Seed: seed}
		if sigma == 0 {
			// ValidationConfig treats 0 as "default"; use a tiny value
			// to approximate the noiseless case.
			cfg.NoiseSigma = 1e-9
		}
		v, err := Validate(cfg)
		if err != nil {
			return nil, err
		}
		out[sigma] = v.MeanPctError
	}
	return out, nil
}
