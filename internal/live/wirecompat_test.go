package live

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// The relay extension changes the member wire protocol only by adding
// fields (MemberSummaryReply) and methods (Member.Relay). These tests
// pin the gob compatibility contract in both directions against the
// pre-relay shape of the types, declared locally exactly as they stood
// before the relay: a new dispatcher must interoperate with old
// members and an old dispatcher with new members, without either side
// misreading a summary.

// legacySummaryReply is MemberSummaryReply as of the pre-relay wire
// (multi-tenant era): no ServerReady, RelaySeq or HasRelay.
type legacySummaryReply struct {
	InFlight       int
	Servers        int
	MinReady       float64
	HasMinReady    bool
	TenantInFlight map[string]int
}

// legacyDecisionReply is MemberDecisionReply, unchanged by the relay —
// pinned so a future edit that breaks delegation compatibility fails
// here, not in production.
type legacyDecisionReply struct {
	Server        string
	Predicted     float64
	HasPrediction bool
	Unschedulable bool
	DeadlineUnmet bool
}

func gobRoundTrip(t *testing.T, in, out any) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatalf("encode %T: %v", in, err)
	}
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("decode %T into %T: %v", in, out, err)
	}
}

// New member -> old dispatcher: the relay fields travel on the wire
// and the old decoder must skip them without disturbing the fields it
// knows.
func TestSummaryReplyNewToOld(t *testing.T) {
	in := MemberSummaryReply{
		InFlight:       7,
		Servers:        3,
		MinReady:       12.5,
		HasMinReady:    true,
		TenantInFlight: map[string]int{"gold": 4},
		ServerReady:    map[string]float64{"m1": 10, "m2": 12.5},
		RelaySeq:       99,
		HasRelay:       true,
	}
	var out legacySummaryReply
	gobRoundTrip(t, in, &out)
	if out.InFlight != 7 || out.Servers != 3 || out.MinReady != 12.5 || !out.HasMinReady {
		t.Fatalf("legacy decode mangled shared fields: %+v", out)
	}
	if out.TenantInFlight["gold"] != 4 {
		t.Fatalf("legacy decode lost tenant split: %+v", out)
	}
}

// Old member -> new dispatcher: the relay fields are absent from the
// wire and must decode as gob zero values, which the dispatcher reads
// as "does not speak relay" (HasRelay false).
func TestSummaryReplyOldToNew(t *testing.T) {
	in := legacySummaryReply{
		InFlight:       5,
		Servers:        2,
		MinReady:       8,
		HasMinReady:    true,
		TenantInFlight: map[string]int{"": 5},
	}
	var out MemberSummaryReply
	gobRoundTrip(t, in, &out)
	if out.InFlight != 5 || out.Servers != 2 || out.MinReady != 8 || !out.HasMinReady {
		t.Fatalf("new decode mangled shared fields: %+v", out)
	}
	if out.HasRelay || out.RelaySeq != 0 || out.ServerReady != nil {
		t.Fatalf("relay fields must stay at gob zero from an old member: %+v", out)
	}
}

// The delegation reply is byte-compatible both ways: the relay did not
// touch it.
func TestDecisionReplyBothDirections(t *testing.T) {
	newIn := MemberDecisionReply{Server: "m3", Predicted: 4.25, HasPrediction: true}
	var oldOut legacyDecisionReply
	gobRoundTrip(t, newIn, &oldOut)
	if oldOut != (legacyDecisionReply{Server: "m3", Predicted: 4.25, HasPrediction: true}) {
		t.Fatalf("new->old decision reply: %+v", oldOut)
	}
	oldIn := legacyDecisionReply{Server: "m1", Unschedulable: true}
	var newOut MemberDecisionReply
	gobRoundTrip(t, oldIn, &newOut)
	if newOut != (MemberDecisionReply{Server: "m1", Unschedulable: true}) {
		t.Fatalf("old->new decision reply: %+v", newOut)
	}
}

// legacyTaskArgs is MemberTaskArgs as of the pre-HA wire (relay era):
// no Term fencing token.
type legacyTaskArgs struct {
	JobID     int
	TaskID    int
	Attempt   int
	Problem   string
	Variant   int
	Arrival   float64
	Submitted float64
	Tenant    string
	Deadline  float64
}

// New dispatcher -> old member: the fencing term travels on the wire
// and the old decoder must skip it; an old member simply cannot be
// fenced, which the HA layer treats as best-effort.
func TestTaskArgsNewToOld(t *testing.T) {
	in := MemberTaskArgs{
		JobID: 9, TaskID: 9, Attempt: 1, Problem: "wastecpu", Variant: 200,
		Arrival: 12.5, Submitted: 12, Tenant: "gold", Deadline: 99, Term: 7,
	}
	var out legacyTaskArgs
	gobRoundTrip(t, in, &out)
	if out.JobID != 9 || out.Problem != "wastecpu" || out.Variant != 200 ||
		out.Arrival != 12.5 || out.Tenant != "gold" || out.Deadline != 99 {
		t.Fatalf("legacy decode mangled shared fields: %+v", out)
	}
}

// Old dispatcher -> new member: Term is absent from the wire and must
// decode as zero, which the member's fence admits unconditionally —
// an unfenced legacy dispatcher keeps working against HA-aware
// members.
func TestTaskArgsOldToNew(t *testing.T) {
	in := legacyTaskArgs{JobID: 4, TaskID: 4, Problem: "matmul", Variant: 100, Arrival: 3}
	var out MemberTaskArgs
	gobRoundTrip(t, in, &out)
	if out.JobID != 4 || out.Problem != "matmul" || out.Variant != 100 || out.Arrival != 3 {
		t.Fatalf("new decode mangled shared fields: %+v", out)
	}
	if out.Term != 0 {
		t.Fatalf("Term must stay at gob zero from an old dispatcher: %d", out.Term)
	}
}

// The HA election and membership types are new on the wire (old peers
// never see the methods); pin that every field survives a gob round
// trip so the election protocol cannot silently lose a term or flag.
func TestHAWireRoundTrips(t *testing.T) {
	{
		in := HAVoteArgs{Candidate: "d2", Term: 41}
		var out HAVoteArgs
		gobRoundTrip(t, in, &out)
		if out != in {
			t.Fatalf("vote args: %+v", out)
		}
	}
	{
		in := HAVoteReply{Granted: true, Term: 41}
		var out HAVoteReply
		gobRoundTrip(t, in, &out)
		if out != in {
			t.Fatalf("vote reply: %+v", out)
		}
	}
	{
		in := HAHeartbeatArgs{Leader: "d1", Addr: "127.0.0.1:9", Term: 41, Resign: true}
		var out HAHeartbeatArgs
		gobRoundTrip(t, in, &out)
		if out != in {
			t.Fatalf("heartbeat args: %+v", out)
		}
	}
	{
		in := HAHeartbeatReply{OK: true, Term: 42}
		var out HAHeartbeatReply
		gobRoundTrip(t, in, &out)
		if out != in {
			t.Fatalf("heartbeat reply: %+v", out)
		}
	}
	{
		in := LeaveArgs{Name: "m2"}
		var out LeaveArgs
		gobRoundTrip(t, in, &out)
		if out != in {
			t.Fatalf("leave args: %+v", out)
		}
	}
	{
		in := MemberPartitionReply{Servers: []string{"artimon", "valette"}}
		var out MemberPartitionReply
		gobRoundTrip(t, in, &out)
		if len(out.Servers) != 2 || out.Servers[0] != "artimon" || out.Servers[1] != "valette" {
			t.Fatalf("partition reply: %+v", out)
		}
	}
	{
		in := MemberFenceArgs{Term: 41}
		var out MemberFenceArgs
		gobRoundTrip(t, in, &out)
		if out != in {
			t.Fatalf("fence args: %+v", out)
		}
	}
}

// The relay delta itself must be gob-encodable with all fields
// surviving a round trip (new-to-new; old peers never call
// Member.Relay, and the dispatcher classifies their "can't find
// method" rpc error as relay-incapable).
func TestRelayReplyRoundTrip(t *testing.T) {
	in := MemberRelayReply{
		Events: []RelayEvent{
			{Seq: 1, Kind: 1, JobID: 10, Tenant: "gold", Server: "m1", Time: 3, Ready: 7.5, HasReady: true},
			{Seq: 2, Kind: 2, JobID: 10, Tenant: "gold", Server: "m1", Time: 9},
		},
		From: 0, To: 2,
	}
	var out MemberRelayReply
	gobRoundTrip(t, in, &out)
	if len(out.Events) != 2 || out.Events[0] != in.Events[0] || out.Events[1] != in.Events[1] || out.To != 2 {
		t.Fatalf("relay reply round trip: %+v", out)
	}
}
