// Package grid is the discrete-event simulator of the client-agent-
// server environment: a NetSolve-like middleware in which an agent
// receives a metatask's requests over time and maps each task, on
// arrival, to one of a set of time-shared servers.
//
// The simulator reproduces the pieces of NetSolve the paper's
// evaluation depends on:
//
//   - time-shared servers executing tasks under the fluid model
//     (internal/fluid), with optional memory accounting: thrashing and
//     collapse under overload (§5.1);
//   - monitors: each server periodically reports its load to the agent,
//     and the agent applies NetSolve's two load-correction mechanisms
//     (increment the belief when assigning a task before the next
//     report; decrement it on the completion message a server sends
//     when a task finishes) — this is the information MCT consumes;
//   - the HTM (internal/htm) fed with nominal task costs, while the
//     execution layer runs with seeded noise-perturbed costs, so
//     predictions face the error regime measured in Table 1;
//   - NetSolve's fault tolerance: tasks lost in a server collapse are
//     resubmitted to the agent after a detection delay.
package grid

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"casched/internal/agent"
	"casched/internal/fluid"
	"casched/internal/metrics"
	"casched/internal/platform"
	"casched/internal/sched"
	"casched/internal/stats"
	"casched/internal/task"
	"casched/internal/trace"
)

// attemptStride separates job ids of successive fault-tolerance
// attempts of the same task inside the fluid simulations and the HTM.
const attemptStride = 1_000_000

// ServerConfig describes one server of the simulated testbed.
type ServerConfig struct {
	// Name is the server (machine) name; task costs are looked up
	// under this name.
	Name string
	// RAMMB and SwapMB are the memory capacities, used only when the
	// run's memory model is enabled. Zero RAM means unlimited.
	RAMMB  float64
	SwapMB float64
}

// Config parameterizes one simulated experiment run.
type Config struct {
	// Servers is the testbed.
	Servers []ServerConfig
	// Scheduler is the heuristic under test.
	Scheduler sched.Scheduler
	// Seed drives all randomness (execution noise, random heuristics).
	Seed uint64
	// NoiseSigma is the relative execution-noise standard deviation
	// applied to every phase cost (0.03 reproduces Table 1's regime;
	// 0 makes execution match the HTM exactly).
	NoiseSigma float64
	// MonitorPeriod is the load-report period in seconds for the
	// monitor-based information model (default 30 when zero).
	MonitorPeriod float64
	// MonitorTau is the time constant, in seconds, of the Unix-style
	// load-average smoothing applied to the values servers report
	// (default 60 when zero; negative disables smoothing and reports
	// the instantaneous run-queue length). The lag this introduces is
	// the information inaccuracy plain MCT suffers from.
	MonitorTau float64
	// MemoryModel enables memory accounting (thrash + collapse) in the
	// execution layer.
	MemoryModel bool
	// FaultTolerance enables NetSolve-style resubmission of tasks lost
	// in a collapse.
	FaultTolerance bool
	// ResubmitDelay is the failure-detection delay before a lost task
	// re-enters the agent's queue (default 30 when zero).
	ResubmitDelay float64
	// MaxAttempts bounds scheduling attempts per task (default 5 when
	// zero).
	MaxAttempts int
	// HTMSync enables the HTM↔execution synchronization extension.
	HTMSync bool
	// HTMMemory makes the HTM model memory too (the §7 extension).
	HTMMemory bool
	// HTMWorkers bounds the worker pool the HTM fans candidate
	// evaluations out to (default 0 = GOMAXPROCS). The simulation
	// itself stays deterministic: predictions are independent per
	// candidate and merged in server order.
	HTMWorkers int
	// Log, when non-nil, receives execution events.
	Log *trace.Log
	// Failures injects server crashes at fixed dates, independently of
	// the memory model — the fault-injection hook for testing the
	// agent's behaviour under server loss.
	Failures []ServerFailure
}

// ServerFailure is one injected crash.
type ServerFailure struct {
	// Server names the machine to kill.
	Server string
	// At is the crash date in seconds.
	At float64
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	if c.MonitorPeriod == 0 {
		c.MonitorPeriod = 30
	}
	if c.MonitorTau == 0 {
		c.MonitorTau = 60
	}
	if c.ResubmitDelay == 0 {
		c.ResubmitDelay = 30
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 5
	}
	return c
}

// Collapse records one server collapse.
type Collapse struct {
	Server string
	Time   float64
	Lost   int // tasks resident when the server died
}

// Result is the outcome of one run.
type Result struct {
	// Heuristic is the scheduler's name.
	Heuristic string
	// Tasks holds one entry per metatask task, indexed by task ID.
	Tasks []metrics.TaskResult
	// Predicted maps task IDs to the HTM's predicted completion at
	// (last) placement time; present only for HTM-based heuristics.
	Predicted map[int]float64
	// FinalPredicted maps task IDs to the HTM's end-of-run simulated
	// completion date — the "simulated completion date" column of the
	// paper's Table 1, which accounts for every task placed after this
	// one. Present only for HTM-based heuristics.
	FinalPredicted map[int]float64
	// Collapses lists server collapses in time order.
	Collapses []Collapse
	// FailedTasks lists the IDs of tasks that never completed.
	FailedTasks []int
	// ServerStats maps server names to their load-balance statistics.
	ServerStats map[string]ServerStats
	// ExecSims exposes the final execution-layer fluid simulations per
	// server (read-only use expected): the ground-truth schedules, from
	// which Gantt charts of the run can be extracted.
	ExecSims map[string]*fluid.Sim
}

// ServerStats is the per-server load-balance view of a run.
type ServerStats struct {
	// Completed counts tasks the server finished.
	Completed int
	// BusyCPU is the cumulative seconds the CPU was busy.
	BusyCPU float64
	// Utilization is BusyCPU over the server's active lifetime.
	Utilization float64
	// PeakMemoryTasks is the largest number of simultaneously resident
	// tasks observed at scheduling instants.
	PeakMemoryTasks int
}

// Report aggregates the run's metrics.
func (r *Result) Report() metrics.Report {
	return metrics.Compute(r.Heuristic, r.Tasks)
}

// pendingArrival is a task (re)submission awaiting scheduling.
type pendingArrival struct {
	at      float64
	taskIdx int
	attempt int
	seq     int // tie-break for deterministic ordering
}

type arrivalHeap []pendingArrival

func (h arrivalHeap) Len() int { return len(h) }
func (h arrivalHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h arrivalHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x any)   { *h = append(*h, x.(pendingArrival)) }
func (h *arrivalHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h arrivalHeap) peek() float64 { return h[0].at }

// sim is the run state: the execution layer (noise-perturbed fluid
// servers, monitors, fault injection) driving the shared agent core,
// which owns beliefs, heuristic invocation and the HTM.
type sim struct {
	cfg   Config
	mt    *task.Metatask
	core  *agent.Core
	noise *stats.RNG
	exec  map[string]*fluid.Sim
	order []string // server names, sorted
	alive map[string]bool
	// ewma is each monitor's server-side Unix-style smoothed load
	// average — monitor state, not agent belief, so it lives with the
	// execution layer.
	ewma map[string]float64

	now        float64
	nextReport float64
	pending    arrivalHeap
	seq        int
	failures   []ServerFailure // sorted by time, consumed from index 0
	peak       map[string]int  // peak resident tasks per server

	// job bookkeeping
	jobTask    map[int]int // jobID -> task index
	jobAttempt map[int]int
	results    []metrics.TaskResult
	predicted  map[int]float64
	collapses  []Collapse
}

// Run executes the metatask under the configuration and returns the
// per-task results.
func Run(cfg Config, mt *task.Metatask) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("grid: no scheduler configured")
	}
	if len(cfg.Servers) == 0 {
		return nil, fmt.Errorf("grid: no servers configured")
	}
	if err := mt.Validate(); err != nil {
		return nil, fmt.Errorf("grid: %w", err)
	}

	s := &sim{
		cfg:        cfg,
		mt:         mt,
		exec:       make(map[string]*fluid.Sim, len(cfg.Servers)),
		alive:      make(map[string]bool, len(cfg.Servers)),
		ewma:       make(map[string]float64, len(cfg.Servers)),
		jobTask:    make(map[int]int),
		jobAttempt: make(map[int]int),
		results:    make([]metrics.TaskResult, mt.Len()),
		predicted:  make(map[int]float64),
		nextReport: cfg.MonitorPeriod,
		peak:       make(map[string]int),
	}
	s.failures = append(s.failures, cfg.Failures...)
	sort.Slice(s.failures, func(i, j int) bool { return s.failures[i].At < s.failures[j].At })
	root := stats.NewRNG(cfg.Seed)
	decisionRNG := root.Split()
	s.noise = root.Split()

	core, err := agent.New(agent.Config{
		Scheduler:  cfg.Scheduler,
		RNG:        decisionRNG,
		HTMSync:    cfg.HTMSync,
		HTMMemory:  cfg.HTMMemory,
		HTMWorkers: cfg.HTMWorkers,
		Log:        cfg.Log,
	})
	if err != nil {
		return nil, fmt.Errorf("grid: %w", err)
	}
	s.core = core

	names := make([]string, 0, len(cfg.Servers))
	for _, sc := range cfg.Servers {
		if _, dup := s.exec[sc.Name]; dup {
			return nil, fmt.Errorf("grid: duplicate server %q", sc.Name)
		}
		fc := fluid.Config{Name: sc.Name}
		if cfg.MemoryModel {
			fc.RAMMB = sc.RAMMB
			fc.SwapMB = sc.SwapMB
			fc.Thrash = true
		}
		s.exec[sc.Name] = fluid.New(fc)
		s.alive[sc.Name] = true
		s.core.AddServer(sc.Name)
		names = append(names, sc.Name)
	}
	sort.Strings(names)
	s.order = names

	for i, t := range mt.Tasks {
		s.results[i] = metrics.TaskResult{ID: t.ID, Arrival: t.Arrival}
		heap.Push(&s.pending, pendingArrival{at: t.Arrival, taskIdx: i, seq: s.seq})
		s.seq++
	}

	if err := s.run(); err != nil {
		return nil, err
	}

	res := &Result{
		Heuristic:   cfg.Scheduler.Name(),
		Tasks:       s.results,
		Collapses:   s.collapses,
		ServerStats: make(map[string]ServerStats, len(s.order)),
		ExecSims:    s.exec,
	}
	completedOn := make(map[string]int)
	for _, r := range s.results {
		if r.Completed {
			completedOn[r.Server]++
		}
	}
	for _, name := range s.order {
		exec := s.exec[name]
		res.ServerStats[name] = ServerStats{
			Completed:       completedOn[name],
			BusyCPU:         exec.BusyTime(task.PhaseCompute),
			Utilization:     exec.Utilization(),
			PeakMemoryTasks: s.peak[name],
		}
	}
	if s.core.UsesHTM() {
		res.Predicted = s.predicted
		res.FinalPredicted = make(map[int]float64)
		bestAttempt := make(map[int]int)
		for jobID, idx := range s.jobTask {
			c, ok := s.core.PredictedCompletion(jobID)
			if !ok {
				continue
			}
			id := s.mt.Tasks[idx].ID
			attempt := s.jobAttempt[jobID]
			// Keep the projection of the latest scheduling attempt.
			if prev, seen := bestAttempt[id]; !seen || attempt > prev {
				bestAttempt[id] = attempt
				res.FinalPredicted[id] = c
			}
		}
	}
	for i := range s.results {
		if !s.results[i].Completed {
			res.FailedTasks = append(res.FailedTasks, s.results[i].ID)
		}
	}
	return res, nil
}

// run is the main event loop: repeatedly step to the earliest pending
// event (arrival, server phase event, or monitor report) and handle it.
func (s *sim) run() error {
	for {
		tArr := math.Inf(1)
		if s.pending.Len() > 0 {
			tArr = s.pending.peek()
		}
		tSrv := math.Inf(1)
		for _, name := range s.order {
			if !s.alive[name] {
				continue
			}
			if t, ok := s.exec[name].NextEventTime(); ok && t < tSrv {
				tSrv = t
			}
		}
		if math.IsInf(tArr, 1) && math.IsInf(tSrv, 1) {
			return nil // all work drained
		}
		t := math.Min(tArr, tSrv)

		// Injected failures due before the next work event fire first.
		if len(s.failures) > 0 && s.failures[0].At <= t {
			f := s.failures[0]
			s.failures = s.failures[1:]
			s.advanceAll(f.At)
			s.now = f.At
			if s.alive[f.Server] {
				events := s.exec[f.Server].Kill(f.At)
				s.processEvents(f.Server, events)
			}
			continue
		}

		// Monitor reports due before the next work event fire first.
		if s.nextReport <= t {
			s.advanceAll(s.nextReport)
			s.now = s.nextReport
			s.refreshReports()
			s.nextReport += s.cfg.MonitorPeriod
			continue
		}

		s.advanceAll(t)
		s.now = t

		// Schedule every arrival due at t.
		for s.pending.Len() > 0 && s.pending.peek() <= t {
			pa := heap.Pop(&s.pending).(pendingArrival)
			if err := s.schedule(pa); err != nil {
				return err
			}
		}
	}
}

// advanceAll advances every live server to time t and processes the
// emitted events.
func (s *sim) advanceAll(t float64) {
	for _, name := range s.order {
		if !s.alive[name] {
			continue
		}
		events := s.exec[name].AdvanceTo(t)
		s.processEvents(name, events)
	}
}

// processEvents handles completion, failure and collapse events from
// one server.
func (s *sim) processEvents(server string, events []fluid.Event) {
	lost := 0
	collapsed := false
	var collapseAt float64
	for _, ev := range events {
		switch ev.Kind {
		case fluid.EventDone:
			s.onDone(server, ev)
		case fluid.EventFailed:
			lost++
			s.onFailed(server, ev)
		case fluid.EventCollapse:
			collapsed = true
			collapseAt = ev.Time
		}
	}
	if collapsed {
		s.onCollapse(server, collapseAt, lost)
	}
}

// onDone records a task completion and relays the completion message
// to the agent core (load correction, HTM re-anchor, "done" record).
func (s *sim) onDone(server string, ev fluid.Event) {
	idx, ok := s.jobTask[ev.JobID]
	if !ok {
		return
	}
	r := &s.results[idx]
	r.Completed = true
	r.Completion = ev.Time
	r.Server = server
	if cost, ok := s.mt.Tasks[idx].Spec.Cost(server); ok {
		r.UnloadedDuration = cost.Total()
	}
	s.core.Complete(ev.JobID, server, ev.Time)
}

// onFailed queues a resubmission for a task lost in a collapse.
func (s *sim) onFailed(server string, ev fluid.Event) {
	idx, ok := s.jobTask[ev.JobID]
	if !ok {
		return
	}
	attempt := s.jobAttempt[ev.JobID]
	s.log(trace.Record{Time: ev.Time, Kind: "lost", Server: server,
		TaskID: s.mt.Tasks[idx].ID, Attempt: attempt})
	if !s.cfg.FaultTolerance || attempt+1 >= s.cfg.MaxAttempts {
		return // task stays incomplete
	}
	s.results[idx].Resubmissions++
	heap.Push(&s.pending, pendingArrival{
		at:      ev.Time + s.cfg.ResubmitDelay,
		taskIdx: idx,
		attempt: attempt + 1,
		seq:     s.seq,
	})
	s.seq++
	s.log(trace.Record{Time: ev.Time + s.cfg.ResubmitDelay, Kind: "resubmit",
		Server: "", TaskID: s.mt.Tasks[idx].ID, Attempt: attempt + 1})
}

// onCollapse removes a dead server from the candidate pool.
func (s *sim) onCollapse(server string, t float64, lost int) {
	if !s.alive[server] {
		return
	}
	s.alive[server] = false
	s.collapses = append(s.collapses, Collapse{Server: server, Time: t, Lost: lost})
	s.core.RemoveServer(server)
	s.log(trace.Record{Time: t, Kind: "collapse", Server: server, TaskID: -1,
		Note: fmt.Sprintf("lost=%d", lost)})
}

// refreshReports delivers periodic monitor reports to the agent core:
// each live server's monitor smooths its run-queue length and reports
// it, replacing the core's belief and resetting the corrections.
func (s *sim) refreshReports() {
	// Unix-style smoothing: the reported value is an exponentially
	// weighted moving average of the run-queue length, so the agent's
	// picture lags behind load spikes by roughly MonitorTau seconds.
	decay := 0.0
	if s.cfg.MonitorTau > 0 {
		decay = math.Exp(-s.cfg.MonitorPeriod / s.cfg.MonitorTau)
	}
	for _, name := range s.order {
		if !s.alive[name] {
			continue
		}
		inst := s.exec[name].LoadAvg()
		s.ewma[name] = s.ewma[name]*decay + inst*(1-decay)
		s.core.Report(name, s.ewma[name], s.now)
	}
}

// schedule maps one (re)submitted task through the agent core — which
// runs the heuristic and commits the decision — then mirrors the
// placement into the noise-perturbed execution layer.
func (s *sim) schedule(pa pendingArrival) error {
	t := s.mt.Tasks[pa.taskIdx]
	now := pa.at
	if now < s.now {
		// A resubmission queued behind an already-processed instant is
		// scheduled at the current simulation time.
		now = s.now
	}
	jobID := pa.attempt*attemptStride + t.ID

	s.log(trace.Record{Time: now, Kind: "arrival", TaskID: t.ID, Attempt: pa.attempt})
	dec, err := s.core.Submit(agent.Request{
		JobID:     jobID,
		TaskID:    t.ID,
		Attempt:   pa.attempt,
		Spec:      t.Spec,
		Arrival:   now,
		Submitted: t.Arrival,
		Tenant:    t.Tenant,
		Deadline:  t.Deadline,
	})
	if errors.Is(err, agent.ErrUnschedulable) {
		s.log(trace.Record{Time: now, Kind: "unschedulable", TaskID: t.ID, Attempt: pa.attempt})
		return nil
	}
	if errors.Is(err, agent.ErrDeadlineUnmet) || errors.Is(err, agent.ErrThrottled) {
		// The intake path shed the task; it simply never executes.
		s.log(trace.Record{Time: now, Kind: "shed", TaskID: t.ID, Attempt: pa.attempt})
		return nil
	}
	if err != nil {
		return fmt.Errorf("grid: %w", err)
	}
	server := dec.Server
	if dec.HasPrediction {
		s.predicted[t.ID] = dec.Predicted
	}

	nominal, _ := t.Spec.Cost(server)
	actual := task.Cost{
		Input:   nominal.Input * s.noise.NoiseFactor(s.cfg.NoiseSigma),
		Compute: nominal.Compute * s.noise.NoiseFactor(s.cfg.NoiseSigma),
		Output:  nominal.Output * s.noise.NoiseFactor(s.cfg.NoiseSigma),
	}
	if err := s.exec[server].Add(jobID, now, actual, t.Spec.MemoryMB); err != nil {
		return fmt.Errorf("grid: placing task %d on %q: %w", t.ID, server, err)
	}
	s.jobTask[jobID] = pa.taskIdx
	s.jobAttempt[jobID] = pa.attempt

	// Settle the placement: the job activates now, which may trigger an
	// immediate memory collapse.
	events := s.exec[server].AdvanceTo(now)
	s.processEvents(server, events)
	if n := s.exec[server].ActiveCount(); n > s.peak[server] {
		s.peak[server] = n
	}
	return nil
}

// log appends to the configured trace log, if any.
func (s *sim) log(r trace.Record) {
	if s.cfg.Log != nil {
		s.cfg.Log.Add(r)
	}
}

// ServersFor builds ServerConfigs for the named testbed machines,
// picking up the Table 2 memory capacities from internal/platform.
func ServersFor(names []string) ([]ServerConfig, error) {
	machines, err := platform.Servers(names)
	if err != nil {
		return nil, fmt.Errorf("grid: %w", err)
	}
	out := make([]ServerConfig, 0, len(machines))
	for _, m := range machines {
		out = append(out, ServerConfig{Name: m.Name, RAMMB: m.MemoryMB, SwapMB: m.SwapMB})
	}
	return out, nil
}
