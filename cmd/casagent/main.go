// Command casagent runs a live client-agent-server agent on a TCP
// address: the central scheduler servers register with and clients
// query, mirroring NetSolve's deployment order (agent first, then
// servers, then clients).
//
// Usage:
//
//	casagent -addr 127.0.0.1:7410 -heuristic MSF -scale 100
//	casagent -heuristic HMCT -shards 4 -shard-policy least-loaded
//
// With -shards above 1 the agent runs the sharded cluster dispatch
// layer: registering servers are partitioned across that many agent
// cores by -shard-policy (hash, least-loaded or affinity), and each
// scheduling decision fans out over the shard winners.
//
// The agent runs until interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"casched"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7410", "TCP listen address")
		heuristic = flag.String("heuristic", "MSF", "scheduling heuristic")
		scale     = flag.Float64("scale", 1, "virtual seconds per wall second")
		seed      = flag.Uint64("seed", 1, "tie-breaking seed")
		htmSync   = flag.Bool("htm-sync", false, "enable HTM/execution synchronization")
		shards    = flag.Int("shards", 1, "agent-core shards behind the dispatch layer")
		policy    = flag.String("shard-policy", "hash", "server-to-shard policy: hash, least-loaded or affinity")
		joinAddr  = flag.String("join", "", "federation dispatcher address to join as a member (casfed); a comma-separated list joins every replica of a replicated deployment")
		name      = flag.String("name", "", "federation member name (default: the listen address)")
		shares    = flag.String("tenant-shares", "", `fair-share weights, e.g. "gold=4,silver=2" (empty = arbitration off)`)
		admission = flag.Bool("admission", false, "shed tasks whose deadline no server can meet")
		rate      = flag.Float64("intake-rate", 0, "intake token-bucket rate in tasks per virtual second (0 = unlimited)")
		burst     = flag.Float64("intake-burst", 0, "intake token-bucket burst capacity (0 = max(rate, 1))")
		relay     = flag.Bool("relay", true, "keep the federation event relay ledger (single-core agents); -relay=false emulates a pre-relay member")
		metrics   = flag.String("metrics-addr", "", "serve Prometheus GET /metrics on this address (empty = off)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof under /debug/pprof/ on this address (empty = off; the same value as -metrics-addr shares one server)")
		drainT    = flag.Duration("drain-timeout", 5*time.Second, "SIGTERM drain budget: wait for in-flight tasks, then leave the federation (with -join)")
	)
	flag.Parse()

	s, err := casched.NewScheduler(*heuristic)
	if err != nil {
		fmt.Fprintln(os.Stderr, "casagent:", err)
		os.Exit(1)
	}
	tenantShares, err := casched.ParseTenantShares(*shares)
	if err != nil {
		fmt.Fprintln(os.Stderr, "casagent:", err)
		os.Exit(1)
	}
	shardPolicy, ok := casched.ShardPolicyByName(*policy)
	if !ok {
		fmt.Fprintf(os.Stderr, "casagent: unknown shard policy %q\n", *policy)
		os.Exit(1)
	}
	agent, err := casched.StartLiveAgent(casched.LiveAgentConfig{
		Scheduler:    s,
		Clock:        casched.NewLiveClock(*scale),
		Seed:         *seed,
		HTMSync:      *htmSync,
		Shards:       *shards,
		ShardPolicy:  shardPolicy,
		Addr:         *addr,
		Join:         *joinAddr,
		Name:         *name,
		TenantShares: tenantShares,
		Admission:    *admission,
		IntakeRate:   *rate,
		IntakeBurst:  *burst,
		RelayOff:     !*relay,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "casagent:", err)
		os.Exit(1)
	}
	if *metrics != "" {
		sc := casched.NewStatsCollector()
		agent.Engine().Subscribe(sc.Collect)
		cfg := casched.MetricsConfig{Stats: sc.Snapshot, Pprof: *pprofAddr == *metrics}
		msrv, err := casched.StartMetricsServer(*metrics, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "casagent:", err)
			os.Exit(1)
		}
		defer msrv.Close()
		fmt.Printf("casagent: metrics on http://%s/metrics\n", msrv.Addr())
		if cfg.Pprof {
			fmt.Printf("casagent: pprof on http://%s/debug/pprof/\n", msrv.Addr())
		}
	}
	if *pprofAddr != "" && *pprofAddr != *metrics {
		psrv, err := casched.StartMetricsServer(*pprofAddr, casched.MetricsConfig{Pprof: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "casagent:", err)
			os.Exit(1)
		}
		defer psrv.Close()
		fmt.Printf("casagent: pprof on http://%s/debug/pprof/\n", psrv.Addr())
	}
	switch {
	case *joinAddr != "":
		fmt.Printf("casagent: %s scheduler listening on %s, joined federation at %s\n",
			*heuristic, agent.Addr(), *joinAddr)
	case *shards > 1:
		fmt.Printf("casagent: %s scheduler listening on %s (clock scale %gx, %d shards, %s policy)\n",
			*heuristic, agent.Addr(), *scale, *shards, *policy)
	default:
		fmt.Printf("casagent: %s scheduler listening on %s (clock scale %gx)\n",
			*heuristic, agent.Addr(), *scale)
	}

	// Interrupt (^C) and SIGTERM (plain kill, container stop) both
	// shut the agent down cleanly; SIGTERM alone would otherwise kill
	// the process without running agent.Close(). A federation member
	// departs gracefully first: drain in-flight work (bounded), then
	// tell every joined dispatcher to reassign the partition.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if *joinAddr != "" {
		fmt.Printf("casagent: leaving federation (drain budget %s)\n", *drainT)
		agent.Leave(*drainT)
	}
	agent.Close()
	fmt.Println("casagent: stopped")
}
