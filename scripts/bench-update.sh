#!/usr/bin/env bash
# bench-update.sh — promote the latest benchmark run as the committed
# regression baseline. Run scripts/bench.sh first, review the results,
# then run this and commit benchmarks/baseline.txt.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ ! -f benchmarks/latest.txt ]]; then
    echo "error: benchmarks/latest.txt not found; run scripts/bench.sh first" >&2
    exit 1
fi
cp benchmarks/latest.txt benchmarks/baseline.txt
echo "promoted benchmarks/latest.txt -> benchmarks/baseline.txt"
