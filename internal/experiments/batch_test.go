package experiments

import (
	"strings"
	"testing"
)

// TestBatchComparisonMatchedBeatsGreedy pins the tentpole's measured
// claim on the committed study configuration (the one rendered into
// benchmarks/batch-comparison.txt): under bursty inhomogeneous-Poisson
// arrivals, matched k-task waves beat greedy task-by-task commitment
// on total sum-flow, and the hierarchical routing path trades a
// bounded amount of decision quality for its throughput.
func TestBatchComparisonMatchedBeatsGreedy(t *testing.T) {
	r, err := BatchComparison(BatchComparisonConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r.GreedySumFlow <= 0 || r.MatchedSumFlow <= 0 ||
		r.FanoutSumFlow <= 0 || r.HierarchicalSumFlow <= 0 {
		t.Fatalf("degenerate sums: %+v", r)
	}
	if r.MatchedSumFlow >= r.GreedySumFlow {
		t.Errorf("matched sum-flow %.0f did not beat greedy %.0f",
			r.MatchedSumFlow, r.GreedySumFlow)
	}
	// The fan-out path is the per-task exact decision sequence: it
	// must coincide with the greedy single core on the same workload
	// (the cluster's fan-out/commit reproduces the centralized
	// decision up to cross-shard ties).
	if ratio := r.FanoutSumFlow / r.GreedySumFlow; ratio < 0.99 || ratio > 1.01 {
		t.Errorf("fan-out sum-flow %.0f deviates from centralized greedy %.0f",
			r.FanoutSumFlow, r.GreedySumFlow)
	}
	// Hierarchical routing pays a quality premium for its throughput;
	// the study quantifies it. Sanity-bound it so a routing regression
	// (or an accidental exactness claim) trips the test.
	if r.HierarchicalSumFlow < r.FanoutSumFlow {
		t.Logf("note: hierarchical beat fan-out (%.0f < %.0f) — lucky routing",
			r.HierarchicalSumFlow, r.FanoutSumFlow)
	}
	if r.HierarchicalSumFlow > 2*r.FanoutSumFlow {
		t.Errorf("hierarchical sum-flow %.0f more than doubles fan-out %.0f",
			r.HierarchicalSumFlow, r.FanoutSumFlow)
	}

	out := FormatBatchComparison(r)
	for _, want := range []string{"greedy (sequential-equal)", "matched (min-cost waves)",
		"exact fan-out", "hierarchical (p2c + HTM)", "sum-flow ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted study lacks %q:\n%s", want, out)
		}
	}
}

// TestBatchComparisonDefaults pins the zero-value config resolution so
// the committed study stays reproducible.
func TestBatchComparisonDefaults(t *testing.T) {
	var cfg BatchComparisonConfig
	cfg.defaults()
	want := BatchComparisonConfig{N: 240, D: 6, K: 8, Seed: 11,
		Heuristic: "HMCT", Shards: 4, Replicas: 2}
	if cfg != want {
		t.Errorf("defaults = %+v, want %+v", cfg, want)
	}
}
