package workload

import (
	"fmt"
	"math"

	"casched/internal/stats"
	"casched/internal/task"
)

// ServiceProcess selects the service-time distribution of a scenario.
// The paper's workloads have fixed per-type costs (three discrete
// sizes); production traces are heavy-tailed — most tasks are mice, a
// few elephants carry most of the work. The heavy-tailed processes
// keep the per-(type, server) cost structure and scale each task's
// compute phase by an independent unit-mean factor, so the long-run
// offered load matches the nominal scenario while the size
// distribution grows a tail.
type ServiceProcess int

const (
	// ServiceNominal keeps the paper's fixed per-type costs.
	ServiceNominal ServiceProcess = iota
	// ServicePareto scales compute by X = xm/U^(1/α) with
	// xm = (α−1)/α, a Pareto variable with E[X] = 1. The default tail
	// index α = 1.5 has finite mean and infinite variance — the
	// regime where size-blind scheduling falls apart.
	ServicePareto
	// ServiceLognormal scales compute by X = exp(σZ − σ²/2), a
	// lognormal variable with E[X] = 1 (default σ = 1.2).
	ServiceLognormal
)

// String returns the process name.
func (p ServiceProcess) String() string {
	switch p {
	case ServiceNominal:
		return "nominal"
	case ServicePareto:
		return "pareto"
	case ServiceLognormal:
		return "lognormal"
	default:
		return fmt.Sprintf("ServiceProcess(%d)", int(p))
	}
}

// Defaults for the heavy-tailed service processes.
const (
	defaultTailShape = 1.5
	defaultTailSigma = 1.2
	defaultTailCap   = 100.0
)

// serviceScaler returns a function deriving a per-task spec from the
// drawn type: the compute phase of every per-server cost is scaled by
// one unit-mean heavy-tailed factor per task (transfer phases stay
// nominal — the tail lives in the computation, not the payload).
func serviceScaler(sc Scenario, rng *stats.RNG) func(*task.Spec) *task.Spec {
	capf := sc.TailCap
	if capf == 0 {
		capf = defaultTailCap
	}
	var draw func() float64
	switch sc.Service {
	case ServicePareto:
		alpha := sc.TailShape
		if alpha == 0 {
			alpha = defaultTailShape
		}
		xm := (alpha - 1) / alpha
		draw = func() float64 {
			// Inverse-CDF with U in (0, 1]: 1−Float64() avoids the
			// U = 0 pole.
			return xm / math.Pow(1-rng.Float64(), 1/alpha)
		}
	case ServiceLognormal:
		sigma := sc.TailSigma
		if sigma == 0 {
			sigma = defaultTailSigma
		}
		draw = func() float64 {
			return math.Exp(sigma*rng.Normal(0, 1) - sigma*sigma/2)
		}
	default:
		return nil
	}
	return func(sp *task.Spec) *task.Spec {
		f := draw()
		if capf > 0 && f > capf {
			f = capf
		}
		out := &task.Spec{
			Problem:  sp.Problem,
			Variant:  sp.Variant,
			MemoryMB: sp.MemoryMB,
			CostOn:   make(map[string]task.Cost, len(sp.CostOn)),
		}
		for s, c := range sp.CostOn {
			out.CostOn[s] = task.Cost{Input: c.Input, Compute: c.Compute * f, Output: c.Output}
		}
		return out
	}
}
