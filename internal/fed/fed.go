// Package fed implements multi-agent federation: N cooperating agents
// (members), each owning a server partition, behind one Dispatcher
// that exchanges compact load summaries with them over a pluggable
// transport — the paper's single central agent generalized to the
// cooperating-agents extension its §7 sketches.
//
// The Dispatcher is the cluster dispatch layer with the shards behind
// a transport seam instead of in process. Each member periodically
// publishes a Summary (in-flight count, server count, min projected
// drain instant from the HTM baseline memos); routing picks its mode
// per decision from the summaries' freshness:
//
//   - Fresh mode (every live member's summary younger than
//     StaleAfter): Submit fans the request out — every member
//     evaluates against its own partition (agent.Core.Evaluate, no
//     commit), the dispatcher compares the scored winners and commits
//     on exactly one member. With the in-process transport this is
//     decision-for-decision the sharded cluster.Cluster, which the
//     federated-vs-centralized parity test pins.
//
//   - Degraded mode (some member slow or partitioned): the dispatcher
//     stops waiting on the whole pool and routes each decision whole
//     to one member chosen by power-of-two-choices over the
//     last-known summaries — stale data routes approximately rather
//     than blocking exactly. The internal/experiments federation
//     study quantifies the sum-flow cost of this trade on the
//     paper's bursty workload.
//
// SubmitBatch always routes hierarchically (the cluster's
// power-of-two-choices over summary-backed backlog scores), fresh
// summaries simply being exact.
//
// Members that keep failing (RPC errors, timeouts) are evicted after
// MaxFailures consecutive failures: their partition leaves the
// candidate pool and only a periodic readmission probe (a Summary
// fetch every ProbeInterval) still reaches them; the first successful
// probe readmits the member with a fresh summary. Jobs placed on a
// member stay accounted to it until their completion message arrives
// or the completion routing gives up.
//
// The Dispatcher is safe for concurrent use; submissions serialize on
// the dispatch lock, mirroring the cluster.
package fed

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"casched/internal/agent"
	"casched/internal/cluster"
	"casched/internal/fair"
	"casched/internal/relay"
	"casched/internal/sched"
	"casched/internal/stats"
	"casched/internal/task"
)

// ErrNoMembers is returned when no live (non-evicted) member is
// available to route to.
var ErrNoMembers = errors.New("fed: no live member")

// ErrUnreachable marks a member call that failed at the transport
// level (dial failure, timeout, broken connection) as opposed to a
// member that answered with a scheduling error. Member
// implementations wrap transport failures with it; only unreachable
// errors count toward a member's consecutive-failure eviction, so a
// healthy member rejecting bad requests is never evicted for them.
var ErrUnreachable = errors.New("fed: member unreachable")

// ErrUncertain marks the subset of unreachable errors where the
// request may nonetheless have been delivered and executed — a
// timeout after send, a connection that broke mid-call. A mutating
// call that fails this way must NOT be retried on another member
// (the placement could land twice); a dial failure, by contrast,
// provably never delivered anything and is safe to reroute.
// ErrUncertain wraps ErrUnreachable, so it also counts toward
// eviction.
var ErrUncertain = fmt.Errorf("fed: delivery uncertain: %w", ErrUnreachable)

// Config parameterizes a Dispatcher. Most callers use New with
// options.
type Config struct {
	// Members is the number of in-process members New constructs
	// (default 1). Ignored by NewWithMembers.
	Members int
	// Policy assigns servers to members (default cluster.Hash()) — the
	// same ShardPolicy seam the cluster partitions with.
	Policy cluster.ShardPolicy
	// Heuristic is the registry name of the heuristic every member
	// runs (required). The dispatcher needs it to know whether scored
	// fan-out applies; members started out of process must be
	// configured with the same heuristic.
	Heuristic string
	// Seed drives each member's decision randomness and the
	// dispatcher's routing sample.
	Seed uint64
	// HTMWorkers, HTMSync and BatchAssignment configure in-process
	// member cores (as the cluster options do per shard).
	HTMWorkers      int
	HTMSync         bool
	BatchAssignment bool
	// TenantShares and Admission configure in-process member cores'
	// fair-share arbitration and deadline admission (agent.Config).
	// Remote members carry their own configuration (casagent flags);
	// the dispatcher only threads tenant and deadline over the wire.
	TenantShares map[string]float64
	Admission    bool
	// IntakeRate, when positive, bounds the federation's raw intake
	// with one dispatch-level token bucket (rate per experiment second,
	// burst IntakeBurst, default max(rate, 1)) — one limiter per
	// deployment, before any member is consulted. Refusals are shed
	// with agent.ErrThrottled and an agent.EventShed on the merged
	// stream.
	IntakeRate  float64
	IntakeBurst float64
	// PlacedWindow, when positive, bounds the dispatcher's job→member
	// placement records to a trailing window of experiment seconds (see
	// cluster.Config.PlacedWindow — the same degraded completion
	// fallback applies: swept jobs resolve through the server's owning
	// member).
	PlacedWindow float64
	// Relay turns on the live event relay: in-process member cores run
	// with relay ledgers (agent.Config.Relay), and the dispatcher polls
	// each relay-capable member's decision/completion deltas, folding
	// them — plus optimistic local accounting for its own delegations —
	// onto the member's last gossiped summary (internal/relay.View).
	// Degraded-mode routing then prices each request on near-fresh
	// per-server projected-ready instants instead of frozen
	// power-of-two-choices. Off (the default) the dispatcher routes
	// exactly as before the relay existed, bit for bit. Members that do
	// not speak relay (old binaries, relay off member-side) are
	// detected and fall back to summary-only routing individually.
	Relay bool
	// RelayInterval is the minimum age before a submission pulls relay
	// deltas inline. 0 (the default) pulls on every submission — the
	// exact near-fresh mode the federation study measures. The TCP
	// runtime sets it to its relay tick and pulls in the background.
	RelayInterval time.Duration
	// RelayMaxConsecutive bounds consecutive delegations to one member
	// between relay/gossip view advances (default 8): a member whose
	// view stopped moving is demoted to last in the routing order, so
	// a wedged relay stream cannot re-create the herding the relay
	// exists to prevent.
	RelayMaxConsecutive int
	// StaleAfter is the summary age beyond which a member no longer
	// counts as fresh (default 2s). Any member gone stale degrades
	// Submit routing from exact fan-out to power-of-two-choices.
	StaleAfter time.Duration
	// SummaryInterval is the minimum age before a submission refreshes
	// a member's summary inline. 0 (the default) refreshes on every
	// submission — exact summaries, the in-process mode. Runtimes with
	// remote members set it to their gossip period and refresh in the
	// background.
	SummaryInterval time.Duration
	// MaxFailures is the consecutive-failure count that evicts a
	// member (default 3).
	MaxFailures int
	// ProbeInterval is the readmission probe period for evicted
	// members (default StaleAfter).
	ProbeInterval time.Duration
	// ReassignAfter, when positive, re-partitions a dead member's
	// servers among the survivors once its eviction has lasted this
	// long (ReassignDead, called from the gossip tick). 0 (the
	// default) keeps the pre-HA behavior: an evicted member's
	// partition waits for its return. Graceful departures (Leave)
	// always reassign immediately, regardless of this setting.
	ReassignAfter time.Duration
	// Now is the time source for summary freshness (default time.Now;
	// tests and the staleness study inject fakes).
	Now func() time.Time
}

// Option configures a Dispatcher.
type Option func(*Config)

// WithMembers sets the number of in-process members New constructs.
func WithMembers(n int) Option { return func(c *Config) { c.Members = n } }

// WithPolicy sets the server-to-member assignment policy.
func WithPolicy(p cluster.ShardPolicy) Option { return func(c *Config) { c.Policy = p } }

// WithHeuristic selects the heuristic by registry name
// (case-insensitive), one instance per member.
func WithHeuristic(name string) Option { return func(c *Config) { c.Heuristic = name } }

// WithSeed seeds member decision randomness and routing sampling.
func WithSeed(seed uint64) Option { return func(c *Config) { c.Seed = seed } }

// WithHTMWorkers bounds each member core's HTM worker pool.
func WithHTMWorkers(n int) Option { return func(c *Config) { c.HTMWorkers = n } }

// WithHTMSync enables HTM↔execution synchronization on every member.
func WithHTMSync(on bool) Option { return func(c *Config) { c.HTMSync = on } }

// WithBatchAssignment opts every member's SubmitBatch into k-task
// min-cost assignment waves.
func WithBatchAssignment(on bool) Option { return func(c *Config) { c.BatchAssignment = on } }

// WithRelay turns the live event relay on (see Config.Relay).
func WithRelay(on bool) Option { return func(c *Config) { c.Relay = on } }

// WithRelayInterval sets the inline relay pull period (0 = every
// submission).
func WithRelayInterval(d time.Duration) Option { return func(c *Config) { c.RelayInterval = d } }

// WithRelayMaxConsecutive bounds consecutive delegations to one member
// between relay view advances.
func WithRelayMaxConsecutive(n int) Option {
	return func(c *Config) { c.RelayMaxConsecutive = n }
}

// WithStaleAfter sets the summary freshness horizon.
func WithStaleAfter(d time.Duration) Option { return func(c *Config) { c.StaleAfter = d } }

// WithSummaryInterval sets the inline summary refresh period
// (0 = every submission).
func WithSummaryInterval(d time.Duration) Option { return func(c *Config) { c.SummaryInterval = d } }

// WithMaxFailures sets the consecutive-failure eviction threshold.
func WithMaxFailures(n int) Option { return func(c *Config) { c.MaxFailures = n } }

// WithNow injects the freshness time source (tests, staleness
// studies).
func WithNow(now func() time.Time) Option { return func(c *Config) { c.Now = now } }

// WithTenantShares turns on weighted fair-share arbitration on every
// in-process member core (see agent.Config.TenantShares).
func WithTenantShares(shares map[string]float64) Option {
	return func(c *Config) { c.TenantShares = shares }
}

// WithAdmission turns deadline-aware admission on every in-process
// member core (see agent.Config.Admission).
func WithAdmission(on bool) Option { return func(c *Config) { c.Admission = on } }

// WithIntakeLimit bounds the federation's raw intake with one
// dispatch-level token bucket (see Config.IntakeRate).
func WithIntakeLimit(rate, burst float64) Option {
	return func(c *Config) { c.IntakeRate, c.IntakeBurst = rate, burst }
}

// WithPlacedWindow bounds the dispatcher's job→member placement
// records to a trailing experiment-time window (see
// Config.PlacedWindow).
func WithPlacedWindow(seconds float64) Option {
	return func(c *Config) { c.PlacedWindow = seconds }
}

// WithReassignAfter re-partitions a dead member's servers among the
// survivors once its eviction has lasted the given duration (see
// Config.ReassignAfter).
func WithReassignAfter(d time.Duration) Option {
	return func(c *Config) { c.ReassignAfter = d }
}

func (cfg *Config) defaults() {
	if cfg.Members == 0 {
		cfg.Members = 1
	}
	if cfg.Policy == nil {
		cfg.Policy = cluster.Hash()
	}
	if cfg.StaleAfter == 0 {
		cfg.StaleAfter = 2 * time.Second
	}
	if cfg.MaxFailures == 0 {
		cfg.MaxFailures = 3
	}
	if cfg.RelayMaxConsecutive == 0 {
		cfg.RelayMaxConsecutive = 8
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = cfg.StaleAfter
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
}

// placedRec is one dispatcher placement record: the member that
// committed a job, the server it landed on and when, for
// window-bounded retention. The server makes the record replayable:
// a standby dispatcher that mirrored it can answer a client's retried
// request with the original decision instead of placing the job a
// second time.
type placedRec struct {
	member int
	server string
	at     float64
}

// memberState is the dispatcher's bookkeeping for one member.
type memberState struct {
	m         Member
	summary   Summary
	fetched   time.Time // last successful summary refresh; zero = never
	fails     int       // consecutive transport failures
	evicted   bool
	evictedAt time.Time // when eviction happened (reassignment clock)
	left      bool      // departed gracefully; never probed or routed
	probed    time.Time // last readmission probe of an evicted member
	fetching  bool      // a summary fetch is in flight (outside the lock)
	unsub     func()    // event-stream cancel, for members that stream

	// Relay state (Config.Relay; all zero/nil otherwise). view is the
	// near-fresh fold of the last summary plus relayed events plus
	// optimistic delegations; relayCap caches whether the member speaks
	// relay (0 unknown, 1 yes, -1 no); delegSeq counts delegations to
	// the member — the marker ordering optimistic entries against
	// summary fetches; consec counts delegations since the view last
	// advanced (the herding bound).
	view          *relay.View
	relayCap      int8
	relayFetched  time.Time
	relayFetching bool
	delegSeq      uint64
	consec        int
}

// MemberInfo is a diagnostic snapshot of one member's routing state.
type MemberInfo struct {
	Name string
	// Left reports a graceful departure (Fed.Leave): the member is out
	// of the pool and its partition has been reassigned; unlike an
	// eviction, no readmission probe runs (the member said goodbye).
	Left bool
	// Servers is the dispatcher's partition count for the member;
	// ReportedServers is what the member's last summary claimed. A
	// disagreement means the member lost (or never replayed) part of
	// its partition — the restart-drift signal an operator watches.
	Servers         int
	ReportedServers int
	InFlight        int
	Evicted         bool
	Fresh           bool
	SummaryAge      time.Duration
	// Relay diagnostics (meaningful only with Config.Relay on):
	// RelayCapable reports the member speaks relay; RelaySynced that
	// its view is currently routable; RelaySeq the member-ledger
	// sequence folded up to; RelayAge the time since the last
	// successful relay pull (MaxInt64 = never); RelayPending the
	// optimistic delegations not yet confirmed by relayed events.
	RelayCapable bool
	RelaySynced  bool
	RelaySeq     uint64
	RelayAge     time.Duration
	RelayPending int
}

// Dispatcher is the federated dispatch layer. Construct with New
// (in-process members) or NewWithMembers (custom transports); drive
// like a cluster: AddServer, Submit/SubmitBatch, Complete/Report.
type Dispatcher struct {
	cfg    Config
	scored bool

	// mu is the dispatch lock: membership, routing state, summaries
	// and submissions.
	mu      sync.Mutex
	members []*memberState
	home    map[string]int    // server name -> member index
	counts  []int             // servers per member
	placed  map[int]placedRec // jobID -> placement record, evicted on completion
	rr      int               // rotation cursor for unscored heuristics
	rng     *stats.RNG        // power-of-two-choices sampling
	// bucket is the dispatch-level intake limiter (nil = unlimited);
	// placedWindow/placedSwept bound the placed map (see
	// Config.PlacedWindow).
	bucket       *fair.TokenBucket
	placedWindow float64
	placedSwept  float64
	// resume marks a dispatcher promoted from standby state: Submit
	// then answers requests whose job already has a replicated
	// placement record with the recorded decision instead of placing
	// again — the replay-dedup half of client failover. reassigned
	// counts servers moved off dead or departed members.
	resume     bool
	reassigned uint64
	// relayFolded counts relay events folded into member views;
	// relayRouted counts degraded-mode delegations priced by relay
	// views (vs summary-only p2c).
	relayFolded uint64
	relayRouted uint64

	// emu guards the merged event stream of event-streaming members.
	emu     sync.Mutex
	subs    map[int]func(agent.Event)
	nextSub int
}

// New constructs a Dispatcher over Config.Members fresh in-process
// member cores, each running its own instance of the configured
// heuristic over its server partition — the federated twin of
// cluster.New.
func New(opts ...Option) (*Dispatcher, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	cfg.defaults()
	if cfg.Members < 1 {
		return nil, fmt.Errorf("fed: needs at least 1 member, got %d", cfg.Members)
	}
	members := make([]Member, cfg.Members)
	for i := range members {
		s, err := sched.ByName(cfg.Heuristic)
		if err != nil {
			return nil, fmt.Errorf("fed: %w", err)
		}
		core, err := agent.New(agent.Config{
			Scheduler:       s,
			Seed:            cfg.Seed,
			HTMWorkers:      cfg.HTMWorkers,
			HTMSync:         cfg.HTMSync,
			BatchAssignment: cfg.BatchAssignment,
			TenantShares:    cfg.TenantShares,
			Admission:       cfg.Admission,
			Relay:           cfg.Relay,
		})
		if err != nil {
			return nil, fmt.Errorf("fed: member %d: %w", i, err)
		}
		members[i] = NewInProcess(fmt.Sprintf("member-%d", i), core)
	}
	return NewWithMembers(cfg, members)
}

// NewWithMembers constructs a Dispatcher over caller-supplied member
// handles (remote transports, test fakes). The configured heuristic
// name must match what the members run; members may also join later
// through AddMember.
func NewWithMembers(cfg Config, members []Member) (*Dispatcher, error) {
	cfg.defaults()
	if cfg.Heuristic == "" {
		return nil, errors.New("fed: config needs a heuristic")
	}
	proto, err := sched.ByName(cfg.Heuristic)
	if err != nil {
		return nil, fmt.Errorf("fed: %w", err)
	}
	_, scored := proto.(sched.ScoredScheduler)
	d := &Dispatcher{
		cfg:          cfg,
		scored:       scored,
		home:         make(map[string]int),
		placed:       make(map[int]placedRec),
		subs:         make(map[int]func(agent.Event)),
		rng:          stats.NewRNG(cfg.Seed ^ 0x9e3779b97f4a7c15),
		placedWindow: cfg.PlacedWindow,
	}
	if cfg.IntakeRate > 0 {
		d.bucket = fair.NewTokenBucket(cfg.IntakeRate, cfg.IntakeBurst)
	}
	for _, m := range members {
		d.addMemberLocked(m)
	}
	return d, nil
}

// AddMember registers a member handle with the dispatcher (a remote
// agent joining the federation). Idempotent by name: rejoining under
// an existing name replaces the handle, clears the old failure state
// and replays the member's server partition into the new handle —
// a restarted casagent comes back with an empty core, but the
// dispatcher still owns the partition map, so re-registration
// restores the servers it is responsible for. A non-nil error means
// part of the partition could not be replayed; the join should be
// retried (the replay is idempotent).
func (d *Dispatcher) AddMember(m Member) error {
	d.mu.Lock()
	idx := -1
	var partition []string
	for i, ms := range d.members {
		if ms.m.Name() != m.Name() {
			continue
		}
		idx = i
		if ms.unsub != nil {
			ms.unsub()
			ms.unsub = nil
		}
		ms.m = m
		ms.fails = 0
		ms.evicted = false
		ms.left = false
		ms.fetched = time.Time{}
		if d.cfg.Relay {
			// The rejoined process has a fresh ledger: drop the old fold
			// and re-probe capability; the next summary rebases the view.
			ms.view = relay.NewView()
			ms.relayCap = 0
			ms.relayFetched = time.Time{}
			ms.consec = 0
		}
		if es, ok := m.(eventSource); ok {
			ms.unsub = es.Subscribe(d.forward)
		}
		for name, home := range d.home {
			if home == i {
				partition = append(partition, name)
			}
		}
		break
	}
	if idx < 0 {
		d.addMemberLocked(m)
		d.mu.Unlock()
		return nil
	}
	d.mu.Unlock()

	// Replay the whole partition OUTSIDE the dispatch lock (each call
	// is a member RPC that may run to its timeout; routing for the
	// other members must not stall behind it) — every failure is
	// collected and surfaced rather than silently leaving the member
	// with a partial server set, and the replay stops early if the
	// member earns eviction mid-way. AddServer is idempotent by name
	// on the member side, so an in-process handle swap (where the
	// core kept its servers) is unharmed.
	var errs []error
	for _, name := range partition {
		if err := m.AddServer(name); err != nil {
			errs = append(errs, fmt.Errorf("fed: replay %s to member %s: %w", name, m.Name(), err))
			d.mu.Lock()
			evicted := false
			if d.members[idx].m == m {
				d.markTransportLocked(idx, err)
				evicted = d.members[idx].evicted
			}
			d.mu.Unlock()
			if evicted {
				break
			}
		}
	}
	return errors.Join(errs...)
}

// addMemberLocked appends a new member slot. Caller holds d.mu (or is
// the constructor).
func (d *Dispatcher) addMemberLocked(m Member) {
	ms := &memberState{m: m}
	if d.cfg.Relay {
		ms.view = relay.NewView()
	}
	if es, ok := m.(eventSource); ok {
		ms.unsub = es.Subscribe(d.forward)
	}
	d.members = append(d.members, ms)
	d.counts = append(d.counts, 0)
}

// forward relays one member event into the merged stream.
func (d *Dispatcher) forward(ev agent.Event) {
	d.emu.Lock()
	defer d.emu.Unlock()
	for _, fn := range d.subs {
		fn(ev)
	}
}

// Subscribe registers an observer on the merged event stream of every
// event-streaming member (the in-process transport; remote members do
// not stream events over the wire) and returns its cancel function.
func (d *Dispatcher) Subscribe(fn func(agent.Event)) (cancel func()) {
	d.emu.Lock()
	defer d.emu.Unlock()
	id := d.nextSub
	d.nextSub++
	d.subs[id] = fn
	return func() {
		d.emu.Lock()
		defer d.emu.Unlock()
		delete(d.subs, id)
	}
}

// NumMembers returns the number of registered members (including
// evicted ones).
func (d *Dispatcher) NumMembers() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.members)
}

// Member exposes one member handle for inspection.
func (d *Dispatcher) Member(i int) Member {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.members[i].m
}

// Members returns a diagnostic snapshot of every member's routing
// state.
func (d *Dispatcher) Members() []MemberInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.cfg.Now()
	out := make([]MemberInfo, len(d.members))
	for i, ms := range d.members {
		age := time.Duration(math.MaxInt64)
		if !ms.fetched.IsZero() {
			age = now.Sub(ms.fetched)
		}
		info := MemberInfo{
			Name:            ms.m.Name(),
			Left:            ms.left,
			Servers:         d.counts[i],
			ReportedServers: ms.summary.Servers,
			InFlight:        ms.summary.InFlight,
			Evicted:         ms.evicted,
			Fresh:           d.freshLocked(ms, now),
			SummaryAge:      age,
		}
		if ms.view != nil {
			info.RelayCapable = ms.relayCap > 0
			info.RelaySynced = ms.view.Synced()
			info.RelaySeq = ms.view.Seq()
			info.RelayPending = ms.view.Pending()
			info.RelayAge = time.Duration(math.MaxInt64)
			if !ms.relayFetched.IsZero() {
				info.RelayAge = now.Sub(ms.relayFetched)
			}
		}
		out[i] = info
	}
	return out
}

// Close cancels member event subscriptions and closes the member
// handles.
func (d *Dispatcher) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var errs []error
	for _, ms := range d.members {
		if ms.unsub != nil {
			ms.unsub()
			ms.unsub = nil
		}
		if err := ms.m.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// AddServer registers a server, routed to a member by the policy —
// the same partitioning seam the cluster uses. A server the policy
// would hand to an evicted member is rerouted among the live members
// (the policy applied to the live subset), so registration keeps
// working while part of the federation is partitioned.
//
// Idempotent by name, and the idempotent path replays: re-registering
// an already-assigned server re-issues AddServer to its recorded
// member, which heals a member that missed the first add (an
// uncertain timeout, a restart). Assignments never move on
// re-registration — the disjoint-partition invariant holds even
// through delivery uncertainty, because an uncertain first add
// records the assignment before surfacing its error.
func (d *Dispatcher) AddServer(name string) error {
	d.mu.Lock()
	if i, ok := d.home[name]; ok {
		m := d.members[i].m
		d.mu.Unlock()
		if err := m.AddServer(name); err != nil {
			d.mu.Lock()
			d.markTransportLocked(i, err)
			d.mu.Unlock()
			return fmt.Errorf("fed: member %s: %w", m.Name(), err)
		}
		return nil
	}
	if len(d.members) == 0 {
		d.mu.Unlock()
		return ErrNoMembers
	}
	i := cluster.ClampIndex(d.cfg.Policy.Assign(name, d.counts), len(d.members))
	if d.members[i].evicted || d.members[i].left {
		live := d.liveLocked()
		if len(live) == 0 {
			d.mu.Unlock()
			return ErrNoMembers
		}
		sub := make([]int, len(live))
		for k, li := range live {
			sub[k] = d.counts[li]
		}
		i = live[cluster.ClampIndex(d.cfg.Policy.Assign(name, sub), len(live))]
	}
	// Record the assignment before the member RPC resolves its
	// outcome class: an uncertain failure (the add may have been
	// delivered) must pin the server to this member so a registration
	// retry replays to the same partition instead of creating an
	// overlapping one elsewhere. A certain failure (refused dial:
	// provably not delivered) unwinds the record so the retry can
	// reroute freely.
	d.home[name] = i
	d.counts[i]++
	m := d.members[i].m
	d.mu.Unlock()
	err := m.AddServer(name)
	if err == nil {
		return nil
	}
	d.mu.Lock()
	d.markTransportLocked(i, err)
	if !errors.Is(err, ErrUncertain) {
		if cur, ok := d.home[name]; ok && cur == i {
			delete(d.home, name)
			d.counts[i]--
		}
	}
	d.mu.Unlock()
	return fmt.Errorf("fed: member %s: %w", m.Name(), err)
}

// RemoveServer withdraws a server from its member's partition.
func (d *Dispatcher) RemoveServer(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	i, ok := d.home[name]
	if !ok {
		return nil
	}
	if err := d.members[i].m.RemoveServer(name); err != nil {
		d.markTransportLocked(i, err)
		return fmt.Errorf("fed: member %s: %w", d.members[i].m.Name(), err)
	}
	delete(d.home, name)
	d.counts[i]--
	return nil
}

// Servers returns every registered server in sorted order.
func (d *Dispatcher) Servers() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.home))
	for name := range d.home {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// MemberOf returns the member index a server is assigned to.
func (d *Dispatcher) MemberOf(server string) (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	i, ok := d.home[server]
	return i, ok
}

// InFlight returns the dispatcher's count of jobs it placed that have
// not yet reported completion — its own accounting, maintained even
// when a member dies between evaluation and the completion message.
func (d *Dispatcher) InFlight() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.placed)
}

// markFailureLocked records one transport failure; MaxFailures
// consecutive failures evict the member. Caller holds d.mu.
func (d *Dispatcher) markFailureLocked(i int) {
	ms := d.members[i]
	ms.fails++
	if ms.fails >= d.cfg.MaxFailures && !ms.evicted {
		ms.evicted = true
		ms.evictedAt = d.cfg.Now()
		ms.probed = ms.evictedAt
	}
}

// markTransportLocked counts err toward eviction only when it is a
// transport failure (ErrUnreachable): a member that answered — even
// with a scheduling error — is alive. Caller holds d.mu.
func (d *Dispatcher) markTransportLocked(i int, err error) {
	if errors.Is(err, ErrUnreachable) {
		d.markFailureLocked(i)
	}
}

// markSuccessLocked resets the consecutive-failure count; a
// successful probe of an evicted member readmits it. Caller holds
// d.mu.
func (d *Dispatcher) markSuccessLocked(i int) {
	ms := d.members[i]
	ms.fails = 0
	ms.evicted = false
}

// freshLocked reports whether a member's summary is young enough for
// exact fan-out routing. Caller holds d.mu.
func (d *Dispatcher) freshLocked(ms *memberState, now time.Time) bool {
	return !ms.evicted && !ms.left && !ms.fetched.IsZero() && now.Sub(ms.fetched) <= d.cfg.StaleAfter
}

// refreshDue refreshes, in parallel, every member whose summary is
// older than SummaryInterval, and probes evicted members whose
// ProbeInterval elapsed. Caller must NOT hold d.mu.
func (d *Dispatcher) refreshDue() {
	d.refresh(false)
}

// RefreshSummaries forces a summary fetch of every live member,
// regardless of SummaryInterval — the background gossip tick of the
// TCP runtime, and the staleness dial of the federation study.
// Evicted members are still only probed on the ProbeInterval
// schedule, so a dead member is not re-dialed on every tick.
func (d *Dispatcher) RefreshSummaries() {
	d.refresh(true)
}

// refresh collects the members due a summary fetch, performs the
// fetches OUTSIDE the dispatch lock (a slow or partitioned member
// must not stall routing for everyone else — its RPC can block for
// the full transport timeout), and re-locks to apply the results.
// A per-member in-flight flag keeps concurrent submissions from
// piling onto the same slow member: whoever loses the race simply
// routes on the summary it has, which is exactly the degraded-mode
// contract.
//
// Readmission probes of evicted members run on their own
// ProbeInterval schedule. On the inline (non-forced) path they are
// fire-and-forget — a submission must not wait a transport timeout
// on a member already known dead; the probe's result lands before a
// later submission. The forced path (the gossip tick, explicit
// RefreshSummaries) waits for them, since it runs off the dispatch
// path and deterministic drivers rely on it.
func (d *Dispatcher) refresh(force bool) {
	d.mu.Lock()
	now := d.cfg.Now()
	var due, probes []int
	var dueH, probeH []Member
	var dueMark, probeMark []uint64
	for i, ms := range d.members {
		if ms.fetching || ms.left {
			continue
		}
		if ms.evicted {
			if now.Sub(ms.probed) < d.cfg.ProbeInterval {
				continue
			}
			ms.probed = now
			ms.fetching = true
			probes = append(probes, i)
			probeH = append(probeH, ms.m)
			probeMark = append(probeMark, ms.delegSeq)
			continue
		}
		if !force && !ms.fetched.IsZero() && now.Sub(ms.fetched) < d.cfg.SummaryInterval {
			continue
		}
		ms.fetching = true
		due = append(due, i)
		dueH = append(dueH, ms.m)
		// The delegation marker is captured before the fetch starts:
		// a summary can only include delegations made before this
		// instant, so the relay view's rebase keeps optimistic entries
		// with later markers (see relay.View.Rebase).
		dueMark = append(dueMark, ms.delegSeq)
	}
	d.mu.Unlock()

	var wg sync.WaitGroup
	fetchOne := func(i int, m Member, marker uint64) {
		defer wg.Done()
		s, err := m.Summary()
		d.applyFetch(i, m, s, err, marker)
	}
	for k, i := range probes {
		if force {
			wg.Add(1)
			go fetchOne(i, probeH[k], probeMark[k])
			continue
		}
		// Fire-and-forget: the caller routes now, the probe's result
		// lands for a later decision.
		go func(i int, m Member, marker uint64) {
			s, err := m.Summary()
			d.applyFetch(i, m, s, err, marker)
		}(i, probeH[k], probeMark[k])
	}
	for k, i := range due {
		wg.Add(1)
		go fetchOne(i, dueH[k], dueMark[k])
	}
	wg.Wait()
}

// applyFetch records one summary-fetch outcome. The handle identity
// check discards results that describe a process the member slot has
// since been rejoined away from. Like every other member call, only
// transport failures count toward eviction — a member that answers
// its Summary with an application error is alive (it just never goes
// fresh, so routing treats it as permanently stale).
func (d *Dispatcher) applyFetch(i int, m Member, s Summary, err error, marker uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ms := d.members[i]
	ms.fetching = false
	if ms.m != m {
		return
	}
	if err != nil {
		d.markTransportLocked(i, err)
		return
	}
	ms.summary = s
	ms.fetched = d.cfg.Now()
	d.markSuccessLocked(i)
	if ms.view != nil {
		if s.HasRelay {
			ms.relayCap = 1
			ms.view.Rebase(relay.Base{
				InFlight: s.InFlight,
				Tenant:   s.TenantInFlight,
				Ready:    s.ServerReady,
				Seq:      s.RelaySeq,
			}, marker)
			ms.consec = 0
		} else {
			// The member answered without relay fields: an old binary or
			// relay off member-side. Route it from summaries alone.
			ms.relayCap = -1
			ms.view.Unsync()
		}
	}
}

// liveLocked returns the indexes of non-evicted, non-departed
// members. Caller holds d.mu.
func (d *Dispatcher) liveLocked() []int {
	out := make([]int, 0, len(d.members))
	for i, ms := range d.members {
		if !ms.evicted && !ms.left {
			out = append(out, i)
		}
	}
	return out
}

// allFreshLocked reports whether every listed member is fresh. Caller
// holds d.mu.
func (d *Dispatcher) allFreshLocked(live []int) bool {
	now := d.cfg.Now()
	for _, i := range live {
		if !d.freshLocked(d.members[i], now) {
			return false
		}
	}
	return true
}

// shed synthesizes a dispatch-level shed event into the merged
// stream — for refusals no single member owns (the dispatcher's own
// intake bucket, fan-out deadline refusals where members only
// evaluate and must not emit).
func (d *Dispatcher) shed(req agent.Request, reason string) {
	d.forward(agent.Event{
		Kind:     agent.EventShed,
		Time:     req.Arrival,
		JobID:    req.JobID,
		TaskID:   req.TaskID,
		Attempt:  req.Attempt,
		Tenant:   req.Tenant,
		Deadline: req.Deadline,
		Reason:   reason,
	})
}

// notePlacedLocked records which member committed a job and the
// server it landed on, sweeping expired records when a retention
// window is set. Caller holds d.mu.
func (d *Dispatcher) notePlacedLocked(jobID, member int, server string, at float64) {
	d.placed[jobID] = placedRec{member: member, server: server, at: at}
	d.sweepPlacedLocked(at)
}

// sweepPlacedLocked evicts placement records older than the retention
// window (amortized: the full scan runs at most twice per window).
// Caller holds d.mu.
func (d *Dispatcher) sweepPlacedLocked(now float64) {
	if d.placedWindow <= 0 || now-d.placedSwept < d.placedWindow/2 {
		return
	}
	d.placedSwept = now
	cutoff := now - d.placedWindow
	for id, rec := range d.placed {
		if rec.at < cutoff {
			delete(d.placed, id)
		}
	}
}

// Submit routes one task. Fresh summaries select exact fan-out
// (every live member evaluates, commit on the winner — the
// centralized cluster's decision); a stale or partitioned member
// degrades routing to power-of-two-choices over the last-known
// summaries, delegating the whole decision to the chosen member.
// Heuristics without a comparable objective rotate over eligible
// members, as the cluster does.
//
// With an intake limit configured, requests the dispatch-level bucket
// refuses are shed with agent.ErrThrottled before any member RPC. A
// request no member can finish by its deadline (admission on,
// fan-out mode) is shed with agent.ErrDeadlineUnmet.
func (d *Dispatcher) Submit(req agent.Request) (agent.Decision, error) {
	d.refreshDue()
	d.relayDue()
	d.mu.Lock()
	defer d.mu.Unlock()
	// Replay dedup, checked before the intake gate: on a dispatcher
	// promoted from standby state, a request whose job already carries
	// a replicated placement record is a client retry of a decision the
	// old leader answered — return the recorded decision rather than
	// burning an intake token and placing the job twice.
	if d.resume {
		if rec, ok := d.placed[req.JobID]; ok && rec.server != "" {
			return agent.Decision{JobID: req.JobID, Server: rec.server}, nil
		}
	}
	if d.bucket != nil && !d.bucket.Take(req.Arrival) {
		d.shed(req, agent.ShedThrottled)
		return agent.Decision{}, fmt.Errorf("fed: job %d: %w", req.JobID, agent.ErrThrottled)
	}
	live := d.liveLocked()
	if len(live) == 0 {
		return agent.Decision{}, ErrNoMembers
	}
	if !d.scored {
		return d.submitRotateLocked(req, live)
	}
	if d.allFreshLocked(live) {
		return d.submitFanoutLocked(req, live)
	}
	return d.submitDegradedLocked(req, live)
}

// submitRotateLocked delegates one whole decision to a rotating
// eligible member — the unscored-heuristic path, mirroring the
// cluster's rotation. Caller holds d.mu.
func (d *Dispatcher) submitRotateLocked(req agent.Request, live []int) (agent.Decision, error) {
	var eligible []int
	var errs []error
	for _, i := range live {
		if d.counts[i] == 0 {
			continue
		}
		ok, err := d.members[i].m.CanSolve(req.Spec)
		if err != nil {
			d.markTransportLocked(i, err)
			errs = append(errs, fmt.Errorf("fed: member %s: %w", d.members[i].m.Name(), err))
			continue
		}
		if ok {
			eligible = append(eligible, i)
		}
	}
	if len(eligible) == 0 {
		if len(errs) > 0 {
			return agent.Decision{}, errors.Join(errs...)
		}
		return agent.Decision{}, agent.ErrUnschedulable
	}
	i := eligible[d.rr%len(eligible)]
	d.rr++
	dec, err := d.members[i].m.Submit(req)
	if err != nil {
		d.markTransportLocked(i, err)
		return agent.Decision{}, fmt.Errorf("fed: member %s: %w", d.members[i].m.Name(), err)
	}
	d.markSuccessLocked(i)
	d.notePlacedLocked(req.JobID, i, dec.Server, req.Arrival)
	return dec, nil
}

// submitFanoutLocked is the fresh-mode exact path: parallel Evaluate
// on every live member, commit on the best-scored candidate; a commit
// that fails (the member died between Evaluate and Commit) marks the
// failure, drops that candidate and retries on the next-best — the
// decision never half-commits and the dispatcher's in-flight
// accounting records only real commits. Caller holds d.mu.
//
// The error contract mirrors the cluster: as long as one member
// produces a winner the decision commits; member errors surface only
// when every member fails.
func (d *Dispatcher) submitFanoutLocked(req agent.Request, live []int) (agent.Decision, error) {
	type result struct {
		cand agent.Candidate
		err  error
	}
	results := make([]result, len(live))
	var wg sync.WaitGroup
	for k, i := range live {
		wg.Add(1)
		go func(k, i int) {
			defer wg.Done()
			c, err := d.members[i].m.Evaluate(req)
			results[k] = result{c, err}
		}(k, i)
	}
	wg.Wait()

	var errs []error
	deadlineBlocked := false
	remaining := make([]int, 0, len(live)) // positions into results/live
	for k, r := range results {
		if r.err != nil {
			switch {
			case errors.Is(r.err, agent.ErrDeadlineUnmet):
				// A per-member exclusion, like ErrUnschedulable: another
				// member's partition may still meet the deadline. Members
				// do not emit on Evaluate, so if every member is blocked
				// the dispatcher synthesizes the shed below.
				deadlineBlocked = true
			case !errors.Is(r.err, agent.ErrUnschedulable):
				errs = append(errs, fmt.Errorf("fed: member %s: %w", d.members[live[k]].m.Name(), r.err))
				d.markTransportLocked(live[k], r.err)
			}
			continue
		}
		remaining = append(remaining, k)
	}
	for len(remaining) > 0 {
		// Winner among the remaining candidates: primary objective,
		// then tie objective; remaining ties keep the earlier member
		// (stable), exactly the cluster's cross-shard comparison.
		best := 0
		for p := 1; p < len(remaining); p++ {
			if cluster.BetterCandidate(results[remaining[p]].cand, results[remaining[best]].cand) {
				best = p
			}
		}
		k := remaining[best]
		i := live[k]
		dec, err := d.members[i].m.Commit(req, results[k].cand.Server)
		if err == nil {
			d.markSuccessLocked(i)
			d.notePlacedLocked(req.JobID, i, dec.Server, req.Arrival)
			return dec, nil
		}
		errs = append(errs, fmt.Errorf("fed: commit on member %s: %w", d.members[i].m.Name(), err))
		d.markTransportLocked(i, err)
		if errors.Is(err, ErrUncertain) {
			// The member may have committed before the transport gave
			// up. Committing the job elsewhere could place it twice,
			// so surface the error instead — if the commit did land,
			// the completion still reaches the member through the
			// server-home fallback in Complete, keeping its core
			// consistent.
			return agent.Decision{}, errors.Join(errs...)
		}
		// Either the member answered with a rejection (membership
		// changed between Evaluate and Commit) or the dial itself
		// failed — in both cases nothing committed, so falling back to
		// the next-best candidate is safe.
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	if len(errs) > 0 {
		return agent.Decision{}, errors.Join(errs...)
	}
	if deadlineBlocked {
		d.shed(req, agent.ShedDeadline)
		return agent.Decision{}, fmt.Errorf("fed: job %d: %w", req.JobID, agent.ErrDeadlineUnmet)
	}
	return agent.Decision{}, agent.ErrUnschedulable
}

// submitDegradedLocked is the stale-mode path: members ordered by
// power-of-two-choices over the last-known summaries — or, with the
// relay on and views synced, by the estimated completion of this
// request on each member's best server (relayOrderLocked) — and the
// decision delegated whole to the first eligible member that accepts
// it. Caller holds d.mu.
func (d *Dispatcher) submitDegradedLocked(req agent.Request, live []int) (agent.Decision, error) {
	order, viaRelay := d.relayOrderLocked(req, live)
	if !viaRelay {
		order = d.orderLocked(req.Arrival, live, req.Tenant)
	}
	var errs []error
	deadlineBlocked := false
	for _, i := range order {
		if d.counts[i] == 0 {
			continue
		}
		ok, err := d.members[i].m.CanSolve(req.Spec)
		if err != nil {
			d.markTransportLocked(i, err)
			errs = append(errs, fmt.Errorf("fed: member %s: %w", d.members[i].m.Name(), err))
			continue
		}
		if !ok {
			continue
		}
		dec, err := d.members[i].m.Submit(req)
		if err != nil {
			if errors.Is(err, agent.ErrUnschedulable) {
				continue // membership changed member-side; try the next
			}
			if errors.Is(err, agent.ErrDeadlineUnmet) {
				// The member's own admission refused (and emitted its
				// shed); another member's partition may still make the
				// deadline, so keep walking the order.
				deadlineBlocked = true
				continue
			}
			errs = append(errs, fmt.Errorf("fed: member %s: %w", d.members[i].m.Name(), err))
			d.markTransportLocked(i, err)
			if errors.Is(err, ErrUncertain) {
				// Submit is evaluate+commit in one call, so an
				// uncertain transport failure may have committed
				// member-side. Trying the next member could place the
				// job twice; surface the error instead (completions
				// for a landed commit still route by server home, and
				// the member is evicted after MaxFailures such errors
				// anyway).
				return agent.Decision{}, errors.Join(errs...)
			}
			continue // rejection or failed dial: nothing committed
		}
		d.markSuccessLocked(i)
		d.notePlacedLocked(req.JobID, i, dec.Server, req.Arrival)
		d.noteDelegatedLocked(i, req, dec, viaRelay)
		return dec, nil
	}
	if len(errs) > 0 {
		return agent.Decision{}, errors.Join(errs...)
	}
	if deadlineBlocked {
		return agent.Decision{}, fmt.Errorf("fed: job %d: %w", req.JobID, agent.ErrDeadlineUnmet)
	}
	return agent.Decision{}, agent.ErrUnschedulable
}

// SubmitBatch routes a burst hierarchically by power-of-two-choices
// over the summary-backed member scores — structurally the cluster's
// batch router, with summaries standing in for the in-process HTM
// reads (fresh summaries make the routing identical; stale ones make
// it approximate). The routed member pipelines its sub-batch through
// its shard-local batch prediction cache.
// With an intake limit configured, the dispatch-level bucket gates
// the whole batch first (including the single-member shortcut);
// refused requests are shed with agent.ErrThrottled and never cross a
// member RPC. With multi-tenant traffic, routing ranks members per
// tenant on the submitting tenant's own summarized backlog
// (Summary.TenantInFlight), so one tenant's burst does not steer
// another tenant's placements.
func (d *Dispatcher) SubmitBatch(reqs []agent.Request) ([]agent.Decision, error) {
	d.refreshDue()
	d.relayDue()
	d.mu.Lock()
	defer d.mu.Unlock()
	var errs []error
	total := len(reqs)
	live, keep := reqs, []int(nil)
	if d.bucket != nil {
		live = make([]agent.Request, 0, len(reqs))
		keep = make([]int, 0, len(reqs))
		for i, req := range reqs {
			if !d.bucket.Take(req.Arrival) {
				d.shed(req, agent.ShedThrottled)
				errs = append(errs, fmt.Errorf("fed: batch job %d: %w", req.JobID, agent.ErrThrottled))
				continue
			}
			live = append(live, req)
			keep = append(keep, i)
		}
	}
	reqs = live
	// scatter maps results for the admitted sub-slice back to the
	// caller's positions when the gate dropped anything.
	scatter := func(decs []agent.Decision) []agent.Decision {
		if keep == nil {
			return decs
		}
		out := make([]agent.Decision, total)
		for k, pos := range keep {
			out[pos] = decs[k]
		}
		return out
	}
	liveMembers := d.liveLocked()
	if len(liveMembers) == 0 {
		return scatter(make([]agent.Decision, len(reqs))), errors.Join(append(errs, ErrNoMembers)...)
	}
	if len(d.members) == 1 {
		// Mirror the cluster's single-shard shortcut: no routing, no
		// sampling.
		i := liveMembers[0]
		out, err := d.members[i].m.SubmitBatch(reqs)
		if err != nil {
			d.markTransportLocked(i, err)
			errs = append(errs, err)
		}
		if len(out) != len(reqs) {
			out = make([]agent.Decision, len(reqs))
		}
		for k, dec := range out {
			if dec.Server != "" {
				d.notePlacedLocked(reqs[k].JobID, i, dec.Server, reqs[k].Arrival)
			}
		}
		return scatter(out), errors.Join(errs...)
	}
	at := 0.0
	if len(reqs) > 0 {
		at = reqs[0].Arrival
	}
	// One routing order per tenant in the batch, memoized: each
	// tenant's requests walk members ranked on that tenant's own
	// backlog. Single-tenant batches reduce to the historical single
	// order (one memo entry, total-in-flight signal).
	orders := make(map[string][]int)
	orderFor := func(tenant string) []int {
		if o, ok := orders[tenant]; ok {
			return o
		}
		o := d.orderLocked(at, liveMembers, tenant)
		orders[tenant] = o
		return o
	}

	assign := make([]int, len(reqs))
	subBatches := make(map[int][]int) // member -> request positions
	// Bursts overwhelmingly share task specs, so memoize the
	// eligibility probe per (member, spec) within the call — for
	// remote members each probe is an RPC under the dispatch lock.
	type solveKey struct {
		member int
		spec   *task.Spec
	}
	solvable := make(map[solveKey]bool)
	canSolve := func(i int, spec *task.Spec) bool {
		key := solveKey{i, spec}
		if ok, seen := solvable[key]; seen {
			return ok
		}
		ok, err := d.members[i].m.CanSolve(spec)
		if err != nil {
			d.markTransportLocked(i, err)
			errs = append(errs, fmt.Errorf("fed: member %s: %w", d.members[i].m.Name(), err))
			ok = false
		}
		solvable[key] = ok
		return ok
	}
	for k, req := range reqs {
		assign[k] = -1
		for _, i := range orderFor(req.Tenant) {
			if d.counts[i] == 0 {
				continue
			}
			if canSolve(i, req.Spec) {
				assign[k] = i
				subBatches[i] = append(subBatches[i], k)
				break
			}
		}
		if assign[k] < 0 {
			errs = append(errs, fmt.Errorf("fed: batch job %d: %w", req.JobID, agent.ErrUnschedulable))
		}
	}

	out := make([]agent.Decision, len(reqs))
	memberErrs := make(map[int]error, len(subBatches))
	var wg sync.WaitGroup
	var emu sync.Mutex
	for i, positions := range subBatches {
		wg.Add(1)
		go func(i int, positions []int) {
			defer wg.Done()
			sub := make([]agent.Request, len(positions))
			for k, pos := range positions {
				sub[k] = reqs[pos]
			}
			decs, err := d.members[i].m.SubmitBatch(sub)
			for k, pos := range positions {
				if k < len(decs) {
					out[pos] = decs[k]
				}
			}
			if err != nil {
				emu.Lock()
				memberErrs[i] = err
				emu.Unlock()
			}
		}(i, positions)
	}
	wg.Wait()
	for i, err := range memberErrs {
		errs = append(errs, fmt.Errorf("fed: member %s: %w", d.members[i].m.Name(), err))
		// Only transport failures count toward eviction; per-request
		// scheduling errors inside a delivered batch (even a batch
		// that failed wholesale, e.g. reused job ids) prove the member
		// answered.
		d.markTransportLocked(i, err)
	}
	for k, dec := range out {
		if dec.Server != "" {
			d.notePlacedLocked(reqs[k].JobID, assign[k], dec.Server, reqs[k].Arrival)
		}
	}
	return scatter(out), errors.Join(errs...)
}

// orderLocked returns member indexes in routing-preference order for
// one decision at date at: the shared power-of-two-choices ranking
// (cluster.TwoChoicesOrder — the exact logic the Cluster routes
// with, which is what keeps fresh-summary routing in decision
// parity) computed from the members' last-known summaries instead of
// live core reads.
//
// The in-flight signal is per tenant when summaries carry a tenant
// split: a member busy with another tenant's work still ranks as idle
// for this tenant, so weighted arbitration member-side is not undone
// by routing every tenant onto the globally-least-loaded member.
// Untenanted traffic against untenanted summaries degenerates to the
// historical total-in-flight ranking (the per-tenant count of "" IS
// the total), which is what keeps single-tenant routing bit-for-bit.
// Caller holds d.mu.
func (d *Dispatcher) orderLocked(at float64, live []int, tenant string) []int {
	return cluster.TwoChoicesOrder(live,
		func(i int) int { return d.counts[i] },
		func(i int) int {
			ms := d.members[i]
			if ms.view != nil && ms.view.Synced() {
				// Relay on and folded: the near-fresh in-flight (with
				// optimistic delegations) replaces the frozen summary.
				return ms.view.TenantInFlight(tenant)
			}
			s := ms.summary
			if s.TenantInFlight != nil {
				return s.TenantInFlight[tenant]
			}
			return s.InFlight
		},
		func(i int) (float64, bool) {
			ms := d.members[i]
			if ms.view != nil && ms.view.Synced() {
				if r, ok := ms.view.MinReady(); ok {
					return r, true
				}
			}
			s := ms.summary
			return s.MinReady, s.HasMinReady
		},
		at, d.rng)
}

// Complete feeds a completion message to the member that placed the
// job (falling back to the server's owning member). The dispatcher's
// in-flight record is consumed only once the member acknowledged: a
// completion the member never saw leaves the job in its core, so
// dropping the record early would let the two accountings diverge —
// keeping it means a redelivered completion still routes to the
// right member.
func (d *Dispatcher) Complete(jobID int, server string, at float64) error {
	d.mu.Lock()
	rec, fromPlaced := d.placed[jobID]
	i := rec.member
	if !fromPlaced {
		// Unrouted jobs — and routed ones whose record aged out of the
		// retention window — resolve through the server's owning
		// member.
		h, okh := d.home[server]
		if !okh {
			d.mu.Unlock()
			return nil
		}
		i = h
	}
	m := d.members[i].m
	d.mu.Unlock()
	if err := m.Complete(jobID, server, at); err != nil {
		d.mu.Lock()
		d.markTransportLocked(i, err)
		d.mu.Unlock()
		return fmt.Errorf("fed: member %s: %w", m.Name(), err)
	}
	if fromPlaced {
		d.mu.Lock()
		if cur, ok := d.placed[jobID]; ok && cur.member == i {
			delete(d.placed, jobID)
		}
		d.mu.Unlock()
	}
	return nil
}

// Report feeds a monitor report to the server's owning member.
func (d *Dispatcher) Report(server string, load, at float64) error {
	d.mu.Lock()
	i, ok := d.home[server]
	var m Member
	if ok {
		// Copy the handle under the lock: a concurrent rejoin may swap
		// the member slot's handle (AddMember), and the RPC below runs
		// unlocked.
		m = d.members[i].m
	}
	d.mu.Unlock()
	if m == nil {
		return nil
	}
	if err := m.Report(server, load, at); err != nil {
		d.mu.Lock()
		if d.members[i].m == m {
			d.markTransportLocked(i, err)
		}
		d.mu.Unlock()
		return fmt.Errorf("fed: member %s: %w", m.Name(), err)
	}
	return nil
}

// FinalPredictions merges the end-of-run projections of members that
// expose them (in-process members).
func (d *Dispatcher) FinalPredictions() map[int]float64 {
	d.mu.Lock()
	members := make([]Member, len(d.members))
	for i, ms := range d.members {
		members[i] = ms.m
	}
	d.mu.Unlock()
	out := make(map[int]float64)
	for _, m := range members {
		if fp, ok := m.(finalPredictor); ok {
			for id, p := range fp.FinalPredictions() {
				out[id] = p
			}
		}
	}
	return out
}
