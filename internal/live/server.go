package live

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"casched/internal/stats"
	"casched/internal/task"
)

// ServerConfig parameterizes a live computational server.
type ServerConfig struct {
	// Name is the machine name; the server looks its own task costs up
	// under this name, as a NetSolve server knows its local problem
	// implementations.
	Name string
	// AgentAddr is the agent's RPC address — or a comma-separated list
	// of dispatcher addresses (leader plus standbys of a replicated
	// federation). With a list, agent calls fail over: a transport
	// error or not-leader redirect rotates to the next address and
	// re-registers through it, so a freshly promoted leader rebuilds
	// its name→address book from the surviving servers.
	AgentAddr string
	// Clock is the shared experiment clock.
	Clock *Clock
	// Problems lists the problems the server registers ("matmul",
	// "wastecpu"). Empty registers both.
	Problems []string
	// Quantum is the executor tick (wall time; default 2ms).
	Quantum time.Duration
	// ReportPeriod is the monitor period in virtual seconds (default
	// 30; negative disables reports).
	ReportPeriod float64
	// NoiseSigma perturbs actual phase costs (default 0 = exact).
	NoiseSigma float64
	// Seed drives the noise stream.
	Seed uint64
	// Addr is the TCP listen address (default "127.0.0.1:0").
	Addr string
}

// Server is a live computational server: an RPC service executing
// submitted tasks on a processor-sharing executor.
type Server struct {
	cfg  ServerConfig
	exec *executor
	lis  net.Listener
	rpc  *rpc.Server

	agent *dispatcherBook

	mu    sync.Mutex
	noise *stats.RNG

	stopReports chan struct{}
	wg          sync.WaitGroup
}

// StartServer launches a server, registers it with the agent and
// starts its monitor goroutine.
func StartServer(cfg ServerConfig) (*Server, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("live: server needs a name")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("live: server needs a clock")
	}
	if cfg.ReportPeriod == 0 {
		cfg.ReportPeriod = 30
	}
	if len(cfg.Problems) == 0 {
		cfg.Problems = []string{"matmul", "wastecpu"}
	}
	s := &Server{
		cfg:         cfg,
		exec:        newExecutor(cfg.Clock, cfg.Quantum),
		noise:       stats.NewRNG(cfg.Seed),
		stopReports: make(chan struct{}),
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		s.exec.close()
		return nil, fmt.Errorf("live: server listen: %w", err)
	}
	s.lis = lis
	s.rpc = rpc.NewServer()
	if err := s.rpc.RegisterName("Server", &ServerService{s}); err != nil {
		lis.Close()
		s.exec.close()
		return nil, fmt.Errorf("live: server rpc register: %w", err)
	}
	go s.serve()

	// Registration rides on every fresh connection: after a failover
	// the server re-registers through the new dispatcher, which both
	// rebuilds the leader's address book and (idempotently) re-asserts
	// partition membership.
	reg := RegisterArgs{Name: cfg.Name, Addr: lis.Addr().String(), Problems: cfg.Problems}
	s.agent = newDispatcherBook(cfg.AgentAddr, func(c *rpc.Client) error {
		return c.Call("Agent.Register", reg, &Ack{})
	})
	// First registration: with a multi-dispatcher book, ride out an
	// in-progress election; a single address keeps the pre-HA fail-fast
	// behavior.
	deadline := time.Now()
	if s.agent.multi() {
		deadline = time.Now().Add(failoverWindow)
	}
	for {
		_, _, err := s.agent.conn()
		if err == nil {
			break
		}
		if !time.Now().Before(deadline) {
			s.Close()
			return nil, fmt.Errorf("live: server register: %w", err)
		}
		time.Sleep(failoverPause)
	}

	if cfg.ReportPeriod > 0 {
		s.wg.Add(1)
		go s.reportLoop()
	}
	return s, nil
}

// Addr returns the server's RPC address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Resident returns the number of tasks currently on the server.
func (s *Server) Resident() int { return s.exec.resident() }

// Close shuts the server down.
func (s *Server) Close() error {
	select {
	case <-s.stopReports:
	default:
		close(s.stopReports)
	}
	err := s.lis.Close()
	if s.agent != nil {
		s.agent.Close()
	}
	s.exec.close()
	s.wg.Wait()
	return err
}

// serve accepts RPC connections.
func (s *Server) serve() {
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		go s.rpc.ServeConn(conn)
	}
}

// reportLoop sends periodic load reports to the agent, like a NetSolve
// server's monitor.
func (s *Server) reportLoop() {
	defer s.wg.Done()
	wall := time.Duration(s.cfg.ReportPeriod / s.cfg.Clock.Scale() * float64(time.Second))
	if wall < time.Millisecond {
		wall = time.Millisecond
	}
	ticker := time.NewTicker(wall)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopReports:
			return
		case <-ticker.C:
			args := LoadReportArgs{Name: s.cfg.Name, Load: s.exec.load(), At: s.cfg.Clock.Now()}
			// A lost report is harmless; the next one supersedes it —
			// but a failed one rotates the book, which is also how the
			// server discovers a new leader between tasks.
			_ = s.agent.tryCall("Agent.LoadReport", args, &Ack{})
		}
	}
}

// submit runs a task to completion and returns its completion date.
func (s *Server) submit(args SubmitArgs) (SubmitReply, error) {
	spec, err := task.Resolve(args.Problem, args.Variant)
	if err != nil {
		return SubmitReply{}, err
	}
	nominal, ok := spec.Cost(s.cfg.Name)
	if !ok {
		return SubmitReply{}, fmt.Errorf("live: server %s cannot solve %s", s.cfg.Name, spec.Name())
	}
	s.mu.Lock()
	actual := task.Cost{
		Input:   nominal.Input * s.noise.NoiseFactor(s.cfg.NoiseSigma),
		Compute: nominal.Compute * s.noise.NoiseFactor(s.cfg.NoiseSigma),
		Output:  nominal.Output * s.noise.NoiseFactor(s.cfg.NoiseSigma),
	}
	s.mu.Unlock()

	done, err := s.exec.submit(args.TaskKey, actual)
	if err != nil {
		return SubmitReply{}, err
	}
	completion := <-done

	// Completion message to the agent (NetSolve's second load
	// correction). The reply to the client is the ground truth, but a
	// replicated dispatcher needs the completion to drain its placed
	// map, so this rides the failover path and reaches the new leader
	// after a takeover.
	_ = s.agent.Call("Agent.TaskDone", TaskDoneArgs{
		TaskKey: args.TaskKey, Server: s.cfg.Name, At: completion,
	}, &Ack{})

	return SubmitReply{Completion: completion, Server: s.cfg.Name}, nil
}

// ServerService is the RPC facade of a Server.
type ServerService struct{ s *Server }

// Submit executes a task; the call returns when the task completes,
// like a NetSolve RPC.
func (sv *ServerService) Submit(args SubmitArgs, reply *SubmitReply) error {
	r, err := sv.s.submit(args)
	if err != nil {
		return err
	}
	*reply = r
	return nil
}
