// Package metrics computes the observation metrics of the paper (§3):
// makespan, sum-flow, max-flow, max-stretch, the number of completed
// tasks, and the "number of tasks that finish sooner" comparison
// against a reference run.
package metrics

import (
	"fmt"
	"math"
)

// TaskResult is the outcome of one task in one experiment run.
type TaskResult struct {
	// ID is the task's metatask identifier.
	ID int
	// Server is the server that (last) executed the task; empty if the
	// task was never scheduled.
	Server string
	// Arrival is the submission date a_j.
	Arrival float64
	// Completion is the completion date C_j (meaningful when Completed).
	Completion float64
	// UnloadedDuration is the task's end-to-end duration on the
	// assigned server if it were unloaded — the denominator of the
	// stretch metric ("relative to the time it takes on the same but
	// unloaded server").
	UnloadedDuration float64
	// Completed reports whether the task finished successfully.
	Completed bool
	// Resubmissions counts fault-tolerance resubmissions after server
	// collapses.
	Resubmissions int
}

// Flow returns C_j − a_j, the time the task spent in the system.
func (r TaskResult) Flow() float64 { return r.Completion - r.Arrival }

// Stretch returns the slowdown factor (C_j − a_j) / unloaded duration.
func (r TaskResult) Stretch() float64 {
	if r.UnloadedDuration <= 0 {
		return 0
	}
	return r.Flow() / r.UnloadedDuration
}

// Report aggregates the §3 metrics over one run. Only completed tasks
// contribute to the flow metrics, as in the paper.
type Report struct {
	// Heuristic labels the scheduler that produced the run.
	Heuristic string
	// Submitted is the metatask size.
	Submitted int
	// Completed is the number of tasks that finished.
	Completed int
	// Makespan is max_j C_j: the completion time of the last finished task.
	Makespan float64
	// SumFlow is Σ_j (C_j − a_j): the system/economic metric.
	SumFlow float64
	// MaxFlow is max_j (C_j − a_j): the maximum time in system.
	MaxFlow float64
	// MaxStretch is max_j (C_j − a_j)/unloaded_j: the worst slowdown.
	MaxStretch float64
	// MeanStretch is the average slowdown (Weissman's §6 metric).
	MeanStretch float64
	// Resubmissions totals fault-tolerance resubmissions.
	Resubmissions int
}

// Compute aggregates the metrics of one run.
func Compute(heuristic string, results []TaskResult) Report {
	rep := Report{Heuristic: heuristic, Submitted: len(results)}
	var stretchSum float64
	for _, r := range results {
		rep.Resubmissions += r.Resubmissions
		if !r.Completed {
			continue
		}
		rep.Completed++
		rep.SumFlow += r.Flow()
		if r.Completion > rep.Makespan {
			rep.Makespan = r.Completion
		}
		if f := r.Flow(); f > rep.MaxFlow {
			rep.MaxFlow = f
		}
		s := r.Stretch()
		stretchSum += s
		if s > rep.MaxStretch {
			rep.MaxStretch = s
		}
	}
	if rep.Completed > 0 {
		rep.MeanStretch = stretchSum / float64(rep.Completed)
	}
	return rep
}

// FinishSooner returns |{ j : C_j(a) < C_j(b) }| over the tasks
// completed in both runs — the paper's per-user quality-of-service
// indicator comparing heuristic a to heuristic b on the same metatask.
// The two slices must describe the same metatask (matched by task ID).
func FinishSooner(a, b []TaskResult) (int, error) {
	bByID := make(map[int]TaskResult, len(b))
	for _, r := range b {
		bByID[r.ID] = r
	}
	count := 0
	for _, ra := range a {
		rb, ok := bByID[ra.ID]
		if !ok {
			return 0, fmt.Errorf("metrics: task %d missing from reference run", ra.ID)
		}
		if ra.Completed && rb.Completed && ra.Completion < rb.Completion {
			count++
		}
	}
	return count, nil
}

// MeanReports averages a set of reports of the same heuristic over
// repeated runs (used for the paper's Tables 7 and 8 mean columns).
// Completed and Resubmissions are averaged and rounded to nearest.
func MeanReports(reports []Report) Report {
	if len(reports) == 0 {
		return Report{}
	}
	out := Report{Heuristic: reports[0].Heuristic, Submitted: reports[0].Submitted}
	n := float64(len(reports))
	var completed, resub float64
	for _, r := range reports {
		completed += float64(r.Completed)
		resub += float64(r.Resubmissions)
		out.Makespan += r.Makespan / n
		out.SumFlow += r.SumFlow / n
		out.MaxFlow += r.MaxFlow / n
		out.MaxStretch += r.MaxStretch / n
		out.MeanStretch += r.MeanStretch / n
	}
	out.Completed = int(math.Round(completed / n))
	out.Resubmissions = int(math.Round(resub / n))
	return out
}
