package experiments

import (
	"strings"
	"testing"
)

// smallCampaign shrinks the paper campaign for fast unit testing.
func smallCampaign() Campaign {
	c := Default()
	c.N = 120
	c.Seeds = []uint64{101, 102}
	return c
}

func TestDefaultCampaign(t *testing.T) {
	c := Default()
	if c.N != 500 || c.DLow != 25 || c.DHigh != 20 || len(c.Seeds) != 3 {
		t.Errorf("unexpected defaults: %+v", c)
	}
}

func TestRunSetValidation(t *testing.T) {
	c := smallCampaign()
	if _, err := c.RunSet(3, 25); err == nil {
		t.Error("unknown set accepted")
	}
	c.Seeds = nil
	if _, err := c.RunSet(1, 25); err == nil {
		t.Error("empty seeds accepted")
	}
}

func TestRunSet2LowRateShape(t *testing.T) {
	c := smallCampaign()
	res, err := c.RunSet(2, c.DLow)
	if err != nil {
		t.Fatal(err)
	}
	if res.Set != 2 || res.D != c.DLow || len(res.Rows) != 4 {
		t.Fatalf("result header wrong: %+v", res)
	}
	for _, row := range res.Rows {
		if len(row.Reports) != 2 {
			t.Errorf("%s: %d reports, want 2 (one per seed)", row.Name, len(row.Reports))
		}
		if row.Mean.Completed != c.N {
			t.Errorf("%s completed %d/%d", row.Name, row.Mean.Completed, c.N)
		}
		if row.Name == "MCT" {
			if len(row.Sooner) != 0 {
				t.Error("MCT must not compare against itself")
			}
		} else if len(row.Sooner) != 2 {
			t.Errorf("%s sooner entries = %d", row.Name, len(row.Sooner))
		}
	}
	mct, _ := res.Row("MCT")
	msf, _ := res.Row("MSF")
	if msf.Mean.SumFlow > mct.Mean.SumFlow*1.05 {
		t.Errorf("MSF sumflow %.0f not better than MCT %.0f", msf.Mean.SumFlow, mct.Mean.SumFlow)
	}
	mp, _ := res.Row("MP")
	if mp.Mean.MaxStretch > mct.Mean.MaxStretch {
		t.Errorf("MP maxstretch %.1f not best (MCT %.1f)", mp.Mean.MaxStretch, mct.Mean.MaxStretch)
	}
}

func TestTableAccessors(t *testing.T) {
	c := smallCampaign()
	c.N = 40
	c.Seeds = []uint64{101}
	for i, f := range []func() (*SetResult, error){c.Table5, c.Table6, c.Table7, c.Table8} {
		res, err := f()
		if err != nil {
			t.Fatalf("table accessor %d: %v", i, err)
		}
		if len(res.Rows) != 4 {
			t.Errorf("table accessor %d: %d rows", i, len(res.Rows))
		}
	}
}

func TestRowLookup(t *testing.T) {
	r := &SetResult{Rows: []HeuristicResult{{Name: "MCT"}}}
	if _, ok := r.Row("MCT"); !ok {
		t.Error("existing row not found")
	}
	if _, ok := r.Row("nosuch"); ok {
		t.Error("missing row found")
	}
}

func TestFormatStaticTables(t *testing.T) {
	t2 := FormatTable2()
	for _, want := range []string{"chamagne", "artimon", "xrousse", "zanzibar", "1700 MHz"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
	t3 := FormatTable3()
	for _, want := range []string{"1200", "1800", "504.00", "74.15"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table 3 missing %q", want)
		}
	}
	t4 := FormatTable4()
	for _, want := range []string{"200", "600", "273.28", "spinnaker"} {
		if !strings.Contains(t4, want) {
			t.Errorf("Table 4 missing %q", want)
		}
	}
}

func TestFormatSet(t *testing.T) {
	c := smallCampaign()
	c.N = 40
	res, err := c.RunSet(2, c.DLow)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatSet(res)
	for _, want := range []string{"Set 2 results", "MCT", "MSF", "sumflow", "maxstretch", "finish sooner"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatSet missing %q:\n%s", want, out)
		}
	}
	// Two seeds: the mean must be rendered in parentheses.
	if !strings.Contains(out, "(") {
		t.Error("multi-seed format missing mean parentheses")
	}
}

func TestFigure1(t *testing.T) {
	out, err := Figure1(60)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 1", "task 3", "33.3%", "perturbations"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 1 missing %q:\n%s", want, out)
		}
	}
}

func TestValidationSmall(t *testing.T) {
	v, err := Validate(ValidationConfig{Scale: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Rows) != 12 {
		t.Fatalf("validation rows = %d, want 12 (3+9)", len(v.Rows))
	}
	if v.MeanPctError > 10 {
		t.Errorf("mean validation error %.1f%% too large", v.MeanPctError)
	}
	for _, r := range v.Rows {
		if r.Real <= r.Arrival {
			t.Errorf("row %d/%d: completion %.2f before arrival %.2f",
				r.Execution, r.Task, r.Real, r.Arrival)
		}
	}
	out := FormatValidation(v)
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "mean %error") {
		t.Errorf("validation format incomplete:\n%s", out)
	}
}

func TestAblationFlags(t *testing.T) {
	c := smallCampaign()
	c.N = 40
	c.Seeds = []uint64{101}
	c.HTMSync = true
	c.MPTieRandom = true
	c.FaultToleranceAll = true
	res, err := c.RunSet(1, c.DLow)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Errorf("ablation run rows = %d", len(res.Rows))
	}
}
