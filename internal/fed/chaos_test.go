package fed

// The chaos decorator: capability forwarding (a wrapped in-process
// member must keep its relay/partition/event surfaces), injected kill
// and channel-sever semantics, and the latency-vs-budget model.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"casched/internal/agent"
	"casched/internal/sched"
)

func newChaosMember(t *testing.T, name string) (*InProcess, Member, *ScriptInjector) {
	t.Helper()
	s, err := sched.ByName("HMCT")
	if err != nil {
		t.Fatal(err)
	}
	core, err := agent.New(agent.Config{Scheduler: s, Seed: 7, Relay: true})
	if err != nil {
		t.Fatal(err)
	}
	inner := NewInProcess(name, core)
	inj := NewScriptInjector(0)
	return inner, Chaos(inner, inj), inj
}

func TestChaosForwardsCapabilities(t *testing.T) {
	_, m, _ := newChaosMember(t, "m0")
	if err := m.AddServer("sv00"); err != nil {
		t.Fatal(err)
	}

	// The optional capabilities must survive the wrapper: the relay,
	// partition-bootstrap, event and prediction surfaces all reach the
	// inner core while the injector stays quiet.
	rs, ok := m.(relaySource)
	if !ok {
		t.Fatal("chaos wrapper lost the relaySource capability")
	}
	if _, ok, err := rs.RelaySince(0); err != nil || !ok {
		t.Fatalf("RelaySince through quiet chaos = ok=%v err=%v, want ok=true", ok, err)
	}
	ps, ok := m.(partitionSource)
	if !ok {
		t.Fatal("chaos wrapper lost the partitionSource capability")
	}
	servers, ok, err := ps.Partition()
	if err != nil || !ok || len(servers) != 1 || servers[0] != "sv00" {
		t.Fatalf("Partition = %v ok=%v err=%v, want [sv00]", servers, ok, err)
	}
	if _, ok := m.(eventSource); !ok {
		t.Fatal("chaos wrapper lost the eventSource capability")
	}
	if _, ok := m.(fencer); !ok {
		t.Fatal("chaos wrapper lost the fencer capability")
	}

	spec := evenSpec([]string{"sv00"})
	dec, err := m.Submit(req(1, spec, 0))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Server != "sv00" {
		t.Fatalf("Submit placed on %q, want sv00", dec.Server)
	}
}

func TestChaosKillAndSever(t *testing.T) {
	_, m, inj := newChaosMember(t, "m0")
	if err := m.AddServer("sv00"); err != nil {
		t.Fatal(err)
	}
	spec := evenSpec([]string{"sv00"})

	// Kill: every op refused with a reroute-safe unreachable error.
	inj.Kill("m0")
	if _, err := m.Submit(req(1, spec, 0)); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("Submit on killed member = %v, want ErrUnreachable", err)
	}
	if _, err := m.Summary(); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("Summary on killed member = %v, want ErrUnreachable", err)
	}
	rs := m.(relaySource)
	if _, ok, err := rs.RelaySince(0); !ok || !errors.Is(err, ErrUnreachable) {
		// ok must stay true: a transport failure, not "no relay".
		t.Fatalf("RelaySince on killed member = ok=%v err=%v, want ok=true ErrUnreachable", ok, err)
	}
	inj.Revive("m0")
	if _, err := m.Submit(req(2, spec, 1)); err != nil {
		t.Fatalf("Submit after revive: %v", err)
	}

	// Sever the summary channel alone: gossip dark, decisions flow.
	inj.Sever("m0", OpSummary)
	if _, err := m.Summary(); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("Summary on severed channel = %v, want ErrUnreachable", err)
	}
	if _, err := m.Submit(req(3, spec, 2)); err != nil {
		t.Fatalf("Submit must pass a summary-only sever: %v", err)
	}
	inj.Heal("m0")
	if _, err := m.Summary(); err != nil {
		t.Fatalf("Summary after heal: %v", err)
	}
	if got := inj.Dropped("m0"); got != 4 {
		t.Errorf("Dropped = %d, want 4", got)
	}
}

func TestChaosLatencyBudget(t *testing.T) {
	s, err := sched.ByName("HMCT")
	if err != nil {
		t.Fatal(err)
	}
	core, err := agent.New(agent.Config{Scheduler: s, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	inj := NewScriptInjector(10 * time.Millisecond)
	var slept time.Duration
	inj.sleep = func(d time.Duration) { slept += d }
	m := Chaos(NewInProcess("m0", core), inj)
	if err := m.AddServer("sv00"); err != nil {
		t.Fatal(err)
	}
	spec := evenSpec([]string{"sv00"})

	// Latency below the budget: the call is delayed and succeeds.
	inj.SetLatency("m0", 2*time.Millisecond)
	if _, err := m.Submit(req(1, spec, 0)); err != nil {
		t.Fatal(err)
	}
	if slept != 2*time.Millisecond {
		t.Fatalf("slept %v, want 2ms", slept)
	}

	// Latency at/over the budget: the call fails like a dial timeout
	// without sleeping.
	inj.SetLatency("m0", 10*time.Millisecond)
	if _, err := m.Submit(req(2, spec, 1)); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("Submit over budget = %v, want ErrUnreachable", err)
	}
	if slept != 2*time.Millisecond {
		t.Fatalf("over-budget call slept (total %v), want none", slept)
	}
	inj.SetLatency("m0", 0)
	if _, err := m.Submit(req(3, spec, 2)); err != nil {
		t.Fatal(err)
	}
}

// TestChaosThroughDispatcher pins the decorator at its real seam: a
// dispatcher over chaos-wrapped members behaves exactly as over bare
// ones while the injector is quiet, and a killed member is evicted
// after MaxFailures and readmitted on revive + probe.
func TestChaosThroughDispatcher(t *testing.T) {
	now := time.Unix(1000, 0)
	cfg := Config{
		Heuristic:   "HMCT",
		Seed:        7,
		StaleAfter:  10 * time.Second,
		MaxFailures: 2,
		Now:         func() time.Time { return now },
	}
	inj := NewScriptInjector(0)
	members := make([]Member, 2)
	for i := range members {
		s, err := sched.ByName(cfg.Heuristic)
		if err != nil {
			t.Fatal(err)
		}
		core, err := agent.New(agent.Config{Scheduler: s, Seed: cfg.Seed})
		if err != nil {
			t.Fatal(err)
		}
		members[i] = Chaos(NewInProcess(fmt.Sprintf("m%d", i), core), inj)
	}
	d, err := NewWithMembers(cfg, members)
	if err != nil {
		t.Fatal(err)
	}
	servers := []string{"sv00", "sv01", "sv02", "sv03"}
	for i, sv := range servers {
		m := i % 2
		if err := d.members[m].m.AddServer(sv); err != nil {
			t.Fatal(err)
		}
		d.home[sv] = m
		d.counts[m]++
	}
	spec := evenSpec(servers)

	if _, err := d.Submit(req(1, spec, 0)); err != nil {
		t.Fatal(err)
	}

	inj.Kill("m1")
	for i := 2; i <= 6; i++ {
		now = now.Add(time.Second)
		if _, err := d.Submit(req(i, spec, float64(i))); err != nil {
			t.Fatalf("Submit %d with m1 down: %v", i, err)
		}
	}
	if mi := d.Members(); !mi[1].Evicted {
		t.Fatalf("m1 not evicted after sustained kill: %+v", mi[1])
	}

	inj.Revive("m1")
	now = now.Add(time.Hour) // stale summaries + due probe
	d.RefreshSummaries()
	if mi := d.Members(); mi[1].Evicted {
		t.Fatalf("m1 not readmitted after revive: %+v", mi[1])
	}
}
