package agent

import (
	"fmt"

	"casched/internal/sched"
	"casched/internal/task"
)

// This file is the Core's shard surface: the evaluate/commit split a
// dispatch layer (internal/cluster) uses to fan one decision out over
// several cores — each core evaluates the request against its own
// server partition, the dispatcher compares the scored winners and
// commits on exactly one core. Submit remains the single-core
// evaluate+commit under one lock acquisition; these hooks expose the
// same two halves as separate critical sections.

// Candidate is a provisional shard-local decision: the heuristic's
// choice among this core's servers, before any commit. Nothing in the
// core's state changes when a Candidate is produced.
type Candidate struct {
	// Server is the chosen server.
	Server string
	// Score and Tie are the heuristic's objective values
	// (sched.Choice): comparable across cores running the same
	// heuristic, which is what the dispatcher minimizes over.
	// Meaningful only when Scored is true.
	Score, Tie float64
	// Scored reports whether the heuristic implements
	// sched.ScoredScheduler. Unscored candidates (Random, RoundRobin)
	// cannot be compared across cores; dispatchers fall back to
	// rotation.
	Scored bool
}

// Evaluate runs the heuristic for one request against this core's
// servers without committing: no HTM placement, no belief correction,
// no event. ErrUnschedulable means no server of this core solves the
// task — for a shard, a normal "not my partition" condition.
func (c *Core) Evaluate(req Request) (Candidate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ev sched.Evaluator
	if c.htmMgr != nil {
		ev = c.htmMgr
	}
	return c.evaluateLocked(req, ev)
}

// Commit commits a previously evaluated placement on this core:
// HTM commit, prediction tracking, assignment correction, decision
// event — exactly Submit's commit half. The server must still be
// registered and able to solve the task; a shard whose membership
// changed between Evaluate and Commit rejects the commit rather than
// corrupting its state.
func (c *Core) Commit(req Request, server string) (Decision, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Spec == nil {
		return Decision{}, fmt.Errorf("agent: job %d has no spec", req.JobID)
	}
	if _, ok := c.beliefs[server]; !ok {
		return Decision{}, fmt.Errorf("agent: commit of task %d on unregistered server %q",
			req.TaskID, server)
	}
	if _, ok := req.Spec.Cost(server); !ok {
		return Decision{}, fmt.Errorf("agent: server %q cannot solve task %d", server, req.TaskID)
	}
	return c.commitLocked(req, server)
}

// CanSolve reports whether at least one registered server solves the
// task — the dispatcher's shard-eligibility check. It costs at most
// one cost-table probe per registered server and takes no projections.
func (c *Core) CanSolve(spec *task.Spec) bool {
	if spec == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, name := range c.order {
		if _, ok := spec.Cost(name); ok {
			return true
		}
	}
	return false
}

// InFlight returns the number of jobs placed but not yet completed —
// the dispatcher's cheap load signal for routing.
func (c *Core) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.jobs)
}

// MinProjectedReady returns the HTM-backed routing signal: the
// earliest projected instant at which one of this core's servers
// drains its live work (min over the partition of the per-server
// ProjectedReady). A shard with an idle server reports its trace
// time; a uniformly busy shard reports a later date. Projected drain
// instants are absolute experiment dates, so a dispatcher compares
// them across cores against a common anchor (the burst's arrival
// date) regardless of how far each core's trace clock has advanced.
// ok is false for monitor-based heuristics (no HTM) and for a core
// with no servers, where dispatchers fall back to the in-flight
// signal.
func (c *Core) MinProjectedReady() (float64, bool) {
	if c.htmMgr == nil {
		return 0, false
	}
	return c.htmMgr.MinProjectedReady()
}

// ServerCount returns the number of registered servers.
func (c *Core) ServerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.order)
}

// Scheduler returns the configured heuristic.
func (c *Core) Scheduler() sched.Scheduler { return c.cfg.Scheduler }
