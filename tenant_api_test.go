package casched_test

import (
	"errors"
	"testing"

	"casched"
)

// TestParseTenantShares pins the CLI share-map syntax.
func TestParseTenantShares(t *testing.T) {
	shares, err := casched.ParseTenantShares("gold=4, silver=2,bronze=0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"gold": 4, "silver": 2, "bronze": 0.5}
	if len(shares) != len(want) {
		t.Fatalf("shares = %v, want %v", shares, want)
	}
	for k, v := range want {
		if shares[k] != v {
			t.Errorf("shares[%s] = %v, want %v", k, shares[k], v)
		}
	}
	if empty, err := casched.ParseTenantShares("  "); err != nil || empty != nil {
		t.Errorf("blank input = %v, %v, want nil, nil", empty, err)
	}
	for _, bad := range []string{"gold", "gold=", "gold=-1", "=4", "gold=x"} {
		if _, err := casched.ParseTenantShares(bad); err == nil {
			t.Errorf("ParseTenantShares(%q) accepted", bad)
		}
	}
}

// TestPublicAPITenantIntake drives the multi-tenant intake path through
// the facade: shares + admission + rate limit on a single core, shed
// events with their reasons, the error sentinels, and per-tenant gauges
// through the StatsCollector.
func TestPublicAPITenantIntake(t *testing.T) {
	msf, err := casched.NewScheduler("MSF")
	if err != nil {
		t.Fatal(err)
	}
	core, err := casched.NewAgentCore(casched.AgentCoreConfig{Scheduler: msf, Seed: 3},
		casched.WithTenantShares(map[string]float64{"gold": 4, "silver": 1}),
		casched.WithAdmission(true),
		casched.WithIntakeLimit(1, 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	stats := casched.NewStatsCollector()
	defer core.Subscribe(stats.Collect)()
	var sheds []casched.AgentEvent
	defer core.Subscribe(func(ev casched.AgentEvent) {
		if ev.Kind == casched.AgentEventShed {
			sheds = append(sheds, ev)
		}
	})()

	core.AddServer("artimon")
	spec := casched.WasteCPUSpec(400) // ~hundreds of compute seconds
	dec, err := core.Submit(casched.AgentRequest{
		JobID: 1, Spec: spec, Arrival: 0, Tenant: "gold", Deadline: 1e6,
	})
	if err != nil || dec.Server == "" {
		t.Fatalf("feasible submit: dec=%+v err=%v", dec, err)
	}
	// An infeasible deadline sheds with the deadline sentinel.
	if _, err := core.Submit(casched.AgentRequest{
		JobID: 2, Spec: spec, Arrival: 0, Tenant: "gold", Deadline: 1,
	}); !errors.Is(err, casched.ErrDeadlineUnmet) {
		t.Fatalf("tight deadline err = %v, want ErrDeadlineUnmet", err)
	}
	// The burst of 2 is spent; the next arrival at t=0 throttles.
	if _, err := core.Submit(casched.AgentRequest{
		JobID: 3, Spec: spec, Arrival: 0, Tenant: "silver",
	}); !errors.Is(err, casched.ErrThrottled) {
		t.Fatalf("third submit err = %v, want ErrThrottled", err)
	}
	if len(sheds) != 2 ||
		sheds[0].Reason != casched.ShedDeadline ||
		sheds[1].Reason != casched.ShedThrottled {
		t.Fatalf("shed events = %+v, want deadline then throttled", sheds)
	}

	st := stats.Snapshot()
	if st.Sheds != 2 {
		t.Errorf("Stats.Sheds = %d, want 2", st.Sheds)
	}
	var gold casched.TenantStats = st.Tenants["gold"]
	if gold.Decisions != 1 || gold.DeadlineShed != 1 {
		t.Errorf("gold stats = %+v, want 1 decision and 1 deadline shed", gold)
	}
	if st.Tenants["silver"].Throttled != 1 {
		t.Errorf("silver stats = %+v, want 1 throttled", st.Tenants["silver"])
	}
}

// TestPublicAPIClusterTenantOptions pins the dispatch-layer option set:
// WithPlacedWindow is cluster-only, and the tenant options compose with
// a sharded cluster.
func TestPublicAPIClusterTenantOptions(t *testing.T) {
	if _, err := casched.NewAgentCore(casched.AgentCoreConfig{},
		casched.WithPlacedWindow(100)); err == nil {
		t.Error("NewAgentCore accepted WithPlacedWindow")
	}
	cl, err := casched.NewCluster(
		casched.WithShards(2),
		casched.WithHeuristic("hmct"),
		casched.WithSeed(3),
		casched.WithTenantShares(map[string]float64{"gold": 4}),
		casched.WithAdmission(true),
		casched.WithIntakeLimit(100, 100),
		casched.WithPlacedWindow(1000),
	)
	if err != nil {
		t.Fatal(err)
	}
	costs := make(map[string]casched.Cost)
	for i := 0; i < 4; i++ {
		costs[string(rune('a'+i))] = casched.Cost{Compute: 10}
	}
	spec := &casched.Spec{Problem: "p", Variant: 1, CostOn: costs}
	for name := range costs {
		cl.AddServer(name)
	}
	dec, err := cl.Submit(casched.AgentRequest{
		JobID: 1, Spec: spec, Arrival: 0, Tenant: "gold", Deadline: 1e6,
	})
	if err != nil || dec.Server == "" {
		t.Fatalf("cluster submit: dec=%+v err=%v", dec, err)
	}
}

// TestPublicAPIFederationTenantOptions pins the federation option set
// through the facade.
func TestPublicAPIFederationTenantOptions(t *testing.T) {
	f, err := casched.NewFederation(
		casched.WithFedMembers(2),
		casched.WithFedHeuristic("HMCT"),
		casched.WithFedSeed(7),
		casched.WithFedTenantShares(map[string]float64{"gold": 4}),
		casched.WithFedAdmission(true),
		casched.WithFedIntakeLimit(100, 100),
		casched.WithFedPlacedWindow(1000),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	costs := make(map[string]casched.Cost)
	for i := 0; i < 4; i++ {
		costs[string(rune('a'+i))] = casched.Cost{Compute: 10}
	}
	spec := &casched.Spec{Problem: "p", Variant: 1, CostOn: costs}
	for name := range costs {
		if err := f.AddServer(name); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := f.Submit(casched.AgentRequest{
		JobID: 1, Spec: spec, Arrival: 0, Tenant: "gold", Deadline: 1e6,
	})
	if err != nil || dec.Server == "" {
		t.Fatalf("federation submit: dec=%+v err=%v", dec, err)
	}
}
