package sched

import (
	"testing"

	"casched/internal/htm"
	"casched/internal/task"
)

// batchPairSpec builds a spec solvable on both test servers with the
// given compute costs.
func batchPairSpec(fast, slow float64) *task.Spec {
	return &task.Spec{Problem: "t", Variant: int(fast), CostOn: map[string]task.Cost{
		"a": {Compute: fast},
		"b": {Compute: slow},
	}}
}

// TestMinCostBatchSpreadsContendedWave pins the tentpole behavior on
// the smallest instructive instance: two simultaneous tasks, one fast
// server (a) and one slow server (b). Greedy HMCT sends both to a
// (the second still completes sooner on the loaded fast server);
// min-cost assignment spreads the wave when that lowers the summed
// completion objective.
func TestMinCostBatchSpreadsContendedWave(t *testing.T) {
	m := htm.New([]string{"a", "b"})
	// Cost 10 on a, 25 on b. Greedy HMCT: task 1 -> a (finishes at
	// 10); task 2 re-projects and still picks a (shared finish at
	// 20 < 25 on idle b), delaying task 1 to 20 as well — summed
	// completions 40. The matched wave pays {a: 10, b: 25} = 35, so
	// the assignment must use both servers.
	spec := batchPairSpec(10, 25)
	items := []BatchItem{
		{JobID: 1, Task: &task.Task{ID: 1, Spec: spec}, Now: 0, Candidates: []string{"a", "b"}},
		{JobID: 2, Task: &task.Task{ID: 2, Spec: spec}, Now: 0, Candidates: []string{"a", "b"}},
	}
	bs := NewMinCostBatch(NewHMCT())
	ctx := &Context{HTM: m}
	choices, err := bs.ChooseBatch(ctx, items)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for i, c := range choices {
		if c.Server == "" {
			t.Fatalf("item %d deferred in a 2-task/2-server wave", i)
		}
		got[c.Server] = true
	}
	if !got["a"] || !got["b"] {
		t.Errorf("matched wave = %+v, want one task per server", choices)
	}
}

// TestMinCostBatchDefersOverflow: more tasks than servers defers the
// surplus to a later wave instead of dropping or doubling up.
func TestMinCostBatchDefersOverflow(t *testing.T) {
	m := htm.New([]string{"a", "b"})
	spec := batchPairSpec(10, 12)
	items := make([]BatchItem, 3)
	for i := range items {
		items[i] = BatchItem{JobID: i, Task: &task.Task{ID: i, Spec: spec}, Now: 0,
			Candidates: []string{"a", "b"}}
	}
	bs := NewMinCostBatch(NewMSF())
	choices, err := bs.ChooseBatch(&Context{HTM: m}, items)
	if err != nil {
		t.Fatal(err)
	}
	assigned := map[string]int{}
	deferred := 0
	for _, c := range choices {
		if c.Server == "" {
			deferred++
			continue
		}
		assigned[c.Server]++
	}
	if deferred != 1 || assigned["a"] != 1 || assigned["b"] != 1 {
		t.Errorf("choices = %+v: want one task per server and one deferred", choices)
	}
}

// TestMinCostBatchSingleItemMatchesGreedy: a 1-item batch must
// reproduce the wrapped heuristic's decision exactly.
func TestMinCostBatchSingleItemMatchesGreedy(t *testing.T) {
	m := htm.New([]string{"a", "b"})
	spec := batchPairSpec(20, 12)
	ctx := &Context{Now: 0, Task: &task.Task{ID: 7, Spec: spec}, JobID: 7,
		Candidates: []string{"a", "b"}, HTM: m}
	inner := NewHMCT()
	want, err := inner.ChooseScored(ctx)
	if err != nil {
		t.Fatal(err)
	}
	bs := NewMinCostBatch(inner)
	choices, err := bs.ChooseBatch(&Context{HTM: m}, []BatchItem{
		{JobID: 7, Task: ctx.Task, Now: 0, Candidates: ctx.Candidates},
	})
	if err != nil {
		t.Fatal(err)
	}
	if choices[0].Server != want.Server {
		t.Errorf("batch of one chose %q, greedy chose %q", choices[0].Server, want.Server)
	}
	if choices[0].Score != want.Score {
		t.Errorf("batch score %v, greedy score %v", choices[0].Score, want.Score)
	}
}

// TestMinCostBatchCountObjectiveSpreads pins the documented behavior
// for count-valued objectives: under MP (total perturbation) the
// seconds-denominated defer estimate never undercuts a free server,
// so a wave always spreads — the idle slow server has perturbation 0,
// exactly what MP prefers.
func TestMinCostBatchCountObjectiveSpreads(t *testing.T) {
	m := htm.New([]string{"a", "b"})
	spec := batchPairSpec(10, 500) // b is far slower, but idle
	items := []BatchItem{
		{JobID: 1, Task: &task.Task{ID: 1, Spec: spec}, Now: 0, Candidates: []string{"a", "b"}},
		{JobID: 2, Task: &task.Task{ID: 2, Spec: spec}, Now: 0, Candidates: []string{"a", "b"}},
	}
	bs := NewMinCostBatch(NewMP())
	choices, err := bs.ChooseBatch(&Context{HTM: m}, items)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, c := range choices {
		got[c.Server] = true
	}
	if !got["a"] || !got["b"] {
		t.Errorf("MP wave = %+v, want spread over both servers (zero perturbation each)", choices)
	}
}

// TestMinCostBatchName documents the decorated name and delegation.
func TestMinCostBatchName(t *testing.T) {
	bs := NewMinCostBatch(NewMSF())
	if bs.Name() != "MSF+batch" {
		t.Errorf("Name = %q", bs.Name())
	}
	if !UsesHTM(bs) {
		t.Error("MSF+batch should report HTM use")
	}
	if UsesHTM(NewMinCostBatch(NewMCT())) {
		t.Error("MCT+batch should not report HTM use")
	}
}
