package htm

import (
	"math"
	"strings"
	"testing"

	"casched/internal/task"
)

// twoServerUsefulnessExample sets up §2.3's scenario: two identical
// servers; at t=0 task 1 (100s) goes to s1 and task 2 (200s) to s2.
func twoServerUsefulnessExample(t *testing.T) *Manager {
	t.Helper()
	m := New([]string{"s1", "s2"})
	spec1 := &task.Spec{Problem: "p", Variant: 100,
		CostOn: map[string]task.Cost{"s1": {Compute: 100}, "s2": {Compute: 100}}}
	spec2 := &task.Spec{Problem: "p", Variant: 200,
		CostOn: map[string]task.Cost{"s1": {Compute: 200}, "s2": {Compute: 200}}}
	if err := m.Place(1, spec1, 0, "s1"); err != nil {
		t.Fatal(err)
	}
	if err := m.Place(2, spec2, 0, "s2"); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestUsefulnessExample reproduces §2.3 "Usefulness of the HTM": at
// t=80 a 100s task arrives. The HTM knows T1 has 20s left on s1 and T2
// has 120s left on s2, so placing on s1 yields the shorter completion.
func TestUsefulnessExample(t *testing.T) {
	m := twoServerUsefulnessExample(t)
	spec3 := &task.Spec{Problem: "p", Variant: 100,
		CostOn: map[string]task.Cost{"s1": {Compute: 100}, "s2": {Compute: 100}}}

	p1, err := m.Evaluate(3, spec3, 80, "s1")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.Evaluate(3, spec3, 80, "s2")
	if err != nil {
		t.Fatal(err)
	}
	// On s1: share with T1 (20 left): T1 ends at 80+40=120, task3 does
	// 20 by then, 80 left alone -> 200.
	if math.Abs(p1.Completion-200) > 1e-6 {
		t.Errorf("s1 completion = %v, want 200", p1.Completion)
	}
	// On s2: share with T2 (120 left): task3 does 100 of work; shared
	// until one ends: task3 ends first at 80+200=280? task3 needs 100
	// at rate 1/2 until it finishes at 80+200=280; T2 (120) would end
	// at 80+240. So task3 completes at 280.
	if math.Abs(p2.Completion-280) > 1e-6 {
		t.Errorf("s2 completion = %v, want 280", p2.Completion)
	}
	if !(p1.Completion < p2.Completion) {
		t.Error("HTM should prefer s1")
	}
	// Perturbations: on s1, T1 delayed 100->120 (+20). On s2, T2
	// delayed 200->280? T2 has 120 left at 80; shared till task3 done
	// at 280 (T2 did 100, 20 left) -> ends 300, i.e. +100.
	if math.Abs(p1.Perturbation-20) > 1e-6 {
		t.Errorf("s1 perturbation = %v, want 20", p1.Perturbation)
	}
	if math.Abs(p2.Perturbation-100) > 1e-6 {
		t.Errorf("s2 perturbation = %v, want 100", p2.Perturbation)
	}
	if p1.Interfered != 1 || p2.Interfered != 1 {
		t.Errorf("interference counts = %d,%d, want 1,1", p1.Interfered, p2.Interfered)
	}
}

func TestEvaluateDoesNotMutateTrace(t *testing.T) {
	m := twoServerUsefulnessExample(t)
	spec := &task.Spec{Problem: "p", Variant: 1,
		CostOn: map[string]task.Cost{"s1": {Compute: 50}}}
	before, _ := m.PredictedCompletion(1)
	if _, err := m.Evaluate(9, spec, 80, "s1"); err != nil {
		t.Fatal(err)
	}
	after, ok := m.PredictedCompletion(1)
	if !ok || math.Abs(before-after) > 1e-9 {
		t.Errorf("Evaluate mutated the trace: %v -> %v", before, after)
	}
	if _, placed := m.PlacedOn(9); placed {
		t.Error("Evaluate committed a placement")
	}
}

func TestPlaceCommits(t *testing.T) {
	m := twoServerUsefulnessExample(t)
	spec := &task.Spec{Problem: "p", Variant: 1,
		CostOn: map[string]task.Cost{"s1": {Compute: 100}}}
	if err := m.Place(3, spec, 80, "s1"); err != nil {
		t.Fatal(err)
	}
	srv, ok := m.PlacedOn(3)
	if !ok || srv != "s1" {
		t.Errorf("PlacedOn = %q,%v", srv, ok)
	}
	c, ok := m.PredictedCompletion(3)
	if !ok || math.Abs(c-200) > 1e-6 {
		t.Errorf("predicted completion = %v,%v, want 200", c, ok)
	}
	// T1's projection must now reflect the perturbation.
	c1, _ := m.PredictedCompletion(1)
	if math.Abs(c1-120) > 1e-6 {
		t.Errorf("perturbed T1 completion = %v, want 120", c1)
	}
}

func TestPlaceErrors(t *testing.T) {
	m := New([]string{"s1"})
	spec := &task.Spec{Problem: "p", CostOn: map[string]task.Cost{"s1": {Compute: 1}}}
	if err := m.Place(0, spec, 0, "nosuch"); err == nil {
		t.Error("unknown server accepted")
	}
	other := &task.Spec{Problem: "q", CostOn: map[string]task.Cost{"other": {}}}
	if err := m.Place(0, other, 0, "s1"); err == nil {
		t.Error("unsolvable problem accepted")
	}
	if err := m.Place(0, spec, 0, "s1"); err != nil {
		t.Fatal(err)
	}
	if err := m.Place(0, spec, 1, "s1"); err == nil {
		t.Error("duplicate placement accepted")
	}
}

func TestEvaluateAllSkipsInfeasible(t *testing.T) {
	m := New([]string{"s1", "s2"})
	spec := &task.Spec{Problem: "p", CostOn: map[string]task.Cost{"s1": {Compute: 10}}}
	preds, err := m.EvaluateAll(0, spec, 0, []string{"s1", "s2", "ghost"})
	if len(preds) != 1 || preds[0].Server != "s1" {
		t.Errorf("EvaluateAll = %+v", preds)
	}
	// s2 cannot solve the task: a normal skip. ghost is not a tracked
	// server: a surfaced evaluation failure.
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("EvaluateAll error = %v, want unknown-server failure for ghost", err)
	}
}

func TestEvaluateAllNoFeasibleCandidate(t *testing.T) {
	m := New([]string{"s1"})
	spec := &task.Spec{Problem: "p", CostOn: map[string]task.Cost{"elsewhere": {Compute: 10}}}
	preds, err := m.EvaluateAll(0, spec, 0, []string{"s1"})
	if len(preds) != 0 || err != nil {
		t.Errorf("EvaluateAll = %+v, %v; want empty, nil (no solver is not an error)", preds, err)
	}
}

func TestDropServer(t *testing.T) {
	m := New([]string{"s1", "s2"})
	m.DropServer("s1")
	if len(m.Servers()) != 1 || m.Servers()[0] != "s2" {
		t.Errorf("Servers after drop = %v", m.Servers())
	}
	m.DropServer("nosuch") // must not panic
	if _, ok := m.Sim("s1"); ok {
		t.Error("dropped server still accessible")
	}
}

func TestSyncReanchorsTrace(t *testing.T) {
	spec := &task.Spec{Problem: "p", CostOn: map[string]task.Cost{"s1": {Compute: 100}}}

	// Without sync, notifications are ignored.
	open := New([]string{"s1"})
	if err := open.Place(0, spec, 0, "s1"); err != nil {
		t.Fatal(err)
	}
	if err := open.NotifyCompletion(0, 50); err != nil {
		t.Fatal(err)
	}
	c, _ := open.PredictedCompletion(0)
	if math.Abs(c-100) > 1e-6 {
		t.Errorf("open-loop prediction = %v, want 100", c)
	}

	// With sync, the trace re-anchors: the job is done at 50, so a new
	// arrival sees an empty server.
	closed := New([]string{"s1"}, WithSync())
	if err := closed.Place(0, spec, 0, "s1"); err != nil {
		t.Fatal(err)
	}
	if err := closed.NotifyCompletion(0, 50); err != nil {
		t.Fatal(err)
	}
	p, err := closed.Evaluate(1, spec, 60, "s1")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Completion-160) > 1e-6 {
		t.Errorf("post-sync completion = %v, want 160", p.Completion)
	}
	if p.Perturbation != 0 {
		t.Errorf("post-sync perturbation = %v, want 0", p.Perturbation)
	}
	if err := closed.NotifyCompletion(99, 1); err == nil {
		t.Error("unknown job notification accepted under sync")
	}
}

func TestMemoryModelOptionCollapsesProjection(t *testing.T) {
	// valette has 128+126 = 254 MB capacity; four matmul-1800 (74.15 MB
	// each) exceed it. With the memory model the evaluation must
	// signal the collapse via an infinite completion.
	m := New([]string{"valette"}, WithMemoryModel())
	spec := task.Matmul(1800)
	// matmul has no cost entry for valette; craft one.
	spec = &task.Spec{Problem: "matmul", Variant: 1800,
		CostOn:   map[string]task.Cost{"valette": {Compute: 500}},
		MemoryMB: 74.15}
	for i := 0; i < 3; i++ {
		if err := m.Place(i, spec, 0, "valette"); err != nil {
			t.Fatal(err)
		}
	}
	p, err := m.Evaluate(3, spec, 0, "valette")
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p.Completion, 1) {
		t.Errorf("completion = %v, want +Inf (projected collapse)", p.Completion)
	}
	if !math.IsInf(p.Perturbation, 1) {
		t.Errorf("perturbation = %v, want +Inf", p.Perturbation)
	}
}

func TestAdvanceToMonotonic(t *testing.T) {
	m := New([]string{"s1"})
	m.AdvanceTo(100)
	m.AdvanceTo(50) // must be a no-op, not a panic
	if m.Now() != 100 {
		t.Errorf("Now = %v, want 100", m.Now())
	}
}

func TestPredictedCompletionUnknown(t *testing.T) {
	m := New([]string{"s1"})
	if _, ok := m.PredictedCompletion(7); ok {
		t.Error("unknown job has a prediction")
	}
}

func TestSumFlowObjective(t *testing.T) {
	p := Prediction{Flow: 10, Perturbation: 5}
	if p.SumFlowObjective() != 15 {
		t.Errorf("SumFlowObjective = %v", p.SumFlowObjective())
	}
}

// TestAddServerMidRun: a server joining after placements gets a fresh
// trace anchored at the current trace time and is immediately
// evaluable; existing traces are untouched.
func TestAddServerMidRun(t *testing.T) {
	m := twoServerUsefulnessExample(t)
	m.AdvanceTo(80)
	m.AddServer("s3")
	m.AddServer("s1") // idempotent: must not reset s1's trace
	if got := m.Servers(); len(got) != 3 || got[2] != "s3" {
		t.Fatalf("servers = %v", got)
	}
	spec := &task.Spec{Problem: "p", Variant: 100, CostOn: map[string]task.Cost{
		"s1": {Compute: 100}, "s2": {Compute: 100}, "s3": {Compute: 100}}}
	preds, err := m.EvaluateAll(9, spec, 80, []string{"s1", "s2", "s3"})
	if err != nil || len(preds) != 3 {
		t.Fatalf("EvaluateAll = %d preds, %v", len(preds), err)
	}
	// The idle newcomer runs the task unperturbed: completion 180.
	for _, p := range preds {
		if p.Server == "s3" && math.Abs(p.Completion-180) > 1e-9 {
			t.Errorf("s3 completion = %v, want 180", p.Completion)
		}
		// s1 still holds task 1 (20s left at t=80): the trace survived
		// the duplicate AddServer. Shared until t=120, then 80s solo.
		if p.Server == "s1" && math.Abs(p.Completion-200) > 1e-9 {
			t.Errorf("s1 completion = %v, want 200", p.Completion)
		}
	}
}

// TestPlacements: ids of every placed job, ascending.
func TestPlacements(t *testing.T) {
	m := twoServerUsefulnessExample(t)
	ids := m.Placements()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("placements = %v, want [1 2]", ids)
	}
	if n := len(New(nil).Placements()); n != 0 {
		t.Errorf("empty manager has %d placements", n)
	}
}

// TestMinProjectedReady pins the shard-level routing aggregate: the
// minimum over servers of the projected drain instant, with idle
// servers pinning it at the trace time.
func TestMinProjectedReady(t *testing.T) {
	if _, ok := New(nil).MinProjectedReady(); ok {
		t.Error("empty manager reported a projected-ready aggregate")
	}

	// Idle servers: the aggregate is the trace time (0).
	m := New([]string{"s1", "s2"})
	if ready, ok := m.MinProjectedReady(); !ok || ready != 0 {
		t.Errorf("idle aggregate = %v, %v; want 0, true", ready, ok)
	}

	// Load s1 with a 100s task: s2 stays idle, so the aggregate stays
	// at the trace time.
	spec := &task.Spec{Problem: "p", Variant: 100,
		CostOn: map[string]task.Cost{"s1": {Compute: 100}, "s2": {Compute: 100}}}
	if err := m.Place(1, spec, 0, "s1"); err != nil {
		t.Fatal(err)
	}
	if ready, ok := m.MinProjectedReady(); !ok || ready != 0 {
		t.Errorf("one-busy aggregate = %v, %v; want 0 (s2 idle)", ready, ok)
	}

	// Load s2 with a 40s task: now the earliest drain is s2's at 40,
	// and it must agree with the per-server ProjectedReady.
	if err := m.Place(2, spec2Cost40(), 0, "s2"); err != nil {
		t.Fatal(err)
	}
	ready, ok := m.MinProjectedReady()
	if !ok || math.Abs(ready-40) > 1e-9 {
		t.Errorf("aggregate = %v, %v; want 40", ready, ok)
	}
	perServer, _ := m.ProjectedReady("s2")
	if math.Abs(ready-perServer) > 1e-9 {
		t.Errorf("aggregate %v != min per-server %v", ready, perServer)
	}
}

// spec2Cost40 is a 40s task solvable on s2 only.
func spec2Cost40() *task.Spec {
	return &task.Spec{Problem: "p", Variant: 40,
		CostOn: map[string]task.Cost{"s2": {Compute: 40}}}
}
