// Package cluster implements the sharded dispatch layer over the
// agent core: N independent agent.Core shards, each owning a partition
// of the server pool, behind one Cluster with the same driving surface
// as a single core — membership, Submit/SubmitBatch, Complete/Report
// feedback, and one merged event stream.
//
// The paper's single central agent is the scalability ceiling of the
// client-agent-server model: every decision consults every server's
// trace under one lock. Sharding partitions the pool (a pluggable
// ShardPolicy: hash, least-loaded, name-class affinity), so a
// decision's cost scales with the shard's candidate set instead of the
// whole pool, and independent shards evaluate concurrently. The
// dispatch layer routes work two ways:
//
//   - Submit fans the request out: every shard evaluates it against
//     its own partition (agent.Core.Evaluate — no commit), the
//     dispatcher compares the scored winners (sched.ScoredScheduler)
//     and commits on exactly one shard. For partition-decomposable
//     objectives (HMCT's completion date, MCT's estimate, MSF's
//     sum-flow...) this reproduces the centralized decision up to
//     cross-shard ties, at full fan-out evaluation cost.
//
//   - SubmitBatch routes a burst hierarchically by
//     power-of-two-choices over HTM-backed shard scores: the
//     in-flight leader and one uniformly sampled shard are compared
//     on their projected backlog at the burst's arrival (min
//     ProjectedReady over the partition, read from cached drain
//     memos) and the burst goes to the winner, which pipelines it
//     through its shard-local batch prediction cache.
//     Decision cost per burst is one candidate pass over one shard
//     rather than the whole pool — the throughput path, trading the
//     centralized greedy order across bursts for shard-local
//     optimality (the classic hierarchical-agent design; see
//     BenchmarkClusterSubmitBatch for the scaling curves). With
//     WithBatchAssignment the routed shard additionally places the
//     burst as true k-task min-cost waves instead of greedily.
//
// With one shard both paths degenerate exactly to the single core:
// the parity test pins that a 1-shard Cluster reproduces
// agent.Core's placement sequence decision for decision.
//
// Membership is live: AddServer routes through the policy,
// RemoveServer withdraws, and Rebalance migrates servers between
// shards to level partition sizes (a migrated server starts a fresh
// trace and belief on its new shard, like a server that re-registered;
// in-flight jobs keep completing through their placing shard).
// Policies that report AutoBalance rebalance automatically after
// removals.
//
// The Cluster is safe for concurrent use. Cluster-level submissions
// serialize on the dispatch lock; completions and reports only take
// the owning shard's lock, so feedback flows concurrently with
// evaluation on other shards.
package cluster

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"

	"casched/internal/agent"
	"casched/internal/fair"
	"casched/internal/sched"
	"casched/internal/stats"
)

// placedRec is one dispatcher placement record: the shard (or member)
// that committed a job and when, for window-bounded retention.
type placedRec struct {
	shard int
	at    float64
}

// tieEps mirrors sched's tie tolerance for cross-shard comparisons.
const tieEps = 1e-9

// Config parameterizes a Cluster. Most callers use New with options.
type Config struct {
	// Shards is the number of agent cores (default 1).
	Shards int
	// Policy assigns servers to shards (default Hash()).
	Policy ShardPolicy
	// Core is the per-shard core template: seed, HTM options, log.
	// Its Scheduler field is used as the shared heuristic instance for
	// a single shard; multi-shard clusters need per-shard instances
	// (see NewScheduler).
	Core agent.Config
	// NewScheduler constructs one heuristic instance per shard
	// (stateful heuristics must not be shared across shard locks).
	// Nil derives a factory from Core.Scheduler's registry name.
	NewScheduler func() (sched.Scheduler, error)
	// IntakeRate, when positive, bounds the cluster's raw intake with
	// one dispatch-level token bucket of IntakeRate tasks per
	// experiment second and burst capacity IntakeBurst (default
	// max(IntakeRate, 1)): exactly one limiter per deployment, however
	// many shards. Refused requests are shed with agent.ErrThrottled
	// and an agent.EventShed on the merged stream.
	IntakeRate  float64
	IntakeBurst float64
	// PlacedWindow, when positive, bounds the dispatcher's job→shard
	// placement records to a trailing window of experiment seconds:
	// records older than the window are swept, so a long-lived
	// deployment whose completion messages occasionally go missing
	// holds dispatch memory proportional to the window, not the run.
	// Completions for swept jobs fall back to the server's current
	// shard. Zero keeps records until their completion arrives.
	PlacedWindow float64
}

// Option configures a Cluster (and, through CoreConfig, a single
// agent core) — the one construction idiom of the public facade.
type Option func(*Config)

// WithShards sets the number of agent-core shards.
func WithShards(n int) Option { return func(c *Config) { c.Shards = n } }

// WithPolicy sets the server-to-shard assignment policy.
func WithPolicy(p ShardPolicy) Option { return func(c *Config) { c.Policy = p } }

// WithHeuristic selects the scheduling heuristic by registry name
// (case-insensitive: MCT, HMCT, MP, MSF, ...), constructing one
// instance per shard.
func WithHeuristic(name string) Option {
	return func(c *Config) {
		c.NewScheduler = func() (sched.Scheduler, error) { return sched.ByName(name) }
	}
}

// WithScheduler pins a heuristic instance (single-shard, or as the
// name source for per-shard reconstruction).
func WithScheduler(s sched.Scheduler) Option { return func(c *Config) { c.Core.Scheduler = s } }

// WithSchedulerFactory sets an explicit per-shard heuristic factory,
// for heuristics outside the registry.
func WithSchedulerFactory(f func() (sched.Scheduler, error)) Option {
	return func(c *Config) { c.NewScheduler = f }
}

// WithSeed seeds each shard's decision randomness.
func WithSeed(seed uint64) Option { return func(c *Config) { c.Core.Seed = seed } }

// WithHTMWorkers bounds each shard's HTM evaluation worker pool
// (0 = GOMAXPROCS).
func WithHTMWorkers(n int) Option { return func(c *Config) { c.Core.HTMWorkers = n } }

// WithHTMRetention bounds each shard's HTM trace history to the given
// number of experiment seconds (see agent.Config.HTMRetention); zero
// keeps the unbounded paper behavior.
func WithHTMRetention(seconds float64) Option {
	return func(c *Config) { c.Core.HTMRetention = seconds }
}

// WithHTMSync enables HTM↔execution synchronization on every shard.
func WithHTMSync(on bool) Option { return func(c *Config) { c.Core.HTMSync = on } }

// WithBatchAssignment opts every shard's SubmitBatch into true k-task
// scheduling: batches are placed wave by wave through a min-cost
// assignment over the shared prediction matrix instead of greedily
// task by task (agent.Config.BatchAssignment). Requires a heuristic
// with a comparable objective.
func WithBatchAssignment(on bool) Option { return func(c *Config) { c.Core.BatchAssignment = on } }

// WithTenantShares turns on weighted fair-share arbitration of
// multi-tenant batches (agent.Config.TenantShares): each shard's
// intake arbiter offers tasks to the heuristic in fair-clock order
// across tenants. Keys are tenant paths ("gold", "gold/alice"),
// values share weights; a non-nil empty map enables arbitration with
// equal shares.
func WithTenantShares(shares map[string]float64) Option {
	return func(c *Config) { c.Core.TenantShares = shares }
}

// WithAdmission turns deadline-aware admission control on or off
// (agent.Config.Admission): requests whose deadline no candidate's
// predicted completion meets are shed with agent.ErrDeadlineUnmet.
func WithAdmission(on bool) Option { return func(c *Config) { c.Core.Admission = on } }

// WithRelay turns the federation event relay ledger on or off on each
// core (agent.Config.Relay): placements and completions are appended
// to a bounded sequence-numbered ledger a federation dispatcher can
// stream to keep near-fresh member views while degraded.
func WithRelay(on bool) Option { return func(c *Config) { c.Core.Relay = on } }

// WithIntakeLimit bounds raw intake with one dispatch-level token
// bucket of rate tasks per experiment second and burst capacity burst
// (burst <= 0 defaults to max(rate, 1)). Applied to NewAgentCore it
// becomes the core's own bucket; on a cluster it sits in front of the
// dispatch layer, so a deployment has exactly one limiter regardless
// of shard count.
func WithIntakeLimit(rate, burst float64) Option {
	return func(c *Config) { c.IntakeRate, c.IntakeBurst = rate, burst }
}

// WithPlacedWindow bounds the dispatcher's job→shard (or, on a
// federation, job→member) placement records to a trailing
// experiment-time window; see Config.PlacedWindow.
func WithPlacedWindow(seconds float64) Option {
	return func(c *Config) { c.PlacedWindow = seconds }
}

// schedulerFor resolves one shard's heuristic instance.
func (cfg *Config) schedulerFor() (sched.Scheduler, error) {
	if cfg.NewScheduler != nil {
		return cfg.NewScheduler()
	}
	if cfg.Core.Scheduler == nil {
		return nil, errors.New("cluster: config needs a heuristic (WithHeuristic)")
	}
	if cfg.Shards <= 1 {
		return cfg.Core.Scheduler, nil
	}
	// Multi-shard: heuristics can carry per-instance state (RoundRobin,
	// SA) and shards evaluate concurrently, so each shard needs its own
	// instance; the registry reconstructs by name — but only when the
	// caller's instance IS a registry default, otherwise reconstruction
	// would silently drop its configuration (KPB{K: 20}, MP{Tie:
	// TieRandom}, ...).
	s, err := sched.ByName(cfg.Core.Scheduler.Name())
	if err != nil {
		return nil, fmt.Errorf("cluster: cannot build per-shard instances of %q: %w "+
			"(use WithSchedulerFactory)", cfg.Core.Scheduler.Name(), err)
	}
	if !reflect.DeepEqual(s, cfg.Core.Scheduler) {
		return nil, fmt.Errorf("cluster: scheduler %q carries non-default configuration; "+
			"per-shard instances need WithSchedulerFactory", cfg.Core.Scheduler.Name())
	}
	return s, nil
}

// CoreConfig applies cluster options to a single-core configuration —
// how the facade's NewAgentCore shares the option idiom. Options that
// only make sense on a cluster (WithShards>1, WithPolicy) are
// rejected.
func CoreConfig(base agent.Config, opts ...Option) (agent.Config, error) {
	cfg := Config{Shards: 1, Core: base}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Shards != 1 {
		return agent.Config{}, fmt.Errorf("agent: a core is single-shard; use NewCluster(WithShards(%d))", cfg.Shards)
	}
	if cfg.Policy != nil {
		return agent.Config{}, errors.New("agent: WithShardPolicy applies to NewCluster, not NewAgentCore")
	}
	if cfg.PlacedWindow != 0 {
		return agent.Config{}, errors.New("agent: WithPlacedWindow applies to dispatch layers, not NewAgentCore")
	}
	// The dispatch-level intake limit becomes the single core's own
	// bucket: one limiter per deployment either way.
	if cfg.IntakeRate > 0 {
		cfg.Core.IntakeRate, cfg.Core.IntakeBurst = cfg.IntakeRate, cfg.IntakeBurst
	}
	s, err := cfg.schedulerFor()
	if err != nil {
		return agent.Config{}, err
	}
	cfg.Core.Scheduler = s
	return cfg.Core, nil
}

// Cluster is the sharded agent: N cores behind one dispatch layer.
// Construct with New.
type Cluster struct {
	policy ShardPolicy
	shards []*agent.Core

	// mu is the dispatch lock: membership, routing state and
	// cluster-level submissions.
	mu     sync.Mutex
	home   map[string]int    // server name -> shard index
	counts []int             // servers per shard
	placed map[int]placedRec // jobID -> placement record, evicted on completion
	rr     int               // rotation cursor for unscored heuristics
	rng    *stats.RNG        // power-of-two-choices sampling for batch routing
	// bucket is the dispatch-level intake limiter (nil = unlimited);
	// placedWindow/placedSwept bound the placed map (see
	// Config.PlacedWindow).
	bucket       *fair.TokenBucket
	placedWindow float64
	placedSwept  float64

	// emu guards the merged event stream (leaf lock: taken inside
	// shard emits, never the other way around).
	emu     sync.Mutex
	subs    map[int]func(agent.Event)
	nextSub int

	// Persistent fan-out workers: one goroutine per shard, fed through
	// fanChans with pointers into the reused fanCalls arena, so the
	// per-submit fan-out neither spawns goroutines nor allocates result
	// slices. Started lazily on the first multi-shard fan-out (fanOnce);
	// single-shard clusters never start them. Close stops them.
	fanOnce  sync.Once
	fanChans []chan *fanoutCall
	fanCalls []fanoutCall
	fanWG    sync.WaitGroup
}

// fanoutCall is one shard's slot in the reused fan-out arena.
type fanoutCall struct {
	req  agent.Request
	cand agent.Candidate
	err  error
	wg   *sync.WaitGroup
}

// New constructs a Cluster from functional options.
func New(opts ...Option) (*Cluster, error) {
	cfg := Config{Shards: 1}
	for _, o := range opts {
		o(&cfg)
	}
	return NewFromConfig(cfg)
}

// NewFromConfig constructs a Cluster from an explicit Config.
func NewFromConfig(cfg Config) (*Cluster, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("cluster: needs at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.Policy == nil {
		cfg.Policy = Hash()
	}
	cl := &Cluster{
		policy:       cfg.Policy,
		shards:       make([]*agent.Core, cfg.Shards),
		home:         make(map[string]int),
		counts:       make([]int, cfg.Shards),
		placed:       make(map[int]placedRec),
		subs:         make(map[int]func(agent.Event)),
		rng:          stats.NewRNG(cfg.Core.Seed ^ 0x9e3779b97f4a7c15),
		placedWindow: cfg.PlacedWindow,
	}
	if cfg.IntakeRate > 0 {
		cl.bucket = fair.NewTokenBucket(cfg.IntakeRate, cfg.IntakeBurst)
	}
	for i := range cl.shards {
		s, err := cfg.schedulerFor()
		if err != nil {
			return nil, err
		}
		coreCfg := cfg.Core
		coreCfg.Scheduler = s
		core, err := agent.New(coreCfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		cl.shards[i] = core
		core.Subscribe(cl.forward)
	}
	return cl, nil
}

// forward relays one shard event into the merged stream. It runs on
// the emitting shard's goroutine with that shard's lock held; emu
// serializes deliveries, so every subscriber observes one total order
// that preserves each shard's commit order.
func (cl *Cluster) forward(ev agent.Event) {
	cl.emu.Lock()
	defer cl.emu.Unlock()
	for _, fn := range cl.subs {
		fn(ev)
	}
}

// Subscribe registers an observer on the merged event stream of every
// shard and returns its cancel function. Deliveries are serialized
// (one total order, per-shard commit order preserved); callbacks must
// be fast and must not call back into the Cluster.
func (cl *Cluster) Subscribe(fn func(agent.Event)) (cancel func()) {
	cl.emu.Lock()
	defer cl.emu.Unlock()
	id := cl.nextSub
	cl.nextSub++
	cl.subs[id] = fn
	return func() {
		cl.emu.Lock()
		defer cl.emu.Unlock()
		delete(cl.subs, id)
	}
}

// NumShards returns the number of agent-core shards.
func (cl *Cluster) NumShards() int { return len(cl.shards) }

// Shard exposes one shard's core for inspection (Gantt extraction,
// accuracy studies) — not for driving; use the Cluster surface.
func (cl *Cluster) Shard(i int) *agent.Core { return cl.shards[i] }

// UsesHTM reports whether the configured heuristic consumes the HTM.
func (cl *Cluster) UsesHTM() bool { return cl.shards[0].UsesHTM() }

// AddServer registers a server, routed to a shard by the policy.
// Idempotent by name.
func (cl *Cluster) AddServer(name string) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if _, ok := cl.home[name]; ok {
		return
	}
	sh := ClampIndex(cl.policy.Assign(name, cl.counts), len(cl.shards))
	cl.home[name] = sh
	cl.counts[sh]++
	cl.shards[sh].AddServer(name)
}

// RemoveServer withdraws a server from its shard (collapse,
// decommission). Policies that auto-balance trigger a rebalance when
// partition sizes drift apart.
func (cl *Cluster) RemoveServer(name string) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	sh, ok := cl.home[name]
	if !ok {
		return
	}
	delete(cl.home, name)
	cl.counts[sh]--
	cl.shards[sh].RemoveServer(name)
	if ab, ok := cl.policy.(AutoBalancer); ok && ab.AutoBalance() {
		cl.rebalanceLocked()
	}
}

// Rebalance migrates servers from over-full to under-full shards until
// partition sizes differ by at most one. A migrated server starts a
// fresh HTM trace and belief on its new shard — exactly a server
// re-registering — while its in-flight jobs keep resolving through the
// shard that placed them.
func (cl *Cluster) Rebalance() (moved int) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.rebalanceLocked()
}

// rebalanceLocked implements Rebalance. Caller holds cl.mu.
func (cl *Cluster) rebalanceLocked() (moved int) {
	repaired := false
	for {
		maxI, minI := 0, 0
		for i, c := range cl.counts {
			if c > cl.counts[maxI] {
				maxI = i
			}
			if c < cl.counts[minI] {
				minI = i
			}
		}
		if cl.counts[maxI]-cl.counts[minI] < 2 {
			return moved
		}
		// Deterministic victim: the lexicographically last server of
		// the over-full shard.
		victim, found := "", false
		for name, sh := range cl.home {
			if sh == maxI && (!found || name > victim) {
				victim, found = name, true
			}
		}
		if !found {
			// cl.counts says shard maxI is over-full but cl.home maps
			// no server to it: the routing state disagrees with
			// itself. Rebuild counts from home (the authoritative map)
			// once and retry; if the disagreement persists, stop
			// rather than loop forever on a phantom victim.
			if repaired {
				return moved
			}
			repaired = true
			for i := range cl.counts {
				cl.counts[i] = 0
			}
			for _, sh := range cl.home {
				if sh >= 0 && sh < len(cl.counts) {
					cl.counts[sh]++
				}
			}
			continue
		}
		cl.shards[maxI].RemoveServer(victim)
		cl.shards[minI].AddServer(victim)
		cl.home[victim] = minI
		cl.counts[maxI]--
		cl.counts[minI]++
		moved++
	}
}

// Servers returns every registered server in sorted order.
func (cl *Cluster) Servers() []string {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	out := make([]string, 0, len(cl.home))
	for name := range cl.home {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ShardOf returns the shard a server is assigned to.
func (cl *Cluster) ShardOf(server string) (int, bool) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	sh, ok := cl.home[server]
	return sh, ok
}

// LoadEstimate returns the owning shard's belief of the server's load.
func (cl *Cluster) LoadEstimate(server string) float64 {
	cl.mu.Lock()
	sh, ok := cl.home[server]
	cl.mu.Unlock()
	if !ok {
		return 0
	}
	return cl.shards[sh].LoadEstimate(server)
}

// InFlight returns the number of placed-but-uncompleted jobs across
// all shards.
func (cl *Cluster) InFlight() int {
	n := 0
	for _, core := range cl.shards {
		n += core.InFlight()
	}
	return n
}

// shed synthesizes a dispatch-level shed event into the merged stream.
// Used for refusals the shards never see (the cluster's own intake
// bucket) or that no single shard owns (fan-out deadline refusals,
// where shards only evaluate and must not emit).
func (cl *Cluster) shed(req agent.Request, reason string) {
	cl.forward(agent.Event{
		Kind:     agent.EventShed,
		Time:     req.Arrival,
		JobID:    req.JobID,
		TaskID:   req.TaskID,
		Attempt:  req.Attempt,
		Tenant:   req.Tenant,
		Deadline: req.Deadline,
		Reason:   reason,
	})
}

// notePlacedLocked records which shard committed a job, sweeping
// expired records when a retention window is set. Caller holds cl.mu.
func (cl *Cluster) notePlacedLocked(jobID, sh int, at float64) {
	cl.placed[jobID] = placedRec{shard: sh, at: at}
	cl.sweepPlacedLocked(at)
}

// sweepPlacedLocked evicts placement records older than the retention
// window. Amortized: the full scan runs at most twice per window.
// Caller holds cl.mu.
func (cl *Cluster) sweepPlacedLocked(now float64) {
	if cl.placedWindow <= 0 || now-cl.placedSwept < cl.placedWindow/2 {
		return
	}
	cl.placedSwept = now
	cutoff := now - cl.placedWindow
	for id, rec := range cl.placed {
		if rec.at < cutoff {
			delete(cl.placed, id)
		}
	}
}

// Submit routes one task: every shard evaluates the request against
// its own partition (fan-out, no commit), the scored winners are
// compared, and the placement commits on exactly one shard. Heuristics
// without a comparable objective (Random, RoundRobin, wrappers outside
// sched.ScoredScheduler) are instead routed whole to a rotating
// eligible shard — fanning them out would advance stateful heuristics
// on shards that never commit and starve servers. See the package
// comment for the decision-quality contract.
//
// With an intake limit configured, requests the dispatch-level bucket
// refuses are shed with agent.ErrThrottled before any shard is
// consulted. With admission on, a request no shard can finish by its
// deadline is shed with agent.ErrDeadlineUnmet.
func (cl *Cluster) Submit(req agent.Request) (agent.Decision, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.bucket != nil && !cl.bucket.Take(req.Arrival) {
		cl.shed(req, agent.ShedThrottled)
		return agent.Decision{}, fmt.Errorf("cluster: job %d: %w", req.JobID, agent.ErrThrottled)
	}
	if len(cl.shards) == 1 {
		return cl.shards[0].Submit(req)
	}
	if _, scored := cl.shards[0].Scheduler().(sched.ScoredScheduler); !scored {
		return cl.submitRotateLocked(req)
	}
	dec, _, err := cl.submitFanoutLocked(req)
	return dec, err
}

// submitRotateLocked delegates one whole decision to a rotating
// eligible shard; only that shard's heuristic state advances. Caller
// holds cl.mu.
func (cl *Cluster) submitRotateLocked(req agent.Request) (agent.Decision, error) {
	eligible := make([]int, 0, len(cl.shards))
	for i, core := range cl.shards {
		if cl.counts[i] > 0 && core.CanSolve(req.Spec) {
			eligible = append(eligible, i)
		}
	}
	if len(eligible) == 0 {
		return agent.Decision{}, agent.ErrUnschedulable
	}
	sh := eligible[cl.rr%len(eligible)]
	cl.rr++
	dec, err := cl.shards[sh].Submit(req)
	if err != nil {
		return agent.Decision{}, err
	}
	cl.notePlacedLocked(req.JobID, sh, req.Arrival)
	return dec, nil
}

// submitFanoutLocked is the fan-out/commit-on-winner path. Caller
// holds cl.mu.
//
// Error contract (mirroring htm.Manager.EvaluateAll): as long as one
// shard produces a winner the decision commits and per-shard
// evaluation failures are suppressed — a shard that cannot evaluate
// excludes only its own partition from the candidate set. Shard errors
// surface only when every shard fails.
func (cl *Cluster) submitFanoutLocked(req agent.Request) (agent.Decision, int, error) {
	cl.fanOnce.Do(cl.startFanoutWorkers)
	cl.fanWG.Add(len(cl.shards))
	for i := range cl.shards {
		c := &cl.fanCalls[i]
		c.req = req
		c.cand, c.err = agent.Candidate{}, nil
		c.wg = &cl.fanWG
		cl.fanChans[i] <- c
	}
	cl.fanWG.Wait()

	winner := -1
	deadlineBlocked := false
	var best agent.Candidate
	var errs []error
	for i := range cl.fanCalls {
		r := &cl.fanCalls[i]
		if r.err != nil {
			switch {
			case errors.Is(r.err, agent.ErrDeadlineUnmet):
				// A per-shard exclusion, like ErrUnschedulable: another
				// shard's partition may still meet the deadline. Shards
				// do not emit on Evaluate, so if every shard is blocked
				// the dispatcher synthesizes the shed below.
				deadlineBlocked = true
			case !errors.Is(r.err, agent.ErrUnschedulable):
				errs = append(errs, fmt.Errorf("cluster: shard %d: %w", i, r.err))
			}
			continue
		}
		if winner < 0 || BetterCandidate(r.cand, best) {
			winner, best = i, r.cand
		}
	}
	if winner < 0 {
		if len(errs) > 0 {
			return agent.Decision{}, -1, errors.Join(errs...)
		}
		if deadlineBlocked {
			cl.shed(req, agent.ShedDeadline)
			return agent.Decision{}, -1, fmt.Errorf("cluster: job %d: %w", req.JobID, agent.ErrDeadlineUnmet)
		}
		return agent.Decision{}, -1, agent.ErrUnschedulable
	}
	dec, err := cl.shards[winner].Commit(req, best.Server)
	if err != nil {
		return agent.Decision{}, -1, fmt.Errorf("cluster: commit on shard %d: %w", winner, err)
	}
	cl.notePlacedLocked(req.JobID, winner, req.Arrival)
	return dec, winner, nil
}

// startFanoutWorkers launches the persistent per-shard evaluation
// workers. Each worker serves one shard for the dispatcher's lifetime,
// so a submit's fan-out costs len(shards) channel sends on warm
// goroutines rather than len(shards) goroutine spawns plus a results
// slice. Called exactly once, under cl.mu, via fanOnce.
func (cl *Cluster) startFanoutWorkers() {
	cl.fanCalls = make([]fanoutCall, len(cl.shards))
	cl.fanChans = make([]chan *fanoutCall, len(cl.shards))
	for i := range cl.shards {
		ch := make(chan *fanoutCall)
		cl.fanChans[i] = ch
		core := cl.shards[i]
		go func() {
			for call := range ch {
				call.cand, call.err = core.Evaluate(call.req)
				call.wg.Done()
			}
		}()
	}
}

// Close stops the persistent fan-out workers, if any were started. The
// dispatcher must not be used after Close; it is safe to call on a
// dispatcher that never fanned out (including single-shard clusters)
// and safe to call at most once.
func (cl *Cluster) Close() {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for _, ch := range cl.fanChans {
		close(ch)
	}
	cl.fanChans = nil
}

// SubmitBatch routes a burst of simultaneous arrivals hierarchically
// by power-of-two-choices over HTM-backed shard scores: the in-flight
// leader and one uniformly sampled other shard are compared on their
// projected backlog at the burst's arrival (min ProjectedReady over
// the partition minus the arrival date — read from O(1) cached drain
// memos, no candidate projections), and the batch goes to the winner,
// which pipelines it through one lock acquisition and its shard-local
// batch prediction cache (see batchOrderLocked for the scoring and
// tie rules). Only those two shards pay an HTM read per burst; the
// cheap in-flight ranking still scans every shard, as the previous
// router did. Monitor-only heuristics (no HTM) compare on the
// in-flight/partition-size signal directly. Requests the routed shard
// cannot solve fall to the next-best eligible shard by the cheap
// ranking, so a mixed batch fans out only as far as eligibility
// forces it. Failed requests yield zero Decisions with their errors
// joined, like agent.Core.SubmitBatch.
// With an intake limit configured, the dispatch-level bucket gates the
// whole batch first: refused requests are shed with agent.ErrThrottled
// before any shard is consulted (including the single-shard fast
// path), and the admitted remainder is routed as usual. Per-shard
// admission and fair-share arbitration run inside each routed
// sub-batch, on the shard that owns it.
func (cl *Cluster) SubmitBatch(reqs []agent.Request) ([]agent.Decision, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var errs []error
	live, keep := reqs, []int(nil)
	if cl.bucket != nil {
		live = make([]agent.Request, 0, len(reqs))
		keep = make([]int, 0, len(reqs))
		for i, req := range reqs {
			if !cl.bucket.Take(req.Arrival) {
				cl.shed(req, agent.ShedThrottled)
				errs = append(errs, fmt.Errorf("cluster: batch job %d: %w", req.JobID, agent.ErrThrottled))
				continue
			}
			live = append(live, req)
			keep = append(keep, i)
		}
	}
	// scatter maps shard results for the admitted sub-slice back to the
	// caller's positions when the gate dropped anything.
	scatter := func(decs []agent.Decision) []agent.Decision {
		if keep == nil {
			return decs
		}
		out := make([]agent.Decision, len(reqs))
		for k, pos := range keep {
			out[pos] = decs[k]
		}
		return out
	}
	if len(cl.shards) == 1 {
		decs, err := cl.shards[0].SubmitBatch(live)
		if err != nil {
			errs = append(errs, err)
		}
		return scatter(decs), errors.Join(errs...)
	}
	at := 0.0
	if len(live) > 0 {
		at = live[0].Arrival
	}
	order := cl.batchOrderLocked(at)

	assign := make([]int, len(live))
	subBatches := make(map[int][]int) // shard -> positions within live
	for i, req := range live {
		assign[i] = -1
		for _, sh := range order {
			if cl.counts[sh] > 0 && cl.shards[sh].CanSolve(req.Spec) {
				assign[i] = sh
				subBatches[sh] = append(subBatches[sh], i)
				break
			}
		}
		if assign[i] < 0 {
			errs = append(errs, fmt.Errorf("cluster: batch job %d: %w", req.JobID, agent.ErrUnschedulable))
		}
	}

	out := make([]agent.Decision, len(live))
	shardErrs := make(map[int]error, len(subBatches))
	var wg sync.WaitGroup
	var emu sync.Mutex
	for sh, positions := range subBatches {
		wg.Add(1)
		go func(sh int, positions []int) {
			defer wg.Done()
			sub := make([]agent.Request, len(positions))
			for k, pos := range positions {
				sub[k] = live[pos]
			}
			decs, err := cl.shards[sh].SubmitBatch(sub)
			for k, pos := range positions {
				out[pos] = decs[k]
			}
			if err != nil {
				emu.Lock()
				shardErrs[sh] = err
				emu.Unlock()
			}
		}(sh, positions)
	}
	wg.Wait()
	for sh, err := range shardErrs {
		errs = append(errs, fmt.Errorf("cluster: shard %d: %w", sh, err))
	}
	for i, d := range out {
		if d.Server != "" {
			cl.notePlacedLocked(live[i].JobID, assign[i], live[i].Arrival)
		}
	}
	return scatter(out), errors.Join(errs...)
}

// batchOrderLocked returns the shard indexes in routing-preference
// order for one batch arriving at date at: the shared
// power-of-two-choices ranking (TwoChoicesOrder) over the shards'
// live signals — in-flight counts and the O(1) min-ProjectedReady
// drain memo from the HTM baseline cache. Caller holds cl.mu.
func (cl *Cluster) batchOrderLocked(at float64) []int {
	idx := make([]int, len(cl.shards))
	for i := range idx {
		idx[i] = i
	}
	return TwoChoicesOrder(idx,
		func(i int) int { return cl.counts[i] },
		func(i int) int { return cl.shards[i].InFlight() },
		func(i int) (float64, bool) { return cl.shards[i].MinProjectedReady() },
		at, cl.rng)
}

// Complete feeds a completion message to the shard that placed the
// job (falling back to the server's current shard for jobs the
// dispatcher never saw).
func (cl *Cluster) Complete(jobID int, server string, at float64) agent.Completion {
	cl.mu.Lock()
	sh := 0
	if rec, ok := cl.placed[jobID]; ok {
		sh = rec.shard
		delete(cl.placed, jobID)
	} else if h, okh := cl.home[server]; okh {
		// Unrouted jobs — and routed ones whose record aged out of the
		// retention window — resolve through the server's current
		// shard: the degraded-but-correct path as long as the server
		// has not migrated since placement.
		sh = h
	}
	core := cl.shards[sh]
	cl.mu.Unlock()
	return core.Complete(jobID, server, at)
}

// Report feeds a monitor report to the server's shard; reports for
// unknown servers are dropped, as the core itself drops them.
func (cl *Cluster) Report(server string, load, at float64) {
	cl.mu.Lock()
	sh, ok := cl.home[server]
	cl.mu.Unlock()
	if ok {
		cl.shards[sh].Report(server, load, at)
	}
}

// placedShard resolves the shard that placed a job, when the
// dispatcher routed it (and the record has not aged out).
func (cl *Cluster) placedShard(jobID int) (int, bool) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	rec, ok := cl.placed[jobID]
	return rec.shard, ok
}

// TenantInFlight merges every shard's per-tenant in-flight counts —
// the fair-share signal a federation dispatcher reads from member
// summaries.
func (cl *Cluster) TenantInFlight() map[string]int {
	out := make(map[string]int)
	for _, core := range cl.shards {
		for tenant, n := range core.TenantInFlight() {
			out[tenant] += n
		}
	}
	return out
}

// Prediction returns the placement-time HTM prediction of an
// in-flight job. The dispatcher's placement record resolves the shard
// directly; jobs it never routed (single-shard fast paths) fall back
// to probing every shard.
func (cl *Cluster) Prediction(jobID int) (float64, bool) {
	if sh, ok := cl.placedShard(jobID); ok {
		return cl.shards[sh].Prediction(jobID)
	}
	for _, core := range cl.shards {
		if p, ok := core.Prediction(jobID); ok {
			return p, true
		}
	}
	return 0, false
}

// PredictedCompletion returns the owning trace's current projection of
// a placed job's completion date. Completed jobs have left the
// dispatcher's placement record, so the probe fallback also serves
// them.
func (cl *Cluster) PredictedCompletion(jobID int) (float64, bool) {
	if sh, ok := cl.placedShard(jobID); ok {
		return cl.shards[sh].PredictedCompletion(jobID)
	}
	for _, core := range cl.shards {
		if p, ok := core.PredictedCompletion(jobID); ok {
			return p, true
		}
	}
	return 0, false
}

// FinalPredictions merges every shard's end-of-run projections.
func (cl *Cluster) FinalPredictions() map[int]float64 {
	out := make(map[int]float64)
	for _, core := range cl.shards {
		for id, p := range core.FinalPredictions() {
			out[id] = p
		}
	}
	return out
}
