// Package htm implements the Historical Trace Manager of the paper
// (§2.3): the agent-side component that "stores and keeps track of
// information about each task", simulates the execution of every placed
// task on every server under the shared-resource model, and predicts
// the completion date of a candidate placement together with the
// perturbation it inflicts on already-mapped tasks.
//
// Terminology follows §2.4:
//
//	ρ_j   — simulated finishing date of task j before the new arrival
//	ρ'_j  — its finishing date after simulating the new task's placement
//	π_j   — the perturbation ρ'_j − ρ_j
//
// The HTM of the paper deliberately ignores memory requirements (that
// is listed as future work §7); construct the Manager with
// WithMemoryModel to enable the extension.
package htm

import (
	"fmt"
	"math"
	"sort"

	"casched/internal/fluid"
	"casched/internal/platform"
	"casched/internal/task"
)

// interferenceEps is the completion-delay threshold above which a task
// is counted as "interfered with" (used by the MNI heuristic).
const interferenceEps = 1e-6

// Option configures a Manager.
type Option func(*Manager)

// WithMemoryModel makes the HTM's internal simulations account for
// server memory (thrashing and collapse), using the Table 2 capacities.
// This is the paper's §7 "incorporate memory requirements into the
// model" extension; the paper's own HTM runs without it.
func WithMemoryModel() Option {
	return func(m *Manager) { m.memoryModel = true }
}

// WithSync makes the Manager re-anchor its traces on actual completion
// notifications (NotifyCompletion), the paper's §7 "improve the
// synchronization between the HTM and the execution" extension.
func WithSync() Option {
	return func(m *Manager) { m.sync = true }
}

// Prediction is the HTM's answer for one candidate placement.
type Prediction struct {
	// Server is the candidate server.
	Server string
	// Completion is ρ'_{n+1}: the predicted completion date of the new
	// task if placed on Server.
	Completion float64
	// Flow is Completion minus the task's arrival date.
	Flow float64
	// Perturbation is Σ_j π_j over the tasks already placed on Server.
	Perturbation float64
	// Interfered is the number of already-placed tasks whose predicted
	// completion is delayed by more than a tolerance (for MNI).
	Interfered int
	// PerTask maps placed job ids to their individual perturbation π_j.
	PerTask map[int]float64
}

// SumFlowObjective is the quantity the MSF heuristic minimizes:
// the new task's flow plus the total perturbation (§4.3).
func (p Prediction) SumFlowObjective() float64 { return p.Flow + p.Perturbation }

// placement records where a job was placed.
type placement struct {
	server  string
	arrival float64
}

// Manager is the Historical Trace Manager. It is not safe for
// concurrent use; the agent owns it.
type Manager struct {
	sims        map[string]*fluid.Sim
	order       []string
	placements  map[int]placement
	memoryModel bool
	sync        bool
	now         float64
}

// New constructs a Manager tracking the given servers. Unknown server
// names are allowed (capacities then default to unlimited memory) so
// that synthetic testbeds can be simulated; names present in
// platform.Testbed pick up their Table 2 memory capacities when the
// memory model is enabled.
func New(servers []string, opts ...Option) *Manager {
	m := &Manager{
		sims:       make(map[string]*fluid.Sim, len(servers)),
		placements: make(map[int]placement),
	}
	for _, o := range opts {
		o(m)
	}
	for _, name := range servers {
		cfg := fluid.Config{Name: name}
		if m.memoryModel {
			if mach, err := platform.Get(name); err == nil {
				cfg.RAMMB = mach.MemoryMB
				cfg.SwapMB = mach.SwapMB
				cfg.Thrash = true
			}
		}
		m.sims[name] = fluid.New(cfg)
		m.order = append(m.order, name)
	}
	sort.Strings(m.order)
	return m
}

// Servers returns the tracked server names in sorted order.
func (m *Manager) Servers() []string { return m.order }

// Now returns the trace time.
func (m *Manager) Now() float64 { return m.now }

// AdvanceTo moves every server trace forward to time t.
func (m *Manager) AdvanceTo(t float64) {
	if t < m.now {
		return
	}
	for _, name := range m.order {
		m.sims[name].AdvanceTo(t)
	}
	m.now = t
}

// Evaluate simulates placing job id (a new task with the given spec and
// arrival date) on the candidate server and reports the prediction. The
// live trace is not modified. Evaluate advances the trace to the
// arrival date first, as the paper's HTM does on each request.
func (m *Manager) Evaluate(id int, spec *task.Spec, arrival float64, server string) (Prediction, error) {
	sim, ok := m.sims[server]
	if !ok {
		return Prediction{}, fmt.Errorf("htm: unknown server %q", server)
	}
	cost, ok := spec.Cost(server)
	if !ok {
		return Prediction{}, fmt.Errorf("htm: server %q cannot solve %s", server, spec.Name())
	}
	m.AdvanceTo(arrival)

	before := sim.ProjectedCompletions()

	clone := sim.Clone()
	if err := clone.Add(id, arrival, cost, spec.MemoryMB); err != nil {
		return Prediction{}, fmt.Errorf("htm: evaluate on %q: %w", server, err)
	}
	clone.RunToIdle(math.Inf(1))
	after := clone.Completions()

	newC, ok := after[id]
	if !ok {
		// The candidate placement collapses the server in the
		// projection (memory-model extension): report an infinite
		// completion so heuristics avoid it.
		newC = math.Inf(1)
	}
	p := Prediction{
		Server:     server,
		Completion: newC,
		Flow:       newC - arrival,
		PerTask:    make(map[int]float64, len(before)),
	}
	for jid, b := range before {
		if jid == id {
			continue
		}
		a, ok := after[jid]
		if !ok {
			// Lost in a projected collapse: treat as unbounded delay.
			p.Perturbation = math.Inf(1)
			p.Interfered++
			p.PerTask[jid] = math.Inf(1)
			continue
		}
		pi := a - b
		p.PerTask[jid] = pi
		p.Perturbation += pi
		if pi > interferenceEps {
			p.Interfered++
		}
	}
	return p, nil
}

// EvaluateAll evaluates every candidate server and returns the
// predictions sorted by server name. Servers that cannot solve the
// task are skipped.
func (m *Manager) EvaluateAll(id int, spec *task.Spec, arrival float64, candidates []string) []Prediction {
	preds := make([]Prediction, 0, len(candidates))
	for _, s := range candidates {
		p, err := m.Evaluate(id, spec, arrival, s)
		if err != nil {
			continue
		}
		preds = append(preds, p)
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i].Server < preds[j].Server })
	return preds
}

// Place commits job id to the chosen server's live trace. This is the
// "Tell the HTM that task is allocated to server" step of Figures 2-4.
func (m *Manager) Place(id int, spec *task.Spec, arrival float64, server string) error {
	sim, ok := m.sims[server]
	if !ok {
		return fmt.Errorf("htm: unknown server %q", server)
	}
	cost, ok := spec.Cost(server)
	if !ok {
		return fmt.Errorf("htm: server %q cannot solve %s", server, spec.Name())
	}
	if prev, dup := m.placements[id]; dup {
		return fmt.Errorf("htm: job %d already placed on %q", id, prev.server)
	}
	m.AdvanceTo(arrival)
	if err := sim.Add(id, arrival, cost, spec.MemoryMB); err != nil {
		return fmt.Errorf("htm: place on %q: %w", server, err)
	}
	m.placements[id] = placement{server: server, arrival: arrival}
	return nil
}

// PlacedOn returns the server a job was committed to.
func (m *Manager) PlacedOn(id int) (string, bool) {
	p, ok := m.placements[id]
	return p.server, ok
}

// PredictedCompletion returns the trace's current projection of a
// placed job's completion date. Jobs on dropped (collapsed) servers
// have no projection.
func (m *Manager) PredictedCompletion(id int) (float64, bool) {
	p, ok := m.placements[id]
	if !ok {
		return 0, false
	}
	sim, ok := m.sims[p.server]
	if !ok {
		return 0, false
	}
	c, ok := sim.ProjectedCompletions()[id]
	return c, ok
}

// NotifyCompletion informs the Manager that a placed job actually
// completed at time t. When the synchronization extension is enabled
// the trace is re-anchored (the job is force-completed at t); otherwise
// the notification is ignored, matching the paper's open-loop HTM.
func (m *Manager) NotifyCompletion(id int, t float64) error {
	if !m.sync {
		return nil
	}
	p, ok := m.placements[id]
	if !ok {
		return fmt.Errorf("htm: notify completion: unknown job %d", id)
	}
	sim, ok := m.sims[p.server]
	if !ok {
		return nil // server dropped after a collapse; nothing to anchor
	}
	return sim.ForceComplete(id, t)
}

// DropServer removes a server from the candidate set (used when the
// execution layer reports a collapse). Placed jobs on that server keep
// their records but the trace is no longer consulted.
func (m *Manager) DropServer(name string) {
	if _, ok := m.sims[name]; !ok {
		return
	}
	delete(m.sims, name)
	for i, n := range m.order {
		if n == name {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

// Sim exposes the live trace of one server (read-only use expected);
// the Gantt renderer consumes this.
func (m *Manager) Sim(server string) (*fluid.Sim, bool) {
	s, ok := m.sims[server]
	return s, ok
}
