// Package sched implements the scheduling heuristics of the paper:
// the NetSolve MCT baseline (monitor-driven Minimum Completion Time),
// and the three HTM-based heuristics of §4 — HMCT (Figure 2),
// MP (Figure 3) and MSF (Figure 4) — plus the related-work comparator
// MNI (Weissman's minimize-number-of-interferences, §6) and two
// reference policies (Random, RoundRobin).
//
// A Scheduler receives a Context describing what the agent knows at the
// arrival instant of a task and returns the name of the chosen server.
// Heuristics never mutate the Context; committing the decision (telling
// the HTM, updating load corrections) is the agent's job.
package sched

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"casched/internal/htm"
	"casched/internal/stats"
	"casched/internal/task"
)

// ErrNoServer is returned when no candidate server can run the task.
var ErrNoServer = errors.New("sched: no candidate server")

// tieEps is the tolerance under which two objective values are
// considered equal, triggering tie-breaking rules.
const tieEps = 1e-9

// LoadInfo is the monitor-based view of the system the NetSolve MCT
// baseline uses: the agent's current belief of each server's load
// (number of running tasks), built from periodic reports plus the two
// NetSolve load-correction mechanisms.
type LoadInfo interface {
	// LoadEstimate returns the agent's belief of the number of tasks
	// currently running on the server.
	LoadEstimate(server string) float64
}

// Evaluator is the HTM surface heuristics consume: candidate
// evaluation and projected ready times. *htm.Manager implements it
// directly; the agent core substitutes caching wrappers (batch
// submission) without the heuristics noticing.
type Evaluator interface {
	// EvaluateAll predicts placing job id on every candidate; see
	// htm.Manager.EvaluateAll for the error contract.
	EvaluateAll(id int, spec *task.Spec, arrival float64, candidates []string) ([]htm.Prediction, error)
	// ProjectedReady returns the instant the server drains its current
	// work (the OLB/KPB/SA "machine ready time").
	ProjectedReady(server string) (float64, bool)
}

// BufferedEvaluator is an Evaluator that can write predictions into a
// caller-owned buffer reused across decisions (htm.Manager implements
// it). predictAll uses it together with Context.PredBuf to keep the
// per-decision heuristic path free of heap allocation; evaluators
// without it (caching batch wrappers) fall back to EvaluateAll.
type BufferedEvaluator interface {
	Evaluator
	// EvaluateAllInto is EvaluateAll appending into out[:0]; see
	// htm.Manager.EvaluateAllInto.
	EvaluateAllInto(id int, spec *task.Spec, arrival float64, candidates []string, out []htm.Prediction) ([]htm.Prediction, error)
}

// Context is everything the agent exposes to a heuristic for one
// scheduling decision.
type Context struct {
	// Now is the arrival date of the task being scheduled.
	Now float64
	// Task is the arriving task.
	Task *task.Task
	// JobID is the identifier under which the placement would be
	// recorded in the HTM (distinct from Task.ID on resubmissions).
	JobID int
	// Candidates are the alive servers able to solve the task's
	// problem, in a stable order.
	Candidates []string
	// HTM is the historical trace manager's evaluation surface (nil
	// for heuristics that do not use it).
	HTM Evaluator
	// Info is the monitor-based load view (nil for heuristics that do
	// not use it).
	Info LoadInfo
	// RNG is the decision-local randomness source (used by Random and
	// by randomized tie-breaking).
	RNG *stats.RNG
	// PredBuf is an optional prediction buffer owned by the driver and
	// threaded through consecutive decisions: when the HTM implements
	// BufferedEvaluator, predictAll evaluates into it (and grows it in
	// place) instead of allocating a fresh slice per decision. Contents
	// are scratch — valid only within one Choose call.
	PredBuf []htm.Prediction
}

// Scheduler chooses a server for each arriving task.
type Scheduler interface {
	// Name identifies the heuristic in reports ("MCT", "HMCT", ...).
	Name() string
	// Choose returns the chosen server name.
	Choose(ctx *Context) (string, error)
}

// Choice is a scored scheduling decision: the chosen server together
// with the objective value the heuristic minimized to pick it. Scores
// from disjoint candidate partitions are comparable as long as the
// partitions run the same heuristic, which is what lets a sharded
// dispatch layer fan a decision out over per-shard winners and commit
// on the global minimum.
type Choice struct {
	// Server is the chosen server.
	Server string
	// Score is the heuristic's primary objective value for Server
	// (lower wins): the estimated or predicted completion date for
	// MCT/HMCT, the total perturbation for MP, the sum-flow increase
	// for MSF, the interference count for MNI.
	Score float64
	// Tie is the secondary objective used to break Score ties (lower
	// wins). The paper's heuristics all fall back to the new task's
	// completion date; heuristics without a secondary rule repeat
	// Score here.
	Tie float64
}

// ScoredScheduler is implemented by heuristics whose Choose minimizes
// a numeric objective. ChooseScored is Choose that additionally
// returns the minimized objective, so a dispatch layer can compare
// winners across disjoint candidate partitions (sharded server pools).
// Reference policies without an objective (Random, RoundRobin) do not
// implement it.
type ScoredScheduler interface {
	Scheduler
	// ChooseScored returns the chosen server and the objective values
	// behind the decision. The choice is identical to Choose's.
	ChooseScored(ctx *Context) (Choice, error)
}

// UsesHTM reports whether the scheduler requires ctx.HTM. The agent
// uses this to skip HTM bookkeeping for monitor-based heuristics.
func UsesHTM(s Scheduler) bool {
	type htmUser interface{ usesHTM() bool }
	if u, ok := s.(htmUser); ok {
		return u.usesHTM()
	}
	return false
}

// registry is the single source of truth for the heuristic family, in
// presentation order: the paper's four, the related-work comparators,
// then the reference policies. ByName, Names and All all derive from
// it, so adding a heuristic is one entry here.
var registry = []struct {
	name string
	new  func() Scheduler
}{
	{"MCT", func() Scheduler { return NewMCT() }},
	{"HMCT", func() Scheduler { return NewHMCT() }},
	{"MP", func() Scheduler { return NewMP() }},
	{"MSF", func() Scheduler { return NewMSF() }},
	{"MNI", func() Scheduler { return NewMNI() }},
	{"MET", func() Scheduler { return NewMET() }},
	{"OLB", func() Scheduler { return NewOLB() }},
	{"KPB", func() Scheduler { return NewKPB() }},
	{"SA", func() Scheduler { return NewSA() }},
	{"Random", func() Scheduler { return NewRandom() }},
	{"RoundRobin", func() Scheduler { return NewRoundRobin() }},
}

// ByName constructs the named scheduler. Recognized names: the
// paper's MCT, HMCT, MP, MSF; the related-work comparators MNI
// (Weissman) and MET, OLB, KPB, SA (Maheswaran et al., the paper's
// reference [10]); and the Random/RoundRobin reference policies.
// Lookup is case-insensitive ("msf" and "MSF" both work).
func ByName(name string) (Scheduler, error) {
	for _, e := range registry {
		if strings.EqualFold(e.name, name) {
			return e.new(), nil
		}
	}
	return nil, fmt.Errorf("sched: unknown heuristic %q", name)
}

// Names lists every recognized heuristic in presentation order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}

// All returns a fresh instance of every heuristic, in the paper's
// presentation order followed by the extensions.
func All() []Scheduler {
	out := make([]Scheduler, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.new())
	}
	return out
}

// chooseVia implements Choose on top of a heuristic's ChooseScored.
func chooseVia(s ScoredScheduler, ctx *Context) (string, error) {
	c, err := s.ChooseScored(ctx)
	if err != nil {
		return "", err
	}
	return c.Server, nil
}

// argminScan returns the first candidate within tieEps of the minimum
// objective, the number of such ties, and the minimum itself. It is the
// ties[0]/len(ties) pair of the tie-slice argmin the heuristics
// historically built, computed by scanning so the decision path does
// not allocate.
func argminScan(preds []htm.Prediction, objective func(htm.Prediction) float64) (w htm.Prediction, ties int, best float64) {
	best = math.Inf(1)
	for _, p := range preds {
		if v := objective(p); v < best {
			best = v
		}
	}
	for _, p := range preds {
		if objective(p) <= best+tieEps {
			if ties == 0 {
				w = p
			}
			ties++
		}
	}
	return w, ties, best
}

// argminTieBreak returns the first prediction minimizing secondary
// among those within tieEps of the primary minimum — the nested-argmin
// tie-break every deterministic heuristic applies, without building the
// intermediate tie slices. The scan order (preds order) matches the
// historical tie-slice construction, so the winner is bit-identical.
func argminTieBreak(preds []htm.Prediction, primary, secondary func(htm.Prediction) float64) htm.Prediction {
	best := math.Inf(1)
	for _, p := range preds {
		if v := primary(p); v < best {
			best = v
		}
	}
	thr := best + tieEps
	sbest := math.Inf(1)
	for _, p := range preds {
		if primary(p) <= thr {
			if v := secondary(p); v < sbest {
				sbest = v
			}
		}
	}
	sthr := sbest + tieEps
	for _, p := range preds {
		if primary(p) <= thr && secondary(p) <= sthr {
			return p
		}
	}
	// Unreachable with a non-empty preds: the double minimum is
	// realized by at least one element.
	return htm.Prediction{}
}

// predictAll evaluates every candidate with the HTM, failing when none
// is feasible. Per-candidate evaluation failures are tolerated as long
// as at least one candidate produced a prediction; when every
// evaluation failed the joined error is surfaced, so a task no server
// can currently evaluate is distinguishable from a task no server
// solves (ErrNoServer).
func predictAll(ctx *Context) ([]htm.Prediction, error) {
	if ctx.HTM == nil {
		return nil, errors.New("sched: heuristic requires the HTM")
	}
	var preds []htm.Prediction
	var err error
	if be, ok := ctx.HTM.(BufferedEvaluator); ok {
		preds, err = be.EvaluateAllInto(ctx.JobID, ctx.Task.Spec, ctx.Now, ctx.Candidates, ctx.PredBuf)
		if preds != nil {
			// Keep the grown buffer for the driver's next decision.
			ctx.PredBuf = preds
		}
	} else {
		preds, err = ctx.HTM.EvaluateAll(ctx.JobID, ctx.Task.Spec, ctx.Now, ctx.Candidates)
	}
	if len(preds) == 0 {
		if err != nil {
			return nil, fmt.Errorf("sched: every candidate evaluation failed: %w", err)
		}
		return nil, ErrNoServer
	}
	return preds, nil
}
