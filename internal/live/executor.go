package live

import (
	"fmt"
	"math"
	"sync"
	"time"

	"casched/internal/fluid"
	"casched/internal/task"
)

// completion is one finished job awaiting delivery to its submitter.
type completion struct {
	ch chan float64
	at float64 // exact virtual completion date
}

// executor emulates a time-shared CPU and its links in scaled wall
// time, reproducing the processor-sharing model the paper validated on
// LINUX (§2.3) — but asynchronously: a quantum loop wakes up on a wall
// clock and only then observes completions, so delivery (and everything
// downstream: the completion RPC, the agent's corrections) carries real
// quantization and scheduling jitter.
//
// Work accounting itself is exact. An earlier implementation advanced
// every job by quantum-sized budgets under per-tick constant shares;
// with a scaled clock one tick can span seconds of virtual time, and
// budgets carried across phase boundaries let the CPU transiently
// deliver more than its capacity, which made real completions drift
// 25-30% away from the HTM's fluid predictions. The executor now
// advances a fluid.Sim (the same shared-resource model the HTM
// simulates) to the current virtual time on every tick: phase
// transitions happen at their exact virtual dates no matter how coarse
// the ticks are, and completion dates are the event dates, not the tick
// dates.
type executor struct {
	clock   *Clock
	quantum time.Duration

	mu      sync.Mutex
	sim     *fluid.Sim
	done    map[int]chan float64
	pending []completion

	stop chan struct{}
	wg   sync.WaitGroup
}

// newExecutor starts the quantum loop.
func newExecutor(clock *Clock, quantum time.Duration) *executor {
	if quantum <= 0 {
		quantum = 2 * time.Millisecond
	}
	e := &executor{
		clock:   clock,
		quantum: quantum,
		sim:     fluid.New(fluid.Config{Name: "executor"}),
		done:    make(map[int]chan float64),
		stop:    make(chan struct{}),
	}
	e.sim.AdvanceTo(clock.Now())
	e.wg.Add(1)
	go e.loop()
	return e
}

// submit adds a job with the given actual phase costs and returns a
// channel delivering its virtual completion date.
func (e *executor) submit(key int, cost task.Cost) (<-chan float64, error) {
	ch := make(chan float64, 1)
	e.mu.Lock()
	defer e.mu.Unlock()
	release := math.Max(e.sim.Now(), e.clock.Now())
	if err := e.sim.Add(key, release, cost, 0); err != nil {
		return nil, fmt.Errorf("live: executor: %w", err)
	}
	e.done[key] = ch
	return ch, nil
}

// load returns the number of jobs currently in the compute phase — the
// run-queue length the monitor reports.
func (e *executor) load() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.advanceLocked()
	return e.sim.LoadAvg()
}

// resident returns the total number of jobs on the executor.
func (e *executor) resident() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.advanceLocked()
	return e.sim.ActiveCount()
}

// close stops the quantum loop.
func (e *executor) close() {
	select {
	case <-e.stop:
	default:
		close(e.stop)
	}
	e.wg.Wait()
}

// loop is the quantum ticker.
func (e *executor) loop() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.quantum)
	defer ticker.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-ticker.C:
			e.tick()
		}
	}
}

// tick advances the simulation and delivers pending completions.
func (e *executor) tick() {
	e.mu.Lock()
	e.advanceLocked()
	finished := e.pending
	e.pending = nil
	e.mu.Unlock()

	for _, c := range finished {
		c.ch <- c.at
	}
}

// advanceLocked moves the simulation to the current virtual time and
// queues any completions for delivery on the next tick.
func (e *executor) advanceLocked() {
	now := e.clock.Now()
	if now <= e.sim.Now() {
		return
	}
	for _, ev := range e.sim.AdvanceTo(now) {
		if ev.Kind != fluid.EventDone {
			continue
		}
		ch, ok := e.done[ev.JobID]
		if !ok {
			continue
		}
		delete(e.done, ev.JobID)
		// Drop the finished record so the resident set stays small and
		// its key can be reused by a later run.
		_ = e.sim.Remove(ev.JobID)
		e.pending = append(e.pending, completion{ch: ch, at: ev.Time})
	}
}
