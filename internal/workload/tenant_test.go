package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"casched/internal/task"
)

// TestMultiTenantGenerationUnchanged pins the compatibility guarantee:
// adding tenants and deadlines to a scenario must not perturb the task
// mix or the arrival dates, and a scenario without tenants must be
// bit-identical to what pre-multi-tenant versions generated.
func TestMultiTenantGenerationUnchanged(t *testing.T) {
	base := MustGenerate(Set2(200, 20, 7))
	mt := MustGenerate(MultiTenant(Set2(200, 20, 7), map[string]float64{"gold": 3, "silver": 1}, 10))
	if len(base.Tasks) != len(mt.Tasks) {
		t.Fatalf("task counts differ: %d vs %d", len(base.Tasks), len(mt.Tasks))
	}
	for i := range base.Tasks {
		b, m := base.Tasks[i], mt.Tasks[i]
		if b.Spec.Name() != m.Spec.Name() || b.Arrival != m.Arrival {
			t.Fatalf("task %d differs with tenants on: spec %v vs %v, arrival %v vs %v",
				i, b.Spec.Name(), m.Spec.Name(), b.Arrival, m.Arrival)
		}
		if b.Tenant != "" || b.Deadline != 0 {
			t.Fatalf("task %d of tenant-free scenario carries tenant %q deadline %v",
				i, b.Tenant, b.Deadline)
		}
	}
}

// TestMultiTenantMixProportions: tenant labels follow the offered-load
// mix weights.
func TestMultiTenantMixProportions(t *testing.T) {
	mt := MustGenerate(MultiTenant(Set2(4000, 20, 3), map[string]float64{"gold": 3, "silver": 1}, 0))
	count := map[string]int{}
	for _, tk := range mt.Tasks {
		count[tk.Tenant]++
	}
	goldFrac := float64(count["gold"]) / float64(len(mt.Tasks))
	if math.Abs(goldFrac-0.75) > 0.03 {
		t.Fatalf("gold offered-load fraction %.3f, want ~0.75 (counts %v)", goldFrac, count)
	}
}

// TestDeadlineSlackStamping: deadlines sit at slack × best-case nominal
// duration past arrival.
func TestDeadlineSlackStamping(t *testing.T) {
	sc := Set2(50, 20, 1)
	sc.DeadlineSlack = 4
	mt := MustGenerate(sc)
	for _, tk := range mt.Tasks {
		best, ok := tk.Spec.MinTotal()
		if !ok {
			t.Fatalf("spec %s has no runnable server", tk.Spec.Name())
		}
		want := tk.Arrival + 4*best
		if math.Abs(tk.Deadline-want) > 1e-9 {
			t.Fatalf("task %d deadline %v, want %v", tk.ID, tk.Deadline, want)
		}
	}
}

// TestMultiTenantScenarioValidation: bad tenant mixes are rejected.
func TestMultiTenantScenarioValidation(t *testing.T) {
	bad := Set2(10, 20, 1)
	bad.Tenants = map[string]float64{"": 1}
	if _, err := Generate(bad); err == nil {
		t.Fatal("empty tenant name accepted")
	}
	bad = Set2(10, 20, 1)
	bad.Tenants = map[string]float64{"gold": -1}
	if _, err := Generate(bad); err == nil {
		t.Fatal("negative tenant weight accepted")
	}
	bad = Set2(10, 20, 1)
	bad.DeadlineSlack = -2
	if _, err := Generate(bad); err == nil {
		t.Fatal("negative deadline slack accepted")
	}
}

// TestCSVTenantRoundTrip: tenant and deadline columns survive a
// write/read cycle exactly.
func TestCSVTenantRoundTrip(t *testing.T) {
	mt := MustGenerate(MultiTenant(Set2(40, 20, 5), map[string]float64{"gold": 2, "silver": 1}, 6))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, mt); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "id,problem,variant,arrival,tenant,deadline\n") {
		t.Fatalf("unexpected header: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	got, err := ReadCSV(&buf, mt.Name)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mt.Tasks {
		w, g := mt.Tasks[i], got.Tasks[i]
		if w.Tenant != g.Tenant || math.Abs(w.Deadline-g.Deadline) > 1e-6 {
			t.Fatalf("task %d round-trip mismatch: tenant %q/%q deadline %v/%v",
				i, w.Tenant, g.Tenant, w.Deadline, g.Deadline)
		}
	}
}

// TestCSVLegacyFormatPreserved: a tenant-free metatask writes the
// historical 4-column format, and 4-column traces read back with the
// default tenant and no deadline — strict backward compatibility both
// ways.
func TestCSVLegacyFormatPreserved(t *testing.T) {
	mt := MustGenerate(Set2(20, 20, 5))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, mt); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "id,problem,variant,arrival\n") {
		t.Fatalf("tenant-free trace grew extra columns: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	got, err := ReadCSV(&buf, mt.Name)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range got.Tasks {
		if tk.Tenant != "" || tk.Deadline != 0 {
			t.Fatalf("legacy trace read back tenant %q deadline %v", tk.Tenant, tk.Deadline)
		}
	}
}

// TestCSVTenantOnlyColumn: a trace may carry tenant without deadline
// (and the reverse), and unknown extra columns are rejected.
func TestCSVTenantOnlyColumn(t *testing.T) {
	in := "id,problem,variant,arrival,tenant\n0,wastecpu,200,0.000000,gold\n1,wastecpu,400,1.500000,\n"
	mt, err := ReadCSV(strings.NewReader(in), "tenant-only")
	if err != nil {
		t.Fatal(err)
	}
	if mt.Tasks[0].Tenant != "gold" || mt.Tasks[1].Tenant != "" {
		t.Fatalf("tenants read %q, %q", mt.Tasks[0].Tenant, mt.Tasks[1].Tenant)
	}

	in = "id,problem,variant,arrival,deadline\n0,wastecpu,200,0.000000,90.000000\n"
	mt, err = ReadCSV(strings.NewReader(in), "deadline-only")
	if err != nil {
		t.Fatal(err)
	}
	if mt.Tasks[0].Deadline != 90 {
		t.Fatalf("deadline read %v", mt.Tasks[0].Deadline)
	}

	in = "id,problem,variant,arrival,priority\n0,wastecpu,200,0.000000,7\n"
	if _, err := ReadCSV(strings.NewReader(in), "bad"); err == nil {
		t.Fatal("unknown extra column accepted")
	}
}

// TestSpecMinTotal pins the deadline denominator helper.
func TestSpecMinTotal(t *testing.T) {
	s := &task.Spec{Problem: "p", Variant: 1, CostOn: map[string]task.Cost{
		"fast": {Input: 1, Compute: 2, Output: 1},
		"slow": {Input: 2, Compute: 9, Output: 2},
	}}
	if best, ok := s.MinTotal(); !ok || best != 4 {
		t.Fatalf("MinTotal = %v, %v; want 4, true", best, ok)
	}
	if _, ok := (&task.Spec{Problem: "p"}).MinTotal(); ok {
		t.Fatal("MinTotal on serverless spec reported ok")
	}
}
