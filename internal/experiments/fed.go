// This file is the federation staleness study: it quantifies what
// stale-summary (degraded power-of-two-choices) routing costs against
// the centralized dispatch decisions, on the paper's bursty
// inhomogeneous-Poisson workload — the number behind the federation's
// fresh-vs-stale routing trade.

package experiments

import (
	"fmt"
	"strings"
	"time"

	"casched/internal/agent"
	"casched/internal/cluster"
	"casched/internal/fed"
	"casched/internal/workload"
)

// FederationStudyConfig parameterizes the study. Zero values select
// the committed defaults (benchmarks/fed-study.txt).
type FederationStudyConfig struct {
	// N is the metatask size (default 240).
	N int
	// D is the long-run mean inter-arrival time in seconds (default 6,
	// near-critical for the replicated second-set testbed).
	D float64
	// Seed drives metatask generation and routing randomness.
	Seed uint64
	// Heuristic is the federation-wide objective (default HMCT).
	Heuristic string
	// Members is the federation width (default 4).
	Members int
	// Replicas scales the Table 2 second-set testbed (default 2 ⇒ 8
	// servers, 2 per member under least-loaded assignment).
	Replicas int
	// RefreshEvery lists the stale levels: the dispatcher's summaries
	// refresh only every that many submissions, so routing decisions
	// work from load data up to that many tasks old (default 1, 8, 32).
	RefreshEvery []int
}

func (c *FederationStudyConfig) defaults() {
	if c.N == 0 {
		c.N = 240
	}
	if c.D == 0 {
		c.D = 6
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	if c.Heuristic == "" {
		c.Heuristic = "HMCT"
	}
	if c.Members == 0 {
		c.Members = 4
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if len(c.RefreshEvery) == 0 {
		c.RefreshEvery = []int{1, 8, 32}
	}
}

// FederationStaleLevel is one stale-routing measurement.
type FederationStaleLevel struct {
	// RefreshEvery is the summary lag in submissions.
	RefreshEvery int
	// SumFlow is the HTM-simulated total flow under that lag.
	SumFlow float64
}

// FederationRelayLevel is one relay-assisted degraded-routing
// measurement: same summary lag as the matching stale level, but with
// the live event relay streaming member decisions between summaries.
type FederationRelayLevel struct {
	// RefreshEvery is the summary lag in submissions.
	RefreshEvery int
	// SumFlow is the HTM-simulated total flow under that lag with the
	// relay on.
	SumFlow float64
	// EventsPerDecision is the relay bandwidth: member events folded by
	// the dispatcher divided by decisions routed.
	EventsPerDecision float64
}

// FederationStudyResult holds the study: the centralized cluster, the
// fresh federation (expected decision-identical) and the degraded
// stale-summary levels, all measured by HTM-simulated sum-flow on one
// bursty metatask.
type FederationStudyResult struct {
	Config FederationStudyConfig

	// CentralSumFlow is the sharded cluster driven per task (exact
	// fan-out decisions) — the centralized reference.
	CentralSumFlow float64
	// FreshSumFlow is the federation with inline summary refresh:
	// fan-out routing, decisions identical to the cluster.
	FreshSumFlow float64
	// Stale are the degraded power-of-two-choices levels.
	Stale []FederationStaleLevel
	// Relay are the same summary lags rerouted through the live event
	// relay: near-fresh per-server pricing instead of frozen
	// power-of-two-choices.
	Relay []FederationRelayLevel
}

// FederationStudy runs the study: one bursty metatask, a centralized
// cluster, a fresh federation, and one degraded federation per stale
// level.
func FederationStudy(cfg FederationStudyConfig) (*FederationStudyResult, error) {
	cfg.defaults()
	sc := workload.PoissonBurst(cfg.N, cfg.D, cfg.Seed)
	mt, err := workload.Generate(sc)
	if err != nil {
		return nil, err
	}
	names, rewrite := replicatedSet2(cfg.Replicas)
	for _, t := range mt.Tasks {
		t.Spec = rewrite(t.Spec)
	}
	reqs := make([]agent.Request, mt.Len())
	for i, t := range mt.Tasks {
		reqs[i] = agent.Request{JobID: t.ID, TaskID: t.ID, Spec: t.Spec, Arrival: t.Arrival}
	}

	res := &FederationStudyResult{Config: cfg}

	// Centralized reference: the sharded cluster, exact fan-out per
	// task.
	cl, err := cluster.New(
		cluster.WithShards(cfg.Members),
		cluster.WithHeuristic(cfg.Heuristic),
		cluster.WithSeed(cfg.Seed),
		cluster.WithPolicy(cluster.LeastLoaded()),
	)
	if err != nil {
		return nil, err
	}
	for _, n := range names {
		cl.AddServer(n)
	}
	for _, req := range reqs {
		if _, err := cl.Submit(req); err != nil {
			return nil, fmt.Errorf("experiments: central submit: %w", err)
		}
	}
	res.CentralSumFlow, _ = sumFlowOf(cl, mt)

	// Fresh federation: inline refresh, fan-out routing — decision
	// parity with the cluster.
	freshFed, err := fed.New(
		fed.WithMembers(cfg.Members),
		fed.WithHeuristic(cfg.Heuristic),
		fed.WithSeed(cfg.Seed),
		fed.WithPolicy(cluster.LeastLoaded()),
	)
	if err != nil {
		return nil, err
	}
	for _, n := range names {
		if err := freshFed.AddServer(n); err != nil {
			return nil, err
		}
	}
	for _, req := range reqs {
		if _, err := freshFed.Submit(req); err != nil {
			return nil, fmt.Errorf("experiments: fresh fed submit: %w", err)
		}
	}
	res.FreshSumFlow, _ = sumFlowOf(freshFed, mt)

	// Stale levels: a fake clock keeps every summary past StaleAfter
	// (forcing degraded power-of-two-choices routing), and the
	// dispatcher's summaries are refreshed only every RefreshEvery
	// submissions — routing always works from load data that lags
	// reality by up to that many decisions.
	for _, every := range cfg.RefreshEvery {
		base := time.Unix(0, 0)
		now := base
		staleFed, err := fed.New(
			fed.WithMembers(cfg.Members),
			fed.WithHeuristic(cfg.Heuristic),
			fed.WithSeed(cfg.Seed),
			fed.WithPolicy(cluster.LeastLoaded()),
			fed.WithStaleAfter(time.Nanosecond),
			fed.WithSummaryInterval(time.Hour), // inline refresh never fires
			fed.WithNow(func() time.Time { return now }),
		)
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			if err := staleFed.AddServer(n); err != nil {
				return nil, err
			}
		}
		for i, req := range reqs {
			if i%every == 0 {
				staleFed.RefreshSummaries()
			}
			// Advance the fake clock so even a just-refreshed summary
			// ages past StaleAfter before the next routing decision.
			now = now.Add(time.Second)
			if _, err := staleFed.Submit(req); err != nil {
				return nil, fmt.Errorf("experiments: stale fed submit (every=%d): %w", every, err)
			}
		}
		sum, _ := sumFlowOf(staleFed, mt)
		res.Stale = append(res.Stale, FederationStaleLevel{RefreshEvery: every, SumFlow: sum})
	}

	// Relay levels: identical staleness dial, but the dispatcher pulls
	// each member's decision ledger inline on every submission
	// (RelayInterval 0 — the TCP runtime's background tick collapsed to
	// its freshest setting) and prices degraded routing on the
	// near-fresh per-server drains instead of frozen summaries.
	for _, every := range cfg.RefreshEvery {
		base := time.Unix(0, 0)
		now := base
		relayFed, err := fed.New(
			fed.WithMembers(cfg.Members),
			fed.WithHeuristic(cfg.Heuristic),
			fed.WithSeed(cfg.Seed),
			fed.WithPolicy(cluster.LeastLoaded()),
			fed.WithStaleAfter(time.Nanosecond),
			fed.WithSummaryInterval(time.Hour), // inline refresh never fires
			fed.WithNow(func() time.Time { return now }),
			fed.WithRelay(true),
			fed.WithRelayInterval(0), // pull inline on every submission
		)
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			if err := relayFed.AddServer(n); err != nil {
				return nil, err
			}
		}
		for i, req := range reqs {
			if i%every == 0 {
				relayFed.RefreshSummaries()
			}
			now = now.Add(time.Second)
			if _, err := relayFed.Submit(req); err != nil {
				return nil, fmt.Errorf("experiments: relay fed submit (every=%d): %w", every, err)
			}
		}
		sum, _ := sumFlowOf(relayFed, mt)
		rs := relayFed.RelayStats()
		res.Relay = append(res.Relay, FederationRelayLevel{
			RefreshEvery:      every,
			SumFlow:           sum,
			EventsPerDecision: float64(rs.EventsFolded) / float64(len(reqs)),
		})
	}
	return res, nil
}

// FormatFederationStudy renders the study as a small report.
func FormatFederationStudy(r *FederationStudyResult) string {
	var b strings.Builder
	c := r.Config
	fmt.Fprintf(&b, "federation staleness study — %s, poisson-burst set 2, N=%d D=%gs, %d members, %d servers, seed %d\n",
		c.Heuristic, c.N, c.D, c.Members, 4*c.Replicas, c.Seed)
	fmt.Fprintf(&b, "\n  %-34s %12s %8s %8s\n", "routing", "sumflow", "ratio", "ev/dec")
	fmt.Fprintf(&b, "  %-34s %12.0f %8.3f\n", "centralized cluster (fan-out)", r.CentralSumFlow, 1.0)
	if r.CentralSumFlow > 0 {
		fmt.Fprintf(&b, "  %-34s %12.0f %8.3f\n", "federated, fresh summaries",
			r.FreshSumFlow, r.FreshSumFlow/r.CentralSumFlow)
		for _, s := range r.Stale {
			fmt.Fprintf(&b, "  %-34s %12.0f %8.3f\n",
				fmt.Sprintf("federated, stale (refresh/%d)", s.RefreshEvery),
				s.SumFlow, s.SumFlow/r.CentralSumFlow)
		}
		for _, s := range r.Relay {
			fmt.Fprintf(&b, "  %-34s %12.0f %8.3f %8.2f\n",
				fmt.Sprintf("federated, relay (summary/%d)", s.RefreshEvery),
				s.SumFlow, s.SumFlow/r.CentralSumFlow, s.EventsPerDecision)
		}
	}
	return b.String()
}
