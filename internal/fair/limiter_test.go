package fair

import "testing"

func TestTokenBucketStartsFull(t *testing.T) {
	b := NewTokenBucket(2, 3)
	for i := 0; i < 3; i++ {
		if !b.Take(0) {
			t.Fatalf("take %d at t=0 refused; bucket should start with burst tokens", i)
		}
	}
	if b.Take(0) {
		t.Fatal("4th take at t=0 admitted past burst")
	}
}

func TestTokenBucketRefillsAtRate(t *testing.T) {
	b := NewTokenBucket(2, 2) // 2 tokens/s, burst 2
	b.Take(0)
	b.Take(0)
	if b.Take(0.25) {
		t.Fatal("admitted with only 0.5 tokens refilled")
	}
	// Previous Take consumed nothing but advanced last to 0.25; 0.5
	// tokens remain banked. By t=0.5 a full token has accrued.
	if !b.Take(0.5) {
		t.Fatal("refused after a full token refilled")
	}
}

func TestTokenBucketCapsAtBurst(t *testing.T) {
	b := NewTokenBucket(10, 2)
	b.Take(0)
	// A long idle gap must not bank more than burst tokens.
	for i := 0; i < 2; i++ {
		if !b.Take(100) {
			t.Fatalf("take %d after idle refused", i)
		}
	}
	if b.Take(100) {
		t.Fatal("idle gap banked more than burst tokens")
	}
}

func TestTokenBucketBackwardsTime(t *testing.T) {
	b := NewTokenBucket(1, 1)
	if !b.Take(10) {
		t.Fatal("first take refused")
	}
	// An out-of-order arrival earlier than last must not refill
	// (negative dt) but still consumes normally once tokens accrue.
	if b.Take(5) {
		t.Fatal("backwards time granted a token")
	}
	if !b.Take(11) {
		t.Fatal("forward time after backwards arrival refused")
	}
}

func TestTokenBucketDefaultBurst(t *testing.T) {
	b := NewTokenBucket(4, 0)
	if got := b.Tokens(); got != 4 {
		t.Fatalf("burst defaulted to %v, want rate (4)", got)
	}
	slow := NewTokenBucket(0.1, 0)
	if got := slow.Tokens(); got != 1 {
		t.Fatalf("sub-1 rate burst defaulted to %v, want 1", got)
	}
}
