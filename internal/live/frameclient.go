package live

// Client half of the framed member wire: a pipelined connection
// keeping a sliding window of correlated requests in flight. Callers
// block only on their own reply, not on the connection — concurrent
// calls share one TCP stream instead of paying a round trip each, so
// a dispatcher driving hundreds of servers per member amortizes the
// wire latency across the window.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// ErrWireTimeout marks a framed call that exceeded its budget; like a
// gob timeout the request may have reached the member, so callers must
// treat the outcome as uncertain for mutating calls.
var ErrWireTimeout = errors.New("live: framed call timed out")

// frameWindow bounds the requests in flight per framed connection.
const frameWindow = 64

// frameCall is one in-flight request slot.
type frameCall struct {
	done    chan struct{}
	typ     byte
	payload []byte
	err     error
}

// FrameClient speaks the framed member wire over one connection.
// Safe for concurrent use.
type FrameClient struct {
	conn    net.Conn
	timeout time.Duration

	wmu  sync.Mutex // serializes frame writes; wbuf is its scratch
	wbuf []byte

	mu      sync.Mutex
	pending map[uint64]*frameCall
	nextID  uint64
	broken  error

	window chan struct{}
	calls  sync.Pool
}

// NewFrameClient performs the framed handshake on conn and starts the
// reply reader. The timeout bounds the handshake, each call, and each
// frame write; non-positive selects 2s. On error the conn is closed.
func NewFrameClient(conn net.Conn, timeout time.Duration) (*FrameClient, error) {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write(frameHandshake[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("live: framed handshake: %w", err)
	}
	var echo [len(frameHandshake)]byte
	if _, err := io.ReadFull(conn, echo[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("live: framed handshake: %w", err)
	}
	if echo != frameHandshake {
		conn.Close()
		return nil, errors.New("live: framed handshake rejected")
	}
	conn.SetDeadline(time.Time{})
	c := &FrameClient{
		conn:    conn,
		timeout: timeout,
		pending: make(map[uint64]*frameCall),
		window:  make(chan struct{}, frameWindow),
	}
	go c.readLoop()
	return c, nil
}

// Close tears the connection down; in-flight calls fail.
func (c *FrameClient) Close() error {
	c.fail(errors.New("live: framed connection closed"))
	return nil
}

// fail marks the connection broken, closes it, and completes every
// pending call with the transport error.
func (c *FrameClient) fail(err error) {
	c.mu.Lock()
	if c.broken == nil {
		c.broken = err
	}
	err = c.broken
	pend := c.pending
	c.pending = make(map[uint64]*frameCall)
	c.mu.Unlock()
	c.conn.Close()
	for _, call := range pend {
		call.err = err
		close(call.done)
	}
}

// readLoop matches reply frames to pending calls by correlation ID.
// Replies to calls that already timed out client-side are discarded.
func (c *FrameClient) readLoop() {
	var buf []byte
	for {
		typ, corr, payload, err := readFrame(c.conn, &buf)
		if err != nil {
			c.fail(fmt.Errorf("live: framed read: %w", err))
			return
		}
		c.mu.Lock()
		call := c.pending[corr]
		delete(c.pending, corr)
		c.mu.Unlock()
		if call == nil {
			continue
		}
		call.typ = typ
		call.payload = append(call.payload[:0], payload...)
		close(call.done)
	}
}

func (c *FrameClient) getCall() *frameCall {
	if v := c.calls.Get(); v != nil {
		call := v.(*frameCall)
		call.done = make(chan struct{})
		call.typ, call.err = 0, nil
		return call
	}
	return &frameCall{done: make(chan struct{})}
}

// roundTrip sends one request frame and waits for its reply or the
// timeout. enc appends the request payload. On success the returned
// call holds the reply frame; the caller must release it with putCall.
func (c *FrameClient) roundTrip(typ byte, enc func([]byte) []byte) (*frameCall, error) {
	timer := time.NewTimer(c.timeout)
	defer timer.Stop()
	select {
	case c.window <- struct{}{}:
	case <-timer.C:
		return nil, fmt.Errorf("live: framed window full: %w", ErrWireTimeout)
	}
	defer func() { <-c.window }()

	call := c.getCall()
	c.mu.Lock()
	if c.broken != nil {
		err := c.broken
		c.mu.Unlock()
		c.calls.Put(call)
		return nil, err
	}
	id := c.nextID
	c.nextID++
	c.pending[id] = call
	c.mu.Unlock()

	c.wmu.Lock()
	b := beginFrame(c.wbuf[:0], typ, id)
	b = enc(b)
	b = endFrame(b, 0)
	c.wbuf = b
	c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	_, werr := c.conn.Write(b)
	c.wmu.Unlock()
	if werr != nil {
		// A failed or partial write poisons the stream for every call.
		c.fail(fmt.Errorf("live: framed write: %w", werr))
		<-call.done // fail completed it
		return nil, call.err
	}

	select {
	case <-call.done:
		if call.err != nil {
			return nil, call.err
		}
		return call, nil
	case <-timer.C:
		c.mu.Lock()
		if _, ok := c.pending[id]; ok {
			delete(c.pending, id)
			c.mu.Unlock()
			// The slot is abandoned to the reader (which will discard the
			// late reply); the call struct is not pooled again.
			return nil, ErrWireTimeout
		}
		c.mu.Unlock()
		// The reply (or a transport failure) raced the timer: take it.
		<-call.done
		if call.err != nil {
			return nil, call.err
		}
		return call, nil
	}
}

func (c *FrameClient) putCall(call *frameCall) { c.calls.Put(call) }

// finish decodes a reply frame into dec, translating msgError frames
// into WireError and protocol violations into a torn-down connection.
func (c *FrameClient) finish(call *frameCall, want byte, dec func(*wireReader)) error {
	defer c.putCall(call)
	if call.typ == msgError {
		return WireError(string(call.payload))
	}
	if call.typ != want|msgReplyBit {
		err := fmt.Errorf("live: framed reply type %#x, want %#x", call.typ, want|msgReplyBit)
		c.fail(err)
		return err
	}
	r := wireReader{buf: call.payload}
	dec(&r)
	if !r.done() {
		err := errors.New("live: malformed framed reply")
		c.fail(err)
		return err
	}
	return nil
}

// Evaluate runs Member.Evaluate over the framed wire.
func (c *FrameClient) Evaluate(args *MemberTaskArgs) (MemberEvalReply, error) {
	call, err := c.roundTrip(msgEvaluate, func(b []byte) []byte { return appendMemberTaskArgs(b, args) })
	if err != nil {
		return MemberEvalReply{}, err
	}
	var reply MemberEvalReply
	err = c.finish(call, msgEvaluate, func(r *wireReader) { r.memberEvalReply(&reply) })
	return reply, err
}

// Commit runs Member.Commit over the framed wire.
func (c *FrameClient) Commit(args *MemberCommitArgs) (MemberDecisionReply, error) {
	call, err := c.roundTrip(msgCommit, func(b []byte) []byte { return appendMemberCommitArgs(b, args) })
	if err != nil {
		return MemberDecisionReply{}, err
	}
	var reply MemberDecisionReply
	err = c.finish(call, msgCommit, func(r *wireReader) { r.memberDecisionReply(&reply) })
	return reply, err
}

// Submit runs Member.Submit over the framed wire.
func (c *FrameClient) Submit(args *MemberTaskArgs) (MemberDecisionReply, error) {
	call, err := c.roundTrip(msgSubmit, func(b []byte) []byte { return appendMemberTaskArgs(b, args) })
	if err != nil {
		return MemberDecisionReply{}, err
	}
	var reply MemberDecisionReply
	err = c.finish(call, msgSubmit, func(r *wireReader) { r.memberDecisionReply(&reply) })
	return reply, err
}

// SubmitBatch runs Member.SubmitBatch over the framed wire.
func (c *FrameClient) SubmitBatch(args *MemberBatchArgs) (MemberBatchReply, error) {
	call, err := c.roundTrip(msgSubmitBatch, func(b []byte) []byte { return appendMemberBatchArgs(b, args) })
	if err != nil {
		return MemberBatchReply{}, err
	}
	var reply MemberBatchReply
	err = c.finish(call, msgSubmitBatch, func(r *wireReader) { r.memberBatchReply(&reply) })
	return reply, err
}

// Summary runs Member.Summary over the framed wire.
func (c *FrameClient) Summary() (MemberSummaryReply, error) {
	call, err := c.roundTrip(msgSummary, func(b []byte) []byte { return b })
	if err != nil {
		return MemberSummaryReply{}, err
	}
	var reply MemberSummaryReply
	err = c.finish(call, msgSummary, func(r *wireReader) { r.memberSummaryReply(&reply) })
	return reply, err
}

// Relay runs Member.Relay over the framed wire.
func (c *FrameClient) Relay(args *MemberRelayArgs) (MemberRelayReply, error) {
	call, err := c.roundTrip(msgRelay, func(b []byte) []byte { return appendMemberRelayArgs(b, args) })
	if err != nil {
		return MemberRelayReply{}, err
	}
	var reply MemberRelayReply
	err = c.finish(call, msgRelay, func(r *wireReader) { r.memberRelayReply(&reply) })
	return reply, err
}
