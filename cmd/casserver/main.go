// Command casserver runs a live computational server: it registers
// with the agent, reports its load periodically and executes submitted
// tasks on a processor-sharing executor in scaled wall time.
//
// Usage:
//
//	casserver -name artimon -agent 127.0.0.1:7410 -scale 100
//
// The name must be a Table 2 machine (its Table 3/4 costs apply). The
// server runs until interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"casched"
)

func main() {
	var (
		name   = flag.String("name", "artimon", "machine name (cost-table key)")
		agent  = flag.String("agent", "127.0.0.1:7410", "agent RPC address; a comma-separated list fails over across replicated dispatchers")
		addr   = flag.String("addr", "127.0.0.1:0", "TCP listen address")
		scale  = flag.Float64("scale", 1, "virtual seconds per wall second")
		noise  = flag.Float64("noise", 0.03, "execution noise sigma")
		seed   = flag.Uint64("seed", 1, "noise seed")
		report = flag.Float64("report", 30, "load-report period in virtual seconds")
	)
	flag.Parse()

	srv, err := casched.StartLiveServer(casched.LiveServerConfig{
		Name:         *name,
		AgentAddr:    *agent,
		Clock:        casched.NewLiveClock(*scale),
		ReportPeriod: *report,
		NoiseSigma:   *noise,
		Seed:         *seed,
		Addr:         *addr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "casserver:", err)
		os.Exit(1)
	}
	fmt.Printf("casserver: %s serving on %s (agent %s)\n", *name, srv.Addr(), *agent)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	srv.Close()
	fmt.Println("casserver: stopped")
}
