// Memaware demonstrates the paper's §7 future-work extension:
// incorporating memory requirements into the allocation model. At the
// high rate of the first experiment set, plain HMCT overloads the fast
// servers until they exhaust RAM+swap and collapse (the paper's
// Table 6: 358/500 tasks survive). Wrapping HMCT in the memory-aware
// admission filter — which refuses placements whose projected memory
// demand would exceed a server's capacity — prevents the collapse
// entirely.
package main

import (
	"fmt"
	"log"

	"casched"
)

func main() {
	mt := casched.GenerateSet1(500, 20, 103) // the collapse regime of Table 6
	servers, err := casched.TestbedServers(casched.Set1Servers)
	if err != nil {
		log.Fatal(err)
	}
	capacity := make(map[string]float64, len(servers))
	for _, s := range servers {
		capacity[s.Name] = s.RAMMB + s.SwapMB
	}

	run := func(s casched.Scheduler) *casched.RunResult {
		res, err := casched.Run(casched.RunConfig{
			Servers:     servers,
			Scheduler:   s,
			Seed:        103,
			NoiseSigma:  0.03,
			MemoryModel: true,
		}, mt)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	plain, err := casched.NewScheduler("HMCT")
	if err != nil {
		log.Fatal(err)
	}
	bare := run(plain)

	// The memory-aware wrapper needs the current demand per server; in
	// a deployment the agent tracks it from its own placements. Here we
	// approximate it with the HTM-style bookkeeping the wrapper offers:
	// an inner HMCT whose demand callback reads the live run's memory
	// model is exercised inside the simulator, so we use the simulator's
	// own HTM-with-memory variant instead: HTMMemory makes the agent's
	// trace account for footprints and report projected collapses as
	// infeasible.
	inner, err := casched.NewScheduler("HMCT")
	if err != nil {
		log.Fatal(err)
	}
	guardedRes, err := casched.Run(casched.RunConfig{
		Servers:     servers,
		Scheduler:   inner,
		Seed:        103,
		NoiseSigma:  0.03,
		MemoryModel: true,
		HTMMemory:   true, // §7 extension: the HTM models memory too
	}, mt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("variant              completed  collapses  sumflow   maxstretch")
	for _, row := range []struct {
		name string
		res  *casched.RunResult
	}{
		{"HMCT (paper)", bare},
		{"HMCT + memory model", guardedRes},
	} {
		r := row.res.Report()
		fmt.Printf("%-20s %9d %10d %9.0f %11.2f\n",
			row.name, r.Completed, len(row.res.Collapses), r.SumFlow, r.MaxStretch)
	}
	fmt.Println("\nWith the memory-aware HTM the agent foresees projected collapses")
	fmt.Println("and routes around saturated servers, completing the metatask the")
	fmt.Println("paper's bare HMCT loses to memory exhaustion.")
}
