package fed

import (
	"casched/internal/agent"
	"casched/internal/relay"
	"casched/internal/task"
)

// Summary is the compact load summary a member periodically publishes
// to the dispatcher — the whole of what federation gossips about a
// partition. InFlight and Servers feed the cheap balance signal
// (in-flight per server, the classic hierarchical-agent ranking);
// MinReady is the HTM-backed drain signal: the earliest projected
// instant at which one of the member's servers drains its live work
// (min ProjectedReady over the partition, an absolute experiment date
// comparable across members against a common arrival anchor).
// HasMinReady is false for monitor-only heuristics, where routing
// falls back to the in-flight signal.
type Summary struct {
	// InFlight is the member's count of placed-but-uncompleted jobs.
	InFlight int
	// Servers is the member's registered-server count.
	Servers int
	// MinReady is min over the partition of the per-server projected
	// drain instant (valid only when HasMinReady).
	MinReady    float64
	HasMinReady bool
	// TenantInFlight splits InFlight per tenant (raw tenant strings,
	// "" for untenanted work) — the dispatcher's fair stale-mode
	// routing signal: with multi-tenant traffic, power-of-two-choices
	// ranks members on the submitting tenant's own backlog, so one
	// tenant's burst cannot steer every tenant's routing. Nil when the
	// member has no tenanted work or predates the field.
	TenantInFlight map[string]int
	// ServerReady maps each of the member's servers to its projected
	// drain instant — the per-server breakdown of MinReady that relay-
	// based routing prices candidate placements against. Published only
	// by relay-enabled members; nil otherwise (including all members
	// that predate the relay).
	ServerReady map[string]float64
	// RelaySeq is the member's relay-ledger sequence number at the
	// instant this summary was captured: relayed events with Seq <=
	// RelaySeq are already included in the counts above. Valid only
	// when HasRelay; members that predate the relay (or run with it
	// off) leave HasRelay false and the dispatcher falls back to
	// summary-only stale routing.
	RelaySeq uint64
	HasRelay bool
}

// Member is the dispatcher's handle on one federated agent: the
// transport seam. The in-process implementation wraps an agent.Core
// directly (tests, benches, single-process federations); the TCP
// implementation (Remote) drives a remote casagent over the live wire
// protocol. Every method may fail — a transport error, distinct from
// agent.ErrUnschedulable, counts toward the member's consecutive
// failures and eventually evicts it.
type Member interface {
	// Name identifies the member in routing state and diagnostics.
	Name() string
	// AddServer / RemoveServer manage the member's server partition.
	AddServer(server string) error
	RemoveServer(server string) error
	// CanSolve reports whether at least one of the member's servers
	// solves the task — the dispatcher's eligibility probe.
	CanSolve(spec *task.Spec) (bool, error)
	// Evaluate runs the member's heuristic without committing
	// (agent.Core.Evaluate): the fan-out half of a fresh-mode decision.
	Evaluate(req agent.Request) (agent.Candidate, error)
	// Commit commits a previously evaluated placement
	// (agent.Core.Commit): the second half of a fresh-mode decision.
	Commit(req agent.Request, server string) (agent.Decision, error)
	// Submit delegates one whole decision to the member — the
	// degraded-mode and unscored-rotation path.
	Submit(req agent.Request) (agent.Decision, error)
	// SubmitBatch pipelines a burst through the member's shard-local
	// batch prediction cache.
	SubmitBatch(reqs []agent.Request) ([]agent.Decision, error)
	// Complete and Report feed execution feedback to the member that
	// placed the job / owns the server.
	Complete(jobID int, server string, at float64) error
	Report(server string, load, at float64) error
	// Summary returns the member's current load summary. It doubles as
	// the liveness probe: a reachable member answers it.
	Summary() (Summary, error)
	// Close releases transport resources.
	Close() error
}

// eventSource is the optional capability of members whose event stream
// the dispatcher can merge (the in-process transport; remote members
// do not stream events over the wire).
type eventSource interface {
	Subscribe(fn func(agent.Event)) (cancel func())
}

// finalPredictor is the optional capability behind
// Dispatcher.FinalPredictions (in-process members).
type finalPredictor interface {
	FinalPredictions() map[int]float64
}

// relaySource is the optional capability of members that stream their
// decision/completion events: RelaySince returns the events after the
// given ledger sequence. ok is false when the member does not speak
// relay (relay off, or an old member on the wire) — the dispatcher
// then routes from gossiped summaries alone, exactly as before the
// relay existed. err is a transport failure, counted like any other.
type relaySource interface {
	RelaySince(after uint64) (relay.Delta, bool, error)
}

// InProcess is the in-process Member: a named agent.Core behind the
// transport seam. It never fails and its summaries are exact, so a
// dispatcher refreshing inline (SummaryInterval 0) reproduces the
// sharded Cluster's decisions — the parity the federated-vs-central
// test pins.
type InProcess struct {
	name string
	core *agent.Core
}

// NewInProcess wraps a core as a federation member.
func NewInProcess(name string, core *agent.Core) *InProcess {
	return &InProcess{name: name, core: core}
}

// Core exposes the wrapped core (end-of-run inspection).
func (m *InProcess) Core() *agent.Core { return m.core }

func (m *InProcess) Name() string { return m.name }

func (m *InProcess) AddServer(server string) error {
	m.core.AddServer(server)
	return nil
}

func (m *InProcess) RemoveServer(server string) error {
	m.core.RemoveServer(server)
	return nil
}

func (m *InProcess) CanSolve(spec *task.Spec) (bool, error) {
	return m.core.CanSolve(spec), nil
}

func (m *InProcess) Evaluate(req agent.Request) (agent.Candidate, error) {
	return m.core.Evaluate(req)
}

func (m *InProcess) Commit(req agent.Request, server string) (agent.Decision, error) {
	return m.core.Commit(req, server)
}

func (m *InProcess) Submit(req agent.Request) (agent.Decision, error) {
	return m.core.Submit(req)
}

func (m *InProcess) SubmitBatch(reqs []agent.Request) ([]agent.Decision, error) {
	return m.core.SubmitBatch(reqs)
}

func (m *InProcess) Complete(jobID int, server string, at float64) error {
	m.core.Complete(jobID, server, at)
	return nil
}

func (m *InProcess) Report(server string, load, at float64) error {
	m.core.Report(server, load, at)
	return nil
}

func (m *InProcess) Summary() (Summary, error) {
	ls := m.core.LoadSummary()
	s := Summary{
		InFlight:    ls.InFlight,
		Servers:     ls.Servers,
		MinReady:    ls.MinReady,
		HasMinReady: ls.HasMinReady,
		ServerReady: ls.ServerReady,
		RelaySeq:    ls.RelaySeq,
		HasRelay:    ls.HasRelay,
	}
	if len(ls.TenantInFlight) > 0 {
		s.TenantInFlight = ls.TenantInFlight
	}
	return s, nil
}

// RelaySince serves the dispatcher's relay pull straight from the
// wrapped core's ledger. ok is false when the core runs with the relay
// off.
func (m *InProcess) RelaySince(after uint64) (relay.Delta, bool, error) {
	d, ok := m.core.RelaySince(after)
	return d, ok, nil
}

// Partition enumerates the wrapped core's current server set — the
// promotion bootstrap (partitionSource capability).
func (m *InProcess) Partition() ([]string, bool, error) {
	return m.core.Servers(), true, nil
}

func (m *InProcess) Subscribe(fn func(agent.Event)) (cancel func()) {
	return m.core.Subscribe(fn)
}

func (m *InProcess) FinalPredictions() map[int]float64 {
	return m.core.FinalPredictions()
}

func (m *InProcess) Close() error { return nil }
