package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := NewRNG(7)
	child := a.Split()
	// The child's stream must not simply replay the parent's.
	diff := false
	for i := 0; i < 10; i++ {
		if a.Uint64() != child.Uint64() {
			diff = true
		}
	}
	if !diff {
		t.Error("split stream mirrors parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(35)
	}
	mean := sum / n
	if math.Abs(mean-35) > 0.5 {
		t.Errorf("Exp(35) sample mean = %v", mean)
	}
}

func TestExpPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) did not panic")
		}
	}()
	NewRNG(1).Exp(0)
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal(10, 2)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal mean = %v", mean)
	}
	if math.Abs(std-2) > 0.05 {
		t.Errorf("Normal std = %v", std)
	}
}

func TestNoiseFactorBounds(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 100000; i++ {
		f := r.NoiseFactor(0.03)
		if f < 1-0.09-1e-12 || f > 1+0.09+1e-12 {
			t.Fatalf("noise factor out of truncation bounds: %v", f)
		}
	}
	if NewRNG(1).NoiseFactor(0) != 1 {
		t.Error("zero sigma must return exactly 1")
	}
}

func TestIntn(t *testing.T) {
	r := NewRNG(13)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[r.Intn(3)]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(3) bucket %d count %d not near uniform", i, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestPick(t *testing.T) {
	r := NewRNG(17)
	counts := make([]int, 2)
	for i := 0; i < 30000; i++ {
		counts[r.Pick([]float64{1, 3})]++
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("Pick weights not respected: ratio %v", ratio)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRNG(23)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 8 {
		t.Errorf("shuffle lost elements: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Sum != 10 {
		t.Errorf("unexpected summary: %+v", s)
	}
	if math.Abs(s.Median-2.5) > 1e-12 {
		t.Errorf("median = %v", s.Median)
	}
	odd := Summarize([]float64{5, 1, 3})
	if odd.Median != 3 {
		t.Errorf("odd median = %v", odd.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Errorf("empty summary: %+v", empty)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Summarize mutated input: %v", xs)
	}
}

func TestPercentError(t *testing.T) {
	if got := PercentError(80.79, 79.99); math.Abs(got-0.99) > 0.02 {
		t.Errorf("PercentError = %v, want ~0.99 (Table 1 row 1)", got)
	}
	if PercentError(0, 10) != 0 {
		t.Error("PercentError with zero real must be 0")
	}
}

func TestMeanHelpers(t *testing.T) {
	if Mean(nil) != 0 || MeanInt(nil) != 0 {
		t.Error("empty means must be 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("Mean broken")
	}
	if MeanInt([]int{1, 2, 3}) != 2 {
		t.Error("MeanInt broken")
	}
	if SumFloat([]float64{1.5, 2.5}) != 4 {
		t.Error("SumFloat broken")
	}
	if !math.IsInf(MaxFloat(nil), -1) {
		t.Error("MaxFloat(nil) must be -Inf")
	}
	if MaxFloat([]float64{1, 9, 3}) != 9 {
		t.Error("MaxFloat broken")
	}
}

// Property: quantile-free summary invariants hold for arbitrary samples.
func TestPropertySummaryInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		s := Summarize(clean)
		if s.N == 0 {
			return true
		}
		return s.Min <= s.Mean+1e-6 && s.Mean <= s.Max+1e-6 &&
			s.Min <= s.Median && s.Median <= s.Max && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
