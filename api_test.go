package casched_test

import (
	"math"
	"strings"
	"testing"
	"time"

	"casched"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	mt := casched.GenerateSet2(60, 25, 42)
	servers, err := casched.TestbedServers(casched.Set2Servers)
	if err != nil {
		t.Fatal(err)
	}
	msf, err := casched.NewScheduler("MSF")
	if err != nil {
		t.Fatal(err)
	}
	res, err := casched.Run(casched.RunConfig{
		Servers: servers, Scheduler: msf, Seed: 1, NoiseSigma: 0.03,
	}, mt)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if rep.Completed != 60 || rep.SumFlow <= 0 {
		t.Errorf("unexpected report: %+v", rep)
	}
	if len(res.ServerStats) != 4 {
		t.Errorf("server stats missing: %d", len(res.ServerStats))
	}
}

func TestPublicAPISchedulers(t *testing.T) {
	if len(casched.Schedulers()) < 10 {
		t.Errorf("scheduler family too small: %d", len(casched.Schedulers()))
	}
	if _, err := casched.NewScheduler("nosuch"); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if casched.NewMPRandomTie().Name() != "MP" {
		t.Error("MP random-tie variant misnamed")
	}
}

func TestPublicAPIHTM(t *testing.T) {
	m := casched.NewHTM([]string{"s1"}, casched.HTMWithSync())
	spec := &casched.Spec{Problem: "p", CostOn: map[string]casched.Cost{"s1": {Compute: 10}}}
	if err := m.Place(0, spec, 0, "s1"); err != nil {
		t.Fatal(err)
	}
	c, ok := m.PredictedCompletion(0)
	if !ok || math.Abs(c-10) > 1e-9 {
		t.Errorf("prediction = %v,%v", c, ok)
	}
	sim, ok := m.Sim("s1")
	if !ok {
		t.Fatal("sim accessor broken")
	}
	chart := casched.ExtractGantt(sim)
	if !strings.Contains(chart.Render(40), "task 0") {
		t.Error("gantt render missing task row")
	}
	_ = casched.HTMWithMemoryModel() // constructor must exist
}

func TestPublicAPIMetataskCSV(t *testing.T) {
	mt := casched.GenerateSet1(20, 25, 5)
	var sb strings.Builder
	if err := casched.WriteMetataskCSV(&sb, mt); err != nil {
		t.Fatal(err)
	}
	back, err := casched.ReadMetataskCSV(strings.NewReader(sb.String()), "rt")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 20 {
		t.Errorf("round trip lost tasks: %d", back.Len())
	}
}

func TestPublicAPIScenario(t *testing.T) {
	sc := casched.Set2Scenario(30, 20, 3)
	sc.Arrival = casched.ArrivalBursty
	sc.BurstSize = 3
	mt, err := casched.GenerateScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Tasks[1].Arrival != mt.Tasks[0].Arrival {
		t.Error("bursty arrivals not grouped")
	}
	if casched.ArrivalPoisson.String() != "poisson" ||
		casched.ArrivalUniform.String() != "uniform" ||
		casched.ArrivalConstant.String() != "constant" {
		t.Error("arrival process constants broken")
	}
}

func TestPublicAPIDistributionAndMatrix(t *testing.T) {
	mt := casched.GenerateSet2(50, 20, 9)
	servers, err := casched.TestbedServers(casched.Set2Servers)
	if err != nil {
		t.Fatal(err)
	}
	runs := make(map[string][]casched.TaskResult)
	for _, name := range []string{"MCT", "MSF"} {
		s, err := casched.NewScheduler(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := casched.Run(casched.RunConfig{
			Servers: servers, Scheduler: s, Seed: 9, NoiseSigma: 0.03,
		}, mt)
		if err != nil {
			t.Fatal(err)
		}
		runs[name] = res.Tasks
	}
	d := casched.ComputeDistribution("MSF", runs["MSF"])
	if d.FlowP99 < d.FlowP50 || d.MeanFlow <= 0 {
		t.Errorf("distribution broken: %+v", d)
	}
	if !strings.Contains(d.Format(), "MSF flow") {
		t.Error("distribution format broken")
	}
	names, matrix, err := casched.SoonerMatrix(runs)
	if err != nil {
		t.Fatal(err)
	}
	out := casched.FormatSoonerMatrix(names, matrix)
	if !strings.Contains(out, "MCT") || !strings.Contains(out, "MSF") {
		t.Error("sooner matrix format broken")
	}
}

func TestPublicAPIFailureInjection(t *testing.T) {
	mt := casched.GenerateSet2(30, 15, 9)
	servers, err := casched.TestbedServers(casched.Set2Servers)
	if err != nil {
		t.Fatal(err)
	}
	s, err := casched.NewScheduler("HMCT")
	if err != nil {
		t.Fatal(err)
	}
	res, err := casched.Run(casched.RunConfig{
		Servers: servers, Scheduler: s, Seed: 9,
		Failures: []casched.ServerFailure{{Server: "artimon", At: 100}},
	}, mt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Collapses) != 1 {
		t.Errorf("injected failure not recorded: %+v", res.Collapses)
	}
}

func TestPublicAPICampaignAndFormats(t *testing.T) {
	c := casched.DefaultCampaign()
	c.N = 40
	c.Seeds = []uint64{103}
	res, err := c.RunSet(2, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(casched.FormatSet(res), "sumflow") {
		t.Error("FormatSet broken")
	}
	sweep, err := c.RateSweep(2, []float64{25}, []string{"MSF"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(casched.FormatSweep(sweep, "sumflow"), "MSF") {
		t.Error("FormatSweep broken")
	}
	if !strings.Contains(casched.FormatTable2(), "artimon") ||
		!strings.Contains(casched.FormatTable3(), "1800") ||
		!strings.Contains(casched.FormatTable4(), "spinnaker") {
		t.Error("static table formats broken")
	}
	fig, err := casched.Figure1(60)
	if err != nil || !strings.Contains(fig, "33.3%") {
		t.Errorf("Figure1 broken: %v", err)
	}
}

func TestPublicAPILiveDeployment(t *testing.T) {
	clock := casched.NewLiveClock(2000)
	s, err := casched.NewScheduler("MSF")
	if err != nil {
		t.Fatal(err)
	}
	agent, err := casched.StartLiveAgent(casched.LiveAgentConfig{
		Scheduler: s, Clock: clock, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	srv, err := casched.StartLiveServer(casched.LiveServerConfig{
		Name: "artimon", AgentAddr: agent.Addr(), Clock: clock,
		Quantum: casched.DefaultQuantum, ReportPeriod: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	mt := &casched.Metatask{Name: "api-live", Tasks: []*casched.Task{
		{ID: 0, Spec: casched.WasteCPUSpec(200), Arrival: 0},
		{ID: 1, Spec: casched.MatmulSpec(1200), Arrival: 5},
	}}
	results, err := casched.RunLiveMetatask(agent.Addr(), mt, clock)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Completed {
			t.Errorf("task %d incomplete", r.ID)
		}
	}
	rep := casched.ComputeReport("live", results)
	if rep.Completed != 2 {
		t.Errorf("live report: %+v", rep)
	}
}

func TestPublicAPIFinishSooner(t *testing.T) {
	a := []casched.TaskResult{{ID: 0, Completed: true, Completion: 5}}
	b := []casched.TaskResult{{ID: 0, Completed: true, Completion: 9}}
	n, err := casched.FinishSooner(a, b)
	if err != nil || n != 1 {
		t.Errorf("FinishSooner = %d,%v", n, err)
	}
}

func TestDefaultQuantum(t *testing.T) {
	if casched.DefaultQuantum != 2*time.Millisecond {
		t.Error("DefaultQuantum changed unexpectedly")
	}
}

// TestPublicAPIAgentCore drives the streaming agent core through the
// facade: membership, batch submission, the event stream, completion
// feedback and prediction eviction.
func TestPublicAPIAgentCore(t *testing.T) {
	msf, err := casched.NewScheduler("MSF")
	if err != nil {
		t.Fatal(err)
	}
	core, err := casched.NewAgentCore(casched.AgentCoreConfig{Scheduler: msf, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var decisions, completions int
	cancel := core.Subscribe(func(ev casched.AgentEvent) {
		switch ev.Kind {
		case casched.AgentEventDecision:
			decisions++
		case casched.AgentEventCompletion:
			completions++
		}
	})
	defer cancel()

	for _, name := range []string{"artimon", "spinnaker"} {
		core.AddServer(name)
	}
	spec := casched.WasteCPUSpec(400)
	reqs := make([]casched.AgentRequest, 4)
	for i := range reqs {
		reqs[i] = casched.AgentRequest{JobID: i, TaskID: i, Spec: spec, Arrival: 0}
	}
	decs, err := core.SubmitBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range decs {
		if d.Server == "" || !d.HasPrediction {
			t.Fatalf("decision %d = %+v", i, d)
		}
	}
	if decisions != 4 {
		t.Errorf("decision events = %d, want 4", decisions)
	}
	// Completion evicts the placement-time prediction but keeps the
	// trace projection.
	core.Complete(0, decs[0].Server, decs[0].Predicted)
	if completions != 1 {
		t.Errorf("completion events = %d, want 1", completions)
	}
	if _, ok := core.Prediction(0); ok {
		t.Error("prediction survived completion")
	}
	if len(core.FinalPredictions()) != 4 {
		t.Errorf("final predictions = %d, want 4", len(core.FinalPredictions()))
	}
	// Unschedulable tasks surface the sentinel.
	bad := &casched.Spec{Problem: "none", CostOn: map[string]casched.Cost{}}
	if _, err := core.Submit(casched.AgentRequest{JobID: 99, Spec: bad}); err != casched.ErrUnschedulable {
		t.Errorf("err = %v, want ErrUnschedulable", err)
	}
}

// TestPublicAPICluster drives the sharded agent through the facade:
// options, membership with a policy, batch routing, the merged event
// stream via a StatsCollector, completions and rebalancing.
func TestPublicAPICluster(t *testing.T) {
	cl, err := casched.NewCluster(
		casched.WithShards(2),
		casched.WithHeuristic("hmct"),
		casched.WithShardPolicy(casched.LeastLoadedShardPolicy()),
		casched.WithSeed(3),
		casched.WithHTMWorkers(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if cl.NumShards() != 2 || !cl.UsesHTM() {
		t.Fatalf("shards=%d usesHTM=%v", cl.NumShards(), cl.UsesHTM())
	}
	stats := casched.NewStatsCollector()
	defer cl.Subscribe(stats.Collect)()

	costs := make(map[string]casched.Cost)
	for i := 0; i < 6; i++ {
		costs[string(rune('a'+i))] = casched.Cost{Compute: 10 + float64(i)}
	}
	spec := &casched.Spec{Problem: "p", Variant: 1, CostOn: costs}
	for name := range costs {
		cl.AddServer(name)
	}
	reqs := make([]casched.AgentRequest, 4)
	for i := range reqs {
		reqs[i] = casched.AgentRequest{JobID: i, TaskID: i, Spec: spec, Arrival: 0}
	}
	decs, err := cl.SubmitBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range decs {
		if d.Server == "" || !d.HasPrediction {
			t.Fatalf("decision %d = %+v", i, d)
		}
	}
	dec, err := cl.Submit(casched.AgentRequest{JobID: 10, TaskID: 10, Spec: spec, Arrival: 1})
	if err != nil {
		t.Fatal(err)
	}
	cl.Complete(10, dec.Server, dec.Predicted)
	cl.Rebalance()

	st := stats.Snapshot()
	if st.Decisions != 5 || st.Completions != 1 || st.PredictionSamples != 1 {
		t.Errorf("stats = %+v", st)
	}
	if got := cl.InFlight(); got != 4 {
		t.Errorf("in-flight = %d", got)
	}
	if _, ok := casched.ShardPolicyByName("affinity"); !ok {
		t.Error("ShardPolicyByName(affinity) failed")
	}
	_ = casched.HashShardPolicy()
	_ = casched.AffinityShardPolicy(nil)
}

// TestPublicAPIFederation drives the federated dispatcher through the
// facade: options, policy membership, fresh fan-out submission, the
// merged event stream via a StatsCollector, completions and the
// member diagnostics.
func TestPublicAPIFederation(t *testing.T) {
	f, err := casched.NewFederation(
		casched.WithFedMembers(2),
		casched.WithFedHeuristic("hmct"),
		casched.WithFedPolicy(casched.LeastLoadedShardPolicy()),
		casched.WithFedSeed(3),
		casched.WithFedHTMWorkers(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumMembers() != 2 {
		t.Fatalf("members = %d, want 2", f.NumMembers())
	}
	stats := casched.NewStatsCollector()
	defer f.Subscribe(stats.Collect)()

	costs := make(map[string]casched.Cost)
	for i := 0; i < 6; i++ {
		costs[string(rune('a'+i))] = casched.Cost{Compute: 10 + float64(i)}
	}
	spec := &casched.Spec{Problem: "p", Variant: 1, CostOn: costs}
	for name := range costs {
		if err := f.AddServer(name); err != nil {
			t.Fatal(err)
		}
	}
	reqs := make([]casched.AgentRequest, 4)
	for i := range reqs {
		reqs[i] = casched.AgentRequest{JobID: i, TaskID: i, Spec: spec, Arrival: 0}
	}
	decs, err := f.SubmitBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range decs {
		if d.Server == "" || !d.HasPrediction {
			t.Fatalf("decision %d = %+v", i, d)
		}
	}
	dec, err := f.Submit(casched.AgentRequest{JobID: 10, TaskID: 10, Spec: spec, Arrival: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Complete(10, dec.Server, dec.Predicted); err != nil {
		t.Fatal(err)
	}

	st := stats.Snapshot()
	if st.Decisions != 5 || st.Completions != 1 {
		t.Errorf("stats = %+v", st)
	}
	if got := f.InFlight(); got != 4 {
		t.Errorf("in-flight = %d", got)
	}
	for _, mi := range f.Members() {
		if mi.Evicted || !mi.Fresh {
			t.Errorf("member %s not live+fresh: %+v", mi.Name, mi)
		}
	}
	if len(f.FinalPredictions()) != 5 {
		t.Errorf("final predictions = %d, want 5", len(f.FinalPredictions()))
	}
}

// TestPublicAPIAgentCoreOptions covers the shared option idiom on
// NewAgentCore, including the rejection of cluster-only options.
func TestPublicAPIAgentCoreOptions(t *testing.T) {
	core, err := casched.NewAgentCore(casched.AgentCoreConfig{},
		casched.WithHeuristic("MSF"), casched.WithSeed(5), casched.WithHTMWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	core.AddServer("artimon")
	dec, err := core.Submit(casched.AgentRequest{JobID: 0, TaskID: 0,
		Spec: casched.WasteCPUSpec(200), Arrival: 0})
	if err != nil || dec.Server != "artimon" {
		t.Errorf("decision = %+v, %v", dec, err)
	}
	if _, err := casched.NewAgentCore(casched.AgentCoreConfig{},
		casched.WithHeuristic("MSF"), casched.WithShards(4)); err == nil {
		t.Error("NewAgentCore accepted WithShards(4)")
	}
	if _, err := casched.NewAgentCore(casched.AgentCoreConfig{},
		casched.WithHeuristic("MSF"), casched.WithShardPolicy(casched.HashShardPolicy())); err == nil {
		t.Error("NewAgentCore accepted WithShardPolicy")
	}
}

// TestPublicAPIHTMRetention covers the trace-compaction option.
func TestPublicAPIHTMRetention(t *testing.T) {
	m := casched.NewHTM([]string{"s1"}, casched.HTMWithRetention(50))
	spec := &casched.Spec{Problem: "p", Variant: 1,
		CostOn: map[string]casched.Cost{"s1": {Compute: 5}}}
	for i := 0; i < 20; i++ {
		if err := m.Place(i, spec, float64(i)*30, "s1"); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(m.Placements()); got >= 20 {
		t.Errorf("retention kept all %d records", got)
	}
}

// TestPublicAPIShardedLiveAgent runs a real TCP deployment with the
// dispatch layer between the wire protocol and the shard cores.
func TestPublicAPIShardedLiveAgent(t *testing.T) {
	clock := casched.NewLiveClock(2000)
	s, err := casched.NewScheduler("HMCT")
	if err != nil {
		t.Fatal(err)
	}
	agent, err := casched.StartLiveAgent(casched.LiveAgentConfig{
		Scheduler: s, Clock: clock, Seed: 1,
		Shards: 2, ShardPolicy: casched.LeastLoadedShardPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	for _, name := range []string{"artimon", "spinnaker"} {
		srv, err := casched.StartLiveServer(casched.LiveServerConfig{
			Name: name, AgentAddr: agent.Addr(), Clock: clock,
			Quantum: casched.DefaultQuantum, ReportPeriod: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
	}
	mt := &casched.Metatask{Name: "sharded-live", Tasks: []*casched.Task{
		{ID: 0, Spec: casched.WasteCPUSpec(200), Arrival: 0},
		{ID: 1, Spec: casched.WasteCPUSpec(400), Arrival: 2},
		{ID: 2, Spec: casched.WasteCPUSpec(200), Arrival: 4},
	}}
	results, err := casched.RunLiveMetatask(agent.Addr(), mt, clock)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Completed {
			t.Errorf("task %d incomplete", r.ID)
		}
	}
}

// TestPublicAPISchedulerCaseInsensitive covers the registry lookup.
func TestPublicAPISchedulerCaseInsensitive(t *testing.T) {
	s, err := casched.NewScheduler("msf")
	if err != nil || s.Name() != "MSF" {
		t.Errorf("NewScheduler(msf) = %v, %v", s, err)
	}
}
