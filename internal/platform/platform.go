// Package platform describes the experimental testbed of the paper:
// the machines of Table 2 (CPU, memory, swap) and the two server sets
// used by the first (matrix multiplication) and second (waste-cpu)
// experiment campaigns.
package platform

import "fmt"

// Role describes how a machine participates in the client-agent-server
// deployment.
type Role int

const (
	// RoleServer machines execute tasks.
	RoleServer Role = iota
	// RoleAgent is the central scheduler.
	RoleAgent
	// RoleClient submits tasks.
	RoleClient
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RoleServer:
		return "server"
	case RoleAgent:
		return "agent"
	case RoleClient:
		return "client"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Machine is one testbed host, as listed in the paper's Table 2.
type Machine struct {
	Name      string
	Role      Role
	Processor string
	SpeedMHz  int
	MemoryMB  float64 // main memory, megabytes
	SwapMB    float64 // swap space, megabytes
	System    string
}

// TotalMemoryMB returns RAM plus swap: the hard capacity beyond which a
// server collapses in the shared-resource model.
func (m Machine) TotalMemoryMB() float64 { return m.MemoryMB + m.SwapMB }

// Testbed is the Table 2 machine list, indexed by machine name.
// Values are taken verbatim from the paper (1 Go = 1024 Mo).
var Testbed = map[string]Machine{
	"chamagne":  {Name: "chamagne", Role: RoleServer, Processor: "pentium II", SpeedMHz: 330, MemoryMB: 512, SwapMB: 134, System: "linux"},
	"cabestan":  {Name: "cabestan", Role: RoleServer, Processor: "pentium III", SpeedMHz: 500, MemoryMB: 192, SwapMB: 400, System: "linux"},
	"artimon":   {Name: "artimon", Role: RoleServer, Processor: "pentium IV", SpeedMHz: 1700, MemoryMB: 512, SwapMB: 1024, System: "linux"},
	"pulney":    {Name: "pulney", Role: RoleServer, Processor: "xeon", SpeedMHz: 1400, MemoryMB: 256, SwapMB: 533, System: "linux"},
	"valette":   {Name: "valette", Role: RoleServer, Processor: "pentium II", SpeedMHz: 400, MemoryMB: 128, SwapMB: 126, System: "linux"},
	"spinnaker": {Name: "spinnaker", Role: RoleServer, Processor: "xeon", SpeedMHz: 2000, MemoryMB: 1024, SwapMB: 2048, System: "linux"},
	"xrousse":   {Name: "xrousse", Role: RoleAgent, Processor: "pentium II bipro", SpeedMHz: 400, MemoryMB: 512, SwapMB: 512, System: "linux"},
	"zanzibar":  {Name: "zanzibar", Role: RoleClient, Processor: "pentium III", SpeedMHz: 550, MemoryMB: 256, SwapMB: 500, System: "linux"},
}

// Set1Servers lists the servers of the first set of experiments
// (matrix multiplications), in the paper's order.
var Set1Servers = []string{"chamagne", "pulney", "cabestan", "artimon"}

// Set2Servers lists the servers of the second set of experiments
// (waste-cpu tasks), in the paper's order.
var Set2Servers = []string{"valette", "spinnaker", "cabestan", "artimon"}

// AgentHost and ClientHost name the agent and client machines used in
// both experiment sets.
const (
	AgentHost  = "xrousse"
	ClientHost = "zanzibar"
)

// Get returns the machine with the given name.
func Get(name string) (Machine, error) {
	m, ok := Testbed[name]
	if !ok {
		return Machine{}, fmt.Errorf("platform: unknown machine %q", name)
	}
	return m, nil
}

// MustGet returns the machine with the given name, panicking if it is
// not part of the testbed. Use only with literal names.
func MustGet(name string) Machine {
	m, err := Get(name)
	if err != nil {
		panic(err)
	}
	return m
}

// Servers resolves a list of server names to Machine descriptions,
// failing if any name is unknown or not a server.
func Servers(names []string) ([]Machine, error) {
	ms := make([]Machine, 0, len(names))
	for _, n := range names {
		m, err := Get(n)
		if err != nil {
			return nil, err
		}
		if m.Role != RoleServer {
			return nil, fmt.Errorf("platform: machine %q has role %s, not server", n, m.Role)
		}
		ms = append(ms, m)
	}
	return ms, nil
}
