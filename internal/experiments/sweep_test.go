package experiments

import (
	"strings"
	"testing"
)

func TestRateSweep(t *testing.T) {
	c := smallCampaign()
	c.N = 80
	res, err := c.RateSweep(2, []float64{30, 20}, []string{"MCT", "MSF"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	if res.Rates[0] != 20 || res.Rates[1] != 30 {
		t.Errorf("rates not sorted: %v", res.Rates)
	}
	// Higher rate (smaller D) means more contention: sum-flow at D=20
	// must exceed sum-flow at D=30 for each heuristic.
	for _, h := range []string{"MCT", "MSF"} {
		hi, ok1 := res.Point(20, h)
		lo, ok2 := res.Point(30, h)
		if !ok1 || !ok2 {
			t.Fatalf("missing points for %s", h)
		}
		if hi.Report.SumFlow <= lo.Report.SumFlow {
			t.Errorf("%s: sumflow at D=20 (%.0f) not above D=30 (%.0f)",
				h, hi.Report.SumFlow, lo.Report.SumFlow)
		}
	}
	if _, ok := res.Point(99, "MCT"); ok {
		t.Error("phantom point found")
	}
}

func TestRateSweepValidation(t *testing.T) {
	c := smallCampaign()
	if _, err := c.RateSweep(3, []float64{20}, []string{"MCT"}); err == nil {
		t.Error("unknown set accepted")
	}
	if _, err := c.RateSweep(2, nil, []string{"MCT"}); err == nil {
		t.Error("empty rates accepted")
	}
	if _, err := c.RateSweep(2, []float64{20}, nil); err == nil {
		t.Error("empty heuristics accepted")
	}
	c.Seeds = nil
	if _, err := c.RateSweep(2, []float64{20}, []string{"MCT"}); err == nil {
		t.Error("empty seeds accepted")
	}
	bad := smallCampaign()
	if _, err := bad.RateSweep(2, []float64{20}, []string{"nosuch"}); err == nil {
		t.Error("unknown heuristic accepted")
	}
}

func TestFormatSweep(t *testing.T) {
	c := smallCampaign()
	c.N = 60
	res, err := c.RateSweep(2, []float64{25}, []string{"MCT", "MSF"})
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"sumflow", "maxflow", "maxstretch", "makespan", "completed"} {
		out := FormatSweep(res, metric)
		if !strings.Contains(out, metric) || !strings.Contains(out, "MSF") {
			t.Errorf("sweep format for %s incomplete:\n%s", metric, out)
		}
	}
	if !strings.Contains(FormatSweep(res, "nosuch"), "?") {
		t.Error("unknown metric must render placeholders")
	}
}

func TestBaselinesComparison(t *testing.T) {
	c := smallCampaign()
	c.N = 100
	reports, sooner, err := c.BaselinesComparison(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 9 {
		t.Fatalf("reports = %d, want 9", len(reports))
	}
	byName := map[string]int{}
	for i, r := range reports {
		byName[r.Heuristic] = i
		if r.Completed == 0 {
			t.Errorf("%s completed nothing", r.Heuristic)
		}
	}
	// MET must be the degenerate extreme: it piles everything on the
	// fastest server, so its sum-flow exceeds MSF's.
	if reports[byName["MET"]].SumFlow <= reports[byName["MSF"]].SumFlow {
		t.Errorf("MET sumflow %.0f not worse than MSF %.0f",
			reports[byName["MET"]].SumFlow, reports[byName["MSF"]].SumFlow)
	}
	if _, ok := sooner["MCT"]; ok {
		t.Error("MCT compared against itself")
	}
	if len(sooner) != 8 {
		t.Errorf("sooner entries = %d, want 8", len(sooner))
	}
	out := FormatBaselines(reports, sooner)
	for _, want := range []string{"KPB", "OLB", "SA", "sooner-than-MCT"} {
		if !strings.Contains(out, want) {
			t.Errorf("baselines format missing %q", want)
		}
	}
}

func TestBaselinesValidation(t *testing.T) {
	c := smallCampaign()
	c.Seeds = nil
	if _, _, err := c.BaselinesComparison(20); err == nil {
		t.Error("empty seeds accepted")
	}
}
