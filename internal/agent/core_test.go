package agent

import (
	"errors"
	"math"
	"testing"

	"casched/internal/sched"
	"casched/internal/task"
	"casched/internal/trace"
)

// twoServerSpec builds a spec solvable on s1 and s2 with the given
// compute costs.
func twoServerSpec(c1, c2 float64) *task.Spec {
	return &task.Spec{
		Problem: "p",
		CostOn: map[string]task.Cost{
			"s1": {Compute: c1},
			"s2": {Compute: c2},
		},
	}
}

func newCore(t *testing.T, s sched.Scheduler, servers ...string) *Core {
	t.Helper()
	c, err := New(Config{Scheduler: s, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range servers {
		c.AddServer(name)
	}
	return c
}

func TestNewRequiresScheduler(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("core without scheduler accepted")
	}
}

func TestBeliefCorrections(t *testing.T) {
	c := newCore(t, sched.NewMCT(), "s1", "s2")
	spec := twoServerSpec(10, 100)

	// Fresh beliefs estimate zero load.
	if got := c.LoadEstimate("s1"); got != 0 {
		t.Errorf("initial estimate = %v", got)
	}
	// An assignment increments the belief before the next report.
	if _, err := c.Submit(Request{JobID: 0, TaskID: 0, Spec: spec}); err != nil {
		t.Fatal(err)
	}
	if got := c.LoadEstimate("s1"); got != 1 {
		t.Errorf("estimate after assignment = %v, want 1", got)
	}
	// The completion message decrements it.
	c.Complete(0, "s1", 10)
	if got := c.LoadEstimate("s1"); got != 0 {
		t.Errorf("estimate after completion = %v, want 0", got)
	}
	// A report replaces the belief and resets both corrections; the
	// estimate never goes negative even if completions outrun it.
	c.Report("s1", 2, 30)
	c.Complete(99, "s1", 31)
	c.Complete(98, "s1", 32)
	c.Complete(97, "s1", 33)
	if got := c.LoadEstimate("s1"); got != 0 {
		t.Errorf("estimate = %v, want clamped 0 (2-3)", got)
	}
	if got := c.LoadEstimate("nosuch"); got != 0 {
		t.Errorf("unknown server estimate = %v", got)
	}
}

func TestSubmitUnschedulable(t *testing.T) {
	c := newCore(t, sched.NewMCT(), "other")
	_, err := c.Submit(Request{JobID: 1, Spec: twoServerSpec(1, 1)})
	if !errors.Is(err, ErrUnschedulable) {
		t.Errorf("err = %v, want ErrUnschedulable", err)
	}
}

func TestMembershipLifecycle(t *testing.T) {
	c := newCore(t, sched.NewHMCT(), "s2", "s1")
	if got := c.Servers(); len(got) != 2 || got[0] != "s1" || got[1] != "s2" {
		t.Errorf("servers = %v", got)
	}
	c.AddServer("s1") // idempotent
	if got := c.Servers(); len(got) != 2 {
		t.Errorf("duplicate AddServer grew membership: %v", got)
	}
	// HTM traces follow membership.
	if got := c.HTM().Servers(); len(got) != 2 {
		t.Errorf("htm servers = %v", got)
	}
	c.RemoveServer("s1")
	if got := c.Servers(); len(got) != 1 || got[0] != "s2" {
		t.Errorf("servers after removal = %v", got)
	}
	if got := c.HTM().Servers(); len(got) != 1 || got[0] != "s2" {
		t.Errorf("htm servers after removal = %v", got)
	}
	// Decisions now exclude the removed server.
	dec, err := c.Submit(Request{JobID: 5, Spec: twoServerSpec(1, 100)})
	if err != nil || dec.Server != "s2" {
		t.Errorf("decision = %+v, %v; want s2", dec, err)
	}
}

func TestPredictionEvictionOnComplete(t *testing.T) {
	c := newCore(t, sched.NewHMCT(), "s1", "s2")
	spec := twoServerSpec(10, 100)
	dec, err := c.Submit(Request{JobID: 7, TaskID: 7, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.HasPrediction || math.Abs(dec.Predicted-10) > 1e-9 {
		t.Fatalf("decision = %+v, want prediction 10 on s1", dec)
	}
	if p, ok := c.Prediction(7); !ok || p != dec.Predicted {
		t.Errorf("Prediction = %v,%v", p, ok)
	}
	c.Complete(7, dec.Server, 10)
	if _, ok := c.Prediction(7); ok {
		t.Error("prediction not evicted on completion")
	}
	// The end-of-run projection remains available through the trace.
	if p, ok := c.PredictedCompletion(7); !ok || math.Abs(p-10) > 1e-9 {
		t.Errorf("PredictedCompletion = %v,%v", p, ok)
	}
	if finals := c.FinalPredictions(); len(finals) != 1 || math.Abs(finals[7]-10) > 1e-9 {
		t.Errorf("FinalPredictions = %v", finals)
	}
}

func TestMonitorHeuristicHasNoPredictions(t *testing.T) {
	c := newCore(t, sched.NewMCT(), "s1", "s2")
	dec, err := c.Submit(Request{JobID: 1, Spec: twoServerSpec(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if dec.HasPrediction {
		t.Error("MCT decision carries a prediction")
	}
	if c.HTM() != nil {
		t.Error("MCT core built an HTM")
	}
	if finals := c.FinalPredictions(); len(finals) != 0 {
		t.Errorf("FinalPredictions = %v", finals)
	}
}

// TestSubmitBatchMatchesSequential pins the batch fast path's exactness:
// the same requests through SubmitBatch and through a Submit loop on an
// identically seeded twin must commit identical placements and
// predictions, for every HTM heuristic and for MCT.
func TestSubmitBatchMatchesSequential(t *testing.T) {
	specs := []*task.Spec{
		twoServerSpec(10, 12),
		twoServerSpec(40, 30),
		twoServerSpec(25, 25),
	}
	servers := []string{"s1", "s2"}
	for _, name := range []string{"HMCT", "MP", "MSF", "MNI", "MCT", "KPB"} {
		mkReqs := func() []Request {
			// Three simultaneous-arrival waves to exercise cache reuse,
			// with spec variety within each wave. The last wave's arrival
			// regresses (a resubmission racing a burst): the batch cache
			// must flush rather than serve entries from the earlier wave.
			waves := []float64{0, 30, 10}
			reqs := make([]Request, 12)
			for i := range reqs {
				reqs[i] = Request{
					JobID:   i,
					TaskID:  i,
					Spec:    specs[i%len(specs)],
					Arrival: waves[i/4],
				}
			}
			return reqs
		}

		one, _ := sched.ByName(name)
		seq := newCore(t, one, servers...)
		var want []Decision
		for _, r := range mkReqs() {
			d, err := seq.Submit(r)
			if err != nil {
				t.Fatalf("%s: sequential submit %d: %v", name, r.JobID, err)
			}
			want = append(want, d)
		}

		two, _ := sched.ByName(name)
		batched := newCore(t, two, servers...)
		got, err := batched.SubmitBatch(mkReqs())
		if err != nil {
			t.Fatalf("%s: batch: %v", name, err)
		}
		for i := range want {
			if got[i].Server != want[i].Server {
				t.Errorf("%s: job %d placed on %s (batch) vs %s (sequential)",
					name, i, got[i].Server, want[i].Server)
			}
			if math.Abs(got[i].Predicted-want[i].Predicted) > 1e-9 ||
				got[i].HasPrediction != want[i].HasPrediction {
				t.Errorf("%s: job %d prediction %v/%v vs %v/%v", name, i,
					got[i].Predicted, got[i].HasPrediction,
					want[i].Predicted, want[i].HasPrediction)
			}
		}
	}
}

func TestSubmitBatchPartialFailure(t *testing.T) {
	c := newCore(t, sched.NewHMCT(), "s1", "s2")
	good := twoServerSpec(5, 6)
	bad := &task.Spec{Problem: "q", CostOn: map[string]task.Cost{"elsewhere": {Compute: 1}}}
	decs, err := c.SubmitBatch([]Request{
		{JobID: 0, Spec: good},
		{JobID: 1, Spec: bad},
		{JobID: 2, Spec: good},
	})
	if err == nil || !errors.Is(err, ErrUnschedulable) {
		t.Errorf("batch error = %v, want wrapped ErrUnschedulable", err)
	}
	if decs[0].Server == "" || decs[2].Server == "" {
		t.Error("schedulable batch members did not commit")
	}
	if decs[1].Server != "" {
		t.Errorf("unschedulable member got a server: %+v", decs[1])
	}
}

func TestEventStream(t *testing.T) {
	var log trace.Log
	c, err := New(Config{Scheduler: sched.NewHMCT(), Seed: 1, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	cancel := c.Subscribe(func(ev Event) { events = append(events, ev) })
	c.AddServer("s1")
	c.AddServer("s2")
	spec := twoServerSpec(10, 100)
	if _, err := c.Submit(Request{JobID: 3, TaskID: 3, Spec: spec, Arrival: 1}); err != nil {
		t.Fatal(err)
	}
	c.Report("s2", 1.5, 2)
	c.Complete(3, "s1", 11)
	c.RemoveServer("s2")

	wantKinds := []EventKind{EventServerAdded, EventServerAdded, EventDecision,
		EventReport, EventCompletion, EventServerRemoved}
	if len(events) != len(wantKinds) {
		t.Fatalf("events = %d, want %d: %+v", len(events), len(wantKinds), events)
	}
	for i, k := range wantKinds {
		if events[i].Kind != k {
			t.Errorf("event %d kind = %v, want %v", i, events[i].Kind, k)
		}
	}
	if ev := events[2]; ev.Server != "s1" || ev.JobID != 3 || !ev.HasPrediction {
		t.Errorf("decision event = %+v", ev)
	}
	if ev := events[3]; ev.Load != 1.5 || ev.Time != 2 {
		t.Errorf("report event = %+v", ev)
	}

	// After cancel, no more deliveries.
	cancel()
	before := len(events)
	c.Report("s1", 0, 3)
	if len(events) != before {
		t.Error("cancelled subscriber still receiving")
	}

	// The trace log captured the schedule and done records.
	if n := len(log.Filter("schedule")); n != 1 {
		t.Errorf("schedule records = %d", n)
	}
	if n := len(log.Filter("done")); n != 1 {
		t.Errorf("done records = %d", n)
	}
}

// TestResubmissionBookkeeping: distinct attempts of the same task are
// distinct jobs, and completions resolve to the task/attempt pair.
func TestResubmissionBookkeeping(t *testing.T) {
	c := newCore(t, sched.NewHMCT(), "s1", "s2")
	spec := twoServerSpec(10, 11)
	if _, err := c.Submit(Request{JobID: 4, TaskID: 4, Attempt: 0, Spec: spec, Arrival: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(Request{JobID: 1_000_004, TaskID: 4, Attempt: 1, Spec: spec, Arrival: 5}); err != nil {
		t.Fatal(err)
	}
	done := c.Complete(1_000_004, "s1", 20)
	if done.TaskID != 4 || done.Attempt != 1 {
		t.Errorf("completion = %+v, want task 4 attempt 1", done)
	}
	// Unknown jobs fall back to the job id.
	unknown := c.Complete(77, "s2", 21)
	if unknown.TaskID != 77 || unknown.Attempt != 0 {
		t.Errorf("unknown completion = %+v", unknown)
	}
}
