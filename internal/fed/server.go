package fed

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"time"

	"casched/internal/agent"
	"casched/internal/cluster"
	"casched/internal/live"
	"casched/internal/task"
)

// ServerConfig parameterizes a federation dispatcher runtime
// (cmd/casfed).
type ServerConfig struct {
	// Addr is the TCP listen address (default "127.0.0.1:0").
	Addr string
	// Heuristic is the federation-wide heuristic name; joining members
	// must run the same one.
	Heuristic string
	// Policy assigns registering servers to members (default hash).
	Policy cluster.ShardPolicy
	// Seed drives routing randomness.
	Seed uint64
	// Clock stamps arrival dates for client requests.
	Clock *live.Clock
	// StaleAfter, SummaryInterval, MaxFailures tune the dispatcher
	// (see Config). SummaryInterval additionally paces the background
	// gossip loop (default 500ms).
	StaleAfter      time.Duration
	SummaryInterval time.Duration
	MaxFailures     int
	// Timeout bounds each member RPC (default 2s).
	Timeout time.Duration
	// IntakeRate, when positive, bounds the federation's raw intake
	// with one dispatch-level token bucket (IntakeRate tasks per
	// virtual second, burst IntakeBurst).
	IntakeRate  float64
	IntakeBurst float64
	// TenantShares and Admission are recorded for in-process members
	// (see Config); members joining over the wire (casagent -join)
	// carry their own fair-share and admission configuration.
	TenantShares map[string]float64
	Admission    bool
	// Relay turns on the live event relay (see Config.Relay): the
	// runtime pulls each relay-capable member's decision/completion
	// deltas on a background RelayInterval tick (default 100ms) and
	// degrades stale-mode routing to near-fresh relay pricing instead
	// of frozen power-of-two-choices. Members that do not speak relay
	// fall back individually.
	Relay bool
	// RelayInterval paces both the background relay loop and the
	// inline pull gate (default 100ms).
	RelayInterval time.Duration
	// RelayMaxConsecutive bounds consecutive delegations to one member
	// between relay view advances (default 8).
	RelayMaxConsecutive int
}

// Server is the federation dispatcher runtime: a TCP listener exposing
// the client-facing "Agent" service (Register/Schedule/TaskDone/
// LoadReport — clients and computational servers cannot tell a
// federation from a plain agent) plus the "Fed" service member agents
// join through. Deployment order mirrors NetSolve's: dispatcher
// first, then members (casagent -join), then servers, then clients.
type Server struct {
	cfg ServerConfig
	d   *Dispatcher

	mu    sync.Mutex
	addrs map[string]string // server name -> RPC address

	lis      net.Listener
	srv      *rpc.Server
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// StartServer launches a federation dispatcher.
func StartServer(cfg ServerConfig) (*Server, error) {
	if cfg.Heuristic == "" {
		return nil, errors.New("fed: server needs a heuristic")
	}
	if cfg.Clock == nil {
		return nil, errors.New("fed: server needs a clock")
	}
	if cfg.SummaryInterval == 0 {
		cfg.SummaryInterval = 500 * time.Millisecond
	}
	if cfg.Relay && cfg.RelayInterval == 0 {
		cfg.RelayInterval = 100 * time.Millisecond
	}
	d, err := NewWithMembers(Config{
		Heuristic:           cfg.Heuristic,
		Policy:              cfg.Policy,
		Seed:                cfg.Seed,
		StaleAfter:          cfg.StaleAfter,
		SummaryInterval:     cfg.SummaryInterval,
		MaxFailures:         cfg.MaxFailures,
		IntakeRate:          cfg.IntakeRate,
		IntakeBurst:         cfg.IntakeBurst,
		TenantShares:        cfg.TenantShares,
		Admission:           cfg.Admission,
		Relay:               cfg.Relay,
		RelayInterval:       cfg.RelayInterval,
		RelayMaxConsecutive: cfg.RelayMaxConsecutive,
	}, nil)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		d:     d,
		addrs: make(map[string]string),
		stop:  make(chan struct{}),
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fed: listen: %w", err)
	}
	s.lis = lis
	s.srv = rpc.NewServer()
	if err := s.srv.RegisterName("Fed", &FedService{s}); err != nil {
		lis.Close()
		return nil, fmt.Errorf("fed: rpc register: %w", err)
	}
	if err := s.srv.RegisterName("Agent", &FedAgentService{s}); err != nil {
		lis.Close()
		return nil, fmt.Errorf("fed: rpc register: %w", err)
	}
	go s.serve()
	s.wg.Add(1)
	go s.gossipLoop()
	if cfg.Relay {
		s.wg.Add(1)
		go s.relayLoop()
	}
	return s, nil
}

// Addr returns the dispatcher's RPC address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Dispatcher exposes the routing layer (diagnostics, studies).
func (s *Server) Dispatcher() *Dispatcher { return s.d }

// Close stops the listener and the gossip loop and closes member
// handles. Safe to call more than once.
func (s *Server) Close() error {
	var err error
	s.stopOnce.Do(func() {
		close(s.stop)
		err = s.lis.Close()
		s.wg.Wait()
		if derr := s.d.Close(); err == nil {
			err = derr
		}
	})
	return err
}

// serve accepts RPC connections until the listener closes.
func (s *Server) serve() {
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		go s.srv.ServeConn(conn)
	}
}

// gossipLoop periodically refreshes every member's summary — the
// federation's load-summary exchange, which also probes evicted
// members for readmission.
func (s *Server) gossipLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.SummaryInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.d.RefreshSummaries()
		}
	}
}

// relayLoop pulls relay deltas from every relay-capable member on the
// RelayInterval tick — the high-frequency, low-volume counterpart of
// the gossip loop, keeping the dispatcher's member views near-fresh
// between summaries.
func (s *Server) relayLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.RelayInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.d.PullRelay()
		}
	}
}

// FedService is the member-facing RPC surface.
type FedService struct{ s *Server }

// Join admits a member agent into the federation. The member's
// heuristic must match the dispatcher's: cross-member score
// comparison assumes one objective.
func (f *FedService) Join(args live.JoinArgs, _ *live.Ack) error {
	if args.Name == "" || args.Addr == "" {
		return errors.New("fed: join needs a name and an address")
	}
	if !strings.EqualFold(args.Heuristic, f.s.cfg.Heuristic) {
		return fmt.Errorf("fed: member %s runs %s, federation runs %s",
			args.Name, args.Heuristic, f.s.cfg.Heuristic)
	}
	if err := f.s.d.AddMember(NewRemote(args.Name, args.Addr, f.s.cfg.Timeout)); err != nil {
		// A partial partition replay is surfaced to the joiner, which
		// can simply rejoin: the replay is idempotent.
		return err
	}
	// Pull the first summary immediately so a freshly joined member is
	// routable without waiting out a gossip tick.
	f.s.d.RefreshSummaries()
	return nil
}

// FedAgentService speaks the client half of the live wire protocol on
// behalf of the federation, so casserver and casclient drive a
// federation unchanged.
type FedAgentService struct{ s *Server }

// Register routes a computational server into a member's partition
// via the shard policy and records its address for Schedule replies.
func (f *FedAgentService) Register(args live.RegisterArgs, _ *live.Ack) error {
	f.s.mu.Lock()
	f.s.addrs[args.Name] = args.Addr
	f.s.mu.Unlock()
	return f.s.d.AddServer(args.Name)
}

// Schedule picks a server for a client request through the federated
// dispatcher.
func (f *FedAgentService) Schedule(args live.ScheduleArgs, reply *live.ScheduleReply) error {
	spec, err := task.Resolve(args.Problem, args.Variant)
	if err != nil {
		return err
	}
	dec, err := f.s.d.Submit(agent.Request{
		JobID:     args.TaskKey,
		TaskID:    args.TaskKey,
		Spec:      spec,
		Arrival:   f.s.cfg.Clock.Now(),
		Submitted: args.Arrival,
		Tenant:    args.Tenant,
		Deadline:  args.Deadline,
	})
	if errors.Is(err, agent.ErrUnschedulable) {
		return fmt.Errorf("fed: no server solves %s", spec.Name())
	}
	if err != nil {
		return err
	}
	f.s.mu.Lock()
	addr := f.s.addrs[dec.Server]
	f.s.mu.Unlock()
	*reply = live.ScheduleReply{Server: dec.Server, Addr: addr}
	return nil
}

// TaskDone relays a server's completion message to the placing
// member.
func (f *FedAgentService) TaskDone(args live.TaskDoneArgs, _ *live.Ack) error {
	return f.s.d.Complete(args.TaskKey, args.Server, args.At)
}

// LoadReport relays a monitor report to the server's owning member.
func (f *FedAgentService) LoadReport(args live.LoadReportArgs, _ *live.Ack) error {
	return f.s.d.Report(args.Name, args.Load, args.At)
}
