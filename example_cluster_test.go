package casched_test

import (
	"fmt"
	"log"

	"casched"
)

// ExampleNewCluster shows the sharded agent: four servers partitioned
// across two agent cores, each decision fanned out over the shard
// winners and committed on the global best.
func ExampleNewCluster() {
	cl, err := casched.NewCluster(
		casched.WithShards(2),
		casched.WithHeuristic("HMCT"),
		casched.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	spec := &casched.Spec{Problem: "demo", Variant: 1, CostOn: map[string]casched.Cost{
		"east1": {Compute: 10}, "east2": {Compute: 14},
		"west1": {Compute: 12}, "west2": {Compute: 18},
	}}
	for _, s := range []string{"east1", "east2", "west1", "west2"} {
		cl.AddServer(s)
	}
	for i := 0; i < 3; i++ {
		dec, err := cl.Submit(casched.AgentRequest{JobID: i, TaskID: i, Spec: spec, Arrival: 0})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("task %d -> %s (predicted completion %.0fs)\n", i, dec.Server, dec.Predicted)
	}
	// Output:
	// task 0 -> east1 (predicted completion 10s)
	// task 1 -> west1 (predicted completion 12s)
	// task 2 -> east2 (predicted completion 14s)
}
