package sched

// This file implements the classic dynamic mapping baselines of
// Maheswaran, Ali, Siegel, Hensgen & Freund, "Dynamic matching and
// scheduling of a class of independent tasks onto heterogeneous
// computing systems" (HCW'99) — the paper's reference [10], where MCT
// itself comes from. The companion technical report [2] of the
// reproduced paper compares its HTM heuristics against this family in
// simulation, so they are part of the reproduction's scope:
//
//	MET  — Minimum Execution Time: fastest server, load-blind.
//	OLB  — Opportunistic Load Balancing: next-ready server,
//	       execution-time-blind.
//	KPB  — K-Percent Best: completion-time choice restricted to the
//	       k% fastest servers for the task.
//	SA   — Switching Algorithm: alternates between MCT and MET
//	       depending on the load-imbalance ratio.
//
// Ready times and completion estimates come from the HTM, giving each
// baseline the same information quality as HMCT.

import (
	"math"

	"casched/internal/htm"
)

// MET is Minimum Execution Time: the task goes to the server with the
// lowest unloaded cost, regardless of load. Fast but catastrophic for
// load balance on consistently heterogeneous testbeds ([10] §4.1).
type MET struct{}

// NewMET returns the MET baseline.
func NewMET() *MET { return &MET{} }

// Name implements Scheduler.
func (*MET) Name() string { return "MET" }

// Choose implements Scheduler.
func (m *MET) Choose(ctx *Context) (string, error) { return chooseVia(m, ctx) }

// ChooseScored implements ScoredScheduler; the score is the unloaded
// execution time.
func (*MET) ChooseScored(ctx *Context) (Choice, error) {
	best, bestServer := math.Inf(1), ""
	for _, s := range ctx.Candidates {
		cost, ok := ctx.Task.Spec.Cost(s)
		if !ok {
			continue
		}
		if t := cost.Total(); t < best {
			best, bestServer = t, s
		}
	}
	if bestServer == "" {
		return Choice{}, ErrNoServer
	}
	return Choice{Server: bestServer, Score: best, Tie: best}, nil
}

// readyTime returns the HTM-projected instant at which the server
// drains its current work — the "machine availability/ready time" of
// [10]. An idle server is ready now.
func readyTime(ctx *Context, server string) (float64, error) {
	ready, ok := ctx.HTM.ProjectedReady(server)
	if !ok {
		return 0, ErrNoServer
	}
	if ctx.Now > ready {
		ready = ctx.Now
	}
	return ready, nil
}

// OLB is Opportunistic Load Balancing: the task goes to the server
// expected to become ready soonest, ignoring how fast it executes the
// task. Keeps every machine busy; generally poor completion times
// ([10] §4.1).
type OLB struct{}

// NewOLB returns the OLB baseline.
func NewOLB() *OLB { return &OLB{} }

// Name implements Scheduler.
func (*OLB) Name() string { return "OLB" }

func (*OLB) usesHTM() bool { return true }

// Choose implements Scheduler.
func (o *OLB) Choose(ctx *Context) (string, error) { return chooseVia(o, ctx) }

// ChooseScored implements ScoredScheduler; the score is the projected
// ready time.
func (*OLB) ChooseScored(ctx *Context) (Choice, error) {
	if ctx.HTM == nil {
		return Choice{}, ErrNoServer
	}
	best, bestServer := math.Inf(1), ""
	for _, s := range ctx.Candidates {
		if _, ok := ctx.Task.Spec.Cost(s); !ok {
			continue
		}
		r, err := readyTime(ctx, s)
		if err != nil {
			continue
		}
		if r < best {
			best, bestServer = r, s
		}
	}
	if bestServer == "" {
		return Choice{}, ErrNoServer
	}
	return Choice{Server: bestServer, Score: best, Tie: best}, nil
}

// KPB is K-Percent Best: only the ⌈k·m/100⌉ servers with the lowest
// unloaded execution time for the task are eligible; among them the
// task goes to the one minimizing the HTM-predicted completion. With
// k=100 KPB degenerates to (H)MCT; with k→0 to MET ([10] §4.1).
type KPB struct {
	// K is the percentage of servers kept (default 50).
	K float64
}

// NewKPB returns KPB with the default k=50%.
func NewKPB() *KPB { return &KPB{K: 50} }

// Name implements Scheduler.
func (*KPB) Name() string { return "KPB" }

func (*KPB) usesHTM() bool { return true }

// Choose implements Scheduler.
func (k *KPB) Choose(ctx *Context) (string, error) { return chooseVia(k, ctx) }

// ChooseScored implements ScoredScheduler; the score is the predicted
// completion within the k%-fastest subset. Note that on a sharded pool
// the k% subset is taken per partition, not globally.
func (k *KPB) ChooseScored(ctx *Context) (Choice, error) {
	kk := k.K
	if kk <= 0 || kk > 100 {
		kk = 50
	}
	type cand struct {
		server string
		exec   float64
	}
	var cands []cand
	for _, s := range ctx.Candidates {
		if cost, ok := ctx.Task.Spec.Cost(s); ok {
			cands = append(cands, cand{s, cost.Total()})
		}
	}
	if len(cands) == 0 {
		return Choice{}, ErrNoServer
	}
	// Select the ⌈k%⌉ fastest.
	keep := int(math.Ceil(kk / 100 * float64(len(cands))))
	if keep < 1 {
		keep = 1
	}
	// Insertion sort by execution time (candidate lists are tiny).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].exec < cands[j-1].exec; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	subset := make([]string, 0, keep)
	for _, c := range cands[:keep] {
		subset = append(subset, c.server)
	}

	sub := *ctx
	sub.Candidates = subset
	preds, err := predictAll(&sub)
	if err != nil {
		return Choice{}, err
	}
	w, _, _ := argminScan(preds, func(p htm.Prediction) float64 { return p.Completion })
	return Choice{Server: w.Server, Score: w.Completion, Tie: w.Completion}, nil
}

// SA is the Switching Algorithm: it tracks the load-imbalance ratio
// r = min(ready)/max(ready) and switches between MET (when the system
// is balanced, r ≥ high) and MCT (when it becomes imbalanced, r ≤ low),
// cycling between the two regimes ([10] §4.1). Thresholds follow the
// reference (low 0.6, high 0.9).
type SA struct {
	// Low and High are the switching thresholds (defaults 0.6, 0.9).
	Low, High float64

	useMET bool
}

// NewSA returns SA with the reference thresholds.
func NewSA() *SA { return &SA{Low: 0.6, High: 0.9} }

// Name implements Scheduler.
func (*SA) Name() string { return "SA" }

func (*SA) usesHTM() bool { return true }

// Choose implements Scheduler.
func (sa *SA) Choose(ctx *Context) (string, error) { return chooseVia(sa, ctx) }

// ChooseScored implements ScoredScheduler. The score is the delegated
// regime's objective (MET's execution time or HMCT's completion date),
// so scores from partitions in different switching regimes are not
// comparable; a sharded deployment of SA is best-effort.
func (sa *SA) ChooseScored(ctx *Context) (Choice, error) {
	if ctx.HTM == nil {
		return Choice{}, ErrNoServer
	}
	low, high := sa.Low, sa.High
	if low <= 0 {
		low = 0.6
	}
	if high <= low {
		high = 0.9
	}
	minReady, maxReady := math.Inf(1), 0.0
	any := false
	for _, s := range ctx.Candidates {
		if _, ok := ctx.Task.Spec.Cost(s); !ok {
			continue
		}
		r, err := readyTime(ctx, s)
		if err != nil {
			continue
		}
		any = true
		// Ready times are measured from now so an idle server counts 0.
		rel := r - ctx.Now
		if rel < minReady {
			minReady = rel
		}
		if rel > maxReady {
			maxReady = rel
		}
	}
	if !any {
		return Choice{}, ErrNoServer
	}
	ratio := 1.0
	if maxReady > 0 {
		ratio = minReady / maxReady
	}
	if ratio >= high {
		sa.useMET = true
	} else if ratio <= low {
		sa.useMET = false
	}
	if sa.useMET {
		return (&MET{}).ChooseScored(ctx)
	}
	return (&HMCT{}).ChooseScored(ctx)
}
