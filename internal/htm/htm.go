// Package htm implements the Historical Trace Manager of the paper
// (§2.3): the agent-side component that "stores and keeps track of
// information about each task", simulates the execution of every placed
// task on every server under the shared-resource model, and predicts
// the completion date of a candidate placement together with the
// perturbation it inflicts on already-mapped tasks.
//
// Terminology follows §2.4:
//
//	ρ_j   — simulated finishing date of task j before the new arrival
//	ρ'_j  — its finishing date after simulating the new task's placement
//	π_j   — the perturbation ρ'_j − ρ_j
//
// The HTM of the paper deliberately ignores memory requirements (that
// is listed as future work §7); construct the Manager with
// WithMemoryModel to enable the extension.
//
// # Evaluation core
//
// Candidate evaluation is the scheduler's hot path: every arriving task
// triggers one projection per candidate server. The Manager therefore
// runs EvaluateAll concurrently (the candidate projections operate on
// independent copy-on-write clones) and incrementally: the baseline
// projection ρ_j of each server — which full replay would recompute
// from scratch for every candidate — is cached and only recomputed when
// the server's live trace actually changes (a placement, a
// synchronization re-anchor, a drop). Advancing the trace clock does
// not invalidate the cache, because projected completion dates are
// points on the same fluid trajectory regardless of where along it the
// projection starts. EvaluateFull keeps the original full-replay
// algorithm as a reference: predictions from the two paths agree within
// floating-point accumulation error (see the equivalence test).
//
// The Manager is safe for concurrent use.
package htm

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"casched/internal/fluid"
	"casched/internal/platform"
	"casched/internal/task"
)

// interferenceEps is the completion-delay threshold above which a task
// is counted as "interfered with" (used by the MNI heuristic).
const interferenceEps = 1e-6

// Option configures a Manager.
type Option func(*Manager)

// WithMemoryModel makes the HTM's internal simulations account for
// server memory (thrashing and collapse), using the Table 2 capacities.
// This is the paper's §7 "incorporate memory requirements into the
// model" extension; the paper's own HTM runs without it.
func WithMemoryModel() Option {
	return func(m *Manager) { m.memoryModel = true }
}

// WithSync makes the Manager re-anchor its traces on actual completion
// notifications (NotifyCompletion), the paper's §7 "improve the
// synchronization between the HTM and the execution" extension.
func WithSync() Option {
	return func(m *Manager) { m.sync = true }
}

// WithWorkers bounds the number of goroutines EvaluateAll fans
// candidate projections out to. Zero or negative selects GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(m *Manager) { m.workers = n }
}

// WithRetention bounds the trace history: records of jobs that
// finished more than window seconds before the current trace time are
// pruned as the trace advances. Predictions are unchanged by pruning —
// a projection depends only on the live jobs, and pruning never
// touches a live job — but Table 1-style retrospection (Placements,
// PredictedCompletion) forgets pruned jobs, which is the price of a
// months-long deployment keeping bounded memory. Zero or negative
// keeps the paper's unbounded behavior.
func WithRetention(window float64) Option {
	return func(m *Manager) { m.retention = window }
}

// Prediction is the HTM's answer for one candidate placement.
type Prediction struct {
	// Server is the candidate server.
	Server string
	// Completion is ρ'_{n+1}: the predicted completion date of the new
	// task if placed on Server.
	Completion float64
	// Flow is Completion minus the task's arrival date.
	Flow float64
	// Perturbation is Σ_j π_j over the tasks already placed on Server.
	Perturbation float64
	// Interfered is the number of already-placed tasks whose predicted
	// completion is delayed by more than a tolerance (for MNI).
	Interfered int
	// PerTask maps still-running job ids to their individual
	// perturbation π_j (tasks already finished in the trace have π = 0
	// and are omitted). Populated by Evaluate and EvaluateFull; nil in
	// EvaluateAll results, where no heuristic consumes it.
	PerTask map[int]float64
}

// SumFlowObjective is the quantity the MSF heuristic minimizes:
// the new task's flow plus the total perturbation (§4.3).
func (p Prediction) SumFlowObjective() float64 { return p.Flow + p.Perturbation }

// placement records where a job was placed.
type placement struct {
	server  string
	arrival float64
}

// serverTrace is the Manager's per-server state: the live fluid
// simulation plus the cached baseline projection.
type serverTrace struct {
	sim *fluid.Sim
	// gen counts trajectory-changing mutations of sim (placements,
	// re-anchors). Advancing the clock is not a mutation: it moves
	// along the projected trajectory without changing it.
	gen uint64
	// baseline caches the projected completion date ρ_j of every job
	// that was live when the projection ran; baselineGen is the gen it
	// was computed at.
	baseline    *baselineSet
	baselineGen uint64
	// drain memoizes max over baseline of ρ_j (0 for an empty
	// baseline), maintained by setBaseline so the ProjectedReady
	// family reads O(1) instead of rescanning the map — that scan is
	// the routing hot path of a sharded dispatch layer.
	drain float64
}

// baselineSet is a refcounted, pooled baseline projection. The trace
// cache holds one reference; every evaluation snapshot that escapes the
// Manager lock holds its own, so a concurrent recompute can replace the
// cache without yanking the map out from under in-flight projections.
// The map is recycled (cleared, buckets kept) when the last reference
// drops, which is what keeps steady-state baseline refreshes from
// allocating.
type baselineSet struct {
	m    map[int]float64
	refs atomic.Int32
}

var baselinePool = sync.Pool{New: func() any { return &baselineSet{m: make(map[int]float64)} }}

// newBaselineSet returns an empty set holding one reference.
func newBaselineSet() *baselineSet {
	b := baselinePool.Get().(*baselineSet)
	b.refs.Store(1)
	return b
}

func (b *baselineSet) acquire() *baselineSet { b.refs.Add(1); return b }

func (b *baselineSet) release() {
	if b.refs.Add(-1) == 0 {
		clear(b.m)
		baselinePool.Put(b)
	}
}

// simPool recycles projection clones across decisions; a pooled clone
// owns a job slab (fluid.CloneLiveInto), so once the pool is warm,
// snapshotting and projecting a candidate does not touch the heap.
var simPool = sync.Pool{New: func() any { return new(fluid.Sim) }}

func getSim() *fluid.Sim  { return simPool.Get().(*fluid.Sim) }
func putSim(s *fluid.Sim) { simPool.Put(s) }

// setBaseline installs a freshly computed baseline projection and its
// drain memo, taking ownership of one reference and dropping the
// previous cache's.
func (tr *serverTrace) setBaseline(baseline *baselineSet, gen uint64) {
	if tr.baseline != nil {
		tr.baseline.release()
	}
	tr.baseline = baseline
	tr.baselineGen = gen
	tr.drain = 0
	for _, c := range baseline.m {
		if c > tr.drain {
			tr.drain = c
		}
	}
}

// invalidate marks the trace's trajectory as changed.
func (tr *serverTrace) invalidate() { tr.gen++ }

// Manager is the Historical Trace Manager. It is safe for concurrent
// use: candidate evaluations may race placements and completion
// notifications, each decision observing a consistent trace snapshot.
type Manager struct {
	mu         sync.RWMutex
	traces     map[string]*serverTrace
	order      []string
	placements map[int]placement
	now        float64

	memoryModel bool
	sync        bool
	workers     int

	// retention is the completed-record window (WithRetention);
	// lastPrune is the trace time of the last pruning pass, and
	// pruneScratch the reusable removed-id buffer pruning fills.
	retention    float64
	lastPrune    float64
	pruneScratch []int
}

// New constructs a Manager tracking the given servers. Unknown server
// names are allowed (capacities then default to unlimited memory) so
// that synthetic testbeds can be simulated; names present in
// platform.Testbed pick up their Table 2 memory capacities when the
// memory model is enabled.
func New(servers []string, opts ...Option) *Manager {
	m := &Manager{
		traces:     make(map[string]*serverTrace, len(servers)),
		placements: make(map[int]placement),
	}
	for _, o := range opts {
		o(m)
	}
	for _, name := range servers {
		m.addServerLocked(name)
	}
	return m
}

// AddServer starts tracking a server that joined after construction:
// its fresh trace is anchored at the current trace time. Idempotent by
// name. This is the membership-growth half of the trace lifecycle;
// DropServer is the other.
func (m *Manager) AddServer(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.addServerLocked(name)
}

// addServerLocked creates the trace for one server. Caller holds m.mu
// (or is the constructor).
func (m *Manager) addServerLocked(name string) {
	if _, ok := m.traces[name]; ok {
		return
	}
	cfg := fluid.Config{Name: name}
	if m.memoryModel {
		if mach, err := platform.Get(name); err == nil {
			cfg.RAMMB = mach.MemoryMB
			cfg.SwapMB = mach.SwapMB
			cfg.Thrash = true
		}
	}
	tr := &serverTrace{sim: fluid.New(cfg)}
	tr.sim.AdvanceTo(m.now)
	m.traces[name] = tr
	m.order = slices.Insert(m.order, sort.SearchStrings(m.order, name), name)
}

// Placements returns the ids of every job ever placed, in ascending
// order — the record backing Table 1's "simulated completion date"
// column (pair with PredictedCompletion).
func (m *Manager) Placements() []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]int, 0, len(m.placements))
	for id := range m.placements {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Servers returns the tracked server names in sorted order.
func (m *Manager) Servers() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]string(nil), m.order...)
}

// Now returns the trace time.
func (m *Manager) Now() float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.now
}

// AdvanceTo moves every server trace forward to time t.
func (m *Manager) AdvanceTo(t float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.advanceLocked(t)
}

// advanceLocked advances all traces and returns the effective time:
// the trace never moves backwards, so a stale t (behind a concurrent
// caller's advance) is clamped to the current trace time. The baseline
// caches stay valid (see the package comment).
func (m *Manager) advanceLocked(t float64) float64 {
	if t < m.now {
		return m.now
	}
	for _, name := range m.order {
		m.traces[name].sim.AdvanceToQuiet(t)
	}
	m.now = t
	m.pruneLocked()
	return t
}

// pruneLocked drops completed-job records older than the retention
// window (WithRetention), amortized to at most one pass per
// quarter-window of trace time. Caller holds m.mu. Pruning removes
// only terminal records, so cached baselines and live projections are
// untouched.
func (m *Manager) pruneLocked() {
	if m.retention <= 0 || m.now-m.lastPrune < m.retention/4 {
		return
	}
	m.lastPrune = m.now
	cutoff := m.now - m.retention
	for _, name := range m.order {
		m.pruneScratch = m.traces[name].sim.PruneCompletedBefore(cutoff, m.pruneScratch[:0])
		for _, id := range m.pruneScratch {
			delete(m.placements, id)
		}
	}
}

// baselineLocked returns the server's cached baseline projection,
// recomputing it when the trace mutated since it was last taken.
func (m *Manager) baselineLocked(tr *serverTrace) map[int]float64 {
	if tr.baseline != nil && tr.baselineGen == tr.gen {
		return tr.baseline.m
	}
	clone := tr.sim.CloneLiveInto(getSim())
	b := newBaselineSet()
	projectCloneInto(clone, b.m)
	putSim(clone)
	tr.setBaseline(b, tr.gen)
	return tr.baseline.m
}

// projectCloneInto runs a live-only clone (from CloneLive/CloneLiveInto)
// to idle and records into out the projected completion date of every
// job that was live at the clone. Jobs lost to a projected collapse are
// absent from the result, as in fluid.Sim.ProjectedCompletions. The
// clone is consumed; releasing it back to the pool is the caller's job.
func projectCloneInto(clone *fluid.Sim, out map[int]float64) {
	clone.RunToIdleQuiet(math.Inf(1))
	// A live-only clone's job list is exactly the set that was live when
	// it was taken; no pre-run copy of Live() is needed.
	for _, j := range clone.Jobs() {
		if c, ok := j.Completion(); ok {
			out[j.ID] = c
		}
	}
}

// candidateJob is one projection EvaluateAll hands to a worker.
type candidateJob struct {
	server string
	cost   task.Cost
	clone  *fluid.Sim
	// baseline is an acquired reference to the server's cached
	// projection; nil when the cache was stale, in which case the
	// worker computes it from baseClone and offers it back to the
	// cache (tr at generation gen).
	baseline  *baselineSet
	baseClone *fluid.Sim
	tr        *serverTrace
	gen       uint64
}

// projectCandidate adds the candidate task to the clone, runs the
// perturbed projection and derives the prediction against the baseline.
// A stale baseline (j.baseline == nil) is computed here, outside the
// Manager lock, and offered back to the server's cache — so the
// expensive projections all run in the workers and the lock only
// covers snapshotting. The clones are consumed.
func (m *Manager) projectCandidate(j candidateJob, id int, spec *task.Spec, arrival float64, withPerTask bool) (Prediction, error) {
	if j.baseline == nil {
		b := newBaselineSet()
		projectCloneInto(j.baseClone, b.m)
		putSim(j.baseClone)
		m.mu.Lock()
		if j.tr.gen == j.gen && (j.tr.baseline == nil || j.tr.baselineGen != j.gen) {
			j.tr.setBaseline(b.acquire(), j.gen)
		}
		m.mu.Unlock()
		j.baseline = b
	}
	defer j.baseline.release()
	defer putSim(j.clone)
	if err := j.clone.Add(id, arrival, j.cost, spec.MemoryMB); err != nil {
		return Prediction{}, fmt.Errorf("htm: evaluate on %q: %w", j.server, err)
	}
	j.clone.RunToIdleQuiet(math.Inf(1))

	p := Prediction{Server: j.server, Completion: math.Inf(1)}
	if withPerTask {
		p.PerTask = make(map[int]float64, len(j.baseline.m))
	}
	// Iterate the clone's job list (deterministic release order) rather
	// than the baseline map, so the floating-point perturbation sum is
	// reproducible across calls.
	for _, jb := range j.clone.Jobs() {
		if jb.ID == id {
			// The candidate itself: an unfinished projection means the
			// placement collapses the server (memory-model extension);
			// report an infinite completion so heuristics avoid it.
			if c, ok := jb.Completion(); ok {
				p.Completion = c
			}
			continue
		}
		before, tracked := j.baseline.m[jb.ID]
		if !tracked {
			// Finished (π = 0 exactly) or already lost before the
			// evaluation: no perturbation to account.
			continue
		}
		after, ok := jb.Completion()
		if !ok {
			// Lost in the perturbed projection: unbounded delay.
			p.Perturbation = math.Inf(1)
			p.Interfered++
			if withPerTask {
				p.PerTask[jb.ID] = math.Inf(1)
			}
			continue
		}
		pi := after - before
		if withPerTask {
			p.PerTask[jb.ID] = pi
		}
		p.Perturbation += pi
		if pi > interferenceEps {
			p.Interfered++
		}
	}
	p.Flow = p.Completion - arrival
	return p, nil
}

// snapshot prepares one candidate projection under the lock: it
// resolves the cost, takes a copy-on-write clone of the live trace and
// the (cached) baseline. ok=false means the server cannot solve the
// task — a normal condition, not an error.
func (m *Manager) snapshotLocked(server string, spec *task.Spec) (candidateJob, bool, error) {
	tr, found := m.traces[server]
	if !found {
		return candidateJob{}, false, fmt.Errorf("htm: unknown server %q", server)
	}
	cost, solvable := spec.Cost(server)
	if !solvable {
		return candidateJob{}, false, nil
	}
	j := candidateJob{server: server, cost: cost, clone: tr.sim.CloneLiveInto(getSim())}
	if tr.baseline != nil && tr.baselineGen == tr.gen {
		j.baseline = tr.baseline.acquire()
	} else {
		// Stale cache: hand the worker its own snapshot to project
		// outside the lock.
		j.baseClone = tr.sim.CloneLiveInto(getSim())
		j.tr = tr
		j.gen = tr.gen
	}
	return j, true, nil
}

// Evaluate simulates placing job id (a new task with the given spec and
// arrival date) on the candidate server and reports the prediction. The
// live trace is not modified. Evaluate advances the trace to the
// arrival date first, as the paper's HTM does on each request; an
// arrival the trace has already moved past (possible when evaluations
// race placements) is treated as arriving now.
func (m *Manager) Evaluate(id int, spec *task.Spec, arrival float64, server string) (Prediction, error) {
	m.mu.Lock()
	arrival = m.advanceLocked(arrival)
	j, solvable, err := m.snapshotLocked(server, spec)
	m.mu.Unlock()
	if err != nil {
		return Prediction{}, err
	}
	if !solvable {
		return Prediction{}, fmt.Errorf("htm: server %q cannot solve %s", server, spec.Name())
	}
	return m.projectCandidate(j, id, spec, arrival, true)
}

// EvaluateFull is the full-replay reference implementation of Evaluate:
// it recomputes the server's baseline projection from the live trace
// instead of using the incremental cache. It exists for equivalence
// testing and benchmarking; production paths use Evaluate/EvaluateAll.
func (m *Manager) EvaluateFull(id int, spec *task.Spec, arrival float64, server string) (Prediction, error) {
	m.mu.Lock()
	arrival = m.advanceLocked(arrival)
	tr, found := m.traces[server]
	if !found {
		m.mu.Unlock()
		return Prediction{}, fmt.Errorf("htm: unknown server %q", server)
	}
	cost, solvable := spec.Cost(server)
	if !solvable {
		m.mu.Unlock()
		return Prediction{}, fmt.Errorf("htm: server %q cannot solve %s", server, spec.Name())
	}
	baseClone := tr.sim.CloneLive()
	j := candidateJob{server: server, cost: cost, clone: tr.sim.Clone()}
	m.mu.Unlock()

	j.baseline = newBaselineSet()
	projectCloneInto(baseClone, j.baseline.m)
	return m.projectCandidate(j, id, spec, arrival, true)
}

// EvaluateAll evaluates every candidate server concurrently and returns
// the predictions sorted by server name. Servers that cannot solve the
// task are skipped — that is the normal "no implementation" condition.
// Failures to evaluate a solvable candidate (unknown server, collapsed
// trace) are joined into the returned error; predictions for the
// remaining candidates are still returned, so callers can distinguish
// "no server solves this task" (empty, nil error) from "every
// evaluation failed" (empty, non-nil error) and proceed on partial
// results.
func (m *Manager) EvaluateAll(id int, spec *task.Spec, arrival float64, candidates []string) ([]Prediction, error) {
	return m.EvaluateAllInto(id, spec, arrival, candidates, nil)
}

// evalScratch is the per-call working set of EvaluateAllInto, pooled so
// a steady stream of decisions reuses the same snapshot and result
// buffers instead of allocating them per call.
type evalScratch struct {
	jobs  []candidateJob
	preds []Prediction
	perr  []error
}

var scratchPool = sync.Pool{New: func() any { return new(evalScratch) }}

// EvaluateAllInto is EvaluateAll writing the predictions into out,
// which is truncated and grown as needed — a caller that threads the
// returned slice back in across decisions amortizes the result buffer
// to zero steady-state allocations. Passing nil behaves like
// EvaluateAll.
func (m *Manager) EvaluateAllInto(id int, spec *task.Spec, arrival float64, candidates []string, out []Prediction) ([]Prediction, error) {
	var errs []error
	sc := scratchPool.Get().(*evalScratch)
	m.mu.Lock()
	arrival = m.advanceLocked(arrival)
	jobs := sc.jobs[:0]
	for _, s := range candidates {
		j, solvable, err := m.snapshotLocked(s, spec)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if solvable {
			jobs = append(jobs, j)
		}
	}
	workers := m.workers
	m.mu.Unlock()

	out = out[:0]
	if len(jobs) == 0 {
		sc.jobs = jobs
		scratchPool.Put(sc)
		return out, errors.Join(errs...)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	if cap(sc.preds) < len(jobs) {
		sc.preds = make([]Prediction, len(jobs))
		sc.perr = make([]error, len(jobs))
	}
	preds := sc.preds[:len(jobs)]
	perr := sc.perr[:len(jobs)]
	if workers <= 1 {
		for i, j := range jobs {
			preds[i], perr[i] = m.projectCandidate(j, id, spec, arrival, false)
		}
	} else {
		m.projectParallel(jobs, id, spec, arrival, workers, preds, perr)
	}

	for i := range jobs {
		if perr[i] != nil {
			errs = append(errs, perr[i])
			perr[i] = nil
			continue
		}
		out = append(out, preds[i])
	}
	// Insertion sort by server name in place of sort.Slice: the
	// candidate list arrives near-sorted (it is built from the sorted
	// server order), the comparison closure would allocate, and with
	// unique server names the sorted result is identical.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].Server < out[k-1].Server; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	// Drop the snapshot references before pooling the scratch so pooled
	// clones and baselines are not pinned by the next caller.
	for i := range jobs {
		jobs[i] = candidateJob{}
	}
	sc.jobs = jobs
	scratchPool.Put(sc)
	return out, errors.Join(errs...)
}

// projectParallel fans the candidate projections out over a bounded
// worker pool. It lives outside EvaluateAllInto so the goroutine
// closure captures this frame, not the caller's — otherwise the
// capture forces the caller's locals to the heap even on the
// sequential (workers<=1) path, which must stay allocation-free.
func (m *Manager) projectParallel(jobs []candidateJob, id int, spec *task.Spec, arrival float64, workers int, preds []Prediction, perr []error) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				preds[i], perr[i] = m.projectCandidate(jobs[i], id, spec, arrival, false)
			}
		}()
	}
	wg.Wait()
}

// Place commits job id to the chosen server's live trace. This is the
// "Tell the HTM that task is allocated to server" step of Figures 2-4.
func (m *Manager) Place(id int, spec *task.Spec, arrival float64, server string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	tr, ok := m.traces[server]
	if !ok {
		return fmt.Errorf("htm: unknown server %q", server)
	}
	cost, ok := spec.Cost(server)
	if !ok {
		return fmt.Errorf("htm: server %q cannot solve %s", server, spec.Name())
	}
	if prev, dup := m.placements[id]; dup {
		return fmt.Errorf("htm: job %d already placed on %q", id, prev.server)
	}
	arrival = m.advanceLocked(arrival)
	if err := tr.sim.Add(id, arrival, cost, spec.MemoryMB); err != nil {
		return fmt.Errorf("htm: place on %q: %w", server, err)
	}
	tr.invalidate()
	m.placements[id] = placement{server: server, arrival: arrival}
	return nil
}

// PlacedOn returns the server a job was committed to.
func (m *Manager) PlacedOn(id int) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, ok := m.placements[id]
	return p.server, ok
}

// PredictedCompletion returns the trace's current projection of a
// placed job's completion date: the actual completion for jobs the
// trace has already finished, the cached baseline projection for jobs
// still running. Jobs on dropped (collapsed) servers and jobs lost in a
// projected collapse have no projection.
func (m *Manager) PredictedCompletion(id int) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.placements[id]
	if !ok {
		return 0, false
	}
	tr, ok := m.traces[p.server]
	if !ok {
		return 0, false
	}
	if j := tr.sim.Job(id); j != nil {
		if c, done := j.Completion(); done {
			return c, true
		}
	}
	c, ok := m.baselineLocked(tr)[id]
	return c, ok
}

// NotifyCompletion informs the Manager that a placed job actually
// completed at time t. When the synchronization extension is enabled
// the trace is re-anchored (the job is force-completed at t); otherwise
// the notification is ignored, matching the paper's open-loop HTM.
func (m *Manager) NotifyCompletion(id int, t float64) error {
	if !m.sync {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.placements[id]
	if !ok {
		return fmt.Errorf("htm: notify completion: unknown job %d", id)
	}
	tr, ok := m.traces[p.server]
	if !ok {
		return nil // server dropped after a collapse; nothing to anchor
	}
	// A completion date the trace has already moved past is re-anchored
	// at the current trace time; the trace cannot rewrite its history.
	t = m.advanceLocked(t)
	if err := tr.sim.ForceComplete(id, t); err != nil {
		return err
	}
	tr.invalidate()
	return nil
}

// DropServer removes a server from the candidate set (used when the
// execution layer reports a collapse). Placed jobs on that server keep
// their records but the trace is no longer consulted.
func (m *Manager) DropServer(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	tr, ok := m.traces[name]
	if !ok {
		return
	}
	if tr.baseline != nil {
		tr.baseline.release()
		tr.baseline = nil
	}
	delete(m.traces, name)
	for i, n := range m.order {
		if n == name {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

// ProjectedReady returns the projected instant at which the server
// drains its current live work (the latest projected completion over
// its live jobs, or the trace time for an idle server). This is the
// "machine ready time" the OLB/KPB baselines consume; it reads the
// cached baseline, so it is cheap and safe under concurrency.
func (m *Manager) ProjectedReady(server string) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	tr, ok := m.traces[server]
	if !ok {
		return 0, false
	}
	return m.readyLocked(tr), true
}

// readyLocked returns one trace's projected drain instant from the
// drain memo, refreshing the baseline cache first if the trace
// mutated. Caller holds m.mu.
func (m *Manager) readyLocked(tr *serverTrace) float64 {
	m.baselineLocked(tr)
	if tr.drain > m.now {
		return tr.drain
	}
	return m.now
}

// MinProjectedReady returns the shard-level aggregate of
// ProjectedReady: the earliest projected drain instant over every
// tracked server. An idle server pins the aggregate at the current
// trace time. This is the load signal a sharded dispatch layer
// compares across HTMs when routing a batch — one cached-baseline
// scan, no candidate projections. ok is false when no server is
// tracked.
func (m *Manager) MinProjectedReady() (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.order) == 0 {
		return 0, false
	}
	best := math.Inf(1)
	for _, name := range m.order {
		if ready := m.readyLocked(m.traces[name]); ready < best {
			best = ready
		}
	}
	return best, true
}

// ProjectedReadyAll returns the projected drain instant of every
// tracked server in one lock acquisition — the snapshot a federation
// member publishes in its load summary so the dispatcher can price
// candidate placements per server. Returns nil when no server is
// tracked.
func (m *Manager) ProjectedReadyAll() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.order) == 0 {
		return nil
	}
	ready := make(map[string]float64, len(m.order))
	for _, name := range m.order {
		ready[name] = m.readyLocked(m.traces[name])
	}
	return ready
}

// Sim exposes the live trace of one server; the Gantt renderer
// consumes this. The returned Sim is NOT protected by the Manager's
// lock: use it only when no concurrent Place/NotifyCompletion can run
// (end-of-run rendering, single-threaded drivers). Concurrent readers
// should go through Evaluate/ProjectedReady/PredictedCompletion.
func (m *Manager) Sim(server string) (*fluid.Sim, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	tr, ok := m.traces[server]
	if !ok {
		return nil, false
	}
	return tr.sim, true
}
