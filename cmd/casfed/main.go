// Command casfed runs a federation dispatcher on a TCP address: the
// coordination point member agents join, and the address servers and
// clients use exactly as they would a plain agent — the wire protocol
// cannot tell a federation from a single casagent.
//
// Usage:
//
//	casfed -addr 127.0.0.1:7400 -heuristic HMCT
//	casagent -addr 127.0.0.1:7411 -heuristic HMCT -join 127.0.0.1:7400 -name m1
//	casagent -addr 127.0.0.1:7412 -heuristic HMCT -join 127.0.0.1:7400 -name m2
//	casserver -agent 127.0.0.1:7400 ...   # servers register with the federation
//	casclient -agent 127.0.0.1:7400 ...   # clients schedule through it
//
// Deployment order mirrors NetSolve's: dispatcher first, then members,
// then servers, then clients. Registering servers are partitioned
// across members by -policy; scheduling fans out over the members
// while their load summaries are fresh and degrades to
// power-of-two-choices routing over stale summaries when a member is
// slow or partitioned (members that keep failing are evicted and
// probed for readmission).
//
// A replicated deployment runs several casfed replicas under -ha-id
// (members, servers and clients then take the comma-separated list of
// every replica's address):
//
//	casfed -addr :7400 -ha-id d1 -ha-peers "d2=host2:7400,d3=host3:7400" -relay
//	casfed -addr :7400 -ha-id d2 -ha-peers "d1=host1:7400,d3=host3:7400" -relay -standby
//	casfed -addr :7400 -ha-id d3 -ha-peers "d1=host1:7400,d2=host2:7400" -relay -standby
//	casagent -join host1:7400,host2:7400,host3:7400 ...
//
// Only the elected leader serves clients; standbys mirror the members'
// decision ledgers (-relay) and answer with a redirect until promoted.
// SIGTERM drains in-flight placements and resigns the lease so a
// standby takes over immediately.
//
// With -study the command instead runs the federation staleness study
// (no sockets): centralized cluster vs fresh federation (decision
// parity) vs stale-summary routing at several refresh lags, measured
// by HTM-simulated sum-flow on the paper's bursty workload — the
// committed benchmarks/fed-study.txt.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"casched"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7400", "TCP listen address")
		heuristic = flag.String("heuristic", "HMCT", "federation-wide scheduling heuristic")
		policy    = flag.String("policy", "hash", "server-to-member policy: hash, least-loaded or affinity")
		scale     = flag.Float64("scale", 1, "virtual seconds per wall second")
		seed      = flag.Uint64("seed", 1, "routing randomness seed")
		stale     = flag.Duration("stale-after", 2*time.Second, "summary age that degrades routing")
		interval  = flag.Duration("summary-interval", 500*time.Millisecond, "gossip refresh period")
		timeout   = flag.Duration("timeout", 2*time.Second, "per-member RPC budget")
		study     = flag.Bool("study", false, "run the stale-summary routing study and exit")
		shares    = flag.String("tenant-shares", "", `fair-share weights for in-process members, e.g. "gold=4,silver=2"; remote members (casagent -join) set their own`)
		admission = flag.Bool("admission", false, "deadline admission for in-process members; remote members set their own")
		rate      = flag.Float64("intake-rate", 0, "dispatch-level intake token-bucket rate in tasks per virtual second (0 = unlimited)")
		burst     = flag.Float64("intake-burst", 0, "intake token-bucket burst capacity (0 = max(rate, 1))")
		relay     = flag.Bool("relay", false, "stream member decision ledgers for near-fresh degraded routing")
		relayIntv = flag.Duration("relay-interval", 100*time.Millisecond, "relay pull period (with -relay)")
		relayMax  = flag.Int("relay-max-consec", 0, "max consecutive delegations to one member between relay advances (0 = default 8)")
		metrics   = flag.String("metrics-addr", "", "serve Prometheus GET /metrics on this address (empty = off)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof under /debug/pprof/ on this address (empty = off; the same value as -metrics-addr shares one server)")
		haID      = flag.String("ha-id", "", "unique replica ID; enrolls this dispatcher in leader election (empty = single-dispatcher)")
		haPeers   = flag.String("ha-peers", "", `peer replicas as "id=addr,id=addr" (with -ha-id)`)
		haLease   = flag.Duration("ha-lease", 2*time.Second, "leader lease duration (with -ha-id)")
		haBeat    = flag.Duration("ha-heartbeat", 0, "leader heartbeat period (0 = lease/4; with -ha-id)")
		standby   = flag.Bool("standby", false, "defer the first campaign so a designated primary wins election one (with -ha-id)")
		reassign  = flag.Duration("reassign-after", 0, "re-partition a dead member's servers after this eviction age (0 = never)")
		drainT    = flag.Duration("drain-timeout", 5*time.Second, "SIGTERM drain budget: wait for in-flight placements, then step down")
	)
	flag.Parse()

	if *study {
		r, err := casched.RunFederationStudy(casched.FederationStudyConfig{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "casfed:", err)
			os.Exit(1)
		}
		fmt.Print(casched.FormatFederationStudy(r))
		return
	}

	shardPolicy, ok := casched.ShardPolicyByName(*policy)
	if !ok {
		fmt.Fprintf(os.Stderr, "casfed: unknown policy %q\n", *policy)
		os.Exit(1)
	}
	tenantShares, err := casched.ParseTenantShares(*shares)
	if err != nil {
		fmt.Fprintln(os.Stderr, "casfed:", err)
		os.Exit(1)
	}
	var opts []casched.FedServerOption
	if *haID != "" {
		peers, err := parsePeers(*haPeers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "casfed:", err)
			os.Exit(1)
		}
		opts = append(opts,
			casched.WithElection(*haID, peers),
			casched.WithElectionLease(*haLease),
		)
		if *haBeat > 0 {
			opts = append(opts, casched.WithElectionHeartbeat(*haBeat))
		}
		if *standby {
			opts = append(opts, casched.WithStandby())
		}
	} else if *standby || *haPeers != "" {
		fmt.Fprintln(os.Stderr, "casfed: -standby and -ha-peers need -ha-id")
		os.Exit(1)
	}
	if *reassign > 0 {
		opts = append(opts, casched.WithReassignAfter(*reassign))
	}
	srv, err := casched.StartFedServer(casched.FedServerConfig{
		Addr:                *addr,
		Heuristic:           *heuristic,
		Policy:              shardPolicy,
		Seed:                *seed,
		Clock:               casched.NewLiveClock(*scale),
		StaleAfter:          *stale,
		SummaryInterval:     *interval,
		Timeout:             *timeout,
		TenantShares:        tenantShares,
		Admission:           *admission,
		IntakeRate:          *rate,
		IntakeBurst:         *burst,
		Relay:               *relay,
		RelayInterval:       *relayIntv,
		RelayMaxConsecutive: *relayMax,
	}, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "casfed:", err)
		os.Exit(1)
	}
	if *haID != "" {
		fmt.Printf("casfed: %s federation dispatcher replica %q listening on %s (clock scale %gx, %s policy, stale-after %s, relay %v, lease %s, standby %v)\n",
			*heuristic, *haID, srv.Addr(), *scale, *policy, *stale, *relay, *haLease, *standby)
	} else {
		fmt.Printf("casfed: %s federation dispatcher listening on %s (clock scale %gx, %s policy, stale-after %s, relay %v)\n",
			*heuristic, srv.Addr(), *scale, *policy, *stale, *relay)
	}

	if *metrics != "" {
		sc := casched.NewStatsCollector()
		srv.Dispatcher().Subscribe(sc.Collect)
		mcfg := casched.MetricsConfig{
			Stats:   sc.Snapshot,
			Members: srv.Dispatcher().Members,
			Relay:   srv.Dispatcher().RelayStats,
		}
		if *haID != "" {
			mcfg.HA = srv.HAStatus
		}
		mcfg.Pprof = *pprofAddr == *metrics
		msrv, err := casched.StartMetricsServer(*metrics, mcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "casfed:", err)
			os.Exit(1)
		}
		defer msrv.Close()
		fmt.Printf("casfed: metrics on http://%s/metrics\n", msrv.Addr())
		if mcfg.Pprof {
			fmt.Printf("casfed: pprof on http://%s/debug/pprof/\n", msrv.Addr())
		}
	}
	if *pprofAddr != "" && *pprofAddr != *metrics {
		psrv, err := casched.StartMetricsServer(*pprofAddr, casched.MetricsConfig{Pprof: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "casfed:", err)
			os.Exit(1)
		}
		defer psrv.Close()
		fmt.Printf("casfed: pprof on http://%s/debug/pprof/\n", psrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Graceful shutdown: stop serving clients, wait (bounded) for the
	// placements this dispatcher routed, push a final summary refresh so
	// standby ledger mirrors are current, and resign the lease so a
	// standby takes over immediately instead of waiting it out.
	fmt.Printf("casfed: draining (budget %s)\n", *drainT)
	srv.Drain(*drainT)
	srv.Close()
	fmt.Println("casfed: stopped")
}

// parsePeers parses the -ha-peers form "id=addr,id=addr".
func parsePeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		id, addr = strings.TrimSpace(id), strings.TrimSpace(addr)
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf(`bad -ha-peers entry %q, want "id=addr"`, part)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate -ha-peers id %q", id)
		}
		peers[id] = addr
	}
	return peers, nil
}
