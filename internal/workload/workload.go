// Package workload generates the paper's metatasks: sets of independent
// tasks of uniformly random type whose inter-arrival times are drawn
// from an exponential distribution (the paper's "difference between two
// arrivals is drawn from a Poisson distribution with a mean of D
// seconds", i.e. a Poisson arrival process).
package workload

import (
	"fmt"

	"casched/internal/stats"
	"casched/internal/task"
)

// Scenario describes one metatask to generate.
type Scenario struct {
	// Name labels the metatask.
	Name string
	// Specs is the task-type pool; each task picks one uniformly
	// ("a task has a uniform probability to be of each duration").
	Specs []*task.Spec
	// N is the number of tasks (the paper uses 500).
	N int
	// MeanInterarrival is D, the mean of the exponential inter-arrival
	// distribution in seconds (the paper uses 35 and 20).
	MeanInterarrival float64
	// FirstAt is the arrival date of the first task; the subsequent
	// N−1 gaps follow the arrival process.
	FirstAt float64
	// Seed drives all randomness of the generation.
	Seed uint64
	// Arrival selects the arrival process (default ArrivalPoisson, the
	// paper's).
	Arrival ArrivalProcess
	// BurstSize is the burst length for ArrivalBursty (default 5).
	BurstSize int
	// BurstFactor, for ArrivalPoissonBurst, multiplies the base rate
	// 1/MeanInterarrival during a burst (default 4; capped at
	// 1/BurstDuty so the quiet rate stays non-negative).
	BurstFactor float64
	// BurstDuty, for ArrivalPoissonBurst, is the fraction of each
	// cycle spent bursting, in (0, 1) (default 0.25).
	BurstDuty float64
	// BurstPeriod, for ArrivalPoissonBurst, is the cycle length in
	// seconds (default 20·MeanInterarrival).
	BurstPeriod float64
}

// Validate checks the scenario parameters.
func (s Scenario) Validate() error {
	if s.N <= 0 {
		return fmt.Errorf("workload: scenario %q: N must be positive, got %d", s.Name, s.N)
	}
	if len(s.Specs) == 0 {
		return fmt.Errorf("workload: scenario %q: no task specs", s.Name)
	}
	if s.MeanInterarrival <= 0 {
		return fmt.Errorf("workload: scenario %q: mean inter-arrival must be positive, got %v",
			s.Name, s.MeanInterarrival)
	}
	if s.FirstAt < 0 {
		return fmt.Errorf("workload: scenario %q: negative first arrival %v", s.Name, s.FirstAt)
	}
	return nil
}

// Generate builds the metatask of a scenario. Generation is
// deterministic in the seed: the same scenario always produces the same
// metatask, and the task-type sequence does not depend on the arrival
// rate (so "the same set of tasks is considered with different arrival
// dates", as in the paper's experimental design, can be obtained by
// varying only MeanInterarrival).
func Generate(sc Scenario) (*task.Metatask, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	// Two decorrelated streams: one for the task mix, one for the
	// arrival process, so that changing D preserves the task sequence.
	root := stats.NewRNG(sc.Seed)
	mixRNG := root.Split()
	arrRNG := root.Split()

	gap := gapGenerator(sc, arrRNG)
	mt := &task.Metatask{Name: sc.Name, Tasks: make([]*task.Task, 0, sc.N)}
	now := sc.FirstAt
	for i := 0; i < sc.N; i++ {
		spec := sc.Specs[mixRNG.Intn(len(sc.Specs))]
		if i > 0 {
			now += gap(i)
		}
		mt.Tasks = append(mt.Tasks, &task.Task{ID: i, Spec: spec, Arrival: now})
	}
	if err := mt.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid metatask: %w", err)
	}
	return mt, nil
}

// MustGenerate is Generate panicking on error; for use with literal
// scenarios in examples and benchmarks.
func MustGenerate(sc Scenario) *task.Metatask {
	mt, err := Generate(sc)
	if err != nil {
		panic(err)
	}
	return mt
}

// Set1 returns the paper's first-set scenario: N matrix-multiplication
// tasks (sizes uniform over 1200/1500/1800) at mean inter-arrival d.
func Set1(n int, d float64, seed uint64) Scenario {
	return Scenario{
		Name:             fmt.Sprintf("set1-matmul-n%d-d%g-s%d", n, d, seed),
		Specs:            task.MatmulSpecs(),
		N:                n,
		MeanInterarrival: d,
		Seed:             seed,
	}
}

// Set2 returns the paper's second-set scenario: N waste-cpu tasks
// (parameters uniform over 200/400/600) at mean inter-arrival d.
func Set2(n int, d float64, seed uint64) Scenario {
	return Scenario{
		Name:             fmt.Sprintf("set2-wastecpu-n%d-d%g-s%d", n, d, seed),
		Specs:            task.WasteCPUSpecs(),
		N:                n,
		MeanInterarrival: d,
		Seed:             seed,
	}
}

// PoissonBurst returns a second-set scenario driven by the
// inhomogeneous Poisson process (ArrivalPoissonBurst): N waste-cpu
// tasks whose long-run mean inter-arrival is d seconds, but which
// arrive in recurring high-rate bursts. Tune BurstFactor, BurstDuty
// and BurstPeriod on the returned scenario before generating to shape
// the bursts.
func PoissonBurst(n int, d float64, seed uint64) Scenario {
	sc := Set2(n, d, seed)
	sc.Name = fmt.Sprintf("poisson-burst-wastecpu-n%d-d%g-s%d", n, d, seed)
	sc.Arrival = ArrivalPoissonBurst
	return sc
}
