package fluid

import (
	"math"
	"testing"

	"casched/internal/task"
)

// loadedSim builds a server with n staggered three-phase jobs.
func loadedSim(n int) *Sim {
	s := New(Config{Name: "bench"})
	for i := 0; i < n; i++ {
		_ = s.Add(i, float64(i)*2, task.Cost{Input: 1, Compute: 40, Output: 1}, 0)
	}
	return s
}

func BenchmarkRunToIdle50(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := loadedSim(50)
		s.RunToIdle(math.Inf(1))
	}
}

func BenchmarkClone50(b *testing.B) {
	s := loadedSim(50)
	s.AdvanceTo(25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Clone()
	}
}

func BenchmarkProjectedCompletions50(b *testing.B) {
	s := loadedSim(50)
	s.AdvanceTo(25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.ProjectedCompletions()
	}
}

func BenchmarkAdvanceStep(b *testing.B) {
	s := loadedSim(100)
	b.ResetTimer()
	t := 0.0
	for i := 0; i < b.N; i++ {
		t += 0.5
		s.AdvanceTo(t)
		if s.ActiveCount() == 0 {
			b.StopTimer()
			s = loadedSim(100)
			t = 0
			b.StartTimer()
		}
	}
}
