package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy
// default). An empty sample yields 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentiles returns the 50th, 90th, 95th and 99th percentiles — the
// tail profile used in flow-distribution reports.
func Percentiles(xs []float64) (p50, p90, p95, p99 float64) {
	return Quantile(xs, 0.50), Quantile(xs, 0.90), Quantile(xs, 0.95), Quantile(xs, 0.99)
}

// ConfidenceInterval95 returns the half-width of the 95% confidence
// interval of the mean under the normal approximation (1.96·s/√n).
// Samples of fewer than two points have no interval.
func ConfidenceInterval95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	s := Summarize(xs)
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// Histogram is a fixed-width-bin histogram.
type Histogram struct {
	// Min is the lower edge of the first bin.
	Min float64
	// Width is the bin width.
	Width float64
	// Counts holds one count per bin; values above the last bin edge
	// land in the last bin.
	Counts []int
	// N is the total number of samples.
	N int
}

// NewHistogram bins xs into the given number of equal-width bins
// spanning [min(xs), max(xs)]. Degenerate inputs (empty, or all values
// equal) yield a single-bin histogram.
func NewHistogram(xs []float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	h := &Histogram{N: len(xs)}
	if len(xs) == 0 {
		h.Counts = make([]int, 1)
		h.Width = 1
		return h
	}
	s := Summarize(xs)
	h.Min = s.Min
	span := s.Max - s.Min
	if span <= 0 {
		h.Counts = make([]int, 1)
		h.Counts[0] = len(xs)
		h.Width = 1
		return h
	}
	h.Width = span / float64(bins)
	h.Counts = make([]int, bins)
	for _, x := range xs {
		i := int((x - h.Min) / h.Width)
		if i >= bins {
			i = bins - 1
		}
		if i < 0 {
			i = 0
		}
		h.Counts[i]++
	}
	return h
}

// Render draws the histogram as ASCII bars of at most width characters.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var sb strings.Builder
	for i, c := range h.Counts {
		lo := h.Min + float64(i)*h.Width
		hi := lo + h.Width
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&sb, "[%10.2f, %10.2f) %6d %s\n", lo, hi, c, strings.Repeat("#", bar))
	}
	return sb.String()
}
