package agent

import (
	"errors"
	"fmt"

	"casched/internal/sched"
)

// This file is the Core's multi-tenant intake path: the token-bucket
// gate, the deadline admission test and the fair-share arbitration of
// multi-tenant batches. The pipeline is
//
//	caller → intake gate → fairness arbiter → heuristic
//
// where each stage is inert unless configured (no bucket, no ledger,
// admission off), collapsing the pipeline back to the historical
// "caller → heuristic" path — the parity guarantee single-tenant
// deployments rely on.

// tenantPath maps a request tenant to its fair-ledger path; the
// anonymous stream arbitrates under a reserved default name so it
// still gets a weighted share when mixed with tagged traffic.
func tenantPath(tenant string) string {
	if tenant == "" {
		return "default"
	}
	return tenant
}

// multiTenant reports whether a batch spans more than one tenant —
// the condition under which arbitration can change anything.
func multiTenant(reqs []Request) bool {
	if len(reqs) == 0 {
		return false
	}
	first := reqs[0].Tenant
	for _, r := range reqs[1:] {
		if r.Tenant != first {
			return true
		}
	}
	return false
}

// shedLocked emits the EventShed record for a refused request. Caller
// holds c.mu.
func (c *Core) shedLocked(req Request, reason string) {
	c.emit(Event{Kind: EventShed, Time: req.Arrival, JobID: req.JobID,
		TaskID: req.TaskID, Attempt: req.Attempt,
		Tenant: req.Tenant, Deadline: req.Deadline, Reason: reason})
}

// intakeGateLocked runs the token bucket over a batch in submission
// order. It returns the admitted requests, their positions in the
// original batch (nil when no bucket is configured, meaning "all, in
// place"), and one ErrThrottled per refused request. Caller holds c.mu.
func (c *Core) intakeGateLocked(reqs []Request) (live []Request, keep []int, errs []error) {
	if c.bucket == nil {
		return reqs, nil, nil
	}
	live = make([]Request, 0, len(reqs))
	keep = make([]int, 0, len(reqs))
	for i, req := range reqs {
		if !c.bucket.Take(req.Arrival) {
			c.shedLocked(req, ShedThrottled)
			errs = append(errs, fmt.Errorf("agent: batch job %d: %w", req.JobID, ErrThrottled))
			continue
		}
		live = append(live, req)
		keep = append(keep, i)
	}
	return live, keep, errs
}

// admitDeadlineLocked is the deadline admission test: it accepts a
// request when at least one candidate's predicted completion meets the
// deadline, and sheds with ErrDeadlineUnmet otherwise. The prediction
// reuses the signals the heuristics themselves schedule on — the HTM
// projected drain instant of each candidate (the PR 4 routing memo)
// when a trace is available, the NetSolve load estimate otherwise — so
// admission and placement agree about the state of the pool. Requests
// without a deadline, or with admission off, always pass. Caller holds
// c.mu.
func (c *Core) admitDeadlineLocked(req Request, candidates []string, ev sched.Evaluator) error {
	if !c.cfg.Admission || req.Deadline <= 0 {
		return nil
	}
	info := coreLoadInfo{c}
	for _, server := range candidates {
		cost, ok := req.Spec.Cost(server)
		if !ok {
			continue
		}
		var finish float64
		if ev != nil {
			ready, ok := ev.ProjectedReady(server)
			if !ok || ready < req.Arrival {
				ready = req.Arrival
			}
			finish = ready + cost.Total()
		} else {
			// Monitor heuristics: the belief load is the number of
			// tasks ahead; first-order completion estimate as in the
			// paper's MCT-over-monitor model.
			finish = req.Arrival + (info.LoadEstimate(server)+1)*cost.Total()
		}
		if finish <= req.Deadline {
			return nil
		}
	}
	return fmt.Errorf("agent: job %d (deadline %.3f): %w", req.JobID, req.Deadline, ErrDeadlineUnmet)
}

// submitBatchFairLocked is the arbitrated batch path: requests queue
// per tenant in submission order, and the fair ledger repeatedly picks
// the backlogged tenant furthest behind its weighted share to offer
// its head task to the heuristic. The fair clocks are advanced by
// commitLocked as each placement lands, so every pick sees the service
// the previous one consumed. Failed requests drop out of their queue
// without advancing their tenant's clock. Caller holds c.mu.
func (c *Core) submitBatchFairLocked(reqs []Request, ev sched.Evaluator, cache *batchCache) ([]Decision, error) {
	out := make([]Decision, len(reqs))
	var errs []error
	queues := make(map[string][]int)
	paths := make([]string, 0, 4)
	for i, req := range reqs {
		p := tenantPath(req.Tenant)
		if _, ok := queues[p]; !ok {
			paths = append(paths, p)
		}
		queues[p] = append(queues[p], i)
	}
	backlogged := make([]string, 0, len(paths))
	for {
		backlogged = backlogged[:0]
		for _, p := range paths {
			if len(queues[p]) > 0 {
				backlogged = append(backlogged, p)
			}
		}
		if len(backlogged) == 0 {
			break
		}
		p := c.ledger.Pick(backlogged)
		pos := queues[p][0]
		queues[p] = queues[p][1:]
		req := reqs[pos]
		d, err := c.submitLocked(req, ev)
		if err != nil {
			if errors.Is(err, ErrDeadlineUnmet) {
				c.shedLocked(req, ShedDeadline)
			}
			errs = append(errs, fmt.Errorf("agent: batch job %d: %w", req.JobID, err))
			continue
		}
		out[pos] = d
		if cache != nil {
			cache.invalidate(d.Server)
		}
	}
	return out, errors.Join(errs...)
}

// TenantInFlight returns the number of placed-but-uncompleted jobs per
// tenant (key "" is the anonymous stream) — the per-tenant load signal
// dispatch layers gossip so stale-mode routing stays fair.
func (c *Core) TenantInFlight() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.tenantLoad))
	for k, v := range c.tenantLoad {
		out[k] = v
	}
	return out
}
