package agent_test

// Decision-parity test: the discrete-event simulator and the live TCP
// runtime are thin drivers over the same agent core, so the same
// metatask, seed and heuristic must yield the same placement sequence
// on both — the live runtime's quantum/RPC jitter shifts dates by
// fractions of a second but must not flip decisions on a workload
// whose completion-time margins dominate that jitter.

import (
	"testing"
	"time"

	"casched/internal/grid"
	"casched/internal/live"
	"casched/internal/sched"
	"casched/internal/task"
)

// parityServers are three Table 2 machines: spinnaker and artimon are
// the fast pair the decisions alternate between, valette the slow
// always-losing third candidate.
var parityServers = []string{"spinnaker", "artimon", "valette"}

// parityMetatask builds the shared workload: pairs of overlapping
// same-variant tasks separated by long drain gaps. Within each pair
// the first task goes to the testbed's fastest server (it is idle; the
// margin is the cost gap to valette, tens of seconds) and the second
// arrives while the first still runs, pushing the shared-completion
// estimate well past idle artimon. Every decision's margin is several
// virtual seconds at minimum — above the live runtime's quantum/RPC
// jitter — so both heuristics must alternate identically on both
// transports, and the drain gaps guarantee empty servers (and zeroed
// beliefs) at the head of each pair.
func parityMetatask() *task.Metatask {
	arrivals := []float64{0, 8, 120, 131, 240, 253}
	params := []int{200, 200, 400, 400, 600, 600}
	mt := &task.Metatask{Name: "parity"}
	for i, at := range arrivals {
		mt.Tasks = append(mt.Tasks, &task.Task{
			ID: i, Spec: task.WasteCPU(params[i]), Arrival: at,
		})
	}
	return mt
}

// gridPlacements runs the metatask on the simulator with exact costs
// and monitors effectively disabled (to mirror the report-less live
// deployment) and returns the per-task placements.
func gridPlacements(t *testing.T, s sched.Scheduler, mt *task.Metatask) []string {
	t.Helper()
	servers := make([]grid.ServerConfig, len(parityServers))
	for i, name := range parityServers {
		servers[i] = grid.ServerConfig{Name: name}
	}
	res, err := grid.Run(grid.Config{
		Servers:       servers,
		Scheduler:     s,
		Seed:          1,
		MonitorPeriod: 1e9, // first report long after the run drains
	}, mt)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(res.Tasks))
	for _, r := range res.Tasks {
		if !r.Completed {
			t.Fatalf("grid task %d incomplete", r.ID)
		}
		out[r.ID] = r.Server
	}
	return out
}

// livePlacements runs the same metatask on a real TCP deployment
// (noiseless servers, no monitor reports) and returns the placements.
func livePlacements(t *testing.T, s sched.Scheduler, mt *task.Metatask) []string {
	t.Helper()
	clock := live.NewClock(200)
	agent, err := live.StartAgent(live.AgentConfig{Scheduler: s, Clock: clock, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	for _, name := range parityServers {
		srv, err := live.StartServer(live.ServerConfig{
			Name: name, AgentAddr: agent.Addr(), Clock: clock,
			Quantum: time.Millisecond, ReportPeriod: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
	}
	results, err := live.RunMetatask(agent.Addr(), mt, clock)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(results))
	for _, r := range results {
		if !r.Completed {
			t.Fatalf("live task %d incomplete", r.ID)
		}
		out[r.ID] = r.Server
	}
	return out
}

func TestGridLiveDecisionParity(t *testing.T) {
	for _, name := range []string{"HMCT", "MCT"} {
		name := name
		t.Run(name, func(t *testing.T) {
			mt := parityMetatask()
			gs, err := sched.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			ls, err := sched.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			gridSeq := gridPlacements(t, gs, mt)
			liveSeq := livePlacements(t, ls, mt)
			for i := range gridSeq {
				if gridSeq[i] != liveSeq[i] {
					t.Errorf("task %d: grid placed on %s, live on %s (full: grid=%v live=%v)",
						i, gridSeq[i], liveSeq[i], gridSeq, liveSeq)
				}
			}
			// Guard against a degenerate all-one-server workload: the
			// overlap pairs must actually alternate.
			distinct := map[string]bool{}
			for _, s := range gridSeq {
				distinct[s] = true
			}
			if len(distinct) < 2 {
				t.Errorf("workload degenerated to one server: %v", gridSeq)
			}
		})
	}
}
