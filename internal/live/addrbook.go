package live

// dispatcherBook is the client-side half of dispatcher failover: a
// list of dispatcher addresses (leader plus standbys) behind one
// lazily dialed RPC connection. Calls that fail in transport, or are
// refused with the federation's "not leader" redirect, rotate to the
// next address (following the redirect's leader= hint when it names
// one) and retry until the failover window closes. With a single
// configured address the window is zero and calls behave exactly as
// the pre-HA clients did: one attempt, errors surface immediately.

import (
	"errors"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"time"
)

const (
	// failoverWindow bounds how long a call keeps retrying across a
	// multi-address book — long enough to ride out a leader election,
	// short enough that a dead deployment still fails.
	failoverWindow = 20 * time.Second
	// failoverPause spaces retries so a mid-election deployment is
	// not hammered.
	failoverPause = 50 * time.Millisecond
	// bookDialTimeout bounds each dial attempt.
	bookDialTimeout = 2 * time.Second
)

// notLeaderMarker is the redirect prefix the federation server puts
// in scheduling refusals while a standby; the leader hint follows
// "leader=" when known.
const notLeaderMarker = "fed: not leader"

// splitAddrs parses a comma-separated address list, trimming blanks.
func splitAddrs(list string) []string {
	var out []string
	for _, a := range strings.Split(list, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

type dispatcherBook struct {
	mu    sync.Mutex
	addrs []string
	cur   int
	// client is the live connection; gen invalidates stale failure
	// reports from concurrent callers.
	client *rpc.Client
	gen    int
	// onConnect runs on every fresh connection before it serves calls
	// (a server re-registers itself here so a new leader rebuilds its
	// address book); a failure counts as a failed dial.
	onConnect func(*rpc.Client) error
}

func newDispatcherBook(list string, onConnect func(*rpc.Client) error) *dispatcherBook {
	return &dispatcherBook{addrs: splitAddrs(list), onConnect: onConnect}
}

// multi reports whether failover applies (more than one address).
func (b *dispatcherBook) multi() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.addrs) > 1
}

// conn returns the live connection, dialing through the address list
// once if needed.
func (b *dispatcherBook) conn() (*rpc.Client, int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.client != nil {
		return b.client, b.gen, nil
	}
	var firstErr error
	for range b.addrs {
		addr := b.addrs[b.cur]
		nc, err := net.DialTimeout("tcp", addr, bookDialTimeout)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			b.cur = (b.cur + 1) % len(b.addrs)
			continue
		}
		c := rpc.NewClient(nc)
		if b.onConnect != nil {
			if err := b.onConnect(c); err != nil {
				c.Close()
				if firstErr == nil {
					firstErr = err
				}
				b.cur = (b.cur + 1) % len(b.addrs)
				continue
			}
		}
		b.client = c
		b.gen++
		return c, b.gen, nil
	}
	return nil, 0, firstErr
}

// fail drops the connection generation gen and advances the cursor —
// to the redirect hint's address when given, else to the next in the
// list. Stale reports (another caller already rotated) are ignored.
func (b *dispatcherBook) fail(gen int, hint string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if gen != b.gen || b.client == nil {
		return
	}
	b.client.Close()
	b.client = nil
	if hint != "" {
		for i, a := range b.addrs {
			if a == hint {
				b.cur = i
				return
			}
		}
		// A hint outside the configured list still names the leader:
		// adopt it.
		b.addrs = append(b.addrs, hint)
		b.cur = len(b.addrs) - 1
		return
	}
	b.cur = (b.cur + 1) % len(b.addrs)
}

// classifyFailover splits call errors into retriable ones (transport
// failures and not-leader redirects, with the redirect's leader hint
// when present) and delivered application errors, which are final.
func classifyFailover(err error) (hint string, retriable bool) {
	var se rpc.ServerError
	if !errors.As(err, &se) {
		return "", true // transport: dispatcher may have moved
	}
	msg := se.Error()
	if !strings.Contains(msg, notLeaderMarker) {
		return "", false
	}
	if i := strings.Index(msg, "leader="); i >= 0 {
		h := strings.TrimSpace(msg[i+len("leader="):])
		if j := strings.IndexAny(h, " ;,"); j >= 0 {
			h = h[:j]
		}
		hint = h
	}
	return hint, true
}

// Call invokes method with failover: transport failures and
// not-leader redirects rotate the book and retry until the window
// closes. Single-address books make exactly one attempt.
func (b *dispatcherBook) Call(method string, args, reply any) error {
	var deadline time.Time
	if b.multi() {
		deadline = time.Now().Add(failoverWindow)
	} else {
		deadline = time.Now()
	}
	for {
		c, gen, err := b.conn()
		if err == nil {
			err = c.Call(method, args, reply)
			if err == nil {
				return nil
			}
			hint, retriable := classifyFailover(err)
			if !retriable {
				return err
			}
			b.fail(gen, hint)
		}
		if !time.Now().Before(deadline) {
			return err
		}
		time.Sleep(failoverPause)
	}
}

// tryCall makes exactly one attempt, rotating the book on a
// retriable failure so the next call finds the new leader — for
// periodic best-effort traffic that must not block on an election.
func (b *dispatcherBook) tryCall(method string, args, reply any) error {
	c, gen, err := b.conn()
	if err != nil {
		return err
	}
	err = c.Call(method, args, reply)
	if err == nil {
		return nil
	}
	if hint, retriable := classifyFailover(err); retriable {
		b.fail(gen, hint)
	}
	return err
}

// Close drops the live connection.
func (b *dispatcherBook) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.client != nil {
		b.client.Close()
		b.client = nil
	}
}
