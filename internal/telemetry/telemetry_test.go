package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"casched/internal/agent"
	"casched/internal/fed"
	"casched/internal/ha"
)

func sampleStats() agent.Stats {
	return agent.Stats{
		Decisions:              12,
		Completions:            9,
		Reports:                4,
		Sheds:                  1,
		Span:                   30,
		DecisionsPerSec:        0.4,
		MeanAbsPredictionError: 1.25,
		PredictionSamples:      9,
		Occupancy: map[string]agent.Occupancy{
			"m2": {InFlight: 3, Decisions: 7, Completions: 4, ReportedLoad: 0.5},
			"m1": {InFlight: 0, Decisions: 5, Completions: 5, ReportedLoad: math.NaN()},
		},
		Tenants: map[string]agent.TenantStats{
			"gold": {Decisions: 8, Completions: 6, SumFlow: 42.5},
		},
	}
}

func TestWriteStatsRendersGauges(t *testing.T) {
	var b strings.Builder
	WriteStats(&b, sampleStats())
	out := b.String()
	for _, want := range []string{
		"# TYPE casched_decisions_total counter",
		"casched_decisions_total 12",
		"casched_decisions_per_second 0.4",
		`casched_server_in_flight{server="m1"} 0`,
		`casched_server_in_flight{server="m2"} 3`,
		`casched_server_reported_load{server="m2"} 0.5`,
		`casched_tenant_sum_flow_seconds{tenant="gold"} 42.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// NaN reported load is skipped rather than rendered.
	if strings.Contains(out, `casched_server_reported_load{server="m1"}`) {
		t.Errorf("NaN load for m1 should be skipped:\n%s", out)
	}
	// One HELP/TYPE header per family even with several servers.
	if n := strings.Count(out, "# TYPE casched_server_in_flight gauge"); n != 1 {
		t.Errorf("TYPE header emitted %d times, want 1", n)
	}
	// Stable order: m1 before m2.
	if strings.Index(out, `server="m1"`) > strings.Index(out, `server="m2"`) {
		t.Errorf("server labels not sorted:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	var b strings.Builder
	s := agent.Stats{Occupancy: map[string]agent.Occupancy{
		`we"ird\name` + "\n": {InFlight: 1, ReportedLoad: math.NaN()},
	}}
	WriteStats(&b, s)
	out := b.String()
	if !strings.Contains(out, `server="we\"ird\\name\n"`) {
		t.Errorf("label not escaped:\n%s", out)
	}
}

func TestWriteMembersRelayGauges(t *testing.T) {
	var b strings.Builder
	WriteMembers(&b, []fed.MemberInfo{
		{Name: "b", Servers: 2, RelayCapable: true, RelaySynced: true,
			RelaySeq: 17, RelayAge: 250 * time.Millisecond, RelayPending: 1},
		{Name: "a", Servers: 2, RelayAge: time.Duration(math.MaxInt64)},
	})
	out := b.String()
	for _, want := range []string{
		`casched_fed_member_relay_seq{member="b"} 17`,
		`casched_fed_member_relay_age_seconds{member="b"} 0.25`,
		`casched_fed_member_relay_age_seconds{member="a"} +Inf`,
		`casched_fed_member_relay_synced{member="b"} 1`,
		`casched_fed_member_relay_capable{member="a"} 0`,
		`casched_fed_member_relay_pending{member="b"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Index(out, `member="a"`) > strings.Index(out, `member="b"`) {
		t.Errorf("member labels not sorted:\n%s", out)
	}
}

func TestWriteHAGauges(t *testing.T) {
	var b strings.Builder
	WriteHA(&b, ha.Status{
		ID: "da", Term: 3, IsLeader: true, ReassignedServers: 2,
		StandbyLag: map[string]uint64{"m2": 4, "m1": 0},
	})
	out := b.String()
	for _, want := range []string{
		"casched_ha_term 3",
		"casched_ha_is_leader 1",
		"casched_fed_reassigned_servers_total 2",
		`casched_ha_standby_lag_events{member="m1"} 0`,
		`casched_ha_standby_lag_events{member="m2"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Index(out, `member="m1"`) > strings.Index(out, `member="m2"`) {
		t.Errorf("lag labels not sorted:\n%s", out)
	}
	b.Reset()
	WriteHA(&b, ha.Status{Term: 1})
	if !strings.Contains(b.String(), "casched_ha_is_leader 0") {
		t.Errorf("standby posture not rendered:\n%s", b.String())
	}
}

func TestServerServesMetrics(t *testing.T) {
	srv, err := Start("", Config{
		Stats:   func() agent.Stats { return sampleStats() },
		Members: func() []fed.MemberInfo { return []fed.MemberInfo{{Name: "m", RelayAge: time.Second}} },
		Relay:   func() fed.RelayStats { return fed.RelayStats{EventsFolded: 5, Delegated: 3} },
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	out := string(body)
	for _, want := range []string{
		"casched_decisions_total 12",
		`casched_fed_member_summary_age_seconds{member="m"}`,
		"casched_fed_relay_events_folded_total 5",
		"casched_fed_relay_routed_total 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestServerServesPprof pins the -pprof-addr contract: with
// Config.Pprof the same server mounts the net/http/pprof index and
// profile endpoints next to /metrics; without it they 404.
func TestServerServesPprof(t *testing.T) {
	srv, err := Start("", Config{
		Stats: func() agent.Stats { return sampleStats() },
		Pprof: true,
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()
	for path, want := range map[string]int{
		"/debug/pprof/":        http.StatusOK,
		"/debug/pprof/cmdline": http.StatusOK,
		"/metrics":             http.StatusOK,
	} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("get %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}

	plain, err := Start("", Config{Stats: func() agent.Stats { return sampleStats() }})
	if err != nil {
		t.Fatalf("start plain: %v", err)
	}
	defer plain.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", plain.Addr()))
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", resp.StatusCode)
	}
}
