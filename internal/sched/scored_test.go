package sched

import (
	"math"
	"testing"

	"casched/internal/htm"
	"casched/internal/stats"
	"casched/internal/task"
)

// scoredHeuristics lists every heuristic expected to implement
// ScoredScheduler.
func scoredHeuristics() []ScoredScheduler {
	return []ScoredScheduler{
		NewMCT(), NewHMCT(), NewMP(), NewMSF(), NewMNI(),
		NewMET(), NewOLB(), NewKPB(), NewSA(),
	}
}

// TestChooseScoredMatchesChoose pins the ScoredScheduler contract: for
// every scored heuristic, ChooseScored picks the same server as Choose
// on an identically prepared context, and the score is finite with
// Tie a sensible secondary.
func TestChooseScoredMatchesChoose(t *testing.T) {
	for _, s := range scoredHeuristics() {
		name := s.Name()
		mkHTM := func() *htm.Manager {
			m := htm.New([]string{"s1", "s2"})
			// An uneven backlog so objectives differ across servers.
			if err := m.Place(900, twoServerSpec(40, 45), 0, "s1"); err != nil {
				t.Fatal(err)
			}
			if err := m.Place(901, twoServerSpec(30, 35), 0, "s1"); err != nil {
				t.Fatal(err)
			}
			return m
		}
		spec := twoServerSpec(20, 26)

		chooseCtx := baseCtx(spec, mkHTM(), 5)
		chooseCtx.Info = fixedInfo{"s1": 2, "s2": 0}
		twin, _ := ByName(name) // fresh instance: SA and friends carry state
		got, err := twin.Choose(chooseCtx)
		if err != nil {
			t.Fatalf("%s: Choose: %v", name, err)
		}

		scoredCtx := baseCtx(spec, mkHTM(), 5)
		scoredCtx.Info = fixedInfo{"s1": 2, "s2": 0}
		choice, err := s.ChooseScored(scoredCtx)
		if err != nil {
			t.Fatalf("%s: ChooseScored: %v", name, err)
		}
		if choice.Server != got {
			t.Errorf("%s: ChooseScored picked %q, Choose picked %q", name, choice.Server, got)
		}
		if math.IsInf(choice.Score, 0) || math.IsNaN(choice.Score) {
			t.Errorf("%s: score = %v", name, choice.Score)
		}
		if math.IsNaN(choice.Tie) {
			t.Errorf("%s: tie = %v", name, choice.Tie)
		}
	}
}

// TestChooseScoredPartitionInvariance pins what the sharded dispatch
// layer relies on: for partition-decomposable heuristics, running
// ChooseScored on disjoint candidate partitions and taking the
// (Score, Tie) minimum reproduces the whole-pool decision.
func TestChooseScoredPartitionInvariance(t *testing.T) {
	servers := []string{"a1", "a2", "b1", "b2"}
	costs := map[string]task.Cost{
		"a1": {Compute: 31}, "a2": {Compute: 24},
		"b1": {Compute: 22}, "b2": {Compute: 37},
	}
	spec := &task.Spec{Problem: "p", Variant: 1, CostOn: costs}
	for _, name := range []string{"MCT", "HMCT", "MP", "MSF", "MNI", "MET", "OLB"} {
		mkHTM := func() *htm.Manager {
			m := htm.New(servers)
			if err := m.Place(900, spec, 0, "b1"); err != nil {
				t.Fatal(err)
			}
			return m
		}
		mkCtx := func(cands []string) *Context {
			return &Context{
				Now:        2,
				Task:       &task.Task{ID: 0, Spec: spec, Arrival: 2},
				JobID:      100,
				Candidates: cands,
				HTM:        mkHTM(),
				Info:       fixedInfo{"a1": 1, "a2": 0, "b1": 0, "b2": 2},
				RNG:        stats.NewRNG(1),
			}
		}

		whole, _ := ByName(name)
		want, err := whole.(ScoredScheduler).ChooseScored(mkCtx(servers))
		if err != nil {
			t.Fatalf("%s: whole pool: %v", name, err)
		}

		var best Choice
		bestOK := false
		for _, part := range [][]string{{"a1", "a2"}, {"b1", "b2"}} {
			s, _ := ByName(name)
			c, err := s.(ScoredScheduler).ChooseScored(mkCtx(part))
			if err != nil {
				t.Fatalf("%s: partition %v: %v", name, part, err)
			}
			if !bestOK || c.Score < best.Score-tieEps ||
				(c.Score <= best.Score+tieEps && c.Tie < best.Tie-tieEps) {
				best, bestOK = c, true
			}
		}
		if best.Server != want.Server {
			t.Errorf("%s: partitioned winner %q (score %.3f), whole-pool %q (score %.3f)",
				name, best.Server, best.Score, want.Server, want.Score)
		}
	}
}
