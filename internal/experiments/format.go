package experiments

import (
	"fmt"
	"strings"

	"casched/internal/platform"
	"casched/internal/task"
)

// FormatValidation renders the Table 1 reproduction in the paper's
// column layout.
func FormatValidation(v *ValidationResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1 — HTM validation on %s (two metatask executions)\n", v.Server)
	sb.WriteString("exec task arrival   size   real-completion  sim-completion   diff    %error\n")
	for _, r := range v.Rows {
		fmt.Fprintf(&sb, "%4d %4d %8.2f %6d %16.2f %15.2f %7.2f %8.1f\n",
			r.Execution, r.Task, r.Arrival, r.Size, r.Real, r.Simulated, r.Diff, r.PctError)
	}
	fmt.Fprintf(&sb, "mean %%error: %.2f (paper: mean < 3%%)\n", v.MeanPctError)
	return sb.String()
}

// FormatTable2 renders the testbed description.
func FormatTable2() string {
	var sb strings.Builder
	sb.WriteString("Table 2 — Resources of the testbed\n")
	sb.WriteString("type    machine    processor           speed     memory   swap     system\n")
	order := []string{"chamagne", "cabestan", "artimon", "pulney", "valette", "spinnaker",
		platform.AgentHost, platform.ClientHost}
	for _, name := range order {
		m := platform.MustGet(name)
		fmt.Fprintf(&sb, "%-7s %-10s %-19s %4d MHz %5.0f Mo %5.0f Mo %s\n",
			m.Role, m.Name, m.Processor, m.SpeedMHz, m.MemoryMB, m.SwapMB, m.System)
	}
	return sb.String()
}

// FormatTable3 renders the multiplication tasks' needs.
func FormatTable3() string {
	var sb strings.Builder
	sb.WriteString("Table 3 — Multiplication tasks' needs (seconds; memory in Mo)\n")
	servers := []string{"chamagne", "cabestan", "artimon", "pulney"}
	fmt.Fprintf(&sb, "%-6s %-9s %-9s", "size", "memory", "phase")
	for _, s := range servers {
		fmt.Fprintf(&sb, " %9s", s)
	}
	sb.WriteString("\n")
	for _, size := range task.MatmulSizes {
		spec := task.Matmul(size)
		for i, phase := range []task.Phase{task.PhaseInput, task.PhaseCompute, task.PhaseOutput} {
			if i == 0 {
				fmt.Fprintf(&sb, "%-6d %-9.2f %-9s", size, spec.MemoryMB, phase)
			} else {
				fmt.Fprintf(&sb, "%-6s %-9s %-9s", "", "", phase)
			}
			for _, s := range servers {
				c, _ := spec.Cost(s)
				fmt.Fprintf(&sb, " %9.2f", c.Of(phase))
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// FormatTable4 renders the waste-cpu tasks' needs.
func FormatTable4() string {
	var sb strings.Builder
	sb.WriteString("Table 4 — Waste-cpu tasks' needs (seconds)\n")
	servers := []string{"valette", "spinnaker", "cabestan", "artimon"}
	fmt.Fprintf(&sb, "%-6s %-9s", "param", "phase")
	for _, s := range servers {
		fmt.Fprintf(&sb, " %9s", s)
	}
	sb.WriteString("\n")
	for _, p := range task.WasteCPUParams {
		spec := task.WasteCPU(p)
		for i, phase := range []task.Phase{task.PhaseInput, task.PhaseCompute, task.PhaseOutput} {
			if i == 0 {
				fmt.Fprintf(&sb, "%-6d %-9s", p, phase)
			} else {
				fmt.Fprintf(&sb, "%-6s %-9s", "", phase)
			}
			for _, s := range servers {
				c, _ := spec.Cost(s)
				fmt.Fprintf(&sb, " %9.2f", c.Of(phase))
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// FormatSet renders a SetResult in the layout of Tables 5-8: one
// column per heuristic, one row per metric. For multi-seed sets the
// per-seed values are listed with the mean in parentheses, mirroring
// the paper's Tables 7 and 8.
func FormatSet(r *SetResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Set %d results — D = %.0f s, N = %d (%s tasks)\n",
		r.Set, r.D, r.N, map[int]string{1: "multiplication", 2: "waste-cpu"}[r.Set])

	header := fmt.Sprintf("%-22s", "metric")
	for _, row := range r.Rows {
		header += fmt.Sprintf(" %-24s", row.Name)
	}
	sb.WriteString(header + "\n")

	line := func(label string, f func(h HeuristicResult) string) {
		fmt.Fprintf(&sb, "%-22s", label)
		for _, row := range r.Rows {
			fmt.Fprintf(&sb, " %-24s", f(row))
		}
		sb.WriteString("\n")
	}

	fmtSeries := func(vals []float64, mean float64, format string) string {
		if len(vals) == 1 {
			return fmt.Sprintf(format, vals[0])
		}
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = fmt.Sprintf(format, v)
		}
		return strings.Join(parts, "/") + " (" + fmt.Sprintf(format, mean) + ")"
	}

	line("completed tasks", func(h HeuristicResult) string {
		vals := make([]float64, len(h.Reports))
		for i, rep := range h.Reports {
			vals[i] = float64(rep.Completed)
		}
		return fmtSeries(vals, float64(h.Mean.Completed), "%.0f")
	})
	line("makespan", func(h HeuristicResult) string {
		vals := make([]float64, len(h.Reports))
		for i, rep := range h.Reports {
			vals[i] = rep.Makespan
		}
		return fmtSeries(vals, h.Mean.Makespan, "%.0f")
	})
	line("sumflow", func(h HeuristicResult) string {
		vals := make([]float64, len(h.Reports))
		for i, rep := range h.Reports {
			vals[i] = rep.SumFlow
		}
		return fmtSeries(vals, h.Mean.SumFlow, "%.0f")
	})
	line("maxflow", func(h HeuristicResult) string {
		vals := make([]float64, len(h.Reports))
		for i, rep := range h.Reports {
			vals[i] = rep.MaxFlow
		}
		return fmtSeries(vals, h.Mean.MaxFlow, "%.0f")
	})
	line("maxstretch", func(h HeuristicResult) string {
		vals := make([]float64, len(h.Reports))
		for i, rep := range h.Reports {
			vals[i] = rep.MaxStretch
		}
		return fmtSeries(vals, h.Mean.MaxStretch, "%.1f")
	})
	line("finish sooner vs MCT", func(h HeuristicResult) string {
		if len(h.Sooner) == 0 {
			return "-"
		}
		vals := make([]float64, len(h.Sooner))
		for i, s := range h.Sooner {
			vals[i] = float64(s)
		}
		return fmtSeries(vals, h.SoonerMean, "%.0f")
	})
	line("server collapses", func(h HeuristicResult) string {
		return fmt.Sprintf("%d", h.Collapses)
	})
	return sb.String()
}
