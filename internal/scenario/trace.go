// The trace-replay family: a workload exported to the CSV trace
// format, reimported and replayed must drive every deployment shape
// to bit-identical decisions — the guarantee that lets production
// traces be captured once and replayed against any build.

package scenario

import (
	"bytes"
	"fmt"
	"strings"

	"casched/internal/workload"
)

// TraceConfig parameterizes the trace-replay family. Zero values
// select the committed defaults (benchmarks/scenario-trace.txt).
type TraceConfig struct {
	// N is the metatask size (default 240).
	N int
	// D is the long-run mean inter-arrival in seconds (default 6).
	D float64
	// Seed drives generation and tie-breaking (default 11).
	Seed uint64
	// Heuristic is the objective (default HMCT).
	Heuristic string
	// Replicas scales the Table 2 second-set testbed (default 2).
	Replicas int
	// Shapes are the deployment shapes replayed against (default
	// core and cluster).
	Shapes []Shape
}

func (c *TraceConfig) defaults() {
	if c.N == 0 {
		c.N = 240
	}
	if c.D == 0 {
		c.D = 6
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	if c.Heuristic == "" {
		c.Heuristic = "HMCT"
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if len(c.Shapes) == 0 {
		c.Shapes = []Shape{ShapeCore, ShapeCluster}
	}
}

// TraceShapeResult is one shape's direct-vs-replay measurement.
type TraceShapeResult struct {
	Shape Shape
	// DirectSumFlow drives the generated metatask; ReplaySumFlow the
	// CSV round-tripped one.
	DirectSumFlow, ReplaySumFlow float64
	// Identical is the family's claim: the replay reproduced the
	// direct run's HTM-simulated completions exactly (same decisions,
	// same dates — not merely close).
	Identical bool
}

// TraceResult holds the family's measurements.
type TraceResult struct {
	Config TraceConfig

	// CSVBytes is the exported trace size; Tasks the row count.
	CSVBytes, Tasks int
	// Rows are the per-shape measurements.
	Rows []TraceShapeResult
}

// Trace runs the family: generate a bursty multi-tenant deadline-
// stamped workload, export it to CSV, reimport, and verify the replay
// drives each shape identically to the original.
func Trace(cfg TraceConfig) (*TraceResult, error) {
	cfg.defaults()
	// Tenants and deadlines ride along so the trace columns beyond the
	// paper's id/problem/variant/arrival quartet are exercised too.
	sc := workload.MultiTenant(workload.PoissonBurst(cfg.N, cfg.D, cfg.Seed),
		map[string]float64{"gold": 2, "silver": 1}, 6)
	mt, err := workload.Generate(sc)
	if err != nil {
		return nil, err
	}

	var buf bytes.Buffer
	if err := workload.WriteCSV(&buf, mt); err != nil {
		return nil, err
	}
	replayed, err := workload.ReadCSV(bytes.NewReader(buf.Bytes()), mt.Name)
	if err != nil {
		return nil, fmt.Errorf("scenario: trace reimport: %w", err)
	}
	if replayed.Len() != mt.Len() {
		return nil, fmt.Errorf("scenario: trace reimport lost tasks: %d != %d", replayed.Len(), mt.Len())
	}

	// Both copies run on the same scaled testbed: the rewrite maps the
	// base-server costs the CSV identifies by problem/variant onto the
	// replicated pool.
	names, rewrite := testbed(cfg.Replicas)
	for _, t := range mt.Tasks {
		t.Spec = rewrite(t.Spec)
	}
	for _, t := range replayed.Tasks {
		t.Spec = rewrite(t.Spec)
	}

	res := &TraceResult{Config: cfg, CSVBytes: buf.Len(), Tasks: mt.Len()}
	ecfg := engineConfig{heuristic: cfg.Heuristic, seed: cfg.Seed, width: 4}
	for _, shape := range cfg.Shapes {
		direct, err := newEngine(shape, ecfg, names)
		if err != nil {
			return nil, err
		}
		if err := runStream(direct, requests(mt)); err != nil {
			return nil, err
		}
		replay, err := newEngine(shape, ecfg, names)
		if err != nil {
			return nil, err
		}
		if err := runStream(replay, requests(replayed)); err != nil {
			return nil, err
		}
		row := TraceShapeResult{
			Shape:         shape,
			DirectSumFlow: sumFlowOf(direct, mt),
			ReplaySumFlow: sumFlowOf(replay, replayed),
		}
		// Bit-identical, not approximately equal: the claim is that the
		// CSV format loses nothing the decision path reads.
		row.Identical = identicalPredictions(direct, replay)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// identicalPredictions compares the two engines' final projections
// exactly.
func identicalPredictions(a, b engine) bool {
	pa, pb := a.FinalPredictions(), b.FinalPredictions()
	if len(pa) != len(pb) {
		return false
	}
	for id, c := range pa {
		if pb[id] != c {
			return false
		}
	}
	return true
}

// FormatTrace renders the family as a small report.
func FormatTrace(r *TraceResult) string {
	var b strings.Builder
	c := r.Config
	fmt.Fprintf(&b, "scenario: trace-driven CSV replay — %s, poisson-burst set 2 + tenants + deadlines, N=%d D=%gs, %d servers, seed %d\n",
		c.Heuristic, c.N, c.D, 4*c.Replicas, c.Seed)
	fmt.Fprintf(&b, "trace: %d tasks exported to %d CSV bytes, reimported, replayed\n", r.Tasks, r.CSVBytes)
	fmt.Fprintf(&b, "\n  %-12s %14s %14s %10s\n", "shape", "direct", "replay", "identical")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %14.0f %14.0f %10v\n",
			string(row.Shape), row.DirectSumFlow, row.ReplaySumFlow, row.Identical)
	}
	fmt.Fprintf(&b, "\nclaim: replaying the exported trace reproduces the direct run's decisions and\n")
	fmt.Fprintf(&b, "HTM-simulated completions bit-identically on every shape.\n")
	return b.String()
}
