package assign

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForce finds the optimal assignment by exhaustive search:
// maximum cardinality first, minimum cost among those. Rows ≤ ~8.
func bruteForce(cost [][]float64) (bestCols []int, bestCount int, bestTotal float64) {
	n := len(cost)
	m := 0
	if n > 0 {
		m = len(cost[0])
	}
	cols := make([]int, n)
	usedCol := make([]bool, m)
	bestTotal = math.Inf(1)
	var rec func(i, count int, total float64)
	rec = func(i, count int, total float64) {
		if i == n {
			if count > bestCount || (count == bestCount && total < bestTotal) {
				bestCount, bestTotal = count, total
				bestCols = append([]int(nil), cols...)
			}
			return
		}
		cols[i] = Unassigned
		rec(i+1, count, total)
		for j := 0; j < m; j++ {
			if usedCol[j] || math.IsInf(cost[i][j], 1) {
				continue
			}
			usedCol[j] = true
			cols[i] = j
			rec(i+1, count+1, total+cost[i][j])
			cols[i] = Unassigned
			usedCol[j] = false
		}
	}
	rec(0, 0, 0)
	return bestCols, bestCount, bestTotal
}

func matchedCount(rowToCol []int) int {
	n := 0
	for _, c := range rowToCol {
		if c != Unassigned {
			n++
		}
	}
	return n
}

func TestSolveSquareExact(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	rows, total := Solve(cost)
	want := []int{1, 0, 2} // 1 + 2 + 2 = 5
	if total != 5 {
		t.Fatalf("total = %v, want 5 (assignment %v)", total, rows)
	}
	for i, c := range want {
		if rows[i] != c {
			t.Errorf("row %d -> col %d, want %d", i, rows[i], c)
		}
	}
}

func TestSolveRectangularMoreColumns(t *testing.T) {
	// 2 tasks, 4 servers: both rows must be matched, on distinct
	// columns, at minimum sum.
	cost := [][]float64{
		{10, 2, 8, 7},
		{10, 3, 8, 7},
	}
	rows, total := Solve(cost)
	if matchedCount(rows) != 2 {
		t.Fatalf("matched %d rows, want 2 (%v)", matchedCount(rows), rows)
	}
	if rows[0] == rows[1] {
		t.Fatalf("both rows on column %d", rows[0])
	}
	if total != 2+7 { // row1 takes col1 (2), row2's next best is col3 (7)
		t.Errorf("total = %v, want 9 (%v)", total, rows)
	}
}

func TestSolveMoreRowsThanColumns(t *testing.T) {
	cost := [][]float64{
		{1, 4},
		{2, 8},
		{3, 12},
	}
	rows, total := Solve(cost)
	if matchedCount(rows) != 2 {
		t.Fatalf("matched %d rows, want 2 (%v)", matchedCount(rows), rows)
	}
	_, wantCount, wantTotal := bruteForce(cost)
	if matchedCount(rows) != wantCount || total != wantTotal {
		t.Errorf("got count %d total %v, brute force count %d total %v",
			matchedCount(rows), total, wantCount, wantTotal)
	}
}

func TestSolveInfeasiblePairs(t *testing.T) {
	inf := math.Inf(1)
	// Row 1 can only use column 0; row 0 must be pushed to column 1
	// even though column 0 is its cheaper choice.
	cost := [][]float64{
		{1, 5},
		{2, inf},
	}
	rows, total := Solve(cost)
	if rows[0] != 1 || rows[1] != 0 {
		t.Fatalf("assignment = %v, want [1 0]", rows)
	}
	if total != 7 {
		t.Errorf("total = %v, want 7", total)
	}
}

func TestSolveAllInfeasibleRow(t *testing.T) {
	inf := math.Inf(1)
	cost := [][]float64{
		{inf, inf},
		{3, 1},
	}
	rows, total := Solve(cost)
	if rows[0] != Unassigned {
		t.Errorf("infeasible row matched to %d", rows[0])
	}
	if rows[1] != 1 || total != 1 {
		t.Errorf("assignment = %v total %v, want row 1 -> col 1, total 1", rows, total)
	}
}

func TestSolveEmpty(t *testing.T) {
	if rows, total := Solve(nil); rows != nil || total != 0 {
		t.Errorf("Solve(nil) = %v, %v", rows, total)
	}
	if rows, total := Solve([][]float64{{}, {}}); matchedCount(rows) != 0 || total != 0 {
		t.Errorf("Solve(no columns) = %v, %v", rows, total)
	}
}

// TestSolveRandomAgainstBruteForce cross-checks the solver on small
// random instances, including infeasible entries, against exhaustive
// search. Only the optimum value is compared (optimal assignments need
// not be unique).
func TestSolveRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				if rng.Float64() < 0.2 {
					cost[i][j] = math.Inf(1)
				} else {
					cost[i][j] = float64(rng.Intn(50))
				}
			}
		}
		rows, total := Solve(cost)
		_, wantCount, wantTotal := bruteForce(cost)
		// The row-by-row solver always reaches maximum cardinality (a
		// row with no augmenting path now never gains one later), and
		// is cost-exact whenever every row is matched.
		if matchedCount(rows) != wantCount {
			t.Fatalf("trial %d: cost %v: matched %d, want %d",
				trial, cost, matchedCount(rows), wantCount)
		}
		if matchedCount(rows) == n && math.Abs(total-wantTotal) > 1e-9 {
			t.Fatalf("trial %d: cost %v: solver total %v, optimal %v (rows %v)",
				trial, cost, total, wantTotal, rows)
		}
		// Matched pairs must be feasible and columns distinct.
		seen := map[int]bool{}
		for i, c := range rows {
			if c == Unassigned {
				continue
			}
			if seen[c] {
				t.Fatalf("trial %d: column %d used twice", trial, c)
			}
			seen[c] = true
			if math.IsInf(cost[i][c], 1) {
				t.Fatalf("trial %d: infeasible pair (%d,%d) matched", trial, i, c)
			}
		}
	}
}

func BenchmarkSolve32x128(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	cost := make([][]float64, 32)
	for i := range cost {
		cost[i] = make([]float64, 128)
		for j := range cost[i] {
			cost[i][j] = rng.Float64() * 1000
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(cost)
	}
}
