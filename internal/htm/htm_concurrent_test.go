package htm

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"casched/internal/task"
	"casched/internal/workload"
)

// table1Servers is the two-machine live testbed of the paper's Table 1
// validation runs.
var table1Servers = []string{"spinnaker", "artimon"}

// TestIncrementalMatchesFullReplay replays the Table 1 workload
// (waste-cpu metatask on the two validation servers) through both
// evaluation paths: at every arrival the incremental, concurrent
// EvaluateAll must agree with the full-replay reference EvaluateFull
// within 1e-9 on every candidate, even as placements keep invalidating
// parts of the baseline cache.
func TestIncrementalMatchesFullReplay(t *testing.T) {
	mt := workload.MustGenerate(workload.Set2(120, 15, 7))
	m := New(table1Servers)
	for _, tk := range mt.Tasks {
		preds, err := m.EvaluateAll(tk.ID, tk.Spec, tk.Arrival, table1Servers)
		if err != nil {
			t.Fatalf("task %d: EvaluateAll: %v", tk.ID, err)
		}
		if len(preds) != len(table1Servers) {
			t.Fatalf("task %d: got %d predictions", tk.ID, len(preds))
		}
		best := preds[0]
		for _, p := range preds {
			full, err := m.EvaluateFull(tk.ID, tk.Spec, tk.Arrival, p.Server)
			if err != nil {
				t.Fatalf("task %d: EvaluateFull(%s): %v", tk.ID, p.Server, err)
			}
			if d := math.Abs(p.Completion - full.Completion); d > 1e-9 {
				t.Errorf("task %d on %s: completion %v vs full %v (Δ=%g)",
					tk.ID, p.Server, p.Completion, full.Completion, d)
			}
			if d := math.Abs(p.Perturbation - full.Perturbation); d > 1e-9 {
				t.Errorf("task %d on %s: perturbation %v vs full %v (Δ=%g)",
					tk.ID, p.Server, p.Perturbation, full.Perturbation, d)
			}
			if d := math.Abs(p.Flow - full.Flow); d > 1e-9 {
				t.Errorf("task %d on %s: flow %v vs full %v (Δ=%g)",
					tk.ID, p.Server, p.Flow, full.Flow, d)
			}
			if p.Interfered != full.Interfered {
				t.Errorf("task %d on %s: interfered %d vs full %d",
					tk.ID, p.Server, p.Interfered, full.Interfered)
			}
			if p.Completion < best.Completion {
				best = p
			}
		}
		if err := m.Place(tk.ID, tk.Spec, tk.Arrival, best.Server); err != nil {
			t.Fatalf("task %d: Place: %v", tk.ID, err)
		}
	}
}

// TestEvaluateAllConcurrentWithPlace exercises the Manager from many
// goroutines at once: evaluators race placements and completion
// notifications on a synced trace. Run under -race this pins the
// Manager's thread-safety contract; functionally every evaluation must
// return a coherent prediction set or a surfaced error, never a torn
// one.
func TestEvaluateAllConcurrentWithPlace(t *testing.T) {
	servers := []string{"s1", "s2", "s3", "s4"}
	spec := &task.Spec{Problem: "p", Variant: 1, CostOn: map[string]task.Cost{
		"s1": {Input: 1, Compute: 40, Output: 1},
		"s2": {Input: 1, Compute: 50, Output: 1},
		"s3": {Input: 2, Compute: 60, Output: 1},
		"s4": {Input: 2, Compute: 70, Output: 1},
	}}
	m := New(servers, WithSync(), WithWorkers(4))

	const (
		placers    = 2
		evaluators = 4
		perWorker  = 30
	)
	var wg sync.WaitGroup
	errc := make(chan error, placers+evaluators)

	for w := 0; w < placers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := w*perWorker + i
				at := float64(i)
				srv := servers[(w+i)%len(servers)]
				if err := m.Place(id, spec, at, srv); err != nil {
					errc <- fmt.Errorf("place %d: %w", id, err)
					return
				}
				if i%3 == 0 {
					// Re-anchor a previously placed job somewhere in
					// the future of its placement.
					if err := m.NotifyCompletion(id, at+100); err != nil {
						errc <- fmt.Errorf("notify %d: %w", id, err)
						return
					}
				}
			}
		}()
	}
	for w := 0; w < evaluators; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := 10_000 + w*perWorker + i
				preds, err := m.EvaluateAll(id, spec, float64(i), servers)
				if err != nil {
					errc <- fmt.Errorf("evaluate %d: %w", id, err)
					return
				}
				if len(preds) != len(servers) {
					errc <- fmt.Errorf("evaluate %d: %d predictions", id, len(preds))
					return
				}
				for _, p := range preds {
					if math.IsNaN(p.Completion) || p.Completion < float64(i) {
						errc <- fmt.Errorf("evaluate %d on %s: bogus completion %v",
							id, p.Server, p.Completion)
						return
					}
				}
				if _, ok := m.PredictedCompletion(w * i); ok {
					_ = ok // racing read; value checked for consistency elsewhere
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestEvaluateAllMatchesSequentialWorkers pins that the worker count
// does not affect results: the same trace evaluated with 1 and many
// workers yields bit-identical predictions.
func TestEvaluateAllMatchesSequentialWorkers(t *testing.T) {
	mt := workload.MustGenerate(workload.Set2(40, 10, 3))
	one := New(table1Servers, WithWorkers(1))
	many := New(table1Servers, WithWorkers(8))
	for _, tk := range mt.Tasks {
		a, errA := one.EvaluateAll(tk.ID, tk.Spec, tk.Arrival, table1Servers)
		b, errB := many.EvaluateAll(tk.ID, tk.Spec, tk.Arrival, table1Servers)
		if errA != nil || errB != nil {
			t.Fatal(errA, errB)
		}
		if len(a) != len(b) {
			t.Fatalf("prediction counts differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].Server != b[i].Server || a[i].Completion != b[i].Completion ||
				a[i].Perturbation != b[i].Perturbation || a[i].Interfered != b[i].Interfered {
				t.Fatalf("task %d: worker-count-dependent prediction: %+v vs %+v",
					tk.ID, a[i], b[i])
			}
		}
		if err := one.Place(tk.ID, tk.Spec, tk.Arrival, a[0].Server); err != nil {
			t.Fatal(err)
		}
		if err := many.Place(tk.ID, tk.Spec, tk.Arrival, b[0].Server); err != nil {
			t.Fatal(err)
		}
	}
}
