// Command castables regenerates the paper's tables and Figure 1.
//
// Usage:
//
//	castables -table all          # everything (Tables 1-8, Figure 1)
//	castables -table 5            # one table
//	castables -table figure1
//	castables -table 7 -n 200     # scaled-down campaign
package main

import (
	"flag"
	"fmt"
	"os"

	"casched"
)

func main() {
	var (
		table = flag.String("table", "all", "what to regenerate: 1-8, figure1, or all")
		n     = flag.Int("n", 500, "metatask size for Tables 5-8")
		dLow  = flag.Float64("dlow", 25, "low-rate mean inter-arrival (s)")
		dHigh = flag.Float64("dhigh", 20, "high-rate mean inter-arrival (s)")
		seed  = flag.Uint64("seed", 103, "base seed")
	)
	flag.Parse()

	c := casched.DefaultCampaign()
	c.N = *n
	c.DLow = *dLow
	c.DHigh = *dHigh
	c.Seeds = []uint64{*seed, *seed + 1, *seed + 2}

	if err := emit(*table, c); err != nil {
		fmt.Fprintln(os.Stderr, "castables:", err)
		os.Exit(1)
	}
}

func emit(which string, c casched.Campaign) error {
	type job struct {
		name  string
		run   func() error
		extra bool // not part of -table all
	}
	jobs := []job{
		{name: "1", run: func() error {
			v, err := casched.Validate(casched.ValidationConfig{Seed: 7})
			if err != nil {
				return err
			}
			fmt.Println(casched.FormatValidation(v))
			return nil
		}},
		{name: "2", run: func() error { fmt.Println(casched.FormatTable2()); return nil }},
		{name: "3", run: func() error { fmt.Println(casched.FormatTable3()); return nil }},
		{name: "4", run: func() error { fmt.Println(casched.FormatTable4()); return nil }},
		{name: "5", run: setJob(c, 5)},
		{name: "6", run: setJob(c, 6)},
		{name: "7", run: setJob(c, 7)},
		{name: "8", run: setJob(c, 8)},
		{name: "figure1", run: func() error {
			out, err := casched.Figure1(72)
			if err != nil {
				return err
			}
			fmt.Println(out)
			return nil
		}},
	}
	extras := []job{
		{name: "baselines", extra: true, run: func() error {
			reports, sooner, err := c.BaselinesComparison(c.DHigh)
			if err != nil {
				return err
			}
			fmt.Print(casched.FormatBaselines(reports, sooner))
			return nil
		}},
		{name: "sweep", extra: true, run: func() error {
			res, err := c.RateSweep(2, []float64{30, 25, 20, 17}, []string{"MCT", "HMCT", "MP", "MSF"})
			if err != nil {
				return err
			}
			fmt.Print(casched.FormatSweep(res, "sumflow"))
			fmt.Print(casched.FormatSweep(res, "maxstretch"))
			return nil
		}},
		{name: "accuracy", extra: true, run: func() error {
			a, err := c.MeasureAccuracy("MSF", c.DLow)
			if err != nil {
				return err
			}
			fmt.Print(casched.FormatAccuracy(a))
			return nil
		}},
		{name: "balance", extra: true, run: func() error {
			lb, err := c.LoadBalanceComparison(c.DHigh)
			if err != nil {
				return err
			}
			for _, h := range []string{"MCT", "HMCT", "MP", "MSF"} {
				fmt.Print(casched.FormatServerStats(h, lb[h]))
			}
			return nil
		}},
	}
	// The extension harnesses run on demand only (not part of "all",
	// which regenerates exactly the paper's content).
	jobs = append(jobs, extras...)
	matched := false
	for _, j := range jobs {
		if (which == "all" && !j.extra) || which == j.name {
			matched = true
			if err := j.run(); err != nil {
				return fmt.Errorf("table %s: %w", j.name, err)
			}
		}
	}
	if !matched {
		return fmt.Errorf("unknown table %q", which)
	}
	return nil
}

func setJob(c casched.Campaign, table int) func() error {
	return func() error {
		var res *casched.SetResult
		var err error
		switch table {
		case 5:
			res, err = c.Table5()
		case 6:
			res, err = c.Table6()
		case 7:
			res, err = c.Table7()
		case 8:
			res, err = c.Table8()
		}
		if err != nil {
			return err
		}
		fmt.Printf("Table %d — ", table)
		fmt.Println(casched.FormatSet(res))
		return nil
	}
}
