package fluid

import (
	"math"
	"testing"
	"testing/quick"

	"casched/internal/task"
)

func simpleSim(name string) *Sim {
	return New(Config{Name: name})
}

func TestSingleJobRunsAtFullSpeed(t *testing.T) {
	s := simpleSim("srv")
	if err := s.Add(0, 0, task.Cost{Input: 2, Compute: 10, Output: 1}, 0); err != nil {
		t.Fatal(err)
	}
	s.RunToIdle(math.Inf(1))
	j := s.Job(0)
	c, ok := j.Completion()
	if !ok {
		t.Fatal("job did not complete")
	}
	if got, want := c, 13.0; math.Abs(got-want) > 1e-6 {
		t.Errorf("completion = %v, want %v", got, want)
	}
	if got := j.End[task.PhaseInput]; math.Abs(got-2) > 1e-6 {
		t.Errorf("input end = %v, want 2", got)
	}
	if got := j.End[task.PhaseCompute]; math.Abs(got-12) > 1e-6 {
		t.Errorf("compute end = %v, want 12", got)
	}
}

// TestProcessorSharingPaperExample reproduces the usefulness example of
// §2.3: two identical servers, T1 of duration 100 and T2 of duration
// 200 started at t=0. At t=80, T1 has 20s of remaining work and T2 has
// 120s.
func TestProcessorSharingPaperExample(t *testing.T) {
	s := simpleSim("s1")
	if err := s.Add(1, 0, task.Cost{Compute: 100}, 0); err != nil {
		t.Fatal(err)
	}
	s.AdvanceTo(0) // settle release
	s.AdvanceTo(80)
	j := s.Job(1)
	if got := j.Remaining[task.PhaseCompute]; math.Abs(got-20) > 1e-6 {
		t.Errorf("T1 remaining = %v, want 20", got)
	}

	s2 := simpleSim("s2")
	if err := s2.Add(2, 0, task.Cost{Compute: 200}, 0); err != nil {
		t.Fatal(err)
	}
	s2.AdvanceTo(80)
	if got := s2.Job(2).Remaining[task.PhaseCompute]; math.Abs(got-120) > 1e-6 {
		t.Errorf("T2 remaining = %v, want 120", got)
	}
}

// TestTwoJobsShareCPU checks the 1/n rate: two equal jobs of 100s CPU
// started together both finish at t=200.
func TestTwoJobsShareCPU(t *testing.T) {
	s := simpleSim("srv")
	for id := 0; id < 2; id++ {
		if err := s.Add(id, 0, task.Cost{Compute: 100}, 0); err != nil {
			t.Fatal(err)
		}
	}
	s.RunToIdle(math.Inf(1))
	for id := 0; id < 2; id++ {
		c, ok := s.Job(id).Completion()
		if !ok || math.Abs(c-200) > 1e-6 {
			t.Errorf("job %d completion = %v,%v, want 200", id, c, ok)
		}
	}
}

// TestStaggeredSharing: job A (100s) at t=0, job B (100s) at t=50.
// From 50 to 150 both run at 1/2: A finishes remaining 50 at t=150.
// B then has 50 left, full speed, finishes at t=200.
func TestStaggeredSharing(t *testing.T) {
	s := simpleSim("srv")
	if err := s.Add(0, 0, task.Cost{Compute: 100}, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(1, 50, task.Cost{Compute: 100}, 0); err != nil {
		t.Fatal(err)
	}
	s.RunToIdle(math.Inf(1))
	cA, _ := s.Job(0).Completion()
	cB, _ := s.Job(1).Completion()
	if math.Abs(cA-150) > 1e-6 {
		t.Errorf("A completion = %v, want 150", cA)
	}
	if math.Abs(cB-200) > 1e-6 {
		t.Errorf("B completion = %v, want 200", cB)
	}
}

// TestPerturbationExample: the perturbation of a newly placed task on a
// running one equals the delay of the running task's completion.
func TestPerturbationExample(t *testing.T) {
	s := simpleSim("srv")
	if err := s.Add(0, 0, task.Cost{Compute: 100}, 0); err != nil {
		t.Fatal(err)
	}
	s.AdvanceTo(80)
	before := s.ProjectedCompletions()
	if math.Abs(before[0]-100) > 1e-6 {
		t.Fatalf("projected completion before = %v, want 100", before[0])
	}

	c := s.Clone()
	if err := c.Add(1, 80, task.Cost{Compute: 100}, 0); err != nil {
		t.Fatal(err)
	}
	after := c.ProjectedCompletions()
	// Old job: 20s left shared 2 ways -> finishes at 80+40=120.
	if math.Abs(after[0]-120) > 1e-6 {
		t.Errorf("old job delayed completion = %v, want 120", after[0])
	}
	// New job: runs 40s at 1/2 (does 20), then 80 alone: 80+40+80=200.
	if math.Abs(after[1]-200) > 1e-6 {
		t.Errorf("new job completion = %v, want 200", after[1])
	}
	// The original sim must be untouched by the clone.
	orig := s.ProjectedCompletions()
	if math.Abs(orig[0]-100) > 1e-6 {
		t.Errorf("clone disturbed the original: %v", orig[0])
	}
}

func TestInputLinkSharing(t *testing.T) {
	s := simpleSim("srv")
	// Two transfers of 10s each, simultaneous: both end at t=20; the
	// computations then share the CPU.
	for id := 0; id < 2; id++ {
		if err := s.Add(id, 0, task.Cost{Input: 10, Compute: 30}, 0); err != nil {
			t.Fatal(err)
		}
	}
	events := s.RunToIdle(math.Inf(1))
	for id := 0; id < 2; id++ {
		if got := s.Job(id).End[task.PhaseInput]; math.Abs(got-20) > 1e-6 {
			t.Errorf("job %d input end = %v, want 20", id, got)
		}
		c, _ := s.Job(id).Completion()
		if math.Abs(c-80) > 1e-6 {
			t.Errorf("job %d completion = %v, want 80", id, c)
		}
	}
	if len(events) == 0 {
		t.Error("no events emitted")
	}
}

func TestZeroCostPhasesChain(t *testing.T) {
	s := simpleSim("srv")
	if err := s.Add(0, 5, task.Cost{}, 0); err != nil {
		t.Fatal(err)
	}
	events := s.RunToIdle(math.Inf(1))
	c, ok := s.Job(0).Completion()
	if !ok || math.Abs(c-5) > 1e-6 {
		t.Errorf("zero-cost job completion = %v,%v, want 5", c, ok)
	}
	var done bool
	for _, e := range events {
		if e.Kind == EventDone && e.JobID == 0 {
			done = true
		}
	}
	if !done {
		t.Error("no EventDone emitted")
	}
}

func TestMemoryThrashSlowsCompute(t *testing.T) {
	// Harsh model (alpha=1): factor = RAM/demand = 0.5, so a 100s
	// compute with a 200MB footprint on a 100MB machine takes 200s.
	s := New(Config{Name: "srv", RAMMB: 100, SwapMB: 1000, Thrash: true, ThrashAlpha: 1})
	if err := s.Add(0, 0, task.Cost{Compute: 100}, 200); err != nil {
		t.Fatal(err)
	}
	s.RunToIdle(math.Inf(1))
	c, ok := s.Job(0).Completion()
	if !ok || math.Abs(c-200) > 1e-6 {
		t.Errorf("thrashed completion = %v,%v, want 200", c, ok)
	}

	// Default model (alpha=0.5): factor = 1/(1+0.5*1) = 2/3 -> 150s.
	d := New(Config{Name: "srv", RAMMB: 100, SwapMB: 1000, Thrash: true})
	if err := d.Add(0, 0, task.Cost{Compute: 100}, 200); err != nil {
		t.Fatal(err)
	}
	d.RunToIdle(math.Inf(1))
	c, ok = d.Job(0).Completion()
	if !ok || math.Abs(c-150) > 1e-6 {
		t.Errorf("default thrash completion = %v,%v, want 150", c, ok)
	}

	// No thrash flag: full speed regardless of footprint.
	n := New(Config{Name: "srv", RAMMB: 100, SwapMB: 1000})
	if err := n.Add(0, 0, task.Cost{Compute: 100}, 200); err != nil {
		t.Fatal(err)
	}
	n.RunToIdle(math.Inf(1))
	c, ok = n.Job(0).Completion()
	if !ok || math.Abs(c-100) > 1e-6 {
		t.Errorf("no-thrash completion = %v,%v, want 100", c, ok)
	}
}

func TestCollapseOnMemoryExhaustion(t *testing.T) {
	s := New(Config{Name: "srv", RAMMB: 100, SwapMB: 50, Thrash: true})
	if err := s.Add(0, 0, task.Cost{Compute: 100}, 100); err != nil {
		t.Fatal(err)
	}
	s.AdvanceTo(10)
	if collapsed, _ := s.Collapsed(); collapsed {
		t.Fatal("server collapsed below capacity")
	}
	// Second job pushes demand to 200 > 150: collapse.
	if err := s.Add(1, 10, task.Cost{Compute: 100}, 100); err != nil {
		t.Fatal(err)
	}
	events := s.AdvanceTo(10)
	collapsed, at := s.Collapsed()
	if !collapsed {
		t.Fatal("server did not collapse")
	}
	if math.Abs(at-10) > 1e-6 {
		t.Errorf("collapse time = %v, want 10", at)
	}
	var collapseEvents, failed int
	for _, e := range events {
		switch e.Kind {
		case EventCollapse:
			collapseEvents++
		case EventFailed:
			failed++
		}
	}
	if collapseEvents != 1 || failed != 2 {
		t.Errorf("collapse=%d failed=%d, want 1 and 2", collapseEvents, failed)
	}
	if err := s.Add(2, 11, task.Cost{Compute: 1}, 0); err == nil {
		t.Error("Add succeeded on a collapsed server")
	}
}

func TestAddErrors(t *testing.T) {
	s := simpleSim("srv")
	if err := s.Add(0, 0, task.Cost{Compute: 1}, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(0, 0, task.Cost{Compute: 1}, 0); err == nil {
		t.Error("duplicate id accepted")
	}
	s.AdvanceTo(10)
	if err := s.Add(1, 5, task.Cost{Compute: 1}, 0); err == nil {
		t.Error("past release accepted")
	}
}

func TestRemove(t *testing.T) {
	s := simpleSim("srv")
	if err := s.Add(0, 0, task.Cost{Compute: 1}, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(0); err == nil {
		t.Error("removed an active job")
	}
	s.RunToIdle(math.Inf(1))
	if err := s.Remove(0); err != nil {
		t.Errorf("remove done job: %v", err)
	}
	if s.Job(0) != nil {
		t.Error("job still present after Remove")
	}
	if err := s.Remove(0); err == nil {
		t.Error("double remove succeeded")
	}
}

// TestPropertyWorkConservation: with a single-phase (compute only)
// workload and no memory model, the CPU is busy whenever jobs are
// active, so the last completion equals total work when all jobs are
// released at time 0 (processor sharing is work conserving).
func TestPropertyWorkConservation(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		s := simpleSim("srv")
		total := 0.0
		for i, b := range raw {
			w := float64(b%100) + 1
			total += w
			if err := s.Add(i, 0, task.Cost{Compute: w}, 0); err != nil {
				return false
			}
		}
		s.RunToIdle(math.Inf(1))
		last := 0.0
		for _, j := range s.Jobs() {
			c, ok := j.Completion()
			if !ok {
				return false
			}
			if c > last {
				last = c
			}
		}
		return math.Abs(last-total) < 1e-6*math.Max(1, total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPerturbationNonNegative: for compute-only workloads
// (a single shared resource), adding an extra job never makes any
// existing job finish earlier — perturbations are non-negative. With
// multi-phase tasks this can fail (see
// TestCrossPhaseCouplingCanAccelerate), which is why the MP heuristic
// minimizes the *sum* of perturbations rather than assuming each term
// is a delay.
func TestPropertyPerturbationNonNegative(t *testing.T) {
	f := func(raw []uint8, extra uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 10 {
			raw = raw[:10]
		}
		s := simpleSim("srv")
		for i, b := range raw {
			rel := float64(b % 50)
			w := float64(b%200) + 1
			if err := s.Add(i, rel+s.Now(), task.Cost{Compute: w}, 0); err != nil {
				return false
			}
		}
		before := s.ProjectedCompletions()
		c := s.Clone()
		if err := c.Add(1000, c.Now(), task.Cost{Compute: float64(extra%200) + 1}, 0); err != nil {
			return false
		}
		after := c.ProjectedCompletions()
		for id, b := range before {
			a, ok := after[id]
			if !ok {
				return false
			}
			if a < b-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCrossPhaseCouplingCanAccelerate documents a real property of the
// three-phase shared model: a new task competing on the input link can
// delay another task's entry into the compute phase, leaving more CPU
// to a third task, which then finishes EARLIER. Perturbations are
// therefore not sign-definite in general.
func TestCrossPhaseCouplingCanAccelerate(t *testing.T) {
	base := simpleSim("srv")
	// Job 0: already computing (100s CPU, no transfers).
	if err := base.Add(0, 0, task.Cost{Compute: 100}, 0); err != nil {
		t.Fatal(err)
	}
	// Job 1: long input transfer then CPU; it will join job 0 on the
	// CPU once its transfer ends.
	if err := base.Add(1, 0, task.Cost{Input: 20, Compute: 100}, 0); err != nil {
		t.Fatal(err)
	}
	before := base.ProjectedCompletions()

	with := base.Clone()
	// Job 2: pure transfer load on the input link, doubling job 1's
	// transfer duration and postponing its CPU arrival.
	if err := with.Add(2, 0, task.Cost{Input: 40}, 0); err != nil {
		t.Fatal(err)
	}
	after := with.ProjectedCompletions()

	if !(after[0] < before[0]-1e-9) {
		t.Errorf("job 0: before=%v after=%v; expected acceleration", before[0], after[0])
	}
	// Job 1 is the last to finish either way; work conservation pins its
	// completion at the total CPU work (200s), so it is NOT delayed —
	// the new transfer-only task has zero net perturbation here even
	// though it reshuffles who has the CPU when.
	if math.Abs(after[1]-before[1]) > 1e-9 {
		t.Errorf("job 1: before=%v after=%v; expected unchanged", before[1], after[1])
	}
}

func TestCloneIndependence(t *testing.T) {
	s := simpleSim("srv")
	if err := s.Add(0, 0, task.Cost{Compute: 100}, 0); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	c.AdvanceTo(50)
	if s.Now() != 0 {
		t.Errorf("clone advanced the original clock to %v", s.Now())
	}
	if got := s.Job(0).Remaining[task.PhaseCompute]; got != 100 {
		t.Errorf("clone consumed original work: remaining %v", got)
	}
}

// TestPropertySplitAdvanceEquivalence: advancing to T in one call is
// equivalent to advancing in arbitrary intermediate steps — the
// invariant that lets the grid simulator interleave monitor reports,
// arrivals and failures at any granularity without changing outcomes.
func TestPropertySplitAdvanceEquivalence(t *testing.T) {
	f := func(raw []uint8, splitRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 10 {
			raw = raw[:10]
		}
		build := func() *Sim {
			s := simpleSim("srv")
			for i, b := range raw {
				rel := float64(b % 40)
				w := float64(b%150) + 1
				if err := s.Add(i, rel, task.Cost{Input: w / 10, Compute: w, Output: w / 20}, 0); err != nil {
					return nil
				}
			}
			return s
		}
		one := build()
		many := build()
		if one == nil || many == nil {
			return false
		}
		const T = 120.0
		one.AdvanceTo(T)
		// Split the horizon at an arbitrary fraction, in three calls.
		frac := float64(splitRaw%98+1) / 100
		many.AdvanceTo(T * frac / 2)
		many.AdvanceTo(T * frac)
		many.AdvanceTo(T)
		for i := range raw {
			a, b := one.Job(i), many.Job(i)
			if a.State != b.State {
				return false
			}
			for p := task.Phase(0); p < task.NumPhases; p++ {
				if math.Abs(a.Remaining[p]-b.Remaining[p]) > 1e-6 {
					return false
				}
			}
		}
		return math.Abs(one.BusyTime(task.PhaseCompute)-many.BusyTime(task.PhaseCompute)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestNextEventTimeIdle(t *testing.T) {
	s := simpleSim("srv")
	if _, ok := s.NextEventTime(); ok {
		t.Error("idle server reported an event")
	}
	if err := s.Add(0, 7, task.Cost{Compute: 3}, 0); err != nil {
		t.Fatal(err)
	}
	tt, ok := s.NextEventTime()
	if !ok || math.Abs(tt-7) > 1e-9 {
		t.Errorf("next event = %v,%v, want 7", tt, ok)
	}
}

// TestCollapseDoesNotFailJustFinishedJob: a job whose output completes
// at the exact instant another job's activation collapses the server
// must stay done — the collapse may not rewrite the completion that
// already happened at that instant.
func TestCollapseDoesNotFailJustFinishedJob(t *testing.T) {
	s := New(Config{Name: "m", RAMMB: 100, SwapMB: 0, Thrash: true})
	if err := s.Add(1, 0, task.Cost{Compute: 5, Output: 5}, 50); err != nil {
		t.Fatal(err)
	}
	// Job 2 releases exactly when job 1 finishes (t=10) and its 200MB
	// footprint collapses the 100MB server at that instant.
	if err := s.Add(2, 10, task.Cost{Compute: 1}, 200); err != nil {
		t.Fatal(err)
	}
	events := s.AdvanceTo(10)
	j1 := s.Job(1)
	if j1.State != StateDone {
		t.Fatalf("job 1 state = %v, want done", j1.State)
	}
	if _, ok := j1.Completion(); !ok {
		t.Fatal("job 1 lost its completion date")
	}
	for _, ev := range events {
		if ev.Kind == EventFailed && ev.JobID == 1 {
			t.Fatalf("job 1 reported both done and failed: %+v", events)
		}
	}
	if collapsed, at := s.Collapsed(); !collapsed || at != 10 {
		t.Fatalf("server collapsed=%v at %v, want true at 10", collapsed, at)
	}
	if s.Job(2).State != StateFailed {
		t.Fatalf("job 2 state = %v, want failed", s.Job(2).State)
	}
}
