package grid

import (
	"math"
	"testing"

	"casched/internal/sched"
	"casched/internal/workload"
)

// TestMonitorEWMALags verifies the load-average smoothing recursion
// (the monitor-side state the sim keeps per server): right after a
// burst lands, the reported value undershoots the instantaneous count,
// converging over repeated reports. The agent-side belief arithmetic
// (report + corrections) now lives in internal/agent and is tested
// there.
func TestMonitorEWMALags(t *testing.T) {
	// After one period with instantaneous load L starting from 0, the
	// report is L(1-exp(-period/tau)).
	decay := math.Exp(-30.0 / 60.0)
	ewma := 0.0
	inst := 10.0
	ewma = ewma*decay + inst*(1-decay)
	want := 10 * (1 - decay) // ≈3.93
	if math.Abs(ewma-want) > 1e-9 {
		t.Errorf("ewma after one report = %v, want %v", ewma, want)
	}
	// It converges to the plateau over repeated reports.
	for i := 0; i < 20; i++ {
		ewma = ewma*decay + inst*(1-decay)
	}
	if math.Abs(ewma-10) > 0.01 {
		t.Errorf("ewma did not converge: %v", ewma)
	}
}

// TestMonitorTauDisabled: negative tau reports the instantaneous load.
func TestMonitorTauDisabled(t *testing.T) {
	mt := workload.MustGenerate(workload.Set2(40, 15, 6))
	res, err := Run(Config{
		Servers:    set2Servers(t),
		Scheduler:  sched.NewMCT(),
		Seed:       6,
		MonitorTau: -1, // exact instantaneous reports
	}, mt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report().Completed != 40 {
		t.Errorf("completed %d/40 with exact monitors", res.Report().Completed)
	}
}

// TestBetterInfoHelpsMCT: MCT with instant, exact reports (tau<0,
// short period) must not do worse on sum-flow than MCT with very stale
// reports, on the same workload.
func TestBetterInfoHelpsMCT(t *testing.T) {
	mt := workload.MustGenerate(workload.Set2(200, 18, 6))
	run := func(period, tau float64) float64 {
		res, err := Run(Config{
			Servers:       set2Servers(t),
			Scheduler:     sched.NewMCT(),
			Seed:          6,
			NoiseSigma:    0.03,
			MonitorPeriod: period,
			MonitorTau:    tau,
		}, mt)
		if err != nil {
			t.Fatal(err)
		}
		return res.Report().SumFlow
	}
	fresh := run(5, -1)
	stale := run(120, 600)
	if fresh > stale*1.1 {
		t.Errorf("fresh-info MCT sumflow %.0f much worse than stale-info %.0f", fresh, stale)
	}
}

// TestDeterminismAcrossAllHeuristics: identical configs yield
// bit-identical results for every heuristic.
func TestDeterminismAcrossAllHeuristics(t *testing.T) {
	mt := workload.MustGenerate(workload.Set2(50, 20, 12))
	for _, name := range sched.Names() {
		var completions [2][]float64
		for round := 0; round < 2; round++ {
			s, err := sched.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(Config{
				Servers: set2Servers(t), Scheduler: s, Seed: 12, NoiseSigma: 0.03,
			}, mt)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range res.Tasks {
				completions[round] = append(completions[round], r.Completion)
			}
		}
		for i := range completions[0] {
			if completions[0][i] != completions[1][i] {
				t.Fatalf("%s not deterministic at task %d", name, i)
			}
		}
	}
}
