package grid

import (
	"math"
	"testing"

	"casched/internal/metrics"
	"casched/internal/platform"
	"casched/internal/sched"
	"casched/internal/task"
	"casched/internal/trace"
	"casched/internal/workload"
)

// set1Servers returns the first-set testbed.
func set1Servers(t *testing.T) []ServerConfig {
	t.Helper()
	scs, err := ServersFor(platform.Set1Servers)
	if err != nil {
		t.Fatal(err)
	}
	return scs
}

func set2Servers(t *testing.T) []ServerConfig {
	t.Helper()
	scs, err := ServersFor(platform.Set2Servers)
	if err != nil {
		t.Fatal(err)
	}
	return scs
}

func runSmall(t *testing.T, s sched.Scheduler, n int, d float64, set2 bool) *Result {
	t.Helper()
	var servers []ServerConfig
	var sc workload.Scenario
	if set2 {
		servers = set2Servers(t)
		sc = workload.Set2(n, d, 42)
	} else {
		servers = set1Servers(t)
		sc = workload.Set1(n, d, 42)
	}
	mt := workload.MustGenerate(sc)
	res, err := Run(Config{
		Servers:    servers,
		Scheduler:  s,
		Seed:       1,
		NoiseSigma: 0.03,
	}, mt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunCompletesAllTasksNoMemory(t *testing.T) {
	for _, s := range sched.All() {
		res := runSmall(t, s, 60, 35, true)
		rep := res.Report()
		if rep.Completed != 60 {
			t.Errorf("%s completed %d/60", s.Name(), rep.Completed)
		}
		if rep.Makespan <= 0 || rep.SumFlow <= 0 {
			t.Errorf("%s degenerate metrics: %+v", s.Name(), rep)
		}
		for _, r := range res.Tasks {
			if !r.Completed {
				continue
			}
			if r.Completion < r.Arrival {
				t.Errorf("%s task %d completes before arrival", s.Name(), r.ID)
			}
			if r.Server == "" {
				t.Errorf("%s task %d has no server", s.Name(), r.ID)
			}
			// A task can never beat its unloaded duration by more than
			// the noise margin.
			if r.Flow() < r.UnloadedDuration*0.9-1e-6 {
				t.Errorf("%s task %d flow %.2f below unloaded %.2f",
					s.Name(), r.ID, r.Flow(), r.UnloadedDuration)
			}
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a := runSmall(t, sched.NewMSF(), 40, 20, true)
	b := runSmall(t, sched.NewMSF(), 40, 20, true)
	for i := range a.Tasks {
		if a.Tasks[i].Completion != b.Tasks[i].Completion ||
			a.Tasks[i].Server != b.Tasks[i].Server {
			t.Fatalf("run not deterministic at task %d", i)
		}
	}
}

func TestHTMPredictionsRecorded(t *testing.T) {
	res := runSmall(t, sched.NewHMCT(), 30, 35, true)
	if len(res.Predicted) == 0 {
		t.Fatal("no HTM predictions recorded")
	}
	// With 3% noise, predictions must track actual completions within
	// a loose bound for the bulk of tasks (Table 1 regime: a few %).
	var errs []float64
	for _, r := range res.Tasks {
		p, ok := res.Predicted[r.ID]
		if !ok || !r.Completed {
			continue
		}
		errs = append(errs, 100*math.Abs(r.Completion-p)/math.Max(r.Completion, 1))
	}
	if len(errs) < 20 {
		t.Fatalf("too few comparable predictions: %d", len(errs))
	}
	mean := 0.0
	for _, e := range errs {
		mean += e
	}
	mean /= float64(len(errs))
	if mean > 15 {
		t.Errorf("mean prediction error %.1f%% too large", mean)
	}
}

func TestMCTHasNoPredictions(t *testing.T) {
	res := runSmall(t, sched.NewMCT(), 20, 35, true)
	if res.Predicted != nil {
		t.Error("MCT run should not carry HTM predictions")
	}
}

func TestZeroNoiseMatchesHTMExactly(t *testing.T) {
	mt := workload.MustGenerate(workload.Set2(30, 25, 9))
	res, err := Run(Config{
		Servers:   set2Servers(t),
		Scheduler: sched.NewMSF(),
		Seed:      3,
	}, mt) // NoiseSigma 0
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Tasks {
		p, ok := res.FinalPredicted[r.ID]
		if !ok {
			t.Fatalf("no final prediction for task %d", r.ID)
		}
		// The end-of-run simulated date accounts for all later
		// arrivals; with zero noise it must match execution exactly.
		if math.Abs(p-r.Completion) > 1e-6 {
			t.Errorf("task %d: simulated %.6f actual %.6f", r.ID, p, r.Completion)
		}
		// The placement-time prediction, by contrast, cannot exceed the
		// actual completion by much but may undershoot (later arrivals
		// delay the task).
		if ap, ok := res.Predicted[r.ID]; ok && ap > r.Completion+1e-6 {
			t.Errorf("task %d: placement prediction %.6f after actual %.6f",
				r.ID, ap, r.Completion)
		}
	}
}

// TestMemoryCollapseAndFaultTolerance drives the set-1 D=20 phenomenon:
// HMCT overloads the fast servers until one collapses; without fault
// tolerance tasks are lost, with it they are resubmitted.
func TestMemoryCollapseAndFaultTolerance(t *testing.T) {
	mt := workload.MustGenerate(workload.Set1(500, 20, 5))

	bare, err := Run(Config{
		Servers:     set1Servers(t),
		Scheduler:   sched.NewHMCT(),
		Seed:        1,
		NoiseSigma:  0.03,
		MemoryModel: true,
	}, mt)
	if err != nil {
		t.Fatal(err)
	}
	if len(bare.Collapses) == 0 {
		t.Fatal("expected at least one collapse under HMCT at high rate")
	}
	rep := bare.Report()
	if rep.Completed == 500 {
		t.Error("bare HMCT should lose tasks to collapse")
	}
	if len(bare.FailedTasks)+rep.Completed != 500 {
		t.Error("failed + completed must equal submitted")
	}

	ft, err := Run(Config{
		Servers:        set1Servers(t),
		Scheduler:      sched.NewMCT(),
		Seed:           1,
		NoiseSigma:     0.03,
		MemoryModel:    true,
		FaultTolerance: true,
	}, mt)
	if err != nil {
		t.Fatal(err)
	}
	ftRep := ft.Report()
	if ftRep.Completed <= rep.Completed {
		t.Errorf("fault-tolerant MCT completed %d, bare HMCT %d: expected recovery",
			ftRep.Completed, rep.Completed)
	}
	if ftRep.Resubmissions == 0 && len(ft.Collapses) > 0 {
		t.Error("collapses occurred but nothing was resubmitted")
	}
}

// TestMPAvoidsCollapse: MP spreads load, so at the same rate the
// servers survive and every task completes (the paper's Table 6 MP/MSF
// column).
func TestMPAvoidsCollapse(t *testing.T) {
	mt := workload.MustGenerate(workload.Set1(500, 20, 5))
	for _, s := range []sched.Scheduler{sched.NewMP(), sched.NewMSF()} {
		res, err := Run(Config{
			Servers:     set1Servers(t),
			Scheduler:   s,
			Seed:        1,
			NoiseSigma:  0.03,
			MemoryModel: true,
		}, mt)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Report().Completed; got != 500 {
			t.Errorf("%s completed %d/500 (collapses: %v)", s.Name(), got, res.Collapses)
		}
	}
}

func TestTraceLogPopulated(t *testing.T) {
	var log trace.Log
	mt := workload.MustGenerate(workload.Set2(20, 30, 2))
	if _, err := Run(Config{
		Servers:   set2Servers(t),
		Scheduler: sched.NewHMCT(),
		Seed:      1,
		Log:       &log,
	}, mt); err != nil {
		t.Fatal(err)
	}
	if n := len(log.Filter("arrival")); n != 20 {
		t.Errorf("arrival records = %d, want 20", n)
	}
	if n := len(log.Filter("schedule")); n != 20 {
		t.Errorf("schedule records = %d, want 20", n)
	}
	if n := len(log.Filter("done")); n != 20 {
		t.Errorf("done records = %d, want 20", n)
	}
}

func TestConfigValidation(t *testing.T) {
	mt := workload.MustGenerate(workload.Set2(5, 30, 2))
	if _, err := Run(Config{Scheduler: sched.NewMCT()}, mt); err == nil {
		t.Error("no servers accepted")
	}
	if _, err := Run(Config{Servers: []ServerConfig{{Name: "a"}}}, mt); err == nil {
		t.Error("no scheduler accepted")
	}
	dup := Config{
		Servers:   []ServerConfig{{Name: "a"}, {Name: "a"}},
		Scheduler: sched.NewMCT(),
	}
	if _, err := Run(dup, mt); err == nil {
		t.Error("duplicate servers accepted")
	}
	bad := &task.Metatask{Name: "bad", Tasks: []*task.Task{{ID: 5}}}
	if _, err := Run(Config{
		Servers:   []ServerConfig{{Name: "a"}},
		Scheduler: sched.NewMCT(),
	}, bad); err == nil {
		t.Error("invalid metatask accepted")
	}
}

func TestServersForUnknown(t *testing.T) {
	if _, err := ServersFor([]string{"nosuch"}); err == nil {
		t.Error("unknown machine accepted")
	}
	scs, err := ServersFor(platform.Set1Servers)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scs {
		if sc.RAMMB <= 0 || sc.SwapMB <= 0 {
			t.Errorf("server %s missing memory capacities: %+v", sc.Name, sc)
		}
	}
}

// TestHTMSyncOption exercises the synchronization ablation end to end.
func TestHTMSyncOption(t *testing.T) {
	mt := workload.MustGenerate(workload.Set2(40, 20, 8))
	open, err := Run(Config{
		Servers: set2Servers(t), Scheduler: sched.NewMSF(), Seed: 2, NoiseSigma: 0.05,
	}, mt)
	if err != nil {
		t.Fatal(err)
	}
	synced, err := Run(Config{
		Servers: set2Servers(t), Scheduler: sched.NewMSF(), Seed: 2, NoiseSigma: 0.05,
		HTMSync: true,
	}, mt)
	if err != nil {
		t.Fatal(err)
	}
	if open.Report().Completed != 40 || synced.Report().Completed != 40 {
		t.Fatal("both variants must complete everything")
	}
}

// TestMSFBeatsMCTOnSumFlow asserts the paper's headline result on a
// moderate simulated workload: MSF's sum-flow is no worse than MCT's.
func TestMSFBeatsMCTOnSumFlow(t *testing.T) {
	mct := runSmall(t, sched.NewMCT(), 120, 20, true)
	msf := runSmall(t, sched.NewMSF(), 120, 20, true)
	sfMCT := mct.Report().SumFlow
	sfMSF := msf.Report().SumFlow
	if sfMSF > sfMCT*1.02 {
		t.Errorf("MSF sum-flow %.0f exceeds MCT %.0f", sfMSF, sfMCT)
	}
	sooner, err := metrics.FinishSooner(msf.Tasks, mct.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	if sooner < 60 {
		t.Errorf("only %d/120 MSF tasks finish sooner than MCT", sooner)
	}
}
