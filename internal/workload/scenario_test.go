package workload

// The scenario-harness workload dimensions: the sinusoidal diurnal
// inhomogeneous-Poisson process (thinning) and the heavy-tailed
// service-time scalers, plus the bit-compat guarantee that scenarios
// predating both dimensions generate unchanged.

import (
	"math"
	"testing"
)

// TestDiurnalMeanPreserved pins the thinning construction: the
// cycle-average rate is λ0, so over many day/night cycles the mean
// inter-arrival time converges to D.
func TestDiurnalMeanPreserved(t *testing.T) {
	const d = 10.0
	sc := Diurnal(40000, d, 11)
	mt := MustGenerate(sc)
	last := mt.Tasks[len(mt.Tasks)-1].Arrival
	mean := last / float64(len(mt.Tasks)-1)
	if math.Abs(mean-d)/d > 0.03 {
		t.Errorf("diurnal long-run mean inter-arrival = %.3f, want ≈%.1f", mean, d)
	}
}

// TestDiurnalDayNightContrast pins the point of the process: binning
// arrivals by phase-of-day, the peak half-cycle ("day": sin > 0) must
// carry substantially more arrivals than the trough half ("night") —
// approaching (1+2A/π)/(1−2A/π) for amplitude A.
func TestDiurnalDayNightContrast(t *testing.T) {
	sc := Diurnal(40000, 10, 11)
	sc.DiurnalAmplitude = 0.8
	mt := MustGenerate(sc)
	period := defaultDiurnalPeriodD * sc.MeanInterarrival
	var day, night int
	for _, tk := range mt.Tasks {
		if math.Sin(2*math.Pi*tk.Arrival/period) > 0 {
			day++
		} else {
			night++
		}
	}
	ratio := float64(day) / float64(night)
	// E[day rate]/E[night rate] = (1+2A/π)/(1−2A/π) ≈ 3.09 at A=0.8.
	want := (1 + 2*0.8/math.Pi) / (1 - 2*0.8/math.Pi)
	if ratio < 0.85*want || ratio > 1.15*want {
		t.Errorf("day/night arrival ratio = %.2f, want ≈%.2f", ratio, want)
	}
}

// TestHeavyTailUnitMean pins the unit-mean construction of both
// scalers: across many tasks the mean compute scale factor is 1, so
// the offered load matches the nominal scenario.
func TestHeavyTailUnitMean(t *testing.T) {
	for _, dist := range []ServiceProcess{ServicePareto, ServiceLognormal} {
		sc := Set2(30000, 10, 7)
		sc.Service = dist
		mt := MustGenerate(sc)
		nominal := Set2(30000, 10, 7)
		base := MustGenerate(nominal)
		var got, want float64
		for i, tk := range mt.Tasks {
			for s, c := range tk.Spec.CostOn {
				got += c.Compute
				want += base.Tasks[i].Spec.CostOn[s].Compute
				break
			}
		}
		ratio := got / want
		// Pareto α=1.5 has infinite variance: the sample mean converges
		// slowly, so the tolerance is loose (the cap also trims ~2% of
		// the mass). Lognormal converges much faster.
		tol := 0.15
		if dist == ServiceLognormal {
			tol = 0.05
		}
		if math.Abs(ratio-1) > tol {
			t.Errorf("%v mean compute scale = %.3f, want ≈1", dist, ratio)
		}
	}
}

// TestHeavyTailHasElephants pins the tail itself: the largest task is
// far above the mean, where the nominal mix is bounded by its largest
// type.
func TestHeavyTailHasElephants(t *testing.T) {
	sc := HeavyTail(Set2(5000, 10, 7), ServicePareto, 1.5)
	mt := MustGenerate(sc)
	var maxF, sum float64
	for _, tk := range mt.Tasks {
		for _, c := range tk.Spec.CostOn {
			sum += c.Compute
			if c.Compute > maxF {
				maxF = c.Compute
			}
			break
		}
	}
	mean := sum / float64(len(mt.Tasks))
	if maxF < 10*mean {
		t.Errorf("Pareto max/mean compute = %.1f, want ≥ 10 (no tail generated)", maxF/mean)
	}
}

// TestHeavyTailTransfersNominal pins that the tail lives in the
// compute phase only: input/output transfer costs stay at the drawn
// type's nominal values.
func TestHeavyTailTransfersNominal(t *testing.T) {
	sc := HeavyTail(Set2(200, 10, 7), ServiceLognormal, 0)
	mt := MustGenerate(sc)
	base := MustGenerate(Set2(200, 10, 7))
	for i, tk := range mt.Tasks {
		for s, c := range tk.Spec.CostOn {
			bc := base.Tasks[i].Spec.CostOn[s]
			if c.Input != bc.Input || c.Output != bc.Output {
				t.Fatalf("task %d server %s transfers scaled: got %v/%v want %v/%v",
					i, s, c.Input, c.Output, bc.Input, bc.Output)
			}
		}
	}
}

// TestHeavyTailCapBounds pins TailCap: no scale factor exceeds the cap
// times the type's nominal compute.
func TestHeavyTailCapBounds(t *testing.T) {
	sc := HeavyTail(Set2(20000, 10, 7), ServicePareto, 1.1)
	sc.TailCap = 5
	mt := MustGenerate(sc)
	base := MustGenerate(Set2(20000, 10, 7))
	for i, tk := range mt.Tasks {
		for s, c := range tk.Spec.CostOn {
			if c.Compute > 5*base.Tasks[i].Spec.CostOn[s].Compute*1.0000001 {
				t.Fatalf("task %d scale factor %.2f exceeds cap 5",
					i, c.Compute/base.Tasks[i].Spec.CostOn[s].Compute)
			}
			break
		}
	}
}

// TestNominalScenariosUnchanged pins the decorrelated-stream contract
// extended to the service dimension: scenarios without diurnal or
// heavy-tail settings must generate bit-identically to before the
// dimensions existed (same arrivals, same spec pointers).
func TestNominalScenariosUnchanged(t *testing.T) {
	a := MustGenerate(Set2(300, 20, 5))
	b := MustGenerate(Set2(300, 20, 5))
	for i := range a.Tasks {
		if a.Tasks[i].Arrival != b.Tasks[i].Arrival ||
			a.Tasks[i].Spec.Variant != b.Tasks[i].Spec.Variant {
			t.Fatalf("task %d differs across identical nominal generations", i)
		}
	}
	// And a heavy-tail scenario must keep the same arrivals and task
	// types as its nominal twin (the service stream is decorrelated).
	ht := MustGenerate(HeavyTail(Set2(300, 20, 5), ServicePareto, 1.5))
	for i := range a.Tasks {
		if a.Tasks[i].Arrival != ht.Tasks[i].Arrival {
			t.Fatalf("task %d arrival differs under heavy-tail service", i)
		}
		if a.Tasks[i].Spec.Variant != ht.Tasks[i].Spec.Variant {
			t.Fatalf("task %d type differs under heavy-tail service", i)
		}
	}
}

// TestValidateDiurnalAndService covers the new validation arms.
func TestValidateDiurnalAndService(t *testing.T) {
	sc := Diurnal(10, 10, 1)
	sc.DiurnalAmplitude = 1.5
	if _, err := Generate(sc); err == nil {
		t.Error("amplitude > 1 accepted")
	}
	sc2 := HeavyTail(Set2(10, 10, 1), ServicePareto, 0.9)
	if _, err := Generate(sc2); err == nil {
		t.Error("Pareto alpha <= 1 accepted")
	}
	sc3 := HeavyTail(Set2(10, 10, 1), ServiceLognormal, 0)
	sc3.TailSigma = -1
	if _, err := Generate(sc3); err == nil {
		t.Error("negative lognormal sigma accepted")
	}
}
