package cluster

import (
	"math"
	"sort"

	"casched/internal/agent"
	"casched/internal/stats"
)

// This file is the routing arithmetic shared by the sharded Cluster
// and the federated dispatcher (internal/fed): the cross-partition
// candidate comparison and the power-of-two-choices burst ordering.
// The federation's fresh-summary decision parity depends on both
// layers computing exactly the same thing, so the logic lives here
// once and both import it — reading live core state on the cluster
// side and gossip summaries on the federation side.

// backlogTieFraction is the relative margin within which two
// partitions' projected backlogs count as equal for batch routing,
// deferring to the balanced in-flight signal (see TwoChoicesOrder).
// The band is wide: the backlog is a projection over an entire
// partition, and overriding balance pays off only on qualitative gaps
// (a drained partition vs a saturated one), not on comparable queues.
const backlogTieFraction = 0.5

// ClampIndex maps an arbitrary ShardPolicy.Assign answer into
// [0, n) — the defensive clamp both dispatch layers apply before
// indexing their partition tables.
func ClampIndex(i, n int) int {
	if i < 0 || i >= n {
		i %= n
		if i < 0 {
			i += n
		}
	}
	return i
}

// BetterCandidate orders cross-partition winners: primary objective,
// then the heuristic's tie-break objective; remaining ties keep the
// earlier partition (callers iterate in index order, so stability
// falls out of strict comparison).
func BetterCandidate(a, b agent.Candidate) bool {
	if a.Score < b.Score-tieEps {
		return true
	}
	if a.Score > b.Score+tieEps {
		return false
	}
	return a.Tie < b.Tie-tieEps
}

// TwoChoicesOrder returns the partition indexes of idx in
// routing-preference order for one burst arriving at date at. The
// head is the power-of-two-choices winner: two distinct non-empty
// partitions — the cheap-signal leader (least in-flight per server,
// the classic hierarchical pick) and one sampled uniformly from the
// rest — compared on the HTM-backed score: the partition's projected
// backlog at the burst's arrival, max(0, minReady − at) (the arrival
// anchor makes drain instants from independently advancing partition
// clocks comparable). The smaller backlog wins; backlogs within
// backlogTieFraction of each other are a tie decided by the balanced
// in-flight signal — the backlog is a projection, and preferring a
// marginally sooner-draining partition over the balanced choice
// concentrates consecutive bursts on one partition's still-full
// traces. Biasing one choice to the cheap leader keeps the load
// spread of the pure least-loaded router (only two partitions are
// ever scored, so routing stays O(partitions) with O(1) reads per
// scored partition), while the uniform second choice plus the drain
// comparison corrects the in-flight signal where it misjudges actual
// work — many short tasks vs few long ones — and avoids herding when
// counts are stale. Partitions without a drain signal (monitor-only
// heuristics: minReady returns !ok) score by the in-flight signal
// directly. The remaining partitions follow ranked by the cheap
// signal, as eligibility fallbacks for requests the winner cannot
// solve.
//
// count, inFlight and minReady are read at most once per index.
func TwoChoicesOrder(idx []int, count func(int) int, inFlight func(int) int,
	minReady func(int) (float64, bool), at float64, rng *stats.RNG) []int {
	cheap := make(map[int]float64, len(idx))
	order := make([]int, 0, len(idx))
	var nonEmpty []int
	for _, i := range idx {
		order = append(order, i)
		if c := count(i); c > 0 {
			cheap[i] = float64(inFlight(i)) / float64(c)
			nonEmpty = append(nonEmpty, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return cheap[order[a]] < cheap[order[b]] })
	if len(nonEmpty) < 2 {
		return order
	}

	// Two choices: the cheap-signal leader — the first non-empty
	// partition of the freshly sorted ranking — and a uniform sample
	// from the other non-empty partitions; score just those.
	a := nonEmpty[0]
	for _, i := range order {
		if _, ok := cheap[i]; ok {
			a = i
			break
		}
	}
	b := a
	for b == a {
		b = nonEmpty[rng.Intn(len(nonEmpty))]
	}
	score := func(i int) float64 {
		if ready, ok := minReady(i); ok {
			return math.Max(0, ready-at)
		}
		return cheap[i]
	}
	sa, sb := score(a), score(b)
	// The sample overrides the leader only on a clear backlog margin;
	// within the tie band the leader stands — a is the cheap-ranking
	// minimum, so ties always resolve to it.
	winner := a
	if sb < sa && math.Abs(sa-sb) > backlogTieFraction*math.Max(sa, sb)+tieEps {
		winner = b
	}

	// Promote only the winner; the loser and the rest keep their
	// cheap-score ranking, so spill-over from requests the winner
	// cannot solve still goes to the next-best eligible partition
	// rather than to whatever partition the sample happened to draw.
	promoted := make([]int, 0, len(order))
	promoted = append(promoted, winner)
	for _, i := range order {
		if i != winner {
			promoted = append(promoted, i)
		}
	}
	return promoted
}
