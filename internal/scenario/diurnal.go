// The diurnal family: day/night traffic as a genuine inhomogeneous
// Poisson process (sinusoidal rate, sampled by thinning). Two
// measurements per shape: the sum-flow premium the rate swing costs
// against homogeneous Poisson at the same long-run mean — which the
// HTM-routed testbed absorbs almost entirely — and, layered with a
// multi-tenant saturating mix, whether the weighted fair-share
// arbiter holds the configured shares through the peaks.

package scenario

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"casched/internal/agent"
	"casched/internal/task"
	"casched/internal/workload"
)

// DiurnalConfig parameterizes the diurnal family. Zero values select
// the committed defaults (benchmarks/scenario-diurnal.txt).
type DiurnalConfig struct {
	// N is the metatask size (default 360).
	N int
	// D is the long-run mean inter-arrival in seconds (default 6).
	D float64
	// Seed drives generation and tie-breaking (default 11).
	Seed uint64
	// Heuristic is the objective (default HMCT).
	Heuristic string
	// Replicas scales the Table 2 second-set testbed (default 2).
	Replicas int
	// Amplitude is the diurnal rate swing A (default 0.8).
	Amplitude float64
	// Shares maps tenants to fair-share weights for the saturation
	// phase (default gold=4, silver=2, bronze=1).
	Shares map[string]float64
	// Shapes are the deployment shapes driven (default core and
	// cluster).
	Shapes []Shape
}

func (c *DiurnalConfig) defaults() {
	if c.N == 0 {
		c.N = 360
	}
	if c.D == 0 {
		c.D = 6
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	if c.Heuristic == "" {
		c.Heuristic = "HMCT"
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.Amplitude == 0 {
		c.Amplitude = 0.8
	}
	if c.Shares == nil {
		c.Shares = map[string]float64{"gold": 4, "silver": 2, "bronze": 1}
	}
	if len(c.Shapes) == 0 {
		c.Shapes = []Shape{ShapeCore, ShapeCluster}
	}
}

// DiurnalShapeResult is one shape's load measurement.
type DiurnalShapeResult struct {
	Shape Shape
	// PoissonSumFlow is homogeneous Poisson at the same mean rate;
	// DiurnalSumFlow the sinusoidal process. Premium is their ratio —
	// what the day/night swing costs at unchanged offered load.
	PoissonSumFlow, DiurnalSumFlow, Premium float64
	// MaxShareError is the largest |served − want| share deviation
	// across tenants under the saturating diurnal mix, and
	// SaturatedPrefix the decisions measured (every tenant backlogged).
	MaxShareError   float64
	SaturatedPrefix int
}

// DiurnalResult holds the family's measurements.
type DiurnalResult struct {
	Config DiurnalConfig

	// DayNightRatio is the measured day-half/night-half arrival split
	// on a large sample of the process; TheoreticalRatio its
	// closed-form value (1+2A/π)/(1−2A/π).
	DayNightRatio, TheoreticalRatio float64
	// SampleN is the sample the ratio is measured on.
	SampleN int
	// Rows are the per-shape measurements.
	Rows []DiurnalShapeResult
}

// dayNightRatio bins arrivals by phase-of-day over the sinusoid's
// period: the rising half-cycle (sin > 0, "day") against the rest.
func dayNightRatio(mt *task.Metatask, period float64) float64 {
	var day, night int
	for _, t := range mt.Tasks {
		if math.Sin(2*math.Pi*t.Arrival/period) > 0 {
			day++
		} else {
			night++
		}
	}
	if night == 0 {
		return math.Inf(1)
	}
	return float64(day) / float64(night)
}

// Diurnal runs the family.
func Diurnal(cfg DiurnalConfig) (*DiurnalResult, error) {
	cfg.defaults()
	res := &DiurnalResult{Config: cfg}
	res.TheoreticalRatio = (1 + 2*cfg.Amplitude/math.Pi) / (1 - 2*cfg.Amplitude/math.Pi)

	// The day/night split of the process itself, on a sample large
	// enough for the law of large numbers to hold.
	res.SampleN = 40000
	sample := workload.Diurnal(res.SampleN, cfg.D, cfg.Seed)
	sample.DiurnalAmplitude = cfg.Amplitude
	smt, err := workload.Generate(sample)
	if err != nil {
		return nil, err
	}
	res.DayNightRatio = dayNightRatio(smt, 40*cfg.D)

	// The study workloads: the same N, D and seed under both arrival
	// processes, so the only difference is when the work shows up.
	diurnalSc := workload.Diurnal(cfg.N, cfg.D, cfg.Seed)
	diurnalSc.DiurnalAmplitude = cfg.Amplitude
	dmt, err := workload.Generate(diurnalSc)
	if err != nil {
		return nil, err
	}
	pmt, err := workload.Generate(workload.Set2(cfg.N, cfg.D, cfg.Seed))
	if err != nil {
		return nil, err
	}
	names, rewrite := testbed(cfg.Replicas)
	for _, t := range dmt.Tasks {
		t.Spec = rewrite(t.Spec)
	}
	for _, t := range pmt.Tasks {
		t.Spec = rewrite(t.Spec)
	}

	// The fairness workload: the same diurnal process carrying a
	// uniform multi-tenant mix, submitted as one saturating batch so
	// arbitration — not arrival order — decides who is served.
	mix := make(map[string]float64, len(cfg.Shares))
	for name := range cfg.Shares {
		mix[name] = 1
	}
	fairSc := workload.MultiTenant(diurnalSc, mix, 0)
	fairMt, err := workload.Generate(fairSc)
	if err != nil {
		return nil, err
	}
	for _, t := range fairMt.Tasks {
		t.Spec = rewrite(t.Spec)
	}

	for _, shape := range cfg.Shapes {
		row := DiurnalShapeResult{Shape: shape}
		ecfg := engineConfig{heuristic: cfg.Heuristic, seed: cfg.Seed, width: 4}

		peng, err := newEngine(shape, ecfg, names)
		if err != nil {
			return nil, err
		}
		if err := runStream(peng, requests(pmt)); err != nil {
			return nil, err
		}
		row.PoissonSumFlow = sumFlowOf(peng, pmt)

		deng, err := newEngine(shape, ecfg, names)
		if err != nil {
			return nil, err
		}
		if err := runStream(deng, requests(dmt)); err != nil {
			return nil, err
		}
		row.DiurnalSumFlow = sumFlowOf(deng, dmt)
		if row.PoissonSumFlow > 0 {
			row.Premium = row.DiurnalSumFlow / row.PoissonSumFlow
		}

		maxErr, prefix, err := fairShares(shape, cfg, names, fairMt)
		if err != nil {
			return nil, err
		}
		row.MaxShareError, row.SaturatedPrefix = maxErr, prefix
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// fairShares saturates the shape with one multi-tenant batch of the
// diurnal workload and measures each tenant's share of the served
// work over the prefix during which every tenant still had backlog
// (the regime the weighted fair clock governs).
func fairShares(shape Shape, cfg DiurnalConfig, names []string, mt *task.Metatask) (maxErr float64, prefix int, err error) {
	eng, err := newEngine(shape, engineConfig{
		heuristic:    "MCT", // O(1) decisions: the phase isolates intake ordering
		seed:         cfg.Seed,
		width:        4,
		tenantShares: cfg.Shares,
	}, names)
	if err != nil {
		return 0, 0, err
	}
	type served struct {
		tenant string
		work   float64
	}
	var order []served
	byID := make(map[int]*task.Task, mt.Len())
	for _, t := range mt.Tasks {
		byID[t.ID] = t
	}
	cancel := eng.Subscribe(func(ev agent.Event) {
		if ev.Kind != agent.EventDecision {
			return
		}
		t := byID[ev.JobID]
		cost, _ := t.Spec.Cost(ev.Server)
		order = append(order, served{tenant: t.Tenant, work: cost.Total()})
	})
	defer cancel()

	at := mt.Tasks[mt.Len()-1].Arrival
	reqs := make([]agent.Request, mt.Len())
	backlog := make(map[string]int)
	for i, t := range mt.Tasks {
		reqs[i] = agent.Request{JobID: t.ID, TaskID: t.ID, Spec: t.Spec,
			Arrival: at, Submitted: t.Arrival, Tenant: t.Tenant}
		backlog[t.Tenant]++
	}
	if _, err := eng.SubmitBatch(reqs); err != nil {
		return 0, 0, fmt.Errorf("scenario: fairness batch (%s): %w", shape, err)
	}

	workBy := make(map[string]float64)
	var total float64
	for _, sv := range order {
		backlog[sv.tenant]--
		workBy[sv.tenant] += sv.work
		total += sv.work
		prefix++
		if backlog[sv.tenant] == 0 {
			break
		}
	}
	if total <= 0 {
		return 0, 0, fmt.Errorf("scenario: fairness phase served no work (%s)", shape)
	}
	var weightSum float64
	for _, w := range cfg.Shares {
		weightSum += w
	}
	for name, w := range cfg.Shares {
		want := w / weightSum
		got := workBy[name] / total
		if dev := math.Abs(got - want); dev > maxErr {
			maxErr = dev
		}
	}
	return maxErr, prefix, nil
}

// FormatDiurnal renders the family as a small report.
func FormatDiurnal(r *DiurnalResult) string {
	var b strings.Builder
	c := r.Config
	var tenants []string
	for name := range c.Shares {
		tenants = append(tenants, fmt.Sprintf("%s=%g", name, c.Shares[name]))
	}
	sort.Strings(tenants)
	fmt.Fprintf(&b, "scenario: diurnal inhomogeneous Poisson (thinning) — %s, set 2, N=%d D=%gs A=%g period=%g·D, %d servers, seed %d\n",
		c.Heuristic, c.N, c.D, c.Amplitude, 40.0, 4*c.Replicas, c.Seed)
	fmt.Fprintf(&b, "process: day/night arrival ratio %.2f on %d arrivals (closed form %.2f)\n",
		r.DayNightRatio, r.SampleN, r.TheoreticalRatio)
	fmt.Fprintf(&b, "\n  %-12s %12s %12s %9s %11s %10s\n",
		"shape", "poisson", "diurnal", "premium", "share-err", "saturated")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %12.0f %12.0f %9.3f %10.1fpp %10d\n",
			string(row.Shape), row.PoissonSumFlow, row.DiurnalSumFlow, row.Premium,
			100*row.MaxShareError, row.SaturatedPrefix)
	}
	fmt.Fprintf(&b, "\nclaims: the generated process matches the closed-form day/night contrast; the\n")
	fmt.Fprintf(&b, "schedulers absorb the ~3:1 swing at unchanged offered load (premium ≈ 1); and\n")
	fmt.Fprintf(&b, "the weighted fair clock (%s) holds shares through saturation.\n",
		strings.Join(tenants, ","))
	return b.String()
}
