package ha

// Election safety: two dispatchers must never both believe they hold
// the same term. The property test drives a cluster of electors over
// a lossy in-memory transport with a fake clock — random tick order,
// dropped messages, a partitioned-then-rejoining deposed leader — and
// records every leadership claim; any term claimed by two distinct
// nodes fails the run.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"casched/internal/stats"
)

// fakeClock is a shared, manually advanced clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// lossyNet is a synchronous in-memory transport with per-run seeded
// message drops and node partitions.
type lossyNet struct {
	mu       sync.Mutex
	nodes    map[string]*Elector
	rng      *stats.RNG
	dropProb float64
	cut      map[string]bool // partitioned node: drops all its traffic
}

func newLossyNet(seed uint64) *lossyNet {
	return &lossyNet{
		nodes: make(map[string]*Elector),
		rng:   stats.NewRNG(seed),
		cut:   make(map[string]bool),
	}
}

// port binds one sender to the net; from identifies the calling node
// so partitions cut both directions of its traffic.
type port struct {
	net  *lossyNet
	from string
}

func (n *lossyNet) drops(from, to string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cut[from] || n.cut[to] {
		return true
	}
	return n.dropProb > 0 && n.rng.Float64() < n.dropProb
}

func (n *lossyNet) target(id string) *Elector {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.nodes[id]
}

var errDropped = fmt.Errorf("lossy net: dropped")

func (p port) RequestVote(peerID, _ string, args VoteArgs) (VoteReply, error) {
	if p.net.drops(p.from, peerID) {
		return VoteReply{}, errDropped
	}
	t := p.net.target(peerID)
	if t == nil {
		return VoteReply{}, errDropped
	}
	return t.HandleVote(args), nil
}

func (p port) Heartbeat(peerID, _ string, args HeartbeatArgs) (HeartbeatReply, error) {
	if p.net.drops(p.from, peerID) {
		return HeartbeatReply{}, errDropped
	}
	t := p.net.target(peerID)
	if t == nil {
		return HeartbeatReply{}, errDropped
	}
	return t.HandleHeartbeat(args), nil
}

// claims records every OnLeader firing, keyed by term.
type claims struct {
	mu     sync.Mutex
	byTerm map[uint64][]string
}

func newClaims() *claims { return &claims{byTerm: make(map[uint64][]string)} }

func (c *claims) note(id string, term uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.byTerm[term] = append(c.byTerm[term], id)
}

// check fails the test if any term was claimed by two distinct nodes.
// Idempotent re-claims by the same node are tolerated.
func (c *claims) check(t *testing.T) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	for term, ids := range c.byTerm {
		for _, id := range ids[1:] {
			if id != ids[0] {
				t.Fatalf("term %d claimed by both %s and %s (all: %v)", term, ids[0], id, ids)
			}
		}
	}
}

// leaderCount returns how many live nodes currently believe they lead.
func leaderCount(nodes map[string]*Elector, dead map[string]bool) (int, string) {
	n, id := 0, ""
	for nid, e := range nodes {
		if dead[nid] {
			continue
		}
		if _, role, _, _ := e.Snapshot(); role == RoleLeader {
			n++
			id = nid
		}
	}
	return n, id
}

// buildCluster wires n electors over the net with full peer maps.
func buildCluster(n int, net *lossyNet, clock *fakeClock, cl *claims, standbyAfter int) map[string]*Elector {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("d%d", i)
	}
	nodes := make(map[string]*Elector, n)
	for i, id := range ids {
		peers := map[string]string{}
		for _, other := range ids {
			if other != id {
				peers[other] = other
			}
		}
		id := id
		nodes[id] = New(Config{
			ID:        id,
			Addr:      "addr-" + id,
			Peers:     peers,
			Lease:     400 * time.Millisecond,
			Heartbeat: 100 * time.Millisecond,
			Standby:   i >= standbyAfter,
			Seed:      uint64(7 + i),
			Now:       clock.Now,
			Transport: port{net: net, from: id},
			OnLeader:  func(term uint64) { cl.note(id, term) },
		})
	}
	net.mu.Lock()
	net.nodes = nodes
	net.mu.Unlock()
	return nodes
}

// step advances the fake clock and ticks every live node in a seeded
// random order.
func step(nodes map[string]*Elector, dead map[string]bool, clock *fakeClock, rng *stats.RNG, d time.Duration) {
	clock.Advance(d)
	ids := make([]string, 0, len(nodes))
	for id := range nodes {
		if !dead[id] {
			ids = append(ids, id)
		}
	}
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids {
		nodes[id].Tick()
	}
}

func TestElectionSafetyUnderLoss(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			clock := newFakeClock()
			net := newLossyNet(seed)
			net.dropProb = 0.3
			cl := newClaims()
			nodes := buildCluster(3, net, clock, cl, 1)
			dead := map[string]bool{}
			rng := stats.NewRNG(seed * 1315423911)

			// Phase 1: lossy steady state — elections happen and
			// re-happen under 30% drops; safety must hold throughout.
			for i := 0; i < 400; i++ {
				step(nodes, dead, clock, rng, time.Duration(10+rng.Intn(70))*time.Millisecond)
				cl.check(t)
			}

			// Phase 2: partition whoever leads (it keeps ticking,
			// believing what it will); the rest must elect a
			// successor in a higher term, never the same one.
			if n, id := leaderCount(nodes, dead); n == 1 {
				net.mu.Lock()
				net.cut[id] = true
				net.mu.Unlock()
				for i := 0; i < 200; i++ {
					step(nodes, dead, clock, rng, time.Duration(10+rng.Intn(70))*time.Millisecond)
					cl.check(t)
				}
				// Phase 3: heal — the deposed leader rejoins, learns
				// the higher term from heartbeats, and steps down.
				net.mu.Lock()
				delete(net.cut, id)
				net.dropProb = 0
				net.mu.Unlock()
				for i := 0; i < 200; i++ {
					step(nodes, dead, clock, rng, 50*time.Millisecond)
					cl.check(t)
				}
				if n, _ := leaderCount(nodes, dead); n != 1 {
					t.Fatalf("after heal: %d leaders, want exactly 1", n)
				}
			}
			cl.check(t)
		})
	}
}

// A designated primary (the one non-standby node) must win the first
// election; standbys defer their first campaign.
func TestElectionStandbyDefersToPrimary(t *testing.T) {
	clock := newFakeClock()
	net := newLossyNet(1)
	cl := newClaims()
	nodes := buildCluster(3, net, clock, cl, 1)
	rng := stats.NewRNG(42)
	for i := 0; i < 50; i++ {
		step(nodes, map[string]bool{}, clock, rng, 50*time.Millisecond)
	}
	if _, role, _, _ := nodes["d0"].Snapshot(); role != RoleLeader {
		t.Fatalf("primary d0 did not win the first election: role=%v", role)
	}
	cl.mu.Lock()
	first := cl.byTerm[1]
	cl.mu.Unlock()
	if len(first) == 0 || first[0] != "d0" {
		t.Fatalf("term 1 not won by primary: %v", first)
	}
	cl.check(t)

	// Followers learn the leader's client address from heartbeats —
	// the failover hint the fed server serves to clients.
	if _, _, leaderID, leaderAddr := nodes["d1"].Snapshot(); leaderID != "d0" || leaderAddr != "addr-d0" {
		t.Fatalf("standby does not know the leader: id=%q addr=%q", leaderID, leaderAddr)
	}
}

// Resign hands leadership over without waiting out a lease, and the
// resigner does not immediately re-elect itself.
func TestElectionResign(t *testing.T) {
	clock := newFakeClock()
	net := newLossyNet(2)
	cl := newClaims()
	nodes := buildCluster(3, net, clock, cl, 1)
	rng := stats.NewRNG(43)
	none := map[string]bool{}
	for i := 0; i < 50; i++ {
		step(nodes, none, clock, rng, 50*time.Millisecond)
	}
	if n, id := leaderCount(nodes, none); n != 1 || id != "d0" {
		t.Fatalf("setup: leader=%q count=%d", id, n)
	}
	termBefore, _, _, _ := nodes["d0"].Snapshot()
	nodes["d0"].Resign()
	for i := 0; i < 60; i++ {
		step(nodes, none, clock, rng, 50*time.Millisecond)
		cl.check(t)
	}
	n, id := leaderCount(nodes, none)
	if n != 1 {
		t.Fatalf("after resign: %d leaders", n)
	}
	if id == "d0" {
		t.Fatalf("resigned leader immediately re-elected itself")
	}
	termAfter, _, _, _ := nodes[id].Snapshot()
	if termAfter <= termBefore {
		t.Fatalf("successor term %d not past resigned term %d", termAfter, termBefore)
	}
}

// A peerless elector leads itself immediately: single-dispatcher
// deployments behave like HA-off with a term attached.
func TestElectionSingleNode(t *testing.T) {
	clock := newFakeClock()
	net := newLossyNet(3)
	cl := newClaims()
	nodes := buildCluster(1, net, clock, cl, 1)
	nodes["d0"].Tick()
	if term, role, _, _ := nodes["d0"].Snapshot(); role != RoleLeader || term != 1 {
		t.Fatalf("single node: role=%v term=%d, want leader at term 1", role, term)
	}
	cl.check(t)
}

// A dead leader (stops ticking entirely) is succeeded once its lease
// expires, and the successor holds a strictly higher term.
func TestElectionDeadLeaderSucceeded(t *testing.T) {
	clock := newFakeClock()
	net := newLossyNet(4)
	cl := newClaims()
	nodes := buildCluster(3, net, clock, cl, 1)
	rng := stats.NewRNG(44)
	none := map[string]bool{}
	for i := 0; i < 50; i++ {
		step(nodes, none, clock, rng, 50*time.Millisecond)
	}
	termBefore, _, _, _ := nodes["d0"].Snapshot()
	dead := map[string]bool{"d0": true}
	net.mu.Lock()
	net.cut["d0"] = true
	net.mu.Unlock()
	for i := 0; i < 100; i++ {
		step(nodes, dead, clock, rng, 50*time.Millisecond)
		cl.check(t)
	}
	n, id := leaderCount(nodes, dead)
	if n != 1 {
		t.Fatalf("after leader death: %d leaders among survivors", n)
	}
	termAfter, _, _, _ := nodes[id].Snapshot()
	if termAfter <= termBefore {
		t.Fatalf("successor term %d not past dead leader's %d", termAfter, termBefore)
	}
}
