package task

import (
	"math"
	"testing"
)

func TestPhaseString(t *testing.T) {
	if PhaseInput.String() != "input" || PhaseCompute.String() != "compute" ||
		PhaseOutput.String() != "output" {
		t.Error("phase names wrong")
	}
	if Phase(99).String() != "Phase(99)" {
		t.Error("unknown phase formatting wrong")
	}
}

func TestCostTotalAndOf(t *testing.T) {
	c := Cost{Input: 4, Compute: 149, Output: 1}
	if c.Total() != 154 {
		t.Errorf("Total = %v", c.Total())
	}
	if c.Of(PhaseInput) != 4 || c.Of(PhaseCompute) != 149 || c.Of(PhaseOutput) != 1 {
		t.Error("Of broken")
	}
	if c.Of(Phase(42)) != 0 {
		t.Error("Of(unknown) must be 0")
	}
}

func TestMatmulTable3Verbatim(t *testing.T) {
	// Spot-check Table 3 values on every server for each size.
	cases := []struct {
		size    int
		server  string
		in, cmp float64
	}{
		{1200, "chamagne", 4, 149},
		{1200, "pulney", 3, 14},
		{1500, "cabestan", 5, 136},
		{1500, "artimon", 5, 33},
		{1800, "chamagne", 8, 504},
		{1800, "artimon", 8, 53},
		{1800, "pulney", 7, 40},
	}
	for _, c := range cases {
		spec := Matmul(c.size)
		cost, ok := spec.Cost(c.server)
		if !ok {
			t.Fatalf("no cost for %d on %s", c.size, c.server)
		}
		if cost.Input != c.in || cost.Compute != c.cmp {
			t.Errorf("matmul %d on %s = %+v, want in=%v cmp=%v",
				c.size, c.server, cost, c.in, c.cmp)
		}
	}
}

func TestMatmulMemoryFootprints(t *testing.T) {
	want := map[int]float64{1200: 32.95, 1500: 51.49, 1800: 74.15}
	for size, mem := range want {
		got := Matmul(size).MemoryMB
		if math.Abs(got-mem) > 1e-9 {
			t.Errorf("matmul %d memory = %v, want %v", size, got, mem)
		}
	}
}

func TestWasteCPUTable4Verbatim(t *testing.T) {
	cases := []struct {
		param  int
		server string
		cmp    float64
	}{
		{200, "valette", 91.81},
		{200, "spinnaker", 16},
		{400, "cabestan", 148.48},
		{400, "artimon", 33.2},
		{600, "valette", 273.28},
		{600, "spinnaker", 45.6},
	}
	for _, c := range cases {
		cost, ok := WasteCPU(c.param).Cost(c.server)
		if !ok || cost.Compute != c.cmp {
			t.Errorf("wastecpu %d on %s compute = %v,%v, want %v",
				c.param, c.server, cost.Compute, ok, c.cmp)
		}
	}
	if WasteCPU(200).MemoryMB != 0 {
		t.Error("waste-cpu must need no memory")
	}
}

func TestSpecUnknownServer(t *testing.T) {
	if _, ok := Matmul(1200).Cost("nosuch"); ok {
		t.Error("unknown server returned a cost")
	}
}

func TestSpecPanicsOnUnknownVariant(t *testing.T) {
	for _, f := range []func(){func() { Matmul(999) }, func() { WasteCPU(999) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unknown variant did not panic")
				}
			}()
			f()
		}()
	}
}

func TestSpecLists(t *testing.T) {
	if got := len(MatmulSpecs()); got != 3 {
		t.Errorf("MatmulSpecs len = %d", got)
	}
	if got := len(WasteCPUSpecs()); got != 3 {
		t.Errorf("WasteCPUSpecs len = %d", got)
	}
	if MatmulSpecs()[1].Name() != "matmul-1500" {
		t.Errorf("spec name = %s", MatmulSpecs()[1].Name())
	}
}

func TestMetataskValidate(t *testing.T) {
	spec := WasteCPU(200)
	good := &Metatask{Name: "ok", Tasks: []*Task{
		{ID: 0, Spec: spec, Arrival: 0},
		{ID: 1, Spec: spec, Arrival: 5},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid metatask rejected: %v", err)
	}
	if good.Len() != 2 || good.Horizon() != 5 {
		t.Error("Len/Horizon broken")
	}

	bad := &Metatask{Name: "ids", Tasks: []*Task{{ID: 1, Spec: spec}}}
	if bad.Validate() == nil {
		t.Error("non-dense ids accepted")
	}
	unsorted := &Metatask{Name: "sort", Tasks: []*Task{
		{ID: 0, Spec: spec, Arrival: 10},
		{ID: 1, Spec: spec, Arrival: 5},
	}}
	if unsorted.Validate() == nil {
		t.Error("unsorted arrivals accepted")
	}
	nilspec := &Metatask{Name: "spec", Tasks: []*Task{{ID: 0}}}
	if nilspec.Validate() == nil {
		t.Error("nil spec accepted")
	}
	var empty Metatask
	if empty.Validate() != nil || empty.Horizon() != 0 {
		t.Error("empty metatask must validate with zero horizon")
	}
}

func TestTaskString(t *testing.T) {
	tk := &Task{ID: 3, Spec: Matmul(1500), Arrival: 12.5}
	if got := tk.String(); got != "task#3(matmul-1500@12.50s)" {
		t.Errorf("String = %q", got)
	}
}
