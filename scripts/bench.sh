#!/usr/bin/env bash
# bench.sh — verification + benchmark run with a regression gate.
#
# Runs go vet and the race-enabled test suite, then the core benchmark
# set, writing results to benchmarks/latest.txt. When a committed
# baseline exists (benchmarks/baseline.txt), every benchmark present in
# both files is compared on ns/op and the script fails if any regresses
# by more than BENCH_MAX_REGRESSION_PCT percent (default 5).
#
# Environment:
#   BENCH_PATTERN             benchmarks to run (go test -bench regexp;
#                             default: the committed-baseline set)
#   BENCH_TIME                -benchtime value (default 1s)
#   BENCH_MAX_REGRESSION_PCT  allowed ns/op regression in percent
#                             (default 5; CI uses a loose 40 because
#                             hosted runners are noisy)
#   BENCH_MAX_ALLOC_REGRESSION  allowed B/op and allocs/op regression in
#                             percent (default 5). Unlike ns/op this
#                             gate is exact for zero baselines: a
#                             benchmark whose baseline reads 0 allocs/op
#                             (the steady-state decision path) fails on
#                             ANY allocation, which is the
#                             zero-allocation contract's enforcement
#                             point. Tiny B/op deltas (< 64 B) are
#                             ignored as runtime noise.
#   BENCH_REQUIRE_ALL=1       fail when a baseline benchmark is absent
#                             from the run (CI full runs; subset runs
#                             via BENCH_PATTERN only warn)
#   BENCH_SKIP_CHECKS=1       skip gofmt + vet + race tests (bench only)
#   BENCH_OUT                 benchmark output file (default
#                             benchmarks/latest.txt)
#
# The gate comparison is also written to benchmarks/gate-diff.txt so a
# failing CI run can upload both files as an artifact and hosted-runner
# noise can be triaged without re-running.
#
# Promote a reviewed latest.txt with scripts/bench-update.sh.
set -euo pipefail

cd "$(dirname "$0")/.."

PATTERN="${BENCH_PATTERN:-BenchmarkEvaluateAllLargeTestbed|BenchmarkHTMEvaluate|BenchmarkGridRun200|BenchmarkSchedulerDecisions|BenchmarkAgentSubmit|BenchmarkClusterSubmit|BenchmarkAssignSolve|BenchmarkFedSubmit}"
BENCH_TIME="${BENCH_TIME:-1s}"
MAX_PCT="${BENCH_MAX_REGRESSION_PCT:-5}"
MAX_ALLOC_PCT="${BENCH_MAX_ALLOC_REGRESSION:-5}"

if [[ "${BENCH_SKIP_CHECKS:-0}" != "1" ]]; then
    echo "==> gofmt -l"
    unformatted="$(gofmt -l .)"
    if [[ -n "${unformatted}" ]]; then
        echo "error: gofmt needed on:" >&2
        echo "${unformatted}" >&2
        exit 1
    fi
    echo "==> go vet ./..."
    go vet ./...
    echo "==> go test -race ./..."
    go test -race ./...
fi

OUT="${BENCH_OUT:-benchmarks/latest.txt}"
mkdir -p benchmarks
echo "==> go test -bench '${PATTERN}' -benchtime ${BENCH_TIME}"
go test -run '^$' -bench "${PATTERN}" -benchmem -benchtime "${BENCH_TIME}" . | tee "${OUT}"

if [[ ! -f benchmarks/baseline.txt ]]; then
    echo "==> no benchmarks/baseline.txt: skipping regression gate" \
         "(run scripts/bench-update.sh to create one)"
    exit 0
fi

echo "==> comparing against benchmarks/baseline.txt" \
     "(max regression ${MAX_PCT}% ns/op, ${MAX_ALLOC_PCT}% B/op+allocs/op)"
awk -v max="${MAX_PCT}" -v maxAlloc="${MAX_ALLOC_PCT}" \
    -v requireAll="${BENCH_REQUIRE_ALL:-0}" '
    # Collect "BenchmarkName  N  T ns/op [B B/op] [A allocs/op]" lines
    # from both files. The GOMAXPROCS suffix (-8 etc.) varies across
    # machines; strip it so a baseline taken elsewhere still matches.
    FNR == 1 { file++ }
    /^Benchmark/ && / ns\/op/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ns = ""; bytes = ""; allocs = ""
        for (i = 2; i <= NF; i++) {
            if ($(i) == "ns/op")     ns = $(i-1)
            if ($(i) == "B/op")      bytes = $(i-1)
            if ($(i) == "allocs/op") allocs = $(i-1)
        }
        if (file == 1) { base[name] = ns; baseB[name] = bytes; baseA[name] = allocs }
        else           { latest[name] = ns; latestB[name] = bytes; latestA[name] = allocs }
    }
    # worse(old, new, pct, floor) -> 1 when new regresses past the
    # allowance. A zero baseline admits no headroom at all: any growth
    # beyond the absolute noise floor fails.
    function worse(old, new, pct, floor) {
        if (new - old <= floor) return 0
        if (old == 0) return new > 0
        return (new - old) / old * 100 > pct
    }
    END {
        status = 0
        matched = 0
        for (name in latest) {
            if (!(name in base)) {
                printf "NEW      %-60s %12.0f ns/op\n", name, latest[name]
                continue
            }
            matched++
            pct = (latest[name] - base[name]) / base[name] * 100
            tag = "ok"
            if (pct > max) { tag = "REGRESSED"; status = 1 }
            if (baseA[name] != "" && latestA[name] != "" && \
                worse(baseA[name], latestA[name], maxAlloc, 0)) {
                tag = "ALLOCS"; status = 1
                printf "ALLOCS   %-60s %12d -> %12d allocs/op\n", \
                       name, baseA[name], latestA[name]
            }
            if (baseB[name] != "" && latestB[name] != "" && \
                worse(baseB[name], latestB[name], maxAlloc, 64)) {
                tag = "BYTES"; status = 1
                printf "BYTES    %-60s %12d -> %12d B/op\n", \
                       name, baseB[name], latestB[name]
            }
            printf "%-8s %-60s %12.0f -> %12.0f ns/op (%+.1f%%)\n", \
                   tag, name, base[name], latest[name], pct
        }
        for (name in base) {
            if (!(name in latest)) {
                printf "MISSING  %-60s (in baseline, not in this run)\n", name
                if (requireAll) status = 1
            }
        }
        if (matched == 0) {
            print "error: no benchmark in the run matches the baseline; gate cannot compare" > "/dev/stderr"
            status = 1
        }
        exit status
    }
' benchmarks/baseline.txt "${OUT}" | tee benchmarks/gate-diff.txt
echo "==> benchmark gate passed"
