package cluster

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"casched/internal/agent"
	"casched/internal/sched"
	"casched/internal/task"
)

// poolSpec builds a spec solvable on every named server with the given
// compute costs.
func poolSpec(costs map[string]float64) *task.Spec {
	on := make(map[string]task.Cost, len(costs))
	for name, c := range costs {
		on[name] = task.Cost{Compute: c}
	}
	return &task.Spec{Problem: "p", Variant: 1, CostOn: on}
}

// evenSpec gives n servers sv00..sv(n-1) mildly heterogeneous costs.
func evenSpec(n int) *task.Spec {
	costs := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		costs[fmt.Sprintf("sv%02d", i)] = 20 + float64(i%7)
	}
	return poolSpec(costs)
}

func newTestCluster(t *testing.T, shards int, heuristic string, servers int, opts ...Option) *Cluster {
	t.Helper()
	opts = append([]Option{WithShards(shards), WithHeuristic(heuristic), WithSeed(1)}, opts...)
	cl, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < servers; i++ {
		cl.AddServer(fmt.Sprintf("sv%02d", i))
	}
	return cl
}

func TestClusterConstruction(t *testing.T) {
	if _, err := New(WithShards(0), WithHeuristic("HMCT")); err == nil {
		t.Error("0-shard cluster accepted")
	}
	if _, err := New(WithShards(2)); err == nil {
		t.Error("cluster without heuristic accepted")
	}
	if _, err := New(WithShards(2), WithHeuristic("nosuch")); err == nil {
		t.Error("unknown heuristic accepted")
	}
	cl, err := New(WithShards(4), WithHeuristic("msf"))
	if err != nil {
		t.Fatal(err)
	}
	if cl.NumShards() != 4 || !cl.UsesHTM() {
		t.Errorf("shards=%d usesHTM=%v", cl.NumShards(), cl.UsesHTM())
	}
	// A registry-default instance may be reconstructed per shard; a
	// customized one must be rejected rather than silently rebuilt
	// with default parameters.
	if _, err := New(WithShards(2), WithScheduler(sched.NewKPB())); err != nil {
		t.Errorf("default-config scheduler instance rejected: %v", err)
	}
	if _, err := New(WithShards(2), WithScheduler(&sched.KPB{K: 20})); err == nil {
		t.Error("customized scheduler instance silently rebuilt with defaults")
	}
	if _, err := New(WithShards(2), WithScheduler(&sched.KPB{K: 20}),
		WithSchedulerFactory(func() (sched.Scheduler, error) { return &sched.KPB{K: 20}, nil }),
	); err != nil {
		t.Errorf("explicit factory rejected: %v", err)
	}
}

func TestMembershipRouting(t *testing.T) {
	cl := newTestCluster(t, 4, "HMCT", 16)
	if got := len(cl.Servers()); got != 16 {
		t.Fatalf("servers = %d", got)
	}
	// Every server has a home and the shards partition the pool.
	total := 0
	for i := 0; i < cl.NumShards(); i++ {
		total += cl.Shard(i).ServerCount()
	}
	if total != 16 {
		t.Errorf("shard partition covers %d of 16", total)
	}
	sh, ok := cl.ShardOf("sv03")
	if !ok {
		t.Fatal("sv03 has no home")
	}
	// Hash routing is stable: re-adding is idempotent.
	cl.AddServer("sv03")
	if again, _ := cl.ShardOf("sv03"); again != sh {
		t.Error("re-add moved the server")
	}
	cl.RemoveServer("sv03")
	if _, ok := cl.ShardOf("sv03"); ok {
		t.Error("removed server still homed")
	}
	if got := len(cl.Servers()); got != 15 {
		t.Errorf("servers after removal = %d", got)
	}
}

func TestLeastLoadedRebalance(t *testing.T) {
	cl, err := New(WithShards(4), WithHeuristic("HMCT"), WithPolicy(LeastLoaded()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		cl.AddServer(fmt.Sprintf("sv%02d", i))
	}
	for i := 0; i < cl.NumShards(); i++ {
		if got := cl.Shard(i).ServerCount(); got != 2 {
			t.Errorf("shard %d holds %d servers, want 2", i, got)
		}
	}
	// Empty one shard; auto-rebalance must level the partition again.
	victims := []string{}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("sv%02d", i)
		if sh, _ := cl.ShardOf(name); sh == 0 {
			victims = append(victims, name)
		}
	}
	for _, name := range victims {
		cl.RemoveServer(name)
	}
	maxC, minC := 0, 8
	for i := 0; i < cl.NumShards(); i++ {
		c := cl.Shard(i).ServerCount()
		if c > maxC {
			maxC = c
		}
		if c < minC {
			minC = c
		}
	}
	if maxC-minC >= 2 {
		t.Errorf("auto-rebalance left skew: max %d min %d", maxC, minC)
	}
}

func TestExplicitRebalanceMigratesAndKeepsCompleting(t *testing.T) {
	// Hash policy: no auto-balance. Build a deliberately skewed pool,
	// place work, then rebalance and verify in-flight jobs still
	// resolve through their placing shard.
	cl, err := New(WithShards(2), WithHeuristic("HMCT"), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	spec := evenSpec(6)
	for i := 0; i < 6; i++ {
		cl.AddServer(fmt.Sprintf("sv%02d", i))
	}
	dec, err := cl.Submit(agent.Request{JobID: 1, TaskID: 1, Spec: spec, Arrival: 0})
	if err != nil {
		t.Fatal(err)
	}
	before, _ := cl.ShardOf(dec.Server)
	// Force skew by removing everything from the other shard... or
	// simply call Rebalance and check the invariant directly.
	cl.Rebalance()
	maxC, minC := 0, 6
	for i := 0; i < cl.NumShards(); i++ {
		c := cl.Shard(i).ServerCount()
		if c > maxC {
			maxC = c
		}
		if c < minC {
			minC = c
		}
	}
	if maxC-minC >= 2 {
		t.Errorf("rebalance left skew: max %d min %d", maxC, minC)
	}
	done := cl.Complete(1, dec.Server, 25)
	if done.TaskID != 1 {
		t.Errorf("completion resolved to %+v", done)
	}
	_ = before
	if cl.InFlight() != 0 {
		t.Errorf("in-flight after completion = %d", cl.InFlight())
	}
}

func TestSubmitCommitsOnGlobalBest(t *testing.T) {
	// One server is far faster than every other; whatever shard it
	// lands on, the fan-out must commit there.
	cl, err := New(WithShards(4), WithHeuristic("HMCT"), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	costs := map[string]float64{"fast": 5}
	for i := 0; i < 12; i++ {
		costs[fmt.Sprintf("sv%02d", i)] = 50
	}
	spec := poolSpec(costs)
	cl.AddServer("fast")
	for i := 0; i < 12; i++ {
		cl.AddServer(fmt.Sprintf("sv%02d", i))
	}
	dec, err := cl.Submit(agent.Request{JobID: 0, TaskID: 0, Spec: spec, Arrival: 0})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Server != "fast" {
		t.Errorf("fan-out picked %q, want fast", dec.Server)
	}
	if !dec.HasPrediction || math.Abs(dec.Predicted-5) > 1e-9 {
		t.Errorf("decision = %+v", dec)
	}
	// The prediction is findable through the cluster surface.
	if p, ok := cl.Prediction(0); !ok || math.Abs(p-5) > 1e-9 {
		t.Errorf("Prediction = %v,%v", p, ok)
	}
	if got := len(cl.FinalPredictions()); got != 1 {
		t.Errorf("final predictions = %d", got)
	}
}

func TestSubmitUnschedulableAndPartialEligibility(t *testing.T) {
	cl := newTestCluster(t, 4, "HMCT", 8)
	bad := &task.Spec{Problem: "q", Variant: 1, CostOn: map[string]task.Cost{"elsewhere": {Compute: 1}}}
	if _, err := cl.Submit(agent.Request{JobID: 9, Spec: bad}); !errors.Is(err, agent.ErrUnschedulable) {
		t.Errorf("err = %v, want ErrUnschedulable", err)
	}
	// A spec solvable on a single server routes to that server's shard.
	only := &task.Spec{Problem: "r", Variant: 1, CostOn: map[string]task.Cost{"sv05": {Compute: 3}}}
	dec, err := cl.Submit(agent.Request{JobID: 10, TaskID: 10, Spec: only, Arrival: 0})
	if err != nil || dec.Server != "sv05" {
		t.Errorf("decision = %+v, %v; want sv05", dec, err)
	}
}

func TestSubmitBatchRoutesAndCommits(t *testing.T) {
	cl := newTestCluster(t, 4, "HMCT", 16)
	spec := evenSpec(16)
	mkBatch := func(base int, at float64, n int) []agent.Request {
		reqs := make([]agent.Request, n)
		for i := range reqs {
			reqs[i] = agent.Request{JobID: base + i, TaskID: base + i, Spec: spec, Arrival: at}
		}
		return reqs
	}
	decs, err := cl.SubmitBatch(mkBatch(0, 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	first := map[int]bool{}
	for i, d := range decs {
		if d.Server == "" || !d.HasPrediction {
			t.Fatalf("decision %d = %+v", i, d)
		}
		sh, _ := cl.ShardOf(d.Server)
		first[sh] = true
	}
	if len(first) != 1 {
		t.Errorf("first batch spread over %d shards, want hierarchical routing to 1", len(first))
	}
	// The next burst routes away from the now-loaded shard.
	decs2, err := cl.SubmitBatch(mkBatch(100, 1, 8))
	if err != nil {
		t.Fatal(err)
	}
	second := map[int]bool{}
	for _, d := range decs2 {
		sh, _ := cl.ShardOf(d.Server)
		second[sh] = true
	}
	for sh := range second {
		if first[sh] {
			t.Errorf("second burst reused loaded shard %d", sh)
		}
	}
	if cl.InFlight() != 16 {
		t.Errorf("in-flight = %d, want 16", cl.InFlight())
	}
	// Batch members only one shard can solve still commit there, and
	// unschedulable members surface joined errors without sinking the
	// batch.
	only := &task.Spec{Problem: "r", Variant: 1, CostOn: map[string]task.Cost{"sv00": {Compute: 3}}}
	bad := &task.Spec{Problem: "q", Variant: 1, CostOn: map[string]task.Cost{"elsewhere": {Compute: 1}}}
	mixed := []agent.Request{
		{JobID: 200, TaskID: 200, Spec: spec, Arrival: 2},
		{JobID: 201, TaskID: 201, Spec: only, Arrival: 2},
		{JobID: 202, TaskID: 202, Spec: bad, Arrival: 2},
	}
	decs3, err := cl.SubmitBatch(mixed)
	if !errors.Is(err, agent.ErrUnschedulable) {
		t.Errorf("mixed batch err = %v, want wrapped ErrUnschedulable", err)
	}
	if decs3[0].Server == "" || decs3[1].Server != "sv00" || decs3[2].Server != "" {
		t.Errorf("mixed batch decisions = %+v", decs3)
	}
}

func TestMergedEventStream(t *testing.T) {
	cl := newTestCluster(t, 4, "HMCT", 16)
	var events []agent.Event
	cancel := cl.Subscribe(func(ev agent.Event) { events = append(events, ev) })
	sc := agent.NewStatsCollector()
	cancel2 := cl.Subscribe(sc.Collect)
	defer cancel2()
	spec := evenSpec(16)
	reqs := make([]agent.Request, 6)
	for i := range reqs {
		reqs[i] = agent.Request{JobID: i, TaskID: i, Spec: spec, Arrival: 0}
	}
	decs, err := cl.SubmitBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	cl.Complete(0, decs[0].Server, decs[0].Predicted)
	cl.Report(decs[1].Server, 1, 5)

	var nDec, nDone, nRep int
	for _, ev := range events {
		switch ev.Kind {
		case agent.EventDecision:
			nDec++
		case agent.EventCompletion:
			nDone++
		case agent.EventReport:
			nRep++
		}
	}
	if nDec != 6 || nDone != 1 || nRep != 1 {
		t.Errorf("merged stream: %d decisions, %d completions, %d reports", nDec, nDone, nRep)
	}
	// StatsCollector consumes the merged stream directly.
	cl.Complete(1, decs[1].Server, decs[1].Predicted+1)
	st := sc.Snapshot()
	if st.Decisions != 6 || st.Completions != 2 || st.PredictionSamples != 2 {
		t.Fatalf("collector on merged stream: %+v", st)
	}
	// Job 0 completed exactly on prediction, job 1 one second late.
	if math.Abs(st.MeanAbsPredictionError-0.5) > 1e-9 {
		t.Errorf("collector MAE = %v, want 0.5", st.MeanAbsPredictionError)
	}

	cancel()
	before := len(events)
	cl.Report(decs[2].Server, 1, 6)
	if len(events) != before {
		t.Error("cancelled subscriber still receiving")
	}
}

func TestUnscoredHeuristicRotates(t *testing.T) {
	cl := newTestCluster(t, 4, "RoundRobin", 16)
	spec := evenSpec(16)
	shards := map[int]int{}
	servers := map[string]int{}
	for i := 0; i < 64; i++ {
		dec, err := cl.Submit(agent.Request{JobID: i, TaskID: i, Spec: spec, Arrival: float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		sh, _ := cl.ShardOf(dec.Server)
		shards[sh]++
		servers[dec.Server]++
	}
	if len(shards) != 4 {
		t.Errorf("unscored rotation used %d of 4 shards: %v", len(shards), shards)
	}
	// RoundRobin's fairness survives sharding: with 64 submissions
	// over 16 servers, every server receives work (fanning the
	// evaluation out would advance losing shards' cursors and starve
	// servers permanently).
	if len(servers) != 16 {
		t.Errorf("round-robin reached %d of 16 servers: %v", len(servers), servers)
	}
}

func TestAffinityPolicyGroupsClasses(t *testing.T) {
	cl, err := New(WithShards(4), WithHeuristic("HMCT"), WithPolicy(Affinity(nil)))
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []string{"sun", "sgi", "alpha"} {
		for i := 0; i < 4; i++ {
			cl.AddServer(fmt.Sprintf("%s%d", class, i))
		}
	}
	for _, class := range []string{"sun", "sgi", "alpha"} {
		want, _ := cl.ShardOf(class + "0")
		for i := 1; i < 4; i++ {
			if got, _ := cl.ShardOf(fmt.Sprintf("%s%d", class, i)); got != want {
				t.Errorf("%s%d on shard %d, class home %d", class, i, got, want)
			}
		}
	}
	if DefaultClass("bigsun12") != "bigsun" {
		t.Errorf("DefaultClass = %q", DefaultClass("bigsun12"))
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"hash", "least-loaded", "affinity"} {
		if p, ok := ByName(name); !ok || p == nil {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("nosuch"); ok {
		t.Error("unknown policy resolved")
	}
}

// TestRebalanceLivenessOnCorruptState drives the victim-scan guard: if
// counts claims a shard is over-full while home maps no server to it,
// Rebalance must repair the bookkeeping from home (the authoritative
// map) and terminate instead of migrating a phantom "" server forever.
func TestRebalanceLivenessOnCorruptState(t *testing.T) {
	cl := newTestCluster(t, 3, "HMCT", 6, WithPolicy(LeastLoaded()))

	// Corrupt the routing state: counts says shard 0 is massively
	// over-full, home disagrees.
	cl.mu.Lock()
	cl.counts[0] += 5
	cl.mu.Unlock()

	done := make(chan int, 1)
	go func() { done <- cl.Rebalance() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Rebalance looped forever on corrupt counts")
	}

	// The repair rebuilt counts from home: they sum to the real server
	// count and no phantom "" server was registered anywhere.
	cl.mu.Lock()
	total := 0
	for _, c := range cl.counts {
		total += c
	}
	_, phantom := cl.home[""]
	cl.mu.Unlock()
	if total != 6 || phantom {
		t.Errorf("after repair: counts sum %d (want 6), phantom server registered: %v", total, phantom)
	}
	for i := 0; i < cl.NumShards(); i++ {
		for _, s := range cl.Shard(i).Servers() {
			if s == "" {
				t.Errorf("shard %d holds phantom server", i)
			}
		}
	}
	// A later real rebalance still works.
	cl.AddServer("sv99")
	cl.RemoveServer("sv00")
	if got := len(cl.Servers()); got != 6 {
		t.Errorf("servers after churn = %d", got)
	}
}

// TestBatchRoutingPrefersDrainedShard pins the HTM-backed routing
// signal end-to-end: after a burst loads one shard, the next burst's
// power-of-two sample must route to a shard with an earlier projected
// drain — never back onto the saturated one.
func TestBatchRoutingPrefersDrainedShard(t *testing.T) {
	cl := newTestCluster(t, 2, "HMCT", 8)
	spec := evenSpec(8)
	mkBatch := func(base int, at float64, n int) []agent.Request {
		reqs := make([]agent.Request, n)
		for i := range reqs {
			reqs[i] = agent.Request{JobID: base + i, TaskID: base + i, Spec: spec, Arrival: at}
		}
		return reqs
	}
	decs, err := cl.SubmitBatch(mkBatch(0, 0, 4))
	if err != nil {
		t.Fatal(err)
	}
	loaded, _ := cl.ShardOf(decs[0].Server)
	// Drive follow-up single-task bursts: as long as the other shard
	// still has an idle server, its min projected drain (the trace
	// time, ≈0.5) beats the saturated shard's (≈20s of queued compute),
	// so every power-of-two comparison — with 2 shards, always both —
	// must route away. Three rounds keep at least one of the other
	// shard's four servers idle in the HTM's view.
	for round := 0; round < 3; round++ {
		decs, err = cl.SubmitBatch(mkBatch(100*(round+1), 0.5, 1))
		if err != nil {
			t.Fatal(err)
		}
		sh, _ := cl.ShardOf(decs[0].Server)
		if sh == loaded {
			t.Fatalf("round %d routed to the saturated shard %d", round, loaded)
		}
	}
}

// TestClusterBatchAssignmentOption: WithBatchAssignment flows through
// to every shard and spreads a contended burst one task per server,
// where the default greedy shard piles onto the best server.
func TestClusterBatchAssignmentOption(t *testing.T) {
	costs := map[string]float64{"sv00": 10, "sv01": 25}
	spec := poolSpec(costs)
	mk := func() []agent.Request {
		return []agent.Request{
			{JobID: 0, TaskID: 0, Spec: spec, Arrival: 0},
			{JobID: 1, TaskID: 1, Spec: spec, Arrival: 0},
		}
	}

	greedy := newTestCluster(t, 1, "HMCT", 2)
	gdecs, err := greedy.SubmitBatch(mk())
	if err != nil {
		t.Fatal(err)
	}
	if gdecs[0].Server != "sv00" || gdecs[1].Server != "sv00" {
		t.Fatalf("greedy cluster decisions = %+v, want both on sv00", gdecs)
	}

	matched := newTestCluster(t, 1, "HMCT", 2, WithBatchAssignment(true))
	mdecs, err := matched.SubmitBatch(mk())
	if err != nil {
		t.Fatal(err)
	}
	servers := map[string]bool{mdecs[0].Server: true, mdecs[1].Server: true}
	if !servers["sv00"] || !servers["sv01"] {
		t.Errorf("matched cluster decisions = %+v, want one per server", mdecs)
	}
}
