package fed

// Self-healing federation tests: graceful leave with partition
// reassignment, dead-member re-partitioning after the grace period,
// the promoted dispatcher's replay dedup, the standby follower's
// ledger mirror — and the full TCP failover e2e (kill the leader
// mid-metatask, a standby wins the election, clients fail over, the
// metatask completes with zero duplicate placements).

import (
	"fmt"
	"net/rpc"
	"sync"
	"testing"
	"time"

	"casched/internal/agent"
	"casched/internal/cluster"
	"casched/internal/ha"
	"casched/internal/live"
	"casched/internal/sched"
	"casched/internal/workload"
)

func TestFedHALeaveReassignsPartition(t *testing.T) {
	d, _, servers, _ := newFlakyFed(t, 2, 4, nil)
	if err := d.Leave("m1"); err != nil {
		t.Fatalf("leave: %v", err)
	}
	for _, sv := range servers {
		if i, ok := d.MemberOf(sv); !ok || i != 0 {
			t.Errorf("server %s homed on member %d after leave, want 0", sv, i)
		}
	}
	if got := d.Reassigned(); got != 2 {
		t.Errorf("reassigned = %d, want 2 (m1's half of the pool)", got)
	}
	mi := d.Members()
	if !mi[1].Left || mi[1].Servers != 0 {
		t.Errorf("departed member state = %+v, want Left with an empty partition", mi[1])
	}
	if mi[0].Servers != 4 {
		t.Errorf("survivor owns %d servers, want 4", mi[0].Servers)
	}
	// Routing must keep working on the survivor alone.
	dec, err := d.Submit(req(1, evenSpec(servers), 1))
	if err != nil {
		t.Fatalf("submit after leave: %v", err)
	}
	if i, _ := d.MemberOf(dec.Server); i != 0 {
		t.Errorf("post-leave placement landed on member %d, want 0", i)
	}
	// A departed member is not probed back: unlike eviction there is
	// no readmission path short of an explicit rejoin.
	d.RefreshSummaries()
	if mi := d.Members(); !mi[1].Left {
		t.Errorf("gossip readmitted a departed member: %+v", mi[1])
	}
	// An explicit rejoin under the old name clears the departure; the
	// member restarts with an empty partition.
	s, err := sched.ByName("HMCT")
	if err != nil {
		t.Fatal(err)
	}
	core, err := agent.New(agent.Config{Scheduler: s, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddMember(NewInProcess("m1", core)); err != nil {
		t.Fatalf("rejoin after leave: %v", err)
	}
	if mi := d.Members(); mi[1].Left || mi[1].Servers != 0 {
		t.Errorf("rejoined member state = %+v, want not-left with an empty partition", mi[1])
	}
}

func TestFedHAReassignDeadAfterGrace(t *testing.T) {
	d, flakies, servers, now := newFlakyFed(t, 2, 4, func(c *Config) {
		c.ReassignAfter = 5 * time.Second
		c.SummaryInterval = time.Hour // no inline refresh noise
	})
	flakies[1].down = true
	spec := evenSpec(servers)
	for i := 0; i < 4; i++ {
		d.Submit(req(100+i, spec, 1))
	}
	if mi := d.Members(); !mi[1].Evicted {
		t.Fatalf("member not evicted: %+v", mi[1])
	}
	// Within the grace period nothing moves: a briefly partitioned
	// member keeps its servers, exactly the pre-HA behavior.
	d.ReassignDead()
	if got := d.Reassigned(); got != 0 {
		t.Fatalf("reassigned %d servers inside the grace period, want 0", got)
	}
	*now = now.Add(6 * time.Second)
	d.ReassignDead()
	if got := d.Reassigned(); got != 2 {
		t.Fatalf("reassigned = %d after the grace period, want 2", got)
	}
	for _, sv := range servers {
		if i, ok := d.MemberOf(sv); !ok || i != 0 {
			t.Errorf("server %s homed on member %d, want 0", sv, i)
		}
	}
	// Idempotent: the dead member's partition is empty now.
	d.ReassignDead()
	if got := d.Reassigned(); got != 2 {
		t.Errorf("second tick moved more servers: %d", got)
	}
}

func TestFedHAResumeDedup(t *testing.T) {
	d, _, servers, _ := newFlakyFed(t, 2, 4, nil)
	spec := evenSpec(servers)
	// Adopt a replicated placement record, as a promotion does, then
	// replay the same job: the recorded decision comes back and no
	// member places it a second time.
	d.AdoptPlacements(map[int]ha.Placement{42: {Member: "m0", Server: "sv00", At: 1}})
	if got := d.InFlight(); got != 1 {
		t.Fatalf("in-flight after adoption = %d, want 1", got)
	}
	dec, err := d.Submit(req(42, spec, 2))
	if err != nil {
		t.Fatalf("replayed submit: %v", err)
	}
	if dec.Server != "sv00" {
		t.Fatalf("replayed decision = %q, want the recorded sv00", dec.Server)
	}
	if got := d.InFlight(); got != 1 {
		t.Fatalf("replay grew in-flight to %d, want 1", got)
	}
	// Fresh jobs still place normally, and the adopted record drains
	// through the ordinary completion path.
	if _, err := d.Submit(req(43, spec, 2)); err != nil {
		t.Fatalf("fresh submit: %v", err)
	}
	if err := d.Complete(42, "sv00", 3); err != nil {
		t.Fatalf("complete adopted job: %v", err)
	}
	if got := d.InFlight(); got != 1 {
		t.Errorf("in-flight after completion = %d, want 1 (job 43)", got)
	}
	// Records for unknown members are skipped, not adopted blind.
	d.AdoptPlacements(map[int]ha.Placement{77: {Member: "nobody", Server: "sv01", At: 1}})
	if got := d.InFlight(); got != 1 {
		t.Errorf("unknown-member record adopted: in-flight = %d, want 1", got)
	}
}

func TestFedHAFollowerMirrorsLedger(t *testing.T) {
	// Relay-enabled in-process members: the follower's mirror must
	// converge to the members' ledgers — decisions appear, completions
	// remove them, and lag reads zero once caught up.
	now := time.Unix(1000, 0)
	members := make([]Member, 2)
	for i := range members {
		s, err := sched.ByName("HMCT")
		if err != nil {
			t.Fatal(err)
		}
		core, err := agent.New(agent.Config{Scheduler: s, Seed: 7, Relay: true})
		if err != nil {
			t.Fatal(err)
		}
		members[i] = NewInProcess(fmt.Sprintf("m%d", i), core)
	}
	d, err := NewWithMembers(Config{
		Heuristic: "HMCT", Seed: 7, StaleAfter: 10 * time.Second,
		Now: func() time.Time { return now },
	}, members)
	if err != nil {
		t.Fatal(err)
	}
	servers := []string{"sv00", "sv01", "sv02", "sv03"}
	for i, sv := range servers {
		m := i % 2
		if err := d.members[m].m.AddServer(sv); err != nil {
			t.Fatal(err)
		}
		d.home[sv] = m
		d.counts[m]++
	}
	spec := evenSpec(servers)
	placed := map[int]string{}
	for i := 0; i < 6; i++ {
		dec, err := d.Submit(req(200+i, spec, 1))
		if err != nil {
			t.Fatal(err)
		}
		placed[200+i] = dec.Server
	}
	f := ha.NewFollower(0)
	d.RefreshSummaries() // ledger heads into summaries (NoteLedger)
	d.FollowRelay(f)
	if got := f.Len(); got != 6 {
		t.Fatalf("mirror holds %d placements, want 6", got)
	}
	for job, p := range f.Placements() {
		if p.Server != placed[job] {
			t.Errorf("mirror job %d on %s, want %s", job, p.Server, placed[job])
		}
		if i, _ := d.MemberOf(p.Server); d.members[i].m.Name() != p.Member {
			t.Errorf("mirror job %d attributed to %s, server owned by %s", job, p.Member, d.members[i].m.Name())
		}
	}
	for lag, v := range f.Lags() {
		if v != 0 {
			t.Errorf("lag[%s] = %d after synchronous pull, want 0", lag, v)
		}
	}
	// Completions drain the mirror.
	for job, sv := range placed {
		if err := d.Complete(job, sv, 2); err != nil {
			t.Fatal(err)
		}
	}
	d.FollowRelay(f)
	if got := f.Len(); got != 0 {
		t.Errorf("mirror holds %d placements after completions, want 0", got)
	}
}

// TestFedHAFailover is the dispatcher-kill e2e: three dispatcher
// replicas over TCP (one primary, two standbys), two member agents
// and four computational servers wired to the full replica list, and
// a client metatask driven through the standard protocol. The leader
// is killed mid-metatask; a standby must win the election, fence the
// members, adopt the replicated placement map, and finish the run —
// every task completing exactly once. Then one member leaves
// gracefully and the survivor absorbs its partition.
func TestFedHAFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("federation HA e2e needs sockets and scaled wall time")
	}
	clock := live.NewClock(400)

	newDispatcher := func(id string, standby bool) *Server {
		fs, err := StartServer(ServerConfig{
			Heuristic:       "HMCT",
			Policy:          cluster.LeastLoaded(),
			Clock:           clock,
			Seed:            7,
			Timeout:         time.Second,
			SummaryInterval: 50 * time.Millisecond,
			StaleAfter:      2 * time.Second,
			MaxFailures:     3,
			Relay:           true,
			RelayInterval:   25 * time.Millisecond,
			HA: &HAConfig{
				ID:        id,
				Lease:     400 * time.Millisecond,
				Heartbeat: 100 * time.Millisecond,
				Standby:   standby,
			},
		})
		if err != nil {
			t.Fatalf("dispatcher %s: %v", id, err)
		}
		return fs
	}
	fsA := newDispatcher("da", false)
	defer fsA.Close()
	fsB := newDispatcher("db", true)
	defer fsB.Close()
	fsC := newDispatcher("dc", true)
	defer fsC.Close()
	replicas := map[string]*Server{"da": fsA, "db": fsB, "dc": fsC}
	for id, fs := range replicas {
		peers := map[string]string{}
		for pid, p := range replicas {
			if pid != id {
				peers[pid] = p.Addr()
			}
		}
		fs.SetHAPeers(peers)
	}
	addrList := fsA.Addr() + "," + fsB.Addr() + "," + fsC.Addr()

	waitFor := func(what string, timeout time.Duration, ok func() bool) {
		t.Helper()
		deadline := time.Now().Add(timeout)
		for time.Now().Before(deadline) {
			if ok() {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}
	waitFor("primary to win the first election", 10*time.Second, func() bool {
		return fsA.HAStatus().IsLeader
	})
	if st := fsB.HAStatus(); st.IsLeader {
		t.Fatalf("standby db claims leadership at start: %+v", st)
	}

	// Duplicate detection at the ground truth: every decision a member
	// core ever commits, counted per job. Kill the leader once enough
	// of the metatask is in flight.
	var decMu sync.Mutex
	decCount := map[int]int{}
	killCh := make(chan struct{})
	var killOnce sync.Once
	onEvent := func(ev agent.Event) {
		if ev.Kind != agent.EventDecision {
			return
		}
		decMu.Lock()
		decCount[ev.JobID]++
		if len(decCount) >= 6 {
			killOnce.Do(func() { close(killCh) })
		}
		decMu.Unlock()
	}

	newMember := func(name string) *live.Agent {
		s, err := sched.ByName("HMCT")
		if err != nil {
			t.Fatal(err)
		}
		m, err := live.StartAgent(live.AgentConfig{
			Scheduler: s,
			Clock:     clock,
			Seed:      7,
			Join:      addrList,
			Name:      name,
		})
		if err != nil {
			t.Fatalf("member %s: %v", name, err)
		}
		m.Core().Subscribe(onEvent)
		return m
	}
	m1 := newMember("m1")
	defer m1.Close()
	m2 := newMember("m2")
	defer m2.Close()
	for id, fs := range replicas {
		if got := fs.Dispatcher().NumMembers(); got != 2 {
			t.Fatalf("replica %s sees %d members, want 2", id, got)
		}
	}

	serverNames := []string{"artimon", "cabestan", "spinnaker", "valette"}
	for _, name := range serverNames {
		srv, err := live.StartServer(live.ServerConfig{
			Name:      name,
			AgentAddr: addrList,
			Clock:     clock,
		})
		if err != nil {
			t.Fatalf("server %s: %v", name, err)
		}
		defer srv.Close()
	}

	go func() {
		<-killCh
		fsA.Close()
	}()

	mt := workload.MustGenerate(workload.Set2(24, 4, 5))
	results, err := live.RunMetatask(addrList, mt, clock)
	if err != nil {
		t.Fatalf("metatask across failover: %v", err)
	}
	select {
	case <-killCh:
	default:
		t.Fatal("metatask finished before the leader was killed; raise the task count")
	}
	for _, r := range results {
		if !r.Completed {
			t.Fatalf("task %d did not complete", r.ID)
		}
	}
	decMu.Lock()
	for job, n := range decCount {
		if n > 1 {
			t.Errorf("job %d placed %d times — duplicate placement across failover", job, n)
		}
	}
	decMu.Unlock()

	// A standby must lead now, at a higher term than the first
	// election's, and the in-flight ledger must drain through it.
	var leader *Server
	waitFor("a standby to take over", 15*time.Second, func() bool {
		for _, fs := range []*Server{fsB, fsC} {
			if fs.HAStatus().IsLeader {
				leader = fs
				return true
			}
		}
		return false
	})
	if st := leader.HAStatus(); st.Term < 2 {
		t.Errorf("post-failover term = %d, want >= 2", st.Term)
	}
	waitFor("the new leader's in-flight ledger to drain", 15*time.Second, func() bool {
		return leader.Dispatcher().InFlight() == 0
	})

	// Graceful leave: m2 drains and departs; the leader re-homes its
	// partition onto m1 and scheduling keeps working on the survivor.
	m1Idx := -1
	for i := 0; i < leader.Dispatcher().NumMembers(); i++ {
		if leader.Dispatcher().Member(i).Name() == "m1" {
			m1Idx = i
		}
	}
	if m1Idx < 0 {
		t.Fatal("m1 not found on the new leader")
	}
	m2.Leave(5 * time.Second)
	waitFor("m2's partition to re-home onto m1", 10*time.Second, func() bool {
		for _, sv := range serverNames {
			if i, ok := leader.Dispatcher().MemberOf(sv); !ok || i != m1Idx {
				return false
			}
		}
		return true
	})
	if st := leader.HAStatus(); st.ReassignedServers < 2 {
		t.Errorf("reassigned-servers counter = %d, want >= 2", st.ReassignedServers)
	}

	disp, err := rpc.Dial("tcp", leader.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer disp.Close()
	srvConns := map[string]*rpc.Client{}
	defer func() {
		for _, c := range srvConns {
			c.Close()
		}
	}()
	for i := 0; i < 4; i++ {
		key := 5000 + i
		var rep live.ScheduleReply
		// An empty Addr means the chosen server has not re-registered
		// its RPC address with this leader yet; the real client retries
		// exactly like this (the placement itself is deduped).
		waitFor(fmt.Sprintf("task %d to get a routable server", key), 10*time.Second, func() bool {
			rep = live.ScheduleReply{}
			if err := disp.Call("Agent.Schedule", live.ScheduleArgs{
				TaskKey: key, Problem: "wastecpu", Variant: 200, Arrival: clock.Now(),
			}, &rep); err != nil {
				t.Fatalf("schedule after leave: %v", err)
			}
			return rep.Addr != ""
		})
		if i, _ := leader.Dispatcher().MemberOf(rep.Server); i != m1Idx {
			t.Errorf("post-leave task %d placed via departed member (server %s)", key, rep.Server)
		}
		sc, ok := srvConns[rep.Addr]
		if !ok {
			sc, err = rpc.Dial("tcp", rep.Addr)
			if err != nil {
				t.Fatalf("dial server %s: %v", rep.Server, err)
			}
			srvConns[rep.Addr] = sc
		}
		var sub live.SubmitReply
		if err := sc.Call("Server.Submit", live.SubmitArgs{
			TaskKey: key, Problem: "wastecpu", Variant: 200,
		}, &sub); err != nil {
			t.Fatalf("submit after leave: %v", err)
		}
	}
}

// TestFedHADrainStepsDown pins the graceful-shutdown half: a leader
// that drains resigns its lease, and a peer takes over without
// waiting out a failure detection.
func TestFedHADrainStepsDown(t *testing.T) {
	if testing.Short() {
		t.Skip("needs sockets and election wall time")
	}
	clock := live.NewClock(1000)
	mk := func(id string, standby bool) *Server {
		fs, err := StartServer(ServerConfig{
			Heuristic: "HMCT", Clock: clock, Seed: 7,
			SummaryInterval: 50 * time.Millisecond,
			HA: &HAConfig{
				ID: id, Lease: 300 * time.Millisecond,
				Heartbeat: 75 * time.Millisecond, Standby: standby,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}
	fsA := mk("da", false)
	defer fsA.Close()
	fsB := mk("db", true)
	defer fsB.Close()
	fsC := mk("dc", true)
	defer fsC.Close()
	replicas := map[string]*Server{"da": fsA, "db": fsB, "dc": fsC}
	for id, fs := range replicas {
		peers := map[string]string{}
		for pid, p := range replicas {
			if pid != id {
				peers[pid] = p.Addr()
			}
		}
		fs.SetHAPeers(peers)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && !fsA.HAStatus().IsLeader {
		time.Sleep(20 * time.Millisecond)
	}
	if !fsA.HAStatus().IsLeader {
		t.Fatal("primary never led")
	}
	fsA.Drain(time.Second)
	if fsA.HAStatus().IsLeader {
		t.Fatal("drained leader still claims leadership")
	}
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if fsB.HAStatus().IsLeader || fsC.HAStatus().IsLeader {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("no standby took over after the leader drained")
}
