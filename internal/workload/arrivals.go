package workload

import (
	"fmt"
	"math"

	"casched/internal/stats"
)

// ArrivalProcess generates the inter-arrival gaps of a metatask. The
// paper uses Poisson arrivals; the alternatives probe how the
// heuristics respond to other traffic shapes (the tech report [2]
// explored several in simulation).
type ArrivalProcess int

const (
	// ArrivalPoisson draws exponential gaps with the scenario mean —
	// the paper's process.
	ArrivalPoisson ArrivalProcess = iota
	// ArrivalUniform draws gaps uniformly in [0.5·D, 1.5·D]: same mean,
	// far less variance.
	ArrivalUniform
	// ArrivalBursty releases tasks in bursts of BurstSize separated by
	// BurstSize·D: same long-run rate, maximal short-term contention.
	ArrivalBursty
	// ArrivalConstant spaces every gap exactly D apart.
	ArrivalConstant
	// ArrivalPoissonBurst is an inhomogeneous Poisson process (IPPP,
	// cf. Hohmann 2019): the arrival rate alternates between a burst
	// rate and a quiet rate over a fixed cycle, while the long-run mean
	// inter-arrival time stays at the scenario's D. This is the
	// traffic shape that stresses per-decision scheduling cost most:
	// during a burst the agent must evaluate candidates several times
	// faster than the long-run rate suggests.
	ArrivalPoissonBurst
	// ArrivalDiurnal is an inhomogeneous Poisson process with a smooth
	// sinusoidal day/night rate, λ(t) = λ0·(1 + A·sin(2πt/P)), sampled
	// by thinning (Lewis–Shedler; the simulation scheme of Hohmann
	// 2019): candidate arrivals are drawn homogeneously at the peak
	// rate λ0·(1+A) and accepted with probability λ(t)/λmax, which
	// realizes the exact target intensity with no discretization. The
	// cycle-average rate is λ0 by construction, so the long-run mean
	// inter-arrival time stays at the scenario's D — the smooth
	// counterpart of ArrivalPoissonBurst's on/off profile.
	ArrivalDiurnal
)

// String returns the process name.
func (p ArrivalProcess) String() string {
	switch p {
	case ArrivalPoisson:
		return "poisson"
	case ArrivalUniform:
		return "uniform"
	case ArrivalBursty:
		return "bursty"
	case ArrivalConstant:
		return "constant"
	case ArrivalPoissonBurst:
		return "poisson-burst"
	case ArrivalDiurnal:
		return "diurnal"
	default:
		return fmt.Sprintf("ArrivalProcess(%d)", int(p))
	}
}

// defaultBurstSize is the burst length when a bursty scenario does not
// set one.
const defaultBurstSize = 5

// Defaults for the inhomogeneous-Poisson process.
const (
	// defaultBurstFactor multiplies the base rate during a burst. It
	// must stay strictly below 1/defaultBurstDuty, or the quiet rate
	// degenerates to zero and the process becomes pure on/off traffic.
	defaultBurstFactor = 3.0
	// defaultBurstDuty is the fraction of each cycle spent bursting.
	defaultBurstDuty = 0.25
	// defaultBurstPeriodD is the cycle length in units of the mean
	// inter-arrival time D.
	defaultBurstPeriodD = 20.0
	// quietRateFloor is the minimum quiet-phase rate, as a fraction of
	// the base rate λ0. BurstFactor values at or beyond 1/duty are
	// clamped so the quiet rate never reaches zero: pure on/off
	// traffic would force every quiet-phase gap through a zero-hazard
	// walk (see poissonBurstGaps).
	quietRateFloor = 1e-3
)

// Defaults for the sinusoidal diurnal process.
const (
	// defaultDiurnalAmplitude is the relative rate swing A: the peak
	// ("noon") rate is (1+A)·λ0 and the trough ("night") rate (1−A)·λ0.
	defaultDiurnalAmplitude = 0.8
	// defaultDiurnalPeriodD is the day length in units of the mean
	// inter-arrival time D — short enough that a paper-scale metatask
	// spans several full day/night cycles.
	defaultDiurnalPeriodD = 40.0
)

// gapGenerator returns a function producing the i-th inter-arrival gap
// (called for i = 1..N-1).
func gapGenerator(sc Scenario, rng *stats.RNG) func(i int) float64 {
	mean := sc.MeanInterarrival
	switch sc.Arrival {
	case ArrivalUniform:
		return func(int) float64 { return mean * (0.5 + rng.Float64()) }
	case ArrivalBursty:
		burst := sc.BurstSize
		if burst < 1 {
			burst = defaultBurstSize
		}
		return func(i int) float64 {
			if i%burst == 0 {
				return mean * float64(burst)
			}
			return 0
		}
	case ArrivalConstant:
		return func(int) float64 { return mean }
	case ArrivalPoissonBurst:
		return poissonBurstGaps(sc, rng)
	case ArrivalDiurnal:
		return diurnalGaps(sc, rng)
	default: // ArrivalPoisson
		return func(int) float64 { return rng.Exp(mean) }
	}
}

// poissonBurstGaps draws inter-arrival gaps from an inhomogeneous
// Poisson process whose rate is piecewise constant over a repeating
// cycle: a burst phase of duration duty·period at factor·λ0, then a
// quiet phase at a rate chosen so the cycle-average rate is exactly
// λ0 = 1/D. Gaps are drawn by inversion of the cumulative hazard: a
// unit-exponential deviate is spent walking the rate profile from the
// current position in the cycle.
func poissonBurstGaps(sc Scenario, rng *stats.RNG) func(i int) float64 {
	factor := sc.BurstFactor
	if factor <= 0 {
		factor = defaultBurstFactor
	}
	duty := sc.BurstDuty
	if duty <= 0 || duty >= 1 {
		duty = defaultBurstDuty
	}
	// The quiet rate preserving the long-run mean must stay strictly
	// positive: at factor == 1/duty the quiet rate degenerates to
	// exactly zero and every gap drawn in a quiet phase must walk to
	// the next burst on a zero-hazard profile — a regime one rounding
	// error away from dividing by zero or stalling. Clamp strictly
	// below the degenerate point (quiet rate floored at quietRateFloor
	// of the base rate), which also keeps the long-run mean at D by
	// construction.
	if factor > (1-quietRateFloor*(1-duty))/duty {
		factor = (1 - quietRateFloor*(1-duty)) / duty
	}
	period := sc.BurstPeriod
	if period <= 0 {
		period = defaultBurstPeriodD * sc.MeanInterarrival
	}
	lambda0 := 1 / sc.MeanInterarrival
	burstLen := duty * period
	burstRate := factor * lambda0
	quietRate := (1 - duty*factor) / (1 - duty) * lambda0

	// t is the absolute time of the previous arrival, starting at the
	// first task's release; only the phase within the cycle matters.
	t := sc.FirstAt
	return func(int) float64 {
		hazard := rng.Exp(1) // unit-exponential deviate to spend
		start := t
		for {
			phase := math.Mod(t, period)
			rate, boundary := burstRate, burstLen
			if phase >= burstLen {
				rate, boundary = quietRate, period
			}
			span := boundary - phase
			if rate > 0 {
				if need := hazard / rate; need <= span {
					t += need
					return t - start
				}
				hazard -= span * rate
			}
			// Advance to the phase boundary (a zero rate — the
			// degenerate factor == 1/duty quiet phase — just skips to
			// the next burst). Guard against a floating-point no-op
			// when span is below t's ulp, which would loop forever.
			next := t + span
			if next <= t {
				next = math.Nextafter(t, math.Inf(1))
			}
			t = next
		}
	}
}

// diurnalGaps draws inter-arrival gaps from the sinusoidal diurnal
// process by thinning: candidate points arrive homogeneously at the
// peak rate λmax = (1+A)·λ0 and each is kept with probability
// λ(t)/λmax. Thinning is exact for any bounded intensity (no rate
// discretization, unlike the piecewise-constant burst profile) at the
// cost of rejected candidate draws — at most 1/(1−A/(1+A)) ≈ 2 draws
// per arrival for the default amplitude.
func diurnalGaps(sc Scenario, rng *stats.RNG) func(i int) float64 {
	amp := sc.DiurnalAmplitude
	if amp <= 0 || amp > 1 {
		amp = defaultDiurnalAmplitude
	}
	period := sc.DiurnalPeriod
	if period <= 0 {
		period = defaultDiurnalPeriodD * sc.MeanInterarrival
	}
	lambda0 := 1 / sc.MeanInterarrival
	lambdaMax := (1 + amp) * lambda0

	// t is the absolute time of the previous arrival; the sinusoid is
	// anchored at t = 0 so the same period always yields the same
	// day/night phases regardless of FirstAt.
	t := sc.FirstAt
	return func(int) float64 {
		start := t
		for {
			t += rng.Exp(1 / lambdaMax)
			rate := lambda0 * (1 + amp*math.Sin(2*math.Pi*t/period))
			if rng.Float64()*lambdaMax <= rate {
				return t - start
			}
		}
	}
}
