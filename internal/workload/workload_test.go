package workload

import (
	"math"
	"testing"

	"casched/internal/task"
)

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(Set1(100, 35, 7))
	b := MustGenerate(Set1(100, 35, 7))
	for i := range a.Tasks {
		if a.Tasks[i].Arrival != b.Tasks[i].Arrival ||
			a.Tasks[i].Spec.Variant != b.Tasks[i].Spec.Variant {
			t.Fatalf("generation not deterministic at task %d", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := MustGenerate(Set1(100, 35, 1))
	b := MustGenerate(Set1(100, 35, 2))
	same := 0
	for i := range a.Tasks {
		if a.Tasks[i].Arrival == b.Tasks[i].Arrival {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d identical arrivals across seeds", same)
	}
}

// TestSameTaskMixAcrossRates checks the paper's experimental design:
// "the same metatask is considered with different arrival dates" —
// changing D must preserve the task-type sequence.
func TestSameTaskMixAcrossRates(t *testing.T) {
	d35 := MustGenerate(Set1(200, 35, 11))
	d20 := MustGenerate(Set1(200, 20, 11))
	for i := range d35.Tasks {
		if d35.Tasks[i].Spec.Variant != d20.Tasks[i].Spec.Variant {
			t.Fatalf("task mix diverged at %d: %d vs %d", i,
				d35.Tasks[i].Spec.Variant, d20.Tasks[i].Spec.Variant)
		}
	}
}

func TestInterarrivalMean(t *testing.T) {
	mt := MustGenerate(Set1(5000, 35, 3))
	gaps := make([]float64, 0, mt.Len()-1)
	for i := 1; i < mt.Len(); i++ {
		gaps = append(gaps, mt.Tasks[i].Arrival-mt.Tasks[i-1].Arrival)
	}
	mean := 0.0
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	if math.Abs(mean-35) > 2 {
		t.Errorf("mean inter-arrival = %v, want ~35", mean)
	}
}

func TestUniformTaskMix(t *testing.T) {
	mt := MustGenerate(Set2(3000, 20, 5))
	counts := map[int]int{}
	for _, tk := range mt.Tasks {
		counts[tk.Spec.Variant]++
	}
	for _, p := range task.WasteCPUParams {
		c := counts[p]
		if c < 800 || c > 1200 {
			t.Errorf("variant %d count %d not near uniform 1000", p, c)
		}
	}
}

func TestGeneratedMetataskValidates(t *testing.T) {
	mt := MustGenerate(Set1(50, 20, 9))
	if err := mt.Validate(); err != nil {
		t.Error(err)
	}
	if mt.Len() != 50 {
		t.Errorf("Len = %d", mt.Len())
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := []Scenario{
		{Name: "n", Specs: task.MatmulSpecs(), N: 0, MeanInterarrival: 1},
		{Name: "specs", Specs: nil, N: 1, MeanInterarrival: 1},
		{Name: "d", Specs: task.MatmulSpecs(), N: 1, MeanInterarrival: 0},
		{Name: "first", Specs: task.MatmulSpecs(), N: 1, MeanInterarrival: 1, FirstAt: -1},
	}
	for _, sc := range bad {
		if _, err := Generate(sc); err == nil {
			t.Errorf("scenario %q accepted", sc.Name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate did not panic on invalid scenario")
		}
	}()
	MustGenerate(bad[0])
}

func TestFirstAt(t *testing.T) {
	sc := Set2(10, 20, 1)
	sc.FirstAt = 100
	mt := MustGenerate(sc)
	if mt.Tasks[0].Arrival != 100 {
		t.Errorf("first arrival = %v, want 100", mt.Tasks[0].Arrival)
	}
}
