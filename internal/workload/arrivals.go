package workload

import (
	"fmt"

	"casched/internal/stats"
)

// ArrivalProcess generates the inter-arrival gaps of a metatask. The
// paper uses Poisson arrivals; the alternatives probe how the
// heuristics respond to other traffic shapes (the tech report [2]
// explored several in simulation).
type ArrivalProcess int

const (
	// ArrivalPoisson draws exponential gaps with the scenario mean —
	// the paper's process.
	ArrivalPoisson ArrivalProcess = iota
	// ArrivalUniform draws gaps uniformly in [0.5·D, 1.5·D]: same mean,
	// far less variance.
	ArrivalUniform
	// ArrivalBursty releases tasks in bursts of BurstSize separated by
	// BurstSize·D: same long-run rate, maximal short-term contention.
	ArrivalBursty
	// ArrivalConstant spaces every gap exactly D apart.
	ArrivalConstant
)

// String returns the process name.
func (p ArrivalProcess) String() string {
	switch p {
	case ArrivalPoisson:
		return "poisson"
	case ArrivalUniform:
		return "uniform"
	case ArrivalBursty:
		return "bursty"
	case ArrivalConstant:
		return "constant"
	default:
		return fmt.Sprintf("ArrivalProcess(%d)", int(p))
	}
}

// defaultBurstSize is the burst length when a bursty scenario does not
// set one.
const defaultBurstSize = 5

// gapGenerator returns a function producing the i-th inter-arrival gap
// (called for i = 1..N-1).
func gapGenerator(p ArrivalProcess, mean float64, burst int, rng *stats.RNG) func(i int) float64 {
	switch p {
	case ArrivalUniform:
		return func(int) float64 { return mean * (0.5 + rng.Float64()) }
	case ArrivalBursty:
		if burst < 1 {
			burst = defaultBurstSize
		}
		return func(i int) float64 {
			if i%burst == 0 {
				return mean * float64(burst)
			}
			return 0
		}
	case ArrivalConstant:
		return func(int) float64 { return mean }
	default: // ArrivalPoisson
		return func(int) float64 { return rng.Exp(mean) }
	}
}
