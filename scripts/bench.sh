#!/usr/bin/env bash
# bench.sh — verification + benchmark run with a regression gate.
#
# Runs go vet and the race-enabled test suite, then the core benchmark
# set, writing results to benchmarks/latest.txt. When a committed
# baseline exists (benchmarks/baseline.txt), every benchmark present in
# both files is compared on ns/op and the script fails if any regresses
# by more than BENCH_MAX_REGRESSION_PCT percent (default 5).
#
# Environment:
#   BENCH_PATTERN             benchmarks to run (go test -bench regexp;
#                             default: the committed-baseline set)
#   BENCH_TIME                -benchtime value (default 1s)
#   BENCH_MAX_REGRESSION_PCT  allowed ns/op regression in percent
#                             (default 5; CI uses a loose 40 because
#                             hosted runners are noisy)
#   BENCH_REQUIRE_ALL=1       fail when a baseline benchmark is absent
#                             from the run (CI full runs; subset runs
#                             via BENCH_PATTERN only warn)
#   BENCH_SKIP_CHECKS=1       skip gofmt + vet + race tests (bench only)
#   BENCH_OUT                 benchmark output file (default
#                             benchmarks/latest.txt)
#
# The gate comparison is also written to benchmarks/gate-diff.txt so a
# failing CI run can upload both files as an artifact and hosted-runner
# noise can be triaged without re-running.
#
# Promote a reviewed latest.txt with scripts/bench-update.sh.
set -euo pipefail

cd "$(dirname "$0")/.."

PATTERN="${BENCH_PATTERN:-BenchmarkEvaluateAllLargeTestbed|BenchmarkHTMEvaluate|BenchmarkGridRun200|BenchmarkSchedulerDecisions|BenchmarkAgentSubmit|BenchmarkClusterSubmit|BenchmarkAssignSolve|BenchmarkFedSubmit}"
BENCH_TIME="${BENCH_TIME:-1s}"
MAX_PCT="${BENCH_MAX_REGRESSION_PCT:-5}"

if [[ "${BENCH_SKIP_CHECKS:-0}" != "1" ]]; then
    echo "==> gofmt -l"
    unformatted="$(gofmt -l .)"
    if [[ -n "${unformatted}" ]]; then
        echo "error: gofmt needed on:" >&2
        echo "${unformatted}" >&2
        exit 1
    fi
    echo "==> go vet ./..."
    go vet ./...
    echo "==> go test -race ./..."
    go test -race ./...
fi

OUT="${BENCH_OUT:-benchmarks/latest.txt}"
mkdir -p benchmarks
echo "==> go test -bench '${PATTERN}' -benchtime ${BENCH_TIME}"
go test -run '^$' -bench "${PATTERN}" -benchmem -benchtime "${BENCH_TIME}" . | tee "${OUT}"

if [[ ! -f benchmarks/baseline.txt ]]; then
    echo "==> no benchmarks/baseline.txt: skipping regression gate" \
         "(run scripts/bench-update.sh to create one)"
    exit 0
fi

echo "==> comparing against benchmarks/baseline.txt (max regression ${MAX_PCT}%)"
awk -v max="${MAX_PCT}" -v requireAll="${BENCH_REQUIRE_ALL:-0}" '
    # Collect "BenchmarkName  N  T ns/op" lines from both files. The
    # GOMAXPROCS suffix (-8 etc.) varies across machines; strip it so
    # a baseline taken elsewhere still matches.
    FNR == 1 { file++ }
    /^Benchmark/ && / ns\/op/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        for (i = 2; i <= NF; i++) {
            if ($(i) == "ns/op") { v = $(i-1); break }
        }
        if (file == 1) base[name] = v
        else latest[name] = v
    }
    END {
        status = 0
        matched = 0
        for (name in latest) {
            if (!(name in base)) {
                printf "NEW      %-60s %12.0f ns/op\n", name, latest[name]
                continue
            }
            matched++
            pct = (latest[name] - base[name]) / base[name] * 100
            tag = "ok"
            if (pct > max) { tag = "REGRESSED"; status = 1 }
            printf "%-8s %-60s %12.0f -> %12.0f ns/op (%+.1f%%)\n", \
                   tag, name, base[name], latest[name], pct
        }
        for (name in base) {
            if (!(name in latest)) {
                printf "MISSING  %-60s (in baseline, not in this run)\n", name
                if (requireAll) status = 1
            }
        }
        if (matched == 0) {
            print "error: no benchmark in the run matches the baseline; gate cannot compare" > "/dev/stderr"
            status = 1
        }
        exit status
    }
' benchmarks/baseline.txt "${OUT}" | tee benchmarks/gate-diff.txt
echo "==> benchmark gate passed"
