// Package live is the reproduction's "real environment": a NetSolve-
// like deployment in which the agent, the servers and the clients are
// separate concurrent components talking over real TCP connections
// (net/rpc with gob encoding), and tasks execute in scaled wall-clock
// time under an explicit processor-sharing executor.
//
// Unlike the discrete-event simulator (internal/grid), nothing here is
// synchronized on a global virtual clock: requests race, load reports
// lag, the executor advances in quanta, and goroutine scheduling adds
// jitter — the same error sources that separate the paper's real
// completion dates from the HTM's simulated ones in Table 1.
package live

import (
	"sync"
	"time"
)

// Clock maps wall-clock time to experiment (virtual) seconds with a
// configurable speed-up, so a 300-virtual-second metatask can run in
// under a second of wall time.
type Clock struct {
	start time.Time
	scale float64 // virtual seconds per wall second

	mu     sync.Mutex
	frozen bool
	at     float64
}

// NewClock starts a clock at virtual time zero. scale is the number of
// virtual seconds elapsing per wall second; 1 runs in real time, 1000
// compresses 1000 experiment seconds into one wall second.
func NewClock(scale float64) *Clock {
	if scale <= 0 {
		scale = 1
	}
	return &Clock{start: time.Now(), scale: scale}
}

// Scale returns the virtual-per-wall-second factor.
func (c *Clock) Scale() float64 { return c.scale }

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.frozen {
		return c.at
	}
	return time.Since(c.start).Seconds() * c.scale
}

// SleepUntil blocks until virtual time v (returns immediately if v has
// passed).
func (c *Clock) SleepUntil(v float64) {
	for {
		now := c.Now()
		if now >= v {
			return
		}
		wall := time.Duration((v - now) / c.scale * float64(time.Second))
		if wall < 50*time.Microsecond {
			wall = 50 * time.Microsecond
		}
		time.Sleep(wall)
	}
}

// Sleep blocks for d virtual seconds.
func (c *Clock) Sleep(d float64) { c.SleepUntil(c.Now() + d) }

// Freeze pins Now at its current value (test helper).
func (c *Clock) Freeze() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.frozen {
		c.at = time.Since(c.start).Seconds() * c.scale
		c.frozen = true
	}
}
