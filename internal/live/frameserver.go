package live

// Server half of the framed member wire: protocol sniffing on accepted
// connections and the per-connection framed dispatch loop. See
// frame.go for the wire format.

import (
	"io"
	"net"
)

// prefixConn replays sniffed bytes before reading from the underlying
// connection, so the gob path sees an untouched stream after the
// one-byte protocol sniff.
type prefixConn struct {
	net.Conn
	prefix []byte
}

func (p *prefixConn) Read(b []byte) (int, error) {
	if len(p.prefix) > 0 {
		n := copy(b, p.prefix)
		p.prefix = p.prefix[n:]
		return n, nil
	}
	return p.Conn.Read(b)
}

// serveConn sniffs the first byte of an accepted connection: the
// framed handshake sentinel 0x00 — never a legal first byte of a gob
// request stream — selects the framed member wire; anything else is
// replayed into the legacy net/rpc (gob) server.
func (a *Agent) serveConn(conn net.Conn) {
	var first [1]byte
	if _, err := io.ReadFull(conn, first[:]); err != nil {
		return
	}
	if first[0] == frameSentinel {
		a.serveFramed(conn)
		return
	}
	a.srv.ServeConn(&prefixConn{Conn: conn, prefix: first[:]})
}

// serveFramed validates and echoes the handshake (the sentinel byte is
// already consumed), then serves frames sequentially: one reused read
// buffer, one reused write buffer, one interning table per connection,
// so the steady decision stream stops allocating once the problem and
// server vocabulary has been seen. Sequential handling still yields
// wire pipelining — the client keeps a window of requests in flight
// and the member's core serializes decisions on its own lock anyway.
// Any malformed frame closes the connection.
func (a *Agent) serveFramed(conn net.Conn) {
	var hs [len(frameHandshake)]byte
	hs[0] = frameSentinel
	if _, err := io.ReadFull(conn, hs[1:]); err != nil || hs != frameHandshake {
		return
	}
	if _, err := conn.Write(hs[:]); err != nil {
		return
	}
	svc := &MemberService{a}
	var (
		rbuf []byte
		wbuf []byte
		in   = make(intern)
		h    = frameHandler{svc: svc}
	)
	for {
		typ, corr, payload, err := readFrame(conn, &rbuf)
		if err != nil {
			return
		}
		wbuf, err = h.handle(wbuf[:0], typ, corr, payload, in)
		if err != nil {
			return
		}
		if _, err := conn.Write(wbuf); err != nil {
			return
		}
	}
}

// frameHandler owns the per-connection reply scratch: request and
// reply structs are reused across frames (reset before each decode)
// so the hot Evaluate/Commit/Submit handlers do not allocate per call.
type frameHandler struct {
	svc *MemberService

	task   MemberTaskArgs
	commit MemberCommitArgs
	eval   MemberEvalReply
	dec    MemberDecisionReply
	batch  MemberBatchArgs
	brep   MemberBatchReply
	sum    MemberSummaryReply
	relay  MemberRelayArgs
	rrep   MemberRelayReply
}

// errProtocol marks a frame the handler cannot decode or a message
// type it does not know; the connection is torn down rather than
// answered.
type protocolError string

func (e protocolError) Error() string { return string(e) }

// handle decodes one request frame, runs the matching MemberService
// handler and appends the reply frame (or an msgError frame for an
// application-level failure) to b.
func (h *frameHandler) handle(b []byte, typ byte, corr uint64, payload []byte, in intern) ([]byte, error) {
	r := wireReader{buf: payload, in: in}
	start := len(b)
	switch typ {
	case msgEvaluate:
		h.task = MemberTaskArgs{}
		r.memberTaskArgs(&h.task)
		if !r.done() {
			return nil, protocolError("live: malformed Evaluate frame")
		}
		h.eval = MemberEvalReply{}
		if err := h.svc.Evaluate(h.task, &h.eval); err != nil {
			return appendErrorFrame(b, corr, err), nil
		}
		b = beginFrame(b, typ|msgReplyBit, corr)
		b = appendMemberEvalReply(b, &h.eval)
	case msgCommit:
		h.commit = MemberCommitArgs{}
		r.memberCommitArgs(&h.commit)
		if !r.done() {
			return nil, protocolError("live: malformed Commit frame")
		}
		h.dec = MemberDecisionReply{}
		if err := h.svc.Commit(h.commit, &h.dec); err != nil {
			return appendErrorFrame(b, corr, err), nil
		}
		b = beginFrame(b, typ|msgReplyBit, corr)
		b = appendMemberDecisionReply(b, &h.dec)
	case msgSubmit:
		h.task = MemberTaskArgs{}
		r.memberTaskArgs(&h.task)
		if !r.done() {
			return nil, protocolError("live: malformed Submit frame")
		}
		h.dec = MemberDecisionReply{}
		if err := h.svc.Submit(h.task, &h.dec); err != nil {
			return appendErrorFrame(b, corr, err), nil
		}
		b = beginFrame(b, typ|msgReplyBit, corr)
		b = appendMemberDecisionReply(b, &h.dec)
	case msgSubmitBatch:
		h.batch = MemberBatchArgs{}
		r.memberBatchArgs(&h.batch)
		if !r.done() {
			return nil, protocolError("live: malformed SubmitBatch frame")
		}
		h.brep = MemberBatchReply{}
		if err := h.svc.SubmitBatch(h.batch, &h.brep); err != nil {
			return appendErrorFrame(b, corr, err), nil
		}
		b = beginFrame(b, typ|msgReplyBit, corr)
		b = appendMemberBatchReply(b, &h.brep)
	case msgSummary:
		if !r.done() {
			return nil, protocolError("live: malformed Summary frame")
		}
		h.sum = MemberSummaryReply{}
		if err := h.svc.Summary(Ack{}, &h.sum); err != nil {
			return appendErrorFrame(b, corr, err), nil
		}
		b = beginFrame(b, typ|msgReplyBit, corr)
		b = appendMemberSummaryReply(b, &h.sum)
	case msgRelay:
		h.relay = MemberRelayArgs{}
		r.memberRelayArgs(&h.relay)
		if !r.done() {
			return nil, protocolError("live: malformed Relay frame")
		}
		h.rrep = MemberRelayReply{}
		if err := h.svc.Relay(h.relay, &h.rrep); err != nil {
			return appendErrorFrame(b, corr, err), nil
		}
		b = beginFrame(b, typ|msgReplyBit, corr)
		b = appendMemberRelayReply(b, &h.rrep)
	default:
		return nil, protocolError("live: unknown frame type")
	}
	return endFrame(b, start), nil
}

// appendErrorFrame answers an application error as a delivered
// msgError frame carrying the error string.
func appendErrorFrame(b []byte, corr uint64, err error) []byte {
	start := len(b)
	b = beginFrame(b, msgError, corr)
	b = append(b, err.Error()...)
	return endFrame(b, start)
}
