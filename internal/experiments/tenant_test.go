package experiments

import (
	"strings"
	"testing"
)

// TestTenantStudyClaims pins the tentpole's measured claims on the
// committed study configuration (the one rendered into
// benchmarks/tenant-study.txt): under saturation each tenant's served
// work lands within 5% of its weighted share, and admission turns a
// strictly lower deadline-miss rate than running open-loop.
func TestTenantStudyClaims(t *testing.T) {
	r, err := TenantStudy(TenantStudyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Shares) != 3 {
		t.Fatalf("share rows = %d, want 3", len(r.Shares))
	}
	if r.SaturatedPrefix < 100 {
		t.Fatalf("saturated prefix %d too short to measure shares", r.SaturatedPrefix)
	}
	for _, s := range r.Shares {
		if s.GotShare <= 0 {
			t.Errorf("tenant %s served nothing", s.Tenant)
		}
	}
	// The acceptance bar: shares within 5 points of the weights while
	// every tenant is backlogged.
	if r.MaxShareError > 0.05 {
		t.Errorf("max share error %.3f exceeds 0.05; shares = %+v", r.MaxShareError, r.Shares)
	}
	// Admission must shed something on this overloaded workload and
	// strictly beat open-loop on deadline misses.
	if r.OnSheds == 0 {
		t.Error("admission shed nothing on an overloaded workload")
	}
	if r.OnMissRate >= r.OffMissRate {
		t.Errorf("admission-on miss rate %.3f not strictly below admission-off %.3f",
			r.OnMissRate, r.OffMissRate)
	}
	if r.OffSumFlow <= 0 || r.OnSumFlow <= 0 {
		t.Errorf("degenerate sum-flows: off=%.0f on=%.0f", r.OffSumFlow, r.OnSumFlow)
	}

	out := FormatTenantStudy(r)
	for _, want := range []string{"fair shares", "max share error", "deadline admission", "miss rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted study lacks %q:\n%s", want, out)
		}
	}
}

// TestTenantStudyDefaults pins the zero-value config resolution so the
// committed study stays reproducible.
func TestTenantStudyDefaults(t *testing.T) {
	var cfg TenantStudyConfig
	cfg.defaults()
	if cfg.N != 420 || cfg.BurstN != 240 || cfg.BurstD != 6 || cfg.Seed != 11 ||
		cfg.Replicas != 2 || cfg.DeadlineSlack != 4 || len(cfg.Shares) != 3 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
}
