package platform

import "testing"

func TestTable2Verbatim(t *testing.T) {
	cases := []struct {
		name  string
		speed int
		mem   float64
		swap  float64
	}{
		{"chamagne", 330, 512, 134},
		{"cabestan", 500, 192, 400},
		{"artimon", 1700, 512, 1024},
		{"pulney", 1400, 256, 533},
		{"valette", 400, 128, 126},
		{"spinnaker", 2000, 1024, 2048},
	}
	for _, c := range cases {
		m := MustGet(c.name)
		if m.SpeedMHz != c.speed || m.MemoryMB != c.mem || m.SwapMB != c.swap {
			t.Errorf("%s = %+v, want speed=%d mem=%v swap=%v",
				c.name, m, c.speed, c.mem, c.swap)
		}
		if m.Role != RoleServer {
			t.Errorf("%s role = %v", c.name, m.Role)
		}
	}
}

func TestAgentAndClientRoles(t *testing.T) {
	if MustGet(AgentHost).Role != RoleAgent {
		t.Error("xrousse must be the agent")
	}
	if MustGet(ClientHost).Role != RoleClient {
		t.Error("zanzibar must be the client")
	}
}

func TestTotalMemory(t *testing.T) {
	if got := MustGet("pulney").TotalMemoryMB(); got != 789 {
		t.Errorf("pulney total memory = %v, want 789", got)
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nosuch"); err == nil {
		t.Error("unknown machine accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGet did not panic")
		}
	}()
	MustGet("nosuch")
}

func TestServerSets(t *testing.T) {
	for _, set := range [][]string{Set1Servers, Set2Servers} {
		ms, err := Servers(set)
		if err != nil {
			t.Fatalf("Servers(%v): %v", set, err)
		}
		if len(ms) != 4 {
			t.Errorf("server set %v has %d machines", set, len(ms))
		}
	}
	if _, err := Servers([]string{"xrousse"}); err == nil {
		t.Error("agent accepted as server")
	}
	if _, err := Servers([]string{"nosuch"}); err == nil {
		t.Error("unknown server accepted")
	}
}

func TestRoleString(t *testing.T) {
	if RoleServer.String() != "server" || RoleAgent.String() != "agent" ||
		RoleClient.String() != "client" {
		t.Error("role names wrong")
	}
	if Role(9).String() != "Role(9)" {
		t.Error("unknown role formatting wrong")
	}
}
