// The federation-chaos family: the self-healing machinery exercised
// end to end. Four sub-scenarios — member flap (kill, evict, rejoin),
// summary-channel partition with and without the live relay, a slow
// member degrading past its transport budget, and a leader kill
// mid-burst under replicated HA over real TCP — each asserting the
// invariants production operation depends on: every task placed
// exactly once, failures detected and healed, degradation bounded.

package scenario

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"casched/internal/agent"
	"casched/internal/cluster"
	"casched/internal/fed"
	"casched/internal/live"
	"casched/internal/sched"
	"casched/internal/task"
	"casched/internal/workload"
)

// FedChaosConfig parameterizes the federation-chaos family. Zero
// values select the committed defaults
// (benchmarks/scenario-fedchaos.txt).
type FedChaosConfig struct {
	// N is the metatask size of the in-process sub-scenarios
	// (default 160).
	N int
	// D is the mean inter-arrival in seconds (default 6).
	D float64
	// Seed drives generation, member decisions and routing
	// (default 11).
	Seed uint64
	// Heuristic is the objective (default HMCT).
	Heuristic string
	// Members is the federation width (default 4).
	Members int
	// Replicas scales the Table 2 second-set testbed (default 2:
	// eight servers, two per member).
	Replicas int
	// MaxFailures is the consecutive-failure eviction threshold for
	// the flap and slow sub-scenarios (default 2).
	MaxFailures int
	// SkipLeaderKill skips the real-TCP HA sub-scenario (sockets,
	// scaled wall time).
	SkipLeaderKill bool
}

func (c *FedChaosConfig) defaults() {
	if c.N == 0 {
		c.N = 160
	}
	if c.D == 0 {
		c.D = 6
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	if c.Heuristic == "" {
		c.Heuristic = "HMCT"
	}
	if c.Members == 0 {
		c.Members = 4
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.MaxFailures == 0 {
		c.MaxFailures = 2
	}
}

// FlapResult measures the member flap sub-scenario: one member killed
// mid-stream, detected, evicted, revived and readmitted.
type FlapResult struct {
	// N tasks submitted; Placed distinct jobs the member cores
	// committed; Duplicates jobs committed more than once.
	N, Placed, Duplicates int
	// EvictionObserved: the victim was evicted while down.
	// ReadmissionObserved: it was live again after revival.
	EvictionObserved, ReadmissionObserved bool
	// CleanSumFlow / ChaosSumFlow compare the identical workload with
	// and without the outage; Ratio is chaos over clean.
	CleanSumFlow, ChaosSumFlow, Ratio float64
}

// PartitionResult measures the summary-partition sub-scenario: every
// member's summary channel severed mid-stream, with routing degrading
// to frozen power-of-two-choices (relay off) or near-fresh
// relay-priced placement (relay on).
type PartitionResult struct {
	// Sum-flow with summaries flowing (fresh fan-out), severed with
	// relay off (frozen p2c), and severed with the relay on.
	FreshSumFlow, FrozenSumFlow, RelaySumFlow float64
	// FrozenRatio / RelayRatio are over fresh.
	FrozenRatio, RelayRatio float64
	// DegradedObserved: members were actually stale post-sever.
	DegradedObserved bool
}

// SlowResult measures the slow-member sub-scenario: one member's
// transport latency raised first below, then past the per-call
// budget.
type SlowResult struct {
	N, Placed, Duplicates int
	// SlowEvicted: the member whose latency exceeded the budget was
	// evicted. DroppedOps counts its calls failed by injection.
	SlowEvicted bool
	DroppedOps  int
}

// LeaderKillResult reports the HA leader-kill sub-scenario (real TCP:
// three dispatcher replicas, two members, four servers, the primary
// killed mid-metatask).
type LeaderKillResult struct {
	// Ran is false when the sub-scenario was skipped.
	Ran bool
	// N tasks driven; Completed tasks that finished across the
	// failover; Duplicates jobs placed more than once.
	N, Completed, Duplicates int
	// FailoverObserved: a standby held leadership afterwards, at
	// TermAtLeastTwo (a later election than the first).
	FailoverObserved, TermAtLeastTwo bool
	// Err is the failure note when the e2e could not complete.
	Err string
}

// FedChaosResult holds the family's measurements.
type FedChaosResult struct {
	Config     FedChaosConfig
	Flap       FlapResult
	Partition  PartitionResult
	Slow       SlowResult
	LeaderKill LeaderKillResult
}

// FedChaos runs the family.
func FedChaos(cfg FedChaosConfig) (*FedChaosResult, error) {
	cfg.defaults()
	res := &FedChaosResult{Config: cfg}

	mt, err := workload.Generate(workload.Set2(cfg.N, cfg.D, cfg.Seed))
	if err != nil {
		return nil, err
	}
	names, rewrite := testbed(cfg.Replicas)
	for _, t := range mt.Tasks {
		t.Spec = rewrite(t.Spec)
	}

	if res.Flap, err = runFlap(cfg, mt, names); err != nil {
		return nil, err
	}
	if res.Partition, err = runPartition(cfg, mt, names); err != nil {
		return nil, err
	}
	if res.Slow, err = runSlow(cfg, mt, names); err != nil {
		return nil, err
	}
	if !cfg.SkipLeaderKill {
		res.LeaderKill = runLeaderKill()
	}
	return res, nil
}

// chaosHarness holds one federation over chaos-wrapped in-process
// members, with a fake summary clock and ground-truth decision
// counting at the member cores.
type chaosHarness struct {
	d     *fed.Dispatcher
	now   time.Time
	mu    sync.Mutex
	count map[int]int
}

type chaosSettings struct {
	relay       bool
	staleAfter  time.Duration
	maxFailures int
	probe       time.Duration
}

func newChaosHarness(cfg FedChaosConfig, hs chaosSettings, inj fed.Injector, names []string) (*chaosHarness, error) {
	h := &chaosHarness{now: time.Unix(0, 0), count: make(map[int]int)}
	members := make([]fed.Member, cfg.Members)
	for i := range members {
		s, err := sched.ByName(cfg.Heuristic)
		if err != nil {
			return nil, err
		}
		core, err := agent.New(agent.Config{Scheduler: s, Seed: cfg.Seed, Relay: hs.relay})
		if err != nil {
			return nil, err
		}
		core.Subscribe(func(ev agent.Event) {
			if ev.Kind != agent.EventDecision {
				return
			}
			h.mu.Lock()
			h.count[ev.JobID]++
			h.mu.Unlock()
		})
		var m fed.Member = fed.NewInProcess(fmt.Sprintf("m%d", i), core)
		if inj != nil {
			m = fed.Chaos(m, inj)
		}
		members[i] = m
	}
	d, err := fed.NewWithMembers(fed.Config{
		Heuristic:     cfg.Heuristic,
		Seed:          cfg.Seed,
		Policy:        cluster.LeastLoaded(),
		StaleAfter:    hs.staleAfter,
		MaxFailures:   hs.maxFailures,
		ProbeInterval: hs.probe,
		Relay:         hs.relay,
		Now:           func() time.Time { return h.now },
	}, members)
	if err != nil {
		return nil, err
	}
	for _, n := range names {
		if err := d.AddServer(n); err != nil {
			return nil, err
		}
	}
	h.d = d
	return h, nil
}

// drive submits the metatask task by task, advancing the summary
// clock one second per submission and running hook(i) before each.
func (h *chaosHarness) drive(mt *task.Metatask, hook func(i int)) error {
	for i, t := range mt.Tasks {
		if hook != nil {
			hook(i)
		}
		req := agent.Request{
			JobID: t.ID, TaskID: t.ID, Spec: t.Spec,
			Arrival: t.Arrival, Submitted: t.Arrival,
			Tenant: t.Tenant, Deadline: t.Deadline,
		}
		if _, err := h.d.Submit(req); err != nil {
			return fmt.Errorf("fedchaos: submit %d: %w", t.ID, err)
		}
		h.now = h.now.Add(time.Second)
	}
	return nil
}

func (h *chaosHarness) placed() (distinct, duplicates int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, n := range h.count {
		distinct++
		if n > 1 {
			duplicates++
		}
	}
	return distinct, duplicates
}

func memberEvicted(d *fed.Dispatcher, name string) bool {
	for _, mi := range d.Members() {
		if mi.Name == name {
			return mi.Evicted
		}
	}
	return false
}

func anyStale(d *fed.Dispatcher) bool {
	for _, mi := range d.Members() {
		if !mi.Evicted && !mi.Fresh {
			return true
		}
	}
	return false
}

// runFlap kills one member at 40% of the stream, expects eviction,
// revives it at 70% and expects readmission — with every task placed
// exactly once and the outage's sum-flow cost bounded against the
// identical clean run.
func runFlap(cfg FedChaosConfig, mt *task.Metatask, names []string) (FlapResult, error) {
	res := FlapResult{N: mt.Len()}
	settings := chaosSettings{
		staleAfter:  time.Hour,
		maxFailures: cfg.MaxFailures,
		probe:       time.Second,
	}

	clean, err := newChaosHarness(cfg, settings, nil, names)
	if err != nil {
		return res, err
	}
	if err := clean.drive(mt, nil); err != nil {
		return res, err
	}
	res.CleanSumFlow = sumFlowOf(clean.d, mt)

	inj := fed.NewScriptInjector(0)
	h, err := newChaosHarness(cfg, settings, inj, names)
	if err != nil {
		return res, err
	}
	const victim = "m1"
	killAt, reviveAt := 2*mt.Len()/5, 7*mt.Len()/10
	err = h.drive(mt, func(i int) {
		switch i {
		case killAt:
			inj.Kill(victim)
		case reviveAt:
			res.EvictionObserved = memberEvicted(h.d, victim)
			inj.Revive(victim)
			// The probe clock must pass ProbeInterval before the next
			// refresh readmits the revived member.
			h.now = h.now.Add(2 * time.Second)
			h.d.RefreshSummaries()
		}
	})
	if err != nil {
		return res, err
	}
	res.ReadmissionObserved = !memberEvicted(h.d, victim)
	res.Placed, res.Duplicates = h.placed()
	res.ChaosSumFlow = sumFlowOf(h.d, mt)
	if res.CleanSumFlow > 0 {
		res.Ratio = res.ChaosSumFlow / res.CleanSumFlow
	}
	return res, nil
}

// runPartition severs every member's summary channel at 10% of the
// stream and compares fresh fan-out (no sever) against frozen
// power-of-two-choices (relay off) and relay-priced degraded routing
// (relay on, event channel intact).
func runPartition(cfg FedChaosConfig, mt *task.Metatask, names []string) (PartitionResult, error) {
	var res PartitionResult
	severAt := mt.Len() / 10
	run := func(relay, sever bool) (float64, bool, error) {
		inj := fed.NewScriptInjector(0)
		h, err := newChaosHarness(cfg, chaosSettings{
			relay:      relay,
			staleAfter: time.Nanosecond,
			// Summary-fetch failures must not evict: the members are
			// alive and reachable, only the gossip channel is cut.
			maxFailures: 1 << 30,
			probe:       time.Hour,
		}, inj, names)
		if err != nil {
			return 0, false, err
		}
		err = h.drive(mt, func(i int) {
			if sever && i == severAt {
				for m := 0; m < cfg.Members; m++ {
					inj.Sever(fmt.Sprintf("m%d", m), fed.OpSummary)
				}
			}
		})
		if err != nil {
			return 0, false, err
		}
		return sumFlowOf(h.d, mt), anyStale(h.d), nil
	}

	fresh, _, err := run(false, false)
	if err != nil {
		return res, err
	}
	frozen, stale, err := run(false, true)
	if err != nil {
		return res, err
	}
	res.DegradedObserved = stale
	relay, _, err := run(true, true)
	if err != nil {
		return res, err
	}
	res.FreshSumFlow, res.FrozenSumFlow, res.RelaySumFlow = fresh, frozen, relay
	if fresh > 0 {
		res.FrozenRatio = frozen / fresh
		res.RelayRatio = relay / fresh
	}
	return res, nil
}

// runSlow raises one member's injected transport latency first below
// the per-call budget (real delay, still correct), then past it
// (fails like a dial timeout) — the member must be evicted and every
// task still placed exactly once.
func runSlow(cfg FedChaosConfig, mt *task.Metatask, names []string) (SlowResult, error) {
	res := SlowResult{N: mt.Len()}
	const budget = 50 * time.Millisecond
	inj := fed.NewScriptInjector(budget)
	h, err := newChaosHarness(cfg, chaosSettings{
		staleAfter:  time.Hour,
		maxFailures: cfg.MaxFailures,
		probe:       time.Hour,
	}, inj, names)
	if err != nil {
		return res, err
	}
	const victim = "m2"
	slowAt, brokenAt := mt.Len()/3, mt.Len()/2
	err = h.drive(mt, func(i int) {
		switch i {
		case slowAt:
			inj.SetLatency(victim, 200*time.Microsecond)
		case brokenAt:
			inj.SetLatency(victim, budget)
		}
	})
	if err != nil {
		return res, err
	}
	res.SlowEvicted = memberEvicted(h.d, victim)
	res.Placed, res.Duplicates = h.placed()
	res.DroppedOps = inj.Dropped(victim)
	return res, nil
}

// runLeaderKill is the real-TCP HA sub-scenario: three dispatcher
// replicas under leader election, two members, four servers, the
// primary killed once enough of the metatask is in flight. The
// metatask must complete through the surviving standby with no job
// placed twice. Non-fatal: failures are reported in the result.
func runLeaderKill() LeaderKillResult {
	res := LeaderKillResult{N: 24}
	fail := func(format string, a ...any) LeaderKillResult {
		res.Err = fmt.Sprintf(format, a...)
		return res
	}
	clock := live.NewClock(400)

	newDispatcher := func(id string, standby bool) (*fed.Server, error) {
		return fed.StartServer(fed.ServerConfig{
			Heuristic:       "HMCT",
			Policy:          cluster.LeastLoaded(),
			Clock:           clock,
			Seed:            7,
			Timeout:         time.Second,
			SummaryInterval: 50 * time.Millisecond,
			StaleAfter:      2 * time.Second,
			MaxFailures:     3,
			Relay:           true,
			RelayInterval:   25 * time.Millisecond,
			HA: &fed.HAConfig{
				ID:        id,
				Lease:     400 * time.Millisecond,
				Heartbeat: 100 * time.Millisecond,
				Standby:   standby,
			},
		})
	}
	fsA, err := newDispatcher("da", false)
	if err != nil {
		return fail("dispatcher da: %v", err)
	}
	defer fsA.Close()
	fsB, err := newDispatcher("db", true)
	if err != nil {
		return fail("dispatcher db: %v", err)
	}
	defer fsB.Close()
	fsC, err := newDispatcher("dc", true)
	if err != nil {
		return fail("dispatcher dc: %v", err)
	}
	defer fsC.Close()
	replicas := map[string]*fed.Server{"da": fsA, "db": fsB, "dc": fsC}
	for id, fs := range replicas {
		peers := map[string]string{}
		for pid, p := range replicas {
			if pid != id {
				peers[pid] = p.Addr()
			}
		}
		fs.SetHAPeers(peers)
	}
	addrList := fsA.Addr() + "," + fsB.Addr() + "," + fsC.Addr()

	waitFor := func(timeout time.Duration, ok func() bool) bool {
		deadline := time.Now().Add(timeout)
		for time.Now().Before(deadline) {
			if ok() {
				return true
			}
			time.Sleep(20 * time.Millisecond)
		}
		return false
	}
	if !waitFor(10*time.Second, func() bool { return fsA.HAStatus().IsLeader }) {
		return fail("primary never won the first election")
	}

	// Ground-truth duplicate detection at the member cores; the leader
	// dies once enough of the metatask is in flight.
	var decMu sync.Mutex
	decCount := map[int]int{}
	killCh := make(chan struct{})
	var killOnce sync.Once
	onEvent := func(ev agent.Event) {
		if ev.Kind != agent.EventDecision {
			return
		}
		decMu.Lock()
		decCount[ev.JobID]++
		if len(decCount) >= 6 {
			killOnce.Do(func() { close(killCh) })
		}
		decMu.Unlock()
	}
	for _, name := range []string{"m1", "m2"} {
		s, err := sched.ByName("HMCT")
		if err != nil {
			return fail("scheduler: %v", err)
		}
		m, err := live.StartAgent(live.AgentConfig{
			Scheduler: s,
			Clock:     clock,
			Seed:      7,
			Join:      addrList,
			Name:      name,
		})
		if err != nil {
			return fail("member %s: %v", name, err)
		}
		defer m.Close()
		m.Core().Subscribe(onEvent)
	}
	for _, name := range []string{"artimon", "cabestan", "spinnaker", "valette"} {
		srv, err := live.StartServer(live.ServerConfig{
			Name:      name,
			AgentAddr: addrList,
			Clock:     clock,
		})
		if err != nil {
			return fail("server %s: %v", name, err)
		}
		defer srv.Close()
	}

	go func() {
		<-killCh
		fsA.Close()
	}()

	mt, err := workload.Generate(workload.Set2(24, 4, 5))
	if err != nil {
		return fail("workload: %v", err)
	}
	results, err := live.RunMetatask(addrList, mt, clock)
	if err != nil {
		return fail("metatask across failover: %v", err)
	}
	res.Ran = true
	select {
	case <-killCh:
	default:
		return fail("metatask finished before the leader was killed")
	}
	for _, r := range results {
		if r.Completed {
			res.Completed++
		}
	}
	decMu.Lock()
	for _, n := range decCount {
		if n > 1 {
			res.Duplicates++
		}
	}
	decMu.Unlock()

	var leader *fed.Server
	if !waitFor(15*time.Second, func() bool {
		for _, fs := range []*fed.Server{fsB, fsC} {
			if fs.HAStatus().IsLeader {
				leader = fs
				return true
			}
		}
		return false
	}) {
		return fail("no standby took over after the leader died")
	}
	res.FailoverObserved = true
	res.TermAtLeastTwo = leader.HAStatus().Term >= 2
	return res
}

// FormatFedChaos renders the family as a small report.
func FormatFedChaos(r *FedChaosResult) string {
	var b strings.Builder
	c := r.Config
	fmt.Fprintf(&b, "scenario: federation chaos — %s, poisson set 2, N=%d D=%gs, %d members / %d servers, seed %d, max-failures %d\n",
		c.Heuristic, c.N, c.D, c.Members, 4*c.Replicas, c.Seed, c.MaxFailures)
	f := r.Flap
	fmt.Fprintf(&b, "\nflap (kill m1 at 40%%, revive at 70%%):\n")
	fmt.Fprintf(&b, "  placed %d/%d, duplicates %d, evicted while down %v, readmitted after revival %v\n",
		f.Placed, f.N, f.Duplicates, f.EvictionObserved, f.ReadmissionObserved)
	fmt.Fprintf(&b, "  sum-flow clean %.0f, with outage %.0f (ratio %.3f)\n",
		f.CleanSumFlow, f.ChaosSumFlow, f.Ratio)
	p := r.Partition
	fmt.Fprintf(&b, "\npartition (summary channel severed on every member at 10%%):\n")
	fmt.Fprintf(&b, "  sum-flow fresh %.0f, frozen p2c %.0f (%.3f×), relay degraded %.0f (%.3f×), stale observed %v\n",
		p.FreshSumFlow, p.FrozenSumFlow, p.FrozenRatio, p.RelaySumFlow, p.RelayRatio, p.DegradedObserved)
	s := r.Slow
	fmt.Fprintf(&b, "\nslow member (m2: 200µs at 33%%, ≥budget at 50%%):\n")
	fmt.Fprintf(&b, "  placed %d/%d, duplicates %d, evicted %v, injected drops %d\n",
		s.Placed, s.N, s.Duplicates, s.SlowEvicted, s.DroppedOps)
	lk := r.LeaderKill
	fmt.Fprintf(&b, "\nleader kill (real TCP, 3 HA replicas, primary killed mid-metatask):\n")
	switch {
	case !lk.Ran && lk.Err == "":
		fmt.Fprintf(&b, "  skipped\n")
	case lk.Err != "":
		fmt.Fprintf(&b, "  FAILED: %s\n", lk.Err)
	default:
		fmt.Fprintf(&b, "  completed %d/%d, duplicates %d, standby took over %v, term >= 2 %v\n",
			lk.Completed, lk.N, lk.Duplicates, lk.FailoverObserved, lk.TermAtLeastTwo)
	}
	fmt.Fprintf(&b, "\nclaims: every submitted task is placed exactly once through kill, partition,\n")
	fmt.Fprintf(&b, "slowdown and leader failover; dead and slow members are evicted and revived\n")
	fmt.Fprintf(&b, "members readmitted; the relay keeps degraded routing no worse than frozen p2c.\n")
	return b.String()
}
