package fair

// TokenBucket is the intake rate limiter: capacity Burst tokens,
// refilled at Rate tokens per experiment second, one token per
// admitted task. Time flows through the Take argument (task arrival
// dates), so the limiter is deterministic under replay and shared
// between simulated and live drivers. Not safe for concurrent use —
// callers serialize under their own lock.
type TokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   float64
	primed bool
}

// NewTokenBucket returns a bucket admitting a sustained rate of rate
// tasks per experiment second with bursts of up to burst tasks. A
// non-positive burst defaults to max(rate, 1) — at least one task can
// always be tried. The bucket starts full.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if burst <= 0 {
		burst = rate
		if burst < 1 {
			burst = 1
		}
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// Take advances the bucket to experiment time now and consumes one
// token if available, reporting whether the task is admitted. Time
// moving backwards (out-of-order arrivals) refills nothing but still
// consumes.
func (b *TokenBucket) Take(now float64) bool {
	if !b.primed {
		b.last, b.primed = now, true
	}
	if dt := now - b.last; dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens returns the current token balance (diagnostics, tests).
func (b *TokenBucket) Tokens() float64 { return b.tokens }
