package htm

import (
	"math"
	"testing"
	"testing/quick"

	"casched/internal/stats"
	"casched/internal/task"
)

// randomSpec builds a spec with pseudo-random costs on both servers.
func randomSpec(rng *stats.RNG) *task.Spec {
	cost := func() task.Cost {
		return task.Cost{
			Input:   float64(rng.Intn(10)),
			Compute: float64(rng.Intn(200) + 1),
			Output:  float64(rng.Intn(5)),
		}
	}
	return &task.Spec{Problem: "p", Variant: 1, CostOn: map[string]task.Cost{
		"s1": cost(),
		"s2": cost(),
	}}
}

// TestPropertyEvaluateMatchesPlace: the completion Evaluate predicts
// for a candidate equals the projection obtained after actually
// committing the placement — evaluation is a faithful dry run.
func TestPropertyEvaluateMatchesPlace(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := stats.NewRNG(seed)
		n := int(nRaw%8) + 1
		build := func() *Manager {
			m := New([]string{"s1", "s2"})
			r := stats.NewRNG(seed) // same stream for both builds
			for i := 0; i < n; i++ {
				srv := []string{"s1", "s2"}[r.Intn(2)]
				if err := m.Place(i, randomSpec(r), float64(i)*3, srv); err != nil {
					return nil
				}
			}
			return m
		}
		m1 := build()
		m2 := build()
		if m1 == nil || m2 == nil {
			return false
		}
		spec := randomSpec(rng)
		arrival := float64(n) * 3
		pred, err := m1.Evaluate(1000, spec, arrival, "s1")
		if err != nil {
			return false
		}
		if err := m2.Place(1000, spec, arrival, "s1"); err != nil {
			return false
		}
		actual, ok := m2.PredictedCompletion(1000)
		if !ok {
			return false
		}
		return math.Abs(pred.Completion-actual) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEvaluateDeterministic: evaluating the same candidate
// twice yields identical predictions (no hidden trace mutation).
func TestPropertyEvaluateDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := New([]string{"s1", "s2"})
		for i := 0; i < 5; i++ {
			srv := []string{"s1", "s2"}[rng.Intn(2)]
			if err := m.Place(i, randomSpec(rng), float64(i)*2, srv); err != nil {
				return false
			}
		}
		spec := randomSpec(rng)
		a, err1 := m.Evaluate(99, spec, 10, "s2")
		b, err2 := m.Evaluate(99, spec, 10, "s2")
		if err1 != nil || err2 != nil {
			return false
		}
		return a.Completion == b.Completion && a.Perturbation == b.Perturbation &&
			a.Interfered == b.Interfered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCompletionAfterArrival: predicted completions never
// precede the task's arrival plus its minimum possible duration on an
// unloaded server.
func TestPropertyCompletionAfterArrival(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := New([]string{"s1", "s2"})
		for i := 0; i < 6; i++ {
			srv := []string{"s1", "s2"}[rng.Intn(2)]
			if err := m.Place(i, randomSpec(rng), float64(i), srv); err != nil {
				return false
			}
		}
		spec := randomSpec(rng)
		arrival := 6.0
		for _, srv := range []string{"s1", "s2"} {
			p, err := m.Evaluate(50, spec, arrival, srv)
			if err != nil {
				return false
			}
			cost, _ := spec.Cost(srv)
			if p.Completion < arrival+cost.Total()-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertySumFlowDecomposition: the MSF objective equals flow plus
// perturbation by construction, and both are finite on healthy traces.
func TestPropertySumFlowDecomposition(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := New([]string{"s1", "s2"})
		for i := 0; i < 4; i++ {
			if err := m.Place(i, randomSpec(rng), float64(i), "s1"); err != nil {
				return false
			}
		}
		p, err := m.Evaluate(50, randomSpec(rng), 5, "s1")
		if err != nil {
			return false
		}
		if math.IsInf(p.Perturbation, 0) || math.IsNaN(p.Perturbation) {
			return false
		}
		return math.Abs(p.SumFlowObjective()-(p.Flow+p.Perturbation)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
