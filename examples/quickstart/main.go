// Quickstart: schedule a metatask with MSF, compare against NetSolve's
// MCT, and print the paper's metrics — the minimal end-to-end use of
// the casched public API.
package main

import (
	"fmt"
	"log"

	"casched"
)

func main() {
	// 200 waste-cpu tasks arriving every 25s on average (the paper's
	// second experiment set, scaled down).
	mt := casched.GenerateSet2(200, 25, 42)
	servers, err := casched.TestbedServers(casched.Set2Servers)
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string) *casched.RunResult {
		s, err := casched.NewScheduler(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := casched.Run(casched.RunConfig{
			Servers:    servers,
			Scheduler:  s,
			Seed:       1,
			NoiseSigma: 0.03,
		}, mt)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	mct := run("MCT")
	msf := run("MSF")

	fmt.Println("heuristic   completed  makespan   sum-flow  max-flow  max-stretch")
	for _, res := range []*casched.RunResult{mct, msf} {
		r := res.Report()
		fmt.Printf("%-11s %9d %9.0f %10.0f %9.0f %12.2f\n",
			r.Heuristic, r.Completed, r.Makespan, r.SumFlow, r.MaxFlow, r.MaxStretch)
	}

	sooner, err := casched.FinishSooner(msf.Tasks, mct.Tasks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d of %d tasks finish sooner under MSF than under NetSolve's MCT\n",
		sooner, mt.Len())
}
