package fed

// Member-failure paths: summary staleness expiry degrading the
// routing mode, consecutive-failure eviction and probe readmission,
// and the dispatcher's in-flight accounting when a member dies
// between Evaluate and Commit.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"casched/internal/agent"
	"casched/internal/sched"
	"casched/internal/task"
)

// flaky wraps a Member with switchable failure injection: when down,
// every call fails as a transport would.
type flaky struct {
	Member
	down       bool
	commitOnly bool // fail only Commit (the died-between-halves case)
	uncertain  bool // fail with ErrUncertain instead of plain ErrUnreachable
}

// errDown is certain transport failure (a refused dial: the request
// provably never left), errMaybe the uncertain kind (timeout after
// send) — the two classes a real dead member produces.
var (
	errDown  = fmt.Errorf("injected dial failure: %w", ErrUnreachable)
	errMaybe = fmt.Errorf("injected timeout: %w", ErrUncertain)
)

func (f *flaky) fail(full bool) bool { return f.down && (full || !f.commitOnly) }

func (f *flaky) err() error {
	if f.uncertain {
		return errMaybe
	}
	return errDown
}

func (f *flaky) AddServer(server string) error {
	if f.fail(false) {
		return errDown
	}
	return f.Member.AddServer(server)
}

func (f *flaky) CanSolve(spec *task.Spec) (bool, error) {
	if f.fail(false) {
		return false, errDown
	}
	return f.Member.CanSolve(spec)
}

func (f *flaky) Evaluate(req agent.Request) (agent.Candidate, error) {
	if f.fail(false) {
		return agent.Candidate{}, errDown
	}
	return f.Member.Evaluate(req)
}

func (f *flaky) Commit(req agent.Request, server string) (agent.Decision, error) {
	if f.fail(true) {
		return agent.Decision{}, f.err()
	}
	return f.Member.Commit(req, server)
}

func (f *flaky) Submit(req agent.Request) (agent.Decision, error) {
	if f.fail(false) {
		return agent.Decision{}, errDown
	}
	return f.Member.Submit(req)
}

func (f *flaky) SubmitBatch(reqs []agent.Request) ([]agent.Decision, error) {
	if f.fail(false) {
		return make([]agent.Decision, len(reqs)), errDown
	}
	return f.Member.SubmitBatch(reqs)
}

func (f *flaky) Summary() (Summary, error) {
	if f.fail(false) {
		return Summary{}, errDown
	}
	return f.Member.Summary()
}

// evenSpec is solvable on every test server with uniform cost.
func evenSpec(servers []string) *task.Spec {
	costs := make(map[string]task.Cost, len(servers))
	for _, s := range servers {
		costs[s] = task.Cost{Input: 1, Compute: 30, Output: 1}
	}
	return &task.Spec{Problem: "synthetic", Variant: 0, CostOn: costs}
}

// newFlakyFed builds a dispatcher over nMembers in-process HMCT cores
// wrapped in flaky decorators, with sv servers spread round-robin, a
// controllable clock, and the given config tweaks applied.
func newFlakyFed(t *testing.T, nMembers, nServers int, tweak func(*Config)) (*Dispatcher, []*flaky, []string, *time.Time) {
	t.Helper()
	now := time.Unix(1000, 0)
	cfg := Config{
		Heuristic:   "HMCT",
		Seed:        7,
		StaleAfter:  10 * time.Second,
		MaxFailures: 2,
		Now:         func() time.Time { return now },
	}
	if tweak != nil {
		tweak(&cfg)
	}
	members := make([]Member, nMembers)
	flakies := make([]*flaky, nMembers)
	for i := range members {
		s, err := sched.ByName(cfg.Heuristic)
		if err != nil {
			t.Fatal(err)
		}
		core, err := agent.New(agent.Config{Scheduler: s, Seed: cfg.Seed})
		if err != nil {
			t.Fatal(err)
		}
		flakies[i] = &flaky{Member: NewInProcess(fmt.Sprintf("m%d", i), core)}
		members[i] = flakies[i]
	}
	d, err := NewWithMembers(cfg, members)
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin partition via an inline policy so each member gets
	// nServers/nMembers servers deterministically.
	servers := make([]string, nServers)
	for i := range servers {
		servers[i] = fmt.Sprintf("sv%02d", i)
	}
	for i, sv := range servers {
		m := i % nMembers
		if err := d.members[m].m.AddServer(sv); err != nil {
			t.Fatal(err)
		}
		d.home[sv] = m
		d.counts[m]++
	}
	return d, flakies, servers, &now
}

func req(id int, spec *task.Spec, at float64) agent.Request {
	return agent.Request{JobID: id, TaskID: id, Spec: spec, Arrival: at}
}

// TestStalenessDegradesRouting pins the mode switch: with
// SummaryInterval too large to refresh inline and the clock advanced
// past StaleAfter, Submit stops fanning out (exact mode) and instead
// delegates whole decisions to a p2c-chosen member.
func TestStalenessDegradesRouting(t *testing.T) {
	d, _, servers, now := newFlakyFed(t, 2, 4, func(c *Config) {
		c.SummaryInterval = time.Hour // never refresh inline after the first fetch
		c.StaleAfter = 5 * time.Second
	})
	spec := evenSpec(servers)

	// First submission fetches summaries (age 0): fresh → fan-out.
	if _, err := d.Submit(req(1, spec, 0)); err != nil {
		t.Fatal(err)
	}
	fresh := d.Members()
	for _, mi := range fresh {
		if !mi.Fresh {
			t.Fatalf("member %s not fresh after first submit: %+v", mi.Name, mi)
		}
	}

	// Advance past StaleAfter: no member is fresh any more, and the
	// dispatcher must keep scheduling (degraded mode) rather than
	// fail or block.
	*now = now.Add(6 * time.Second)
	for _, mi := range d.Members() {
		if mi.Fresh {
			t.Fatalf("member %s still fresh after expiry: %+v", mi.Name, mi)
		}
	}
	for i := 2; i <= 9; i++ {
		if i%3 == 2 {
			// The background gossip tick: summaries update every few
			// decisions but stay past StaleAfter, so routing keeps
			// working from lagged data in degraded mode.
			d.RefreshSummaries()
			*now = now.Add(6 * time.Second)
		}
		if _, err := d.Submit(req(i, spec, float64(i))); err != nil {
			t.Fatalf("degraded submit %d: %v", i, err)
		}
	}
	if got := d.InFlight(); got != 9 {
		t.Errorf("in-flight = %d, want 9", got)
	}

	// Degraded mode delegates whole decisions to the p2c choice over
	// the lagged summaries: the balance signal updates on each gossip
	// tick, so both members keep receiving work.
	m0 := d.Member(0).(*flaky).Member.(*InProcess).Core().InFlight()
	m1 := d.Member(1).(*flaky).Member.(*InProcess).Core().InFlight()
	if m0+m1 != 9 {
		t.Errorf("member in-flight %d+%d != 9", m0, m1)
	}
	if m0 == 0 || m1 == 0 {
		t.Errorf("degraded routing starved a member: %d vs %d", m0, m1)
	}
}

// TestEvictionAndReadmission pins the failure lifecycle: MaxFailures
// consecutive failures evict a member (its partition leaves the
// pool), a recovered member is readmitted by the periodic probe, and
// scheduling never stops in between.
func TestEvictionAndReadmission(t *testing.T) {
	d, flakies, servers, now := newFlakyFed(t, 2, 4, func(c *Config) {
		c.ProbeInterval = 30 * time.Second
	})
	spec := evenSpec(servers)

	if _, err := d.Submit(req(1, spec, 0)); err != nil {
		t.Fatal(err)
	}

	// Kill member 1. Each submission's refresh fails once; after
	// MaxFailures=2 it is evicted and stops being probed inline.
	flakies[1].down = true
	for i := 2; i <= 4; i++ {
		*now = now.Add(time.Second)
		if _, err := d.Submit(req(i, spec, float64(i))); err != nil {
			t.Fatalf("submit %d with member down: %v", i, err)
		}
	}
	if mi := d.Members()[1]; !mi.Evicted {
		t.Fatalf("member 1 not evicted after repeated failures: %+v", mi)
	}
	// All post-failure work went to member 0.
	if m0 := d.Member(0).(*flaky).Member.(*InProcess).Core().InFlight(); m0 < 3 {
		t.Errorf("survivor holds %d jobs, want >= 3", m0)
	}

	// Recover the member; before the probe interval elapses even the
	// forced gossip tick keeps it evicted, after it the tick's probe
	// readmits it (inline submissions fire the same probe
	// asynchronously so they never wait on a dead member).
	flakies[1].down = false
	*now = now.Add(5 * time.Second)
	d.RefreshSummaries()
	if _, err := d.Submit(req(5, spec, 5)); err != nil {
		t.Fatal(err)
	}
	if mi := d.Members()[1]; !mi.Evicted {
		t.Fatalf("member 1 readmitted before probe interval: %+v", mi)
	}
	*now = now.Add(31 * time.Second)
	d.RefreshSummaries()
	if _, err := d.Submit(req(6, spec, 6)); err != nil {
		t.Fatal(err)
	}
	if mi := d.Members()[1]; mi.Evicted {
		t.Fatalf("member 1 not readmitted after probe: %+v", mi)
	}

	// Readmitted members receive work again.
	before := d.Member(1).(*flaky).Member.(*InProcess).Core().InFlight()
	for i := 7; i <= 14; i++ {
		if _, err := d.Submit(req(i, spec, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	after := d.Member(1).(*flaky).Member.(*InProcess).Core().InFlight()
	if after <= before {
		t.Errorf("readmitted member received no work (%d -> %d)", before, after)
	}
}

// TestCommitFailureAccounting pins the died-between-Evaluate-and-
// Commit path: the fan-out decision must fall back to the next-best
// member's candidate, the dead member must not be charged a placed
// job, and the dispatcher's in-flight accounting must reflect only
// real commits.
func TestCommitFailureAccounting(t *testing.T) {
	d, flakies, servers, _ := newFlakyFed(t, 2, 4, nil)
	spec := evenSpec(servers)

	// Member 0 answers Evaluate but dies at Commit.
	flakies[0].down = true
	flakies[0].commitOnly = true

	placedOn := make(map[string]bool)
	for _, sv := range servers {
		if i, ok := d.MemberOf(sv); ok && i == 1 {
			placedOn[sv] = true
		}
	}
	for i := 1; i <= 6; i++ {
		dec, err := d.Submit(req(i, spec, float64(i)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if !placedOn[dec.Server] {
			t.Fatalf("job %d committed on dead member's server %s", i, dec.Server)
		}
	}
	if got := d.InFlight(); got != 6 {
		t.Errorf("dispatcher in-flight = %d, want 6 (only real commits)", got)
	}
	if m0 := d.Member(0).(*flaky).Member.(*InProcess).Core().InFlight(); m0 != 0 {
		t.Errorf("dead member charged %d in-flight jobs, want 0", m0)
	}
	if m1 := d.Member(1).(*flaky).Member.(*InProcess).Core().InFlight(); m1 != 6 {
		t.Errorf("surviving member in-flight = %d, want 6", m1)
	}

	// Completions for the survivor's jobs consume the accounting.
	for i := 1; i <= 6; i++ {
		if err := d.Complete(i, "", 100); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.InFlight(); got != 0 {
		t.Errorf("in-flight after completions = %d, want 0", got)
	}
}

// TestSchedulingErrorsDoNotEvict pins that a member which answers —
// even rejecting every request in a delivered batch — is never
// evicted: only transport failures (ErrUnreachable) count.
func TestSchedulingErrorsDoNotEvict(t *testing.T) {
	d, _, servers, _ := newFlakyFed(t, 2, 4, nil)
	// Solvable only on member 0's partition (round-robin assignment:
	// even servers on member 0), so the batch cannot migrate to the
	// other member on resubmission.
	spec := evenSpec([]string{servers[0], servers[2]})

	// Place a batch, then resubmit the same job ids: the HTM rejects
	// reused ids, so every request in the delivered batch fails
	// member-side.
	batch := []agent.Request{req(1, spec, 0), req(2, spec, 0), req(3, spec, 0)}
	if _, err := d.SubmitBatch(batch); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		if _, err := d.SubmitBatch(batch); err == nil {
			t.Fatal("resubmitted batch succeeded, want member-side rejection")
		}
	}
	for _, mi := range d.Members() {
		if mi.Evicted {
			t.Fatalf("member %s evicted by scheduling errors: %+v", mi.Name, mi)
		}
	}
	// The federation still schedules fresh work.
	if _, err := d.Submit(req(100, spec, 1)); err != nil {
		t.Fatalf("submit after rejected batches: %v", err)
	}

	// The single-member shortcut path must behave the same way.
	single, _, ssv, _ := newFlakyFed(t, 1, 2, nil)
	sspec := evenSpec(ssv)
	sbatch := []agent.Request{req(1, sspec, 0), req(2, sspec, 0)}
	if _, err := single.SubmitBatch(sbatch); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		if _, err := single.SubmitBatch(sbatch); err == nil {
			t.Fatal("single-member resubmitted batch succeeded, want rejection")
		}
	}
	if single.Members()[0].Evicted {
		t.Fatal("sole member evicted by scheduling errors")
	}
}

// TestAddServerReroutesFromEvictedMember pins that server
// registration keeps working while a member is evicted: the policy's
// pick is rerouted among the live members.
func TestAddServerReroutesFromEvictedMember(t *testing.T) {
	d, flakies, servers, now := newFlakyFed(t, 2, 4, nil)
	spec := evenSpec(servers)

	flakies[1].down = true
	for i := 1; i <= 3; i++ {
		*now = now.Add(time.Second)
		_, _ = d.Submit(req(i, spec, float64(i)))
	}
	if !d.Members()[1].Evicted {
		t.Fatal("member 1 not evicted")
	}
	// Register many servers: every one must land on the live member,
	// whatever the policy would have picked.
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("late%02d", i)
		if err := d.AddServer(name); err != nil {
			t.Fatalf("AddServer(%s) with evicted member: %v", name, err)
		}
		if m, _ := d.MemberOf(name); m != 0 {
			t.Fatalf("server %s routed to evicted member %d", name, m)
		}
	}
}

// TestUncertainCommitDoesNotRetryElsewhere pins the double-commit
// guard: when a commit fails with delivery uncertain (a timeout — the
// member may have committed before the transport gave up), the
// decision must NOT be retried on another member; the error surfaces
// and nothing is recorded as placed.
func TestUncertainCommitDoesNotRetryElsewhere(t *testing.T) {
	d, flakies, servers, _ := newFlakyFed(t, 2, 4, nil)
	spec := evenSpec(servers)

	flakies[0].down = true
	flakies[0].commitOnly = true
	flakies[0].uncertain = true

	// HMCT on an empty testbed ties everywhere; the cross-member tie
	// resolves to member 0, whose commit then times out.
	_, err := d.Submit(req(1, spec, 0))
	if err == nil {
		t.Fatal("uncertain commit succeeded via another member — double-commit hazard")
	}
	if !errors.Is(err, ErrUncertain) {
		t.Fatalf("err = %v, want ErrUncertain in chain", err)
	}
	if got := d.InFlight(); got != 0 {
		t.Errorf("in-flight = %d after uncertain commit, want 0", got)
	}
	if m1 := d.Member(1).(*flaky).Member.(*InProcess).Core().InFlight(); m1 != 0 {
		t.Errorf("job rerouted to member 1 (%d in flight) despite uncertain commit", m1)
	}
}

// TestRejoinReplaysPartition pins member-restart recovery: a member
// rejoining under its old name (a restarted casagent with an empty
// core) has its server partition replayed into the new handle, so
// its servers become schedulable again.
func TestRejoinReplaysPartition(t *testing.T) {
	d, _, servers, _ := newFlakyFed(t, 2, 4, nil)
	// Only member 1's servers solve this spec.
	spec := evenSpec([]string{servers[1], servers[3]})
	if _, err := d.Submit(req(1, spec, 0)); err != nil {
		t.Fatal(err)
	}

	// "Restart" member 1: a fresh core, empty membership, same name.
	s, err := sched.ByName("HMCT")
	if err != nil {
		t.Fatal(err)
	}
	core, err := agent.New(agent.Config{Scheduler: s, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddMember(NewInProcess("m1", core)); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if got := d.NumMembers(); got != 2 {
		t.Fatalf("rejoin duplicated the member: %d members", got)
	}
	if got := core.ServerCount(); got != 2 {
		t.Fatalf("rejoined member has %d servers, want 2 replayed", got)
	}
	if _, err := d.Submit(req(2, spec, 1)); err != nil {
		t.Fatalf("submit after rejoin: %v", err)
	}
}

// TestAllMembersDownSurfacesError pins the no-live-member error.
func TestAllMembersDownSurfacesError(t *testing.T) {
	d, flakies, servers, now := newFlakyFed(t, 2, 4, nil)
	spec := evenSpec(servers)
	flakies[0].down = true
	flakies[1].down = true
	var lastErr error
	for i := 1; i <= 6; i++ {
		*now = now.Add(time.Second)
		if _, err := d.Submit(req(i, spec, float64(i))); err != nil {
			lastErr = err
		}
	}
	if !errors.Is(lastErr, ErrNoMembers) {
		t.Fatalf("want ErrNoMembers once all members evicted, got %v", lastErr)
	}
}
