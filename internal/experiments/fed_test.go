package experiments

import (
	"math"
	"strings"
	"testing"
)

// TestFederationStudyFreshParityAndStaleCost pins the tentpole's
// measured claims on the committed study configuration (the one
// rendered into benchmarks/fed-study.txt): with fresh summaries the
// federation reproduces the centralized cluster's sum-flow exactly
// (decision parity), and stale-summary power-of-two-choices routing
// pays a bounded quality premium.
func TestFederationStudyFreshParityAndStaleCost(t *testing.T) {
	r, err := FederationStudy(FederationStudyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r.CentralSumFlow <= 0 || r.FreshSumFlow <= 0 {
		t.Fatalf("degenerate sums: %+v", r)
	}
	// Fresh federation == centralized cluster, decision for decision,
	// so the sum-flows must coincide beyond measurement noise.
	if math.Abs(r.FreshSumFlow-r.CentralSumFlow) > 1e-6*r.CentralSumFlow {
		t.Errorf("fresh federation sum-flow %.2f != centralized %.2f (parity broken)",
			r.FreshSumFlow, r.CentralSumFlow)
	}
	if len(r.Stale) != 3 {
		t.Fatalf("stale levels = %d, want 3", len(r.Stale))
	}
	for _, s := range r.Stale {
		if s.SumFlow <= 0 {
			t.Fatalf("degenerate stale sum-flow at refresh/%d", s.RefreshEvery)
		}
		ratio := s.SumFlow / r.CentralSumFlow
		// Degraded routing trades quality for availability; the study
		// quantifies the premium. Bound it so a routing regression (or
		// an accidental exactness claim) trips the test.
		if ratio < 0.99 {
			t.Errorf("stale refresh/%d beat centralized (%.3f) — staleness dial broken?",
				s.RefreshEvery, ratio)
		}
		if ratio > 5 {
			t.Errorf("stale refresh/%d sum-flow ratio %.3f exceeds 5× centralized",
				s.RefreshEvery, ratio)
		}
	}

	// Relay claims (the committed fed-study.txt numbers): at every
	// summary lag, relay-assisted degraded routing stays within 1.15×
	// of the fresh fan-out — the near-fresh contract — where frozen
	// p2c pays 1.9–3.3×. The relay must also strictly beat the stale
	// level at the same lag, and its bandwidth stays around one event
	// per decision (the study routes every decision as a delegation and
	// never completes tasks, so > 2 would mean duplicated folding).
	if len(r.Relay) != len(r.Stale) {
		t.Fatalf("relay levels = %d, want %d", len(r.Relay), len(r.Stale))
	}
	for k, s := range r.Relay {
		if s.SumFlow <= 0 {
			t.Fatalf("degenerate relay sum-flow at summary/%d", s.RefreshEvery)
		}
		ratio := s.SumFlow / r.FreshSumFlow
		if ratio > 1.15 {
			t.Errorf("relay summary/%d sum-flow ratio %.3f exceeds 1.15× fresh fan-out",
				s.RefreshEvery, ratio)
		}
		if s.SumFlow >= r.Stale[k].SumFlow {
			t.Errorf("relay summary/%d (%.0f) did not beat stale refresh/%d (%.0f)",
				s.RefreshEvery, s.SumFlow, r.Stale[k].RefreshEvery, r.Stale[k].SumFlow)
		}
		if s.EventsPerDecision < 0 || s.EventsPerDecision > 2 {
			t.Errorf("relay summary/%d events/decision %.2f out of [0, 2]",
				s.RefreshEvery, s.EventsPerDecision)
		}
	}

	out := FormatFederationStudy(r)
	for _, want := range []string{"centralized cluster", "fresh summaries", "stale (refresh/", "relay (summary/", "ratio", "ev/dec"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted study lacks %q:\n%s", want, out)
		}
	}
}

// TestFederationStudyDefaults pins the zero-value config resolution so
// the committed study stays reproducible.
func TestFederationStudyDefaults(t *testing.T) {
	var cfg FederationStudyConfig
	cfg.defaults()
	if cfg.N != 240 || cfg.D != 6 || cfg.Seed != 11 || cfg.Heuristic != "HMCT" ||
		cfg.Members != 4 || cfg.Replicas != 2 || len(cfg.RefreshEvery) != 3 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
}
