package cluster

import (
	"hash/fnv"
	"strings"
	"unicode"
)

// ShardPolicy decides which shard a newly registered server joins.
// Implementations must be deterministic in (server, counts) so that
// replaying a registration sequence reproduces the same partition.
type ShardPolicy interface {
	// Name identifies the policy ("hash", "least-loaded", ...).
	Name() string
	// Assign returns the shard index for a new server, given the
	// current number of servers on each shard (len(counts) = shards).
	Assign(server string, counts []int) int
}

// AutoBalancer is implemented by policies that want the Cluster to
// rebalance partition sizes automatically after a removal.
type AutoBalancer interface {
	AutoBalance() bool
}

// hashPolicy spreads servers by name hash: stateless, stable under
// membership churn (a server always lands on the same shard for a
// given shard count).
type hashPolicy struct{}

// Hash returns the hash-by-server-name policy (the default).
func Hash() ShardPolicy { return hashPolicy{} }

func (hashPolicy) Name() string { return "hash" }

func (hashPolicy) Assign(server string, counts []int) int {
	h := fnv.New32a()
	h.Write([]byte(server))
	return int(h.Sum32() % uint32(len(counts)))
}

// leastLoadedPolicy levels partition sizes: each new server joins the
// currently smallest shard, and the Cluster auto-rebalances after
// removals.
type leastLoadedPolicy struct{}

// LeastLoaded returns the smallest-partition-first policy.
func LeastLoaded() ShardPolicy { return leastLoadedPolicy{} }

func (leastLoadedPolicy) Name() string { return "least-loaded" }

func (leastLoadedPolicy) AutoBalance() bool { return true }

func (leastLoadedPolicy) Assign(server string, counts []int) int {
	best := 0
	for i, c := range counts {
		if c < counts[best] {
			best = i
		}
	}
	return best
}

// affinityPolicy keeps servers of the same class on the same shard, so
// a problem class whose implementations live on one hardware class
// resolves within a single shard (batch routing then never has to
// split a burst). The class is derived by the classifier; the default
// strips a trailing digit run from the server name ("bigsun12" →
// "bigsun").
type affinityPolicy struct {
	classify func(server string) string
}

// Affinity returns the class-affinity policy. A nil classifier uses
// the default name-prefix rule.
func Affinity(classify func(server string) string) ShardPolicy {
	if classify == nil {
		classify = DefaultClass
	}
	return affinityPolicy{classify: classify}
}

func (affinityPolicy) Name() string { return "affinity" }

func (p affinityPolicy) Assign(server string, counts []int) int {
	h := fnv.New32a()
	h.Write([]byte(p.classify(server)))
	return int(h.Sum32() % uint32(len(counts)))
}

// DefaultClass is the default server classifier: the name with any
// trailing digit run removed.
func DefaultClass(server string) string {
	return strings.TrimRightFunc(server, unicode.IsDigit)
}

// ByName resolves a policy by name: "hash", "least-loaded" or
// "affinity" (with the default classifier) — the casagent -shard-policy
// flag values.
func ByName(name string) (ShardPolicy, bool) {
	switch strings.ToLower(name) {
	case "hash":
		return Hash(), true
	case "least-loaded", "leastloaded":
		return LeastLoaded(), true
	case "affinity":
		return Affinity(nil), true
	}
	return nil, false
}
