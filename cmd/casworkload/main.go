// Command casworkload generates, inspects and archives metatasks: the
// workload side of the experiment pipeline. Generated metatasks can be
// written as CSV, re-read for exact replay (casim accepts the same
// seeds), and summarized (task mix, inter-arrival statistics, total
// demand per server).
//
// Usage:
//
//	casworkload -set 1 -n 500 -d 20 -seed 103 -out metatask.csv
//	casworkload -set 2 -n 500 -d 25 -arrival bursty -burst 8 -stats
//	casworkload -in metatask.csv -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"casched"
)

func main() {
	var (
		set     = flag.Int("set", 2, "workload: 1 (matmul) or 2 (waste-cpu)")
		n       = flag.Int("n", 500, "metatask size")
		d       = flag.Float64("d", 25, "mean inter-arrival time (s)")
		seed    = flag.Uint64("seed", 103, "generation seed")
		arrival = flag.String("arrival", "poisson", "arrival process: poisson, uniform, bursty, constant, poisson-burst")
		burst   = flag.Int("burst", 5, "burst size for -arrival bursty")
		out     = flag.String("out", "", "write the metatask as CSV to this file")
		in      = flag.String("in", "", "read a metatask CSV instead of generating")
		stats   = flag.Bool("stats", true, "print workload statistics")
	)
	flag.Parse()

	mt, err := buildMetatask(*in, *set, *n, *d, *seed, *arrival, *burst)
	if err != nil {
		fmt.Fprintln(os.Stderr, "casworkload:", err)
		os.Exit(1)
	}
	if *stats {
		printStats(mt)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "casworkload:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := casched.WriteMetataskCSV(f, mt); err != nil {
			fmt.Fprintln(os.Stderr, "casworkload:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d tasks to %s\n", mt.Len(), *out)
	}
}

func buildMetatask(in string, set, n int, d float64, seed uint64, arrival string, burst int) (*casched.Metatask, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return casched.ReadMetataskCSV(f, in)
	}
	var sc casched.Scenario
	switch set {
	case 1:
		sc = casched.Set1Scenario(n, d, seed)
	case 2:
		sc = casched.Set2Scenario(n, d, seed)
	default:
		return nil, fmt.Errorf("unknown set %d", set)
	}
	switch arrival {
	case "poisson":
		sc.Arrival = casched.ArrivalPoisson
	case "uniform":
		sc.Arrival = casched.ArrivalUniform
	case "bursty":
		sc.Arrival = casched.ArrivalBursty
		sc.BurstSize = burst
	case "constant":
		sc.Arrival = casched.ArrivalConstant
	case "poisson-burst":
		sc.Arrival = casched.ArrivalPoissonBurst
	default:
		return nil, fmt.Errorf("unknown arrival process %q", arrival)
	}
	return casched.GenerateScenario(sc)
}

func printStats(mt *casched.Metatask) {
	fmt.Printf("metatask %q: %d tasks, horizon %.1f s\n", mt.Name, mt.Len(), mt.Horizon())

	// Task mix.
	mix := map[string]int{}
	for _, t := range mt.Tasks {
		mix[t.Spec.Name()]++
	}
	names := make([]string, 0, len(mix))
	for n := range mix {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("task mix:")
	for _, n := range names {
		fmt.Printf("  %-14s %d\n", n, mix[n])
	}

	// Inter-arrival gaps.
	if mt.Len() > 1 {
		var gaps []float64
		for i := 1; i < mt.Len(); i++ {
			gaps = append(gaps, mt.Tasks[i].Arrival-mt.Tasks[i-1].Arrival)
		}
		mean := 0.0
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))
		fmt.Printf("inter-arrival: mean %.2f s over %d gaps\n", mean, len(gaps))
	}

	// Total nominal demand per server (seconds of unloaded work).
	demand := map[string]float64{}
	for _, t := range mt.Tasks {
		for server, cost := range t.Spec.CostOn {
			demand[server] += cost.Total()
		}
	}
	servers := make([]string, 0, len(demand))
	for s := range demand {
		servers = append(servers, s)
	}
	sort.Strings(servers)
	fmt.Println("total demand if run alone on each server:")
	for _, s := range servers {
		fmt.Printf("  %-12s %.0f s\n", s, demand[s])
	}
}
