// Package experiments reproduces the paper's evaluation campaign: the
// HTM validation of Table 1, the matrix-multiplication experiments of
// Tables 5 and 6 (first set), the waste-cpu experiments of Tables 7
// and 8 (second set), and the Figure 1 Gantt chart.
//
// Rate regimes. The PDF extraction of the paper loses the numeric
// values of the mean inter-arrival times ("a mean of [] seconds or []
// seconds"). They are reconstructed from the published makespans: with
// N = 500 tasks, low-rate makespans of ≈9900 s imply a mean gap of
// ≈20 s and high-rate makespans of ≈7650 s imply ≈15 s. In our
// simulator the equivalent qualitative regimes — "stable for every
// heuristic" vs. "near-critical with memory exhaustion in set 1" —
// sit at D = 25 s and D = 20 s, which are the campaign defaults
// (see EXPERIMENTS.md for the calibration notes).
package experiments

import (
	"fmt"

	"casched/internal/grid"
	"casched/internal/metrics"
	"casched/internal/platform"
	"casched/internal/sched"
	"casched/internal/workload"
)

// Heuristics is the paper's comparison set, in table order.
var Heuristics = []string{"MCT", "HMCT", "MP", "MSF"}

// Campaign holds the experiment-wide parameters.
type Campaign struct {
	// N is the metatask size (paper: 500).
	N int
	// DLow and DHigh are the low- and high-rate mean inter-arrival
	// times in seconds.
	DLow, DHigh float64
	// Seeds are the metatask seeds; set 1 uses the first, set 2 all of
	// them (the paper generated three metatasks for set 2).
	Seeds []uint64
	// NoiseSigma is the execution-noise level (Table 1 regime: 0.03).
	NoiseSigma float64
	// MonitorPeriod and MonitorTau parameterize the monitor-based
	// information model MCT consumes (zero = grid defaults).
	MonitorPeriod float64
	MonitorTau    float64
	// HTMSync enables the synchronization extension in all HTM
	// heuristics (ablation; off reproduces the paper).
	HTMSync bool
	// MPTieRandom switches MP to random tie-breaking (ablation).
	MPTieRandom bool
	// FaultToleranceAll grants NetSolve's resubmission layer to every
	// heuristic rather than MCT only (ablation).
	FaultToleranceAll bool
}

// Default returns the paper-equivalent campaign.
func Default() Campaign {
	return Campaign{
		N:          500,
		DLow:       25,
		DHigh:      20,
		Seeds:      []uint64{103, 104, 105},
		NoiseSigma: 0.03,
	}
}

// scheduler instantiates a heuristic under the campaign's ablation
// flags.
func (c Campaign) scheduler(name string) (sched.Scheduler, error) {
	if name == "MP" && c.MPTieRandom {
		return &sched.MP{Tie: sched.TieRandom}, nil
	}
	return sched.ByName(name)
}

// HeuristicResult aggregates one heuristic's outcome over the
// campaign's metatask seeds.
type HeuristicResult struct {
	// Name is the heuristic.
	Name string
	// Reports holds one metrics report per metatask seed.
	Reports []metrics.Report
	// Mean averages Reports.
	Mean metrics.Report
	// Sooner counts, per seed, the tasks finishing sooner than under
	// MCT on the same metatask (empty for MCT itself).
	Sooner []int
	// SoonerMean averages Sooner.
	SoonerMean float64
	// Collapses totals server collapses over the seeds.
	Collapses int
}

// SetResult is one experiment set at one rate.
type SetResult struct {
	// Set is 1 (matmul) or 2 (waste-cpu).
	Set int
	// D is the mean inter-arrival time.
	D float64
	// N is the metatask size.
	N int
	// Rows holds one entry per heuristic, in Heuristics order.
	Rows []HeuristicResult
}

// Row returns the named heuristic's row.
func (r *SetResult) Row(name string) (HeuristicResult, bool) {
	for _, row := range r.Rows {
		if row.Name == name {
			return row, true
		}
	}
	return HeuristicResult{}, false
}

// runOne executes one heuristic on one metatask.
func (c Campaign) runOne(set int, name string, d float64, seed uint64) (*grid.Result, error) {
	s, err := c.scheduler(name)
	if err != nil {
		return nil, err
	}
	var servers []grid.ServerConfig
	var sc workload.Scenario
	if set == 1 {
		servers, err = grid.ServersFor(platform.Set1Servers)
		sc = workload.Set1(c.N, d, seed)
	} else {
		servers, err = grid.ServersFor(platform.Set2Servers)
		sc = workload.Set2(c.N, d, seed)
	}
	if err != nil {
		return nil, err
	}
	mt, err := workload.Generate(sc)
	if err != nil {
		return nil, err
	}
	cfg := grid.Config{
		Servers:       servers,
		Scheduler:     s,
		Seed:          seed, // execution noise tied to the metatask
		NoiseSigma:    c.NoiseSigma,
		MonitorPeriod: c.MonitorPeriod,
		MonitorTau:    c.MonitorTau,
		MemoryModel:   set == 1, // waste-cpu needs no memory (§5.2)
		HTMSync:       c.HTMSync,
	}
	// NetSolve's fault tolerance ships with its MCT; the paper's HTM
	// heuristics run without it (that is why HMCT loses tasks in
	// Table 6).
	if name == "MCT" || c.FaultToleranceAll {
		cfg.FaultTolerance = true
	}
	return grid.Run(cfg, mt)
}

// RunSet executes one experiment set at rate d over the campaign's
// seeds (set 1 uses only the first seed, as the paper reports single
// runs for the multiplication tables; set 2 uses all, mirroring its
// three metatasks).
func (c Campaign) RunSet(set int, d float64) (*SetResult, error) {
	if set != 1 && set != 2 {
		return nil, fmt.Errorf("experiments: unknown set %d", set)
	}
	if len(c.Seeds) == 0 {
		return nil, fmt.Errorf("experiments: campaign has no seeds")
	}
	seeds := c.Seeds
	if set == 1 {
		seeds = seeds[:1]
	}

	// Reference MCT runs, one per seed, for the finish-sooner column.
	mctRuns := make([]*grid.Result, len(seeds))
	for i, seed := range seeds {
		r, err := c.runOne(set, "MCT", d, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: set %d MCT seed %d: %w", set, seed, err)
		}
		mctRuns[i] = r
	}

	out := &SetResult{Set: set, D: d, N: c.N}
	for _, name := range Heuristics {
		row := HeuristicResult{Name: name}
		for i, seed := range seeds {
			var res *grid.Result
			var err error
			if name == "MCT" {
				res = mctRuns[i]
			} else {
				res, err = c.runOne(set, name, d, seed)
				if err != nil {
					return nil, fmt.Errorf("experiments: set %d %s seed %d: %w", set, name, seed, err)
				}
			}
			rep := res.Report()
			row.Reports = append(row.Reports, rep)
			row.Collapses += len(res.Collapses)
			if name != "MCT" {
				sooner, err := metrics.FinishSooner(res.Tasks, mctRuns[i].Tasks)
				if err != nil {
					return nil, fmt.Errorf("experiments: finish-sooner: %w", err)
				}
				row.Sooner = append(row.Sooner, sooner)
			}
		}
		row.Mean = metrics.MeanReports(row.Reports)
		if len(row.Sooner) > 0 {
			sum := 0
			for _, s := range row.Sooner {
				sum += s
			}
			row.SoonerMean = float64(sum) / float64(len(row.Sooner))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Table5 runs the first set at the low rate.
func (c Campaign) Table5() (*SetResult, error) { return c.RunSet(1, c.DLow) }

// Table6 runs the first set at the high rate.
func (c Campaign) Table6() (*SetResult, error) { return c.RunSet(1, c.DHigh) }

// Table7 runs the second set at the low rate.
func (c Campaign) Table7() (*SetResult, error) { return c.RunSet(2, c.DLow) }

// Table8 runs the second set at the high rate.
func (c Campaign) Table8() (*SetResult, error) { return c.RunSet(2, c.DHigh) }
