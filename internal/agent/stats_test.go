package agent

import (
	"math"
	"testing"

	"casched/internal/sched"
)

// TestStatsCollector drives a core with the collector subscribed and
// checks every aggregate: counts, rate, prediction error, occupancy.
func TestStatsCollector(t *testing.T) {
	c := newCore(t, sched.NewHMCT(), "s1", "s2")
	sc := NewStatsCollector()
	cancel := c.Subscribe(sc.Collect)
	defer cancel()

	spec := twoServerSpec(10, 12)
	var decs []Decision
	for i := 0; i < 4; i++ {
		d, err := c.Submit(Request{JobID: i, TaskID: i, Spec: spec, Arrival: float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		decs = append(decs, d)
	}
	// Two completions: one exactly on prediction, one 2s late.
	c.Complete(0, decs[0].Server, decs[0].Predicted)
	c.Complete(1, decs[1].Server, decs[1].Predicted+2)
	c.Report("s1", 1.5, 30)

	st := sc.Snapshot()
	if st.Decisions != 4 || st.Completions != 2 || st.Reports != 1 {
		t.Fatalf("counts = %+v", st)
	}
	if st.Span <= 0 || st.DecisionsPerSec <= 0 {
		t.Errorf("span/rate = %v/%v", st.Span, st.DecisionsPerSec)
	}
	if st.PredictionSamples != 2 || math.Abs(st.MeanAbsPredictionError-1) > 1e-9 {
		t.Errorf("prediction error = %v over %d samples, want 1.0 over 2",
			st.MeanAbsPredictionError, st.PredictionSamples)
	}
	inflight := 0
	for _, o := range st.Occupancy {
		inflight += o.InFlight
	}
	if inflight != 2 {
		t.Errorf("total in-flight = %d, want 2", inflight)
	}
	if o := st.Occupancy["s1"]; math.IsNaN(o.ReportedLoad) || o.ReportedLoad != 1.5 {
		t.Errorf("s1 reported load = %v, want 1.5", o.ReportedLoad)
	}
	if o := st.Occupancy["s2"]; !math.IsNaN(o.ReportedLoad) {
		t.Errorf("s2 reported load = %v, want NaN (no report)", o.ReportedLoad)
	}
	if st.String() == "" {
		t.Error("empty String()")
	}
}

// TestStatsCollectorOutOfOrderEvents feeds the collector the event
// shapes a merged multi-shard stream can legally produce — a
// completion observed before its decision, and a duplicated
// completion — and checks the counters stay consistent: cumulative
// counts track every observed event, InFlight clamps at zero instead
// of going negative, and the books balance once the stream catches up.
func TestStatsCollectorOutOfOrderEvents(t *testing.T) {
	sc := NewStatsCollector()

	// Completion arrives before its decision (cross-shard interleave).
	sc.Collect(Event{Kind: EventCompletion, Time: 10, Server: "s1", JobID: 1})
	st := sc.Snapshot()
	if got := st.Occupancy["s1"].InFlight; got != 0 {
		t.Errorf("in-flight after early completion = %d, want clamped 0", got)
	}
	if st.Completions != 1 {
		t.Errorf("completions = %d, want 1", st.Completions)
	}

	// The matching decision catches up: it cancels against the early
	// completion, so the job is NOT counted in flight forever, the
	// cumulative counts stay exact, and no prediction is retained
	// (there is no future completion left to realize it).
	sc.Collect(Event{Kind: EventDecision, Time: 9, Server: "s1", JobID: 1,
		Predicted: 12, HasPrediction: true})
	st = sc.Snapshot()
	if got := st.Occupancy["s1"].InFlight; got != 0 {
		t.Errorf("in-flight after late decision = %d, want 0 (cancelled)", got)
	}
	if st.Decisions != 1 || st.Completions != 1 {
		t.Errorf("counts = %d/%d, want 1/1", st.Decisions, st.Completions)
	}
	if st.PredictionSamples != 0 {
		t.Errorf("prediction samples = %d, want 0", st.PredictionSamples)
	}
	// The span covers both event dates, including the out-of-order one.
	if st.Span != 1 {
		t.Errorf("span = %v, want 1 (events at 9 and 10)", st.Span)
	}

	// Duplicated completion messages (transport retry) for the
	// already-consumed job: cumulative counts include them, InFlight
	// stays clamped at zero, and no prediction sample appears.
	sc.Collect(Event{Kind: EventCompletion, Time: 13, Server: "s1", JobID: 1})
	sc.Collect(Event{Kind: EventCompletion, Time: 13, Server: "s1", JobID: 1})
	st = sc.Snapshot()
	if got := st.Occupancy["s1"].InFlight; got != 0 {
		t.Errorf("in-flight after duplicate completions = %d, want 0", got)
	}
	if st.Completions != 3 || st.Occupancy["s1"].Completions != 3 {
		t.Errorf("completions = %d/%d, want 3/3", st.Completions, st.Occupancy["s1"].Completions)
	}
	if st.PredictionSamples != 0 {
		t.Errorf("prediction samples = %d, want 0 (prediction was dropped on cancel)", st.PredictionSamples)
	}

	// The normal order still samples the prediction error and drains
	// in-flight exactly once despite a duplicate.
	sc.Collect(Event{Kind: EventDecision, Time: 14, Server: "s2", JobID: 2,
		Predicted: 20, HasPrediction: true})
	sc.Collect(Event{Kind: EventCompletion, Time: 21, Server: "s2", JobID: 2})
	sc.Collect(Event{Kind: EventCompletion, Time: 21, Server: "s2", JobID: 2})
	st = sc.Snapshot()
	if got := st.Occupancy["s2"].InFlight; got != 0 {
		t.Errorf("s2 in-flight = %d, want 0", got)
	}
	if st.PredictionSamples != 1 || math.Abs(st.MeanAbsPredictionError-1) > 1e-9 {
		t.Errorf("prediction error = %v over %d samples, want 1.0 over 1",
			st.MeanAbsPredictionError, st.PredictionSamples)
	}
}

// TestEvaluateCommitMatchesSubmit pins the shard surface: Evaluate
// followed by Commit on the chosen server behaves exactly like Submit
// on an identically seeded twin, and Evaluate alone mutates nothing.
func TestEvaluateCommitMatchesSubmit(t *testing.T) {
	for _, name := range []string{"HMCT", "MSF", "MCT"} {
		one, _ := sched.ByName(name)
		whole := newCore(t, one, "s1", "s2")
		two, _ := sched.ByName(name)
		split := newCore(t, two, "s1", "s2")
		spec := twoServerSpec(10, 12)
		for i := 0; i < 6; i++ {
			req := Request{JobID: i, TaskID: i, Spec: spec, Arrival: float64(2 * i)}
			want, err := whole.Submit(req)
			if err != nil {
				t.Fatal(err)
			}
			cand, err := split.Evaluate(req)
			if err != nil {
				t.Fatal(err)
			}
			// A second Evaluate returns the same answer: nothing moved.
			again, err := split.Evaluate(req)
			if err != nil || again.Server != cand.Server {
				t.Fatalf("%s: re-evaluate diverged: %+v vs %+v (%v)", name, again, cand, err)
			}
			got, err := split.Commit(req, cand.Server)
			if err != nil {
				t.Fatal(err)
			}
			if got.Server != want.Server || math.Abs(got.Predicted-want.Predicted) > 1e-9 {
				t.Fatalf("%s: job %d: split %+v vs submit %+v", name, i, got, want)
			}
		}
		if whole.InFlight() != 6 || split.InFlight() != 6 {
			t.Errorf("%s: in-flight %d/%d, want 6", name, whole.InFlight(), split.InFlight())
		}
	}
}

// TestCommitValidation: commits on unregistered or unfit servers are
// rejected without corrupting state.
func TestCommitValidation(t *testing.T) {
	c := newCore(t, sched.NewHMCT(), "s1", "s2")
	spec := twoServerSpec(10, 12)
	if _, err := c.Commit(Request{JobID: 0, Spec: spec}, "nosuch"); err == nil {
		t.Error("commit on unregistered server accepted")
	}
	c.RemoveServer("s2")
	if _, err := c.Commit(Request{JobID: 0, Spec: spec}, "s2"); err == nil {
		t.Error("commit on removed server accepted")
	}
	if _, err := c.Commit(Request{JobID: 0}, "s1"); err == nil {
		t.Error("commit without spec accepted")
	}
	if c.InFlight() != 0 {
		t.Errorf("rejected commits left %d in flight", c.InFlight())
	}
	// A valid commit still works after the rejections.
	if _, err := c.Commit(Request{JobID: 0, Spec: spec}, "s1"); err != nil {
		t.Errorf("valid commit rejected: %v", err)
	}
}

// TestCanSolve covers the shard-eligibility probe.
func TestCanSolve(t *testing.T) {
	c := newCore(t, sched.NewHMCT(), "s1")
	if !c.CanSolve(twoServerSpec(1, 2)) {
		t.Error("solvable spec reported unsolvable")
	}
	if c.CanSolve(nil) {
		t.Error("nil spec reported solvable")
	}
	c.RemoveServer("s1")
	if c.CanSolve(twoServerSpec(1, 2)) {
		t.Error("empty core reported solvable")
	}
	if c.ServerCount() != 0 {
		t.Errorf("server count = %d", c.ServerCount())
	}
}
