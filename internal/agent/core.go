// Package agent implements the transport-agnostic Agent Core: the one
// decision engine of the paper's client-agent-server model, shared by
// every runtime that embodies it.
//
// The paper's agent is a single algorithm — filter the candidate
// servers, consult the heuristic (and through it the HTM), commit the
// placement, and maintain the NetSolve monitor beliefs with their two
// load corrections — yet transports differ: the discrete-event
// simulator (internal/grid) drives it synchronously under virtual
// time, the TCP runtime (internal/live) under concurrent RPC handlers
// on a scaled wall clock, and library users through the casched
// facade as a long-lived streaming agent. The Core owns everything
// those drivers would otherwise duplicate:
//
//   - server membership (AddServer/RemoveServer), including the HTM
//     trace lifecycle and belief reset;
//   - monitor beliefs: last reported load plus the two NetSolve
//     corrections (increment on assignment, decrement on completion);
//   - candidate filtering, heuristic invocation, HTM Place/commit and
//     per-task prediction tracking (entries are evicted when the task
//     completes, so a long-lived deployment does not leak);
//   - resubmission bookkeeping: each scheduling attempt is a distinct
//     job id carrying its task id and attempt number.
//
// Drivers call Submit (or SubmitBatch) per arriving task, Complete on
// completion messages and Report on monitor reports; everything else —
// clocks, sockets, execution, fault detection — stays in the driver.
//
// The Core is safe for concurrent use. Observability is exposed as an
// event stream (Subscribe): decisions, completions, reports and
// membership changes, in commit order.
package agent

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"

	"casched/internal/fair"
	"casched/internal/htm"
	"casched/internal/relay"
	"casched/internal/sched"
	"casched/internal/stats"
	"casched/internal/task"
	"casched/internal/trace"
)

// ErrUnschedulable is returned by Submit when no registered server can
// solve the task — NetSolve's "no server solves this problem" reply,
// as opposed to a heuristic failure.
var ErrUnschedulable = errors.New("agent: no candidate server")

// ErrDeadlineUnmet is returned when deadline-aware admission sheds a
// task: every candidate server's predicted completion exceeds the
// task's deadline, so accepting it would only add load it cannot repay.
var ErrDeadlineUnmet = errors.New("agent: predicted completion exceeds deadline on every candidate")

// ErrThrottled is returned when the intake token bucket sheds a task:
// the deployment's configured intake rate is exhausted.
var ErrThrottled = errors.New("agent: intake rate limit exceeded")

// Config parameterizes a Core.
type Config struct {
	// Scheduler is the heuristic the core applies (required).
	Scheduler sched.Scheduler
	// Seed drives randomized heuristics and tie-breaking.
	Seed uint64
	// RNG, when non-nil, overrides Seed as the decision randomness
	// source (drivers with an existing seeded stream pass it through so
	// results stay reproducible).
	RNG *stats.RNG
	// HTMSync enables HTM↔execution synchronization: completion
	// messages re-anchor the trace (§7 extension).
	HTMSync bool
	// HTMMemory makes the HTM model server memory (§7 extension).
	HTMMemory bool
	// HTMWorkers bounds the HTM's candidate-evaluation worker pool
	// (0 = GOMAXPROCS).
	HTMWorkers int
	// HTMRetention bounds the HTM trace history (htm.WithRetention):
	// completed-job records older than this many experiment seconds are
	// pruned as the trace advances, keeping a long-lived deployment's
	// memory bounded. Zero keeps the paper's unbounded behavior.
	HTMRetention float64
	// TenantShares, when non-nil, turns on fair-share arbitration of
	// multi-tenant batches: SubmitBatch offers tasks to the heuristic
	// in weighted fair-clock order across tenants (see internal/fair)
	// instead of submission order. Keys are tenant paths ("gold",
	// "gold/alice" for nested client shares), values are share weights;
	// tenants absent from the map weigh fair.DefaultWeight. Single-
	// tenant traffic is arbitration-free by construction and keeps the
	// historical decision sequence bit-for-bit.
	TenantShares map[string]float64
	// Admission turns on deadline-aware admission control: a request
	// carrying a deadline is shed with ErrDeadlineUnmet when every
	// candidate's predicted completion (HTM projected-ready drain, or
	// the monitor load estimate for monitor heuristics) exceeds it.
	// Requests without a deadline are never deadline-shed.
	Admission bool
	// IntakeRate, when positive, bounds raw intake with a token bucket
	// of IntakeRate tasks per experiment second and burst capacity
	// IntakeBurst (default max(IntakeRate, 1)); refused tasks are shed
	// with ErrThrottled. The bucket runs on experiment time (request
	// arrival dates), so replays are deterministic.
	IntakeRate  float64
	IntakeBurst float64
	// Relay turns on the live event relay ledger: every committed
	// decision and consumed completion is appended, sequence-numbered,
	// to a bounded ring (internal/relay.Ledger) that a federation
	// dispatcher polls for near-fresh routing state between gossiped
	// summaries. Off, the default, costs nothing.
	Relay bool
	// RelayCapacity bounds the relay ring (0 = relay.DefaultCapacity).
	RelayCapacity int
	// BatchAssignment opts SubmitBatch into true k-task scheduling:
	// each batch is placed wave by wave through a min-cost assignment
	// over the per-pair objective matrix (sched.MinCostBatch) instead
	// of greedily task by task. Requires a heuristic with a comparable
	// objective (sched.ScoredScheduler), or one that implements
	// sched.BatchScheduler itself. Off, the default, keeps SubmitBatch
	// decision-identical to sequential Submit.
	BatchAssignment bool
	// Log, when non-nil, receives "schedule" and "done" records.
	Log *trace.Log
}

// Request is one task (re)submission presented to the core.
type Request struct {
	// JobID identifies this scheduling attempt; resubmissions of the
	// same task use distinct job ids.
	JobID int
	// TaskID is the client-facing task identifier (equal to JobID on
	// first attempts in transports without fault tolerance).
	TaskID int
	// Attempt is the fault-tolerance attempt number (0 = first).
	Attempt int
	// Spec describes the task type and its per-server costs.
	Spec *task.Spec
	// Arrival is the decision instant in experiment seconds.
	Arrival float64
	// Submitted is the client-side submission date exposed to the
	// heuristic as Task.Arrival (a resubmission is decided later than
	// it was submitted). Zero defaults to Arrival.
	Submitted float64
	// Tenant identifies the submitting tenant for fair-share
	// arbitration and per-tenant accounting ("" = the anonymous
	// single stream). Nested shares separate levels with "/".
	Tenant string
	// Deadline is the absolute experiment-time completion deadline for
	// admission control. Zero means none.
	Deadline float64
}

// Decision is the committed outcome of one Submit.
type Decision struct {
	// JobID echoes the request.
	JobID int
	// Server is the chosen server.
	Server string
	// Predicted is the HTM's completion prediction at placement time;
	// valid only when HasPrediction (HTM-based heuristics).
	Predicted     float64
	HasPrediction bool
}

// Completion is the core's record of one completed job.
type Completion struct {
	JobID   int
	TaskID  int
	Attempt int
	Server  string
	Time    float64
}

// EventKind discriminates core events.
type EventKind int

const (
	// EventDecision is emitted after each committed placement.
	EventDecision EventKind = iota
	// EventCompletion is emitted for each completion message.
	EventCompletion
	// EventReport is emitted for each monitor report.
	EventReport
	// EventServerAdded and EventServerRemoved track membership.
	EventServerAdded
	EventServerRemoved
	// EventShed is emitted when the intake path refuses a request —
	// throttled by the token bucket or shed by deadline admission —
	// with the cause in Reason.
	EventShed
)

// Shed reasons carried in Event.Reason.
const (
	// ShedThrottled: the intake token bucket was empty.
	ShedThrottled = "throttled"
	// ShedDeadline: no candidate's predicted completion met the
	// deadline.
	ShedDeadline = "deadline"
)

// Event is one observable core transition, delivered to subscribers in
// commit order.
type Event struct {
	Kind    EventKind
	Time    float64
	Server  string
	JobID   int
	TaskID  int
	Attempt int
	// Load is the reported value (EventReport only).
	Load float64
	// Predicted/HasPrediction carry the placement-time HTM prediction
	// (EventDecision only).
	Predicted     float64
	HasPrediction bool
	// Tenant and Deadline echo the request (decisions, completions and
	// sheds; empty/zero for untagged traffic).
	Tenant   string
	Deadline float64
	// Submitted is the client-side submission date (decisions and
	// completions), so observers can derive flow without job-table
	// lookups.
	Submitted float64
	// Reason is the shed cause (EventShed only): ShedThrottled or
	// ShedDeadline.
	Reason string
}

// belief is the monitor-based view of one server: NetSolve's last
// reported load plus the two corrections.
type belief struct {
	reported       float64
	assignedSince  int
	completedSince int
}

// estimate implements the NetSolve information model.
func (b *belief) estimate() float64 {
	e := b.reported + float64(b.assignedSince) - float64(b.completedSince)
	if e < 0 {
		return 0
	}
	return e
}

// jobMeta is the resubmission and tenancy bookkeeping attached to a
// job id while it is in flight.
type jobMeta struct {
	taskID    int
	attempt   int
	tenant    string
	deadline  float64
	submitted float64
}

// Core is the shared decision engine. Construct with New; drive with
// AddServer/Submit/Complete/Report.
type Core struct {
	cfg    Config
	useHTM bool
	// batch is the k-task wave scheduler SubmitBatch uses when
	// Config.BatchAssignment is set; nil selects the greedy path.
	batch sched.BatchScheduler

	mu          sync.Mutex
	beliefs     map[string]*belief
	order       []string // registered server names, sorted
	htmMgr      *htm.Manager
	rng         *stats.RNG
	predictions map[int]float64 // jobID -> prediction at placement; evicted on completion
	jobs        map[int]jobMeta // jobID -> task/attempt; evicted on completion
	subs        map[int]func(Event)
	nextSub     int
	// ledger arbitrates multi-tenant batches (nil = fairness off);
	// bucket gates raw intake (nil = unlimited); tenantLoad counts
	// in-flight jobs per tenant for fairness-aware dispatch.
	ledger     *fair.Ledger
	bucket     *fair.TokenBucket
	tenantLoad map[string]int
	// relayLog, when non-nil, records decision/completion events for
	// the federation event relay (Config.Relay). Appends happen under
	// c.mu so ledger sequence order matches commit order.
	relayLog *relay.Ledger

	// Decision-path scratch, reused across submits under c.mu: the
	// candidate filter buffer, the heuristic context (whose PredBuf the
	// prediction path grows in place) and the task header handed to the
	// heuristic. Single-submit decisions allocate nothing from these
	// once they have grown to the working-set size.
	candScratch []string
	evalCtx     sched.Context
	evalTask    task.Task
}

// New constructs a Core with no servers; drivers add membership with
// AddServer as servers register (NetSolve's deployment order: agent
// first, then servers, then clients).
func New(cfg Config) (*Core, error) {
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("agent: core needs a scheduler")
	}
	c := &Core{
		cfg:         cfg,
		useHTM:      sched.UsesHTM(cfg.Scheduler),
		beliefs:     make(map[string]*belief),
		rng:         cfg.RNG,
		predictions: make(map[int]float64),
		jobs:        make(map[int]jobMeta),
		subs:        make(map[int]func(Event)),
		tenantLoad:  make(map[string]int),
	}
	if c.rng == nil {
		c.rng = stats.NewRNG(cfg.Seed)
	}
	if cfg.TenantShares != nil {
		c.ledger = fair.NewLedger(cfg.TenantShares)
	}
	if cfg.IntakeRate > 0 {
		c.bucket = fair.NewTokenBucket(cfg.IntakeRate, cfg.IntakeBurst)
	}
	if cfg.Relay {
		c.relayLog = relay.NewLedger(cfg.RelayCapacity)
	}
	if cfg.BatchAssignment {
		switch s := cfg.Scheduler.(type) {
		case sched.BatchScheduler:
			c.batch = s
		case sched.ScoredScheduler:
			c.batch = sched.NewMinCostBatch(s)
		default:
			return nil, fmt.Errorf("agent: batch assignment needs a heuristic with a comparable objective; %s has none",
				cfg.Scheduler.Name())
		}
	}
	if c.useHTM {
		opts := []htm.Option{htm.WithWorkers(cfg.HTMWorkers)}
		if cfg.HTMSync {
			opts = append(opts, htm.WithSync())
		}
		if cfg.HTMMemory {
			opts = append(opts, htm.WithMemoryModel())
		}
		if cfg.HTMRetention > 0 {
			opts = append(opts, htm.WithRetention(cfg.HTMRetention))
		}
		c.htmMgr = htm.New(nil, opts...)
	}
	return c, nil
}

// UsesHTM reports whether the configured heuristic consumes the HTM.
func (c *Core) UsesHTM() bool { return c.useHTM }

// HTM exposes the core's trace manager (nil for monitor-based
// heuristics). Intended for end-of-run inspection — Gantt extraction,
// accuracy studies — not for concurrent mutation.
func (c *Core) HTM() *htm.Manager { return c.htmMgr }

// Subscribe registers an observer for core events and returns its
// cancel function. Callbacks run synchronously on the mutating
// goroutine, in commit order, with the core lock held: they must be
// fast and must not call back into the Core.
func (c *Core) Subscribe(fn func(Event)) (cancel func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextSub
	c.nextSub++
	c.subs[id] = fn
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		delete(c.subs, id)
	}
}

// emit delivers an event to every subscriber. Caller holds c.mu.
func (c *Core) emit(ev Event) {
	for _, fn := range c.subs {
		fn(ev)
	}
}

// AddServer registers a server with the core: a fresh monitor belief
// and, for HTM heuristics, a fresh trace anchored at the current trace
// time. Idempotent by name.
func (c *Core) AddServer(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.beliefs[name]; ok {
		return
	}
	c.beliefs[name] = &belief{}
	c.order = slices.Insert(c.order, sort.SearchStrings(c.order, name), name)
	if c.htmMgr != nil {
		c.htmMgr.AddServer(name)
	}
	c.emit(Event{Kind: EventServerAdded, Server: name, TaskID: -1})
}

// RemoveServer withdraws a server from the candidate pool (collapse,
// decommission): its belief is dropped and its HTM trace is no longer
// consulted. Jobs already placed on it keep their records.
func (c *Core) RemoveServer(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.beliefs[name]; !ok {
		return
	}
	delete(c.beliefs, name)
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	if c.htmMgr != nil {
		c.htmMgr.DropServer(name)
	}
	c.emit(Event{Kind: EventServerRemoved, Server: name, TaskID: -1})
}

// Servers returns the registered server names in sorted order.
func (c *Core) Servers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

// LoadEstimate implements sched.LoadInfo for external observers: the
// agent's current belief of the number of tasks running on the server.
func (c *Core) LoadEstimate(server string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return coreLoadInfo{c}.LoadEstimate(server)
}

// coreLoadInfo is the unlocked sched.LoadInfo adapter handed to
// heuristics, which run while Submit already holds c.mu.
type coreLoadInfo struct{ c *Core }

func (li coreLoadInfo) LoadEstimate(server string) float64 {
	if b, ok := li.c.beliefs[server]; ok {
		return b.estimate()
	}
	return 0
}

// Submit maps one task through the intake path — token bucket,
// deadline admission, heuristic — and commits the decision: assignment
// load correction, HTM placement, prediction tracking.
// ErrUnschedulable means no registered server solves the task;
// ErrThrottled and ErrDeadlineUnmet mean the intake path shed it (an
// EventShed is emitted with the cause).
func (c *Core) Submit(req Request) (Decision, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.bucket != nil && !c.bucket.Take(req.Arrival) {
		c.shedLocked(req, ShedThrottled)
		return Decision{}, fmt.Errorf("agent: job %d: %w", req.JobID, ErrThrottled)
	}
	var ev sched.Evaluator
	if c.htmMgr != nil {
		ev = c.htmMgr
	}
	d, err := c.submitLocked(req, ev)
	if errors.Is(err, ErrDeadlineUnmet) {
		c.shedLocked(req, ShedDeadline)
	}
	return d, err
}

// SubmitBatch pipelines k simultaneous arrivals through one lock
// acquisition and one HTM evaluation pass: candidate predictions are
// evaluated once per distinct (spec, arrival) and reused across the
// batch, re-evaluating only the server that received the previous
// placement — its trace is the only one that changed.
//
// By default decisions are identical to submitting the requests one by
// one (the reuse is exact: a server's prediction depends only on its
// own trace). With Config.BatchAssignment the batch is instead placed
// as true k-task waves: a min-cost assignment over the shared
// prediction matrix puts at most one new task per server per wave,
// re-projecting between waves (see sched.MinCostBatch).
//
// With Config.TenantShares set and the batch spanning several tenants,
// the batch instead flows through the fairness arbiter: the ledger
// decides which tenant's head task is offered to the heuristic next
// (fair-clock order supersedes both submission order and min-cost
// waves — cross-tenant sharing outranks intra-batch packing).
// Single-tenant batches always take the historical path, so one-tenant
// deployments keep their decision sequence bit-for-bit.
//
// Requests that fail individually yield a zero Decision; their errors
// are joined in the returned error, and the rest of the batch still
// commits. Requests the token bucket refuses are shed with
// ErrThrottled before any arbitration.
func (c *Core) SubmitBatch(reqs []Request) ([]Decision, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ev sched.Evaluator
	var cache *batchCache
	if c.htmMgr != nil {
		cache = newBatchCache(c.htmMgr)
		ev = cache
	}
	live, keep, shedErrs := c.intakeGateLocked(reqs)
	var decs []Decision
	var err error
	switch {
	case c.ledger != nil && multiTenant(live):
		decs, err = c.submitBatchFairLocked(live, ev, cache)
	case c.batch != nil:
		decs, err = c.submitBatchMatchedLocked(live, ev, cache)
	default:
		decs, err = c.submitBatchGreedyLocked(live, ev, cache)
	}
	if keep == nil {
		return decs, err
	}
	out := make([]Decision, len(reqs))
	for k, pos := range keep {
		out[pos] = decs[k]
	}
	if err != nil {
		shedErrs = append(shedErrs, err)
	}
	return out, errors.Join(shedErrs...)
}

// submitBatchGreedyLocked is the historical batch path: requests are
// placed one by one in submission order, reusing cached predictions
// and re-evaluating only the server mutated by each placement. Caller
// holds c.mu.
func (c *Core) submitBatchGreedyLocked(reqs []Request, ev sched.Evaluator, cache *batchCache) ([]Decision, error) {
	out := make([]Decision, len(reqs))
	var errs []error
	for i, req := range reqs {
		d, err := c.submitLocked(req, ev)
		if err != nil {
			if errors.Is(err, ErrDeadlineUnmet) {
				c.shedLocked(req, ShedDeadline)
			}
			errs = append(errs, fmt.Errorf("agent: batch job %d: %w", req.JobID, err))
			continue
		}
		out[i] = d
		if cache != nil {
			// The placement mutated exactly one trace; drop only that
			// server's cached predictions.
			cache.invalidate(d.Server)
		}
	}
	return out, errors.Join(errs...)
}

// submitBatchMatchedLocked is the k-task assignment path of
// SubmitBatch: the batch scheduler proposes one wave (at most one new
// task per server), the core commits it, the prediction cache drops
// the mutated servers, and the deferred items go into the next wave
// against re-projected predictions — until the batch drains or a wave
// makes no progress. Caller holds c.mu.
func (c *Core) submitBatchMatchedLocked(reqs []Request, ev sched.Evaluator, cache *batchCache) ([]Decision, error) {
	out := make([]Decision, len(reqs))
	var errs []error
	fail := func(pos int, err error) {
		errs = append(errs, fmt.Errorf("agent: batch job %d: %w", reqs[pos].JobID, err))
	}

	items := make([]sched.BatchItem, len(reqs))
	pending := make([]int, 0, len(reqs))
	for i, req := range reqs {
		candidates, submitted, err := c.filterRequestLocked(req, nil)
		if err != nil {
			fail(i, err)
			continue
		}
		if err := c.admitDeadlineLocked(req, candidates, ev); err != nil {
			c.shedLocked(req, ShedDeadline)
			fail(i, err)
			continue
		}
		items[i] = sched.BatchItem{
			JobID: req.JobID,
			Task: &task.Task{ID: req.TaskID, Spec: req.Spec, Arrival: submitted,
				Tenant: req.Tenant, Deadline: req.Deadline},
			Now:        req.Arrival,
			Candidates: candidates,
		}
		pending = append(pending, i)
	}

	ctx := &sched.Context{HTM: ev, Info: coreLoadInfo{c}, RNG: c.rng}
	for len(pending) > 0 {
		wave := make([]sched.BatchItem, len(pending))
		for k, pos := range pending {
			wave[k] = items[pos]
		}
		choices, err := c.batch.ChooseBatch(ctx, wave)
		if err != nil {
			for _, pos := range pending {
				fail(pos, err)
			}
			break
		}
		if len(choices) != len(wave) {
			// Contract violation by a user-supplied BatchScheduler:
			// fail loudly instead of silently dropping requests (short
			// result) or indexing out of range (long result).
			for _, pos := range pending {
				fail(pos, fmt.Errorf("batch scheduler %s returned %d choices for %d items",
					c.batch.Name(), len(choices), len(wave)))
			}
			break
		}
		committed, attempted := 0, 0
		var next []int
		for k, choice := range choices {
			pos := pending[k]
			if choice.Server == "" {
				next = append(next, pos)
				continue
			}
			attempted++
			if _, ok := c.beliefs[choice.Server]; !ok {
				fail(pos, fmt.Errorf("batch scheduler %s chose unregistered server %q",
					c.batch.Name(), choice.Server))
				continue
			}
			if _, ok := reqs[pos].Spec.Cost(choice.Server); !ok {
				fail(pos, fmt.Errorf("batch scheduler %s chose non-candidate %q",
					c.batch.Name(), choice.Server))
				continue
			}
			d, err := c.commitLocked(reqs[pos], choice.Server)
			if err != nil {
				fail(pos, err)
				continue
			}
			out[pos] = d
			committed++
			if cache != nil {
				cache.invalidate(choice.Server)
			}
		}
		// Termination: every wave either commits placements, consumes
		// failed attempts (their items leave pending via fail), or —
		// when nothing was even attempted — proves the remaining
		// items cannot evaluate on any candidate. A wave that only
		// failed commits leaves the deferred items in play: the next
		// wave re-solves without the failed contenders.
		if committed == 0 && attempted == 0 && len(next) > 0 {
			for _, pos := range next {
				fail(pos, errors.New("no candidate evaluable in any wave"))
			}
			break
		}
		pending = next
	}
	return out, errors.Join(errs...)
}

// submitLocked is the decision engine: one evaluation followed by one
// commit under the same lock acquisition. Caller holds c.mu; ev is the
// HTM surface handed to the heuristic (nil for monitor heuristics).
func (c *Core) submitLocked(req Request, ev sched.Evaluator) (Decision, error) {
	cand, err := c.evaluateLocked(req, ev)
	if err != nil {
		return Decision{}, err
	}
	return c.commitLocked(req, cand.Server)
}

// filterRequestLocked is the per-request preamble shared by the
// greedy and matched decision paths: spec validation, candidate
// filtering over the registered servers, and the submitted-date
// default. Both paths must agree on it, or matched batches and single
// Submits would see different candidate sets. The candidate list is
// appended into buf (truncated first); callers whose list must survive
// the decision pass nil, callers on the single-submit hot path thread
// the core's reusable scratch through. Caller holds c.mu.
func (c *Core) filterRequestLocked(req Request, buf []string) (candidates []string, submitted float64, err error) {
	if req.Spec == nil {
		return nil, 0, fmt.Errorf("agent: job %d has no spec", req.JobID)
	}
	if buf == nil {
		buf = make([]string, 0, len(c.order))
	}
	candidates = buf[:0]
	for _, name := range c.order {
		if _, ok := req.Spec.Cost(name); ok {
			candidates = append(candidates, name)
		}
	}
	if len(candidates) == 0 {
		return nil, 0, ErrUnschedulable
	}
	submitted = req.Submitted
	if submitted == 0 {
		submitted = req.Arrival
	}
	return candidates, submitted, nil
}

// evaluateLocked runs candidate filtering and the heuristic without
// committing anything: no HTM placement, no belief correction, no
// event. Caller holds c.mu.
func (c *Core) evaluateLocked(req Request, ev sched.Evaluator) (Candidate, error) {
	candidates, submitted, err := c.filterRequestLocked(req, c.candScratch)
	if err != nil {
		return Candidate{}, err
	}
	c.candScratch = candidates
	// Admission runs before the heuristic, so shedding never consumes
	// decision randomness: with admission off (or no deadline) the
	// heuristic sees exactly the historical call sequence.
	if err := c.admitDeadlineLocked(req, candidates, ev); err != nil {
		return Candidate{}, err
	}
	c.evalTask = task.Task{ID: req.TaskID, Spec: req.Spec, Arrival: submitted,
		Tenant: req.Tenant, Deadline: req.Deadline}
	predBuf := c.evalCtx.PredBuf
	c.evalCtx = sched.Context{
		Now:        req.Arrival,
		Task:       &c.evalTask,
		JobID:      req.JobID,
		Candidates: candidates,
		HTM:        ev,
		Info:       coreLoadInfo{c},
		RNG:        c.rng,
		PredBuf:    predBuf,
	}
	ctx := &c.evalCtx
	var out Candidate
	if ss, ok := c.cfg.Scheduler.(sched.ScoredScheduler); ok {
		choice, err := ss.ChooseScored(ctx)
		if err != nil {
			return Candidate{}, fmt.Errorf("agent: scheduling task %d: %w", req.TaskID, err)
		}
		out = Candidate{Server: choice.Server, Score: choice.Score, Tie: choice.Tie, Scored: true}
	} else {
		server, err := c.cfg.Scheduler.Choose(ctx)
		if err != nil {
			return Candidate{}, fmt.Errorf("agent: scheduling task %d: %w", req.TaskID, err)
		}
		out = Candidate{Server: server}
	}
	found := false
	for _, cand := range candidates {
		if cand == out.Server {
			found = true
			break
		}
	}
	if !found {
		return Candidate{}, fmt.Errorf("agent: scheduler %s chose non-candidate %q for task %d",
			c.cfg.Scheduler.Name(), out.Server, req.TaskID)
	}
	return out, nil
}

// commitLocked commits a decided placement: HTM commit, prediction
// tracking, the NetSolve assignment correction, bookkeeping and the
// decision event. Caller holds c.mu and has validated the server
// against the request's candidates.
func (c *Core) commitLocked(req Request, server string) (Decision, error) {
	d := Decision{JobID: req.JobID, Server: server}
	if c.htmMgr != nil {
		if err := c.htmMgr.Place(req.JobID, req.Spec, req.Arrival, server); err != nil {
			return Decision{}, fmt.Errorf("agent: HTM placement of task %d: %w", req.TaskID, err)
		}
		if p, ok := c.htmMgr.PredictedCompletion(req.JobID); ok {
			c.predictions[req.JobID] = p
			d.Predicted, d.HasPrediction = p, true
		}
	}
	// NetSolve assignment correction — only once the placement is
	// committed, so a rejected decision leaves beliefs untouched.
	c.beliefs[server].assignedSince++
	submitted := req.Submitted
	if submitted == 0 {
		submitted = req.Arrival
	}
	c.jobs[req.JobID] = jobMeta{taskID: req.TaskID, attempt: req.Attempt,
		tenant: req.Tenant, deadline: req.Deadline, submitted: submitted}
	c.tenantLoad[req.Tenant]++
	if c.ledger != nil {
		// Post-hoc charge: every committed placement advances the
		// tenant's fair clock by the nominal service it bought,
		// whichever path committed it — so arbitration stays coherent
		// across mixed Submit/SubmitBatch call patterns.
		if cost, ok := req.Spec.Cost(server); ok {
			c.ledger.Charge(tenantPath(req.Tenant), cost.Total())
		}
	}
	c.log(trace.Record{Time: req.Arrival, Kind: "schedule", Server: server,
		TaskID: req.TaskID, Attempt: req.Attempt})
	c.emit(Event{Kind: EventDecision, Time: req.Arrival, Server: server,
		JobID: req.JobID, TaskID: req.TaskID, Attempt: req.Attempt,
		Predicted: d.Predicted, HasPrediction: d.HasPrediction,
		Tenant: req.Tenant, Deadline: req.Deadline, Submitted: submitted})
	if c.relayLog != nil {
		ev := relay.Event{Kind: relay.Decision, JobID: req.JobID,
			Tenant: req.Tenant, Server: server, Time: req.Arrival}
		if c.htmMgr != nil {
			ev.Ready, ev.HasReady = c.htmMgr.ProjectedReady(server)
		}
		c.relayLog.Append(ev)
	}
	return d, nil
}

// Complete processes a completion message: the NetSolve completion
// correction, HTM re-anchoring (sync extension) and prediction
// eviction — placement-time predictions are consumed here, so the
// tracking maps stay bounded by the number of in-flight tasks.
func (c *Core) Complete(jobID int, server string, at float64) Completion {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.beliefs[server]; ok {
		b.completedSince++ // NetSolve completion correction
	}
	if c.htmMgr != nil {
		if _, placed := c.htmMgr.PlacedOn(jobID); placed {
			// Ignore sync errors for jobs the HTM no longer tracks
			// (dropped servers).
			_ = c.htmMgr.NotifyCompletion(jobID, at)
		}
	}
	meta, known := c.jobs[jobID]
	if !known {
		meta = jobMeta{taskID: jobID}
	}
	delete(c.jobs, jobID)
	delete(c.predictions, jobID)
	if known {
		if n := c.tenantLoad[meta.tenant] - 1; n > 0 {
			c.tenantLoad[meta.tenant] = n
		} else {
			delete(c.tenantLoad, meta.tenant)
		}
	}
	done := Completion{JobID: jobID, TaskID: meta.taskID, Attempt: meta.attempt,
		Server: server, Time: at}
	c.log(trace.Record{Time: at, Kind: "done", Server: server,
		TaskID: meta.taskID, Attempt: meta.attempt})
	c.emit(Event{Kind: EventCompletion, Time: at, Server: server,
		JobID: jobID, TaskID: meta.taskID, Attempt: meta.attempt,
		Tenant: meta.tenant, Deadline: meta.deadline, Submitted: meta.submitted})
	if c.relayLog != nil {
		ev := relay.Event{Kind: relay.Completion, JobID: jobID,
			Tenant: meta.tenant, Server: server, Time: at}
		if c.htmMgr != nil {
			ev.Ready, ev.HasReady = c.htmMgr.ProjectedReady(server)
		}
		c.relayLog.Append(ev)
	}
	return done
}

// Report ingests a periodic monitor report: the belief is replaced by
// the reported value and both corrections reset, as a fresh NetSolve
// load report does.
func (c *Core) Report(server string, load, at float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.beliefs[server]
	if !ok {
		return
	}
	b.reported = load
	b.assignedSince = 0
	b.completedSince = 0
	c.emit(Event{Kind: EventReport, Time: at, Server: server, TaskID: -1, Load: load})
}

// Prediction returns the HTM completion predicted when the job was
// placed. Entries are evicted on completion; after Complete the
// end-of-run projection is available through PredictedCompletion.
func (c *Core) Prediction(jobID int) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.predictions[jobID]
	return p, ok
}

// PredictedCompletion returns the HTM trace's current projection of a
// placed job's completion date (HTM heuristics only).
func (c *Core) PredictedCompletion(jobID int) (float64, bool) {
	if c.htmMgr == nil {
		return 0, false
	}
	return c.htmMgr.PredictedCompletion(jobID)
}

// FinalPredictions returns the HTM's current simulated completion date
// for every job ever placed — the "simulated completion date" column
// of the paper's Table 1, accounting for every later placement.
func (c *Core) FinalPredictions() map[int]float64 {
	out := make(map[int]float64)
	if c.htmMgr == nil {
		return out
	}
	for _, id := range c.htmMgr.Placements() {
		if p, ok := c.htmMgr.PredictedCompletion(id); ok {
			out[id] = p
		}
	}
	return out
}

// log appends to the configured trace log, if any.
func (c *Core) log(r trace.Record) {
	if c.cfg.Log != nil {
		c.cfg.Log.Add(r)
	}
}
