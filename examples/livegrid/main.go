// Livegrid deploys a complete live client-agent-server grid inside one
// process: an agent and four servers as goroutines connected over real
// TCP (net/rpc), executing a waste-cpu metatask in scaled wall time —
// the in-process equivalent of running casagent, casserver ×4 and
// casclient.
//
// It also demonstrates the HTM validation methodology of Table 1:
// after the run, the HTM's simulated completion dates are compared
// with the measured ones.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"casched"
)

func main() {
	clock := casched.NewLiveClock(500) // 500 virtual seconds per wall second

	msf, err := casched.NewScheduler("MSF")
	if err != nil {
		log.Fatal(err)
	}
	agent, err := casched.StartLiveAgent(casched.LiveAgentConfig{
		Scheduler: msf,
		Clock:     clock,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer agent.Close()
	fmt.Printf("agent (MSF) on %s\n", agent.Addr())

	for i, name := range casched.Set2Servers {
		srv, err := casched.StartLiveServer(casched.LiveServerConfig{
			Name:         name,
			AgentAddr:    agent.Addr(),
			Clock:        clock,
			Quantum:      time.Millisecond,
			ReportPeriod: 15,
			NoiseSigma:   0.03,
			Seed:         uint64(i + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("server %-10s on %s\n", name, srv.Addr())
	}

	mt := casched.GenerateSet2(40, 12, 99)
	fmt.Printf("\nsubmitting %d waste-cpu tasks (mean gap 12 virtual s)...\n", mt.Len())
	results, err := casched.RunLiveMetatask(agent.Addr(), mt, clock)
	if err != nil {
		log.Fatal(err)
	}

	rep := casched.ComputeReport("MSF-live", results)
	fmt.Printf("completed %d/%d  makespan %.0fs  sum-flow %.0fs  max-stretch %.2f\n",
		rep.Completed, rep.Submitted, rep.Makespan, rep.SumFlow, rep.MaxStretch)

	// Table 1 methodology: HTM simulated vs measured completions.
	finals := agent.FinalPredictions()
	var worst, sum float64
	for _, r := range results {
		if !r.Completed {
			continue
		}
		sim, ok := finals[r.ID]
		if !ok {
			continue
		}
		pct := 100 * math.Abs(r.Completion-sim) / (r.Completion - r.Arrival)
		sum += pct
		if pct > worst {
			worst = pct
		}
	}
	fmt.Printf("HTM accuracy: mean error %.2f%%, worst %.2f%% of task duration\n",
		sum/float64(len(results)), worst)
}
