module casched

go 1.22
