// Package workload generates the paper's metatasks: sets of independent
// tasks of uniformly random type whose inter-arrival times are drawn
// from an exponential distribution (the paper's "difference between two
// arrivals is drawn from a Poisson distribution with a mean of D
// seconds", i.e. a Poisson arrival process).
package workload

import (
	"fmt"
	"sort"

	"casched/internal/stats"
	"casched/internal/task"
)

// Scenario describes one metatask to generate.
type Scenario struct {
	// Name labels the metatask.
	Name string
	// Specs is the task-type pool; each task picks one uniformly
	// ("a task has a uniform probability to be of each duration").
	Specs []*task.Spec
	// N is the number of tasks (the paper uses 500).
	N int
	// MeanInterarrival is D, the mean of the exponential inter-arrival
	// distribution in seconds (the paper uses 35 and 20).
	MeanInterarrival float64
	// FirstAt is the arrival date of the first task; the subsequent
	// N−1 gaps follow the arrival process.
	FirstAt float64
	// Seed drives all randomness of the generation.
	Seed uint64
	// Arrival selects the arrival process (default ArrivalPoisson, the
	// paper's).
	Arrival ArrivalProcess
	// BurstSize is the burst length for ArrivalBursty (default 5).
	BurstSize int
	// BurstFactor, for ArrivalPoissonBurst, multiplies the base rate
	// 1/MeanInterarrival during a burst (default 4; capped at
	// 1/BurstDuty so the quiet rate stays non-negative).
	BurstFactor float64
	// BurstDuty, for ArrivalPoissonBurst, is the fraction of each
	// cycle spent bursting, in (0, 1) (default 0.25).
	BurstDuty float64
	// BurstPeriod, for ArrivalPoissonBurst, is the cycle length in
	// seconds (default 20·MeanInterarrival).
	BurstPeriod float64
	// DiurnalAmplitude, for ArrivalDiurnal, is the relative rate swing
	// A in (0, 1]: λ(t) = λ0·(1 + A·sin(2πt/DiurnalPeriod)) (default
	// 0.8).
	DiurnalAmplitude float64
	// DiurnalPeriod, for ArrivalDiurnal, is the day length in seconds
	// (default 40·MeanInterarrival).
	DiurnalPeriod float64
	// Service selects the service-time distribution layered over the
	// nominal spec costs (default ServiceNominal, the paper's fixed
	// per-type costs). Heavy-tailed choices scale each task's compute
	// cost by an independent unit-mean factor, so the offered load is
	// preserved while the size distribution grows a tail. Tasks then
	// carry derived specs, which do not round-trip through the CSV
	// format (the trace columns identify specs by problem/variant).
	Service ServiceProcess
	// TailShape, for ServicePareto, is the Pareto tail index α > 1
	// (default 1.5: infinite variance, finite mean — the classic
	// heavy-tail regime).
	TailShape float64
	// TailSigma, for ServiceLognormal, is the lognormal shape σ
	// (default 1.2).
	TailSigma float64
	// TailCap bounds the per-task scale factor (default 100): a cap on
	// the largest elephant so a single draw cannot dominate an entire
	// study's makespan. Set negative to disable.
	TailCap float64
	// Tenants, when non-empty, labels each generated task with a tenant
	// drawn from this map with probability proportional to the value
	// (an offered-load mix, independent of the fair-share weights the
	// agent arbitrates with). Empty keeps the paper's single anonymous
	// stream and leaves generation bit-identical to earlier versions.
	Tenants map[string]float64
	// DeadlineSlack, when positive, stamps each task with
	// Deadline = Arrival + DeadlineSlack × (minimal nominal end-to-end
	// cost of its spec): slack 1 is only feasible on an unloaded best
	// server, larger values tolerate queueing. Zero leaves deadlines
	// unset.
	DeadlineSlack float64
}

// Validate checks the scenario parameters.
func (s Scenario) Validate() error {
	if s.N <= 0 {
		return fmt.Errorf("workload: scenario %q: N must be positive, got %d", s.Name, s.N)
	}
	if len(s.Specs) == 0 {
		return fmt.Errorf("workload: scenario %q: no task specs", s.Name)
	}
	if s.MeanInterarrival <= 0 {
		return fmt.Errorf("workload: scenario %q: mean inter-arrival must be positive, got %v",
			s.Name, s.MeanInterarrival)
	}
	if s.FirstAt < 0 {
		return fmt.Errorf("workload: scenario %q: negative first arrival %v", s.Name, s.FirstAt)
	}
	for name, w := range s.Tenants {
		if name == "" {
			return fmt.Errorf("workload: scenario %q: empty tenant name", s.Name)
		}
		if w <= 0 {
			return fmt.Errorf("workload: scenario %q: tenant %q has non-positive mix weight %v",
				s.Name, name, w)
		}
	}
	if s.DeadlineSlack < 0 {
		return fmt.Errorf("workload: scenario %q: negative deadline slack %v", s.Name, s.DeadlineSlack)
	}
	if s.Arrival == ArrivalDiurnal && s.DiurnalAmplitude > 1 {
		return fmt.Errorf("workload: scenario %q: diurnal amplitude %v > 1 (the trough rate would be negative)",
			s.Name, s.DiurnalAmplitude)
	}
	if s.Service == ServicePareto && s.TailShape != 0 && s.TailShape <= 1 {
		return fmt.Errorf("workload: scenario %q: Pareto tail index %v must exceed 1 (infinite mean below)",
			s.Name, s.TailShape)
	}
	if s.Service == ServiceLognormal && s.TailSigma < 0 {
		return fmt.Errorf("workload: scenario %q: negative lognormal sigma %v", s.Name, s.TailSigma)
	}
	return nil
}

// Generate builds the metatask of a scenario. Generation is
// deterministic in the seed: the same scenario always produces the same
// metatask, and the task-type sequence does not depend on the arrival
// rate (so "the same set of tasks is considered with different arrival
// dates", as in the paper's experimental design, can be obtained by
// varying only MeanInterarrival).
func Generate(sc Scenario) (*task.Metatask, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	// Decorrelated streams: one for the task mix, one for the arrival
	// process, so that changing D preserves the task sequence. The
	// tenant stream is split off third and only when tenants are
	// configured, so single-tenant scenarios stay bit-identical to
	// versions that predate multi-tenancy.
	root := stats.NewRNG(sc.Seed)
	mixRNG := root.Split()
	arrRNG := root.Split()
	var pickTenant func() string
	if len(sc.Tenants) > 0 {
		tenantRNG := root.Split()
		names := make([]string, 0, len(sc.Tenants))
		for name := range sc.Tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		weights := make([]float64, len(names))
		for i, name := range names {
			weights[i] = sc.Tenants[name]
		}
		pickTenant = func() string { return names[tenantRNG.Pick(weights)] }
	}

	// The service stream splits off last, and only when a heavy-tailed
	// service distribution is configured — nominal-service scenarios
	// stay bit-identical to versions that predate the dimension.
	var scale func(*task.Spec) *task.Spec
	if sc.Service != ServiceNominal {
		scale = serviceScaler(sc, root.Split())
	}

	gap := gapGenerator(sc, arrRNG)
	mt := &task.Metatask{Name: sc.Name, Tasks: make([]*task.Task, 0, sc.N)}
	now := sc.FirstAt
	for i := 0; i < sc.N; i++ {
		spec := sc.Specs[mixRNG.Intn(len(sc.Specs))]
		if i > 0 {
			now += gap(i)
		}
		if scale != nil {
			spec = scale(spec)
		}
		t := &task.Task{ID: i, Spec: spec, Arrival: now}
		if pickTenant != nil {
			t.Tenant = pickTenant()
		}
		if sc.DeadlineSlack > 0 {
			if best, ok := spec.MinTotal(); ok {
				t.Deadline = now + sc.DeadlineSlack*best
			}
		}
		mt.Tasks = append(mt.Tasks, t)
	}
	if err := mt.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid metatask: %w", err)
	}
	return mt, nil
}

// MustGenerate is Generate panicking on error; for use with literal
// scenarios in examples and benchmarks.
func MustGenerate(sc Scenario) *task.Metatask {
	mt, err := Generate(sc)
	if err != nil {
		panic(err)
	}
	return mt
}

// Set1 returns the paper's first-set scenario: N matrix-multiplication
// tasks (sizes uniform over 1200/1500/1800) at mean inter-arrival d.
func Set1(n int, d float64, seed uint64) Scenario {
	return Scenario{
		Name:             fmt.Sprintf("set1-matmul-n%d-d%g-s%d", n, d, seed),
		Specs:            task.MatmulSpecs(),
		N:                n,
		MeanInterarrival: d,
		Seed:             seed,
	}
}

// Set2 returns the paper's second-set scenario: N waste-cpu tasks
// (parameters uniform over 200/400/600) at mean inter-arrival d.
func Set2(n int, d float64, seed uint64) Scenario {
	return Scenario{
		Name:             fmt.Sprintf("set2-wastecpu-n%d-d%g-s%d", n, d, seed),
		Specs:            task.WasteCPUSpecs(),
		N:                n,
		MeanInterarrival: d,
		Seed:             seed,
	}
}

// MultiTenant returns a copy of sc that labels tasks with tenants drawn
// from the given offered-load mix and, when slack > 0, stamps deadlines
// at slack × the spec's best-case nominal duration past arrival.
func MultiTenant(sc Scenario, tenants map[string]float64, slack float64) Scenario {
	sc.Name = sc.Name + "-mt"
	sc.Tenants = tenants
	sc.DeadlineSlack = slack
	return sc
}

// Diurnal returns a second-set scenario driven by the sinusoidal
// day/night inhomogeneous Poisson process (ArrivalDiurnal): N
// waste-cpu tasks whose long-run mean inter-arrival is d seconds,
// with the rate swinging smoothly between (1+A)·λ0 at noon and
// (1−A)·λ0 at night. Tune DiurnalAmplitude and DiurnalPeriod on the
// returned scenario before generating.
func Diurnal(n int, d float64, seed uint64) Scenario {
	sc := Set2(n, d, seed)
	sc.Name = fmt.Sprintf("diurnal-wastecpu-n%d-d%g-s%d", n, d, seed)
	sc.Arrival = ArrivalDiurnal
	return sc
}

// HeavyTail returns a copy of sc whose per-task compute costs are
// scaled by independent unit-mean heavy-tailed factors — Pareto
// (ServicePareto, tail index alpha) or lognormal (ServiceLognormal,
// shape sigma via TailSigma on the result). The offered load is
// unchanged in expectation; the size distribution grows elephants.
func HeavyTail(sc Scenario, dist ServiceProcess, alpha float64) Scenario {
	sc.Name = sc.Name + "-" + dist.String()
	sc.Service = dist
	sc.TailShape = alpha
	return sc
}

// PoissonBurst returns a second-set scenario driven by the
// inhomogeneous Poisson process (ArrivalPoissonBurst): N waste-cpu
// tasks whose long-run mean inter-arrival is d seconds, but which
// arrive in recurring high-rate bursts. Tune BurstFactor, BurstDuty
// and BurstPeriod on the returned scenario before generating to shape
// the bursts.
func PoissonBurst(n int, d float64, seed uint64) Scenario {
	sc := Set2(n, d, seed)
	sc.Name = fmt.Sprintf("poisson-burst-wastecpu-n%d-d%g-s%d", n, d, seed)
	sc.Arrival = ArrivalPoissonBurst
	return sc
}
