package agent

import (
	"sort"

	"casched/internal/htm"
	"casched/internal/sched"
	"casched/internal/task"
)

// batchCache is the sched.Evaluator SubmitBatch hands to heuristics:
// it memoizes per-candidate HTM predictions across the batch so k
// simultaneous arrivals cost one evaluation pass instead of k.
//
// The reuse is exact, not approximate. A candidate's prediction is a
// function of its own trace, the task's cost on it and the arrival
// date; placements on *other* servers do not move it. So after each
// commit only the placed server's entry is dropped (invalidate), and a
// later identical (spec, arrival) evaluation re-projects just that one
// server. Specs are compared by pointer: batch members sharing a
// *task.Spec — the workload generators and the grid/live drivers all
// hand out shared specs — hit the cache; distinct pointers are simply
// evaluated independently.
//
// The cache is only sound while the traces cannot change under it:
// SubmitBatch holds the core lock for the whole batch, and every trace
// mutation goes through core methods that take that lock. Predictions
// also depend on the HTM's trace time (a stale arrival is clamped to
// it), which only advances when an evaluation or placement carries a
// later arrival — so the whole cache is flushed whenever the arrival
// changes, keeping cached entries exactly what a direct EvaluateAll
// would return. Within the simultaneous-arrival runs batching targets,
// nothing is lost.
type batchCache struct {
	m       sched.Evaluator
	arrival float64
	primed  bool
	entries map[*task.Spec]map[string]*htm.Prediction
}

func newBatchCache(m sched.Evaluator) *batchCache {
	return &batchCache{m: m, entries: make(map[*task.Spec]map[string]*htm.Prediction)}
}

// EvaluateAll implements sched.Evaluator. A nil cached entry records a
// candidate known not to solve the task, so insolvable servers are not
// re-probed on every batch member. The "known insolvable" markers are
// written only when the evaluation pass succeeded as a whole: on a
// partial failure the failed candidates stay uncached — a transient
// evaluation error must not poison the cache and silently exclude a
// healthy server from every later batch member's candidate set.
func (bc *batchCache) EvaluateAll(id int, spec *task.Spec, arrival float64, candidates []string) ([]htm.Prediction, error) {
	if !bc.primed || arrival != bc.arrival {
		// Arrival changed: the underlying evaluation context (trace
		// time, flow reference) moved, so earlier entries no longer
		// match what the manager would return.
		clear(bc.entries)
		bc.arrival = arrival
		bc.primed = true
	}
	cached, ok := bc.entries[spec]
	if !ok {
		cached = make(map[string]*htm.Prediction, len(candidates))
		bc.entries[spec] = cached
	}
	missing := candidates[:0:0]
	for _, s := range candidates {
		if _, seen := cached[s]; !seen {
			missing = append(missing, s)
		}
	}
	var err error
	if len(missing) > 0 {
		var preds []htm.Prediction
		preds, err = bc.m.EvaluateAll(id, spec, arrival, missing)
		if err == nil {
			// Every candidate evaluated: the still-missing ones are
			// genuinely insolvable, so record that.
			for _, s := range missing {
				cached[s] = nil
			}
		}
		for i := range preds {
			p := preds[i]
			cached[p.Server] = &p
		}
	}
	out := make([]htm.Prediction, 0, len(candidates))
	for _, s := range candidates {
		if p := cached[s]; p != nil {
			out = append(out, *p)
		}
	}
	// Preserve htm.Manager.EvaluateAll's by-server ordering even when
	// the caller hands an unsorted candidate subset (KPB does), so
	// tie-breaking scans see the same sequence as the direct path.
	sort.Slice(out, func(i, j int) bool { return out[i].Server < out[j].Server })
	if len(out) > 0 {
		// Mirror htm.Manager.EvaluateAll: partial results suppress
		// per-candidate errors (predictAll only fails on empty).
		return out, nil
	}
	return nil, err
}

// ProjectedReady implements sched.Evaluator by delegating: it reads
// the live baseline cache, which placements keep up to date.
func (bc *batchCache) ProjectedReady(server string) (float64, bool) {
	return bc.m.ProjectedReady(server)
}

// invalidate drops every cached prediction for one server after a
// placement mutated its trace.
func (bc *batchCache) invalidate(server string) {
	for _, e := range bc.entries {
		delete(e, server)
	}
}
