package scenario

// Every headline claim printed in a committed benchmarks/scenario-*.txt
// table is pinned here, at the family's committed defaults — the
// tables cannot drift from what the code reproduces.

import (
	"strings"
	"testing"
)

func TestFamiliesRegistry(t *testing.T) {
	fams := Families()
	if len(fams) < 4 {
		t.Fatalf("registry has %d families, want >= 4", len(fams))
	}
	seen := map[string]bool{}
	for _, f := range fams {
		if f.Name == "" || f.Description == "" || f.Run == nil {
			t.Errorf("family %+v incomplete", f.Name)
		}
		if !strings.HasPrefix(f.File, "benchmarks/scenario-") {
			t.Errorf("family %s file %q outside benchmarks/scenario-*", f.Name, f.File)
		}
		if seen[f.Name] {
			t.Errorf("duplicate family name %s", f.Name)
		}
		seen[f.Name] = true
		got, err := FamilyByName(f.Name)
		if err != nil || got.Name != f.Name {
			t.Errorf("FamilyByName(%s) = %v, %v", f.Name, got.Name, err)
		}
	}
	if _, err := FamilyByName("no-such-family"); err == nil {
		t.Error("unknown family resolved")
	}
}

// TestTraceReplayIdentical pins the trace family's claim: the CSV
// round trip drives every shape to the exact projections of the
// direct run.
func TestTraceReplayIdentical(t *testing.T) {
	r, err := Trace(TraceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 2 {
		t.Fatalf("trace ran %d shapes, want >= 2", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !row.Identical {
			t.Errorf("%s: replay diverged from direct run", row.Shape)
		}
		if row.DirectSumFlow != row.ReplaySumFlow {
			t.Errorf("%s: sum-flow %f != %f", row.Shape, row.DirectSumFlow, row.ReplaySumFlow)
		}
		if row.DirectSumFlow <= 0 {
			t.Errorf("%s: no flow measured", row.Shape)
		}
	}
}

// TestDiurnalClaims pins the diurnal family's three claims: the
// generated process matches the closed-form day/night contrast, the
// schedulers absorb the swing (premium ≈ 1), and fair shares hold
// through saturation.
func TestDiurnalClaims(t *testing.T) {
	r, err := Diurnal(DiurnalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := r.DayNightRatio / r.TheoreticalRatio; ratio < 0.85 || ratio > 1.15 {
		t.Errorf("day/night ratio %.2f vs closed form %.2f: off by more than 15%%",
			r.DayNightRatio, r.TheoreticalRatio)
	}
	if len(r.Rows) < 2 {
		t.Fatalf("diurnal ran %d shapes, want >= 2", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Premium < 0.9 || row.Premium > 1.1 {
			t.Errorf("%s: premium %.3f outside [0.9, 1.1] — the swing is no longer absorbed",
				row.Shape, row.Premium)
		}
		if row.MaxShareError > 0.02 {
			t.Errorf("%s: share error %.1fpp exceeds 2pp under saturation",
				row.Shape, 100*row.MaxShareError)
		}
		if row.SaturatedPrefix < 50 {
			t.Errorf("%s: saturated prefix %d too short to measure shares",
				row.Shape, row.SaturatedPrefix)
		}
	}
}

// TestHeavyTailClaims pins the heavy-tail family's claim: at
// unchanged offered load the pain moves from the mean to the tail —
// total flow drops below nominal while the worst single task's flow
// is multiples of nominal's.
func TestHeavyTailClaims(t *testing.T) {
	r, err := HeavyTail(HeavyTailConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r.ParetoMaxOverMean < 10 {
		t.Errorf("Pareto max/mean compute %.1f, want >= 10 (no tail generated)", r.ParetoMaxOverMean)
	}
	if r.LognormalMaxOverMean < 5 {
		t.Errorf("lognormal max/mean compute %.1f, want >= 5", r.LognormalMaxOverMean)
	}
	if len(r.Rows) < 2 {
		t.Fatalf("heavytail ran %d shapes, want >= 2", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.ParetoSumRatio >= 1 {
			t.Errorf("%s: Pareto sum-flow ratio %.2f, want < 1 (mice drain fast)",
				row.Shape, row.ParetoSumRatio)
		}
		if row.LognormalSumRatio >= 1 {
			t.Errorf("%s: lognormal sum-flow ratio %.2f, want < 1", row.Shape, row.LognormalSumRatio)
		}
		if row.ParetoMaxRatio < 1.5 {
			t.Errorf("%s: Pareto max-flow ratio %.2f, want >= 1.5 (tail latency)",
				row.Shape, row.ParetoMaxRatio)
		}
		if row.LognormalMaxRatio < 1.5 {
			t.Errorf("%s: lognormal max-flow ratio %.2f, want >= 1.5", row.Shape, row.LognormalMaxRatio)
		}
	}
}

// TestScenarioFedChaos pins the in-process chaos sub-scenarios at the
// family's committed defaults (the CI chaos job runs this under
// -race).
func TestScenarioFedChaos(t *testing.T) {
	r, err := FedChaos(FedChaosConfig{SkipLeaderKill: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Run("Flap", func(t *testing.T) {
		f := r.Flap
		if f.Placed != f.N {
			t.Errorf("placed %d/%d through the flap", f.Placed, f.N)
		}
		if f.Duplicates != 0 {
			t.Errorf("%d jobs placed more than once", f.Duplicates)
		}
		if !f.EvictionObserved {
			t.Error("killed member was never evicted")
		}
		if !f.ReadmissionObserved {
			t.Error("revived member was never readmitted")
		}
		if f.Ratio < 1.0 || f.Ratio > 1.5 {
			t.Errorf("outage sum-flow ratio %.3f outside [1.0, 1.5]", f.Ratio)
		}
	})
	t.Run("Partition", func(t *testing.T) {
		p := r.Partition
		if !p.DegradedObserved {
			t.Error("members never went stale after the sever")
		}
		if p.RelayRatio > 1.1 {
			t.Errorf("relay degraded routing %.3f× fresh, want <= 1.1×", p.RelayRatio)
		}
		if p.FrozenRatio <= p.RelayRatio {
			t.Errorf("frozen p2c (%.3f×) not worse than relay (%.3f×) — the relay buys nothing",
				p.FrozenRatio, p.RelayRatio)
		}
	})
	t.Run("Slow", func(t *testing.T) {
		s := r.Slow
		if s.Placed != s.N {
			t.Errorf("placed %d/%d around the slow member", s.Placed, s.N)
		}
		if s.Duplicates != 0 {
			t.Errorf("%d jobs placed more than once", s.Duplicates)
		}
		if !s.SlowEvicted {
			t.Error("member past its latency budget was never evicted")
		}
		if s.DroppedOps == 0 {
			t.Error("no calls were actually dropped by injection")
		}
	})
}

// TestScenarioFedChaosLeaderKill pins the real-TCP HA sub-scenario:
// the metatask completes through a leader kill with no duplicate
// placements and a standby holding a later term.
func TestScenarioFedChaosLeaderKill(t *testing.T) {
	if testing.Short() {
		t.Skip("leader-kill e2e needs sockets and scaled wall time")
	}
	res := runLeaderKill()
	if res.Err != "" {
		t.Fatalf("leader-kill sub-scenario: %s", res.Err)
	}
	if !res.Ran {
		t.Fatal("sub-scenario did not run")
	}
	if res.Completed != res.N {
		t.Errorf("completed %d/%d across the failover", res.Completed, res.N)
	}
	if res.Duplicates != 0 {
		t.Errorf("%d jobs placed more than once across the failover", res.Duplicates)
	}
	if !res.FailoverObserved {
		t.Error("no standby took over")
	}
	if !res.TermAtLeastTwo {
		t.Error("post-failover term below 2")
	}
}
