package live

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"time"

	"casched/internal/agent"
	"casched/internal/task"
)

// This file is the member half of the federation protocol: the
// "Member" RPC service every single-core live agent exposes, through
// which a federated dispatcher (internal/fed) drives the agent's core
// — Evaluate/Commit for exact fan-out decisions, Submit/SubmitBatch
// for delegated ones, partition membership, execution feedback and
// the periodic load summary. The dispatcher stamps every timestamp,
// so member clocks never skew the decisions.

// MemberService is the RPC facade over the agent's core. It is
// registered on every single-core agent; sharded agents (Shards > 1)
// cannot federate — a member is itself one partition.
type MemberService struct{ a *Agent }

// memberCore resolves the agent's single core, rejecting sharded
// engines.
func (s *MemberService) memberCore() (*agent.Core, error) {
	if s.a.core == nil {
		return nil, errors.New("live: a sharded agent cannot serve as a federation member")
	}
	return s.a.core, nil
}

// memberRequest resolves a wire task into a core request.
func memberRequest(args MemberTaskArgs) (agent.Request, error) {
	spec, err := task.Resolve(args.Problem, args.Variant)
	if err != nil {
		return agent.Request{}, err
	}
	return agent.Request{
		JobID:     args.JobID,
		TaskID:    args.TaskID,
		Attempt:   args.Attempt,
		Spec:      spec,
		Arrival:   args.Arrival,
		Submitted: args.Submitted,
		Tenant:    args.Tenant,
		Deadline:  args.Deadline,
	}, nil
}

// Evaluate runs the member's heuristic against its partition without
// committing.
func (s *MemberService) Evaluate(args MemberTaskArgs, reply *MemberEvalReply) error {
	core, err := s.memberCore()
	if err != nil {
		return err
	}
	req, err := memberRequest(args)
	if err != nil {
		return err
	}
	cand, err := core.Evaluate(req)
	if errors.Is(err, agent.ErrUnschedulable) {
		reply.Unschedulable = true
		return nil
	}
	if errors.Is(err, agent.ErrDeadlineUnmet) {
		reply.DeadlineUnmet = true
		return nil
	}
	if err != nil {
		return err
	}
	*reply = MemberEvalReply{Server: cand.Server, Score: cand.Score, Tie: cand.Tie, Scored: cand.Scored}
	return nil
}

// Commit commits a previously evaluated placement.
func (s *MemberService) Commit(args MemberCommitArgs, reply *MemberDecisionReply) error {
	core, err := s.memberCore()
	if err != nil {
		return err
	}
	if err := s.a.admitTerm(args.Task.Term); err != nil {
		return err
	}
	req, err := memberRequest(args.Task)
	if err != nil {
		return err
	}
	dec, err := core.Commit(req, args.Server)
	if err != nil {
		return err
	}
	*reply = MemberDecisionReply{Server: dec.Server, Predicted: dec.Predicted, HasPrediction: dec.HasPrediction}
	return nil
}

// Submit delegates one whole decision to the member.
func (s *MemberService) Submit(args MemberTaskArgs, reply *MemberDecisionReply) error {
	core, err := s.memberCore()
	if err != nil {
		return err
	}
	if err := s.a.admitTerm(args.Term); err != nil {
		return err
	}
	req, err := memberRequest(args)
	if err != nil {
		return err
	}
	dec, err := core.Submit(req)
	if errors.Is(err, agent.ErrUnschedulable) {
		reply.Unschedulable = true
		return nil
	}
	if errors.Is(err, agent.ErrDeadlineUnmet) {
		reply.DeadlineUnmet = true
		return nil
	}
	if err != nil {
		return err
	}
	*reply = MemberDecisionReply{Server: dec.Server, Predicted: dec.Predicted, HasPrediction: dec.HasPrediction}
	return nil
}

// SubmitBatch pipelines a burst through the member's batch prediction
// cache. Per-request failures leave zero decisions; their joined
// errors travel flattened in the reply rather than failing the RPC.
func (s *MemberService) SubmitBatch(args MemberBatchArgs, reply *MemberBatchReply) error {
	core, err := s.memberCore()
	if err != nil {
		return err
	}
	var term uint64
	for _, t := range args.Tasks {
		if t.Term > term {
			term = t.Term
		}
	}
	if err := s.a.admitTerm(term); err != nil {
		return err
	}
	reqs := make([]agent.Request, len(args.Tasks))
	for i, t := range args.Tasks {
		req, err := memberRequest(t)
		if err != nil {
			return fmt.Errorf("live: batch job %d: %w", t.JobID, err)
		}
		reqs[i] = req
	}
	decs, err := core.SubmitBatch(reqs)
	reply.Decisions = make([]MemberDecisionReply, len(decs))
	for i, d := range decs {
		reply.Decisions[i] = MemberDecisionReply{Server: d.Server, Predicted: d.Predicted, HasPrediction: d.HasPrediction}
	}
	if err != nil {
		reply.Error = err.Error()
	}
	return nil
}

// CanSolve answers the dispatcher's eligibility probe.
func (s *MemberService) CanSolve(args MemberCanSolveArgs, reply *MemberCanSolveReply) error {
	core, err := s.memberCore()
	if err != nil {
		return err
	}
	spec, err := task.Resolve(args.Problem, args.Variant)
	if err != nil {
		return err
	}
	reply.OK = core.CanSolve(spec)
	return nil
}

// AddServer registers a server into the member's partition.
func (s *MemberService) AddServer(args MemberServerArgs, _ *Ack) error {
	core, err := s.memberCore()
	if err != nil {
		return err
	}
	core.AddServer(args.Name)
	return nil
}

// RemoveServer withdraws a server from the member's partition.
func (s *MemberService) RemoveServer(args MemberServerArgs, _ *Ack) error {
	core, err := s.memberCore()
	if err != nil {
		return err
	}
	core.RemoveServer(args.Name)
	return nil
}

// Complete feeds a completion message to the member's core.
func (s *MemberService) Complete(args TaskDoneArgs, _ *Ack) error {
	core, err := s.memberCore()
	if err != nil {
		return err
	}
	core.Complete(args.TaskKey, args.Server, args.At)
	return nil
}

// Report feeds a monitor report to the member's core.
func (s *MemberService) Report(args LoadReportArgs, _ *Ack) error {
	core, err := s.memberCore()
	if err != nil {
		return err
	}
	core.Report(args.Name, args.Load, args.At)
	return nil
}

// Summary returns the member's load summary — also the dispatcher's
// liveness probe.
func (s *MemberService) Summary(_ Ack, reply *MemberSummaryReply) error {
	core, err := s.memberCore()
	if err != nil {
		return err
	}
	ls := core.LoadSummary()
	reply.InFlight = ls.InFlight
	reply.Servers = ls.Servers
	reply.MinReady, reply.HasMinReady = ls.MinReady, ls.HasMinReady
	if len(ls.TenantInFlight) > 0 {
		reply.TenantInFlight = ls.TenantInFlight
	}
	reply.ServerReady = ls.ServerReady
	reply.RelaySeq = ls.RelaySeq
	reply.HasRelay = ls.HasRelay
	return nil
}

// Relay streams the member's decision/completion events after the
// requested ledger sequence (the federation dispatcher's near-fresh
// routing feed). A member running with the relay off answers
// Disabled; members older than this method don't have it at all, and
// the dispatcher classifies the resulting rpc "can't find method"
// error the same way.
func (s *MemberService) Relay(args MemberRelayArgs, reply *MemberRelayReply) error {
	core, err := s.memberCore()
	if err != nil {
		return err
	}
	delta, ok := core.RelaySince(args.Since)
	if !ok {
		reply.Disabled = true
		return nil
	}
	reply.From, reply.To, reply.Resync = delta.From, delta.To, delta.Resync
	if len(delta.Events) > 0 {
		reply.Events = make([]RelayEvent, len(delta.Events))
		for i, ev := range delta.Events {
			reply.Events[i] = RelayEvent{
				Seq:      ev.Seq,
				Kind:     uint8(ev.Kind),
				JobID:    ev.JobID,
				Tenant:   ev.Tenant,
				Server:   ev.Server,
				Time:     ev.Time,
				Ready:    ev.Ready,
				HasReady: ev.HasReady,
			}
		}
	}
	return nil
}

// Partition lists the servers this member currently owns. A freshly
// promoted dispatcher queries it to adopt the federation's real
// partition before the servers re-register through the new leader.
func (s *MemberService) Partition(_ Ack, reply *MemberPartitionReply) error {
	core, err := s.memberCore()
	if err != nil {
		return err
	}
	reply.Servers = core.Servers()
	return nil
}

// WireCaps answers the framed-wire capability probe (see frame.go): a
// dispatcher asks over gob before opening a framed connection for the
// hot decision RPCs. Members that predate this method answer net/rpc's
// "can't find method" and the dispatcher stays on gob.
func (s *MemberService) WireCaps(_ Ack, reply *MemberWireCapsReply) error {
	reply.FrameVersion = FrameVersion
	return nil
}

// Fence raises the member's election fencing watermark — called by a
// freshly promoted dispatcher on every member before it serves
// clients, so a deposed leader's in-flight commits are refused even
// if the new leader has not placed anything yet.
func (s *MemberService) Fence(args MemberFenceArgs, _ *Ack) error {
	return s.a.admitTerm(args.Term)
}

// joinTimeout bounds the dial and the Fed.Join RPC so a blackholed
// dispatcher address fails agent startup instead of hanging it.
const joinTimeout = 5 * time.Second

// join announces this agent to a federation dispatcher.
func join(dispatcherAddr string, args JoinArgs) error {
	conn, err := net.DialTimeout("tcp", dispatcherAddr, joinTimeout)
	if err != nil {
		return fmt.Errorf("live: dial federation dispatcher: %w", err)
	}
	client := rpc.NewClient(conn)
	defer client.Close()
	call := client.Go("Fed.Join", args, &Ack{}, make(chan *rpc.Call, 1))
	timer := time.NewTimer(joinTimeout)
	defer timer.Stop()
	select {
	case <-call.Done:
		if call.Error != nil {
			return fmt.Errorf("live: join federation: %w", call.Error)
		}
		return nil
	case <-timer.C:
		return fmt.Errorf("live: join federation: no answer from %s within %s", dispatcherAddr, joinTimeout)
	}
}

// leave announces this agent's graceful departure to one dispatcher.
// Best-effort: unreachable dispatchers and ones predating Fed.Leave
// ("can't find method") are simply skipped — eviction cleans up.
func leave(dispatcherAddr string, args LeaveArgs) {
	conn, err := net.DialTimeout("tcp", dispatcherAddr, joinTimeout)
	if err != nil {
		return
	}
	client := rpc.NewClient(conn)
	defer client.Close()
	call := client.Go("Fed.Leave", args, &Ack{}, make(chan *rpc.Call, 1))
	timer := time.NewTimer(joinTimeout)
	defer timer.Stop()
	select {
	case <-call.Done:
	case <-timer.C:
	}
}
