// Ganttdemo reproduces Figure 1 of the paper: the Historical Trace
// Manager's Gantt chart of a time-shared server before and after a new
// task is mapped, showing the CPU share going from 100%/50% to 33.3%
// and the perturbation inflicted on the running tasks.
//
// It then replays §2.3's "usefulness" example: two identical servers,
// equal load counts but different remaining work — invisible to a
// monitor-based scheduler, obvious to the HTM.
package main

import (
	"fmt"
	"log"

	"casched"
)

func main() {
	out, err := casched.Figure1(72)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	// §2.3 usefulness example.
	fmt.Println("---")
	fmt.Println("Usefulness of the HTM (§2.3): two identical servers, both loaded")
	fmt.Println("with one task; T1 (100s) on s1, T2 (200s) on s2; at t=80 a 100s")
	fmt.Println("task must be placed. A monitor sees load=1 on both; the HTM sees")
	fmt.Println("the remaining work:")

	spec := func(c float64) *casched.Spec {
		return &casched.Spec{
			Problem: "p",
			CostOn: map[string]casched.Cost{
				"s1": {Compute: c},
				"s2": {Compute: c},
			},
		}
	}
	m := casched.NewHTM([]string{"s1", "s2"})
	if err := m.Place(1, spec(100), 0, "s1"); err != nil {
		log.Fatal(err)
	}
	if err := m.Place(2, spec(200), 0, "s2"); err != nil {
		log.Fatal(err)
	}
	for _, srv := range []string{"s1", "s2"} {
		p, err := m.Evaluate(3, spec(100), 80, srv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  on %s: predicted completion %.0fs (perturbation %.0fs)\n",
			srv, p.Completion, p.Perturbation)
	}
	fmt.Println("The HTM schedules the task on s1, finishing 80s earlier.")
}
