package metrics

import (
	"strings"
	"testing"
)

func distResults() []TaskResult {
	rs := make([]TaskResult, 0, 100)
	for i := 0; i < 100; i++ {
		server := "fast"
		if i%4 == 0 {
			server = "slow"
		}
		rs = append(rs, TaskResult{
			ID: i, Arrival: float64(i), Completion: float64(i) + float64(i%10+1)*10,
			UnloadedDuration: 10, Completed: true, Server: server,
		})
	}
	return rs
}

func TestComputeDistribution(t *testing.T) {
	d := ComputeDistribution("H", distResults())
	if d.FlowP50 <= 0 || d.FlowP99 < d.FlowP90 || d.FlowP90 < d.FlowP50 {
		t.Errorf("flow percentiles not monotone: %+v", d)
	}
	if d.MeanFlow <= 0 {
		t.Error("mean flow missing")
	}
	if d.PerServer["fast"] != 75 || d.PerServer["slow"] != 25 {
		t.Errorf("per-server counts: %+v", d.PerServer)
	}
	if d.StretchP99 < d.StretchP50 {
		t.Error("stretch percentiles not monotone")
	}
}

func TestComputeDistributionEmpty(t *testing.T) {
	d := ComputeDistribution("H", []TaskResult{{ID: 0, Completed: false}})
	if d.FlowP50 != 0 || len(d.PerServer) != 0 {
		t.Errorf("empty distribution: %+v", d)
	}
}

func TestDistributionFormat(t *testing.T) {
	out := ComputeDistribution("MSF", distResults()).Format()
	for _, want := range []string{"MSF flow", "MSF stretch", "tasks per server", "fast:75"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

func TestSoonerMatrix(t *testing.T) {
	a := []TaskResult{res(0, 0, 10, 1), res(1, 0, 20, 1)}
	b := []TaskResult{res(0, 0, 15, 1), res(1, 0, 15, 1)}
	names, m, err := SoonerMatrix(map[string][]TaskResult{"A": a, "B": b})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "A" {
		t.Fatalf("names = %v", names)
	}
	// A sooner than B: task 0 (10<15). B sooner than A: task 1 (15<20).
	if m[0][1] != 1 || m[1][0] != 1 || m[0][0] != 0 {
		t.Errorf("matrix = %v", m)
	}
	out := FormatSoonerMatrix(names, m)
	if !strings.Contains(out, "A") || !strings.Contains(out, "-") {
		t.Errorf("matrix format:\n%s", out)
	}
}

func TestSoonerMatrixMismatch(t *testing.T) {
	a := []TaskResult{res(0, 0, 10, 1)}
	b := []TaskResult{res(5, 0, 15, 1)}
	if _, _, err := SoonerMatrix(map[string][]TaskResult{"A": a, "B": b}); err == nil {
		t.Error("mismatched metatasks accepted")
	}
}
