// Package gantt renders the per-server Gantt charts the paper's
// Historical Trace Manager builds (Figure 1): for every job placed on a
// server, the chart shows its input-transfer, compute and output
// phases over time, and the CPU share evolution implied by processor
// sharing.
package gantt

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"casched/internal/fluid"
	"casched/internal/task"
)

// Segment is one phase interval of one job.
type Segment struct {
	JobID int
	Phase task.Phase
	Start float64
	End   float64
}

// ShareInterval is a time interval during which the number of
// concurrently computing jobs — hence each job's CPU share — is
// constant.
type ShareInterval struct {
	Start, End float64
	// Computing is the number of jobs in the compute phase.
	Computing int
}

// Share returns the per-job CPU fraction of the interval (1 when no
// job computes, matching the "100%" label of an idle/solo CPU in
// Figure 1).
func (si ShareInterval) Share() float64 {
	if si.Computing <= 1 {
		return 1
	}
	return 1 / float64(si.Computing)
}

// Chart is an extracted per-server schedule ready for rendering.
type Chart struct {
	Server   string
	Segments []Segment
	Shares   []ShareInterval
	Horizon  float64
}

// Extract projects the simulation to idle (on a clone, leaving the
// input untouched) and returns the resulting chart. Jobs that never
// complete (collapse) contribute the segments they did execute.
func Extract(sim *fluid.Sim) *Chart {
	c := sim.Clone()
	c.RunToIdle(math.Inf(1))
	chart := &Chart{Server: c.Name()}

	for _, id := range c.SortedIDs() {
		j := c.Job(id)
		for p := task.Phase(0); p < task.NumPhases; p++ {
			if math.IsNaN(j.Start[p]) || math.IsNaN(j.End[p]) {
				continue
			}
			if j.End[p] <= j.Start[p] {
				continue // zero-length phase: not drawable
			}
			chart.Segments = append(chart.Segments, Segment{
				JobID: id, Phase: p, Start: j.Start[p], End: j.End[p],
			})
			if j.End[p] > chart.Horizon {
				chart.Horizon = j.End[p]
			}
		}
	}
	chart.Shares = shareIntervals(chart.Segments, chart.Horizon)
	return chart
}

// shareIntervals derives the piecewise-constant compute-share timeline.
func shareIntervals(segs []Segment, horizon float64) []ShareInterval {
	cuts := map[float64]bool{0: true, horizon: true}
	for _, s := range segs {
		if s.Phase == task.PhaseCompute {
			cuts[s.Start] = true
			cuts[s.End] = true
		}
	}
	times := make([]float64, 0, len(cuts))
	for t := range cuts {
		times = append(times, t)
	}
	sort.Float64s(times)

	var out []ShareInterval
	for i := 0; i+1 < len(times); i++ {
		lo, hi := times[i], times[i+1]
		if hi-lo < 1e-12 {
			continue
		}
		mid := (lo + hi) / 2
		n := 0
		for _, s := range segs {
			if s.Phase == task.PhaseCompute && s.Start <= mid && mid < s.End {
				n++
			}
		}
		out = append(out, ShareInterval{Start: lo, End: hi, Computing: n})
	}
	return out
}

// phaseRune maps phases to their chart glyphs.
func phaseRune(p task.Phase) byte {
	switch p {
	case task.PhaseInput:
		return 'i'
	case task.PhaseCompute:
		return 'C'
	case task.PhaseOutput:
		return 'o'
	}
	return '?'
}

// Render draws the chart as fixed-width ASCII art, width columns wide
// (minimum 10). Each job gets one row; a share row summarizes the CPU
// split, echoing the percentage annotations of Figure 1.
func (c *Chart) Render(width int) string {
	if width < 10 {
		width = 10
	}
	if c.Horizon <= 0 || len(c.Segments) == 0 {
		return fmt.Sprintf("server %s: empty schedule\n", c.Server)
	}
	scale := c.Horizon / float64(width)

	var sb strings.Builder
	fmt.Fprintf(&sb, "server %s  horizon=%.1fs  (1 col = %.2fs; i=input C=compute o=output)\n",
		c.Server, c.Horizon, scale)

	ids := make([]int, 0)
	seen := map[int]bool{}
	for _, s := range c.Segments {
		if !seen[s.JobID] {
			seen[s.JobID] = true
			ids = append(ids, s.JobID)
		}
	}
	sort.Ints(ids)

	col := func(t float64) int {
		k := int(t / scale)
		if k >= width {
			k = width - 1
		}
		if k < 0 {
			k = 0
		}
		return k
	}

	for _, id := range ids {
		row := bytes(width, '.')
		for _, s := range c.Segments {
			if s.JobID != id {
				continue
			}
			lo, hi := col(s.Start), col(s.End)
			for k := lo; k <= hi && k < width; k++ {
				row[k] = phaseRune(s.Phase)
			}
		}
		fmt.Fprintf(&sb, "task %-4d |%s|\n", id, string(row))
	}

	// Share row: number of computing tasks per column.
	row := bytes(width, ' ')
	for _, si := range c.Shares {
		ch := byte('0' + si.Computing%10)
		if si.Computing == 0 {
			ch = '.'
		}
		lo, hi := col(si.Start), col(si.End)
		for k := lo; k <= hi && k < width; k++ {
			row[k] = ch
		}
	}
	fmt.Fprintf(&sb, "#compute  |%s|\n", string(row))

	// Percentage annotation, as in Figure 1 (100 %, 50 %, 33.3 %...).
	var parts []string
	for _, si := range c.Shares {
		parts = append(parts, fmt.Sprintf("[%.0f-%.0fs: %d tasks @ %.1f%%]",
			si.Start, si.End, si.Computing, 100*si.Share()))
	}
	sb.WriteString("CPU shares: " + strings.Join(parts, " ") + "\n")
	return sb.String()
}

// bytes returns a width-byte slice filled with fill.
func bytes(width int, fill byte) []byte {
	b := make([]byte, width)
	for i := range b {
		b[i] = fill
	}
	return b
}

// ExtractServers extracts one chart per server simulation, sorted by
// server name — the whole-platform view of the HTM's traces.
func ExtractServers(sims map[string]*fluid.Sim) []*Chart {
	names := make([]string, 0, len(sims))
	for n := range sims {
		names = append(names, n)
	}
	sort.Strings(names)
	charts := make([]*Chart, 0, len(names))
	for _, n := range names {
		charts = append(charts, Extract(sims[n]))
	}
	return charts
}

// RenderAll renders several charts one below the other.
func RenderAll(charts []*Chart, width int) string {
	var sb strings.Builder
	for i, c := range charts {
		if i > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString(c.Render(width))
	}
	return sb.String()
}
