// Package relay implements the live event relay between federation
// members and the dispatcher: a per-member Ledger of sequence-numbered
// decision/completion events (the bitswap per-peer ledger pattern) and
// a dispatcher-side View that folds relayed deltas — plus optimistic
// local accounting for decisions already delegated but not yet echoed
// back — onto the member's last gossiped load summary, synthesizing a
// near-fresh routing picture between gossip ticks.
package relay

import "sync"

// Kind discriminates relayed events.
type Kind uint8

const (
	// Decision records one committed placement on the member.
	Decision Kind = 1
	// Completion records one completion message consumed by the member.
	Completion Kind = 2
)

// Event is one member-side scheduling transition. Events are
// sequence-numbered per member ledger; Seq is assigned by Append.
type Event struct {
	Seq    uint64
	Kind   Kind
	JobID  int
	Tenant string
	Server string
	// Time is the experiment-time instant of the transition (the
	// request arrival for decisions, the completion date for
	// completions).
	Time float64
	// Ready is the server's projected-ready instant after the
	// transition, when the member's HTM knows it.
	Ready    float64
	HasReady bool
}

// Delta is a batch of events covering the half-open sequence interval
// (From, To]. Resync reports that the ledger has already dropped part
// of the requested range: the receiver's view is unrecoverable from
// events alone and must be rebased on a fresh summary.
type Delta struct {
	Events []Event
	From   uint64
	To     uint64
	Resync bool
}

// DefaultCapacity is the ledger ring size when the member does not
// choose one. It comfortably covers the decisions a member commits
// between two dispatcher pulls at production gossip cadence.
const DefaultCapacity = 4096

// Ledger is a bounded, append-only ring of a member's scheduling
// events. Appends assign monotonically increasing sequence numbers;
// readers poll Since(after) for the events they have not seen. When a
// reader falls further behind than the ring remembers, Since answers
// Resync instead of silently returning a gapped stream.
type Ledger struct {
	mu  sync.Mutex
	buf []Event
	seq uint64
	cap int
}

// NewLedger returns an empty ledger remembering at most capacity
// events (capacity <= 0 selects DefaultCapacity).
func NewLedger(capacity int) *Ledger {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Ledger{cap: capacity}
}

// Append stamps ev with the next sequence number, stores it, and
// returns the assigned sequence.
func (l *Ledger) Append(ev Event) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	ev.Seq = l.seq
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, ev)
	} else {
		l.buf[int((l.seq-1)%uint64(l.cap))] = ev
	}
	return l.seq
}

// Seq returns the last assigned sequence number (0 when empty).
func (l *Ledger) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Since returns the events with sequence numbers in (after, current].
// When the ring has already dropped part of that range the delta
// carries Resync=true and no events: the caller must rebase on a full
// summary before resuming the stream.
func (l *Ledger) Since(after uint64) Delta {
	l.mu.Lock()
	defer l.mu.Unlock()
	d := Delta{From: after, To: l.seq}
	if after >= l.seq || len(l.buf) == 0 {
		return d
	}
	oldest := l.seq - uint64(len(l.buf)) + 1
	if after+1 < oldest {
		d.Resync = true
		return d
	}
	n := int(l.seq - after)
	d.Events = make([]Event, 0, n)
	for s := after + 1; s <= l.seq; s++ {
		d.Events = append(d.Events, l.buf[int((s-1)%uint64(l.cap))])
	}
	return d
}
