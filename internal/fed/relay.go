package fed

// Dispatcher-side half of the live event relay: pulling each
// relay-capable member's decision/completion deltas (relaySource),
// folding them into the member's view, and pricing degraded-mode
// routing on the resulting near-fresh per-server backlog picture. The
// member-side half is the agent core's relay ledger; the wire is
// internal/live's Member.Relay RPC.

import (
	"sort"
	"sync"

	"casched/internal/agent"
	"casched/internal/relay"
)

// RelayStats aggregates the dispatcher's relay accounting: how many
// member events were folded (the bandwidth side of the trade) and how
// many degraded-mode decisions were routed on relay pricing rather
// than summary-only power-of-two-choices (the quality side).
type RelayStats struct {
	EventsFolded uint64
	Delegated    uint64
}

// RelayStats returns the dispatcher's relay counters (zero with the
// relay off).
func (d *Dispatcher) RelayStats() RelayStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return RelayStats{EventsFolded: d.relayFolded, Delegated: d.relayRouted}
}

// relayDue pulls relay deltas from members whose last pull is older
// than RelayInterval. Caller must NOT hold d.mu. A no-op with the
// relay off.
func (d *Dispatcher) relayDue() {
	if d.cfg.Relay {
		d.relayPull(false)
	}
}

// PullRelay forces a relay pull of every synced member regardless of
// RelayInterval — the background relay tick of the TCP runtime, and
// the freshness dial of the federation study.
func (d *Dispatcher) PullRelay() {
	if d.cfg.Relay {
		d.relayPull(true)
	}
}

// relayPull collects the members due a relay pull, performs the pulls
// OUTSIDE the dispatch lock (like summary refresh: a slow member's
// RPC must not stall routing), and re-locks to fold the deltas. Only
// members whose view is synced are pulled — an unsynced view cannot
// fold a delta and waits for the next summary rebase instead; members
// that answered "no relay" (relayCap < 0) are skipped until a summary
// proves otherwise.
func (d *Dispatcher) relayPull(force bool) {
	type pull struct {
		i     int
		src   relaySource
		since uint64
	}
	d.mu.Lock()
	now := d.cfg.Now()
	var pulls []pull
	for i, ms := range d.members {
		if ms.evicted || ms.left || ms.relayFetching || ms.view == nil || !ms.view.Synced() || ms.relayCap < 0 {
			continue
		}
		src, ok := ms.m.(relaySource)
		if !ok {
			ms.relayCap = -1
			continue
		}
		if !force && !ms.relayFetched.IsZero() && now.Sub(ms.relayFetched) < d.cfg.RelayInterval {
			continue
		}
		ms.relayFetching = true
		pulls = append(pulls, pull{i: i, src: src, since: ms.view.Seq()})
	}
	d.mu.Unlock()
	if len(pulls) == 0 {
		return
	}
	var wg sync.WaitGroup
	for _, p := range pulls {
		wg.Add(1)
		go func(p pull) {
			defer wg.Done()
			delta, ok, err := p.src.RelaySince(p.since)
			d.applyRelay(p.i, p.src, delta, ok, err)
		}(p)
	}
	wg.Wait()
}

// applyRelay folds one relay-pull outcome. Mirrors applyFetch: the
// source identity check discards results from a handle the slot has
// been rejoined away from, and only transport failures count toward
// eviction. A member that answers "relay unsupported" is remembered
// as such until a later summary advertises relay again.
func (d *Dispatcher) applyRelay(i int, src relaySource, delta relay.Delta, ok bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ms := d.members[i]
	ms.relayFetching = false
	cur, _ := ms.m.(relaySource)
	if cur != src {
		return
	}
	if err != nil {
		d.markTransportLocked(i, err)
		return
	}
	if !ok {
		ms.relayCap = -1
		ms.view.Unsync()
		return
	}
	ms.relayCap = 1
	ms.relayFetched = d.cfg.Now()
	if applied := ms.view.Apply(delta); applied > 0 {
		d.relayFolded += uint64(applied)
		// The view moved: the member is visibly absorbing work, so the
		// consecutive-delegation bound re-arms.
		ms.consec = 0
	}
}

// noteDelegatedLocked records one degraded-mode delegation in the
// member's relay accounting: the view's in-flight and the chosen
// server's backlog are bumped optimistically the moment the decision
// is delegated, reconciled when the member's relayed decision event
// arrives (or dropped by the next summary rebase that already counts
// it). Caller holds d.mu; a no-op with the relay off.
func (d *Dispatcher) noteDelegatedLocked(i int, req agent.Request, dec agent.Decision, viaRelay bool) {
	ms := d.members[i]
	if ms.view == nil {
		return
	}
	ms.delegSeq++
	ms.consec++
	cost := 0.0
	if c, ok := req.Spec.Cost(dec.Server); ok {
		cost = c.Total()
	}
	ms.view.Optimistic(req.JobID, req.Tenant, dec.Server, req.Arrival, cost, ms.delegSeq)
	if viaRelay {
		d.relayRouted++
	}
}

// relayOrderLocked orders live members for one degraded-mode decision
// by the estimated completion of the request on each member's best
// server: est = max(arrival, projected-ready) + total cost, priced
// from the member's relay view (near-fresh drains plus the optimistic
// backlog of unconfirmed delegations). Members whose view cannot
// price the request (unsynced, no per-server drains, or no solving
// server) fall back to the summary-only power-of-two ranking, after
// every priced member. Members over the consecutive-delegation bound
// are demoted to the very end — a member whose view stopped advancing
// must not absorb an unbounded run of decisions on frozen estimates.
//
// ok is false when no member can be priced at all, in which case the
// caller routes entirely by orderLocked (and the rng stream advances
// exactly as it would with the relay off — the parity contract).
// Caller holds d.mu.
func (d *Dispatcher) relayOrderLocked(req agent.Request, live []int) ([]int, bool) {
	if !d.cfg.Relay {
		return nil, false
	}
	priceable := false
	for _, i := range live {
		ms := d.members[i]
		if ms.view != nil && ms.view.Synced() && ms.view.HasReady() {
			priceable = true
			break
		}
	}
	if !priceable {
		return nil, false
	}
	// One pass over the partition map prices every member's best
	// server: the dispatcher knows the full server→member assignment
	// and every task spec carries its per-server costs, so the relay's
	// per-server drains are enough to estimate completions globally.
	est := make(map[int]float64, len(live))
	for server, i := range d.home {
		ms := d.members[i]
		if ms.evicted || ms.view == nil || !ms.view.Synced() {
			continue
		}
		c, ok := req.Spec.Cost(server)
		if !ok {
			continue
		}
		r, ok := ms.view.Ready(server)
		if !ok {
			continue
		}
		if req.Arrival > r {
			r = req.Arrival
		}
		e := r + c.Total()
		if cur, seen := est[i]; !seen || e < cur {
			est[i] = e
		}
	}
	type scored struct {
		i   int
		est float64
	}
	var priced, demoted []scored
	var rest []int
	for _, i := range live {
		e, ok := est[i]
		if !ok {
			rest = append(rest, i)
			continue
		}
		if d.members[i].consec >= d.cfg.RelayMaxConsecutive {
			demoted = append(demoted, scored{i, e})
			continue
		}
		priced = append(priced, scored{i, e})
	}
	if len(priced) == 0 && len(demoted) == 0 {
		return nil, false
	}
	sort.SliceStable(priced, func(a, b int) bool { return priced[a].est < priced[b].est })
	sort.SliceStable(demoted, func(a, b int) bool { return demoted[a].est < demoted[b].est })
	out := make([]int, 0, len(live))
	for _, s := range priced {
		out = append(out, s.i)
	}
	if len(rest) > 0 {
		// Unpriceable members keep their historical p2c ranking among
		// themselves (this consumes the rng only when such members
		// exist, so fully-priced federations keep a deterministic
		// stream).
		out = append(out, d.orderLocked(req.Arrival, rest, req.Tenant)...)
	}
	for _, s := range demoted {
		out = append(out, s.i)
	}
	return out, true
}
