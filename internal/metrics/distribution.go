package metrics

import (
	"fmt"
	"sort"
	"strings"

	"casched/internal/stats"
)

// Distribution summarizes the flow and stretch distributions of one
// run — the tail behaviour behind the paper's max-flow and max-stretch
// columns.
type Distribution struct {
	Heuristic string
	// Flow percentiles in seconds.
	FlowP50, FlowP90, FlowP95, FlowP99 float64
	// MeanFlow is the average flow (sum-flow / completed).
	MeanFlow float64
	// Stretch percentiles.
	StretchP50, StretchP90, StretchP99 float64
	// PerServer counts completed tasks per server, a load-balance view.
	PerServer map[string]int
}

// ComputeDistribution derives the distribution profile of a run.
func ComputeDistribution(heuristic string, results []TaskResult) Distribution {
	d := Distribution{Heuristic: heuristic, PerServer: make(map[string]int)}
	var flows, stretches []float64
	for _, r := range results {
		if !r.Completed {
			continue
		}
		flows = append(flows, r.Flow())
		stretches = append(stretches, r.Stretch())
		d.PerServer[r.Server]++
	}
	if len(flows) == 0 {
		return d
	}
	d.FlowP50, d.FlowP90, d.FlowP95, d.FlowP99 = stats.Percentiles(flows)
	d.MeanFlow = stats.Mean(flows)
	d.StretchP50 = stats.Quantile(stretches, 0.50)
	d.StretchP90 = stats.Quantile(stretches, 0.90)
	d.StretchP99 = stats.Quantile(stretches, 0.99)
	return d
}

// Format renders the distribution as a compact block.
func (d Distribution) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s flow p50/p90/p95/p99 = %.0f/%.0f/%.0f/%.0f s (mean %.0f)\n",
		d.Heuristic, d.FlowP50, d.FlowP90, d.FlowP95, d.FlowP99, d.MeanFlow)
	fmt.Fprintf(&sb, "%s stretch p50/p90/p99  = %.2f/%.2f/%.2f\n",
		d.Heuristic, d.StretchP50, d.StretchP90, d.StretchP99)
	servers := make([]string, 0, len(d.PerServer))
	for s := range d.PerServer {
		servers = append(servers, s)
	}
	sort.Strings(servers)
	fmt.Fprintf(&sb, "%s tasks per server     =", d.Heuristic)
	for _, s := range servers {
		fmt.Fprintf(&sb, " %s:%d", s, d.PerServer[s])
	}
	sb.WriteString("\n")
	return sb.String()
}

// SoonerMatrix computes the pairwise finish-sooner counts between
// several runs of the same metatask: cell [i][j] is the number of
// tasks that finish strictly sooner under run i than under run j.
// It generalizes the paper's "number of tasks that finish sooner than
// with NetSolve's MCT" row to every heuristic pair.
func SoonerMatrix(runs map[string][]TaskResult) (names []string, matrix [][]int, err error) {
	names = make([]string, 0, len(runs))
	for n := range runs {
		names = append(names, n)
	}
	sort.Strings(names)
	matrix = make([][]int, len(names))
	for i, a := range names {
		matrix[i] = make([]int, len(names))
		for j, b := range names {
			if i == j {
				continue
			}
			n, err := FinishSooner(runs[a], runs[b])
			if err != nil {
				return nil, nil, fmt.Errorf("metrics: sooner matrix %s vs %s: %w", a, b, err)
			}
			matrix[i][j] = n
		}
	}
	return names, matrix, nil
}

// FormatSoonerMatrix renders a SoonerMatrix as a table.
func FormatSoonerMatrix(names []string, matrix [][]int) string {
	var sb strings.Builder
	sb.WriteString("rows finish sooner than columns:\n")
	fmt.Fprintf(&sb, "%-12s", "")
	for _, n := range names {
		fmt.Fprintf(&sb, " %10s", n)
	}
	sb.WriteString("\n")
	for i, n := range names {
		fmt.Fprintf(&sb, "%-12s", n)
		for j := range names {
			if i == j {
				fmt.Fprintf(&sb, " %10s", "-")
			} else {
				fmt.Fprintf(&sb, " %10d", matrix[i][j])
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
