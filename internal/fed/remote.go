package fed

import (
	"errors"
	"fmt"
	"maps"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"time"

	"casched/internal/agent"
	"casched/internal/live"
	"casched/internal/relay"
	"casched/internal/task"
)

// ErrTimeout marks a member RPC that exceeded the per-member budget;
// it counts as a transport failure toward eviction.
var ErrTimeout = errors.New("fed: member call timed out")

// defaultTimeout bounds member RPCs when RemoteConfig leaves Timeout
// zero.
const defaultTimeout = 2 * time.Second

// Remote is the TCP Member: a handle on a remote casagent's "Member"
// RPC service, speaking the live wire protocol. Calls are bounded by
// the per-member timeout; a timed-out or broken connection is dropped
// and redialed lazily on the next call, so a member that recovers
// becomes reachable again without dispatcher intervention (the
// readmission probe exercises exactly this path).
//
// Tasks cross the wire as (Problem, Variant) registry pairs, so only
// registry-resolvable specs can be federated over TCP — the same
// restriction the client protocol has.
type Remote struct {
	name    string
	addr    string
	timeout time.Duration

	mu     sync.Mutex
	client *rpc.Client
	// relayUnsupported caches a definitive "this member does not speak
	// relay" answer (Disabled reply, or an rpc can't-find-method error
	// from a pre-relay binary), so the dispatcher asks at most once
	// per handle. A rejoin creates a fresh Remote, re-probing.
	relayUnsupported bool

	// wire is the negotiated framed connection carrying the hot member
	// RPCs (Evaluate/Commit/Submit/SubmitBatch/Summary/Relay) with a
	// pipelined request window; everything else stays on gob. Nil until
	// the Member.WireCaps probe succeeds. wireUnsupported caches the
	// definitive negotiated-down answer (a member predating WireCaps,
	// or one reporting an incompatible frame version) so an old gob
	// peer is probed at most once per handle; forceGob pins the handle
	// to gob regardless, for parity tests and rollback.
	wire            *live.FrameClient
	wireUnsupported bool
	forceGob        bool

	// termSource, when set, stamps every mutating call with the
	// dispatcher's current leader term — the fencing token HA-aware
	// members check commits against. Nil (and a zero stamp) outside HA
	// deployments, which old members decode as "unfenced" and always
	// admit. Set once, before the handle is published to the
	// dispatcher (SetTermSource), so reads need no lock.
	termSource func() uint64
}

// SetTermSource installs the fencing-term source. Must be called
// before the Remote is handed to a Dispatcher.
func (r *Remote) SetTermSource(fn func() uint64) { r.termSource = fn }

// term returns the current fencing stamp (0 = unfenced).
func (r *Remote) term() uint64 {
	if r.termSource == nil {
		return 0
	}
	return r.termSource()
}

// NewRemote returns a lazy handle on the member listening at addr. A
// non-positive timeout selects the default (2s).
func NewRemote(name, addr string, timeout time.Duration) *Remote {
	if timeout <= 0 {
		timeout = defaultTimeout
	}
	return &Remote{name: name, addr: addr, timeout: timeout}
}

func (r *Remote) Name() string { return r.name }

// Addr returns the member's RPC address.
func (r *Remote) Addr() string { return r.addr }

// conn returns the live client, dialing if needed.
func (r *Remote) conn() (*rpc.Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client != nil {
		return r.client, nil
	}
	c, err := net.DialTimeout("tcp", r.addr, r.timeout)
	if err != nil {
		return nil, fmt.Errorf("fed: dial member %s: %w: %w", r.name, ErrUnreachable, err)
	}
	r.client = rpc.NewClient(c)
	return r.client, nil
}

// reset detaches the connection so the next call redials. With
// deferred set the old client is closed only after a grace period of
// one timeout: a timed-out call proves nothing about OTHER calls in
// flight on the same connection (the gossip fetch runs outside the
// dispatch lock and can overlap a commit), and closing immediately
// would abort them all as spurious uncertain failures. A connection
// that already broke is closed at once — everything on it is failing
// anyway.
func (r *Remote) reset(c *rpc.Client, deferred bool) {
	r.mu.Lock()
	if r.client == c {
		r.client = nil
	}
	r.mu.Unlock()
	if c == nil {
		return
	}
	if deferred {
		time.AfterFunc(r.timeout, func() { c.Close() })
		return
	}
	c.Close()
}

// call performs one bounded RPC. The error taxonomy drives the
// dispatcher's safety decisions: a server-side error (the member
// answered, the call failed) keeps the connection and carries no
// transport sentinel; a dial failure wraps plain ErrUnreachable (the
// request provably never left, rerouting is safe); a timeout or a
// connection that broke mid-call wraps ErrUncertain (the request may
// have been executed member-side, mutating calls must not be
// rerouted). Unreachable-class failures drop the connection so the
// next call redials.
func (r *Remote) call(method string, args, reply any) error {
	c, err := r.conn()
	if err != nil {
		return err
	}
	call := c.Go(method, args, reply, make(chan *rpc.Call, 1))
	timer := time.NewTimer(r.timeout)
	defer timer.Stop()
	select {
	case <-call.Done:
		if call.Error == nil {
			return nil
		}
		if _, ok := call.Error.(rpc.ServerError); ok {
			return fmt.Errorf("fed: member %s: %w", r.name, call.Error)
		}
		// Everything else — including rpc.ErrShutdown — is classified
		// uncertain: net/rpc also fails PENDING calls with ErrShutdown
		// when the connection dies mid-flight, so the error does not
		// prove the request was never sent. Conservative beats a
		// double placement.
		r.reset(c, false)
		return fmt.Errorf("fed: member %s: %w: %w", r.name, ErrUncertain, call.Error)
	case <-timer.C:
		r.reset(c, true)
		return fmt.Errorf("fed: member %s: %s: %w: %w", r.name, method, ErrUncertain, ErrTimeout)
	}
}

// ForceGob pins the handle to the legacy gob wire, skipping framed
// negotiation entirely. Must be called before the Remote is handed to
// a Dispatcher; parity tests use it to compare the two protocols.
func (r *Remote) ForceGob() {
	r.mu.Lock()
	r.forceGob = true
	r.mu.Unlock()
}

// wireClient returns the framed connection for the hot member RPCs,
// negotiating it on first use: a gob Member.WireCaps probe decides
// whether the member speaks the framed protocol. Members that predate
// the method (rpc "can't find method") or report an older frame
// version are remembered as gob-only; transient probe or dial failures
// return nil without caching, so the next call re-probes. Never blocks
// past the member timeout.
func (r *Remote) wireClient() *live.FrameClient {
	r.mu.Lock()
	if r.forceGob || r.wireUnsupported {
		r.mu.Unlock()
		return nil
	}
	if r.wire != nil {
		w := r.wire
		r.mu.Unlock()
		return w
	}
	r.mu.Unlock()

	var reply live.MemberWireCapsReply
	if err := r.call("Member.WireCaps", live.Ack{}, &reply); err != nil {
		if missingMethod(err) {
			r.mu.Lock()
			r.wireUnsupported = true
			r.mu.Unlock()
		}
		return nil
	}
	if reply.FrameVersion < live.FrameVersion {
		r.mu.Lock()
		r.wireUnsupported = true
		r.mu.Unlock()
		return nil
	}
	conn, err := net.DialTimeout("tcp", r.addr, r.timeout)
	if err != nil {
		return nil
	}
	fc, err := live.NewFrameClient(conn, r.timeout)
	if err != nil {
		return nil
	}
	r.mu.Lock()
	if r.wire == nil {
		r.wire = fc
	} else {
		// A concurrent caller won the race; keep its connection.
		go fc.Close()
	}
	w := r.wire
	r.mu.Unlock()
	return w
}

// resetWire drops the framed connection so the next hot call
// renegotiates, mirroring reset on the gob side.
func (r *Remote) resetWire(w *live.FrameClient) {
	r.mu.Lock()
	if r.wire == w {
		r.wire = nil
	}
	r.mu.Unlock()
	if w != nil {
		w.Close()
	}
}

// wireErr classifies a framed-call failure with exactly the gob
// taxonomy: a WireError is a delivered server-side answer (keep the
// connection, no transport sentinel); a timeout wraps
// ErrUncertain+ErrTimeout; any other transport failure wraps
// ErrUncertain. Transport-class failures drop the framed connection so
// the next call renegotiates.
func (r *Remote) wireErr(w *live.FrameClient, method string, err error) error {
	var we live.WireError
	if errors.As(err, &we) {
		return fmt.Errorf("fed: member %s: %s", r.name, string(we))
	}
	r.resetWire(w)
	if errors.Is(err, live.ErrWireTimeout) {
		return fmt.Errorf("fed: member %s: %s: %w: %w", r.name, method, ErrUncertain, ErrTimeout)
	}
	return fmt.Errorf("fed: member %s: %w: %w", r.name, ErrUncertain, err)
}

// wireEquivalent reports whether a spec matches the registry
// definition the member will resolve from its (Problem, Variant)
// key. A spec that reuses a registry key but carries rewritten costs
// or memory would silently schedule against the wrong cost table on
// the member side, so it is rejected as non-transportable instead.
func wireEquivalent(spec, registry *task.Spec) bool {
	return spec.MemoryMB == registry.MemoryMB && maps.Equal(spec.CostOn, registry.CostOn)
}

// wireTask maps a core request onto the member wire. Specs must be
// registry-resolvable AND identical to the registry definition —
// (Problem, Variant) is all that crosses the wire.
func wireTask(req agent.Request) (live.MemberTaskArgs, error) {
	if req.Spec == nil {
		return live.MemberTaskArgs{}, fmt.Errorf("fed: job %d has no spec", req.JobID)
	}
	resolved, err := task.Resolve(req.Spec.Problem, req.Spec.Variant)
	if err != nil {
		return live.MemberTaskArgs{}, fmt.Errorf("fed: job %d is not wire-transportable: %w", req.JobID, err)
	}
	if !wireEquivalent(req.Spec, resolved) {
		return live.MemberTaskArgs{}, fmt.Errorf("fed: job %d is not wire-transportable: spec %s/%d differs from the registry definition",
			req.JobID, req.Spec.Problem, req.Spec.Variant)
	}
	return live.MemberTaskArgs{
		JobID:     req.JobID,
		TaskID:    req.TaskID,
		Attempt:   req.Attempt,
		Problem:   req.Spec.Problem,
		Variant:   req.Spec.Variant,
		Arrival:   req.Arrival,
		Submitted: req.Submitted,
		Tenant:    req.Tenant,
		Deadline:  req.Deadline,
	}, nil
}

func (r *Remote) AddServer(server string) error {
	return r.call("Member.AddServer", live.MemberServerArgs{Name: server}, &live.Ack{})
}

func (r *Remote) RemoveServer(server string) error {
	return r.call("Member.RemoveServer", live.MemberServerArgs{Name: server}, &live.Ack{})
}

func (r *Remote) CanSolve(spec *task.Spec) (bool, error) {
	if spec == nil {
		return false, nil
	}
	resolved, err := task.Resolve(spec.Problem, spec.Variant)
	if err != nil || !wireEquivalent(spec, resolved) {
		return false, nil // not wire-transportable: not this member's problem
	}
	var reply live.MemberCanSolveReply
	if err := r.call("Member.CanSolve", live.MemberCanSolveArgs{Problem: spec.Problem, Variant: spec.Variant}, &reply); err != nil {
		return false, err
	}
	return reply.OK, nil
}

func (r *Remote) Evaluate(req agent.Request) (agent.Candidate, error) {
	args, err := wireTask(req)
	if err != nil {
		return agent.Candidate{}, err
	}
	var reply live.MemberEvalReply
	if w := r.wireClient(); w != nil {
		if reply, err = w.Evaluate(&args); err != nil {
			return agent.Candidate{}, r.wireErr(w, "Member.Evaluate", err)
		}
	} else if err := r.call("Member.Evaluate", args, &reply); err != nil {
		return agent.Candidate{}, err
	}
	if reply.Unschedulable {
		return agent.Candidate{}, agent.ErrUnschedulable
	}
	if reply.DeadlineUnmet {
		return agent.Candidate{}, agent.ErrDeadlineUnmet
	}
	return agent.Candidate{Server: reply.Server, Score: reply.Score, Tie: reply.Tie, Scored: reply.Scored}, nil
}

func (r *Remote) Commit(req agent.Request, server string) (agent.Decision, error) {
	args, err := wireTask(req)
	if err != nil {
		return agent.Decision{}, err
	}
	args.Term = r.term()
	var reply live.MemberDecisionReply
	if w := r.wireClient(); w != nil {
		if reply, err = w.Commit(&live.MemberCommitArgs{Task: args, Server: server}); err != nil {
			return agent.Decision{}, r.wireErr(w, "Member.Commit", err)
		}
	} else if err := r.call("Member.Commit", live.MemberCommitArgs{Task: args, Server: server}, &reply); err != nil {
		return agent.Decision{}, err
	}
	return agent.Decision{JobID: req.JobID, Server: reply.Server,
		Predicted: reply.Predicted, HasPrediction: reply.HasPrediction}, nil
}

func (r *Remote) Submit(req agent.Request) (agent.Decision, error) {
	args, err := wireTask(req)
	if err != nil {
		return agent.Decision{}, err
	}
	args.Term = r.term()
	var reply live.MemberDecisionReply
	if w := r.wireClient(); w != nil {
		if reply, err = w.Submit(&args); err != nil {
			return agent.Decision{}, r.wireErr(w, "Member.Submit", err)
		}
	} else if err := r.call("Member.Submit", args, &reply); err != nil {
		return agent.Decision{}, err
	}
	if reply.Unschedulable {
		return agent.Decision{}, agent.ErrUnschedulable
	}
	if reply.DeadlineUnmet {
		return agent.Decision{}, agent.ErrDeadlineUnmet
	}
	return agent.Decision{JobID: req.JobID, Server: reply.Server,
		Predicted: reply.Predicted, HasPrediction: reply.HasPrediction}, nil
}

func (r *Remote) SubmitBatch(reqs []agent.Request) ([]agent.Decision, error) {
	args := live.MemberBatchArgs{Tasks: make([]live.MemberTaskArgs, len(reqs))}
	stamp := r.term()
	for i, req := range reqs {
		t, err := wireTask(req)
		if err != nil {
			return make([]agent.Decision, len(reqs)), err
		}
		t.Term = stamp
		args.Tasks[i] = t
	}
	var reply live.MemberBatchReply
	if w := r.wireClient(); w != nil {
		var err error
		if reply, err = w.SubmitBatch(&args); err != nil {
			return make([]agent.Decision, len(reqs)), r.wireErr(w, "Member.SubmitBatch", err)
		}
	} else if err := r.call("Member.SubmitBatch", args, &reply); err != nil {
		return make([]agent.Decision, len(reqs)), err
	}
	out := make([]agent.Decision, len(reqs))
	for i, d := range reply.Decisions {
		if i >= len(out) {
			break
		}
		out[i] = agent.Decision{JobID: reqs[i].JobID, Server: d.Server,
			Predicted: d.Predicted, HasPrediction: d.HasPrediction}
	}
	if reply.Error != "" {
		return out, fmt.Errorf("fed: member %s batch: %s", r.name, reply.Error)
	}
	return out, nil
}

func (r *Remote) Complete(jobID int, server string, at float64) error {
	return r.call("Member.Complete", live.TaskDoneArgs{TaskKey: jobID, Server: server, At: at}, &live.Ack{})
}

func (r *Remote) Report(server string, load, at float64) error {
	return r.call("Member.Report", live.LoadReportArgs{Name: server, Load: load, At: at}, &live.Ack{})
}

func (r *Remote) Summary() (Summary, error) {
	var reply live.MemberSummaryReply
	if w := r.wireClient(); w != nil {
		var err error
		if reply, err = w.Summary(); err != nil {
			return Summary{}, r.wireErr(w, "Member.Summary", err)
		}
	} else if err := r.call("Member.Summary", live.Ack{}, &reply); err != nil {
		return Summary{}, err
	}
	return Summary{InFlight: reply.InFlight, Servers: reply.Servers,
		MinReady: reply.MinReady, HasMinReady: reply.HasMinReady,
		TenantInFlight: reply.TenantInFlight,
		ServerReady:    reply.ServerReady,
		RelaySeq:       reply.RelaySeq,
		HasRelay:       reply.HasRelay}, nil
}

// RelaySince pulls the member's relay events after the given ledger
// sequence. ok is false — with a nil error — when the member does not
// speak relay: either it answers Disabled (relay off member-side), or
// it predates the Member.Relay method entirely, in which case net/rpc
// answers a ServerError naming the missing method; both are cached so
// an old member is asked exactly once. Transport failures surface as
// errors and count toward eviction like any other member call.
func (r *Remote) RelaySince(after uint64) (relay.Delta, bool, error) {
	r.mu.Lock()
	unsupported := r.relayUnsupported
	r.mu.Unlock()
	if unsupported {
		return relay.Delta{}, false, nil
	}
	var reply live.MemberRelayReply
	if w := r.wireClient(); w != nil {
		// A framed member necessarily has Member.Relay (it postdates it),
		// so only Disabled can negotiate relay down here.
		var err error
		if reply, err = w.Relay(&live.MemberRelayArgs{Since: after}); err != nil {
			return relay.Delta{}, false, r.wireErr(w, "Member.Relay", err)
		}
	} else if err := r.call("Member.Relay", live.MemberRelayArgs{Since: after}, &reply); err != nil {
		var srvErr rpc.ServerError
		if errors.As(err, &srvErr) && strings.Contains(string(srvErr), "can't find method") {
			// An old member: the method does not exist. Remember, so the
			// dispatcher stops asking this handle.
			r.mu.Lock()
			r.relayUnsupported = true
			r.mu.Unlock()
			return relay.Delta{}, false, nil
		}
		return relay.Delta{}, false, err
	}
	if reply.Disabled {
		r.mu.Lock()
		r.relayUnsupported = true
		r.mu.Unlock()
		return relay.Delta{}, false, nil
	}
	d := relay.Delta{From: reply.From, To: reply.To, Resync: reply.Resync}
	if len(reply.Events) > 0 {
		d.Events = make([]relay.Event, len(reply.Events))
		for i, ev := range reply.Events {
			d.Events[i] = relay.Event{
				Seq:      ev.Seq,
				Kind:     relay.Kind(ev.Kind),
				JobID:    ev.JobID,
				Tenant:   ev.Tenant,
				Server:   ev.Server,
				Time:     ev.Time,
				Ready:    ev.Ready,
				HasReady: ev.HasReady,
			}
		}
	}
	return d, true, nil
}

// missingMethod reports the rpc error a pre-HA member answers when
// asked for a method it does not have — treated as "capability
// absent", never as a transport failure.
func missingMethod(err error) bool {
	var srvErr rpc.ServerError
	return errors.As(err, &srvErr) && strings.Contains(string(srvErr), "can't find method")
}

// Fence stamps the member with the new leader's term (the fencer
// capability). A member that predates the Fence RPC simply cannot be
// fenced; that is reported as success, because fencing is best-effort
// by contract.
func (r *Remote) Fence(term uint64) error {
	err := r.call("Member.Fence", live.MemberFenceArgs{Term: term}, &live.Ack{})
	if err != nil && missingMethod(err) {
		return nil
	}
	return err
}

// Partition asks the member for its current server set (the
// partitionSource capability). ok is false — with a nil error — when
// the member predates the Partition RPC; the promoting dispatcher
// then waits for the servers' own re-registrations instead.
func (r *Remote) Partition() ([]string, bool, error) {
	var reply live.MemberPartitionReply
	if err := r.call("Member.Partition", live.Ack{}, &reply); err != nil {
		if missingMethod(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	return reply.Servers, true, nil
}

func (r *Remote) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.wire != nil {
		r.wire.Close()
		r.wire = nil
	}
	if r.client != nil {
		err := r.client.Close()
		r.client = nil
		return err
	}
	return nil
}
