package task

import (
	"fmt"
	"sync"
)

// This file embeds the paper's published cost data.
//
// Table 3 (matrix multiplication): per-server phase costs in seconds and
// memory needs in megabytes, for square matrices of size 1200, 1500 and
// 1800 on the first-set servers chamagne, cabestan, artimon and pulney.
//
// Table 4 (waste-cpu): per-server phase costs in seconds for parameters
// 200, 400 and 600 on the second-set servers valette, spinnaker,
// cabestan and artimon. waste-cpu was designed by the authors to need
// no memory.

// MatmulSizes lists the matrix sizes used in the first set of
// experiments, in the order of Table 3.
var MatmulSizes = []int{1200, 1500, 1800}

// WasteCPUParams lists the waste-cpu parameters used in the second set
// of experiments, in the order of Table 4.
var WasteCPUParams = []int{200, 400, 600}

// matmulMemory maps matrix size to the resident footprint in MB:
// the sum of the input and output matrix memory needs from Table 3.
var matmulMemory = map[int]float64{
	1200: 21.97 + 10.98, // 32.95 MB
	1500: 34.33 + 17.16, // 51.49 MB
	1800: 49.43 + 24.72, // 74.15 MB
}

// matmulCosts holds Table 3 verbatim: costs[size][server] in seconds.
var matmulCosts = map[int]map[string]Cost{
	1200: {
		"chamagne": {Input: 4, Compute: 149, Output: 1},
		"cabestan": {Input: 4, Compute: 70, Output: 1},
		"artimon":  {Input: 3, Compute: 18, Output: 1},
		"pulney":   {Input: 3, Compute: 14, Output: 1},
	},
	1500: {
		"chamagne": {Input: 6, Compute: 292, Output: 2},
		"cabestan": {Input: 5, Compute: 136, Output: 2},
		"artimon":  {Input: 5, Compute: 33, Output: 1},
		"pulney":   {Input: 5, Compute: 25, Output: 1},
	},
	1800: {
		"chamagne": {Input: 8, Compute: 504, Output: 3},
		"cabestan": {Input: 8, Compute: 231, Output: 3},
		"artimon":  {Input: 8, Compute: 53, Output: 2},
		"pulney":   {Input: 7, Compute: 40, Output: 2},
	},
}

// wasteCPUCosts holds Table 4 verbatim: costs[param][server] in seconds.
var wasteCPUCosts = map[int]map[string]Cost{
	200: {
		"valette":   {Input: 0.08, Compute: 91.81, Output: 0.03},
		"spinnaker": {Input: 0.09, Compute: 16, Output: 0.05},
		"cabestan":  {Input: 0.1, Compute: 74.86, Output: 0.03},
		"artimon":   {Input: 0.12, Compute: 17.1, Output: 0.03},
	},
	400: {
		"valette":   {Input: 0.08, Compute: 182.52, Output: 0.03},
		"spinnaker": {Input: 0.14, Compute: 30.6, Output: 0.06},
		"cabestan":  {Input: 0.09, Compute: 148.48, Output: 0.03},
		"artimon":   {Input: 0.13, Compute: 33.2, Output: 0.03},
	},
	600: {
		"valette":   {Input: 0.13, Compute: 273.28, Output: 0.03},
		"spinnaker": {Input: 0.09, Compute: 45.6, Output: 0.05},
		"cabestan":  {Input: 0.08, Compute: 222.26, Output: 0.03},
		"artimon":   {Input: 0.14, Compute: 49.4, Output: 0.03},
	},
}

// Matmul returns the Spec for a square matrix multiplication of the
// given size (one of MatmulSizes). It panics on an unknown size, which
// indicates a programming error in experiment setup.
func Matmul(size int) *Spec {
	costs, ok := matmulCosts[size]
	if !ok {
		panic("task: unknown matmul size")
	}
	return &Spec{
		Problem:  "matmul",
		Variant:  size,
		CostOn:   costs,
		MemoryMB: matmulMemory[size],
	}
}

// WasteCPU returns the Spec for a waste-cpu task with the given
// parameter (one of WasteCPUParams). It panics on an unknown parameter.
func WasteCPU(param int) *Spec {
	costs, ok := wasteCPUCosts[param]
	if !ok {
		panic("task: unknown waste-cpu parameter")
	}
	return &Spec{
		Problem:  "wastecpu",
		Variant:  param,
		CostOn:   costs,
		MemoryMB: 0,
	}
}

// MatmulSpecs returns the three matmul specs in Table 3 order.
func MatmulSpecs() []*Spec {
	specs := make([]*Spec, 0, len(MatmulSizes))
	for _, s := range MatmulSizes {
		specs = append(specs, Matmul(s))
	}
	return specs
}

// Resolve returns the Spec for a (problem, variant) pair as transmitted
// over the wire by the live runtime ("matmul"/"wastecpu" with their
// Table 3/4 variants).
func Resolve(problem string, variant int) (*Spec, error) {
	switch problem {
	case "matmul":
		if _, ok := matmulCosts[variant]; !ok {
			return nil, fmt.Errorf("task: unknown matmul size %d", variant)
		}
		return Matmul(variant), nil
	case "wastecpu":
		if _, ok := wasteCPUCosts[variant]; !ok {
			return nil, fmt.Errorf("task: unknown waste-cpu parameter %d", variant)
		}
		return WasteCPU(variant), nil
	case "synthetic":
		family, n := variant/syntheticPoolStride, variant%syntheticPoolStride
		if family < 0 || family >= len(syntheticBases) || n <= 0 {
			return nil, fmt.Errorf("task: bad synthetic variant %d", variant)
		}
		return Synthetic(family, n), nil
	default:
		return nil, fmt.Errorf("task: unknown problem %q", problem)
	}
}

// syntheticBases are the per-family base compute costs (seconds) of
// the synthetic benchmark problem.
var syntheticBases = [...]float64{40, 80, 160}

// syntheticPoolStride packs (family, pool size) into one Variant:
// Variant = family*syntheticPoolStride + n.
const syntheticPoolStride = 1_000_000

var (
	synthMu    sync.Mutex
	synthCache = map[int]*Spec{}
)

// Synthetic returns the registry-resolvable synthetic benchmark Spec:
// family selects the base compute cost (40/80/160s), and the task is
// solvable on a pool of n servers named "sv00".."sv<n-1>" with mildly
// heterogeneous costs. Unlike the paper tables, the cost map is
// derived from (family, n) alone, both of which the Variant encodes —
// so the spec reconstructs bit-identically on the far side of a wire
// from (problem, variant), at any pool size. Specs are memoized and
// shared: a member resolving the same variant on every request must
// not rebuild an n-entry cost map per decision.
func Synthetic(family, n int) *Spec {
	if family < 0 || family >= len(syntheticBases) || n <= 0 || n >= syntheticPoolStride {
		panic("task: bad synthetic spec parameters")
	}
	variant := family*syntheticPoolStride + n
	synthMu.Lock()
	defer synthMu.Unlock()
	if s, ok := synthCache[variant]; ok {
		return s
	}
	base := syntheticBases[family]
	costs := make(map[string]Cost, n)
	for i := 0; i < n; i++ {
		f := 1 + 0.04*float64(i%11)
		costs[fmt.Sprintf("sv%02d", i)] = Cost{Input: 0.5 * f, Compute: base * f, Output: 0.2 * f}
	}
	s := &Spec{Problem: "synthetic", Variant: variant, CostOn: costs}
	synthCache[variant] = s
	return s
}

// WasteCPUSpecs returns the three waste-cpu specs in Table 4 order.
func WasteCPUSpecs() []*Spec {
	specs := make([]*Spec, 0, len(WasteCPUParams))
	for _, p := range WasteCPUParams {
		specs = append(specs, WasteCPU(p))
	}
	return specs
}
