// Package fluid implements the shared-resource execution model of the
// paper (§2.3): on one server, every resident task progresses through
// three serial phases — input transfer, computation, output transfer —
// and concurrent tasks in the same phase share the corresponding
// resource equally (n simultaneous computations each receive 1/n of the
// CPU; simultaneous transfers share the link likewise).
//
// The simulation is a fluid / discrete-event hybrid: between two events
// (a phase completion, a job release, a collapse) every progress rate is
// constant, so the simulator advances in closed form from event to
// event. This is exactly the discrete simulation the paper's Historical
// Trace Manager performs, and it is also the execution substrate of the
// grid simulator — the two differ only in the costs they are fed
// (nominal vs. noise-perturbed) and in whether memory is modelled.
//
// The memory model reproduces §5.1: each job holds its footprint from
// activation until output completion; when the total demand exceeds the
// server's RAM the CPU thrashes (rates multiplied by RAM/demand); when
// it exceeds RAM+swap the server collapses and every resident job is
// lost.
package fluid

import (
	"fmt"
	"math"
	"sort"

	"casched/internal/task"
)

// timeEps is the tolerance used when comparing simulation times.
const timeEps = 1e-9

// State enumerates the lifecycle of a job inside a server simulation.
type State int

const (
	// StateWaiting means the job's release date is in the future.
	StateWaiting State = iota
	// StateInput means the job is receiving its input data.
	StateInput
	// StateCompute means the job is computing.
	StateCompute
	// StateOutput means the job is sending its output data.
	StateOutput
	// StateDone means the job completed successfully.
	StateDone
	// StateFailed means the job was lost in a server collapse.
	StateFailed
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateWaiting:
		return "waiting"
	case StateInput:
		return "input"
	case StateCompute:
		return "compute"
	case StateOutput:
		return "output"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// EventKind distinguishes the observable transitions a simulation emits.
type EventKind int

const (
	// EventPhaseStart marks a job entering a phase.
	EventPhaseStart EventKind = iota
	// EventPhaseEnd marks a job finishing a phase.
	EventPhaseEnd
	// EventDone marks a job finishing its last phase.
	EventDone
	// EventFailed marks a job lost to a server collapse.
	EventFailed
	// EventCollapse marks the server itself collapsing.
	EventCollapse
)

// String returns the event kind name.
func (k EventKind) String() string {
	switch k {
	case EventPhaseStart:
		return "phase-start"
	case EventPhaseEnd:
		return "phase-end"
	case EventDone:
		return "done"
	case EventFailed:
		return "failed"
	case EventCollapse:
		return "collapse"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one observable transition, reported by AdvanceTo in
// chronological order.
type Event struct {
	Kind  EventKind
	JobID int        // -1 for EventCollapse
	Phase task.Phase // meaningful for phase events
	Time  float64
}

// Config parameterizes a server simulation.
type Config struct {
	// Name labels the server in errors and Gantt output.
	Name string
	// RAMMB is the main memory in megabytes. Zero or negative means
	// memory is not modelled (infinite): this is how the paper's HTM
	// operates ("the allocation model does not take the memory
	// requirements into consideration").
	RAMMB float64
	// SwapMB is the swap space in megabytes, used only when RAMMB > 0.
	SwapMB float64
	// Thrash enables a CPU slowdown when demand exceeds RAM but stays
	// under RAM+swap.
	Thrash bool
	// ThrashAlpha tunes the slowdown: the CPU rate is multiplied by
	// 1/(1+alpha*(demand-RAM)/RAM). Alpha=1 is the harsh linear model
	// (factor RAM/demand); the default 0.5 models a compute-bound
	// workload with good locality whose working set only partially
	// touches swap. Zero selects the default.
	ThrashAlpha float64
}

// Job is the externally visible record of one task inside a simulation.
type Job struct {
	ID       int
	Release  float64 // date the job was placed on the server
	Cost     task.Cost
	MemoryMB float64

	State     State
	Remaining [task.NumPhases]float64 // work left per phase, seconds of unloaded resource
	Start     [task.NumPhases]float64 // phase start dates (NaN until started)
	End       [task.NumPhases]float64 // phase end dates (NaN until ended)
}

// Completion returns the job's completion date (end of output phase)
// and whether it has completed.
func (j *Job) Completion() (float64, bool) {
	if j.State != StateDone {
		return 0, false
	}
	return j.End[task.PhaseOutput], true
}

// Sim is the fluid simulation of one time-shared server. The zero value
// is not usable; construct with New. Sim is not safe for concurrent use,
// but clones obtained from Clone may be advanced concurrently with each
// other and with the original (they share only immutable terminal job
// records).
type Sim struct {
	cfg  Config
	now  float64
	jobs []*Job
	byID map[int]*Job // lazy: nil on clones until an id lookup is needed

	// live holds the non-terminal jobs (waiting or in an active phase),
	// so that per-event work is proportional to the number of resident
	// tasks rather than to the whole history of the server.
	live []*Job

	collapsed    bool
	collapseTime float64

	// busy accumulates the seconds during which each resource (input
	// link, CPU, output link) had at least one active job — the
	// utilization accounting behind the load-balance analysis.
	busy [task.NumPhases]float64

	// slab backs the job records of reusable projection clones
	// (CloneLiveInto): while the slab has spare capacity, Add carves
	// records out of it instead of the heap. Nil on ordinary sims.
	slab []Job
	// free recycles job records that PruneCompletedBefore retired, so a
	// long-lived trace places new work without heap allocation. Disabled
	// (never fed) once Clone has shared terminal records with a clone —
	// recycling a shared record would mutate the clone's view.
	free []*Job
	// shared is set when Clone shared terminal job records out of this
	// sim (or into it); it permanently disables record recycling.
	shared bool
}

// New constructs a server simulation starting at time 0.
func New(cfg Config) *Sim {
	return &Sim{cfg: cfg, byID: make(map[int]*Job)}
}

// Name returns the configured server name.
func (s *Sim) Name() string { return s.cfg.Name }

// Now returns the current simulation time.
func (s *Sim) Now() float64 { return s.now }

// Collapsed reports whether the server has collapsed, and when.
func (s *Sim) Collapsed() (bool, float64) { return s.collapsed, s.collapseTime }

// Jobs returns the jobs in release order. The returned slice is shared;
// callers must not modify it.
func (s *Sim) Jobs() []*Job { return s.jobs }

// Live returns the non-terminal (waiting or active) jobs in release
// order. The returned slice is shared and is reused by later
// advancement; callers that advance the simulation afterwards must copy
// it first.
func (s *Sim) Live() []*Job { return s.live }

// Job returns the job with the given id, or nil.
func (s *Sim) Job(id int) *Job {
	s.ensureIndex()
	return s.byID[id]
}

// ensureIndex builds the id index when it was dropped by Clone.
func (s *Sim) ensureIndex() {
	if s.byID != nil {
		return
	}
	s.byID = make(map[int]*Job, len(s.jobs))
	for _, j := range s.jobs {
		s.byID[j.ID] = j
	}
}

// Add places a new job on the server. The release date must not precede
// the current simulation time, the id must be unused, and the server
// must not have collapsed.
func (s *Sim) Add(id int, release float64, cost task.Cost, memoryMB float64) error {
	if s.collapsed {
		return fmt.Errorf("fluid: server %s: add job %d: server collapsed at %.3f",
			s.cfg.Name, id, s.collapseTime)
	}
	if release < s.now-timeEps {
		return fmt.Errorf("fluid: server %s: add job %d: release %.6f precedes now %.6f",
			s.cfg.Name, id, release, s.now)
	}
	if s.byID != nil {
		if _, dup := s.byID[id]; dup {
			return fmt.Errorf("fluid: server %s: duplicate job id %d", s.cfg.Name, id)
		}
	} else {
		// Clone dropped the index; a linear scan avoids rebuilding a
		// map just to add one candidate job.
		for _, j := range s.jobs {
			if j.ID == id {
				return fmt.Errorf("fluid: server %s: duplicate job id %d", s.cfg.Name, id)
			}
		}
	}
	if release < s.now {
		release = s.now
	}
	var j *Job
	switch {
	case len(s.slab) < cap(s.slab):
		// Reusable clone: the slab was sized with one spare record for
		// the candidate job, so this append cannot move the backing
		// array out from under the pointers already handed out.
		s.slab = append(s.slab, Job{})
		j = &s.slab[len(s.slab)-1]
	case len(s.free) > 0:
		j = s.free[len(s.free)-1]
		s.free[len(s.free)-1] = nil
		s.free = s.free[:len(s.free)-1]
	default:
		j = new(Job)
	}
	*j = Job{ID: id, Release: release, Cost: cost, MemoryMB: memoryMB, State: StateWaiting}
	j.Remaining[task.PhaseInput] = cost.Input
	j.Remaining[task.PhaseCompute] = cost.Compute
	j.Remaining[task.PhaseOutput] = cost.Output
	for p := task.Phase(0); p < task.NumPhases; p++ {
		j.Start[p] = math.NaN()
		j.End[p] = math.NaN()
	}
	s.jobs = append(s.jobs, j)
	s.live = append(s.live, j)
	if s.byID != nil {
		s.byID[id] = j
	}
	return nil
}

// counts returns the number of jobs currently in each of the three
// active phases.
func (s *Sim) counts() (in, comp, out int) {
	for _, j := range s.live {
		switch j.State {
		case StateInput:
			in++
		case StateCompute:
			comp++
		case StateOutput:
			out++
		}
	}
	return
}

// MemoryDemand returns the total resident footprint of active jobs.
func (s *Sim) MemoryDemand() float64 {
	d := 0.0
	for _, j := range s.live {
		switch j.State {
		case StateInput, StateCompute, StateOutput:
			d += j.MemoryMB
		}
	}
	return d
}

// LoadAvg returns the number of jobs currently computing — the analogue
// of the Unix run-queue length the paper's monitors report.
func (s *Sim) LoadAvg() float64 {
	_, comp, _ := s.counts()
	return float64(comp)
}

// ActiveCount returns the number of jobs that are active or waiting.
func (s *Sim) ActiveCount() int { return len(s.live) }

// thrashFactor returns the CPU rate multiplier from memory pressure.
func (s *Sim) thrashFactor() float64 {
	if s.cfg.RAMMB <= 0 || !s.cfg.Thrash {
		return 1
	}
	d := s.MemoryDemand()
	if d <= s.cfg.RAMMB {
		return 1
	}
	alpha := s.cfg.ThrashAlpha
	if alpha == 0 {
		alpha = 0.5
	}
	over := (d - s.cfg.RAMMB) / s.cfg.RAMMB
	return 1 / (1 + alpha*over)
}

// rate returns the progress rate of job j in its current phase.
func (s *Sim) rate(j *Job, in, comp, out int) float64 {
	switch j.State {
	case StateInput:
		return 1 / float64(in)
	case StateCompute:
		return s.thrashFactor() / float64(comp)
	case StateOutput:
		return 1 / float64(out)
	}
	return 0
}

// NextEventTime returns the earliest time at which the simulation state
// changes (a release or a phase completion), or ok=false if the server
// is idle (or collapsed).
func (s *Sim) NextEventTime() (float64, bool) {
	if s.collapsed {
		return 0, false
	}
	next := math.Inf(1)
	in, comp, out := s.counts()
	for _, j := range s.live {
		switch j.State {
		case StateWaiting:
			if j.Release < next {
				next = j.Release
			}
		case StateInput, StateCompute, StateOutput:
			r := s.rate(j, in, comp, out)
			if r <= 0 {
				continue
			}
			t := s.now + j.Remaining[phaseOf(j.State)]/r
			if t < next {
				next = t
			}
		}
	}
	if math.IsInf(next, 1) {
		return 0, false
	}
	return next, true
}

// phaseOf maps an active state to its phase index.
func phaseOf(st State) task.Phase {
	switch st {
	case StateInput:
		return task.PhaseInput
	case StateCompute:
		return task.PhaseCompute
	case StateOutput:
		return task.PhaseOutput
	}
	panic("fluid: phaseOf on inactive state")
}

// AdvanceTo advances the simulation to time t, which must not precede
// the current time, and returns the events that occurred in (now, t],
// in chronological order.
func (s *Sim) AdvanceTo(t float64) []Event { return s.advance(t, true) }

// AdvanceToQuiet is AdvanceTo without the event log: callers that
// discard the events (the HTM's trace clock) advance allocation-free.
func (s *Sim) AdvanceToQuiet(t float64) { s.advance(t, false) }

// advance implements AdvanceTo; with collect=false no event slice is
// built, which keeps throwaway projections allocation-free.
func (s *Sim) advance(t float64, collect bool) []Event {
	if t < s.now-timeEps {
		panic(fmt.Sprintf("fluid: server %s: AdvanceTo(%.6f) precedes now %.6f", s.cfg.Name, t, s.now))
	}
	var events []Event
	for !s.collapsed {
		next, ok := s.NextEventTime()
		if !ok || next > t+timeEps {
			break
		}
		if next < s.now {
			next = s.now
		}
		s.progress(next)
		events = s.transition(next, events, collect)
	}
	if !s.collapsed && t > s.now {
		s.progress(t)
	}
	if t > s.now {
		s.now = t
	}
	return events
}

// progress consumes work between s.now and t at current constant rates.
func (s *Sim) progress(t float64) {
	dt := t - s.now
	if dt <= 0 {
		s.now = math.Max(s.now, t)
		return
	}
	in, comp, out := s.counts()
	if in > 0 {
		s.busy[task.PhaseInput] += dt
	}
	if comp > 0 {
		s.busy[task.PhaseCompute] += dt
	}
	if out > 0 {
		s.busy[task.PhaseOutput] += dt
	}
	for _, j := range s.live {
		switch j.State {
		case StateInput, StateCompute, StateOutput:
			p := phaseOf(j.State)
			j.Remaining[p] -= dt * s.rate(j, in, comp, out)
			if j.Remaining[p] < 0 {
				j.Remaining[p] = 0
			}
		}
	}
	s.now = t
}

// compactLive drops terminal jobs from the live list.
func (s *Sim) compactLive() {
	kept := s.live[:0]
	for _, j := range s.live {
		if j.State != StateDone && j.State != StateFailed {
			kept = append(kept, j)
		}
	}
	for i := len(kept); i < len(s.live); i++ {
		s.live[i] = nil
	}
	s.live = kept
}

// transition applies all zero-time state changes at the current instant:
// releases, phase completions (possibly chained through zero-cost
// phases), memory acquisition and collapse. It appends emitted events.
func (s *Sim) transition(t float64, events []Event, collect bool) []Event {
	defer s.compactLive()
	for changed := true; changed && !s.collapsed; {
		changed = false
		for _, j := range s.live {
			switch j.State {
			case StateWaiting:
				if j.Release <= t+timeEps {
					j.State = StateInput
					j.Start[task.PhaseInput] = t
					if collect {
						events = append(events, Event{Kind: EventPhaseStart, JobID: j.ID, Phase: task.PhaseInput, Time: t})
					}
					changed = true
					// Memory is acquired at activation: input data
					// streams into server memory.
					if ev, collapsed := s.checkCollapse(t, collect); collapsed {
						return append(events, ev...)
					}
				}
			case StateInput, StateCompute, StateOutput:
				p := phaseOf(j.State)
				if j.Remaining[p] <= timeEps {
					j.Remaining[p] = 0
					j.End[p] = t
					if collect {
						events = append(events, Event{Kind: EventPhaseEnd, JobID: j.ID, Phase: p, Time: t})
					}
					switch p {
					case task.PhaseInput:
						j.State = StateCompute
						j.Start[task.PhaseCompute] = t
						if collect {
							events = append(events, Event{Kind: EventPhaseStart, JobID: j.ID, Phase: task.PhaseCompute, Time: t})
						}
					case task.PhaseCompute:
						j.State = StateOutput
						j.Start[task.PhaseOutput] = t
						if collect {
							events = append(events, Event{Kind: EventPhaseStart, JobID: j.ID, Phase: task.PhaseOutput, Time: t})
						}
					case task.PhaseOutput:
						j.State = StateDone
						if collect {
							events = append(events, Event{Kind: EventDone, JobID: j.ID, Phase: task.PhaseOutput, Time: t})
						}
					}
					changed = true
				}
			}
		}
	}
	return events
}

// checkCollapse verifies the memory capacity after an acquisition. On
// collapse it fails every resident job and returns the emitted events.
func (s *Sim) checkCollapse(t float64, collect bool) ([]Event, bool) {
	if s.cfg.RAMMB <= 0 {
		return nil, false
	}
	if s.MemoryDemand() <= s.cfg.RAMMB+s.cfg.SwapMB {
		return nil, false
	}
	s.collapsed = true
	s.collapseTime = t
	var events []Event
	if collect {
		events = append(events, Event{Kind: EventCollapse, JobID: -1, Time: t})
	}
	for _, j := range s.live {
		// Mid-transition the live list may still hold a job that just
		// finished at this same instant (compaction is deferred): a
		// completed job must not be retroactively failed.
		if j.State == StateDone || j.State == StateFailed {
			continue
		}
		j.State = StateFailed
		if collect {
			events = append(events, Event{Kind: EventFailed, JobID: j.ID, Time: t})
		}
	}
	s.compactLive()
	return events, true
}

// RunToIdle advances the simulation until no job is active or waiting,
// or until the time limit (use math.Inf(1) for none). It returns the
// events emitted. RunToIdle is how the HTM projects the completion date
// of every resident task.
func (s *Sim) RunToIdle(limit float64) []Event { return s.runToIdle(limit, true) }

// RunToIdleQuiet is RunToIdle without the event log: throwaway
// projection clones use it to run to completion allocation-free.
func (s *Sim) RunToIdleQuiet(limit float64) { s.runToIdle(limit, false) }

func (s *Sim) runToIdle(limit float64, collect bool) []Event {
	var events []Event
	for s.ActiveCount() > 0 && !s.collapsed {
		next, ok := s.NextEventTime()
		if !ok {
			break
		}
		if next > limit {
			s.advance(limit, collect)
			break
		}
		events = append(events, s.advance(next, collect)...)
	}
	return events
}

// Clone returns a copy of the simulation that the receiver's future
// mutations cannot disturb. Cloning is copy-on-write: terminal (done or
// failed) job records are immutable and shared with the receiver, only
// the live jobs are deep-copied, and the id index is rebuilt lazily.
// This makes cloning O(live jobs) rather than O(history), which is what
// lets the HTM evaluate candidate placements cheaply on long traces.
// A clone may be advanced concurrently with the original.
func (s *Sim) Clone() *Sim {
	c := &Sim{
		cfg:          s.cfg,
		now:          s.now,
		collapsed:    s.collapsed,
		collapseTime: s.collapseTime,
		busy:         s.busy,
		jobs:         make([]*Job, len(s.jobs)),
		live:         make([]*Job, 0, len(s.live)+1),
	}
	// Terminal records are now shared: neither side may recycle them.
	s.shared = true
	c.shared = true
	for i, j := range s.jobs {
		if j.State == StateDone || j.State == StateFailed {
			c.jobs[i] = j // immutable once terminal; shared
			continue
		}
		cp := *j
		c.jobs[i] = &cp
		c.live = append(c.live, &cp)
	}
	return c
}

// CloneLive returns a projection clone containing only the live
// (waiting or active) jobs: the finished history is dropped entirely,
// so the clone costs O(live) no matter how long the server has been
// running. The trade-offs against Clone: the clone's Jobs, Completions
// and utilization views forget finished work, and job-id uniqueness is
// only enforced against the live set. This is the clone the HTM's hot
// evaluation path uses — a candidate projection only ever needs the
// jobs that can still be perturbed.
func (s *Sim) CloneLive() *Sim {
	c := &Sim{
		cfg:          s.cfg,
		now:          s.now,
		collapsed:    s.collapsed,
		collapseTime: s.collapseTime,
		busy:         s.busy,
		jobs:         make([]*Job, 0, len(s.live)+1),
		live:         make([]*Job, 0, len(s.live)+1),
	}
	for _, j := range s.live {
		cp := *j
		c.jobs = append(c.jobs, &cp)
		c.live = append(c.live, &cp)
	}
	return c
}

// CloneLiveInto is CloneLive writing into a reusable destination sim:
// the destination's job records live in a slab it owns, so a pooled
// destination makes repeated candidate projections allocation-free once
// its buffers have grown to the working-set size. A nil destination
// allocates a fresh one. The returned sim is the destination.
func (s *Sim) CloneLiveInto(dst *Sim) *Sim {
	if dst == nil {
		dst = &Sim{}
	}
	n := len(s.live)
	// One spare record so Add can place the candidate job without
	// growing (and thus moving) the slab.
	if cap(dst.slab) < n+1 {
		dst.slab = make([]Job, 0, 2*(n+1))
	}
	dst.cfg = s.cfg
	dst.now = s.now
	dst.collapsed = s.collapsed
	dst.collapseTime = s.collapseTime
	dst.busy = s.busy
	dst.byID = nil
	dst.free = nil
	dst.shared = false
	dst.slab = dst.slab[:n]
	dst.jobs = dst.jobs[:0]
	dst.live = dst.live[:0]
	for i, j := range s.live {
		dst.slab[i] = *j
		p := &dst.slab[i]
		dst.jobs = append(dst.jobs, p)
		dst.live = append(dst.live, p)
	}
	return dst
}

// Completions returns the completion date of every finished job, keyed
// by job id.
func (s *Sim) Completions() map[int]float64 {
	out := make(map[int]float64)
	for _, j := range s.jobs {
		if c, ok := j.Completion(); ok {
			out[j.ID] = c
		}
	}
	return out
}

// ProjectedCompletions clones the simulation, runs the clone to idle
// and returns every job's (projected or actual) completion date. Jobs
// lost to a collapse in the projection are absent from the result.
func (s *Sim) ProjectedCompletions() map[int]float64 {
	c := s.Clone()
	c.RunToIdle(math.Inf(1))
	return c.Completions()
}

// Remove deletes a completed or failed job record from the simulation.
// Removing active jobs is an error: the fluid model has no preemption.
func (s *Sim) Remove(id int) error {
	s.ensureIndex()
	j, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("fluid: server %s: remove: unknown job %d", s.cfg.Name, id)
	}
	if j.State != StateDone && j.State != StateFailed {
		return fmt.Errorf("fluid: server %s: remove: job %d is %s", s.cfg.Name, id, j.State)
	}
	delete(s.byID, id)
	for i, jj := range s.jobs {
		if jj.ID == id {
			s.jobs = append(s.jobs[:i], s.jobs[i+1:]...)
			break
		}
	}
	return nil
}

// PruneCompletedBefore removes terminal job records that ended before
// the cutoff: done jobs whose completion date precedes it, and failed
// jobs released before it. Live (waiting or active) jobs are never
// touched, so pruning cannot change the simulation's trajectory or any
// projection derived from it — it only forgets history. The removed
// job ids are appended to removed (a reusable caller buffer) and the
// grown slice returned, so callers can evict their own bookkeeping
// without a per-prune allocation.
func (s *Sim) PruneCompletedBefore(cutoff float64, removed []int) []int {
	kept := s.jobs[:0]
	for _, j := range s.jobs {
		prune := false
		switch j.State {
		case StateDone:
			prune = j.End[task.PhaseOutput] < cutoff
		case StateFailed:
			prune = j.Release < cutoff
		}
		if prune {
			removed = append(removed, j.ID)
			if s.byID != nil {
				delete(s.byID, j.ID)
			}
			if !s.shared {
				s.free = append(s.free, j)
			}
			continue
		}
		kept = append(kept, j)
	}
	for i := len(kept); i < len(s.jobs); i++ {
		s.jobs[i] = nil
	}
	s.jobs = kept
	return removed
}

// BusyTime returns the cumulative seconds during which the given
// resource (phase) had at least one active job.
func (s *Sim) BusyTime(p task.Phase) float64 {
	if p < 0 || p >= task.NumPhases {
		return 0
	}
	return s.busy[p]
}

// Utilization returns the CPU busy fraction since time zero (0 when no
// time has elapsed).
func (s *Sim) Utilization() float64 {
	if s.now <= 0 {
		return 0
	}
	return s.busy[task.PhaseCompute] / s.now
}

// Kill collapses the server at time t regardless of memory state — the
// failure-injection hook. All resident jobs are lost; the emitted
// events mirror a memory collapse. Killing a collapsed server is a
// no-op.
func (s *Sim) Kill(t float64) []Event {
	if s.collapsed {
		return nil
	}
	events := s.AdvanceTo(t)
	if s.collapsed {
		return events
	}
	s.collapsed = true
	s.collapseTime = t
	events = append(events, Event{Kind: EventCollapse, JobID: -1, Time: t})
	for _, j := range s.live {
		if j.State == StateDone || j.State == StateFailed {
			continue
		}
		j.State = StateFailed
		events = append(events, Event{Kind: EventFailed, JobID: j.ID, Time: t})
	}
	s.compactLive()
	return events
}

// ForceComplete advances the simulation to time t and marks the job as
// finished at that instant, regardless of remaining work. This is the
// hook for the HTM↔execution synchronization extension (paper §7): when
// the agent learns a task's true completion date, the trace can be
// re-anchored so that later predictions start from reality rather than
// from the open-loop projection. Completing an already-done job is a
// no-op.
func (s *Sim) ForceComplete(id int, t float64) error {
	s.ensureIndex()
	j, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("fluid: server %s: force-complete: unknown job %d", s.cfg.Name, id)
	}
	s.AdvanceTo(t)
	switch j.State {
	case StateDone:
		return nil
	case StateFailed:
		return fmt.Errorf("fluid: server %s: force-complete: job %d failed", s.cfg.Name, id)
	}
	for p := task.Phase(0); p < task.NumPhases; p++ {
		j.Remaining[p] = 0
		if math.IsNaN(j.Start[p]) {
			j.Start[p] = t
		}
		if math.IsNaN(j.End[p]) {
			j.End[p] = t
		}
	}
	j.State = StateDone
	s.compactLive()
	return nil
}

// SortedIDs returns the ids of all jobs in ascending order; useful for
// deterministic iteration in reports and tests.
func (s *Sim) SortedIDs() []int {
	ids := make([]int, 0, len(s.jobs))
	for _, j := range s.jobs {
		ids = append(ids, j.ID)
	}
	sort.Ints(ids)
	return ids
}
