package casched_test

import (
	"fmt"
	"log"

	"casched"
)

// ExampleNewFederation shows the federated dispatcher: four servers
// partitioned across two member agents, each decision fanned out over
// the members' heuristic evaluations and committed on the global
// best — with fresh summaries, the same placements the equivalent
// NewCluster makes.
func ExampleNewFederation() {
	f, err := casched.NewFederation(
		casched.WithFedMembers(2),
		casched.WithFedHeuristic("HMCT"),
		casched.WithFedSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	spec := &casched.Spec{Problem: "demo", Variant: 1, CostOn: map[string]casched.Cost{
		"east1": {Compute: 10}, "east2": {Compute: 14},
		"west1": {Compute: 12}, "west2": {Compute: 18},
	}}
	for _, s := range []string{"east1", "east2", "west1", "west2"} {
		if err := f.AddServer(s); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		dec, err := f.Submit(casched.AgentRequest{JobID: i, TaskID: i, Spec: spec, Arrival: 0})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("task %d -> %s (predicted completion %.0fs)\n", i, dec.Server, dec.Predicted)
	}
	// Output:
	// task 0 -> east1 (predicted completion 10s)
	// task 1 -> west1 (predicted completion 12s)
	// task 2 -> east2 (predicted completion 14s)
}

// ExampleStartFedServer shows the federation dispatcher TCP runtime:
// one dispatcher listening for member agents (casagent -join),
// computational servers and clients. A replicated deployment would
// start one per replica with casched.WithElection and
// casched.WithStandby layered on.
func ExampleStartFedServer() {
	srv, err := casched.StartFedServer(casched.FedServerConfig{
		Heuristic: "HMCT",
		Clock:     casched.NewLiveClock(1000),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("listening:", srv.Addr() != "")
	fmt.Println("serving clients:", srv.HAStatus().IsLeader)
	fmt.Println("members joined:", srv.Dispatcher().NumMembers())
	// Output:
	// listening: true
	// serving clients: true
	// members joined: 0
}
