// Cluster walkthrough: a sharded agent over a 48-server pool — N agent
// cores behind one dispatch layer with a merged event stream.
//
// The example builds a pool of three hardware classes, partitions it
// across 4 shards with the class-affinity policy, streams bursty
// arrivals through SubmitBatch (hierarchical routing: each burst goes
// to the least-loaded shard and pipelines through its batch prediction
// cache), feeds completions back at their predicted dates, exercises
// live membership with rebalancing, and reads everything off a
// StatsCollector subscribed to the merged stream.
package main

import (
	"fmt"
	"log"

	"casched"
)

// pool builds 48 servers in three named classes with class-specific
// speeds, plus one spec solvable everywhere.
func pool() ([]string, *casched.Spec) {
	classes := map[string]float64{"sun": 30, "sgi": 22, "alpha": 16}
	var names []string
	costs := make(map[string]casched.Cost)
	for class, compute := range classes {
		for i := 0; i < 16; i++ {
			name := fmt.Sprintf("%s%02d", class, i)
			names = append(names, name)
			f := 1 + 0.03*float64(i)
			costs[name] = casched.Cost{Input: 0.4, Compute: compute * f, Output: 0.2}
		}
	}
	return names, &casched.Spec{Problem: "demo", Variant: 1, CostOn: costs}
}

func main() {
	names, spec := pool()

	// 4 shards, HMCT on each, servers grouped by hardware class so a
	// class resolves within one shard.
	cl, err := casched.NewCluster(
		casched.WithShards(4),
		casched.WithHeuristic("HMCT"),
		casched.WithShardPolicy(casched.AffinityShardPolicy(nil)),
		casched.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}

	// One collector on the merged event stream sees every shard.
	stats := casched.NewStatsCollector()
	cancel := cl.Subscribe(stats.Collect)
	defer cancel()

	for _, name := range names {
		cl.AddServer(name)
	}
	fmt.Printf("%d servers across %d shards:\n", len(cl.Servers()), cl.NumShards())
	for i := 0; i < cl.NumShards(); i++ {
		fmt.Printf("  shard %d: %d servers\n", i, cl.Shard(i).ServerCount())
	}

	// Stream 10 bursts of 12 simultaneous arrivals, completing every
	// job at its HTM-predicted date (the open-loop fluid model is the
	// ground truth here, as in the paper's simulator).
	jobID := 0
	for burst := 0; burst < 10; burst++ {
		at := float64(burst) * 20
		reqs := make([]casched.AgentRequest, 12)
		for i := range reqs {
			reqs[i] = casched.AgentRequest{JobID: jobID, TaskID: jobID, Spec: spec, Arrival: at}
			jobID++
		}
		decs, err := cl.SubmitBatch(reqs)
		if err != nil {
			log.Fatal(err)
		}
		for i, d := range decs {
			// Real executions jitter around the fluid model's
			// prediction; the collector's error metric picks it up.
			cl.Complete(d.JobID, d.Server, d.Predicted+0.3*float64(i%3))
		}
	}

	// Live membership: decommission a class and rebalance the pool.
	for i := 0; i < 16; i++ {
		cl.RemoveServer(fmt.Sprintf("alpha%02d", i))
	}
	moved := cl.Rebalance()
	fmt.Printf("\nafter decommissioning the alpha class (rebalance moved %d servers):\n", moved)
	for i := 0; i < cl.NumShards(); i++ {
		fmt.Printf("  shard %d: %d servers\n", i, cl.Shard(i).ServerCount())
	}

	snap := stats.Snapshot()
	fmt.Printf("\nmerged-stream stats: %d decisions, %d completions, mean |prediction error| %.3fs\n",
		snap.Decisions, snap.Completions, snap.MeanAbsPredictionError)
	busiest, n := "", int64(0)
	for name, o := range snap.Occupancy {
		if o.Decisions > n {
			busiest, n = name, o.Decisions
		}
	}
	fmt.Printf("busiest server: %s (%d decisions)\n", busiest, n)
}
