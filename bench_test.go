// Benchmarks regenerating every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`), plus the
// ablation benches called out in DESIGN.md §5 and micro-benchmarks of
// the core machinery.
//
// Each table bench prints the regenerated rows once, so the benchmark
// log doubles as the experimental record (see EXPERIMENTS.md for the
// paper-vs-measured comparison).
package casched_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"casched"
	"casched/internal/assign"
)

// printOnce guards the one-time table dumps.
var printOnce sync.Map

func dumpOnce(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Println(text)
	}
}

// benchCampaign is the paper-scale campaign (N=500).
func benchCampaign() casched.Campaign { return casched.DefaultCampaign() }

// BenchmarkTable1HTMValidation regenerates Table 1: two metatask
// executions on the live runtime, real vs HTM-simulated completion
// dates. The custom metric is the mean percentage error (paper: <3%).
func BenchmarkTable1HTMValidation(b *testing.B) {
	var last *casched.ValidationResult
	for i := 0; i < b.N; i++ {
		v, err := casched.Validate(casched.ValidationConfig{Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		last = v
	}
	b.ReportMetric(last.MeanPctError, "mean-%err")
	dumpOnce("table1", casched.FormatValidation(last))
}

// BenchmarkFigure1Gantt regenerates the Figure 1 Gantt charts.
func BenchmarkFigure1Gantt(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s, err := casched.Figure1(72)
		if err != nil {
			b.Fatal(err)
		}
		out = s
	}
	dumpOnce("figure1", out)
}

// BenchmarkTable2Testbed, 3 and 4 regenerate the static data tables.
func BenchmarkTable2Testbed(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = casched.FormatTable2()
	}
	dumpOnce("table2", out)
}

func BenchmarkTable3MatmulCosts(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = casched.FormatTable3()
	}
	dumpOnce("table3", out)
}

func BenchmarkTable4WasteCPUCosts(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = casched.FormatTable4()
	}
	dumpOnce("table4", out)
}

// benchSet runs one of Tables 5-8 at paper scale and reports the key
// shape metrics: MSF's sum-flow advantage over MCT and the completion
// counts.
func benchSet(b *testing.B, name string, run func(casched.Campaign) (*casched.SetResult, error)) {
	b.Helper()
	c := benchCampaign()
	var last *casched.SetResult
	for i := 0; i < b.N; i++ {
		res, err := run(c)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	mct, _ := last.Row("MCT")
	msf, _ := last.Row("MSF")
	hmct, _ := last.Row("HMCT")
	if msf.Mean.SumFlow > 0 {
		b.ReportMetric(mct.Mean.SumFlow/msf.Mean.SumFlow, "sumflow-MCT/MSF")
	}
	b.ReportMetric(float64(hmct.Mean.Completed), "HMCT-completed")
	b.ReportMetric(msf.SoonerMean, "MSF-sooner")
	dumpOnce(name, fmt.Sprintf("%s — %s", name, casched.FormatSet(last)))
}

// BenchmarkTable5Set1DLow regenerates Table 5 (matmul, low rate).
func BenchmarkTable5Set1DLow(b *testing.B) {
	benchSet(b, "Table 5", func(c casched.Campaign) (*casched.SetResult, error) { return c.Table5() })
}

// BenchmarkTable6Set1DHigh regenerates Table 6 (matmul, high rate:
// memory exhaustion; bare HMCT loses tasks, MP/MSF complete).
func BenchmarkTable6Set1DHigh(b *testing.B) {
	benchSet(b, "Table 6", func(c casched.Campaign) (*casched.SetResult, error) { return c.Table6() })
}

// BenchmarkTable7Set2DLow regenerates Table 7 (waste-cpu, low rate,
// three metatasks).
func BenchmarkTable7Set2DLow(b *testing.B) {
	benchSet(b, "Table 7", func(c casched.Campaign) (*casched.SetResult, error) { return c.Table7() })
}

// BenchmarkTable8Set2DHigh regenerates Table 8 (waste-cpu, high rate,
// three metatasks).
func BenchmarkTable8Set2DHigh(b *testing.B) {
	benchSet(b, "Table 8", func(c casched.Campaign) (*casched.SetResult, error) { return c.Table8() })
}

// --- Ablation benches (DESIGN.md §5) ---

// runMSFSet2 runs MSF on a 300-task set-2 metatask under a modified
// campaign and returns its report.
func runMSFSet2(b *testing.B, mutate func(*casched.RunConfig)) casched.Report {
	b.Helper()
	mt := casched.GenerateSet2(300, 20, 11)
	servers, err := casched.TestbedServers(casched.Set2Servers)
	if err != nil {
		b.Fatal(err)
	}
	s, err := casched.NewScheduler("MSF")
	if err != nil {
		b.Fatal(err)
	}
	cfg := casched.RunConfig{Servers: servers, Scheduler: s, Seed: 11, NoiseSigma: 0.03}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := casched.Run(cfg, mt)
	if err != nil {
		b.Fatal(err)
	}
	return res.Report()
}

// BenchmarkAblationNoise quantifies how execution noise degrades the
// HTM-driven schedule: sum-flow at sigma 0, 0.03 and 0.10.
func BenchmarkAblationNoise(b *testing.B) {
	for _, sigma := range []float64{0, 0.03, 0.10} {
		sigma := sigma
		b.Run(fmt.Sprintf("sigma=%.2f", sigma), func(b *testing.B) {
			var rep casched.Report
			for i := 0; i < b.N; i++ {
				rep = runMSFSet2(b, func(cfg *casched.RunConfig) { cfg.NoiseSigma = sigma })
			}
			b.ReportMetric(rep.SumFlow, "sumflow")
			b.ReportMetric(rep.MaxStretch, "maxstretch")
		})
	}
}

// BenchmarkAblationMonitorPeriod quantifies how information staleness
// degrades the monitor-driven MCT baseline.
func BenchmarkAblationMonitorPeriod(b *testing.B) {
	mt := casched.GenerateSet2(300, 20, 11)
	servers, err := casched.TestbedServers(casched.Set2Servers)
	if err != nil {
		b.Fatal(err)
	}
	for _, period := range []float64{5, 30, 120} {
		period := period
		b.Run(fmt.Sprintf("period=%.0fs", period), func(b *testing.B) {
			var rep casched.Report
			for i := 0; i < b.N; i++ {
				s, err := casched.NewScheduler("MCT")
				if err != nil {
					b.Fatal(err)
				}
				res, err := casched.Run(casched.RunConfig{
					Servers: servers, Scheduler: s, Seed: 11, NoiseSigma: 0.03,
					MonitorPeriod: period, MonitorTau: 2 * period,
				}, mt)
				if err != nil {
					b.Fatal(err)
				}
				rep = res.Report()
			}
			b.ReportMetric(rep.SumFlow, "sumflow")
		})
	}
}

// BenchmarkAblationHTMSync compares the open-loop HTM (paper) against
// the §7 synchronization extension under strong noise.
func BenchmarkAblationHTMSync(b *testing.B) {
	for _, sync := range []bool{false, true} {
		sync := sync
		b.Run(fmt.Sprintf("sync=%v", sync), func(b *testing.B) {
			var rep casched.Report
			for i := 0; i < b.N; i++ {
				rep = runMSFSet2(b, func(cfg *casched.RunConfig) {
					cfg.NoiseSigma = 0.10
					cfg.HTMSync = sync
				})
			}
			b.ReportMetric(rep.SumFlow, "sumflow")
		})
	}
}

// BenchmarkAblationMPTieBreak compares MP's Figure 3 tie-breaking rule
// (minimum completion) with random tie-breaking.
func BenchmarkAblationMPTieBreak(b *testing.B) {
	mt := casched.GenerateSet2(300, 25, 11)
	servers, err := casched.TestbedServers(casched.Set2Servers)
	if err != nil {
		b.Fatal(err)
	}
	for _, random := range []bool{false, true} {
		random := random
		b.Run(fmt.Sprintf("random=%v", random), func(b *testing.B) {
			var rep casched.Report
			for i := 0; i < b.N; i++ {
				var s casched.Scheduler
				if random {
					s = casched.NewMPRandomTie()
				} else {
					s, err = casched.NewScheduler("MP")
					if err != nil {
						b.Fatal(err)
					}
				}
				res, err := casched.Run(casched.RunConfig{
					Servers: servers, Scheduler: s, Seed: 11, NoiseSigma: 0.03,
				}, mt)
				if err != nil {
					b.Fatal(err)
				}
				rep = res.Report()
			}
			b.ReportMetric(rep.SumFlow, "sumflow")
			b.ReportMetric(rep.MaxStretch, "maxstretch")
		})
	}
}

// BenchmarkAblationFaultTolerance measures what NetSolve's
// resubmission layer buys HMCT in the collapse regime (set 1, high
// rate).
func BenchmarkAblationFaultTolerance(b *testing.B) {
	mt := casched.GenerateSet1(500, 20, 103)
	servers, err := casched.TestbedServers(casched.Set1Servers)
	if err != nil {
		b.Fatal(err)
	}
	for _, ft := range []bool{false, true} {
		ft := ft
		b.Run(fmt.Sprintf("ft=%v", ft), func(b *testing.B) {
			var rep casched.Report
			for i := 0; i < b.N; i++ {
				s, err := casched.NewScheduler("HMCT")
				if err != nil {
					b.Fatal(err)
				}
				res, err := casched.Run(casched.RunConfig{
					Servers: servers, Scheduler: s, Seed: 103, NoiseSigma: 0.03,
					MemoryModel: true, FaultTolerance: ft,
				}, mt)
				if err != nil {
					b.Fatal(err)
				}
				rep = res.Report()
			}
			b.ReportMetric(float64(rep.Completed), "completed")
			b.ReportMetric(float64(rep.Resubmissions), "resubmissions")
		})
	}
}

// BenchmarkExtendedBaselines compares the paper's heuristics against
// the full Maheswaran et al. family (MET, OLB, KPB, SA) and Weissman's
// MNI — the companion tech report's broader simulation study.
func BenchmarkExtendedBaselines(b *testing.B) {
	c := casched.DefaultCampaign()
	c.N = 300
	var out string
	for i := 0; i < b.N; i++ {
		reports, sooner, err := c.BaselinesComparison(20)
		if err != nil {
			b.Fatal(err)
		}
		out = formatBaselinesForBench(reports, sooner)
	}
	dumpOnce("baselines", out)
}

// formatBaselinesForBench renders the extended comparison via the
// experiments formatter exposed through the campaign result types.
func formatBaselinesForBench(reports []casched.Report, sooner map[string]int) string {
	s := "extended heuristic comparison (set 2, N=300, D=20)\n"
	s += fmt.Sprintf("%-11s %5s %9s %9s %9s %11s %7s\n",
		"heuristic", "done", "makespan", "sumflow", "maxflow", "maxstretch", "sooner")
	for _, r := range reports {
		so := "-"
		if v, ok := sooner[r.Heuristic]; ok {
			so = fmt.Sprintf("%d", v)
		}
		s += fmt.Sprintf("%-11s %5d %9.0f %9.0f %9.0f %11.2f %7s\n",
			r.Heuristic, r.Completed, r.Makespan, r.SumFlow, r.MaxFlow, r.MaxStretch, so)
	}
	return s
}

// BenchmarkRateSweep traces the sum-flow trajectories of the four
// paper heuristics across arrival rates, locating the crossovers the
// two-rate tables sample.
func BenchmarkRateSweep(b *testing.B) {
	c := casched.DefaultCampaign()
	c.N = 300
	var out string
	for i := 0; i < b.N; i++ {
		res, err := c.RateSweep(2, []float64{30, 25, 20, 17}, []string{"MCT", "HMCT", "MP", "MSF"})
		if err != nil {
			b.Fatal(err)
		}
		out = casched.FormatSweep(res, "sumflow") + casched.FormatSweep(res, "maxstretch")
	}
	dumpOnce("sweep", out)
}

// BenchmarkAblationArrivalProcess probes sensitivity to the traffic
// shape: the paper's Poisson arrivals vs uniform, constant and bursty
// at the same mean rate.
func BenchmarkAblationArrivalProcess(b *testing.B) {
	servers, err := casched.TestbedServers(casched.Set2Servers)
	if err != nil {
		b.Fatal(err)
	}
	for _, proc := range []casched.ArrivalProcess{
		casched.ArrivalPoisson, casched.ArrivalUniform,
		casched.ArrivalConstant, casched.ArrivalBursty,
	} {
		proc := proc
		b.Run(proc.String(), func(b *testing.B) {
			sc := casched.Set2Scenario(300, 20, 11)
			sc.Arrival = proc
			mt, err := casched.GenerateScenario(sc)
			if err != nil {
				b.Fatal(err)
			}
			var rep casched.Report
			for i := 0; i < b.N; i++ {
				s, err := casched.NewScheduler("MSF")
				if err != nil {
					b.Fatal(err)
				}
				res, err := casched.Run(casched.RunConfig{
					Servers: servers, Scheduler: s, Seed: 11, NoiseSigma: 0.03,
				}, mt)
				if err != nil {
					b.Fatal(err)
				}
				rep = res.Report()
			}
			b.ReportMetric(rep.SumFlow, "sumflow")
			b.ReportMetric(rep.MaxStretch, "maxstretch")
		})
	}
}

// BenchmarkAblationMemoryAwareHTM measures the §7 memory extension in
// the Table 6 collapse regime.
func BenchmarkAblationMemoryAwareHTM(b *testing.B) {
	mt := casched.GenerateSet1(500, 20, 103)
	servers, err := casched.TestbedServers(casched.Set1Servers)
	if err != nil {
		b.Fatal(err)
	}
	for _, mem := range []bool{false, true} {
		mem := mem
		b.Run(fmt.Sprintf("htm-memory=%v", mem), func(b *testing.B) {
			var rep casched.Report
			for i := 0; i < b.N; i++ {
				s, err := casched.NewScheduler("HMCT")
				if err != nil {
					b.Fatal(err)
				}
				res, err := casched.Run(casched.RunConfig{
					Servers: servers, Scheduler: s, Seed: 103, NoiseSigma: 0.03,
					MemoryModel: true, HTMMemory: mem,
				}, mt)
				if err != nil {
					b.Fatal(err)
				}
				rep = res.Report()
			}
			b.ReportMetric(float64(rep.Completed), "completed")
			b.ReportMetric(rep.MaxStretch, "maxstretch")
		})
	}
}

// --- Large-testbed scheduling-core benchmarks ---

// largeTestbed builds a synthetic testbed of n servers and a waste-cpu
// style spec pool solvable everywhere, with mildly heterogeneous costs.
// The specs come from the task registry's synthetic family, so the
// same stream survives a trip over the live wire (members resolve the
// identical cost tables from (problem, variant) alone) and the wire
// benchmarks can drive real TCP federations at any testbed size.
func largeTestbed(n int) ([]string, []*casched.Spec) {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("sv%02d", i)
	}
	specs := make([]*casched.Spec, 0, 3)
	for family := 0; family < 3; family++ {
		specs = append(specs, casched.SyntheticSpec(family, n))
	}
	return names, specs
}

// largeTrace returns an HTM whose live trace holds nTasks placed tasks
// on a testbed of nServers servers, under inhomogeneous-Poisson
// arrivals, plus the evaluation probe (spec and arrival date).
func largeTrace(b *testing.B, nServers, nTasks, workers int) (*casched.HTM, []string, *casched.Spec, float64) {
	b.Helper()
	names, specs := largeTestbed(nServers)
	sc := casched.PoissonBurstScenario(nTasks, 5, 17)
	sc.Specs = specs
	mt, err := casched.GenerateScenario(sc)
	if err != nil {
		b.Fatal(err)
	}
	m := casched.NewHTM(names, casched.HTMWithWorkers(workers))
	for i, t := range mt.Tasks {
		if err := m.Place(t.ID, t.Spec, t.Arrival, names[i%len(names)]); err != nil {
			b.Fatal(err)
		}
	}
	horizon := mt.Tasks[mt.Len()-1].Arrival
	return m, names, specs[1], horizon
}

// BenchmarkEvaluateAllLargeTestbed pits the scheduling core's two
// evaluation paths against each other at large-testbed scale (32
// servers, 2000 placed tasks): the seed's per-candidate full replay
// (two projections per server per decision, nothing cached) versus the
// incremental core (cached baselines, copy-on-write clones, worker
// fan-out). The ns/op ratio between the sub-benchmarks is the
// per-decision speedup.
func BenchmarkEvaluateAllLargeTestbed(b *testing.B) {
	const nServers, nTasks = 32, 2000
	const probeID = 9_999_999
	b.Run("full-replay-sequential", func(b *testing.B) {
		m, names, spec, at := largeTrace(b, nServers, nTasks, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, s := range names {
				if _, err := m.EvaluateFull(probeID, spec, at, s); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		m, names, spec, at := largeTrace(b, nServers, nTasks, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.EvaluateAll(probeID, spec, at, names); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental-concurrent", func(b *testing.B) {
		m, names, spec, at := largeTrace(b, nServers, nTasks, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.EvaluateAll(probeID, spec, at, names); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLargeTestbedMSFPoissonBurst runs the full discrete-event
// simulator at large-testbed scale under bursty inhomogeneous-Poisson
// traffic with the heaviest HTM heuristic — the end-to-end view of the
// concurrent incremental core (every arrival triggers a 32-candidate
// evaluation).
func BenchmarkLargeTestbedMSFPoissonBurst(b *testing.B) {
	const nServers, nTasks = 32, 2000
	names, specs := largeTestbed(nServers)
	sc := casched.PoissonBurstScenario(nTasks, 5, 17)
	sc.Specs = specs
	mt, err := casched.GenerateScenario(sc)
	if err != nil {
		b.Fatal(err)
	}
	servers := make([]casched.ServerConfig, len(names))
	for i, n := range names {
		servers[i] = casched.ServerConfig{Name: n}
	}
	b.ResetTimer()
	var rep casched.Report
	for i := 0; i < b.N; i++ {
		s, err := casched.NewScheduler("MSF")
		if err != nil {
			b.Fatal(err)
		}
		res, err := casched.Run(casched.RunConfig{
			Servers: servers, Scheduler: s, Seed: 17, NoiseSigma: 0.03,
		}, mt)
		if err != nil {
			b.Fatal(err)
		}
		rep = res.Report()
	}
	b.ReportMetric(float64(rep.Completed), "completed")
	b.ReportMetric(rep.SumFlow, "sumflow")
}

// --- Micro-benchmarks of the core machinery ---

// BenchmarkHTMEvaluate measures one candidate evaluation against a
// trace holding 50 active tasks.
func BenchmarkHTMEvaluate(b *testing.B) {
	m := casched.NewHTM([]string{"artimon"})
	spec := casched.WasteCPUSpec(400)
	for i := 0; i < 50; i++ {
		if err := m.Place(i, spec, float64(i), "artimon"); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Evaluate(1000, spec, 50, "artimon"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridRun200 measures a full 200-task simulated experiment.
func BenchmarkGridRun200(b *testing.B) {
	mt := casched.GenerateSet2(200, 25, 3)
	servers, err := casched.TestbedServers(casched.Set2Servers)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := casched.NewScheduler("MSF")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := casched.Run(casched.RunConfig{
			Servers: servers, Scheduler: s, Seed: 3, NoiseSigma: 0.03,
		}, mt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerDecisions compares the per-decision cost of every
// heuristic on a moderately loaded four-server trace.
func BenchmarkSchedulerDecisions(b *testing.B) {
	for _, name := range []string{"MCT", "HMCT", "MP", "MSF", "MNI"} {
		name := name
		b.Run(name, func(b *testing.B) {
			mt := casched.GenerateSet2(150, 20, 3)
			servers, err := casched.TestbedServers(casched.Set2Servers)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := casched.NewScheduler(name)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := casched.Run(casched.RunConfig{
					Servers: servers, Scheduler: s, Seed: 3, NoiseSigma: 0.03,
				}, mt); err != nil {
					b.Fatal(err)
				}
			}
			// Normalize to per-decision cost.
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/150, "ns/decision")
		})
	}
}

// --- Agent-core benchmarks ---

// benchBatches builds a decision stream: n tasks for an nServers-sized
// testbed under inhomogeneous-Poisson (bursty) arrivals, grouped into
// batches of up to k simultaneous arrivals — each batch's tasks carry
// the batch-head arrival date, the stream a batching frontend hands
// the agent. The mean inter-arrival scales inversely with the testbed
// so per-server load stays comparable across server counts.
func benchBatches(b *testing.B, nServers, n, k int) ([]string, [][]casched.AgentRequest) {
	b.Helper()
	names, specs := largeTestbed(nServers)
	sc := casched.PoissonBurstScenario(n, 5*32/float64(nServers), 17)
	sc.Specs = specs
	mt, err := casched.GenerateScenario(sc)
	if err != nil {
		b.Fatal(err)
	}
	var batches [][]casched.AgentRequest
	for i := 0; i < mt.Len(); i += k {
		end := i + k
		if end > mt.Len() {
			end = mt.Len()
		}
		at := mt.Tasks[i].Arrival
		batch := make([]casched.AgentRequest, 0, end-i)
		for _, t := range mt.Tasks[i:end] {
			batch = append(batch, casched.AgentRequest{
				JobID: t.ID, TaskID: t.ID, Spec: t.Spec, Arrival: at,
			})
		}
		batches = append(batches, batch)
	}
	return names, batches
}

// agentBenchBatches is the 32-server stream the original agent
// benchmarks play.
func agentBenchBatches(b *testing.B, n, k int) ([]string, [][]casched.AgentRequest) {
	return benchBatches(b, 32, n, k)
}

// newBenchCore builds a fresh HMCT agent core over the testbed.
func newBenchCore(b *testing.B, names []string) *casched.AgentCore {
	b.Helper()
	s, err := casched.NewScheduler("HMCT")
	if err != nil {
		b.Fatal(err)
	}
	core, err := casched.NewAgentCore(casched.AgentCoreConfig{Scheduler: s, Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range names {
		core.AddServer(name)
	}
	return core
}

const agentBenchTasks = 192

// BenchmarkAgentSubmit measures the per-decision path: every arrival
// pays one full 32-candidate HTM evaluation.
func BenchmarkAgentSubmit(b *testing.B) {
	names, batches := agentBenchBatches(b, agentBenchTasks, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		core := newBenchCore(b, names)
		b.StartTimer()
		for _, batch := range batches {
			for _, req := range batch {
				if _, err := core.Submit(req); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.ReportMetric(float64(agentBenchTasks)*float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
}

// BenchmarkAgentSubmitBatch pipelines each burst through one lock
// acquisition and one HTM evaluation pass: candidate predictions are
// shared across a batch and only the just-placed server re-evaluates.
// Decisions are identical to BenchmarkAgentSubmit's (the reuse is
// exact); the ns/op ratio is the batching speedup.
func BenchmarkAgentSubmitBatch(b *testing.B) {
	names, batches := agentBenchBatches(b, agentBenchTasks, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		core := newBenchCore(b, names)
		b.StartTimer()
		for _, batch := range batches {
			if _, err := core.SubmitBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(agentBenchTasks)*float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
}

// newMatchedBenchCore builds a fresh HMCT agent core with k-task
// min-cost batch assignment enabled.
func newMatchedBenchCore(b *testing.B, names []string) *casched.AgentCore {
	b.Helper()
	s, err := casched.NewScheduler("HMCT")
	if err != nil {
		b.Fatal(err)
	}
	core, err := casched.NewAgentCore(casched.AgentCoreConfig{Scheduler: s, Seed: 17},
		casched.WithBatchAssignment(true))
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range names {
		core.AddServer(name)
	}
	return core
}

// BenchmarkAgentSubmitBatchMatched is BenchmarkAgentSubmitBatch under
// k-task min-cost assignment: each burst pays the same shared
// evaluation pass plus the Hungarian solve over the prediction matrix
// and one extra re-projection per committed wave. The decisions/s gap
// to BenchmarkAgentSubmitBatch is the price of true batch scheduling
// (the quality side is benchmarks/batch-comparison.txt).
func BenchmarkAgentSubmitBatchMatched(b *testing.B) {
	names, batches := agentBenchBatches(b, agentBenchTasks, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		core := newMatchedBenchCore(b, names)
		b.StartTimer()
		for _, batch := range batches {
			if _, err := core.SubmitBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(agentBenchTasks)*float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
}

// BenchmarkAssignSolve measures the bare min-cost assignment solver on
// a dense 32-task × 128-server matrix — the in-lock cost the matched
// batch path adds per wave on the largest benchmarked testbed.
func BenchmarkAssignSolve(b *testing.B) {
	const rows, cols = 32, 128
	cost := make([][]float64, rows)
	for i := range cost {
		cost[i] = make([]float64, cols)
		for j := range cost[i] {
			// Deterministic pseudo-random-ish heterogeneous costs.
			cost[i][j] = float64((i*31+j*17)%97) + float64(j%11)*0.25
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rowToCol, _ := assign.Solve(cost); len(rowToCol) != rows {
			b.Fatal("short result")
		}
	}
}

// --- Steady-state decision-path benchmarks (the 0 allocs/op gate) ---

// The steady benches hold a long-lived core at constant occupancy:
// steadyWindow tasks in flight, completed-task history bounded to
// steadyRetention experiment seconds, arrivals steadyDT apart. Under
// that regime the pooled fluid/HTM buffers, the evaluation scratch and
// the trace maps all reach a fixed size during warmup, so the timed
// loop measures the pure decision path — and allocs/op is the gated
// number: it must read 0.
// steadyDT paces arrivals so the fluid occupancy equilibrates near
// the window: without HTM↔execution sync the trace retires tasks at
// their simulated completion (mean service ≈ 112s here), so the
// steady concurrency is service/steadyDT ≈ 56, matched to the
// 64-deep completion ring.
const (
	steadyWindow    = 64
	steadyRetention = 50.0
	steadyDT        = 2.0
	steadyWarmup    = 768
)

// runSteady drives a submit/complete pair as a steady-state decision
// loop. Warmup (untimed) fills the in-flight window and runs past the
// retention plateau; each timed iteration then retires the oldest
// in-flight task and places one arrival, keeping every buffer at its
// steady occupancy.
func runSteady(b *testing.B, specs []*casched.Spec,
	submit func(casched.AgentRequest) (casched.AgentDecision, error),
	complete func(jobID int, server string, at float64)) {
	b.Helper()
	type placedTask struct {
		job    int
		server string
	}
	ring := make([]placedTask, steadyWindow)
	now := 0.0
	var req casched.AgentRequest
	place := func(id int) {
		now += steadyDT
		req.JobID, req.TaskID, req.Spec, req.Arrival = id, id, specs[id%len(specs)], now
		dec, err := submit(req)
		if err != nil {
			b.Fatal(err)
		}
		ring[id%steadyWindow] = placedTask{job: id, server: dec.Server}
	}
	id := 0
	for ; id < steadyWindow; id++ {
		place(id)
	}
	// Completed records prune once the trace advances steadyRetention
	// seconds past them; warming well past both the concurrency
	// equilibrium and several retention horizons lands every pooled
	// slab and map on its plateau before the clock starts.
	for ; id < steadyWindow+steadyWarmup; id++ {
		old := ring[id%steadyWindow]
		complete(old.job, old.server, now)
		place(id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		old := ring[id%steadyWindow]
		complete(old.job, old.server, now)
		place(id)
		id++
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
}

// BenchmarkAgentSubmitSteady is the zero-allocation contract on the
// single-core decision path: one long-lived HMCT core over 128
// servers, one decision per iteration at constant occupancy. With the
// pooled fluid clones, the cached incremental baselines and the
// reusable evaluation scratch the hot path never touches the heap —
// the alloc gate pins allocs/op at 0.
func BenchmarkAgentSubmitSteady(b *testing.B) {
	names, specs := largeTestbed(128)
	s, err := casched.NewScheduler("HMCT")
	if err != nil {
		b.Fatal(err)
	}
	core, err := casched.NewAgentCore(casched.AgentCoreConfig{
		Scheduler: s, Seed: 17, HTMWorkers: 1, HTMRetention: steadyRetention,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range names {
		core.AddServer(name)
	}
	runSteady(b, specs, core.Submit, func(jobID int, server string, at float64) {
		core.Complete(jobID, server, at)
	})
}

// BenchmarkClusterSubmitSteady is the same contract through the
// sharded dispatch layer: shards=1 degenerates to the single core
// behind the dispatch bookkeeping, shards=4 adds the fan-out (every
// shard evaluates via its persistent worker, commit on the winner).
// Both must also read 0 allocs/op.
func BenchmarkClusterSubmitSteady(b *testing.B) {
	for _, shards := range []int{1, 4} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d/servers=128", shards), func(b *testing.B) {
			names, specs := largeTestbed(128)
			cl, err := casched.NewCluster(
				casched.WithShards(shards),
				casched.WithHeuristic("HMCT"),
				casched.WithSeed(17),
				casched.WithHTMWorkers(1),
				casched.WithHTMRetention(steadyRetention),
			)
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			for _, name := range names {
				cl.AddServer(name)
			}
			runSteady(b, specs, cl.Submit, func(jobID int, server string, at float64) {
				cl.Complete(jobID, server, at)
			})
		})
	}
}

// --- Cluster benchmarks: sharded dispatch scaling curves ---

// newBenchCluster builds a fresh HMCT cluster over the testbed.
func newBenchCluster(b *testing.B, names []string, shards int) *casched.Cluster {
	b.Helper()
	cl, err := casched.NewCluster(
		casched.WithShards(shards),
		casched.WithHeuristic("HMCT"),
		casched.WithSeed(17),
	)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range names {
		cl.AddServer(name)
	}
	return cl
}

// BenchmarkAgentSubmitBatch128 is BenchmarkAgentSubmitBatch on the
// 128-server testbed: the single mutex-guarded core paying a
// 128-candidate evaluation per burst head — the comparator the
// BenchmarkClusterSubmitBatch scaling curves are measured against.
func BenchmarkAgentSubmitBatch128(b *testing.B) {
	names, batches := benchBatches(b, 128, agentBenchTasks, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		core := newBenchCore(b, names)
		b.StartTimer()
		for _, batch := range batches {
			if _, err := core.SubmitBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(agentBenchTasks)*float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
}

// BenchmarkClusterSubmitBatch measures the sharded dispatch layer's
// throughput path across shard counts and testbed sizes: every burst
// routes to the least-loaded eligible shard and pipelines through that
// shard's batch prediction cache, so per-burst evaluation cost scales
// with the shard's candidate set instead of the whole pool. shards=1
// is the dispatch layer degenerated to the single core (its overhead
// floor); the decisions/s ratio to BenchmarkAgentSubmitBatch128 (or
// the 32-server BenchmarkAgentSubmitBatch) is the sharding speedup.
func BenchmarkClusterSubmitBatch(b *testing.B) {
	for _, nServers := range []int{32, 128} {
		for _, shards := range []int{1, 2, 4, 8} {
			nServers, shards := nServers, shards
			b.Run(fmt.Sprintf("shards=%d/servers=%d", shards, nServers), func(b *testing.B) {
				names, batches := benchBatches(b, nServers, agentBenchTasks, 16)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					cl := newBenchCluster(b, names, shards)
					b.StartTimer()
					for _, batch := range batches {
						if _, err := cl.SubmitBatch(batch); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.ReportMetric(float64(agentBenchTasks)*float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
			})
		}
	}
}

// --- Federation benchmarks: the dispatch layer behind a transport ---

// newBenchFederation builds a fresh in-process HMCT federation over
// the testbed. opts tweak the staleness machinery.
func newBenchFederation(b *testing.B, names []string, members int, opts ...casched.FederationOption) *casched.Federation {
	b.Helper()
	all := append([]casched.FederationOption{
		casched.WithFedMembers(members),
		casched.WithFedHeuristic("HMCT"),
		casched.WithFedSeed(17),
	}, opts...)
	f, err := casched.NewFederation(all...)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range names {
		if err := f.AddServer(name); err != nil {
			b.Fatal(err)
		}
	}
	return f
}

// BenchmarkFedSubmit measures the federated fresh-mode decision path
// at 4 members × 32 servers: every submission refreshes member
// summaries inline and fans the evaluation out over every member's
// partition — the exact (cluster-parity) mode, paying summary
// bookkeeping on top of BenchmarkClusterSubmit's evaluation work.
func BenchmarkFedSubmit(b *testing.B) {
	names, batches := benchBatches(b, 32, agentBenchTasks, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f := newBenchFederation(b, names, 4)
		b.StartTimer()
		for _, batch := range batches {
			for _, req := range batch {
				if _, err := f.Submit(req); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.ReportMetric(float64(agentBenchTasks)*float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
}

// BenchmarkFedSubmitDegraded is BenchmarkFedSubmit with permanently
// stale summaries: routing degrades to power-of-two-choices and each
// decision is delegated whole to one member. Degraded mode exists for
// availability, not speed — frozen summaries herd consecutive
// decisions onto the stale leader, whose growing traces make each
// evaluation dearer, so expect fewer decisions/s than the fan-out
// path here (and the quality premium of benchmarks/fed-study.txt).
func BenchmarkFedSubmitDegraded(b *testing.B) {
	names, batches := benchBatches(b, 32, agentBenchTasks, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f := newBenchFederation(b, names, 4,
			casched.WithFedStaleAfter(time.Nanosecond),
			casched.WithFedSummaryInterval(time.Hour))
		f.RefreshSummaries()
		b.StartTimer()
		for _, batch := range batches {
			for _, req := range batch {
				if _, err := f.Submit(req); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.ReportMetric(float64(agentBenchTasks)*float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
}

// BenchmarkFedSubmitRelay is BenchmarkFedSubmitDegraded with the live
// event relay on at its freshest setting (inline pull per submission):
// each delegation is priced by near-fresh per-server drains from the
// members' decision ledgers instead of frozen power-of-two-choices.
// The relay pull and view fold are the measured overhead; the payoff
// is the ~2× sum-flow premium of frozen routing collapsing to ~1×
// (benchmarks/fed-study.txt).
func BenchmarkFedSubmitRelay(b *testing.B) {
	names, batches := benchBatches(b, 32, agentBenchTasks, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f := newBenchFederation(b, names, 4,
			casched.WithFedStaleAfter(time.Nanosecond),
			casched.WithFedSummaryInterval(time.Hour),
			casched.WithFedRelay(true),
			casched.WithFedRelayInterval(0))
		f.RefreshSummaries()
		b.StartTimer()
		for _, batch := range batches {
			for _, req := range batch {
				if _, err := f.Submit(req); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.ReportMetric(float64(agentBenchTasks)*float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
}

// BenchmarkFedSubmitBatch measures the federated hierarchical batch
// path: bursts routed by power-of-two-choices over summary-backed
// backlog scores to one member's batch prediction cache — the
// cluster's throughput path behind the transport seam.
func BenchmarkFedSubmitBatch(b *testing.B) {
	names, batches := benchBatches(b, 32, agentBenchTasks, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f := newBenchFederation(b, names, 4)
		b.StartTimer()
		for _, batch := range batches {
			if _, err := f.SubmitBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(agentBenchTasks)*float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
}

// BenchmarkFedSubmitBatchRelay is the degraded batch path with the
// relay on: bursts route per tenant over view-backed member backlogs
// (near-fresh in-flight counts folded from the decision ledgers)
// instead of frozen summary counts, with an inline relay pull per
// burst as the measured overhead.
func BenchmarkFedSubmitBatchRelay(b *testing.B) {
	names, batches := benchBatches(b, 32, agentBenchTasks, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f := newBenchFederation(b, names, 4,
			casched.WithFedStaleAfter(time.Nanosecond),
			casched.WithFedSummaryInterval(time.Hour),
			casched.WithFedRelay(true),
			casched.WithFedRelayInterval(0))
		f.RefreshSummaries()
		b.StartTimer()
		for _, batch := range batches {
			if _, err := f.SubmitBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(agentBenchTasks)*float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
}

// --- Federation wire benchmarks: real TCP members, gob vs framed ---

// newWireFederation starts a real TCP dispatcher plus four member
// agents joined over loopback, registers the n-server synthetic pool
// through the dispatcher, and returns the dispatcher handle. forceGob
// pins every member handle to the legacy gob wire; otherwise the
// handles negotiate the framed wire. Summaries stay fresh (generous
// StaleAfter, background refresh) so every submission takes the exact
// fan-out path.
func newWireFederation(b *testing.B, names []string, forceGob bool) *casched.Federation {
	b.Helper()
	clock := casched.NewLiveClock(1000)
	fs, err := casched.StartFedServer(casched.FedServerConfig{
		Heuristic:       "HMCT",
		Seed:            17,
		Clock:           clock,
		Timeout:         10 * time.Second,
		StaleAfter:      time.Hour,
		SummaryInterval: 50 * time.Millisecond,
		ForceGob:        forceGob,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { fs.Close() })
	for i := 0; i < 4; i++ {
		s, err := casched.NewScheduler("HMCT")
		if err != nil {
			b.Fatal(err)
		}
		m, err := casched.StartLiveAgent(casched.LiveAgentConfig{
			Scheduler: s, Clock: clock, Seed: 17,
			Join: fs.Addr(), Name: fmt.Sprintf("m%d", i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { m.Close() })
	}
	d := fs.Dispatcher()
	for _, name := range names {
		if err := d.AddServer(name); err != nil {
			b.Fatal(err)
		}
	}
	d.RefreshSummaries()
	return d
}

// BenchmarkFedSubmitWire measures the committed federated decision
// path over a real TCP wire: per submission the dispatcher fans an
// Evaluate out to all four members and commits on the winner, so every
// decision pays five member round trips plus encode/decode on both
// sides. wire=gob is the legacy net/rpc encoding; wire=framed is the
// length-prefixed binary wire over its pipelined connection. The
// decisions/s ratio between the two at a given testbed size is the
// framing speedup, and it widens with the server count because gob
// re-describes types while the framed encoding's cost stays flat per
// field. Placements are transport-independent (see
// TestFramedMatchesGobPlacements). Each timed iteration plays the
// 192-task stream at fresh job IDs and a fresh time offset; the
// completions retiring the round run untimed so the member traces stay
// bounded.
func BenchmarkFedSubmitWire(b *testing.B) {
	for _, nServers := range []int{128, 512, 1024} {
		for _, wire := range []string{"gob", "framed"} {
			nServers, wire := nServers, wire
			b.Run(fmt.Sprintf("wire=%s/servers=%d", wire, nServers), func(b *testing.B) {
				names, batches := benchBatches(b, nServers, agentBenchTasks, 16)
				d := newWireFederation(b, names, wire == "gob")
				horizon := batches[len(batches)-1][0].Arrival + 10
				type placedJob struct {
					job    int
					server string
					at     float64
				}
				placed := make([]placedJob, 0, agentBenchTasks)
				round := func(idOff int, tOff float64) {
					placed = placed[:0]
					for _, batch := range batches {
						for _, req := range batch {
							req.JobID += idOff
							req.TaskID += idOff
							req.Arrival += tOff
							dec, err := d.Submit(req)
							if err != nil {
								b.Fatal(err)
							}
							placed = append(placed, placedJob{req.JobID, dec.Server, req.Arrival + 1})
						}
					}
				}
				retire := func() {
					for _, p := range placed {
						if err := d.Complete(p.job, p.server, p.at); err != nil {
							b.Fatal(err)
						}
					}
				}
				// One untimed round warms wire negotiation, summaries
				// and every pooled buffer on both sides.
				round(0, 0)
				retire()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					round((i+1)*agentBenchTasks, float64(i+1)*horizon)
					b.StopTimer()
					retire()
					b.StartTimer()
				}
				b.ReportMetric(float64(agentBenchTasks)*float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
			})
		}
	}
}

// BenchmarkClusterSubmit measures the exact fan-out path (every shard
// evaluates, commit on the winner) across shard counts. Unlike the
// batch path this does the full pool's evaluation work per decision —
// the curve shows what decision fidelity costs, and that the dispatch
// layer itself adds negligible overhead at shards=1. The 512- and
// 1024-server rows extend the curve to the pool sizes the framed-wire
// federation targets.
func BenchmarkClusterSubmit(b *testing.B) {
	curves := []struct {
		nServers int
		shards   []int
	}{
		{128, []int{1, 2, 4, 8}},
		{512, []int{4, 8}},
		{1024, []int{4, 8}},
	}
	for _, c := range curves {
		for _, shards := range c.shards {
			nServers, shards := c.nServers, shards
			b.Run(fmt.Sprintf("shards=%d/servers=%d", shards, nServers), func(b *testing.B) {
				names, batches := benchBatches(b, nServers, agentBenchTasks, 16)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					cl := newBenchCluster(b, names, shards)
					b.StartTimer()
					for _, batch := range batches {
						for _, req := range batch {
							if _, err := cl.Submit(req); err != nil {
								b.Fatal(err)
							}
						}
					}
					b.StopTimer()
					cl.Close()
					b.StartTimer()
				}
				b.ReportMetric(float64(agentBenchTasks)*float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
			})
		}
	}
}

// benchTenantShares is the 4:2:1 weight map the multi-tenant
// benchmarks arbitrate under.
var benchTenantShares = map[string]float64{"gold": 4, "silver": 2, "bronze": 1}

// tenantBenchBatches stamps the standard benchmark stream with tenants
// cycling gold/silver/bronze and a far-future deadline, so every
// decision pays the full intake pipeline — bucket, admission test and
// fair-clock arbitration — without any request actually shedding (a
// shed would change the measured work).
func tenantBenchBatches(b *testing.B, nServers, n, k int) ([]string, [][]casched.AgentRequest) {
	b.Helper()
	tenants := []string{"gold", "silver", "bronze"}
	names, batches := benchBatches(b, nServers, n, k)
	j := 0
	for _, batch := range batches {
		for i := range batch {
			batch[i].Tenant = tenants[j%len(tenants)]
			batch[i].Deadline = 1e12
			j++
		}
	}
	return names, batches
}

// BenchmarkAgentSubmitMultiTenant is BenchmarkAgentSubmitBatch with
// the full multi-tenant intake path armed: a token bucket wide enough
// to never refuse, deadline admission on, and 4:2:1 fair-share
// arbitration re-ordering every burst. The ns/op ratio to
// BenchmarkAgentSubmitBatch is the price of tenancy on the hot path.
func BenchmarkAgentSubmitMultiTenant(b *testing.B) {
	names, batches := tenantBenchBatches(b, 32, agentBenchTasks, 16)
	s, err := casched.NewScheduler("HMCT")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		core, err := casched.NewAgentCore(casched.AgentCoreConfig{Scheduler: s, Seed: 17},
			casched.WithTenantShares(benchTenantShares),
			casched.WithAdmission(true),
			casched.WithIntakeLimit(1e9, 1e9),
		)
		if err != nil {
			b.Fatal(err)
		}
		for _, name := range names {
			core.AddServer(name)
		}
		b.StartTimer()
		for _, batch := range batches {
			if _, err := core.SubmitBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(agentBenchTasks)*float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
}

// BenchmarkClusterSubmitMultiTenant is the cluster variant: the
// dispatch-level bucket gates each burst, every shard core arbitrates
// its partition's share of the batch, and placement records retire
// through the bounded window. Compare to BenchmarkClusterSubmitBatch
// at the same shard count for the dispatch-layer tenancy overhead.
func BenchmarkClusterSubmitMultiTenant(b *testing.B) {
	const nServers = 128
	for _, shards := range []int{1, 4} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d/servers=%d", shards, nServers), func(b *testing.B) {
			names, batches := tenantBenchBatches(b, nServers, agentBenchTasks, 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cl, err := casched.NewCluster(
					casched.WithShards(shards),
					casched.WithHeuristic("HMCT"),
					casched.WithSeed(17),
					casched.WithTenantShares(benchTenantShares),
					casched.WithAdmission(true),
					casched.WithIntakeLimit(1e9, 1e9),
					casched.WithPlacedWindow(1e6),
				)
				if err != nil {
					b.Fatal(err)
				}
				for _, name := range names {
					cl.AddServer(name)
				}
				b.StartTimer()
				for _, batch := range batches {
					if _, err := cl.SubmitBatch(batch); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(agentBenchTasks)*float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
		})
	}
}
