package fluid

import (
	"math"
	"testing"

	"casched/internal/task"
)

func TestBusyTimeAccounting(t *testing.T) {
	s := New(Config{Name: "srv"})
	if err := s.Add(0, 0, task.Cost{Input: 5, Compute: 20, Output: 5}, 0); err != nil {
		t.Fatal(err)
	}
	s.RunToIdle(math.Inf(1))
	if got := s.BusyTime(task.PhaseInput); math.Abs(got-5) > 1e-6 {
		t.Errorf("input busy = %v, want 5", got)
	}
	if got := s.BusyTime(task.PhaseCompute); math.Abs(got-20) > 1e-6 {
		t.Errorf("CPU busy = %v, want 20", got)
	}
	if got := s.BusyTime(task.PhaseOutput); math.Abs(got-5) > 1e-6 {
		t.Errorf("output busy = %v, want 5", got)
	}
	// Advance past idle: busy time must not grow.
	s.AdvanceTo(100)
	if got := s.BusyTime(task.PhaseCompute); math.Abs(got-20) > 1e-6 {
		t.Errorf("CPU busy after idle = %v, want 20", got)
	}
	if got := s.Utilization(); math.Abs(got-0.2) > 1e-6 {
		t.Errorf("utilization = %v, want 0.2", got)
	}
	if s.BusyTime(task.Phase(99)) != 0 {
		t.Error("out-of-range phase must report 0")
	}
}

// TestBusyTimeSharedIsWallTime: two concurrent jobs keep the CPU busy
// for the total work duration (work conservation), not 2x.
func TestBusyTimeSharedIsWallTime(t *testing.T) {
	s := New(Config{Name: "srv"})
	for id := 0; id < 2; id++ {
		if err := s.Add(id, 0, task.Cost{Compute: 50}, 0); err != nil {
			t.Fatal(err)
		}
	}
	s.RunToIdle(math.Inf(1))
	if got := s.BusyTime(task.PhaseCompute); math.Abs(got-100) > 1e-6 {
		t.Errorf("shared busy = %v, want 100", got)
	}
}

func TestUtilizationZeroTime(t *testing.T) {
	s := New(Config{Name: "srv"})
	if s.Utilization() != 0 {
		t.Error("utilization at t=0 must be 0")
	}
}

func TestKill(t *testing.T) {
	s := New(Config{Name: "srv"})
	if err := s.Add(0, 0, task.Cost{Compute: 100}, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(1, 0, task.Cost{Compute: 100}, 0); err != nil {
		t.Fatal(err)
	}
	events := s.Kill(30)
	collapsed, at := s.Collapsed()
	if !collapsed || math.Abs(at-30) > 1e-9 {
		t.Fatalf("kill did not collapse: %v %v", collapsed, at)
	}
	var fails, collapses int
	for _, e := range events {
		switch e.Kind {
		case EventFailed:
			fails++
		case EventCollapse:
			collapses++
		}
	}
	if fails != 2 || collapses != 1 {
		t.Errorf("kill events: %d failed, %d collapse", fails, collapses)
	}
	// Idempotent.
	if again := s.Kill(40); again != nil {
		t.Error("double kill emitted events")
	}
	// Work done before the kill is preserved in the accounting.
	if got := s.BusyTime(task.PhaseCompute); math.Abs(got-30) > 1e-6 {
		t.Errorf("busy before kill = %v, want 30", got)
	}
}

func TestKillCompletedJobsUntouched(t *testing.T) {
	s := New(Config{Name: "srv"})
	if err := s.Add(0, 0, task.Cost{Compute: 10}, 0); err != nil {
		t.Fatal(err)
	}
	s.RunToIdle(math.Inf(1))
	s.Kill(20)
	if s.Job(0).State != StateDone {
		t.Error("kill corrupted a completed job")
	}
}

func TestForceComplete(t *testing.T) {
	s := New(Config{Name: "srv"})
	if err := s.Add(0, 0, task.Cost{Input: 5, Compute: 100, Output: 5}, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.ForceComplete(0, 40); err != nil {
		t.Fatal(err)
	}
	c, ok := s.Job(0).Completion()
	if !ok || math.Abs(c-40) > 1e-9 {
		t.Errorf("forced completion = %v,%v, want 40", c, ok)
	}
	// Completing again is a no-op.
	if err := s.ForceComplete(0, 50); err != nil {
		t.Errorf("double force-complete: %v", err)
	}
	if c, _ := s.Job(0).Completion(); math.Abs(c-40) > 1e-9 {
		t.Error("double force-complete moved the completion date")
	}
	if err := s.ForceComplete(99, 1); err == nil {
		t.Error("unknown job accepted")
	}
}

func TestForceCompleteFailedJob(t *testing.T) {
	s := New(Config{Name: "srv"})
	if err := s.Add(0, 0, task.Cost{Compute: 100}, 0); err != nil {
		t.Fatal(err)
	}
	s.Kill(10)
	if err := s.ForceComplete(0, 20); err == nil {
		t.Error("force-complete of failed job accepted")
	}
}
