package fed

// Framed-wire tests: capability negotiation against members that
// predate Member.WireCaps (the negotiated-down path must stay on gob
// and work), and placement parity between the framed and gob
// protocols against a real live member — the framing changes the
// transport, not one bit of the decisions.

import (
	"errors"
	"net"
	"net/rpc"
	"testing"
	"time"

	"casched/internal/agent"
	"casched/internal/live"
	"casched/internal/sched"
	"casched/internal/task"
	"casched/internal/workload"
)

// legacyMemberService mimics a member binary older than the framed
// wire: it serves the gob Member methods the dispatcher needs but has
// no WireCaps, so the probe answers rpc's "can't find method".
type legacyMemberService struct {
	core *agent.Core
}

func (s *legacyMemberService) Submit(args live.MemberTaskArgs, reply *live.MemberDecisionReply) error {
	spec, err := task.Resolve(args.Problem, args.Variant)
	if err != nil {
		return err
	}
	dec, err := s.core.Submit(agent.Request{
		JobID: args.JobID, TaskID: args.TaskID, Spec: spec, Arrival: args.Arrival,
	})
	if errors.Is(err, agent.ErrUnschedulable) {
		reply.Unschedulable = true
		return nil
	}
	if err != nil {
		return err
	}
	*reply = live.MemberDecisionReply{Server: dec.Server, Predicted: dec.Predicted, HasPrediction: dec.HasPrediction}
	return nil
}

func (s *legacyMemberService) Summary(_ live.Ack, reply *live.MemberSummaryReply) error {
	ls := s.core.LoadSummary()
	reply.InFlight = ls.InFlight
	reply.Servers = ls.Servers
	reply.MinReady, reply.HasMinReady = ls.MinReady, ls.HasMinReady
	return nil
}

// TestWireNegotiationDownToGob pins the compatibility contract: a
// member without Member.WireCaps keeps working over gob, the probe's
// "can't find method" answer is cached so the handle asks exactly
// once, and no call observes a transport error from the probe.
func TestWireNegotiationDownToGob(t *testing.T) {
	core, err := agent.New(agent.Config{Scheduler: sched.NewHMCT(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	core.AddServer("artimon")

	srv := rpc.NewServer()
	if err := srv.RegisterName("Member", &legacyMemberService{core: core}); err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()

	r := NewRemote("legacy", lis.Addr().String(), time.Second)
	defer r.Close()
	spec := task.WasteCPU(200)
	dec, err := r.Submit(agent.Request{JobID: 1, TaskID: 1, Spec: spec, Arrival: 0})
	if err != nil {
		t.Fatalf("submit to legacy member: %v", err)
	}
	if dec.Server != "artimon" {
		t.Fatalf("legacy member placed on %q", dec.Server)
	}
	r.mu.Lock()
	unsupported, wire := r.wireUnsupported, r.wire
	r.mu.Unlock()
	if !unsupported {
		t.Fatal("negotiated-down answer was not cached")
	}
	if wire != nil {
		t.Fatal("a framed connection exists against a legacy member")
	}
	if sum, err := r.Summary(); err != nil || sum.Servers != 1 {
		t.Fatalf("summary over gob after negotiation-down: %+v, %v", sum, err)
	}
}

// TestWireNegotiationUp pins the upgrade path: against a real live
// member the probe negotiates the framed connection, and hot calls
// flow over it.
func TestWireNegotiationUp(t *testing.T) {
	s, err := sched.ByName("HMCT")
	if err != nil {
		t.Fatal(err)
	}
	m, err := live.StartAgent(live.AgentConfig{Scheduler: s, Clock: live.NewClock(0), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Engine().AddServer("artimon")

	r := NewRemote("m1", m.Addr(), time.Second)
	defer r.Close()
	if _, err := r.Summary(); err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	wire, unsupported := r.wire, r.wireUnsupported
	r.mu.Unlock()
	if wire == nil || unsupported {
		t.Fatalf("framed wire not negotiated against a current member (wire=%v unsupported=%v)", wire != nil, unsupported)
	}
}

// TestFramedMatchesGobPlacements drives the same metatask through two
// identical TCP members — one handle framed, one pinned to gob — and
// requires bit-identical placement sequences and predictions.
func TestFramedMatchesGobPlacements(t *testing.T) {
	servers := []string{"artimon", "spinnaker", "soyotte", "valette"}
	newMember := func() (*live.Agent, *Remote) {
		s, err := sched.ByName("HMCT")
		if err != nil {
			t.Fatal(err)
		}
		m, err := live.StartAgent(live.AgentConfig{Scheduler: s, Clock: live.NewClock(0), Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		for _, srv := range servers {
			m.Engine().AddServer(srv)
		}
		return m, NewRemote(m.Addr(), m.Addr(), time.Second)
	}
	mGob, rGob := newMember()
	defer mGob.Close()
	defer rGob.Close()
	rGob.ForceGob()
	mFramed, rFramed := newMember()
	defer mFramed.Close()
	defer rFramed.Close()

	mt := workload.MustGenerate(workload.Set2(48, 12, 7))
	for i, tk := range mt.Tasks {
		req := agent.Request{JobID: tk.ID, TaskID: tk.ID, Spec: tk.Spec, Arrival: tk.Arrival}
		want, err := rGob.Submit(req)
		if err != nil {
			t.Fatalf("gob submit %d: %v", tk.ID, err)
		}
		got, err := rFramed.Submit(req)
		if err != nil {
			t.Fatalf("framed submit %d: %v", tk.ID, err)
		}
		if got.Server != want.Server || got.Predicted != want.Predicted || got.HasPrediction != want.HasPrediction {
			t.Fatalf("job %d: framed %+v vs gob %+v", tk.ID, got, want)
		}
		if i%4 == 3 {
			at := tk.Arrival + 15
			if want.HasPrediction {
				at = want.Predicted
			}
			if err := rGob.Complete(want.JobID, want.Server, at); err != nil {
				t.Fatal(err)
			}
			if err := rFramed.Complete(got.JobID, got.Server, at); err != nil {
				t.Fatal(err)
			}
		}
	}
	r := rFramed
	r.mu.Lock()
	framedUsed := r.wire != nil
	r.mu.Unlock()
	if !framedUsed {
		t.Fatal("framed handle fell back to gob — parity proved nothing")
	}
}
