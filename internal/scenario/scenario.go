// Package scenario is the production scenario harness: declarative
// scenario families that compose a workload dimension (trace-driven
// CSV replay, diurnal inhomogeneous-Poisson day/night cycles,
// heavy-tailed service times, multi-tenant saturating mixes) with a
// chaos dimension (member flap/kill/rejoin, summary-channel partition
// with relay degradation, leader kill mid-burst under HA, slow-member
// latency injection) against the library's deployment shapes. Each
// family runs like the experiments-package studies — deterministic in
// its seeds, rendered as a committed benchmarks/scenario-*.txt table,
// headline claims pinned by test — and together they are the standing
// regression net the self-healing federation machinery is verified
// against.
package scenario

import (
	"fmt"

	"casched/internal/agent"
	"casched/internal/cluster"
	"casched/internal/fed"
	"casched/internal/sched"
	"casched/internal/task"
)

// Shape names one deployment shape of the library: the single agent
// core, the sharded cluster, the federation dispatcher over in-process
// members, and the replicated HA federation over real TCP.
type Shape string

const (
	ShapeCore         Shape = "core"
	ShapeCluster      Shape = "cluster"
	ShapeFederation   Shape = "federation"
	ShapeFederationHA Shape = "federation+ha"
)

// Family is one named scenario preset: a self-contained study run
// with committed defaults, rendered as a table for benchmarks/.
type Family struct {
	// Name is the preset name cmd/casscenario selects by.
	Name string
	// Description is the one-line -list synopsis.
	Description string
	// File is the committed table the run regenerates.
	File string
	// Run executes the family with its defaults and renders the table.
	Run func() (string, error)
}

// Families enumerates the scenario presets in their canonical order.
func Families() []Family {
	return []Family{
		{
			Name:        "trace",
			Description: "trace-driven CSV replay: export, reimport and replay a workload bit-identically on core and cluster",
			File:        "benchmarks/scenario-trace.txt",
			Run: func() (string, error) {
				r, err := Trace(TraceConfig{})
				if err != nil {
					return "", err
				}
				return FormatTrace(r), nil
			},
		},
		{
			Name:        "diurnal",
			Description: "diurnal inhomogeneous-Poisson day/night cycles (thinning): load premium and fair shares under saturation",
			File:        "benchmarks/scenario-diurnal.txt",
			Run: func() (string, error) {
				r, err := Diurnal(DiurnalConfig{})
				if err != nil {
					return "", err
				}
				return FormatDiurnal(r), nil
			},
		},
		{
			Name:        "heavytail",
			Description: "heavy-tailed Pareto/lognormal service times at unchanged offered load: the price of elephants",
			File:        "benchmarks/scenario-heavytail.txt",
			Run: func() (string, error) {
				r, err := HeavyTail(HeavyTailConfig{})
				if err != nil {
					return "", err
				}
				return FormatHeavyTail(r), nil
			},
		},
		{
			Name:        "fedchaos",
			Description: "federation chaos: member flap, summary partition with relay degradation, slow member, leader kill under HA",
			File:        "benchmarks/scenario-fedchaos.txt",
			Run: func() (string, error) {
				r, err := FedChaos(FedChaosConfig{})
				if err != nil {
					return "", err
				}
				return FormatFedChaos(r), nil
			},
		},
	}
}

// FamilyByName resolves a preset (exact match).
func FamilyByName(name string) (Family, error) {
	for _, f := range Families() {
		if f.Name == name {
			return f, nil
		}
	}
	return Family{}, fmt.Errorf("scenario: unknown family %q", name)
}

// testbed returns replicas copies of the Table 2 second-set servers,
// suffixed per replica, plus a spec rewrite making every metatask spec
// solvable on each copy with the original costs (the experiments
// packages' standard scaled testbed).
func testbed(replicas int) ([]string, func(*task.Spec) *task.Spec) {
	base := []string{"artimon", "cabestan", "spinnaker", "valette"}
	var names []string
	for r := 0; r < replicas; r++ {
		for _, b := range base {
			names = append(names, fmt.Sprintf("%s%d", b, r))
		}
	}
	rewritten := make(map[*task.Spec]*task.Spec)
	rewrite := func(s *task.Spec) *task.Spec {
		if out, ok := rewritten[s]; ok {
			return out
		}
		on := make(map[string]task.Cost, len(names))
		for r := 0; r < replicas; r++ {
			for _, b := range base {
				if c, ok := s.CostOn[b]; ok {
					on[fmt.Sprintf("%s%d", b, r)] = c
				}
			}
		}
		out := &task.Spec{Problem: s.Problem, Variant: s.Variant, MemoryMB: s.MemoryMB, CostOn: on}
		rewritten[s] = out
		return out
	}
	return names, rewrite
}

// engine is the shape-independent driving surface every in-process
// deployment exposes: submit work, observe decisions, read the
// HTM-simulated completions.
type engine interface {
	Submit(agent.Request) (agent.Decision, error)
	SubmitBatch([]agent.Request) ([]agent.Decision, error)
	Subscribe(fn func(agent.Event)) (cancel func())
	FinalPredictions() map[int]float64
}

// engineConfig parameterizes newEngine across shapes.
type engineConfig struct {
	heuristic    string
	seed         uint64
	width        int // shards (cluster) or members (federation)
	tenantShares map[string]float64
}

// coreEngine adapts agent.Core's error-free AddServer to the engine
// builder; cluster and fed already satisfy engine directly.
func newEngine(shape Shape, cfg engineConfig, servers []string) (engine, error) {
	switch shape {
	case ShapeCore:
		s, err := sched.ByName(cfg.heuristic)
		if err != nil {
			return nil, err
		}
		core, err := agent.New(agent.Config{
			Scheduler:    s,
			Seed:         cfg.seed,
			TenantShares: cfg.tenantShares,
		})
		if err != nil {
			return nil, err
		}
		for _, n := range servers {
			core.AddServer(n)
		}
		return core, nil
	case ShapeCluster:
		opts := []cluster.Option{
			cluster.WithShards(cfg.width),
			cluster.WithHeuristic(cfg.heuristic),
			cluster.WithSeed(cfg.seed),
			cluster.WithPolicy(cluster.LeastLoaded()),
		}
		if cfg.tenantShares != nil {
			opts = append(opts, cluster.WithTenantShares(cfg.tenantShares))
		}
		cl, err := cluster.New(opts...)
		if err != nil {
			return nil, err
		}
		for _, n := range servers {
			cl.AddServer(n)
		}
		return cl, nil
	case ShapeFederation:
		opts := []fed.Option{
			fed.WithMembers(cfg.width),
			fed.WithHeuristic(cfg.heuristic),
			fed.WithSeed(cfg.seed),
			fed.WithPolicy(cluster.LeastLoaded()),
		}
		if cfg.tenantShares != nil {
			opts = append(opts, fed.WithTenantShares(cfg.tenantShares))
		}
		d, err := fed.New(opts...)
		if err != nil {
			return nil, err
		}
		for _, n := range servers {
			if err := d.AddServer(n); err != nil {
				return nil, err
			}
		}
		return d, nil
	}
	return nil, fmt.Errorf("scenario: shape %q has no in-process engine", shape)
}

// runStream drives every task of the metatask-derived request stream
// through per-task Submit.
func runStream(eng engine, reqs []agent.Request) error {
	for _, req := range reqs {
		if _, err := eng.Submit(req); err != nil {
			return fmt.Errorf("scenario: submit %d: %w", req.JobID, err)
		}
	}
	return nil
}

// requests converts a metatask into the per-task request stream.
func requests(mt *task.Metatask) []agent.Request {
	reqs := make([]agent.Request, mt.Len())
	for i, t := range mt.Tasks {
		reqs[i] = agent.Request{
			JobID: t.ID, TaskID: t.ID, Spec: t.Spec,
			Arrival: t.Arrival, Submitted: t.Arrival,
			Tenant: t.Tenant, Deadline: t.Deadline,
		}
	}
	return reqs
}

// sumFlowOf reads the HTM-simulated total flow of a driven engine
// from its final projections.
func sumFlowOf(eng engine, mt *task.Metatask) (sumFlow float64) {
	preds := eng.FinalPredictions()
	for _, t := range mt.Tasks {
		if c, ok := preds[t.ID]; ok {
			sumFlow += c - t.Arrival
		}
	}
	return sumFlow
}

// maxFlowOf reads the worst single task's HTM-simulated flow time —
// the tail-latency face of the same projections sumFlowOf totals.
func maxFlowOf(eng engine, mt *task.Metatask) (maxFlow float64) {
	preds := eng.FinalPredictions()
	for _, t := range mt.Tasks {
		if c, ok := preds[t.ID]; ok && c-t.Arrival > maxFlow {
			maxFlow = c - t.Arrival
		}
	}
	return maxFlow
}
