package agent

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// StatsCollector is a sample event-stream subscriber that aggregates
// scheduling observability counters: decision and completion counts,
// decision rate, the mean absolute prediction error realized on
// completions, and per-server occupancy. It consumes the same Event
// stream whether subscribed to a single Core or to a Cluster's merged
// stream:
//
//	sc := agent.NewStatsCollector()
//	cancel := core.Subscribe(sc.Collect)
//	...
//	fmt.Println(sc.Snapshot())
//
// Collect is cheap and allocation-light — subscriber callbacks run on
// the mutating goroutine with the core lock held — and Snapshot may be
// called concurrently from any goroutine.
type StatsCollector struct {
	mu          sync.Mutex
	decisions   int64
	completions int64
	reports     int64

	// span of event (experiment) time covered by timed events.
	first, last float64
	timed       bool

	// predicted tracks decision-time predictions until the completion
	// arrives (evicted there, so the map is bounded by in-flight jobs).
	predicted map[int]float64
	absErrSum float64
	absErrN   int64

	// live marks jobs whose decision has been observed but not yet
	// consumed by a completion (evicted there; bounded like predicted).
	live map[int]bool
	// early records completions observed before their decision — legal
	// on a merged multi-shard stream, where only per-shard commit
	// order is preserved. A later decision for such a job cancels
	// against it instead of inflating InFlight forever. Duplicated
	// completions of already-consumed jobs land here too and no
	// decision will ever reclaim them, so the buffer is size-capped
	// and evicts its oldest entry on overflow: stale duplicates age
	// out while genuine reorders — which their decisions consume
	// within a stream merge window — stay matchable.
	early map[int]earlyRecord

	occ map[string]*Occupancy
}

// earlyRecord is one early-completion entry: how many completions
// await their decision and when the last one was observed.
type earlyRecord struct {
	n    int
	last float64
}

// maxEarlyCompletions bounds the early-completion reorder buffer.
const maxEarlyCompletions = 1024

// Occupancy is the per-server view the collector maintains.
type Occupancy struct {
	// InFlight is decisions minus completions observed for the server,
	// clamped at zero: duplicated completion messages decrement past
	// what was observed placed but never below zero, and a completion
	// observed before its decision (legal on a merged multi-shard
	// stream) cancels against the late decision instead of counting
	// the job in flight forever (see Collect).
	InFlight int
	// Decisions and Completions are cumulative counts.
	Decisions, Completions int64
	// ReportedLoad is the last monitor-reported load (NaN until a
	// report is seen).
	ReportedLoad float64
}

// Stats is an immutable snapshot of the collector.
type Stats struct {
	// Decisions, Completions and Reports count the observed events.
	Decisions, Completions, Reports int64
	// Span is the event-time window covered (last minus first timed
	// event, in experiment seconds).
	Span float64
	// DecisionsPerSec is Decisions divided by Span: the decision rate
	// in experiment time. Zero when the span is empty.
	DecisionsPerSec float64
	// MeanAbsPredictionError averages |actual − predicted| completion
	// over completions whose decision carried an HTM prediction.
	MeanAbsPredictionError float64
	// PredictionSamples is the number of completions behind the mean.
	PredictionSamples int64
	// Occupancy maps each observed server to its per-server view.
	Occupancy map[string]Occupancy
}

// NewStatsCollector returns an empty collector.
func NewStatsCollector() *StatsCollector {
	return &StatsCollector{
		predicted: make(map[int]float64),
		live:      make(map[int]bool),
		early:     make(map[int]earlyRecord),
		occ:       make(map[string]*Occupancy),
	}
}

// Collect ingests one event; pass it to Core.Subscribe (or a Cluster's
// Subscribe).
func (sc *StatsCollector) Collect(ev Event) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	switch ev.Kind {
	case EventDecision:
		sc.decisions++
		sc.touch(ev.Time)
		o := sc.server(ev.Server)
		o.Decisions++
		if rec, ok := sc.early[ev.JobID]; ok {
			// The job's completion was already observed (reordered
			// merged stream): cancel against it instead of counting
			// the job in flight forever, and drop the prediction —
			// there is no future completion left to realize it.
			if rec.n <= 1 {
				delete(sc.early, ev.JobID)
			} else {
				rec.n--
				sc.early[ev.JobID] = rec
			}
			break
		}
		o.InFlight++
		sc.live[ev.JobID] = true
		if ev.HasPrediction {
			sc.predicted[ev.JobID] = ev.Predicted
		}
	case EventCompletion:
		sc.completions++
		sc.touch(ev.Time)
		o := sc.server(ev.Server)
		o.Completions++
		// Clamp at zero rather than going negative: on a merged
		// multi-shard stream a completion can be observed before its
		// decision (per-shard commit order is preserved, cross-shard
		// interleaving is not), and transports can duplicate
		// completion messages. Either way InFlight stays a count, at
		// the price of transiently under-reporting until the matching
		// decision arrives (which cancels against the recorded early
		// completion). Decisions/Completions always count every
		// observed event, so the long-run books still balance.
		if o.InFlight > 0 {
			o.InFlight--
		}
		if sc.live[ev.JobID] {
			delete(sc.live, ev.JobID)
		} else {
			// No decision seen yet: remember the completion so the
			// late decision cancels instead of sticking in flight.
			// (A duplicated completion of an already-consumed job
			// lands here too; overflow evicts the stalest entry so
			// such duplicates cannot ratchet the buffer full.)
			if _, ok := sc.early[ev.JobID]; !ok && len(sc.early) >= maxEarlyCompletions {
				oldest, oldestAt := 0, math.Inf(1)
				for id, rec := range sc.early {
					if rec.last < oldestAt {
						oldest, oldestAt = id, rec.last
					}
				}
				delete(sc.early, oldest)
			}
			rec := sc.early[ev.JobID]
			rec.n++
			rec.last = ev.Time
			sc.early[ev.JobID] = rec
		}
		if p, ok := sc.predicted[ev.JobID]; ok {
			sc.absErrSum += math.Abs(ev.Time - p)
			sc.absErrN++
			delete(sc.predicted, ev.JobID)
		}
	case EventReport:
		sc.reports++
		sc.touch(ev.Time)
		sc.server(ev.Server).ReportedLoad = ev.Load
	case EventServerAdded:
		sc.server(ev.Server)
	}
}

// touch extends the covered event-time span.
func (sc *StatsCollector) touch(t float64) {
	if !sc.timed {
		sc.first, sc.last, sc.timed = t, t, true
		return
	}
	if t < sc.first {
		sc.first = t
	}
	if t > sc.last {
		sc.last = t
	}
}

// server returns (creating if needed) the per-server record.
func (sc *StatsCollector) server(name string) *Occupancy {
	o, ok := sc.occ[name]
	if !ok {
		o = &Occupancy{ReportedLoad: math.NaN()}
		sc.occ[name] = o
	}
	return o
}

// Snapshot returns the current aggregate view.
func (sc *StatsCollector) Snapshot() Stats {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	st := Stats{
		Decisions:         sc.decisions,
		Completions:       sc.completions,
		Reports:           sc.reports,
		PredictionSamples: sc.absErrN,
		Occupancy:         make(map[string]Occupancy, len(sc.occ)),
	}
	if sc.timed {
		st.Span = sc.last - sc.first
	}
	if st.Span > 0 {
		st.DecisionsPerSec = float64(sc.decisions) / st.Span
	}
	if sc.absErrN > 0 {
		st.MeanAbsPredictionError = sc.absErrSum / float64(sc.absErrN)
	}
	for name, o := range sc.occ {
		st.Occupancy[name] = *o
	}
	return st
}

// String renders the snapshot as a small report, servers sorted by
// name.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "decisions %d (%.2f/s over %.1fs)  completions %d  reports %d\n",
		st.Decisions, st.DecisionsPerSec, st.Span, st.Completions, st.Reports)
	if st.PredictionSamples > 0 {
		fmt.Fprintf(&b, "mean |completion error| %.3fs over %d completions\n",
			st.MeanAbsPredictionError, st.PredictionSamples)
	}
	names := make([]string, 0, len(st.Occupancy))
	for name := range st.Occupancy {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		o := st.Occupancy[name]
		load := "-"
		if !math.IsNaN(o.ReportedLoad) {
			load = fmt.Sprintf("%.1f", o.ReportedLoad)
		}
		fmt.Fprintf(&b, "  %-12s in-flight %3d  decisions %4d  completions %4d  reported load %s\n",
			name, o.InFlight, o.Decisions, o.Completions, load)
	}
	return b.String()
}
