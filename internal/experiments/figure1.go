package experiments

import (
	"fmt"
	"strings"

	"casched/internal/gantt"
	"casched/internal/htm"
	"casched/internal/task"
)

// Figure1 reproduces the paper's Figure 1: the HTM's Gantt chart of a
// server before and after a new task (task 3) is mapped onto it, with
// the CPU-share annotations (100% / 50% / 33.3%). It returns the
// rendered charts and the perturbations π_1 and π_2 the insertion
// causes.
func Figure1(width int) (string, error) {
	spec := func(in, comp, out float64) *task.Spec {
		return &task.Spec{
			Problem: "demo",
			CostOn:  map[string]task.Cost{"server": {Input: in, Compute: comp, Output: out}},
		}
	}

	m := htm.New([]string{"server"})
	// Two tasks already mapped: their input transfers are staggered so
	// the chart shows the three-part structure of Figure 1.
	if err := m.Place(1, spec(10, 100, 5), 0, "server"); err != nil {
		return "", fmt.Errorf("experiments: figure 1: %w", err)
	}
	if err := m.Place(2, spec(10, 150, 5), 20, "server"); err != nil {
		return "", fmt.Errorf("experiments: figure 1: %w", err)
	}

	sim, _ := m.Sim("server")
	before := gantt.Extract(sim).Render(width)

	// Evaluate then commit the new task at t=80, as in the figure.
	pred, err := m.Evaluate(3, spec(10, 60, 5), 80, "server")
	if err != nil {
		return "", fmt.Errorf("experiments: figure 1: %w", err)
	}
	if err := m.Place(3, spec(10, 60, 5), 80, "server"); err != nil {
		return "", fmt.Errorf("experiments: figure 1: %w", err)
	}
	after := gantt.Extract(sim).Render(width)

	var sb strings.Builder
	sb.WriteString("Figure 1 — HTM Gantt chart, old schedule (tasks 1 and 2):\n")
	sb.WriteString(before)
	sb.WriteString("\nNew task: task 3 arrives at t=80s. HTM prediction: ")
	fmt.Fprintf(&sb, "completion ρ'₃=%.1fs, perturbations Σπ=%.1fs (π per task: ",
		pred.Completion, pred.Perturbation)
	first := true
	for _, id := range []int{1, 2} {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "task %d: +%.1fs", id, pred.PerTask[id])
	}
	sb.WriteString(")\n\nGantt chart with the new task:\n")
	sb.WriteString(after)
	return sb.String(), nil
}
