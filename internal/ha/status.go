package ha

// Status is one dispatcher's HA posture, assembled for telemetry: the
// election view plus the standby mirror's replication lag and the
// running count of servers re-homed away from dead or leaving members.
type Status struct {
	// ID is this dispatcher's elector identity ("" when HA is off).
	ID string
	// Term is the current election term (0 when HA is off).
	Term uint64
	// IsLeader reports whether this dispatcher currently serves
	// clients (always true when HA is off).
	IsLeader bool
	// LeaderID/LeaderAddr name the known leader, empty when unknown.
	LeaderID   string
	LeaderAddr string
	// StandbyLag is, per member, how many relay-ledger events the
	// local mirror trails the member's advertised head.
	StandbyLag map[string]uint64
	// ReassignedServers counts servers moved to surviving members by
	// graceful leave or dead-member re-partitioning.
	ReassignedServers uint64
}
