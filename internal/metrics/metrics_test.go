package metrics

import (
	"math"
	"testing"
)

func res(id int, arrival, completion, unloaded float64) TaskResult {
	return TaskResult{ID: id, Arrival: arrival, Completion: completion,
		UnloadedDuration: unloaded, Completed: true, Server: "s"}
}

func TestComputeBasics(t *testing.T) {
	rs := []TaskResult{
		res(0, 0, 100, 50),  // flow 100, stretch 2
		res(1, 10, 40, 30),  // flow 30, stretch 1
		res(2, 20, 200, 40), // flow 180, stretch 4.5
	}
	rep := Compute("H", rs)
	if rep.Heuristic != "H" || rep.Submitted != 3 || rep.Completed != 3 {
		t.Errorf("header fields wrong: %+v", rep)
	}
	if rep.Makespan != 200 {
		t.Errorf("makespan = %v", rep.Makespan)
	}
	if rep.SumFlow != 310 {
		t.Errorf("sumflow = %v", rep.SumFlow)
	}
	if rep.MaxFlow != 180 {
		t.Errorf("maxflow = %v", rep.MaxFlow)
	}
	if math.Abs(rep.MaxStretch-4.5) > 1e-12 {
		t.Errorf("maxstretch = %v", rep.MaxStretch)
	}
	if math.Abs(rep.MeanStretch-2.5) > 1e-12 {
		t.Errorf("meanstretch = %v", rep.MeanStretch)
	}
}

func TestComputeSkipsIncomplete(t *testing.T) {
	rs := []TaskResult{
		res(0, 0, 100, 50),
		{ID: 1, Arrival: 5, Completed: false, Resubmissions: 2},
	}
	rep := Compute("H", rs)
	if rep.Submitted != 2 || rep.Completed != 1 {
		t.Errorf("completed count wrong: %+v", rep)
	}
	if rep.SumFlow != 100 {
		t.Errorf("incomplete task leaked into sumflow: %v", rep.SumFlow)
	}
	if rep.Resubmissions != 2 {
		t.Errorf("resubmissions = %d", rep.Resubmissions)
	}
}

func TestStretchZeroUnloaded(t *testing.T) {
	r := TaskResult{Arrival: 0, Completion: 10, UnloadedDuration: 0, Completed: true}
	if r.Stretch() != 0 {
		t.Errorf("stretch with zero unloaded duration = %v", r.Stretch())
	}
}

func TestFinishSooner(t *testing.T) {
	a := []TaskResult{res(0, 0, 50, 1), res(1, 0, 100, 1), res(2, 0, 70, 1)}
	b := []TaskResult{res(0, 0, 60, 1), res(1, 0, 90, 1), res(2, 0, 70, 1)}
	n, err := FinishSooner(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("FinishSooner = %d, want 1 (only task 0 is strictly sooner)", n)
	}
	// Incomplete tasks never count.
	a[1].Completed = false
	n, err = FinishSooner(a, b)
	if err != nil || n != 1 {
		t.Errorf("FinishSooner with incomplete = %d,%v", n, err)
	}
	// Mismatched metatasks are an error.
	if _, err := FinishSooner(a, b[:2]); err == nil {
		t.Error("mismatched runs accepted")
	}
}

func TestFinishSoonerSelfIsZero(t *testing.T) {
	a := []TaskResult{res(0, 0, 50, 1), res(1, 0, 100, 1)}
	n, err := FinishSooner(a, a)
	if err != nil || n != 0 {
		t.Errorf("self comparison = %d,%v, want 0", n, err)
	}
}

func TestMeanReports(t *testing.T) {
	rs := []Report{
		{Heuristic: "H", Submitted: 500, Completed: 500, Makespan: 100, SumFlow: 1000, MaxFlow: 10, MaxStretch: 2},
		{Heuristic: "H", Submitted: 500, Completed: 498, Makespan: 200, SumFlow: 2000, MaxFlow: 20, MaxStretch: 4},
	}
	m := MeanReports(rs)
	if m.Makespan != 150 || m.SumFlow != 1500 || m.MaxFlow != 15 || m.MaxStretch != 3 {
		t.Errorf("mean report = %+v", m)
	}
	if m.Completed != 499 {
		t.Errorf("mean completed = %d", m.Completed)
	}
	if MeanReports(nil).Completed != 0 {
		t.Error("empty mean must be zero")
	}
}

func TestFlowAndStretchAccessors(t *testing.T) {
	r := res(0, 33, 80.79, 50)
	if math.Abs(r.Flow()-47.79) > 1e-9 {
		t.Errorf("Flow = %v", r.Flow())
	}
	if math.Abs(r.Stretch()-47.79/50) > 1e-9 {
		t.Errorf("Stretch = %v", r.Stretch())
	}
}
