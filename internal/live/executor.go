package live

import (
	"sync"
	"time"

	"casched/internal/task"
)

// execJob is one task running inside an executor.
type execJob struct {
	key       int
	phase     task.Phase
	remaining [task.NumPhases]float64
	done      chan float64 // receives the virtual completion date
}

// executor emulates a time-shared CPU and its links in scaled wall
// time: a quantum loop advances every resident job by
// quantum × (1/n_phase) virtual seconds of work, reproducing the
// processor-sharing model the paper validated on LINUX (§2.3) — but
// asynchronously, with real quantization and scheduling jitter.
type executor struct {
	clock   *Clock
	quantum time.Duration

	mu   sync.Mutex
	jobs []*execJob
	last float64 // virtual time of the previous tick

	stop chan struct{}
	wg   sync.WaitGroup
}

// newExecutor starts the quantum loop.
func newExecutor(clock *Clock, quantum time.Duration) *executor {
	if quantum <= 0 {
		quantum = 2 * time.Millisecond
	}
	e := &executor{
		clock:   clock,
		quantum: quantum,
		last:    clock.Now(),
		stop:    make(chan struct{}),
	}
	e.wg.Add(1)
	go e.loop()
	return e
}

// submit adds a job with the given actual phase costs and returns a
// channel delivering its virtual completion date.
func (e *executor) submit(key int, cost task.Cost) <-chan float64 {
	j := &execJob{key: key, phase: task.PhaseInput, done: make(chan float64, 1)}
	j.remaining[task.PhaseInput] = cost.Input
	j.remaining[task.PhaseCompute] = cost.Compute
	j.remaining[task.PhaseOutput] = cost.Output
	e.mu.Lock()
	e.jobs = append(e.jobs, j)
	e.mu.Unlock()
	return j.done
}

// load returns the number of jobs currently in the compute phase — the
// run-queue length the monitor reports.
func (e *executor) load() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, j := range e.jobs {
		if j.phase == task.PhaseCompute {
			n++
		}
	}
	return float64(n)
}

// resident returns the total number of jobs on the executor.
func (e *executor) resident() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.jobs)
}

// close stops the quantum loop.
func (e *executor) close() {
	select {
	case <-e.stop:
	default:
		close(e.stop)
	}
	e.wg.Wait()
}

// loop is the quantum ticker.
func (e *executor) loop() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.quantum)
	defer ticker.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-ticker.C:
			e.tick()
		}
	}
}

// tick advances all jobs by the elapsed virtual time since the last
// tick, applying per-phase processor sharing.
func (e *executor) tick() {
	now := e.clock.Now()
	e.mu.Lock()
	dt := now - e.last
	e.last = now
	if dt <= 0 {
		e.mu.Unlock()
		return
	}

	// Count phase occupancy for the share computation.
	var counts [task.NumPhases]int
	for _, j := range e.jobs {
		counts[j.phase]++
	}

	var finished []*execJob
	remaining := e.jobs[:0]
	for _, j := range e.jobs {
		share := 1.0
		if n := counts[j.phase]; n > 1 {
			share = 1 / float64(n)
		}
		budget := dt * share
		// Consume the budget through the job's phases. Occupancy
		// counts are per-tick approximations; a job crossing a phase
		// boundary carries its leftover budget into the next phase.
		jobDone := false
		for {
			if j.remaining[j.phase] > budget {
				j.remaining[j.phase] -= budget
				break
			}
			budget -= j.remaining[j.phase]
			j.remaining[j.phase] = 0
			if j.phase == task.PhaseOutput {
				jobDone = true
				break
			}
			j.phase++
		}
		if jobDone {
			finished = append(finished, j)
			continue
		}
		remaining = append(remaining, j)
	}
	e.jobs = remaining
	e.mu.Unlock()

	for _, j := range finished {
		j.done <- now
	}
}
