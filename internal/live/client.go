package live

import (
	"fmt"
	"net/rpc"
	"sync"
	"time"

	"casched/internal/metrics"
	"casched/internal/task"
)

// RunMetatask plays a metatask against a live deployment: for each
// task, at its arrival date, a goroutine asks the agent for a server
// and then performs the blocking submit RPC — one concurrent client
// request per task, like the paper's metatask submissions. It returns
// per-task results comparable with the simulator's.
//
// agentAddr may be a comma-separated list of dispatcher addresses
// (leader plus standbys of a replicated federation): scheduling calls
// then fail over — transport errors and not-leader redirects rotate
// to the next dispatcher and retry — so a metatask survives the
// leader dying mid-run. Replayed requests are safe: the promoted
// leader answers already-placed tasks from its replicated placed map.
func RunMetatask(agentAddr string, mt *task.Metatask, clock *Clock) ([]metrics.TaskResult, error) {
	if err := mt.Validate(); err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	book := newDispatcherBook(agentAddr, nil)
	defer book.Close()
	if _, _, err := book.conn(); err != nil {
		return nil, fmt.Errorf("live: client dial agent: %w", err)
	}

	results := make([]metrics.TaskResult, mt.Len())
	errs := make([]error, mt.Len())

	// One shared RPC client per server, created lazily.
	var connMu sync.Mutex
	conns := make(map[string]*rpc.Client)
	dialServer := func(addr string) (*rpc.Client, error) {
		connMu.Lock()
		defer connMu.Unlock()
		if c, ok := conns[addr]; ok {
			return c, nil
		}
		c, err := rpc.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		conns[addr] = c
		return c, nil
	}
	defer func() {
		connMu.Lock()
		defer connMu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}()

	var wg sync.WaitGroup
	for i, t := range mt.Tasks {
		wg.Add(1)
		go func(i int, t *task.Task) {
			defer wg.Done()
			clock.SleepUntil(t.Arrival)
			arrival := clock.Now()
			results[i] = metrics.TaskResult{ID: t.ID, Arrival: arrival}

			// A freshly promoted dispatcher can answer from its
			// replicated placed map before the executing server has
			// re-registered its address; retry until the address book
			// catches up (multi-dispatcher deployments only).
			var rep ScheduleReply
			var err error
			deadline := time.Now()
			if book.multi() {
				deadline = time.Now().Add(failoverWindow)
			}
			for {
				rep = ScheduleReply{}
				err = book.Call("Agent.Schedule", ScheduleArgs{
					TaskKey: t.ID, Problem: t.Spec.Problem, Variant: t.Spec.Variant,
					Arrival: arrival, Tenant: t.Tenant, Deadline: t.Deadline,
				}, &rep)
				if err == nil && rep.Addr == "" && time.Now().Before(deadline) {
					time.Sleep(failoverPause)
					continue
				}
				break
			}
			if err != nil {
				errs[i] = fmt.Errorf("live: schedule task %d: %w", t.ID, err)
				return
			}
			srv, err := dialServer(rep.Addr)
			if err != nil {
				errs[i] = fmt.Errorf("live: dial server %s: %w", rep.Server, err)
				return
			}
			var sub SubmitReply
			if err := srv.Call("Server.Submit", SubmitArgs{
				TaskKey: t.ID, Problem: t.Spec.Problem, Variant: t.Spec.Variant,
			}, &sub); err != nil {
				errs[i] = fmt.Errorf("live: submit task %d: %w", t.ID, err)
				return
			}
			r := &results[i]
			r.Completed = true
			r.Completion = sub.Completion
			r.Server = sub.Server
			if cost, ok := t.Spec.Cost(sub.Server); ok {
				r.UnloadedDuration = cost.Total()
			}
		}(i, t)
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
